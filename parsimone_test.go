package parsimone

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	data, truth, err := GenerateSynthetic(SynthConfig{N: 24, M: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if truth.NumModules < 1 {
		t.Fatal("no ground-truth modules")
	}
	opt := DefaultOptions()
	opt.Seed = 7
	opt.Module.Splits.MaxSteps = 16
	out, err := Learn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Network.Modules) == 0 {
		t.Fatal("no modules learned")
	}
	par, err := LearnParallel(3, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out.Network, par.Network) {
		t.Fatal("public API parallel/sequential mismatch")
	}
}

func TestPublicAPISerializationRoundTrip(t *testing.T) {
	data, _, err := GenerateSynthetic(SynthConfig{N: 20, M: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Module.Splits.MaxSteps = 8
	out, err := Learn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.Network.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty XML")
	}
}

func TestPublicAPITSV(t *testing.T) {
	data := NewData(3, 4)
	data.Set(1, 2, 5.5)
	path := filepath.Join(t.TempDir(), "x.tsv")
	if err := data.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 2) != 5.5 {
		t.Fatal("TSV round trip failed")
	}
}
