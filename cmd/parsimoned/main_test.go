package main

import (
	"context"
	"strings"
	"testing"
)

// TestSmokeEndToEnd boots the daemon on an ephemeral port, drives one tiny
// job through its HTTP surface via -smoke, and drains — the same path the
// `make serve-smoke` target exercises.
func TestSmokeEndToEnd(t *testing.T) {
	var out strings.Builder
	err := runCtx(context.Background(),
		[]string{"-addr", "127.0.0.1:0", "-smoke", "-checkpoints", t.TempDir()}, &out)
	if err != nil {
		t.Fatalf("smoke run failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"listening on http://", "smoke ok", "job 0 (smoke): done"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output is missing %q:\n%s", want, out.String())
		}
	}
}
