// Command parsimoned is the module-network learning daemon: an HTTP/JSON
// service (internal/serve) over the supervised job runtime (internal/jobs).
// Clients POST learn jobs, poll or long-poll their status, stream lifecycle
// events, download the learned network (xml/json/binary), and run
// prediction queries; identical resubmissions are answered from the exact
// result cache without a learning run.
//
// Usage:
//
//	parsimoned -addr 127.0.0.1:8080 -max-jobs 2 -checkpoints /var/lib/parsimone
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, running jobs
// cancel cooperatively to their durable checkpoints, and the final reports
// (one per job, naming each resume path) are logged before exit. Restarting
// the daemon with the same -checkpoints root resumes a drained submission
// bit-identically — checkpoint directories are content-addressed by the
// job's cache key.
//
// The -smoke flag boots the daemon on the given address, drives one tiny
// synthetic job end-to-end through its own HTTP surface, drains, and exits
// non-zero on any failure (the `make serve-smoke` target).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsimone/internal/jobs"
	"parsimone/internal/result"
	"parsimone/internal/serve"
	"parsimone/internal/synth"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "parsimoned:", err)
		os.Exit(1)
	}
}

// runCtx runs the daemon under a caller-supplied lifetime context (the
// signal context in main), with its own flag set so it is testable.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("parsimoned", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		maxJobs   = fs.Int("max-jobs", 2, "concurrently running learn jobs")
		slots     = fs.Int("slots", 0, "cap on the summed p×W demand of running jobs (0 = unlimited)")
		retryBase = fs.Duration("retry-base", time.Second, "base of the jitter-free exponential backoff between job restarts")
		ckptRoot  = fs.String("checkpoints", "", "checkpoint root: every job gets a directory under it, content-addressed by its cache key, so a drained submission resumes bit-identically on resubmission (empty = no checkpointing)")
		dataDir   = fs.String("data-dir", "", "root for server-side dataset paths in submissions (empty = inline TSV uploads only)")
		smoke     = fs.Bool("smoke", false, "boot, run one tiny synthetic job end-to-end against the HTTP surface, drain, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.NewServer(serve.Config{
		Jobs:           jobs.Config{MaxJobs: *maxJobs, Slots: *slots, RetryBase: *retryBase},
		CheckpointRoot: *ckptRoot,
		DataDir:        *dataDir,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "parsimoned: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	var smokeErr error
	if *smoke {
		smokeErr = smokeRun(stdout, "http://"+ln.Addr().String())
		fmt.Fprintln(stdout, "parsimoned: smoke finished, draining")
	} else {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout, "parsimoned: signal received, draining")
		case err := <-serveErr:
			return err
		}
	}

	// Graceful drain: the server 503s new submissions, running jobs cancel
	// cooperatively to their durable checkpoints, and every job's final
	// report — including its resume path — is logged.
	for _, rep := range srv.Drain() {
		fmt.Fprintln(stdout, "parsimoned:", rep.String())
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(sctx) //nolint:errcheck — lingering connections just get cut
	return smokeErr
}

// smokeRun drives one tiny learning job end-to-end through the daemon's own
// HTTP surface: submit, long-poll done, download + decode the binary
// network, and run one prediction.
func smokeRun(stdout io.Writer, base string) error {
	d, _, err := synth.Generate(synth.Config{
		N: 32, M: 16, Regulators: 3, Modules: 3, Noise: 0.3, Seed: 2,
	})
	if err != nil {
		return err
	}
	var tsv bytes.Buffer
	if err := d.WriteTSV(&tsv); err != nil {
		return err
	}
	req := serve.JobRequest{
		Name:     "smoke",
		Dataset:  serve.DatasetRequest{TSV: tsv.String()},
		Seed:     3,
		Updates:  1,
		Splits:   2,
		MaxSteps: 16,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st serve.JobStatus
	if err := decodeInto(resp, http.StatusAccepted, &st); err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	for i := 0; ; i++ {
		resp, err = http.Get(fmt.Sprintf("%s/api/v1/jobs/%d?wait_ms=10000", base, st.ID))
		if err != nil {
			return err
		}
		if err := decodeInto(resp, http.StatusOK, &st); err != nil {
			return fmt.Errorf("status: %w", err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" || i >= 30 {
			return fmt.Errorf("smoke job ended %s (%s)", st.State, st.Error)
		}
	}

	resp, err = http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/network?format=binary", base, st.ID))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("network: HTTP %d: %s", resp.StatusCode, raw)
	}
	nw, err := result.ReadBinary(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("network: %w", err)
	}

	obsVec := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		obsVec[i] = d.At(i, 0)
	}
	pbody, err := json.Marshal(serve.PredictRequest{Observation: obsVec})
	if err != nil {
		return err
	}
	resp, err = http.Post(fmt.Sprintf("%s/api/v1/jobs/%d/predict", base, st.ID),
		"application/json", bytes.NewReader(pbody))
	if err != nil {
		return err
	}
	var pr serve.PredictResponse
	if err := decodeInto(resp, http.StatusOK, &pr); err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	if len(pr.Predictions) != len(nw.Modules) {
		return fmt.Errorf("predict: %d predictions for %d modules", len(pr.Predictions), len(nw.Modules))
	}
	fmt.Fprintf(stdout, "parsimoned: smoke ok — %d modules, %d-byte binary network, %d predictions\n",
		len(nw.Modules), len(raw), len(pr.Predictions))
	return nil
}

// decodeInto checks the response status and unmarshals its JSON body.
func decodeInto(resp *http.Response, want int, v any) error {
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("HTTP %d (want %d): %s", resp.StatusCode, want, raw)
	}
	return json.Unmarshal(raw, v)
}
