package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsimone/internal/result"
)

func writeNet(t *testing.T, dir, name string, n *result.Network) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := n.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleNet() *result.Network {
	return &result.Network{
		N: 4, M: 5,
		Modules: []result.Module{
			{ID: 0, Variables: []int{0, 1}, Parents: []result.Parent{{Index: 2, Score: 0.9, Count: 1}}},
			{ID: 1, Variables: []int{2, 3}},
		},
	}
}

func TestRunIdentical(t *testing.T) {
	dir := t.TempDir()
	a := writeNet(t, dir, "a.xml", sampleNet())
	b := writeNet(t, dir, "b.xml", sampleNet())
	var buf bytes.Buffer
	code, err := run([]string{a, b}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	if !strings.Contains(buf.String(), "identical") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestRunDifferent(t *testing.T) {
	dir := t.TempDir()
	a := writeNet(t, dir, "a.xml", sampleNet())
	other := sampleNet()
	other.Modules[0].Parents[0].Score = 0.5
	b := writeNet(t, dir, "b.xml", other)
	var buf bytes.Buffer
	code, err := run([]string{a, b}, &buf)
	if err != nil || code != 1 {
		t.Fatalf("code %d err %v", code, err)
	}
	if !strings.Contains(buf.String(), "DIFFERENT") || !strings.Contains(buf.String(), "parent") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestRunUsageAndIOErrors(t *testing.T) {
	if code, err := run([]string{"only-one"}, new(bytes.Buffer)); code != 2 || err == nil {
		t.Fatal("usage error not reported")
	}
	if code, err := run([]string{"/missing/a.xml", "/missing/b.xml"}, new(bytes.Buffer)); code != 2 || err == nil {
		t.Fatal("IO error not reported")
	}
}
