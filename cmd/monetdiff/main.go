// Command monetdiff compares two learned module networks (XML, as written
// by cmd/parsimone) and reports whether they are exactly identical — the
// §4.2/§5.2.1 verification as a standalone artifact check — and, when they
// differ, where.
//
// Usage:
//
//	monetdiff a.xml b.xml
//
// Exit status 0 when identical, 1 when different, 2 on usage/IO errors.
package main

import (
	"fmt"
	"io"
	"os"

	"parsimone/internal/result"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monetdiff:", err)
	}
	os.Exit(code)
}

// run compares the two files and returns the exit code (0 identical,
// 1 different, 2 usage/IO error).
func run(args []string, stdout io.Writer) (int, error) {
	if len(args) != 2 {
		return 2, fmt.Errorf("usage: monetdiff <a.xml> <b.xml>")
	}
	a, err := load(args[0])
	if err != nil {
		return 2, err
	}
	b, err := load(args[1])
	if err != nil {
		return 2, err
	}
	if result.Equal(a, b) {
		fmt.Fprintln(stdout, "identical")
		return 0, nil
	}
	fmt.Fprintln(stdout, "DIFFERENT")
	diff(stdout, a, b)
	return 1, nil
}

func load(path string) (*result.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := result.ReadXML(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return n, nil
}

// diff prints a first-difference report.
func diff(w io.Writer, a, b *result.Network) {
	if a.N != b.N || a.M != b.M {
		fmt.Fprintf(w, "  shape: %dx%d vs %dx%d\n", a.N, a.M, b.N, b.M)
	}
	if len(a.Modules) != len(b.Modules) {
		fmt.Fprintf(w, "  module count: %d vs %d\n", len(a.Modules), len(b.Modules))
		return
	}
	for i := range a.Modules {
		am, bm := a.Modules[i], b.Modules[i]
		if !sliceEq(am.Variables, bm.Variables) {
			fmt.Fprintf(w, "  module %d membership differs (%d vs %d variables)\n",
				am.ID, len(am.Variables), len(bm.Variables))
			continue
		}
		if len(am.Parents) != len(bm.Parents) {
			fmt.Fprintf(w, "  module %d parent count: %d vs %d\n", am.ID, len(am.Parents), len(bm.Parents))
			continue
		}
		for pi := range am.Parents {
			if am.Parents[pi] != bm.Parents[pi] {
				fmt.Fprintf(w, "  module %d parent %d: %+v vs %+v\n",
					am.ID, pi, am.Parents[pi], bm.Parents[pi])
				break
			}
		}
	}
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
