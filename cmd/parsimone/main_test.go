package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsimone/internal/core"
	"parsimone/internal/obs"
	"parsimone/internal/result"
	"parsimone/internal/synth"
)

// writeData generates a small synthetic data set to a temp TSV.
func writeData(t *testing.T) string {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{N: 30, M: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.tsv")
	if err := d.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEndXML(t *testing.T) {
	in := writeData(t)
	out := filepath.Join(t.TempDir(), "net.xml")
	var buf bytes.Buffer
	err := run([]string{"-in", in, "-out", out, "-max-steps", "8", "-quiet", "-acyclic"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := result.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module graph") {
		t.Fatalf("acyclic output missing: %q", buf.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	in := writeData(t)
	out := filepath.Join(t.TempDir(), "net.json")
	if err := run([]string{"-in", in, "-out", out, "-max-steps", "8", "-quiet"}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"modules"`)) {
		t.Fatal("JSON output missing modules")
	}
}

// TestRunOutFormats: every output format round-trips through -verify-out
// (the CLI reloads its own -out file and compares), the binary form is the
// smallest, and -out-format overrides the suffix.
func TestRunOutFormats(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	base := []string{"-in", in, "-max-steps", "8", "-quiet", "-verify-out"}
	sizes := map[string]int64{}
	for _, out := range []string{"net.xml", "net.json", "net.bin"} {
		path := filepath.Join(dir, out)
		if err := run(append(append([]string{}, base...), "-out", path), new(bytes.Buffer)); err != nil {
			t.Fatalf("%s: %v", out, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes[out] = fi.Size()
	}
	if sizes["net.bin"] >= sizes["net.json"] || sizes["net.bin"] >= sizes["net.xml"] {
		t.Fatalf("binary output not the smallest: %v", sizes)
	}
	// The three formats decode to the same network.
	readNet := func(name string, read func(*os.File) (*result.Network, error)) *result.Network {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n, err := read(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return n
	}
	xmlNet := readNet("net.xml", func(f *os.File) (*result.Network, error) { return result.ReadXML(f) })
	jsonNet := readNet("net.json", func(f *os.File) (*result.Network, error) { return result.ReadJSON(f) })
	binNet := readNet("net.bin", func(f *os.File) (*result.Network, error) { return result.ReadBinary(f) })
	if !result.Equal(jsonNet, xmlNet) || !result.Equal(binNet, xmlNet) {
		t.Fatal("formats decode to different networks")
	}
	// -out-format overrides the suffix: write binary into a .xml name.
	forced := filepath.Join(dir, "forced.xml")
	if err := run(append(append([]string{}, base...), "-out", forced, "-out-format", "binary"),
		new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(forced)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := result.ReadBinary(f); err != nil || !result.Equal(n, xmlNet) {
		t.Fatalf("-out-format binary not honored: %v", err)
	}
}

// TestRunCheckpointFormats: -checkpoint-format binary produces smaller
// checkpoint files, and a directory written under one format resumes under
// the other with the identical network.
func TestRunCheckpointFormats(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	ckptJSON := filepath.Join(dir, "ckpt-json")
	ckptBin := filepath.Join(dir, "ckpt-bin")
	base := []string{"-in", in, "-max-steps", "8", "-quiet"}
	run1 := append(append([]string{}, base...), "-out", filepath.Join(dir, "a.xml"), "-checkpoint", ckptJSON)
	run2 := append(append([]string{}, base...), "-out", filepath.Join(dir, "b.xml"), "-checkpoint", ckptBin, "-checkpoint-format", "binary")
	for _, args := range [][]string{run1, run2} {
		if err := run(args, new(bytes.Buffer)); err != nil {
			t.Fatal(err)
		}
	}
	var jsonSize, binSize int64
	for _, name := range []string{"ensembles.json", "modules.json", "progress.json"} {
		fj, err := os.Stat(filepath.Join(ckptJSON, name))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.Stat(filepath.Join(ckptBin, name))
		if err != nil {
			t.Fatal(err)
		}
		jsonSize += fj.Size()
		binSize += fb.Size()
	}
	if binSize*5 > jsonSize {
		t.Fatalf("binary checkpoints %d B not ≥5× smaller than JSON %d B", binSize, jsonSize)
	}
	// Cross-format resume: rerun over the binary directory with the JSON
	// setting (and vice versa); the networks must match the originals.
	run3 := append(append([]string{}, base...), "-out", filepath.Join(dir, "c.xml"), "-checkpoint", ckptBin)
	run4 := append(append([]string{}, base...), "-out", filepath.Join(dir, "d.xml"), "-checkpoint", ckptJSON, "-checkpoint-format", "binary")
	for _, args := range [][]string{run3, run4} {
		if err := run(args, new(bytes.Buffer)); err != nil {
			t.Fatal(err)
		}
	}
	read := func(name string) *result.Network {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n, err := result.ReadXML(f)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := read("a.xml")
	for _, name := range []string{"b.xml", "c.xml", "d.xml"} {
		if !result.Equal(read(name), a) {
			t.Fatalf("%s differs from the first run", name)
		}
	}
}

// TestRunParallelAndDistPathsIdentical: the CLI must produce byte-identical
// networks across p and split distribution paths.
func TestRunParallelAndDistPathsIdentical(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	outputs := map[string][]string{
		"seq.xml":  {"-in", in, "-max-steps", "8", "-quiet"},
		"p3.xml":   {"-in", in, "-max-steps", "8", "-quiet", "-p", "3"},
		"scan.xml": {"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-dist", "scan"},
		"dyn.xml":  {"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-dist", "dynamic"},
	}
	nets := map[string]*result.Network{}
	for name, args := range outputs {
		out := filepath.Join(dir, name)
		if err := run(append(args, "-out", out), new(bytes.Buffer)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		nets[name], err = result.ReadXML(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, net := range nets {
		if !result.Equal(net, nets["seq.xml"]) {
			t.Fatalf("%s differs from sequential", name)
		}
	}
}

func TestRunSubsetAndRegulators(t *testing.T) {
	in := writeData(t)
	out := filepath.Join(t.TempDir(), "net.xml")
	err := run([]string{"-in", in, "-out", out, "-max-steps", "8", "-quiet",
		"-n", "20", "-m", "15", "-regulators", "R0000,R0001"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	net, err := result.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	if net.N != 20 || net.M != 15 {
		t.Fatalf("subset not applied: %dx%d", net.N, net.M)
	}
	for _, mod := range net.Modules {
		for _, p := range mod.Parents {
			if p.Index > 1 {
				t.Fatalf("parent %d outside regulator list", p.Index)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, new(bytes.Buffer)); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/does/not/exist.tsv"}, new(bytes.Buffer)); err == nil {
		t.Fatal("missing file accepted")
	}
	in := writeData(t)
	if err := run([]string{"-in", in, "-dist", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -dist accepted")
	}
	if err := run([]string{"-in", in, "-regulators", "NOPE"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown regulator accepted")
	}
	// A -regulators value of only separators must fail fast, not reach Learn
	// with a non-nil empty candidate list.
	for _, regs := range []string{",", " , ", ",,"} {
		if err := run([]string{"-in", in, "-regulators", regs}, new(bytes.Buffer)); err == nil {
			t.Fatalf("-regulators %q accepted", regs)
		}
	}
	// -p 0 and negatives must be rejected, not silently run sequentially.
	for _, p := range []string{"0", "-3"} {
		if err := run([]string{"-in", in, "-p", p}, new(bytes.Buffer)); err == nil {
			t.Fatalf("-p %s accepted", p)
		}
	}
	for _, w := range []string{"0", "-2"} {
		if err := run([]string{"-in", in, "-threads", w}, new(bytes.Buffer)); err == nil {
			t.Fatalf("-threads %s accepted", w)
		}
	}
	if err := run([]string{"-in", in, "-checkpoint-format", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -checkpoint-format accepted")
	}
	if err := run([]string{"-in", in, "-out-format", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -out-format accepted")
	}
	// An unwritable output path must surface a write error.
	if err := run([]string{"-in", in, "-max-steps", "8", "-quiet",
		"-out", filepath.Join(t.TempDir(), "missing-dir", "net.xml")}, new(bytes.Buffer)); err == nil {
		t.Fatal("unwritable output path accepted")
	}
}

// readEvents loads and schema-checks a -trace-out file.
func readEvents(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(evs); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestRunTraceAndMetrics: the acceptance path for the observability layer —
// a CLI run with -trace-out and -metrics-out must produce a schema-valid
// event log covering the whole pipeline and a parsable metrics dump, in both
// JSON and Prometheus form, sequentially and on p ranks.
func TestRunTraceAndMetrics(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	prom := filepath.Join(dir, "metrics.prom")
	err := run([]string{"-in", in, "-out", filepath.Join(dir, "net.xml"),
		"-max-steps", "8", "-quiet", "-p", "2", "-threads", "2",
		"-trace-out", trace, "-metrics-out", metrics}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	evs := readEvents(t, trace)
	want := map[string]bool{
		obs.TypeRunStart: false, obs.TypeRunEnd: false,
		obs.TypeTaskStart: false, obs.TypeTaskEnd: false,
		obs.TypeModuleStart: false, obs.TypeModuleDone: false,
		obs.TypePoolCost: false, obs.TypeCommStats: false,
		obs.TypeConsensus: false,
	}
	ranks := map[int]bool{}
	for _, ev := range evs {
		if _, ok := want[ev.Type]; ok {
			want[ev.Type] = true
		}
		ranks[ev.Rank] = true
	}
	for typ, seen := range want {
		if !seen {
			t.Errorf("no %s event in the CLI trace", typ)
		}
	}
	if !ranks[0] || !ranks[1] {
		t.Fatalf("merged trace missing a rank: %v", ranks)
	}
	if evs[0].Type != obs.TypeRunStart || evs[0].Run.Ranks != 2 || evs[0].Run.Workers != 2 {
		t.Fatalf("bad run.start: %+v", evs[0])
	}

	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var dump []map[string]any
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("metrics dump not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, m := range dump {
		names[m["name"].(string)] = true
	}
	for _, name := range []string{"pool_cost_total", "pool_items_total", "ganesh_decisions_total", "comm_sends_total"} {
		if !names[name] {
			t.Errorf("metrics dump missing %s (have %v)", name, names)
		}
	}

	// Prometheus text form via the .prom suffix, sequential engine.
	err = run([]string{"-in", in, "-out", filepath.Join(dir, "net2.xml"),
		"-max-steps", "8", "-quiet", "-metrics-out", prom}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text, []byte("# TYPE pool_cost_total counter")) {
		t.Fatalf("not Prometheus text format:\n%s", text[:min(len(text), 300)])
	}
}

// TestRunTraceDeterministic: two same-seed CLI runs must produce identical
// event streams modulo wall-clock fields, and attaching the sinks must not
// change the learned network.
func TestRunTraceDeterministic(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	base := []string{"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-threads", "2"}
	var traces [2][]obs.Event
	for i := range traces {
		tr := filepath.Join(dir, "trace"+strings.Repeat("x", i)+".jsonl")
		args := append(append([]string{}, base...),
			"-out", filepath.Join(dir, "net"+strings.Repeat("x", i)+".xml"), "-trace-out", tr)
		if err := run(args, new(bytes.Buffer)); err != nil {
			t.Fatal(err)
		}
		traces[i] = readEvents(t, tr)
	}
	if err := obs.DiffCanonical(traces[0], traces[1]); err != nil {
		t.Fatal(err)
	}
	// Result invisibility: same network with and without the sinks.
	if err := run(append(append([]string{}, base...),
		"-out", filepath.Join(dir, "bare.xml")), new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	read := func(name string) *result.Network {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		net, err := result.ReadXML(f)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	if !result.Equal(read("net.xml"), read("bare.xml")) {
		t.Fatal("attaching observability sinks changed the learned network")
	}
}

// TestRunPprofFlags: the profiling flags must produce non-empty pprof files.
func TestRunPprofFlags(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	heap := filepath.Join(dir, "heap.pb.gz")
	err := run([]string{"-in", in, "-out", filepath.Join(dir, "net.xml"),
		"-max-steps", "8", "-quiet", "-pprof-cpu", cpu, "-pprof-heap", heap}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestRunThreadsIdentical: the CLI must produce byte-identical networks for
// every -threads value, alone and combined with -p.
func TestRunThreadsIdentical(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	outputs := map[string][]string{
		"w1.xml":   {"-in", in, "-max-steps", "8", "-quiet"},
		"w4.xml":   {"-in", in, "-max-steps", "8", "-quiet", "-threads", "4"},
		"p2w3.xml": {"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-threads", "3"},
	}
	nets := map[string]*result.Network{}
	for name, args := range outputs {
		out := filepath.Join(dir, name)
		if err := run(append(args, "-out", out), new(bytes.Buffer)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		nets[name], err = result.ReadXML(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, net := range nets {
		if !result.Equal(net, nets["w1.xml"]) {
			t.Fatalf("%s differs from single-worker run", name)
		}
	}
}

// TestRunTimeoutDrainsAndResumes: -timeout cancels the run cleanly — the
// error is a *core.CancelledError carrying core.ErrDeadline and naming the
// checkpoint directory, the exit code is the distinct cancellation code 3,
// and a rerun without the timeout resumes to the identical network.
func TestRunTimeoutDrainsAndResumes(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	out := filepath.Join(dir, "net.xml")
	// A 1 ns timeout has certainly expired by the first cancellation check.
	err := run([]string{"-in", in, "-out", out, "-quiet",
		"-checkpoint", ckpt, "-timeout", "1ns"}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("run with an expired -timeout returned no error")
	}
	var ce *core.CancelledError
	if !errors.As(err, &ce) || !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("got %v, want a *CancelledError wrapping ErrDeadline", err)
	}
	if ce.CheckpointDir != ckpt {
		t.Fatalf("CancelledError names %q, want the -checkpoint dir %q", ce.CheckpointDir, ckpt)
	}
	if !strings.Contains(err.Error(), ckpt) {
		t.Fatalf("error %q does not print the checkpoint path", err)
	}
	if exitCode(err) != 3 {
		t.Fatalf("exit code %d, want the cancellation code 3", exitCode(err))
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("cancelled run still wrote the output network")
	}
	// Reference network: a clean run without checkpointing.
	ref := filepath.Join(dir, "ref.xml")
	if err := run([]string{"-in", in, "-out", ref, "-quiet"}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	// Resume over the drained directory.
	if err := run([]string{"-in", in, "-out", out, "-quiet", "-checkpoint", ckpt}, new(bytes.Buffer)); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	read := func(path string) *result.Network {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n, err := result.ReadXML(f)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if !result.Equal(read(out), read(ref)) {
		t.Fatal("resumed network differs from the uninterrupted run")
	}
}

// TestRunSignalContextDrains: a fired lifetime context (the SIGINT/SIGTERM
// path through runCtx) drains exactly like -timeout, as ErrCancelled.
func TestRunSignalContextDrains(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal has already arrived
	err := runCtx(ctx, []string{"-in", in, "-out", filepath.Join(dir, "net.xml"), "-quiet",
		"-checkpoint", filepath.Join(dir, "ckpt")}, new(bytes.Buffer))
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if exitCode(err) != 3 {
		t.Fatalf("exit code %d, want 3", exitCode(err))
	}
}

// TestRunTimeoutValidation: a negative -timeout is rejected up front, and an
// ordinary failure keeps exit code 1.
func TestRunTimeoutValidation(t *testing.T) {
	in := writeData(t)
	err := run([]string{"-in", in, "-timeout", "-1s"}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("negative -timeout accepted")
	}
	if exitCode(err) != 1 {
		t.Fatalf("validation failure got exit code %d, want 1", exitCode(err))
	}
}
