package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsimone/internal/result"
	"parsimone/internal/synth"
)

// writeData generates a small synthetic data set to a temp TSV.
func writeData(t *testing.T) string {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{N: 30, M: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.tsv")
	if err := d.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEndXML(t *testing.T) {
	in := writeData(t)
	out := filepath.Join(t.TempDir(), "net.xml")
	var buf bytes.Buffer
	err := run([]string{"-in", in, "-out", out, "-max-steps", "8", "-quiet", "-acyclic"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := result.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module graph") {
		t.Fatalf("acyclic output missing: %q", buf.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	in := writeData(t)
	out := filepath.Join(t.TempDir(), "net.json")
	if err := run([]string{"-in", in, "-out", out, "-max-steps", "8", "-quiet"}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"modules"`)) {
		t.Fatal("JSON output missing modules")
	}
}

// TestRunParallelAndDistPathsIdentical: the CLI must produce byte-identical
// networks across p and split distribution paths.
func TestRunParallelAndDistPathsIdentical(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	outputs := map[string][]string{
		"seq.xml":  {"-in", in, "-max-steps", "8", "-quiet"},
		"p3.xml":   {"-in", in, "-max-steps", "8", "-quiet", "-p", "3"},
		"scan.xml": {"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-dist", "scan"},
		"dyn.xml":  {"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-dist", "dynamic"},
	}
	nets := map[string]*result.Network{}
	for name, args := range outputs {
		out := filepath.Join(dir, name)
		if err := run(append(args, "-out", out), new(bytes.Buffer)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		nets[name], err = result.ReadXML(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, net := range nets {
		if !result.Equal(net, nets["seq.xml"]) {
			t.Fatalf("%s differs from sequential", name)
		}
	}
}

func TestRunSubsetAndRegulators(t *testing.T) {
	in := writeData(t)
	out := filepath.Join(t.TempDir(), "net.xml")
	err := run([]string{"-in", in, "-out", out, "-max-steps", "8", "-quiet",
		"-n", "20", "-m", "15", "-regulators", "R0000,R0001"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	net, err := result.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	if net.N != 20 || net.M != 15 {
		t.Fatalf("subset not applied: %dx%d", net.N, net.M)
	}
	for _, mod := range net.Modules {
		for _, p := range mod.Parents {
			if p.Index > 1 {
				t.Fatalf("parent %d outside regulator list", p.Index)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, new(bytes.Buffer)); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/does/not/exist.tsv"}, new(bytes.Buffer)); err == nil {
		t.Fatal("missing file accepted")
	}
	in := writeData(t)
	if err := run([]string{"-in", in, "-dist", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -dist accepted")
	}
	if err := run([]string{"-in", in, "-regulators", "NOPE"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown regulator accepted")
	}
	// -p 0 and negatives must be rejected, not silently run sequentially.
	for _, p := range []string{"0", "-3"} {
		if err := run([]string{"-in", in, "-p", p}, new(bytes.Buffer)); err == nil {
			t.Fatalf("-p %s accepted", p)
		}
	}
	for _, w := range []string{"0", "-2"} {
		if err := run([]string{"-in", in, "-threads", w}, new(bytes.Buffer)); err == nil {
			t.Fatalf("-threads %s accepted", w)
		}
	}
	// An unwritable output path must surface a write error.
	if err := run([]string{"-in", in, "-max-steps", "8", "-quiet",
		"-out", filepath.Join(t.TempDir(), "missing-dir", "net.xml")}, new(bytes.Buffer)); err == nil {
		t.Fatal("unwritable output path accepted")
	}
}

// TestRunThreadsIdentical: the CLI must produce byte-identical networks for
// every -threads value, alone and combined with -p.
func TestRunThreadsIdentical(t *testing.T) {
	in := writeData(t)
	dir := t.TempDir()
	outputs := map[string][]string{
		"w1.xml":   {"-in", in, "-max-steps", "8", "-quiet"},
		"w4.xml":   {"-in", in, "-max-steps", "8", "-quiet", "-threads", "4"},
		"p2w3.xml": {"-in", in, "-max-steps", "8", "-quiet", "-p", "2", "-threads", "3"},
	}
	nets := map[string]*result.Network{}
	for name, args := range outputs {
		out := filepath.Join(dir, name)
		if err := run(append(args, "-out", out), new(bytes.Buffer)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		nets[name], err = result.ReadXML(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, net := range nets {
		if !result.Equal(net, nets["w1.xml"]) {
			t.Fatalf("%s differs from single-worker run", name)
		}
	}
}
