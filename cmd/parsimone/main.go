// Command parsimone learns a module network from a TSV expression data set,
// mirroring the paper's tool: GaneSH co-clustering, consensus clustering,
// and module learning, sequentially or on p message-passing ranks (the
// network is identical either way).
//
// Usage:
//
//	parsimone -in expression.tsv -out network.xml [flags]
//
// Input format: one row per variable — name, then one tab-separated value
// per observation; an optional header line is skipped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/obs"
	"parsimone/internal/result"
)

// writeFileWith creates path, streams fn into it, and surfaces close errors
// (buffered-write failures a deferred close would swallow).
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// resolveOutFormat maps the -out-format flag (and, for auto, the -out
// suffix) to a concrete format.
func resolveOutFormat(flag, out string) (string, error) {
	switch flag {
	case "xml", "json", "binary":
		return flag, nil
	case "auto":
		switch {
		case strings.HasSuffix(out, ".json"):
			return "json", nil
		case strings.HasSuffix(out, ".bin"):
			return "binary", nil
		default:
			return "xml", nil
		}
	default:
		return "", fmt.Errorf("unknown -out-format %q (want auto, xml, json, or binary)", flag)
	}
}

// verifyNetworkFile reloads a just-written network file and checks it
// decodes to exactly the network that was written — an end-to-end check of
// the serialization path (-verify-out).
func verifyNetworkFile(path, format string, want *result.Network) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var got *result.Network
	switch format {
	case "json":
		got, err = result.ReadJSON(f)
	case "binary":
		got, err = result.ReadBinary(f)
	default:
		got, err = result.ReadXML(f)
	}
	if err != nil {
		return fmt.Errorf("verifying %s: %w", path, err)
	}
	if !result.Equal(got, want) {
		return fmt.Errorf("verifying %s: reloaded network differs from the learned one", path)
	}
	return nil
}

func main() {
	// SIGINT/SIGTERM drain the run cooperatively: every rank stops at its
	// next deterministic cancellation check, the durable checkpoints are the
	// resume state, and the process exits with the cancellation exit code.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "parsimone:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode distinguishes a cooperative drain (deadline or signal; the
// *CancelledError already names the checkpoint directory the run drained
// to) from an ordinary failure.
func exitCode(err error) int {
	var ce *core.CancelledError
	if errors.As(err, &ce) {
		return 3
	}
	return 1
}

// run executes the CLI with its own flag set so it is testable.
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx is run under a caller-supplied lifetime context (the signal
// context in main): when it fires — or when -timeout expires — the run
// drains to its checkpoints and returns a *core.CancelledError.
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("parsimone", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input TSV expression matrix (required)")
		out        = fs.String("out", "network.xml", "output network file (.xml, .json, or .bin)")
		outFormat  = fs.String("out-format", "auto", "output network format: auto (by -out suffix: .json → json, .bin → binary, else xml), xml, json, or binary")
		verifyOut  = fs.Bool("verify-out", false, "after writing -out, reload it and verify it decodes to the identical network")
		ranks      = fs.Int("p", 1, "number of message-passing ranks")
		threads    = fs.Int("threads", 1, "intra-rank worker goroutines per rank (W); the network is identical for every (p, W)")
		seed       = fs.Uint64("seed", 1, "PRNG seed")
		ganeshRuns = fs.Int("ganesh-runs", 1, "number of GaneSH co-clustering runs (G)")
		updates    = fs.Int("updates", 1, "GaneSH update steps per run (U)")
		treeRuns   = fs.Int("trees", 1, "regression trees per module (R)")
		numSplits  = fs.Int("splits", 2, "splits chosen per tree node (J)")
		maxSteps   = fs.Int("max-steps", 64, "bootstrap sampling cap per split (S)")
		dist       = fs.String("dist", "static", "parallel split distribution: static, scan, or dynamic")
		ckptDir    = fs.String("checkpoint", "", "checkpoint directory: task outputs and per-module progress are persisted there, and a rerun with the same data, seed, and options resumes from whatever checkpoints exist, learning the identical network; stale checkpoints from other configurations are rejected")
		ckptFormat = fs.String("checkpoint-format", "json", "checkpoint file format: json (v2) or binary (v3, several times smaller); reads auto-detect, so either setting resumes a directory written by the other")
		restarts   = fs.Int("max-restarts", 0, "with -p > 1: restart the world up to this many times after a rank failure, resuming from -checkpoint if set")
		timeout    = fs.Duration("timeout", 0, "cancel the run after this long (0 = none): it drains cleanly to -checkpoint, exits with code 3, and a rerun with the same flags resumes to the identical network; SIGINT/SIGTERM drain the same way")
		regulators = fs.String("regulators", "", "comma-separated candidate regulator names (default: all variables)")
		subN       = fs.Int("n", 0, "use only the first n variables (0 = all)")
		subM       = fs.Int("m", 0, "use only the first m observations (0 = all)")
		acyclic    = fs.Bool("acyclic", false, "print the acyclic module graph after learning")
		quiet      = fs.Bool("quiet", false, "suppress progress output")
		traceOut   = fs.String("trace-out", "", "write the structured run-event log (JSON lines, rank-merged) to this file")
		metricsOut = fs.String("metrics-out", "", "write the metrics dump to this file (JSON, or Prometheus text format with a .prom suffix)")
		pprofCPU   = fs.String("pprof-cpu", "", "write a CPU profile of the learning run to this file")
		pprofHeap  = fs.String("pprof-heap", "", "write a heap profile taken after learning to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	if *ranks < 1 {
		return fmt.Errorf("-p must be ≥ 1, got %d", *ranks)
	}
	if *threads < 1 {
		return fmt.Errorf("-threads must be ≥ 1, got %d", *threads)
	}
	if *restarts < 0 {
		return fmt.Errorf("-max-restarts must be ≥ 0, got %d", *restarts)
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be ≥ 0, got %v", *timeout)
	}
	if *ckptDir != "" {
		if fi, err := os.Stat(*ckptDir); err == nil && !fi.IsDir() {
			return fmt.Errorf("-checkpoint %q exists and is not a directory", *ckptDir)
		}
	}
	if *ckptFormat != "json" && *ckptFormat != "binary" {
		return fmt.Errorf("unknown -checkpoint-format %q (want json or binary)", *ckptFormat)
	}
	format, err := resolveOutFormat(*outFormat, *out)
	if err != nil {
		return err
	}

	d, err := dataset.LoadTSV(*in)
	if err != nil {
		return err
	}
	if *subN > 0 || *subM > 0 {
		n, m := d.N, d.M
		if *subN > 0 {
			n = *subN
		}
		if *subM > 0 {
			m = *subM
		}
		if d, err = d.Subset(n, m); err != nil {
			return err
		}
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	logf("loaded %d variables × %d observations from %s", d.N, d.M, *in)

	opt := core.DefaultOptions()
	opt.Seed = *seed
	opt.Workers = *threads
	opt.GaneshRuns = *ganeshRuns
	opt.Ganesh.Updates = *updates
	opt.Module.Tree.Updates = *treeRuns + opt.Module.Tree.Burnin
	opt.Module.Splits.NumSplits = *numSplits
	opt.Module.Splits.MaxSteps = *maxSteps
	opt.CheckpointDir = *ckptDir
	opt.BinaryCheckpoints = *ckptFormat == "binary"
	opt.MaxRestarts = *restarts
	switch *dist {
	case "static":
	case "scan":
		opt.Module.Splits.ScanSelection = true
	case "dynamic":
		opt.Module.Splits.DynamicChunk = 64
	default:
		return fmt.Errorf("unknown -dist %q (want static, scan, or dynamic)", *dist)
	}
	if *regulators != "" {
		index := map[string]int{}
		for i, name := range d.Names {
			index[name] = i
		}
		for _, name := range strings.Split(*regulators, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			i, ok := index[name]
			if !ok {
				return fmt.Errorf("regulator %q not in the data set", name)
			}
			opt.Module.Splits.Candidates = append(opt.Module.Splits.Candidates, i)
		}
		// Fail fast here rather than after data loading inside Learn: a list
		// of only separators/blanks (e.g. -regulators ",") would otherwise
		// produce the non-nil empty Candidates slice splits.Params rejects.
		if len(opt.Module.Splits.Candidates) == 0 {
			return fmt.Errorf("-regulators %q names no variables — the candidate-parent list would be empty", *regulators)
		}
	}

	opt.Events = *traceOut != ""
	if *metricsOut != "" {
		opt.Metrics = obs.NewRegistry()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt.Ctx = ctx

	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var output *core.Output
	if *ranks > 1 {
		logf("learning on %d ranks × %d workers ...", *ranks, *threads)
		// The -ranks flag picks the world size before any rank exists;
		// LearnParallel launches every rank itself, so all of them reach the
		// collectives together. The rank-guard heuristic keys on the
		// identifier name alone and cannot see that.
		//parsivet:commreach — audited: flag-guarded launcher, world not yet created, all ranks enter together
		output, err = core.LearnParallel(*ranks, d, opt)
	} else {
		logf("learning sequentially (%d workers) ...", *threads)
		output, err = core.Learn(d, opt)
	}
	if err != nil {
		return err
	}
	for _, ev := range output.Recovery {
		logf("recovered: %s", ev)
	}
	logf("learned %d modules; task times: %s", len(output.Network.Modules), output.Timers)

	if *traceOut != "" {
		if err := writeFileWith(*traceOut, func(w io.Writer) error {
			return obs.WriteJSONL(w, output.Events)
		}); err != nil {
			return fmt.Errorf("writing %s: %w", *traceOut, err)
		}
		logf("wrote %d run events to %s", len(output.Events), *traceOut)
	}
	if *metricsOut != "" {
		dump := opt.Metrics.WriteJSON
		if strings.HasSuffix(*metricsOut, ".prom") {
			dump = opt.Metrics.WritePrometheus
		}
		if err := writeFileWith(*metricsOut, dump); err != nil {
			return fmt.Errorf("writing %s: %w", *metricsOut, err)
		}
		logf("wrote metrics to %s", *metricsOut)
	}
	if *pprofHeap != "" {
		if err := writeFileWith(*pprofHeap, func(w io.Writer) error {
			runtime.GC() // settle allocations so the profile reflects live data
			return pprof.WriteHeapProfile(w)
		}); err != nil {
			return fmt.Errorf("writing %s: %w", *pprofHeap, err)
		}
		logf("wrote heap profile to %s", *pprofHeap)
	}

	if err := writeFileWith(*out, func(w io.Writer) error {
		switch format {
		case "json":
			return output.Network.WriteJSON(w)
		case "binary":
			return output.Network.WriteBinary(w)
		default:
			return output.Network.WriteXML(w)
		}
	}); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	logf("wrote %s (%s)", *out, format)
	if *verifyOut {
		if err := verifyNetworkFile(*out, format, output.Network); err != nil {
			return err
		}
		logf("verified %s reloads to the identical network", *out)
	}

	if *acyclic {
		edges := result.EnforceAcyclic(output.Network.ModuleGraph(), len(output.Network.Modules))
		fmt.Fprintf(stdout, "module graph (%d edges, acyclic):\n", len(edges))
		for _, e := range edges {
			fmt.Fprintf(stdout, "  M%d -> M%d  (score %.3f)\n", e.From, e.To, e.Score)
		}
	}
	return nil
}
