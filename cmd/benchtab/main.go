// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§5) at reduced scale. Each experiment prints the same
// rows or series the paper reports, with the paper's values noted for
// comparison.
//
// Usage:
//
//	benchtab [-quick] [-list] <experiment>...
//	benchtab all
//
// Experiments: table1, fig3, fig4, fig5a, fig5b, fig5c, fig6, table2,
// imbalance, ablation-dist, estimate, determinism.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parsimone/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced CI-scale experiment sizes")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtab [-quick] [-list] <experiment>...|all\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", bench.Experiments())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.Experiments()
	}
	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}
	for _, id := range ids {
		start := time.Now()
		table, err := bench.Run(id, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
