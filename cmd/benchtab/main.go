// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§5) at reduced scale. Each experiment prints the same
// rows or series the paper reports, with the paper's values noted for
// comparison.
//
// Usage:
//
//	benchtab [-quick] [-list] [-json] <experiment>...
//	benchtab all
//
// With -json every experiment result is emitted as one machine-readable
// JSON object per line ({"id", "seconds", "table"}) instead of the aligned
// text tables, so runs can be diffed and plotted by scripts.
//
// Experiments: table1, fig3, fig4, fig5a, fig5b, fig5c, fig6, table2,
// imbalance, ablation-dist, estimate, determinism, obs-overhead, ….
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parsimone/internal/bench"
)

// jsonResult is the machine-readable per-experiment record of -json mode.
type jsonResult struct {
	ID      string       `json:"id"`
	Seconds float64      `json:"seconds"`
	Table   *bench.Table `json:"table"`
}

func main() {
	quick := flag.Bool("quick", false, "use the reduced CI-scale experiment sizes")
	list := flag.Bool("list", false, "list available experiments and exit")
	asJSON := flag.Bool("json", false, "emit one JSON object per experiment instead of text tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtab [-quick] [-list] [-json] <experiment>...|all\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", bench.Experiments())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.Experiments()
	}
	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		//parsivet:wallclock — benchmark harness timing; never feeds learned state
		start := time.Now()
		table, err := bench.Run(id, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		//parsivet:wallclock — benchmark harness timing; never feeds learned state
		elapsed := time.Since(start)
		if *asJSON {
			if err := enc.Encode(jsonResult{ID: id, Seconds: elapsed.Seconds(), Table: table}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s regenerated in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}
}
