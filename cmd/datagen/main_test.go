package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsimone/internal/dataset"
)

func TestRunWritesDataAndTruth(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.tsv")
	truth := filepath.Join(dir, "t.tsv")
	err := run([]string{"-n", "40", "-m", "20", "-modules", "3", "-out", out, "-truth", truth})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.LoadTSV(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 40 || d.M != 20 {
		t.Fatalf("shape %dx%d", d.N, d.M)
	}
	raw, err := os.ReadFile(truth)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# gene\tmodule", "# module\tregulators", "# observation\tgroup"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("truth file missing %q", want)
		}
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.tsv")
	b := filepath.Join(dir, "b.tsv")
	if err := run([]string{"-n", "20", "-m", "10", "-seed", "5", "-out", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "20", "-m", "10", "-seed", "5", "-out", b}); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if string(ba) != string(bb) {
		t.Fatal("same seed produced different files")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-n", "2", "-m", "2", "-out", filepath.Join(t.TempDir(), "x.tsv")}); err == nil {
		t.Fatal("tiny config accepted")
	}
}
