// Command datagen generates module-structured synthetic gene-expression
// data sets with known ground truth — the stand-in for the paper's yeast
// and A. thaliana compendia (see DESIGN.md §2). Alongside the TSV matrix it
// writes a ground-truth file (true module per gene, true regulators per
// module) for accuracy studies.
//
// Usage:
//
//	datagen -n 400 -m 100 -out yeast_like.tsv [-truth truth.tsv] [flags]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"parsimone/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// run executes the CLI with its own flag set so it is testable.
func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 400, "number of variables (genes)")
		m          = fs.Int("m", 100, "number of observations")
		modules    = fs.Int("modules", 0, "ground-truth modules (0 = n/35)")
		regulators = fs.Int("regulators", 0, "regulator variables (0 = n/20)")
		groups     = fs.Int("groups", 0, "condition groups (0 = ceil(sqrt(m)))")
		noise      = fs.Float64("noise", 0.4, "member-gene noise standard deviation")
		seed       = fs.Uint64("seed", 1, "PRNG seed")
		out        = fs.String("out", "synthetic.tsv", "output TSV path")
		truthPath  = fs.String("truth", "", "optional ground-truth output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, truth, err := synth.Generate(synth.Config{
		N: *n, M: *m, Modules: *modules, Regulators: *regulators,
		CondGroups: *groups, Noise: *noise, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := d.SaveTSV(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d×%d matrix to %s (%d modules, %d condition groups)\n",
		d.N, d.M, *out, truth.NumModules, truth.NumGroups)

	if *truthPath == "" {
		return nil
	}
	f, err := os.Create(*truthPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# gene\tmodule")
	for i, mod := range truth.ModuleOf {
		fmt.Fprintf(w, "%s\t%d\n", d.Names[i], mod)
	}
	fmt.Fprintln(w, "# module\tregulators")
	for mod, regs := range truth.Regulators {
		fmt.Fprintf(w, "M%d", mod)
		for _, r := range regs {
			fmt.Fprintf(w, "\t%s", d.Names[r])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "# observation\tgroup")
	for j, g := range truth.CondGroup {
		fmt.Fprintf(w, "obs%d\t%d\n", j, g)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote ground truth to %s\n", *truthPath)
	return nil
}
