// Command parsivet is the repo's determinism linter: a multichecker of
// nine analyzers that statically enforce the invariants the reproduction's
// bit-identity guarantee rests on (see internal/analysis):
//
//	maporder    — no unordered map iteration in deterministic packages
//	prngonly    — stochastic draws only via internal/prng; no wallclock reads
//	floateq     — no raw float ==/!= outside internal/score's quantizers
//	commsym     — no rank-guarded collectives, no dropped comm/checkpoint errors
//	seqcount    — no ad-hoc goroutines bypassing internal/pool
//	scorekernel — no direct math.Lgamma outside internal/score's LogML kernels
//	detreach    — no deterministic entry point transitively reaches a
//	              wallclock/PRNG/env sink (whole-program, call-graph based)
//	commreach   — no rank-guarded call transitively reaches a comm collective
//	errsink     — no comm/wire/checkpoint error discarded along an
//	              interprocedural propagation chain
//
// The first six are per-package syntactic checks; the last three build a
// static call graph over every loaded package (internal/analysis/callgraph)
// and propagate taint across package boundaries, so their findings carry
// the full call path from entry point to sink.
//
// Usage:
//
//	parsivet [-json] [-fast] [-strict-suppressions] [-time] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when findings
// remain, 2 on a load or usage error. Findings are silenced per site with
// //parsivet:<keyword> comments on the flagged line or the line above;
// several keywords share one comment separated by commas
// (see internal/analysis for the convention).
//
// -fast runs only the per-package syntactic analyzers, skipping call-graph
// construction — a sub-second pre-commit loop. It cannot be combined with
// -strict-suppressions: stale detection over a subset of analyzers would
// misreport the whole-program keywords as unknown.
//
// -strict-suppressions additionally flags every //parsivet: comment that no
// analyzer consulted during the run — stale annotations that outlived the
// code they audited — and comments naming unknown keywords. These findings
// carry the analyzer name "suppressions" and cannot themselves be
// suppressed.
//
// -time prints the lint wall time to stderr when the run completes.
//
// With -json, findings are a JSON array on stdout; each element is
//
//	{
//	  "file":     "internal/ganesh/ganesh.go",  // path as loaded
//	  "line":     42,                           // 1-based
//	  "column":   7,                            // 1-based, in bytes
//	  "analyzer": "maporder",                   // which check fired
//	  "suppress": "ordered",                    // keyword that would silence it (omitted when none)
//	  "message":  "map iteration over ..."      // human-readable finding
//	}
//
// sorted by file, line, column, then analyzer. A clean run emits [].
//
// parsivet is wired into `make lint` (and thence the tier1 gate) as a
// standalone driver rather than a `go vet -vettool`: the vettool protocol
// needs the x/tools unitchecker, and this repository builds with the
// standard library only, no module downloads. The analyzer surface mirrors
// x/tools go/analysis, so migrating to a vettool later is mechanical.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parsimone/internal/analysis"
	"parsimone/internal/analysis/commreach"
	"parsimone/internal/analysis/commsym"
	"parsimone/internal/analysis/detreach"
	"parsimone/internal/analysis/errsink"
	"parsimone/internal/analysis/floateq"
	"parsimone/internal/analysis/maporder"
	"parsimone/internal/analysis/prngonly"
	"parsimone/internal/analysis/scorekernel"
	"parsimone/internal/analysis/seqcount"
)

var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	prngonly.Analyzer,
	floateq.Analyzer,
	commsym.Analyzer,
	seqcount.Analyzer,
	scorekernel.Analyzer,
	detreach.Analyzer,
	commreach.Analyzer,
	errsink.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("parsivet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fast := fs.Bool("fast", false, "run only the per-package syntactic analyzers (skips call-graph checks)")
	strict := fs.Bool("strict-suppressions", false, "also flag stale and unknown //parsivet: comments")
	timed := fs.Bool("time", false, "print lint wall time to stderr")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: parsivet [-json] [-fast] [-strict-suppressions] [-time] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "\nanalyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-11s %s (suppress: //parsivet:%s)\n", a.Name, a.Doc, a.Suppress)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fast && *strict {
		fmt.Fprintln(os.Stderr, "parsivet: -fast and -strict-suppressions cannot be combined: stale detection needs every analyzer's keywords in play")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	active := analyzers
	if *fast {
		active = nil
		for _, a := range analyzers {
			if a.Run != nil {
				active = append(active, a)
			}
		}
	}
	//parsivet:wallclock — lint harness timing for the -time flag, reported to the operator, never part of analysis results
	start := time.Now()
	var diags []analysis.Diagnostic
	var err error
	if *strict {
		diags, err = analysis.RunStrict(patterns, active)
	} else {
		diags, err = analysis.Run(patterns, active)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *timed {
		//parsivet:wallclock — same harness timing readout
		fmt.Fprintf(os.Stderr, "parsivet: %d finding(s) in %.2fs\n", len(diags), time.Since(start).Seconds())
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else if err := analysis.WriteText(os.Stderr, diags); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
