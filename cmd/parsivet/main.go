// Command parsivet is the repo's determinism linter: a multichecker of
// six analyzers that statically enforce the invariants the reproduction's
// bit-identity guarantee rests on (see internal/analysis):
//
//	maporder    — no unordered map iteration in deterministic packages
//	prngonly    — stochastic draws only via internal/prng; no wallclock reads
//	floateq     — no raw float ==/!= outside internal/score's quantizers
//	commsym     — no rank-guarded collectives, no dropped comm/checkpoint errors
//	seqcount    — no ad-hoc goroutines bypassing internal/pool
//	scorekernel — no direct math.Lgamma outside internal/score's LogML kernels
//
// Usage:
//
//	parsivet [-json] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when findings
// remain, 2 on a load or usage error. Findings are silenced per site with
// //parsivet:<keyword> comments (see internal/analysis for the convention).
//
// parsivet is wired into `make lint` (and thence the tier1 gate) as a
// standalone driver rather than a `go vet -vettool`: the vettool protocol
// needs the x/tools unitchecker, and this repository builds with the
// standard library only, no module downloads. The analyzer surface mirrors
// x/tools go/analysis, so migrating to a vettool later is mechanical.
package main

import (
	"flag"
	"fmt"
	"os"

	"parsimone/internal/analysis"
	"parsimone/internal/analysis/commsym"
	"parsimone/internal/analysis/floateq"
	"parsimone/internal/analysis/maporder"
	"parsimone/internal/analysis/prngonly"
	"parsimone/internal/analysis/scorekernel"
	"parsimone/internal/analysis/seqcount"
)

var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	prngonly.Analyzer,
	floateq.Analyzer,
	commsym.Analyzer,
	seqcount.Analyzer,
	scorekernel.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("parsivet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: parsivet [-json] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "\nanalyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-9s %s (suppress: //parsivet:%s)\n", a.Name, a.Doc, a.Suppress)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else if err := analysis.WriteText(os.Stderr, diags); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
