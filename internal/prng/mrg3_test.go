package prng

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestModulusIsSophieGermainPrime(t *testing.T) {
	m := new(big.Int).SetUint64(Modulus)
	if !m.ProbablyPrime(64) {
		t.Fatalf("modulus %d is not prime", Modulus)
	}
	safe := new(big.Int).SetUint64(2*Modulus + 1)
	if !safe.ProbablyPrime(64) {
		t.Fatalf("2·%d+1 is not prime; modulus is not a Sophie-Germain prime", Modulus)
	}
}

func TestCoefficientsInRange(t *testing.T) {
	for _, a := range []uint64{A1, A2, A3} {
		if a == 0 || a >= Modulus {
			t.Fatalf("coefficient %d out of range (0, %d)", a, Modulus)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("seeds 1 and 2 collide on %d of 1000 outputs", same)
	}
}

func TestNextInRange(t *testing.T) {
	g := New(7)
	for i := 0; i < 10000; i++ {
		if v := g.Next(); v >= Modulus {
			t.Fatalf("output %d out of range at step %d", v, i)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	g := New(99)
	for i := 0; i < 17; i++ {
		g.Next()
	}
	s0, s1, s2 := g.State()
	h := NewFromState(s0, s1, s2)
	for i := 0; i < 100; i++ {
		if g.Next() != h.Next() {
			t.Fatalf("restored state diverged at step %d", i)
		}
	}
}

func TestNewFromStatePanics(t *testing.T) {
	cases := [][3]uint64{
		{Modulus, 1, 1},
		{1, Modulus, 1},
		{1, 1, Modulus},
		{0, 0, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFromState(%v) did not panic", c)
				}
			}()
			NewFromState(c[0], c[1], c[2])
		}()
	}
}

func TestClone(t *testing.T) {
	g := New(5)
	g.Next()
	c := g.Clone()
	// Advancing the clone must not affect the original.
	c.Next()
	c.Next()
	g2 := g.Clone()
	if g.Next() != g2.Next() {
		t.Fatal("clone did not preserve state")
	}
}

func TestJumpMatchesIteration(t *testing.T) {
	for _, k := range []uint64{0, 1, 2, 3, 7, 64, 1000, 12345} {
		a := New(11)
		b := New(11)
		a.Jump(k)
		for i := uint64(0); i < k; i++ {
			b.Next()
		}
		for i := 0; i < 50; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("Jump(%d) diverged from %d iterated steps at output %d", k, k, i)
			}
		}
	}
}

func TestJumpComposes(t *testing.T) {
	// Jump(a) then Jump(b) equals Jump(a+b).
	check := func(a, b uint16) bool {
		g1 := New(3)
		g1.Jump(uint64(a))
		g1.Jump(uint64(b))
		g2 := New(3)
		g2.Jump(uint64(a) + uint64(b))
		x, y, z := g1.State()
		p, q, r := g2.State()
		return x == p && y == q && z == r
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstreamMatchesJump(t *testing.T) {
	g := New(21)
	g.Next()
	for _, i := range []uint64{0, 1, 2, 5} {
		s := g.Substream(i)
		j := g.Clone()
		for k := uint64(0); k < i; k++ {
			j.Jump(SubstreamSpacing)
		}
		a0, a1, a2 := s.State()
		b0, b1, b2 := j.State()
		if a0 != b0 || a1 != b1 || a2 != b2 {
			t.Fatalf("Substream(%d) state mismatch", i)
		}
	}
}

func TestSubstreamLargeIndexNoOverlap(t *testing.T) {
	// Very large substream indices must still produce distinct streams
	// (guards against overflow in the jump computation).
	g := New(8)
	a := g.Substream(1 << 40)
	b := g.Substream(1<<40 + 1)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent large substreams collide on %d of 200 outputs", same)
	}
}

func TestSubstreamIndependentOfCallerAdvance(t *testing.T) {
	// Substream(i) depends only on the caller's state at call time.
	g1 := New(14)
	s1 := g1.Substream(3)
	g2 := New(14)
	s2 := g2.Substream(3)
	for i := 0; i < 100; i++ {
		if s1.Next() != s2.Next() {
			t.Fatalf("substreams of identical parents diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(13)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	g := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := g.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.005 {
		t.Errorf("variance %v too far from 1/12", variance)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	g := New(23)
	const bins = 64
	const n = 64 * 4000
	var counts [bins]int
	for i := 0; i < n; i++ {
		counts[g.Intn(bins)]++
	}
	expected := float64(n) / bins
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom: mean 63, sd ~11.2. Reject beyond ~5 sd.
	if chi2 > 120 {
		t.Fatalf("chi-square %v too large for uniform hypothesis", chi2)
	}
}

func TestSerialCorrelation(t *testing.T) {
	g := New(29)
	const n = 100000
	prev := g.Float64()
	var sum, sumsq, cross float64
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := g.Float64()
		vals = append(vals, v)
		cross += prev * v
		prev = v
	}
	for _, v := range vals {
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	corr := (cross/n - mean*mean) / variance
	if math.Abs(corr) > 0.02 {
		t.Fatalf("lag-1 serial correlation %v too large", corr)
	}
}

func TestUint64nBounds(t *testing.T) {
	g := New(31)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := g.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nOneIsZero(t *testing.T) {
	g := New(1)
	for i := 0; i < 10; i++ {
		if g.Uint64n(1) != 0 {
			t.Fatal("Uint64n(1) must always return 0")
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	g := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			g.Intn(n)
		}()
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(37)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestJumpClearsNormalCache(t *testing.T) {
	g := New(41)
	g.Normal() // caches the second Box-Muller deviate
	g.Jump(5)
	// A fresh generator at the same stream position has no cache; both must
	// now produce the same deviate, so the jump must have dropped g's cache.
	h := NewFromState(g.State())
	if g.Normal() != h.Normal() {
		t.Fatal("Jump did not clear the cached normal deviate")
	}
}

func TestWeightedIndexDistribution(t *testing.T) {
	g := New(43)
	weights := []uint64{1, 2, 3, 4}
	const n = 100000
	var counts [4]int
	for i := 0; i < n; i++ {
		counts[g.WeightedIndex(weights)]++
	}
	for i, w := range weights {
		want := float64(w) / 10 * n
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("weight %d: got %v picks, want ~%v", w, got, want)
		}
	}
}

func TestWeightedIndexZeroWeightNeverPicked(t *testing.T) {
	g := New(47)
	weights := []uint64{0, 5, 0, 5, 0}
	for i := 0; i < 1000; i++ {
		idx := g.WeightedIndex(weights)
		if idx != 1 && idx != 3 {
			t.Fatalf("picked zero-weight index %d", idx)
		}
	}
}

func TestWeightedIndexAllZero(t *testing.T) {
	g := New(53)
	s0, s1, s2 := g.State()
	if got := g.WeightedIndex([]uint64{0, 0, 0}); got != -1 {
		t.Fatalf("all-zero weights returned %d, want -1", got)
	}
	// Must not consume randomness.
	t0, t1, t2 := g.State()
	if s0 != t0 || s1 != t1 || s2 != t2 {
		t.Fatal("all-zero weighted selection consumed randomness")
	}
}

func TestWeightedIndexSingleElement(t *testing.T) {
	g := New(59)
	for i := 0; i < 10; i++ {
		if got := g.WeightedIndex([]uint64{7}); got != 0 {
			t.Fatalf("single-element selection returned %d", got)
		}
	}
}

// TestFullStreamEquidistribution exercises the generator over a longer run to
// detect short cycles: all 10^6 consecutive outputs must not revisit the
// initial state.
func TestNoShortCycle(t *testing.T) {
	g := New(61)
	i0, i1, i2 := g.State()
	for i := 0; i < 1_000_000; i++ {
		g.Next()
		s0, s1, s2 := g.State()
		if s0 == i0 && s1 == i1 && s2 == i2 {
			t.Fatalf("cycle of length %d detected", i+1)
		}
	}
}

func BenchmarkNext(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkFloat64(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Float64()
	}
}

func BenchmarkJump(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Jump(1 << 40)
	}
}

func BenchmarkSubstream(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		g.Substream(uint64(i))
	}
}

// TestSubstreamsPairwiseDistinct: a set of numbered substreams must be
// pairwise non-overlapping over a practical horizon.
func TestSubstreamsPairwiseDistinct(t *testing.T) {
	g := New(77)
	const streams = 8
	const draw = 500
	seen := make(map[[3]uint64]int)
	for i := 0; i < streams; i++ {
		s := g.Substream(uint64(i))
		for k := 0; k < draw; k++ {
			s.Next()
			a, b, c := s.State()
			key := [3]uint64{a, b, c}
			if prev, dup := seen[key]; dup {
				t.Fatalf("substreams %d and %d share state after ≤%d draws", prev, i, draw)
			}
			seen[key] = i
		}
	}
}

// TestJumpHuge: jump-ahead must handle the largest uint64 arguments without
// overflow artifacts (it reduces through matrix powers, never multiplies
// counts).
func TestJumpHuge(t *testing.T) {
	g := New(5)
	g.Jump(^uint64(0))
	if v := g.Next(); v >= Modulus {
		t.Fatalf("state corrupt after huge jump: %d", v)
	}
}

// TestUniformMatchesIntn: the precomputed sampler must replay Intn's draw
// sequence bit for bit — same values, same raw-output consumption — for
// power-of-two and rejection-path bounds alike.
func TestUniformMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 30, 64, 100, 1 << 20} {
		u := NewUniform(n)
		a, b := New(uint64(n)), New(uint64(n))
		for i := 0; i < 2000; i++ {
			want := a.Intn(n)
			got := u.Draw(b)
			if got != want {
				t.Fatalf("n=%d draw %d: Uniform %d, Intn %d", n, i, got, want)
			}
		}
		sa0, sa1, sa2 := a.State()
		sb0, sb1, sb2 := b.State()
		if sa0 != sb0 || sa1 != sb1 || sa2 != sb2 {
			t.Fatalf("n=%d: generators diverged after identical draws", n)
		}
	}
}

// TestUniformFillMatchesDraw: the batched Fill must produce the exact draw
// sequence of element-wise Draw calls, including ragged batch sizes and
// rejection-path bounds, and leave the generator in the identical state.
func TestUniformFillMatchesDraw(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 30, 64, 100, 1 << 20, 1<<33 + 3} {
		u := NewUniform(n)
		a, b := New(uint64(n)+77), New(uint64(n)+77)
		buf := make([]int, 37)
		for _, size := range []int{0, 1, 2, 37, 5, 36} {
			dst := buf[:size]
			u.Fill(b, dst)
			for i, got := range dst {
				if want := u.Draw(a); got != want {
					t.Fatalf("n=%d size=%d draw %d: Fill %d, Draw %d", n, size, i, got, want)
				}
			}
			sa0, sa1, sa2 := a.State()
			sb0, sb1, sb2 := b.State()
			if sa0 != sb0 || sa1 != sb1 || sa2 != sb2 {
				t.Fatalf("n=%d size=%d: generators diverged after identical draws", n, size)
			}
		}
	}
}

// TestUniformFastmodExact: the multiply-based remainder must agree with the
// hardware divide for every bound shape it is enabled for — small odd, near
// the 2^32 enablement edge, and adversarial dividends (0, extremes, values
// straddling multiples of n).
func TestUniformFastmodExact(t *testing.T) {
	bounds := []int{3, 5, 7, 15, 30, 100, 12345, (1 << 20) + 7, (1 << 31) + 3, 1<<32 - 5}
	g := New(99)
	for _, n := range bounds {
		u := NewUniform(n)
		if u.pow2 {
			t.Fatalf("n=%d: test bounds must be non-powers-of-two", n)
		}
		if !u.fast {
			t.Fatalf("n=%d: fastmod not enabled within its bound", n)
		}
		vs := []uint64{0, 1, uint64(n) - 1, uint64(n), uint64(n) + 1, 2*uint64(n) - 1,
			u.limit - 1, u.limit, math.MaxUint64, math.MaxUint64 - 1}
		for i := 0; i < 2000; i++ {
			vs = append(vs, g.Uint64())
		}
		for _, v := range vs {
			if got, want := u.fastmod(v), v%uint64(n); got != want {
				t.Fatalf("n=%d v=%d: fastmod %d, want %d", n, v, got, want)
			}
		}
	}
	if NewUniform(1<<32 + 3).fast {
		t.Fatal("fastmod enabled beyond its 2^32 exactness bound")
	}
}

// TestNewUniformPanics mirrors Intn's bound validation.
func TestNewUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniform(0) did not panic")
		}
	}()
	NewUniform(0)
}
