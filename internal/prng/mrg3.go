// Package prng implements a parallelizable multiple recursive pseudo-random
// number generator (MRG) with three feedback terms and a Sophie-Germain prime
// modulus, in the family of TRNG's mrg3s generator used by the paper
// (Srivastava et al., SC '21, §4.2). The generator supports O(log k)
// jump-ahead via 3×3 matrix exponentiation, which enables block splitting of
// a single logical random stream across processors: every rank can position
// itself at an arbitrary offset of the shared stream in constant time, so the
// parallel program consumes exactly the same random sequence as the
// sequential one regardless of the number of ranks.
package prng

import (
	"math"
	"math/bits"
)

// Generator parameters. Modulus is the Sophie-Germain prime 2^31 − 105
// (both Modulus and 2·Modulus+1 are prime; verified in the tests). The
// recurrence is
//
//	x_n = (A1·x_{n−1} + A2·x_{n−2} + A3·x_{n−3}) mod Modulus
const (
	Modulus uint64 = 1<<31 - 105 // 2147483543
	A1      uint64 = 2025213985
	A2      uint64 = 1112953677
	A3      uint64 = 2038969601
)

// MRG3 is a multiple recursive generator over the prime field Z_Modulus.
// The zero value is not a valid generator; use New or NewFromState.
type MRG3 struct {
	// s0 is the most recent output, s1 and s2 the two before it.
	s0, s1, s2 uint64
	// cached second Box-Muller deviate for Normal.
	normCached bool
	normVal    float64
}

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// used only to expand user seeds into full generator state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator whose state is derived deterministically from seed.
// Distinct seeds yield well-separated, statistically independent states.
func New(seed uint64) *MRG3 {
	sm := seed
	g := &MRG3{}
	// Map into [1, Modulus) so the state is never the all-zero fixed point.
	g.s0 = splitmix64(&sm)%(Modulus-1) + 1
	g.s1 = splitmix64(&sm)%(Modulus-1) + 1
	g.s2 = splitmix64(&sm)%(Modulus-1) + 1
	return g
}

// NewFromState returns a generator with the exact state words (s0 most
// recent). It panics if the state is invalid (any word ≥ Modulus, or all
// zero), since such a state can never be produced by the generator itself.
func NewFromState(s0, s1, s2 uint64) *MRG3 {
	if s0 >= Modulus || s1 >= Modulus || s2 >= Modulus {
		panic("prng: state word out of range")
	}
	if s0 == 0 && s1 == 0 && s2 == 0 {
		panic("prng: all-zero state")
	}
	return &MRG3{s0: s0, s1: s1, s2: s2}
}

// State returns the three state words, most recent first. Together with
// NewFromState it allows replicating a generator across ranks.
func (g *MRG3) State() (s0, s1, s2 uint64) { return g.s0, g.s1, g.s2 }

// Clone returns an independent copy of the generator at the same position of
// the stream.
func (g *MRG3) Clone() *MRG3 {
	c := *g
	return &c
}

// Next returns the next raw output of the recurrence, uniform on [0, Modulus).
func (g *MRG3) Next() uint64 {
	// All operands are < 2^31, so each product is < 2^62 and the raw sum of
	// all three is < 3·2^62 < 2^64: one final reduction is exact and yields
	// the same residue as reducing each term, at a quarter of the divisions.
	x := (A1*g.s0 + A2*g.s1 + A3*g.s2) % Modulus
	g.s2, g.s1, g.s0 = g.s1, g.s0, x
	return x
}

// Uint32 returns a uniform 32-bit value. Two raw outputs contribute 31 bits
// each; the top 32 of the combined 62 bits are returned so the slight
// non-uniformity of a single modular output is diluted below detectability.
func (g *MRG3) Uint32() uint32 {
	hi := g.Next()
	lo := g.Next()
	return uint32((hi<<31 | lo) >> 30)
}

// Uint64 returns a uniform 64-bit value built from three raw outputs.
func (g *MRG3) Uint64() uint64 {
	a := g.Next() // 31 bits
	b := g.Next() // 31 bits
	c := g.Next() // use top 2 bits
	return a<<33 | b<<2 | c>>29
}

// Float64 returns a uniform deviate in [0, 1) with 53 random bits.
func (g *MRG3) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Rejection sampling removes modulo bias.
func (g *MRG3) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return g.Uint64() & (n - 1)
	}
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := g.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *MRG3) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// Uniform is a bounded-draw sampler with Uint64n's rejection threshold
// precomputed at construction. Draw consumes the stream exactly as
// Intn(n)/Uint64n(n) would — same values, same number of raw outputs — so
// hot loops that make millions of same-bound draws (the split-posterior
// bootstrap) hoist the per-call threshold division out of the loop without
// changing any consumed bit.
type Uniform struct {
	n uint64
	// pow2/mask mirror Uint64n's power-of-two fast path; limit its
	// rejection threshold otherwise.
	pow2  bool
	mask  uint64
	limit uint64
	// fast selects the multiply-based exact remainder for the hot Fill
	// path; mhi/mlo hold ⌈2^128 / n⌉ (see fastmod). Bounds n ≤ 2^32 so the
	// exactness margin is wide; larger bounds keep the hardware divide.
	fast     bool
	mhi, mlo uint64
}

// NewUniform returns the sampler for [0, n). It panics if n <= 0.
func NewUniform(n int) Uniform {
	if n <= 0 {
		panic("prng: NewUniform with n <= 0")
	}
	u := Uniform{n: uint64(n)}
	if u.n&(u.n-1) == 0 {
		u.pow2, u.mask = true, u.n-1
	} else {
		u.limit = math.MaxUint64 - math.MaxUint64%u.n
		if u.n <= 1<<32 {
			u.fast = true
			u.mhi, u.mlo = magic128(u.n)
		}
	}
	return u
}

// magic128 returns ⌈2^128 / d⌉ as a 128-bit value (hi, lo) for a
// non-power-of-two d: 2^128 mod d ≠ 0, so the ceiling is
// ⌊(2^128 − 1) / d⌋ + 1, computed by two-word long division.
func magic128(d uint64) (hi, lo uint64) {
	ones := ^uint64(0) // 2^64 − 1
	qhi := ones / d
	rem := ones % d
	qlo, _ := bits.Div64(rem, ones, d)
	lo, carry := bits.Add64(qlo, 1, 0)
	return qhi + carry, lo
}

// fastmod returns v % u.n by Lemire–Kaser–Kurz direct remainder
// computation: with c = ⌈2^128/n⌉, the remainder is ⌊((c·v mod 2^128)·n) /
// 2^128⌋ — two multiplies instead of a hardware divide. Exact for every
// v < 2^64 when n ≤ 2^32: writing v = q·n + r and c·n = 2^128 + e
// (1 ≤ e < n), c·v mod 2^128 = q·e + c·r needs q·e + c·r < 2^128
// (q·e < 2^64·2^32 and c·r < c·n ≤ 2^128 — the slack term q·e + e is
// < 2^96 ≤ c, which is what the n ≤ 2^32 bound buys), and the final
// product shifts out the error term because q·e·n + r·e < 2^128.
// TestUniformFastmodExact checks it against the hardware divide across the
// bound's edge cases.
func (u Uniform) fastmod(v uint64) uint64 {
	// lowbits = (mhi·2^64 + mlo)·v mod 2^128.
	lbHi, lbLo := bits.Mul64(u.mlo, v)
	lbHi += u.mhi * v
	// remainder = (lowbits·n) >> 128. The low word of lbLo·n can never
	// propagate into bit 128, so only the carry of the two middle words
	// matters.
	rhi, rlo := bits.Mul64(lbHi, u.n)
	phi, _ := bits.Mul64(lbLo, u.n)
	_, carry := bits.Add64(rlo, phi, 0)
	return rhi + carry
}

// Draw returns a uniform value in [0, n), drawing from g bit-identically to
// g.Intn(n).
func (u Uniform) Draw(g *MRG3) int {
	if u.pow2 {
		return int(g.Uint64() & u.mask)
	}
	for {
		v := g.Uint64()
		if v < u.limit {
			return int(v % u.n)
		}
	}
}

// fillStep2…fillStep6 are transition² … transition⁶: the top row of
// transition^k applied to state (s0,s1,s2) is the recurrence output k
// steps ahead. Fill uses them to compute the raw outputs of two
// consecutive Uint64s as six independent dot products.
var (
	fillStep2 = matPow(transition, 2)
	fillStep3 = matPow(transition, 3)
	fillStep4 = matPow(transition, 4)
	fillStep5 = matPow(transition, 5)
	fillStep6 = matPow(transition, 6)
)

// Fill fills dst with uniform values in [0, n), drawing from g exactly as
// len(dst) successive Draw calls would — same values, same raw outputs
// consumed. Batching keeps the generator state in locals across the whole
// run of draws, so hot loops pay the state load/store and call overhead
// once per batch instead of once per draw. The recurrence is linear over
// Z_Modulus, so the output k steps ahead is the top row of transition^k
// applied to the current state (the identity Jump exploits): Fill computes
// the six raw outputs of two consecutive Uint64s as six *independent* dot
// products of the same pre-advance state, replacing the serial
// step-to-step dependency chain (one chain link per raw output) with one
// chain link per two delivered values. If either value of a pair lands in
// the rejection region — probability ≈ n/2^64 per draw — the pair is
// re-derived by the one-step scalar path from the unadvanced state, so
// consumed raw outputs match the element-wise Draw sequence exactly.
func (u Uniform) Fill(g *MRG3, dst []int) {
	s0, s1, s2 := g.s0, g.s1, g.s2
	b0, b1, b2 := fillStep2[0], fillStep2[1], fillStep2[2]
	c0, c1, c2 := fillStep3[0], fillStep3[1], fillStep3[2]
	d0, d1, d2 := fillStep4[0], fillStep4[1], fillStep4[2]
	e0, e1, e2 := fillStep5[0], fillStep5[1], fillStep5[2]
	f0, f1, f2 := fillStep6[0], fillStep6[1], fillStep6[2]
	i, n := 0, len(dst)
	for i+1 < n {
		// Each dot product: matrix entries and state words are reduced
		// (< 2^31), so each three-term sum is < 3·2^62 < 2^64 and one final
		// reduction is exact, as in Next and mulMat.
		x1 := (A1*s0 + A2*s1 + A3*s2) % Modulus
		y1 := (b0*s0 + b1*s1 + b2*s2) % Modulus
		z1 := (c0*s0 + c1*s1 + c2*s2) % Modulus
		x2 := (d0*s0 + d1*s1 + d2*s2) % Modulus
		y2 := (e0*s0 + e1*s1 + e2*s2) % Modulus
		z2 := (f0*s0 + f1*s1 + f2*s2) % Modulus
		v1 := x1<<33 | y1<<2 | z1>>29
		v2 := x2<<33 | y2<<2 | z2>>29
		if u.pow2 {
			s2, s1, s0 = x2, y2, z2
			dst[i] = int(v1 & u.mask)
			dst[i+1] = int(v2 & u.mask)
			i += 2
			continue
		}
		if v1 < u.limit && v2 < u.limit {
			s2, s1, s0 = x2, y2, z2
			if u.fast {
				dst[i] = int(u.fastmod(v1))
				dst[i+1] = int(u.fastmod(v2))
			} else {
				dst[i] = int(v1 % u.n)
				dst[i+1] = int(v2 % u.n)
			}
			i += 2
			continue
		}
		// Rare rejection: redo this pair one draw at a time from the
		// still-unadvanced state.
		s0, s1, s2 = u.fillScalar(dst[i:i+2], s0, s1, s2)
		i += 2
	}
	if i < n {
		s0, s1, s2 = u.fillScalar(dst[i:], s0, s1, s2)
	}
	g.s0, g.s1, g.s2 = s0, s1, s2
}

// fillScalar is Fill's one-draw-at-a-time path (odd tail elements and
// rejection retries): three dot products per attempted value, state
// advanced per attempt, exactly Draw's consumption.
func (u Uniform) fillScalar(dst []int, s0, s1, s2 uint64) (r0, r1, r2 uint64) {
	b0, b1, b2 := fillStep2[0], fillStep2[1], fillStep2[2]
	c0, c1, c2 := fillStep3[0], fillStep3[1], fillStep3[2]
	for i := range dst {
		var v uint64
		for {
			a := (A1*s0 + A2*s1 + A3*s2) % Modulus
			b := (b0*s0 + b1*s1 + b2*s2) % Modulus
			c := (c0*s0 + c1*s1 + c2*s2) % Modulus
			s2, s1, s0 = a, b, c
			v = a<<33 | b<<2 | c>>29
			if u.pow2 {
				v &= u.mask
				break
			}
			if v < u.limit {
				if u.fast {
					v = u.fastmod(v)
				} else {
					v %= u.n
				}
				break
			}
		}
		dst[i] = int(v)
	}
	return s0, s1, s2
}

// Normal returns a standard normal deviate using the Box-Muller transform.
// Deviates are produced in pairs; the second is cached, so one call consumes
// either zero or two uniform deviates from the underlying stream.
func (g *MRG3) Normal() float64 {
	if g.normCached {
		g.normCached = false
		return g.normVal
	}
	var u float64
	//parsivet:floateq — rejects the exact 0 the uniform can emit before log(u)
	for u == 0 {
		u = g.Float64()
	}
	v := g.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	g.normVal = r * math.Sin(2*math.Pi*v)
	g.normCached = true
	return r * math.Cos(2*math.Pi*v)
}

// WeightedIndex returns an index in [0, len(weights)) chosen with probability
// proportional to the integer weights. It consumes exactly one Uint64 draw
// when the total weight is positive. If all weights are zero it returns -1
// without consuming randomness. Integer weights make the selection exactly
// reproducible regardless of how partial sums were combined across ranks.
func (g *MRG3) WeightedIndex(weights []uint64) int {
	var total uint64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return -1
	}
	u := g.Uint64n(total)
	var acc uint64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	// Unreachable: acc == total > u at the last index.
	panic("prng: weighted selection overran total")
}

// transition is the 3×3 companion matrix of the recurrence.
var transition = mat3{
	A1, A2, A3,
	1, 0, 0,
	0, 1, 0,
}

// mat3 is a 3×3 matrix over Z_Modulus in row-major order.
type mat3 [9]uint64

// mulMat returns a·b mod Modulus.
func mulMat(a, b mat3) mat3 {
	var c mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			// Entries are reduced (< 2^31), so the three products sum to
			// < 3·2^62 < 2^64: one final reduction matches per-term reduction.
			var s uint64
			for k := 0; k < 3; k++ {
				s += a[3*i+k] * b[3*k+j]
			}
			c[3*i+j] = s % Modulus
		}
	}
	return c
}

// matPow returns m^k mod Modulus by binary exponentiation.
func matPow(m mat3, k uint64) mat3 {
	r := mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} // identity
	for k > 0 {
		if k&1 == 1 {
			r = mulMat(r, m)
		}
		m = mulMat(m, m)
		k >>= 1
	}
	return r
}

// Jump advances the generator by k steps of the recurrence in O(log k) time,
// as if Next had been called k times (jump-ahead / block splitting).
func (g *MRG3) Jump(k uint64) {
	if k == 0 {
		return
	}
	t := matPow(transition, k)
	s0 := (t[0]*g.s0 + t[1]*g.s1 + t[2]*g.s2) % Modulus
	s1 := (t[3]*g.s0 + t[4]*g.s1 + t[5]*g.s2) % Modulus
	s2 := (t[6]*g.s0 + t[7]*g.s1 + t[8]*g.s2) % Modulus
	g.s0, g.s1, g.s2 = s0, s1, s2
	g.normCached = false
}

// SubstreamSpacing is the distance, in raw outputs, between consecutive
// numbered substreams. 2^44 raw outputs per substream is far more than any
// single work item consumes.
const SubstreamSpacing uint64 = 1 << 44

// substreamJump is the transition matrix raised to SubstreamSpacing,
// computed once; substream i then applies substreamJump^i, which avoids the
// uint64 overflow of computing i·SubstreamSpacing directly.
var substreamJump = matPow(transition, SubstreamSpacing)

// Substream returns a new generator positioned at the start of numbered
// substream i of g's stream: a copy of g jumped ahead by i·SubstreamSpacing
// raw outputs. Work item i always draws from substream i, so the consumed
// sequence is independent of how work items are distributed over ranks.
func (g *MRG3) Substream(i uint64) *MRG3 {
	t := matPow(substreamJump, i)
	return &MRG3{
		s0: (t[0]*g.s0 + t[1]*g.s1 + t[2]*g.s2) % Modulus,
		s1: (t[3]*g.s0 + t[4]*g.s1 + t[5]*g.s2) % Modulus,
		s2: (t[6]*g.s0 + t[7]*g.s1 + t[8]*g.s2) % Modulus,
	}
}
