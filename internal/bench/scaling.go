package bench

import (
	"fmt"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/ganesh"
	"parsimone/internal/ltbaseline"
	"parsimone/internal/result"
	"parsimone/internal/splits"
	"parsimone/internal/trace"
	"parsimone/internal/tree"
)

// taskOf maps a recorded phase to the paper's task decomposition.
func taskOf(name string) string {
	switch name {
	case ganesh.PhaseVarReassign, ganesh.PhaseVarMerge:
		return core.TaskGaneSH
	case ganesh.PhaseObsReassign, ganesh.PhaseObsMerge:
		// Observation clustering occurs in both task 1 and task 3; in
		// the minimum configuration (one GaneSH run, trees per module)
		// the bulk belongs to module learning.
		return core.TaskModules
	case tree.PhaseBuild, splits.PhaseAssign:
		return core.TaskModules
	}
	return core.TaskModules
}

// modeledTaskTimes returns the modeled per-task durations at p ranks.
func modeledTaskTimes(m measured, p int, scheme trace.Scheme) map[string]time.Duration {
	mod := m.model()
	out := map[string]time.Duration{}
	for _, ph := range m.out.Workload.Phases {
		out[taskOf(ph.Name)] += mod.PhaseTime(ph, p, scheme)
	}
	// Consensus clustering runs sequentially on all ranks (§3.2.2).
	out[core.TaskConsensus] = m.out.Timers.Get(core.TaskConsensus)
	return out
}

// modeledTotal sums the modeled task times.
func modeledTotal(m measured, p int, scheme trace.Scheme) time.Duration {
	var total time.Duration
	for _, d := range modeledTaskTimes(m, p, scheme) {
		total += d
	}
	return total
}

// verifyParallel runs the real message-passing engine at small p and checks
// the network is identical to the sequential result; it returns the wall
// time (meaningful only for trend, given a single physical core).
func verifyParallel(d *dataset.Data, seed uint64, p int, want *result.Network) (bool, time.Duration) {
	opt := runOptions(seed)
	start := time.Now()
	out, err := core.LearnParallel(p, d, opt)
	if err != nil {
		panic(err)
	}
	return result.Equal(out.Network, want), time.Since(start)
}

// fig5Sizes returns the observation subsets of the Figure 5 experiments.
func fig5Sizes(scale Scale) (n int, ms []int) {
	if scale == Quick {
		return 96, []int{16, 24}
	}
	return 240, []int{20, 30, 40, 50}
}

// Fig5a reproduces Figure 5a: the sequential per-task run-time breakdown
// for data sets with different observation counts.
func Fig5a(scale Scale) *Table {
	n, ms := fig5Sizes(scale)
	t := &Table{
		Title:  fmt.Sprintf("Figure 5a — sequential task breakdown (n=%d)", n),
		Header: []string{"m", "total", "ganesh", "consensus", "modules", "modules %"},
		Notes:  []string{"paper: module learning is 94.7–99.4% of sequential time; consensus <1s"},
	}
	for _, m := range ms {
		d := subsetData(n, ms[len(ms)-1], 42, n, m)
		r := runSequential(d, 7)
		tm := r.out.Timers
		modFrac := float64(tm.Get(core.TaskModules)) / float64(r.duration) * 100
		t.AddRow(fmt.Sprint(m), fmtDur(r.duration),
			fmtDur(tm.Get(core.TaskGaneSH)), fmtDur(tm.Get(core.TaskConsensus)),
			fmtDur(tm.Get(core.TaskModules)), fmt.Sprintf("%.1f", modFrac))
	}
	return t
}

// fig5Ranks is the p sweep of Figure 5b.
func fig5Ranks(scale Scale) []int {
	if scale == Quick {
		return []int{2, 8, 64, 1024}
	}
	return []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// Fig5b reproduces Figure 5b: strong-scaling speedup for the Figure 5 data
// sets, p = 2…1024. Modeled times from the recorded work of the real run;
// the smallest data set diverges at large p exactly as in the paper.
func Fig5b(scale Scale) *Table {
	n, ms := fig5Sizes(scale)
	ranks := fig5Ranks(scale)
	header := []string{"p"}
	for _, m := range ms {
		header = append(header, fmt.Sprintf("m=%d", m))
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 5b — strong-scaling speedup T1/Tp (n=%d, modeled)", n),
		Header: header,
		Notes: []string{
			"paper: ~48x at p=64 (75% efficiency); 273.9–288.3x at p=1024; the smallest data set tapers first",
			"small-p results are verified against real message-passing runs (see `determinism`)",
		},
	}
	runs := make([]measured, len(ms))
	for i, m := range ms {
		runs[i] = runSequential(subsetData(n, ms[len(ms)-1], 42, n, m), 7)
	}
	for _, p := range ranks {
		row := []string{fmt.Sprint(p)}
		for i := range ms {
			t1 := modeledTotal(runs[i], 1, trace.StaticFine)
			tp := modeledTotal(runs[i], p, trace.StaticFine)
			row = append(row, fmt.Sprintf("%.1f", float64(t1)/float64(tp)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5c reproduces Figure 5c: the modeled per-task breakdown at p=1024.
func Fig5c(scale Scale) *Table {
	n, ms := fig5Sizes(scale)
	p := 1024
	t := &Table{
		Title:  fmt.Sprintf("Figure 5c — task breakdown at p=%d (n=%d, modeled)", p, n),
		Header: []string{"m", "total", "ganesh", "consensus", "modules", "modules %"},
		Notes:  []string{"paper: >90% of time still in module learning for the larger data sets"},
	}
	for _, m := range ms {
		r := runSequential(subsetData(n, ms[len(ms)-1], 42, n, m), 7)
		tasks := modeledTaskTimes(r, p, trace.StaticFine)
		total := tasks[core.TaskGaneSH] + tasks[core.TaskConsensus] + tasks[core.TaskModules]
		t.AddRow(fmt.Sprint(m), fmtDur(total),
			fmtDur(tasks[core.TaskGaneSH]), fmtDur(tasks[core.TaskConsensus]),
			fmtDur(tasks[core.TaskModules]),
			fmt.Sprintf("%.1f", float64(tasks[core.TaskModules])/float64(total)*100))
	}
	return t
}

// yeastFull returns the "complete S. cerevisiae" analogue (paper: n=5716,
// m=2577; ours ~10× smaller).
func yeastFull(scale Scale) (int, int) {
	if scale == Quick {
		return 120, 40
	}
	return 400, 100
}

// Fig6 reproduces Figure 6: run time and relative speedup on the full
// yeast-scale data set, p = 4…4096, relative to T₄.
func Fig6(scale Scale) *Table {
	n, m := yeastFull(scale)
	ranks := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if scale == Quick {
		ranks = []int{4, 64, 4096}
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 6 — complete yeast-scale data set (n=%d, m=%d, modeled)", n, m),
		Header: []string{"p", "run-time", "speedup vs T4", "efficiency %"},
		Notes: []string{
			"paper: T4≈4 days → T4096=23.5 min; relative speedup 239.3x, efficiency 23.4%",
		},
	}
	r := runSequential(genData(n, m, 12345), 7)
	t4 := modeledTotal(r, 4, trace.StaticFine)
	for _, p := range ranks {
		tp := modeledTotal(r, p, trace.StaticFine)
		speedup := float64(t4) / float64(tp)
		eff := speedup / (float64(p) / 4) * 100
		t.AddRow(fmt.Sprint(p), fmtDur(tp), fmt.Sprintf("%.1f", speedup), fmt.Sprintf("%.1f", eff))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured sequential time %s (the modeled T1)", fmtDur(r.duration)))
	return t
}

// thalianaFull returns the "complete A. thaliana" analogue (paper:
// n=18373, m=5102).
func thalianaFull(scale Scale) (int, int) {
	if scale == Quick {
		return 160, 50
	}
	return 700, 150
}

// Table2 reproduces Table 2: run times and relative speedup/efficiency for
// the large multicellular-organism data set, p = 256…4096 relative to T₂₅₆.
func Table2(scale Scale) *Table {
	n, m := thalianaFull(scale)
	ranks := []int{256, 512, 1024, 2048, 4096}
	t := &Table{
		Title:  fmt.Sprintf("Table 2 — complete thaliana-scale data set (n=%d, m=%d, modeled)", n, m),
		Header: []string{"p", "run-time", "speedup vs T256", "efficiency %"},
		Notes: []string{
			"paper: 168776s at p=256 → 15098s at p=4096; relative speedup 11.2x, efficiency 69.9%",
		},
	}
	r := runSequential(genData(n, m, 54321), 7)
	t256 := modeledTotal(r, 256, trace.StaticFine)
	for _, p := range ranks {
		tp := modeledTotal(r, p, trace.StaticFine)
		speedup := float64(t256) / float64(tp)
		eff := speedup / (float64(p) / 256) * 100
		t.AddRow(fmt.Sprint(p), fmtDur(tp), fmt.Sprintf("%.1f", speedup), fmt.Sprintf("%.1f", eff))
	}
	return t
}

// Imbalance reproduces the §5.3.1 load-imbalance measurement: the deviation
// of the maximum split-scoring load from the average, normalized by the
// average, as p grows.
func Imbalance(scale Scale) *Table {
	n, ms := fig5Sizes(scale)
	m := ms[len(ms)-1]
	ranks := []int{16, 64, 128, 256, 512, 1024}
	if scale == Quick {
		ranks = []int{16, 1024}
	}
	t := &Table{
		Title:  fmt.Sprintf("§5.3.1 — split-scoring load imbalance (max−avg)/avg (n=%d, m=%d)", n, m),
		Header: []string{"p", "imbalance"},
		Notes: []string{
			"paper: <0.3 at p≤64, then 0.5 at p=128 rising to 2.6 at p=1024",
		},
	}
	r := runSequential(subsetData(n, m, 42, n, m), 7)
	ph := r.out.Workload.Phase(splits.PhaseAssign)
	mod := r.model()
	for _, p := range ranks {
		t.AddRow(fmt.Sprint(p), fmt.Sprintf("%.2f", mod.PhaseImbalance(ph, p, trace.StaticFine)))
	}
	return t
}

// AblationDist compares the three split-distribution schemes: the paper's
// fine-grained static partition (Algorithm 5), the coarse per-node scheme
// §3.2.3 rejects, and the dynamic balancing named as future work in §6.
func AblationDist(scale Scale) *Table {
	n, m := yeastFull(scale)
	ranks := []int{64, 256, 1024}
	if scale == Quick {
		ranks = []int{64, 1024}
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation — split distribution schemes (n=%d, m=%d, modeled)", n, m),
		Header: []string{"p", "scheme", "modules time", "imbalance"},
		Notes: []string{
			"static-fine is the paper's scheme; static-coarse is the rejected per-node assignment;",
			"dynamic is the future-work balancing (§6) — it should remove most of the large-p taper",
		},
	}
	r := runSequential(genData(n, m, 12345), 7)
	ph := r.out.Workload.Phase(splits.PhaseAssign)
	mod := r.model()
	for _, p := range ranks {
		for _, scheme := range []trace.Scheme{trace.StaticFine, trace.StaticCoarse, trace.Dynamic} {
			t.AddRow(fmt.Sprint(p), scheme.String(),
				fmtDur(mod.PhaseTime(ph, p, scheme)),
				fmt.Sprintf("%.2f", mod.PhaseImbalance(ph, p, scheme)))
		}
	}
	return t
}

// Determinism reproduces the §4.2 verification: the real message-passing
// engine learns exactly the sequential network at every rank count, and the
// reference baseline matches too (§5.2.1).
func Determinism(scale Scale) *Table {
	n, m := 96, 32
	ranks := []int{1, 2, 3, 4, 8}
	if scale == Quick {
		n, m = 48, 20
		ranks = []int{1, 3}
	}
	t := &Table{
		Title:  fmt.Sprintf("§4.2 — output identity across engines and rank counts (n=%d, m=%d)", n, m),
		Header: []string{"engine", "p", "identical to sequential"},
		Notes:  []string{"paper: verified Lemon-Tree ≡ optimized ≡ parallel for all p"},
	}
	d := genData(n, m, 999)
	seq := runSequential(d, 7)
	for _, p := range ranks {
		same, _ := verifyParallel(d, 7, p, seq.out.Network)
		t.AddRow("parallel", fmt.Sprint(p), fmt.Sprint(same))
	}
	refOut, err := baselineLearn(d, 7)
	if err != nil {
		panic(err)
	}
	t.AddRow("reference", "1", fmt.Sprint(result.Equal(refOut, seq.out.Network)))
	return t
}

// baselineLearn runs the reference engine and returns its network.
func baselineLearn(d *dataset.Data, seed uint64) (*result.Network, error) {
	out, err := ltbaseline.Learn(d, runOptions(seed))
	if err != nil {
		return nil, err
	}
	return out.Network, nil
}
