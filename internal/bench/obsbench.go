// The observability-overhead experiment: wall-clock cost of attaching the
// run-event recorder and metrics registry (internal/obs) to the learning
// engines. The sinks are result-invisible by contract (DESIGN.md §9) — this
// experiment measures that they are also cheap, and double-checks the
// bit-identity of the learned network with and without them.

package bench

import (
	"fmt"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/obs"
	"parsimone/internal/result"
)

// obsRun measures one engine configuration with and without the sinks.
func obsRun(label string, learn func(opt core.Options) *core.Output, t *Table) {
	bare := runOptions(7)
	start := time.Now()
	want := learn(bare)
	bareDur := time.Since(start)

	instr := runOptions(7)
	instr.Events = true
	instr.Metrics = obs.NewRegistry()
	start = time.Now()
	got := learn(instr)
	instrDur := time.Since(start)

	overhead := float64(instrDur-bareDur) / float64(bareDur) * 100
	t.AddRow(
		label,
		fmtDur(bareDur),
		fmtDur(instrDur),
		fmt.Sprintf("%+.1f%%", overhead),
		fmt.Sprint(len(got.Events)),
		fmt.Sprint(result.Equal(got.Network, want.Network)),
	)
}

// ObsOverhead measures the event/metrics sinks on the table1-shaped workload
// for the sequential engine and a small rank count.
func ObsOverhead(scale Scale) *Table {
	ns, ms := table1Sizes(scale)
	n, m := ns[len(ns)-1], ms[len(ms)-1]
	t := &Table{
		Title:  fmt.Sprintf("Observability overhead — events + metrics sinks (n=%d, m=%d)", n, m),
		Header: []string{"engine", "bare", "instrumented", "overhead", "events", "identical"},
		Notes: []string{
			"sinks never consume PRNG draws; 'identical' is the §4.2 bit-identity check with sinks attached",
			"single-measurement wall clocks — small negative overheads are noise",
		},
	}
	d := subsetData(n, m, 42, n, m)
	obsRun("sequential", func(opt core.Options) *core.Output {
		out, err := core.Learn(d, opt)
		if err != nil {
			panic(err)
		}
		return out
	}, t)
	obsRun("p=2", func(opt core.Options) *core.Output {
		out, err := core.LearnParallel(2, d, opt)
		if err != nil {
			panic(err)
		}
		return out
	}, t)
	return t
}
