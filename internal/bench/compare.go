package bench

import (
	"fmt"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/eval"
	"parsimone/internal/genomica"
	"parsimone/internal/prng"
	"parsimone/internal/result"
	"parsimone/internal/score"
	"parsimone/internal/synth"
)

// CompareGenomica puts the two module-network learners side by side — the
// Lemon-Tree pipeline the paper parallelizes and the GENOMICA two-step
// algorithm it is contrasted with in §1.1: both learn from the same
// synthetic data across noise levels, scored by module-recovery ARI
// against the generative ground truth. GENOMICA requires the module count
// as input; it is run both with the true count and with a misspecified
// (doubled) count, an input problem Lemon-Tree does not have.
func CompareGenomica(scale Scale) *Table {
	n, m := 60, 50
	noises := []float64{0.2, 0.4, 0.6}
	seeds := []uint64{1, 2, 3}
	if scale == Quick {
		noises = []float64{0.3}
		seeds = seeds[:1]
	}
	t := &Table{
		Title:  fmt.Sprintf("Comparison — Lemon-Tree pipeline vs GENOMICA (n=%d, m=%d, module-recovery ARI)", n, m),
		Header: []string{"noise", "lemon-tree ARI", "genomica ARI (true K)", "genomica ARI (2K)", "lemon-tree time", "genomica time"},
		Notes: []string{
			"context: §1.1 cites studies (Joshi 2009, Michoel 2007) finding Lemon-Tree more robust than GENOMICA;",
			"on this clean synthetic generator GENOMICA is competitive — it must, however, be told the module",
			"count K (true-K and 2K columns), while the Lemon-Tree pipeline discovers the module count itself;",
			"the literature's robustness gap appears on realistic noise/confounding this generator does not model",
		},
	}
	for _, noise := range noises {
		var ltARI, genARI, genMisARI float64
		var ltDur, genDur time.Duration
		for _, seed := range seeds {
			d, truth, err := synth.Generate(synth.Config{
				N: n, M: m, Regulators: 5, Modules: 4, Noise: noise, Seed: seed,
			})
			if err != nil {
				panic(err)
			}

			opt := runOptions(seed + 100)
			opt.Ganesh.Updates = 3
			start := time.Now()
			ltOut, err := core.Learn(d, opt)
			if err != nil {
				panic(err)
			}
			ltDur += time.Since(start)
			ltARI += result.AdjustedRandIndex(truth.ModuleOf, ltOut.Network.ModuleOf())

			work := d.Clone()
			work.Standardize()
			q := score.QuantizeData(work)
			start = time.Now()
			genOut, err := genomica.Learn(q, score.DefaultPrior(),
				genomica.Params{Modules: truth.NumModules, MaxIters: 8}, prng.New(seed+200))
			if err != nil {
				panic(err)
			}
			genDur += time.Since(start)
			genARI += result.AdjustedRandIndex(truth.ModuleOf, genOut.Assign)

			genMis, err := genomica.Learn(q, score.DefaultPrior(),
				genomica.Params{Modules: 2 * truth.NumModules, MaxIters: 8}, prng.New(seed+300))
			if err != nil {
				panic(err)
			}
			genMisARI += result.AdjustedRandIndex(truth.ModuleOf, genMis.Assign)
		}
		k := float64(len(seeds))
		t.AddRow(fmt.Sprintf("%.1f", noise),
			fmt.Sprintf("%.3f", ltARI/k), fmt.Sprintf("%.3f", genARI/k),
			fmt.Sprintf("%.3f", genMisARI/k),
			fmtDur(ltDur/time.Duration(len(seeds))), fmtDur(genDur/time.Duration(len(seeds))))
	}
	return t
}

// CrossVal runs the held-out generalization check: k-fold cross-validation
// of the learned CPDs against the global-mean baseline on synthetic data.
// Not a paper table — the paper's gated real data sets cannot support a
// ground-truth accuracy analysis — but the natural companion to it: the
// networks built fast must also carry signal.
func CrossVal(scale Scale) *Table {
	n, m, folds := 60, 80, 4
	if scale == Quick {
		n, m, folds = 40, 40, 2
	}
	t := &Table{
		Title:  fmt.Sprintf("Cross-validation — held-out CPD prediction (n=%d, m=%d, %d folds)", n, m, folds),
		Header: []string{"fold", "modules", "CPD RMSE", "baseline RMSE", "CPD loglik", "baseline loglik"},
		Notes: []string{
			"module-mean prediction on held-out conditions vs the global-mean baseline;",
			"the ensemble CPDs (R trees per module, mixture-averaged) beat the baseline on both metrics",
		},
	}
	d, _, err := synth.Generate(synth.Config{
		N: n, M: m, Modules: 3, Regulators: 5, Noise: 0.25, Seed: 2,
	})
	if err != nil {
		panic(err)
	}
	opt := runOptions(5)
	opt.Ganesh.Updates = 3
	opt.Module.Tree.Updates = 4 // 3 trees per module for the ensemble CPD
	opt.Module.Splits.NumSplits = 3
	opt.Module.Splits.MaxSteps = 48
	cv, err := eval.CrossValidate(d, opt, folds)
	if err != nil {
		panic(err)
	}
	for _, fr := range cv.Folds {
		t.AddRow(fmt.Sprint(fr.Fold), fmt.Sprint(fr.Modules),
			fmt.Sprintf("%.3f", fr.CPDRMSE), fmt.Sprintf("%.3f", fr.BaselineRMSE),
			fmt.Sprintf("%.2f", fr.CPDLogLik), fmt.Sprintf("%.2f", fr.BaselineLogLik))
	}
	t.AddRow("mean", "-",
		fmt.Sprintf("%.3f", cv.CPDRMSE), fmt.Sprintf("%.3f", cv.BaselineRMSE),
		fmt.Sprintf("%.2f", cv.CPDLogLik), fmt.Sprintf("%.2f", cv.BaselineLogLik))
	return t
}

// CommVolume measures the real message traffic of the three split
// distribution paths on the goroutine message-passing runtime — the
// communication claim behind the paper's segmented-scan design (§3.2.3:
// O(τ log p + µJKRL) instead of gathering every posterior).
func CommVolume(scale Scale) *Table {
	n, m := 80, 40
	ranks := []int{2, 4, 8}
	if scale == Quick {
		n, m = 40, 24
		ranks = []int{2, 4}
	}
	t := &Table{
		Title:  fmt.Sprintf("Communication volume — split distribution paths (n=%d, m=%d, measured)", n, m),
		Header: []string{"p", "path", "elements", "messages", "identical"},
		Notes: []string{
			"elements = words moved through sends across all ranks during the full pipeline;",
			"scan is the paper's Algorithm 5 communication structure; all paths learn the same network",
		},
	}
	d := genData(n, m, 777)
	opt := runOptions(11)
	opt.Module.Splits.MaxSteps = 16
	base, err := core.Learn(d, opt)
	if err != nil {
		panic(err)
	}
	for _, p := range ranks {
		for _, path := range []string{"static-gather", "scan", "dynamic"} {
			o := opt
			o.Module.Splits.ScanSelection = path == "scan"
			if path == "dynamic" {
				o.Module.Splits.DynamicChunk = 64
			}
			out, err := core.LearnParallel(p, d, o)
			if err != nil {
				panic(err)
			}
			t.AddRow(fmt.Sprint(p), path,
				fmt.Sprint(out.CommStats.Elems), fmt.Sprint(out.CommStats.Sends),
				fmt.Sprint(result.Equal(out.Network, base.Network)))
		}
	}
	return t
}
