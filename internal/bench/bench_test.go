package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== demo ==", "long-header", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Quick); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestExperimentsAllDispatch(t *testing.T) {
	// Every listed id must dispatch (checked by name only; execution is
	// covered by the per-experiment tests and benchmarks).
	for _, id := range Experiments() {
		found := false
		for _, known := range Experiments() {
			if id == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("id %s missing", id)
		}
	}
}

// TestThreadsExperiment: the worker-pool table must report a bit-identical
// network at every W and carry W per-worker counters per row. Wall-clock
// speedup is NOT asserted — it requires a multicore host.
func TestThreadsExperiment(t *testing.T) {
	tab, err := Run("threads", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 rows (W∈{1,2,4,8}), got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Fatalf("W=%s network not identical: %v", row[0], row)
		}
		w, _ := strconv.Atoi(row[0])
		if got := len(strings.Split(row[5], "/")); got != w {
			t.Fatalf("W=%s row has %d worker counters: %v", row[0], got, row)
		}
	}
}

func TestDeterminismExperiment(t *testing.T) {
	tab, err := Run("determinism", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("determinism violated: %v", row)
		}
	}
}

func TestImbalanceExperimentGrows(t *testing.T) {
	tab, err := Run("imbalance", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("need at least two p values")
	}
	first := tab.Rows[0][1]
	last := tab.Rows[len(tab.Rows)-1][1]
	if !(first < last) { // formatted %.2f compares lexicographically here
		t.Fatalf("imbalance did not grow with p: %s -> %s", first, last)
	}
}

func TestFig5bSpeedupMonotoneInP(t *testing.T) {
	tab, err := Run("fig5b", Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Speedup at the largest p must exceed speedup at the smallest p for
	// the largest data set (last column).
	firstRow := tab.Rows[0]
	lastRow := tab.Rows[len(tab.Rows)-1]
	lo, err := strconv.ParseFloat(firstRow[len(firstRow)-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := strconv.ParseFloat(lastRow[len(lastRow)-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("speedup did not grow with p: %v -> %v", lo, hi)
	}
}

func TestCompareGenomicaQuick(t *testing.T) {
	tab, err := Run("compare-genomica", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || len(tab.Rows[0]) != len(tab.Header) {
		t.Fatalf("malformed table: %+v", tab.Rows)
	}
	// Both learners must recover structure clearly above chance on the
	// quick configuration.
	lt, err := strconv.ParseFloat(tab.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := strconv.ParseFloat(tab.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if lt < 0.2 || gen < 0.2 {
		t.Fatalf("ARI too low: lemon-tree %v, genomica %v", lt, gen)
	}
}

func TestCrossValQuick(t *testing.T) {
	tab, err := Run("crossval", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 { // folds + mean
		t.Fatalf("rows: %v", tab.Rows)
	}
	if tab.Rows[len(tab.Rows)-1][0] != "mean" {
		t.Fatal("missing mean row")
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		90 * time.Second:        "1.5m",
		1500 * time.Millisecond: "1.50s",
		250 * time.Millisecond:  "250ms",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Fatalf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTaskOfMapsAllPhases(t *testing.T) {
	// Every recorded phase name must map to one of the paper's three tasks.
	for _, name := range []string{
		"ganesh/var-reassign", "ganesh/var-merge",
		"ganesh/obs-reassign", "ganesh/obs-merge",
		"tree/build", "splits/assign", "anything-else",
	} {
		switch taskOf(name) {
		case "ganesh", "consensus", "modules":
		default:
			t.Fatalf("phase %s mapped to unknown task %s", name, taskOf(name))
		}
	}
}

func TestSubsetDataCachesMaster(t *testing.T) {
	a := subsetData(48, 24, 4242, 24, 12)
	b := subsetData(48, 24, 4242, 24, 12)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("cached master produced different subsets")
		}
	}
	// Subsets are copies: mutating one must not leak into the master.
	a.Set(0, 0, 99)
	c := subsetData(48, 24, 4242, 24, 12)
	if c.At(0, 0) == 99 {
		t.Fatal("subset aliases the cached master")
	}
}

// TestServeExperiment: the service table must carry one row per load job
// with a sub-second cache-hit latency column — the second identical
// submission never runs a learning job.
func TestServeExperiment(t *testing.T) {
	tab, err := Run("serve", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 rows (one per load job), got %d", len(tab.Rows))
	}
	if got := tab.Header[len(tab.Header)-2]; got != "cache hit" {
		t.Fatalf("second-to-last column %q, want the cache-hit latency", got)
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[len(row)-1], "x") {
			t.Fatalf("speedup cell %q is not a factor", row[len(row)-1])
		}
	}
}

// TestBatchExperiment: the batched-scorer table must report a bit-identical
// network in every grid cell and carry three per-phase breakdown rows under
// each total row.
func TestBatchExperiment(t *testing.T) {
	tab := BatchTable(Quick)
	totals := 0
	for _, row := range tab.Rows {
		if row[2] != "total" {
			continue
		}
		totals++
		if row[6] != "true" {
			t.Fatalf("row %v: batched and unbatched networks differ", row)
		}
	}
	if totals == 0 {
		t.Fatal("no total rows")
	}
	if len(tab.Rows) != totals*4 {
		t.Fatalf("%d rows for %d grid cells, want 4 per cell (total + 3 phases)", len(tab.Rows), totals)
	}
}
