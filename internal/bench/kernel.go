// The split-scoring kernel experiment: end-to-end effect of the
// precomputed exact scoring kernel (internal/score.Kernel) on the full
// learning run, measured by running core.Learn with the kernel tables
// disabled (every posterior evaluation scores through Prior.LogML — the
// pre-kernel path) and enabled, on the same data and seed. The kernel is
// an exact re-expression of the score, so the learned networks must be
// identical; the table double-checks that alongside the speedup. The
// micro-level comparison against the verbatim pre-kernel posterior loop
// lives in BenchmarkPosterior (internal/splits).

package bench

import (
	"fmt"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/result"
)

// KernelTable measures learning run time with the scoring kernel disabled
// ("legacy", the pre-kernel Prior.LogML path) vs enabled, over the
// sequential-experiment grid.
func KernelTable(scale Scale) *Table {
	t := &Table{
		Title:  "Scoring kernel — pre-kernel (direct Prior.LogML) vs precomputed tables",
		Header: []string{"n", "m", "candidates", "legacy", "kernel", "speedup", "identical"},
		Notes: []string{
			"the kernel tables every count-only term of the normal-gamma score; 'identical' is the bit-identity check",
			"single-measurement wall clocks; BenchmarkPosterior isolates the hot loop itself",
		},
	}
	ns, ms := table1Sizes(scale)
	nMax, mMax := ns[len(ns)-1], ms[len(ms)-1]
	for _, n := range ns {
		for _, m := range ms {
			d := subsetData(nMax, mMax, 42, n, m)
			legacy := runOptions(7)
			legacy.Module.Splits.DisableKernel = true
			startLegacy := time.Now()
			ref, err := core.Learn(d, legacy)
			if err != nil {
				panic(err)
			}
			legacyDur := time.Since(startLegacy)
			startKern := time.Now()
			fast, err := core.Learn(d, runOptions(7))
			if err != nil {
				panic(err)
			}
			kernDur := time.Since(startKern)
			t.AddRow(
				fmt.Sprint(n), fmt.Sprint(m),
				// Candidates nil defaults to every variable.
				fmt.Sprint(n),
				fmtDur(legacyDur), fmtDur(kernDur),
				fmt.Sprintf("%.2f", float64(legacyDur)/float64(kernDur)),
				fmt.Sprint(result.Equal(ref.Network, fast.Network)),
			)
		}
	}
	return t
}
