// The hybrid worker-pool experiment: real wall-clock effect of intra-rank
// workers (internal/pool) on the table1-shaped workload. This is a *measured*
// experiment, unlike the modeled strong-scaling figures — the pool's worker
// goroutines are genuine OS-thread parallelism, so on a multicore host the
// W>1 rows show real speedup. On a single-core host they show the pool's
// overhead instead; the host's core count is printed so the table is
// interpretable either way.

package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/result"
	"parsimone/internal/splits"
)

// fmtWorkerCost renders per-worker cost counters compactly ("c0/c1/…").
func fmtWorkerCost(cost []float64) string {
	if len(cost) == 0 {
		return "-"
	}
	parts := make([]string, len(cost))
	for w, c := range cost {
		parts[w] = fmt.Sprintf("%.0f", c)
	}
	return strings.Join(parts, "/")
}

// Threads measures the sequential engine at W ∈ {1, 2, 4, 8} intra-rank
// workers on the largest table1-shaped workload: wall time, speedup vs W=1,
// the bit-identity of the learned network, and the per-worker split-scoring
// cost counters with their §5.3.1-style imbalance.
func Threads(scale Scale) *Table {
	ns, ms := table1Sizes(scale)
	n, m := ns[len(ns)-1], ms[len(ms)-1]
	t := &Table{
		Title:  fmt.Sprintf("Intra-rank worker pool — wall clock at W∈{1,2,4,8} (n=%d, m=%d, p=1)", n, m),
		Header: []string{"W", "total", "modules-task", "speedup", "identical", "split worker-cost", "worker-imb"},
		Notes: []string{
			fmt.Sprintf("host has %d CPU core(s); speedup >1 needs a multicore host", runtime.NumCPU()),
			"the learned network is bit-identical for every (p, W) combination (DESIGN.md §6)",
			"worker-cost: per-worker split-scoring cost counters, deterministic by static chunk deal",
		},
	}
	d := subsetData(n, m, 42, n, m)
	var base time.Duration
	var want *result.Network
	for _, workers := range []int{1, 2, 4, 8} {
		opt := runOptions(7)
		opt.Workers = workers
		opt.RecordWork = true
		start := time.Now()
		out, err := core.Learn(d, opt)
		if err != nil {
			panic(err)
		}
		dur := time.Since(start)
		if workers == 1 {
			base = dur
			want = out.Network
		}
		ph := out.Workload.Phase(splits.PhaseAssign)
		t.AddRow(
			fmt.Sprint(workers),
			fmtDur(dur),
			fmtDur(out.Timers.Get(core.TaskModules)),
			fmt.Sprintf("%.2f", float64(base)/float64(dur)),
			fmt.Sprint(result.Equal(out.Network, want)),
			fmtWorkerCost(ph.WorkerCost),
			fmt.Sprintf("%.3f", ph.WorkerImbalance()),
		)
	}
	return t
}
