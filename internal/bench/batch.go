// The batched split-scorer experiment: end-to-end effect of evaluating all
// split values of a ⟨node,parent⟩ pair in one pass (sorted parent ranks +
// exact logML memo, internal/splits + score.Memo) on the full learning run.
// Both legs run core.Learn on the same data and seed — one with
// DisableBatch set (the per-candidate path), one batched. The batched path
// is an exact re-expression of the same arithmetic on the same PRNG
// stream, so the learned networks must be identical; the table
// double-checks that alongside the speedup, and breaks the wall clock down
// per pipeline phase (only the modules phase contains split scoring, so
// ganesh/consensus also serve as a no-change control). The micro-level
// comparison lives in BenchmarkPosterior (internal/splits).

package bench

import (
	"fmt"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/result"
)

// BatchTable measures learning run time with the batched split scorer
// disabled ("unbatched", per-candidate evaluation) vs enabled, per phase,
// over the sequential-experiment grid.
func BatchTable(scale Scale) *Table {
	t := &Table{
		Title:  "Batched split scorer — per-candidate (DisableBatch) vs per-pair batched evaluation",
		Header: []string{"n", "m", "phase", "unbatched", "batched", "speedup", "identical"},
		Notes: []string{
			"one pass per ⟨node,parent⟩ pair: sorted parent ranks + exact (N,Sum,SumSq)-keyed logML memo",
			"'identical' is the bit-identity check between the two learned networks",
			"split scoring happens in the modules phase; ganesh/consensus are unaffected by the switch",
			"single-measurement wall clocks; BenchmarkPosterior isolates the hot loop itself",
		},
	}
	ns, ms := table1Sizes(scale)
	nMax, mMax := ns[len(ns)-1], ms[len(ms)-1]
	for _, n := range ns {
		for _, m := range ms {
			d := subsetData(nMax, mMax, 42, n, m)
			unbatched := runOptions(7)
			unbatched.Module.Splits.DisableBatch = true
			startUnb := time.Now()
			ref, err := core.Learn(d, unbatched)
			if err != nil {
				panic(err)
			}
			unbDur := time.Since(startUnb)
			startBat := time.Now()
			fast, err := core.Learn(d, runOptions(7))
			if err != nil {
				panic(err)
			}
			batDur := time.Since(startBat)
			t.AddRow(
				fmt.Sprint(n), fmt.Sprint(m), "total",
				fmtDur(unbDur), fmtDur(batDur),
				fmt.Sprintf("%.2f", float64(unbDur)/float64(batDur)),
				fmt.Sprint(result.Equal(ref.Network, fast.Network)),
			)
			for _, phase := range []string{core.TaskGaneSH, core.TaskConsensus, core.TaskModules} {
				u, b := ref.Timers.Get(phase), fast.Timers.Get(phase)
				speedup := "-"
				if b > 0 {
					speedup = fmt.Sprintf("%.2f", float64(u)/float64(b))
				}
				t.AddRow("", "", phase, fmtDur(u), fmtDur(b), speedup, "")
			}
		}
	}
	return t
}
