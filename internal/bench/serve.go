// The parsimoned service experiment: a load generator against an in-process
// serve.Server, reporting the latency decomposition a service operator
// cares about — admission wait (FIFO queueing behind the MaxJobs cap),
// end-to-end submit→done latency, and the cache-hit speedup of an identical
// resubmission. Following the bnlearn parallel-implementation study
// (Scutari et al., arXiv:1406.7648), latencies are reported end-to-end per
// request rather than as aggregate throughput: the service's promise is
// interactive response, and queueing is part of what the client observes.
//
// The timing sources are the job.* lifecycle events the server streams per
// job (their wall-clock stamps), so the decomposition is exact: admission
// wait = admitted−queued, run = done−admitted, end-to-end = done−queued.
// Cache hits never reach the runner, so their latency is simply the
// submit round trip.

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"parsimone/internal/jobs"
	"parsimone/internal/obs"
	"parsimone/internal/serve"
)

// serveCall routes one request through the in-process server.
func serveCall(s *serve.Server, method, target, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// ServeBench measures the HTTP service under a burst of unique learn jobs
// followed by an identical resubmission pass served from the result cache.
func ServeBench(scale Scale) *Table {
	nJobs, n, m := 4, 48, 24
	if scale == Full {
		nJobs, n, m = 8, 96, 32
	}
	const maxJobs = 2

	s := serve.NewServer(serve.Config{Jobs: jobs.Config{MaxJobs: maxJobs}})
	defer s.Close()

	d := genData(n, m, 11)
	var tsv bytes.Buffer
	if err := d.WriteTSV(&tsv); err != nil {
		panic(err)
	}
	body := func(seed uint64) string {
		b, err := json.Marshal(serve.JobRequest{
			Name:    fmt.Sprintf("load-%d", seed),
			Dataset: serve.DatasetRequest{TSV: tsv.String()},
			Seed:    seed, Updates: 1, Splits: 2, MaxSteps: 16,
		})
		if err != nil {
			panic(err)
		}
		return string(b)
	}

	// Cold burst: nJobs unique submissions (distinct seeds → distinct
	// cache keys) queue behind the MaxJobs cap.
	for i := 0; i < nJobs; i++ {
		w := serveCall(s, "POST", "/api/v1/jobs", body(uint64(100+i)))
		if w.Code != 202 {
			panic(fmt.Sprintf("bench: cold submit %d: HTTP %d: %s", i, w.Code, w.Body))
		}
	}
	for i := 0; i < nJobs; i++ {
		for {
			w := serveCall(s, "GET", fmt.Sprintf("/api/v1/jobs/%d?wait_ms=60000", i), "")
			var st serve.JobStatus
			if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
				panic(err)
			}
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "cancelled" {
				panic("bench: load job ended " + st.State)
			}
		}
	}

	// Hit pass: identical resubmissions answered by the cache; the submit
	// round trip IS the end-to-end latency.
	hits := make([]time.Duration, nJobs)
	for i := 0; i < nJobs; i++ {
		start := time.Now()
		w := serveCall(s, "POST", "/api/v1/jobs", body(uint64(100+i)))
		hits[i] = time.Since(start)
		var st serve.JobStatus
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			panic(err)
		}
		if w.Code != 200 || !st.Cached {
			panic(fmt.Sprintf("bench: resubmit %d was not a cache hit (HTTP %d, %+v)", i, w.Code, st))
		}
	}

	t := &Table{
		Title:  "parsimoned service latency (load generator, in-process HTTP)",
		Header: []string{"job", "admission wait", "run", "end-to-end", "cache hit", "speedup"},
	}
	for i := 0; i < nJobs; i++ {
		w := serveCall(s, "GET", fmt.Sprintf("/api/v1/jobs/%d/events", i), "")
		evs, err := obs.ReadJSONL(bytes.NewReader(w.Body.Bytes()))
		if err != nil {
			panic(err)
		}
		var queued, admitted, done int64
		for _, ev := range evs {
			switch ev.Type {
			case obs.TypeJobQueued:
				queued = ev.TNS
			case obs.TypeJobAdmitted:
				admitted = ev.TNS
			case obs.TypeJobDone:
				done = ev.TNS
			}
		}
		wait := time.Duration(admitted - queued)
		run := time.Duration(done - admitted)
		e2e := time.Duration(done - queued)
		speedup := float64(e2e) / float64(max(hits[i], time.Microsecond))
		t.AddRow(fmt.Sprintf("load-%d", 100+i), fmtDur(wait), fmtDur(run), fmtDur(e2e),
			fmtDur(hits[i]), fmt.Sprintf("%.0fx", speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d unique jobs (n=%d m=%d, distinct seeds) burst onto MaxJobs=%d; FIFO queueing is the admission wait", nJobs, n, m, maxJobs),
		"timings from the per-job lifecycle event stamps: wait=admitted−queued, run=done−admitted, end-to-end=done−queued",
		"cache hit is the full submit round trip of an identical resubmission — no learning run (bit-identical network by determinism)",
	)
	return t
}
