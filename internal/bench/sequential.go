package bench

import (
	"fmt"
	"math"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/ltbaseline"
	"parsimone/internal/result"
)

// table1Sizes returns the (n, m) grid for the Table 1 reproduction; the
// paper used n ∈ {1000, 2000, 3000} × m ∈ {125 … 1000}, reduced here ~6×
// per axis for a single-core environment.
func table1Sizes(scale Scale) (ns, ms []int) {
	if scale == Quick {
		return []int{48, 96}, []int{16, 24}
	}
	return []int{60, 120, 180}, []int{20, 30, 40, 50}
}

// Table1 reproduces Table 1: the run time of the Lemon-Tree-style reference
// engine vs the optimized sequential engine on subsampled data sets, the
// speedup, and the verification that both learn exactly the same network.
func Table1(scale Scale) *Table {
	t := &Table{
		Title:  "Table 1 — reference (Lemon-Tree-style) vs optimized sequential run time",
		Header: []string{"n", "m", "reference", "optimized", "speedup", "identical"},
		Notes: []string{
			"paper: n∈{1000,2000,3000} × m∈{125..1000}, speedups 3.6–3.8x, identical networks",
			"the reference engine rescans raw cells per score evaluation, as Lemon-Tree does",
		},
	}
	ns, ms := table1Sizes(scale)
	nMax, mMax := ns[len(ns)-1], ms[len(ms)-1]
	for _, n := range ns {
		for _, m := range ms {
			d := subsetData(nMax, mMax, 42, n, m)
			opt := runOptions(7)
			startRef := time.Now()
			ref, err := ltbaseline.Learn(d, opt)
			if err != nil {
				panic(err)
			}
			refDur := time.Since(startRef)
			startOpt := time.Now()
			fast, err := core.Learn(d, opt)
			if err != nil {
				panic(err)
			}
			optDur := time.Since(startOpt)
			t.AddRow(
				fmt.Sprint(n), fmt.Sprint(m),
				fmtDur(refDur), fmtDur(optDur),
				fmt.Sprintf("%.1f", float64(refDur)/float64(optDur)),
				fmt.Sprint(result.Equal(ref.Network, fast.Network)),
			)
		}
	}
	return t
}

// Fig3 reproduces Figure 3: sequential run-time growth as m grows, for
// several fixed n — the paper observes close to quadratic growth.
func Fig3(scale Scale) *Table {
	ns := []int{60, 120, 180, 240}
	ms := []int{20, 30, 40, 50, 60}
	if scale == Quick {
		ns = []int{48, 96}
		ms = []int{16, 24, 32}
	}
	t := &Table{
		Title:  "Figure 3 — run-time growth rate vs observations (ratio to smallest m)",
		Header: append([]string{"m", "(m/m0)^2"}, nsHeader(ns)...),
		Notes:  []string{"paper: growth tracks the dashed m² line for every n"},
	}
	nMax, mMax := ns[len(ns)-1], ms[len(ms)-1]
	ratios := make(map[int][]float64, len(ns))
	for _, n := range ns {
		for _, m := range ms {
			ratios[n] = append(ratios[n], avgSeconds(subsetData(nMax, mMax, 42, n, m), scale))
		}
	}
	for mi, m := range ms {
		row := []string{fmt.Sprint(m), fmt.Sprintf("%.2f", sq(float64(m)/float64(ms[0])))}
		for _, n := range ns {
			row = append(row, fmt.Sprintf("%.2f", ratios[n][mi]/ratios[n][0]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4 reproduces Figure 4: sequential run-time growth as n grows, for
// several fixed m — the paper observes growth between n^1.8 and n².
func Fig4(scale Scale) *Table {
	ns := []int{60, 120, 180, 240}
	ms := []int{20, 30, 40}
	if scale == Quick {
		ns = []int{48, 96, 144}
		ms = []int{16, 24}
	}
	t := &Table{
		Title:  "Figure 4 — run-time growth rate vs variables (ratio to smallest n)",
		Header: append([]string{"n", "(n/n0)^1.8", "(n/n0)^2"}, msHeader(ms)...),
		Notes:  []string{"paper: growth falls between the n^1.8 and n² lines; the superlinearity comes from the module count K growing with n"},
	}
	nMax, mMax := ns[len(ns)-1], ms[len(ms)-1]
	times := make(map[int][]float64, len(ms))
	for _, m := range ms {
		for _, n := range ns {
			times[m] = append(times[m], avgSeconds(subsetData(nMax, mMax, 42, n, m), scale))
		}
	}
	for niIdx, n := range ns {
		x := float64(n) / float64(ns[0])
		row := []string{fmt.Sprint(n), fmt.Sprintf("%.2f", math.Pow(x, 1.8)), fmt.Sprintf("%.2f", x*x)}
		for _, m := range ms {
			row = append(row, fmt.Sprintf("%.2f", times[m][niIdx]/times[m][0]))
		}
		t.AddRow(row...)
	}
	return t
}

// Estimate reproduces the §5.2.2 extrapolation methodology: fit the
// quadratic-in-m growth law on small data sets, predict a larger run, then
// verify the prediction against an actual run (the paper verified its
// 13.5-day estimate with a 325-hour run).
func Estimate(scale Scale) *Table {
	n := 180
	fitMs := []int{20, 30, 40}
	target := 80
	if scale == Quick {
		n = 96
		fitMs = []int{12, 16, 20}
		target = 32
	}
	t := &Table{
		Title:  "§5.2.2 — run-time estimation by m² extrapolation, verified by an actual run",
		Header: []string{"m", "measured", "predicted (c·m²)"},
		Notes: []string{
			"paper: predicted 324.5h for the full yeast data set; a verification run took 325.1h",
		},
	}
	// Fit c from the last fit point (the paper scales from a measured
	// anchor: T(m_target) = T(m_anchor)·(m_target/m_anchor)²).
	var anchor float64
	for _, m := range fitMs {
		sec := avgSeconds(subsetData(n, target, 42, n, m), scale)
		anchor = sec
		t.AddRow(fmt.Sprint(m), fmtDur(time.Duration(sec*float64(time.Second))), "-")
	}
	anchorM := fitMs[len(fitMs)-1]
	pred := time.Duration(anchor * sq(float64(target)/float64(anchorM)) * float64(time.Second))
	sec := avgSeconds(subsetData(n, target, 42, n, target), scale)
	dur := time.Duration(sec * float64(time.Second))
	t.AddRow(fmt.Sprint(target), fmtDur(dur), fmtDur(pred))
	ratio := float64(dur) / float64(pred)
	t.Notes = append(t.Notes, fmt.Sprintf("measured/predicted = %.2f (1.00 is a perfect estimate)", ratio))
	return t
}

// avgSeconds measures the optimized sequential engine on d, averaged over
// three run seeds (the paper repeats every run with three random seeds and
// reports the average, §5.1); Quick scale uses a single seed.
func avgSeconds(d *dataset.Data, scale Scale) float64 {
	seeds := []uint64{7, 8, 9}
	if scale == Quick {
		seeds = seeds[:1]
	}
	var total float64
	for _, seed := range seeds {
		r := runSequential(d, seed)
		total += r.duration.Seconds()
	}
	return total / float64(len(seeds))
}

func nsHeader(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("n=%d", n)
	}
	return out
}

func msHeader(ms []int) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = fmt.Sprintf("m=%d", m)
	}
	return out
}

func sq(x float64) float64 { return x * x }
