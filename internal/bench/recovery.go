// Recovery experiment: cost of the fault-tolerance layer. The paper's
// pipeline persists intermediate artifacts so a multi-day run survives
// failures (§5.3); this experiment measures both halves of that bargain —
// the checkpointing overhead an uninterrupted run pays, and the work a
// crashed run saves by resuming from the per-module progress manifest
// instead of starting over — and verifies the recovered network is
// bit-identical to the uninterrupted one at every crash point. Every
// checkpointed measurement runs under both the v2 JSON and the v3 binary
// checkpoint formats, with the on-disk footprint and the warm-resume
// latency alongside.

package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/result"
)

// Recovery times a supervised crash-and-restart at each task boundary and at
// the first, middle, and last module, against the uninterrupted run.
func Recovery(scale Scale) *Table {
	n, m := 48, 24
	if scale == Full {
		n, m = 120, 40
	}
	d := genData(n, m, 2)
	opt := runOptions(2)
	const p = 2

	timeRun := func(o core.Options) (*core.Output, time.Duration) {
		start := time.Now()
		out, err := core.LearnParallel(p, d, o)
		if err != nil {
			panic(err)
		}
		return out, time.Since(start)
	}

	clean, cleanDur := timeRun(opt)
	nm := len(clean.Network.Modules)

	tab := &Table{
		Title:  fmt.Sprintf("Crash recovery: %d×%d, p=%d, %d modules", n, m, p, nm),
		Header: []string{"crash point", "format", "time", "vs clean", "ckpt bytes", "identical", "restarts"},
	}
	tab.AddRow("none", "-", fmtDur(cleanDur), "1.00x", "-", "-", "0")

	formats := []struct {
		name   string
		binary bool
	}{{"json", false}, {"binary", true}}

	vsClean := func(dur time.Duration) string {
		return fmt.Sprintf("%.2fx", dur.Seconds()/cleanDur.Seconds())
	}

	// Overhead and footprint: the uninterrupted run with checkpoint
	// persistence on, then a warm resume over the finished directory (the
	// save/load latency of a fully populated checkpoint set).
	ckptBytes := map[string]int64{}
	for _, format := range formats {
		dir, err := os.MkdirTemp("", "parsimone-recovery-")
		if err != nil {
			panic(err)
		}
		withCkpt := opt
		withCkpt.CheckpointDir = dir
		withCkpt.BinaryCheckpoints = format.binary
		ckptOut, ckptDur := timeRun(withCkpt)
		ckptBytes[format.name] = dirSize(dir)
		tab.AddRow("none (checkpointing)", format.name, fmtDur(ckptDur), vsClean(ckptDur),
			fmt.Sprintf("%d", ckptBytes[format.name]),
			yesNo(result.Equal(ckptOut.Network, clean.Network)), "0")

		resumed, resumeDur := timeRun(withCkpt)
		tab.AddRow("resume (warm ckpt)", format.name, fmtDur(resumeDur), vsClean(resumeDur),
			fmt.Sprintf("%d", ckptBytes[format.name]),
			yesNo(result.Equal(resumed.Network, clean.Network)), "0")
		os.RemoveAll(dir)
	}

	failpoints := []string{core.TaskGaneSH, core.TaskConsensus}
	seen := map[string]bool{}
	for _, mi := range []int{0, nm / 2, nm - 1} {
		fp := fmt.Sprintf("module:%d", mi)
		if !seen[fp] {
			seen[fp] = true
			failpoints = append(failpoints, fp)
		}
	}
	for _, fp := range failpoints {
		for _, format := range formats {
			dir, err := os.MkdirTemp("", "parsimone-recovery-")
			if err != nil {
				panic(err)
			}
			injected := opt
			injected.CheckpointDir = dir
			injected.BinaryCheckpoints = format.binary
			injected.MaxRestarts = 1
			injected.Inject = &core.FaultSpec{Task: fp, Rank: 0}
			out, dur := timeRun(injected)
			tab.AddRow("crash@"+fp, format.name, fmtDur(dur), vsClean(dur),
				fmt.Sprintf("%d", dirSize(dir)),
				yesNo(result.Equal(out.Network, clean.Network)),
				fmt.Sprintf("%d", len(out.Recovery)))
			os.RemoveAll(dir)
		}
	}

	tab.Notes = append(tab.Notes,
		"each crash row runs to the failpoint, dies, restarts, and resumes from checkpoints",
		"later crash points resume more completed work, so their total time approaches 1x + the pre-crash work",
		"'identical' compares the recovered network bit-for-bit against the uninterrupted run",
		"'ckpt bytes' is the on-disk checkpoint footprint when the run finished",
		fmt.Sprintf("v3 binary checkpoints are %.1fx smaller than v2 JSON (%d vs %d bytes)",
			float64(ckptBytes["json"])/float64(ckptBytes["binary"]),
			ckptBytes["binary"], ckptBytes["json"]),
		"'resume (warm ckpt)' reruns over a finished checkpoint directory: pure load-and-verify latency")
	return tab
}

// dirSize sums the file sizes directly inside dir.
func dirSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if fi, err := os.Stat(filepath.Join(dir, e.Name())); err == nil && !fi.IsDir() {
			total += fi.Size()
		}
	}
	return total
}

// yesNo renders a boolean for table cells.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
