// Recovery experiment: cost of the fault-tolerance layer. The paper's
// pipeline persists intermediate artifacts so a multi-day run survives
// failures (§5.3); this experiment measures both halves of that bargain —
// the checkpointing overhead an uninterrupted run pays, and the work a
// crashed run saves by resuming from the per-module progress manifest
// instead of starting over — and verifies the recovered network is
// bit-identical to the uninterrupted one at every crash point.

package bench

import (
	"fmt"
	"os"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/result"
)

// Recovery times a supervised crash-and-restart at each task boundary and at
// the first, middle, and last module, against the uninterrupted run.
func Recovery(scale Scale) *Table {
	n, m := 48, 24
	if scale == Full {
		n, m = 120, 40
	}
	d := genData(n, m, 2)
	opt := runOptions(2)
	const p = 2

	timeRun := func(o core.Options) (*core.Output, time.Duration) {
		start := time.Now()
		out, err := core.LearnParallel(p, d, o)
		if err != nil {
			panic(err)
		}
		return out, time.Since(start)
	}

	clean, cleanDur := timeRun(opt)
	nm := len(clean.Network.Modules)

	tab := &Table{
		Title:  fmt.Sprintf("Crash recovery: %d×%d, p=%d, %d modules", n, m, p, nm),
		Header: []string{"crash point", "time", "vs clean", "identical", "restarts"},
	}
	tab.AddRow("none", fmtDur(cleanDur), "1.00x", "-", "0")

	// Overhead: the uninterrupted run with checkpoint persistence on.
	ckptDir, err := os.MkdirTemp("", "parsimone-recovery-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(ckptDir)
	withCkpt := opt
	withCkpt.CheckpointDir = ckptDir
	ckptOut, ckptDur := timeRun(withCkpt)
	tab.AddRow("none (checkpointing)", fmtDur(ckptDur),
		fmt.Sprintf("%.2fx", ckptDur.Seconds()/cleanDur.Seconds()),
		yesNo(result.Equal(ckptOut.Network, clean.Network)), "0")

	failpoints := []string{core.TaskGaneSH, core.TaskConsensus}
	seen := map[string]bool{}
	for _, mi := range []int{0, nm / 2, nm - 1} {
		fp := fmt.Sprintf("module:%d", mi)
		if !seen[fp] {
			seen[fp] = true
			failpoints = append(failpoints, fp)
		}
	}
	for _, fp := range failpoints {
		dir, err := os.MkdirTemp("", "parsimone-recovery-")
		if err != nil {
			panic(err)
		}
		injected := opt
		injected.CheckpointDir = dir
		injected.MaxRestarts = 1
		injected.Inject = &core.FaultSpec{Task: fp, Rank: 0}
		out, dur := timeRun(injected)
		tab.AddRow("crash@"+fp, fmtDur(dur),
			fmt.Sprintf("%.2fx", dur.Seconds()/cleanDur.Seconds()),
			yesNo(result.Equal(out.Network, clean.Network)),
			fmt.Sprintf("%d", len(out.Recovery)))
		os.RemoveAll(dir)
	}

	tab.Notes = append(tab.Notes,
		"each crash row runs to the failpoint, dies, restarts, and resumes from checkpoints",
		"later crash points resume more completed work, so their total time approaches 1x + the pre-crash work",
		"'identical' compares the recovered network bit-for-bit against the uninterrupted run")
	return tab
}

// yesNo renders a boolean for table cells.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
