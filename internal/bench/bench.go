// Package bench regenerates every table and figure of the paper's
// evaluation (§5) at a reduced scale suitable for a single node: Table 1
// (baseline vs optimized sequential run time), Figures 3–4 (sequential
// growth rates), Figure 5 (task breakdown and strong scaling on yeast-scale
// subsets), Figure 6 and Table 2 (large-data-set scaling), the §5.3.1 load
// imbalance measurement, the §5.2.2 run-time extrapolation, and the §4.2
// determinism verification — plus the distribution-scheme ablation the
// paper motivates (fine vs coarse; dynamic balancing is its stated future
// work).
//
// Strong-scaling times beyond the local core count are *modeled* from the
// recorded per-item work of the real sequential execution plus a calibrated
// postal communication model; see trace.Model and DESIGN.md §2 for the
// substitution rationale. Small-p parallel runs execute for real on the
// goroutine message-passing runtime and are used to verify the model's
// fidelity and the determinism contract.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
	"parsimone/internal/trace"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick is for CI and testing.B: seconds per experiment.
	Quick Scale = iota
	// Full is the benchtab default: the complete reduced-scale
	// reproduction, minutes per experiment.
	Full
)

// Table is a printable experiment result. The JSON tags are the benchtab
// -json machine-readable schema.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// genData produces the standard synthetic workload for a given shape.
// The module count grows with n (≈ n/35), matching the paper's observation
// that K grows with the number of variables (§5.2.2).
func genData(n, m int, seed uint64) *dataset.Data {
	d, _, err := synth.Generate(synth.Config{N: n, M: m, Seed: seed})
	if err != nil {
		panic(err)
	}
	return d
}

// masterData caches the "complete data set" each sequential experiment
// subsets, mirroring the paper's §5.2 construction: smaller benchmark data
// sets are the first n variables × first m observations of one compendium,
// so grid cells differ only in size, not in data identity.
var masterCache = map[[3]uint64]*dataset.Data{}

func masterData(nMax, mMax int, seed uint64) *dataset.Data {
	key := [3]uint64{uint64(nMax), uint64(mMax), seed}
	if d, ok := masterCache[key]; ok {
		return d
	}
	d := genData(nMax, mMax, seed)
	masterCache[key] = d
	return d
}

// subsetData returns the first n × first m cells of the cached master.
func subsetData(nMax, mMax int, seed uint64, n, m int) *dataset.Data {
	d, err := masterData(nMax, mMax, seed).Subset(n, m)
	if err != nil {
		panic(err)
	}
	return d
}

// runOptions is the paper's minimum-run-time configuration (§5.1) with the
// bootstrap cap reduced to keep the reduced-scale experiments quick.
func runOptions(seed uint64) core.Options {
	opt := core.DefaultOptions()
	opt.Seed = seed
	opt.Module.Splits = splits.Params{NumSplits: 2, MaxSteps: 32}
	return opt
}

// measured is one instrumented sequential run.
type measured struct {
	out      *core.Output
	duration time.Duration
}

// runSequential executes the optimized sequential engine, recording work.
func runSequential(d *dataset.Data, seed uint64) measured {
	opt := runOptions(seed)
	opt.RecordWork = true
	start := time.Now()
	out, err := core.Learn(d, opt)
	if err != nil {
		panic(err)
	}
	return measured{out: out, duration: time.Since(start)}
}

// model calibrates the scaling model from a measured run.
func (m measured) model() trace.Model {
	mod := trace.DefaultModel()
	mod.Calibrate(m.out.Workload, m.duration)
	return mod
}

// fmtDur renders a duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.0fms", float64(d.Microseconds())/1000)
	}
}

// Experiments lists the available experiment ids in canonical order.
func Experiments() []string {
	return []string{
		"table1", "fig3", "fig4", "fig5a", "fig5b", "fig5c",
		"fig6", "table2", "imbalance", "ablation-dist", "threads",
		"estimate", "determinism", "compare-genomica", "crossval",
		"comm-volume", "recovery", "obs-overhead", "kernel", "batch", "serve",
	}
}

// Run executes one experiment by id.
func Run(id string, scale Scale) (*Table, error) {
	switch id {
	case "table1":
		return Table1(scale), nil
	case "fig3":
		return Fig3(scale), nil
	case "fig4":
		return Fig4(scale), nil
	case "fig5a":
		return Fig5a(scale), nil
	case "fig5b":
		return Fig5b(scale), nil
	case "fig5c":
		return Fig5c(scale), nil
	case "fig6":
		return Fig6(scale), nil
	case "table2":
		return Table2(scale), nil
	case "imbalance":
		return Imbalance(scale), nil
	case "ablation-dist":
		return AblationDist(scale), nil
	case "threads":
		return Threads(scale), nil
	case "estimate":
		return Estimate(scale), nil
	case "determinism":
		return Determinism(scale), nil
	case "compare-genomica":
		return CompareGenomica(scale), nil
	case "crossval":
		return CrossVal(scale), nil
	case "comm-volume":
		return CommVolume(scale), nil
	case "recovery":
		return Recovery(scale), nil
	case "obs-overhead":
		return ObsOverhead(scale), nil
	case "kernel":
		return KernelTable(scale), nil
	case "batch":
		return BatchTable(scale), nil
	case "serve":
		return ServeBench(scale), nil
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
}
