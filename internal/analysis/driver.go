// The driver runs a set of analyzers over loaded packages, applies the
// //parsivet suppression convention, and renders findings as text or JSON.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"io"
	"sort"
)

// Analyze runs the analyzers over one package and returns the unsuppressed
// findings in position order. Whole-program analyzers see a program of
// just that package.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := analyzeProgram(NewProgram([]*Package{pkg}), analyzers)
	return diags, err
}

// AnalyzeProgram runs the analyzers over all packages of prog: per-package
// analyzers over each package in turn, whole-program analyzers once over
// the full program. Findings come back unsuppressed and in position order.
func AnalyzeProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := analyzeProgram(prog, analyzers)
	return diags, err
}

func analyzeProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, *suppTracker, error) {
	var files []*ast.File
	for _, pkg := range prog.Packages {
		files = append(files, pkg.Files...)
	}
	tracker := newSuppTracker(prog.Fset, files)
	var diags []Diagnostic
	report := func(d Diagnostic) {
		if !tracker.suppressed(d) {
			diags = append(diags, d)
		}
	}
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    report,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Analyzer: a, Program: prog, report: report, supp: tracker}
		if err := a.RunProgram(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %v", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, tracker, nil
}

// Run loads the packages matching patterns and analyzes them as one
// program, returning all findings sorted by position.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := load(patterns, analyzers)
	return diags, err
}

// RunStrict is Run plus stale-suppression detection: every //parsivet:
// comment that silenced nothing in this run (and every keyword no analyzer
// of the run owns) comes back as a "suppressions" finding, so audited
// sites cannot outlive the hazard they audit. Strict runs only make sense
// with the full analyzer set — a subset would misreport the excluded
// analyzers' keywords as stale.
func RunStrict(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, tracker, err := load(patterns, analyzers)
	if err != nil {
		return nil, err
	}
	diags = append(diags, tracker.stale(analyzers)...)
	sortDiagnostics(diags)
	return diags, nil
}

func load(patterns []string, analyzers []*Analyzer) ([]Diagnostic, *suppTracker, error) {
	pkgs, err := NewLoader().Load(patterns...)
	if err != nil {
		return nil, nil, err
	}
	return analyzeProgram(NewProgram(pkgs), analyzers)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// WriteText renders findings one per line in the go vet style.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as an indented JSON array (always an array,
// "[]" when clean) in the Diagnostic.MarshalJSON schema documented in
// cmd/parsivet.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
