// The driver runs a set of analyzers over loaded packages, applies the
// //parsivet suppression convention, and renders findings as text or JSON.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Analyze runs the analyzers over one package and returns the unsuppressed
// findings in position order.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildSuppressionIndex(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !idx.suppressed(d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// Run loads the packages matching patterns and analyzes each, returning all
// findings sorted by position.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := NewLoader().Load(patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := Analyze(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// WriteText renders findings one per line in the go vet style.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the machine-readable finding format of `parsivet -json`,
// consumed by benchtab-style tooling to track counts across PRs.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array (always an array,
// "[]" when clean).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
