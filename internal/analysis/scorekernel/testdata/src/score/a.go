// Package score is exempt: it is the sanctioned home of the
// marginal-likelihood arithmetic and the kernel's own tables.
package score

import "math"

func fill(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
