// Package score mirrors internal/score's sharper rule: the score's
// math.Log/math.Lgamma spellings are permitted only in Prior.LogML,
// Kernel.LogML, and the table builder NewKernel. The memo serves cached
// bits and must compute no transcendental itself.
package score

import "math"

type Prior struct{ Alpha0 float64 }

type Kernel struct{ tables []float64 }

type Memo struct{ kern *Kernel }

func (p Prior) LogML(x float64) float64 {
	v, _ := math.Lgamma(x + p.Alpha0)
	return v - math.Log(x)
}

func (k *Kernel) LogML(x float64) float64 {
	return k.tables[0] - math.Log(x)
}

func NewKernel(x float64) *Kernel {
	lg, _ := math.Lgamma(x)
	return &Kernel{tables: []float64{lg + math.Log(x)}}
}

func (m *Memo) LogML(x float64) float64 {
	return math.Log(x) // want "math.Log in package score outside Prior.LogML/Kernel.LogML/NewKernel"
}

func helper(x float64) float64 {
	v, _ := math.Lgamma(x) // want "direct math.Lgamma call outside the pinned LogML kernels"
	return v + math.Log(x) // want "math.Log in package score outside Prior.LogML/Kernel.LogML/NewKernel"
}

func otherMathIsFine(x float64) float64 {
	return math.Sqrt(x) + math.Exp(x)
}

func audited(x float64) float64 {
	//parsivet:scorekernel — deliberate second spelling (testdata)
	return math.Log(x)
}
