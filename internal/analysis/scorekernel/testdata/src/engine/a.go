// Seeded scorekernel cases in a deterministic (non-score) package.
package engine

import "math"

func directLgamma(x float64) float64 {
	v, _ := math.Lgamma(x) // want "direct math.Lgamma call outside the pinned LogML kernels"
	return v
}

func inExpression(x float64) float64 {
	a, _ := math.Lgamma(x + 0.5) // want "direct math.Lgamma call outside the pinned LogML kernels"
	b, _ := math.Lgamma(x)       // want "direct math.Lgamma call outside the pinned LogML kernels"
	return a - b
}

func otherMathIsFine(x float64) float64 {
	return math.Log(x) + math.Sqrt(x)
}

func audited(x float64) float64 {
	//parsivet:scorekernel — not a block score (testdata)
	v, _ := math.Lgamma(x)
	return v
}
