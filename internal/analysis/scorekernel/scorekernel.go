// Package scorekernel keeps the marginal-likelihood arithmetic inside
// internal/score. The exact-bit-identity argument for the precomputed
// scoring kernel (DESIGN.md §11) holds only because every LogML evaluation
// in the repo goes through Prior.LogML, Kernel.LogML, or the exact memo in
// front of them (score.Memo), whose expression shapes are pinned against
// each other by differential tests. A direct math.Lgamma call in engine
// code is a second, unpinned spelling of the score: it can drift from the
// kernel (different expression shape, FMA contraction) and silently break
// cross-engine bit identity — and it bypasses the kernel's tables,
// re-paying the transcendental cost the hot loop was restructured to avoid.
//
// Inside internal/score itself the check is sharper: the data-dependent
// Log(βN) suffix (and every other math.Log/math.Lgamma of the score) may be
// spelled only in Prior.LogML, Kernel.LogML, and the table builder
// NewKernel. In particular the memo cache (Memo.LogML) is permitted to
// SERVE logML values precisely because it computes none — it delegates
// every miss to Kernel.LogML and replays the resulting bits — so a
// transcendental call appearing in it (or any future score helper) would
// break the memo's exactness-by-construction argument and is flagged.
// Deliberate exceptions carry //parsivet:scorekernel with a justification.
package scorekernel

import (
	"go/ast"
	"go/types"

	"parsimone/internal/analysis"
)

// Analyzer is the scorekernel check.
var Analyzer = &analysis.Analyzer{
	Name:     "scorekernel",
	Doc:      "flags direct math.Lgamma calls outside internal/score, and math.Log/math.Lgamma outside the pinned LogML kernels within it",
	Suppress: "scorekernel",
	Run:      run,
}

// scoreAllowed are the functions of package score pinned by differential
// tests as the canonical spellings of the normal-gamma score. Keys are
// "Recv.Name" for methods, "Name" for functions.
var scoreAllowed = map[string]bool{
	"Prior.LogML":  true,
	"Kernel.LogML": true,
	"NewKernel":    true,
}

func run(pass *analysis.Pass) error {
	inScore := pass.Pkg.Name() == "score"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil {
				return false
			}
			if inScore && scoreAllowed[funcKey(fd)] {
				return false // the sanctioned kernel spellings
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				switch fn.FullName() {
				case "math.Lgamma":
					pass.Reportf(call.Pos(),
						"direct math.Lgamma call outside the pinned LogML kernels: score through Prior.LogML, Kernel.LogML, or Memo.LogML so the kernel's bit-identity pinning covers it, or annotate //parsivet:scorekernel with why this evaluation is not a block score")
				case "math.Log":
					if inScore {
						pass.Reportf(call.Pos(),
							"math.Log in package score outside Prior.LogML/Kernel.LogML/NewKernel: the Log(βN) suffix has exactly three pinned spellings, and the memo stays exact only by computing none — move the arithmetic into the kernel or annotate //parsivet:scorekernel")
					}
				}
				return true
			})
			return false
		})
	}
	return nil
}

// funcKey renders a FuncDecl as "Recv.Name" (methods, any pointerness) or
// "Name" (functions).
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
