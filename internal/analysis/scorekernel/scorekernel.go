// Package scorekernel keeps the marginal-likelihood arithmetic inside
// internal/score. The exact-bit-identity argument for the precomputed
// scoring kernel (DESIGN.md §11) holds only because every LogML evaluation
// in the repo goes through Prior.LogML or Kernel.LogML, whose expression
// shapes are pinned against each other by differential tests. A direct
// math.Lgamma call in engine code is a second, unpinned spelling of the
// score: it can drift from the kernel (different expression shape, FMA
// contraction) and silently break cross-engine bit identity — and it
// bypasses the kernel's tables, re-paying the transcendental cost the hot
// loop was restructured to avoid. Deliberate exceptions carry
// //parsivet:scorekernel with a justification.
package scorekernel

import (
	"go/ast"
	"go/types"

	"parsimone/internal/analysis"
)

// Analyzer is the scorekernel check.
var Analyzer = &analysis.Analyzer{
	Name:     "scorekernel",
	Doc:      "flags direct math.Lgamma calls outside internal/score (score through Prior.LogML or Kernel.LogML)",
	Suppress: "scorekernel",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	// internal/score is the sanctioned home of the marginal-likelihood
	// arithmetic: Prior.LogML, the kernel tables, and their differential
	// tests live there.
	if pass.Pkg.Name() == "score" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if fn.FullName() == "math.Lgamma" {
				pass.Reportf(call.Pos(),
					"direct math.Lgamma call outside internal/score: score through Prior.LogML or Kernel.LogML so the kernel's bit-identity pinning covers it, or annotate //parsivet:scorekernel with why this evaluation is not a block score")
			}
			return true
		})
	}
	return nil
}
