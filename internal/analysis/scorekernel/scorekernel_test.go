package scorekernel_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/scorekernel"
)

// TestScoreKernel proves the analyzer flags direct math.Lgamma calls in
// engine code, leaves other math functions (including math.Log) alone
// outside internal/score, and honors //parsivet:scorekernel.
func TestScoreKernel(t *testing.T) { analysistest.Run(t, scorekernel.Analyzer, "engine") }

// TestScoreInternalRules proves the sharper in-score rule: math.Log and
// math.Lgamma are permitted only inside Prior.LogML, Kernel.LogML, and
// NewKernel — a transcendental in the memo (or any other helper) is
// flagged.
func TestScoreInternalRules(t *testing.T) { analysistest.Run(t, scorekernel.Analyzer, "score") }
