package scorekernel_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/scorekernel"
)

// TestScoreKernel proves the analyzer flags direct math.Lgamma calls in
// engine code, leaves other math functions alone, and honors
// //parsivet:scorekernel.
func TestScoreKernel(t *testing.T) { analysistest.Run(t, scorekernel.Analyzer, "engine") }

// TestScoreExempt proves internal/score — where the kernel and its
// differential tests live — is not checked.
func TestScoreExempt(t *testing.T) { analysistest.Run(t, scorekernel.Analyzer, "score") }
