package floateq_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/floateq"
)

// TestFloatEq proves the analyzer flags seeded ==/!=/switch on floats and
// accepts integer comparisons, constant folding, and //parsivet:floateq.
func TestFloatEq(t *testing.T) { analysistest.Run(t, floateq.Analyzer, "cluster") }

// TestScoreExempt proves internal/score — the sanctioned home of float
// comparison semantics — is not checked.
func TestScoreExempt(t *testing.T) { analysistest.Run(t, floateq.Analyzer, "score") }
