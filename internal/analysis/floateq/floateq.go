// Package floateq flags raw == / != / switch comparisons on floating-point
// operands outside internal/score. The reproduction's exactness discipline
// (score package doc) never compares accumulated floats directly: values
// are quantized at ingestion, statistics are exact int64 fixed point, and
// sampling weights go through score.QuantizeWeights / score.QuantizeProb.
// A raw float equality elsewhere is either dead-on-arrival (drifted
// accumulations never compare equal) or a platform trap (x87/FMA double
// rounding), and in both cases it can differ between the optimized engine
// and the baseline. Deliberate bit-equality checks — tie-breaking
// comparators over already-quantization-derived scores, cross-engine
// verification — carry //parsivet:floateq with a justification.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"parsimone/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name:     "floateq",
	Doc:      "flags ==/!=/switch on float operands outside internal/score's quantization helpers",
	Suppress: "floateq",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	// internal/score is the sanctioned home of float comparison: its
	// quantizers define the comparison semantics everything else uses.
	if pass.Pkg.Name() == "score" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.TypesInfo.TypeOf(n.X)) && !isFloat(pass.TypesInfo.TypeOf(n.Y)) {
					return true
				}
				if isConst(pass, n.X) && isConst(pass, n.Y) {
					return true
				}
				pass.Reportf(n.OpPos,
					"raw float %s comparison: compare through score.QuantizeWeights/QuantizeProb-derived values, or annotate //parsivet:floateq with why bit equality is intended",
					n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(pass.TypesInfo.TypeOf(n.Tag)) {
					pass.Reportf(n.Switch,
						"switch on float value compares with ==: quantize first or annotate //parsivet:floateq")
				}
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
