// Seeded floateq cases in a deterministic (non-score) package.
package cluster

func eq(a, b float64) bool {
	return a == b // want "raw float == comparison"
}

func neq(a, b float32) bool {
	return a != b // want "raw float != comparison"
}

func zeroCompare(x float64) bool {
	return x == 0 // want "raw float == comparison"
}

func floatSwitch(x float64) int {
	switch x { // want "switch on float"
	case 0:
		return 0
	}
	return 1
}

func intsAreFine(a, b int) bool { return a == b }

func constFoldIsFine() bool { return 1.0 == 2.0 }

func audited(a, b float64) bool {
	//parsivet:floateq — bit-identity intended (testdata)
	return a == b
}

func orderingIsFine(a, b float64) bool { return a < b }
