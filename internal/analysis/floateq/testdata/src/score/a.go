// Package score is exempt: it defines the quantization helpers that give
// float comparison its sanctioned semantics.
package score

func eq(a, b float64) bool { return a == b }
