// Seeded commreach cases against the real internal/comm package: calls
// under rank-dependent guards whose callees reach a collective one or two
// hops down.
package engine

import "parsimone/internal/comm"

func add(a, b int) int { return a + b }

// exchange bears a collective directly (one hop from its callers).
func exchange(c *comm.Comm, v int) int { return comm.AllReduce(c, v, add) }

// fuse bears a collective two hops down: fuse → exchange → comm.AllReduce.
func fuse(c *comm.Comm, v int) int { return exchange(c, v+1) }

func guardedDeep(c *comm.Comm, v int) int {
	if c.Rank() == 0 {
		return fuse(c, v) // want "call to engine.fuse under a rank-dependent conditional reaches a collective: engine.fuse → engine.exchange → comm.AllReduce"
	}
	return 0
}

func guardedShallow(c *comm.Comm, v int) int {
	rank := c.Rank()
	switch rank {
	case 0:
		return exchange(c, v) // want "engine.exchange → comm.AllReduce"
	}
	return 0
}

// symmetric reaches the collective on every rank: clean.
func symmetric(c *comm.Comm, v int) int { return fuse(c, v) }

// guardedP2P is the naturally rank-conditional point-to-point shape:
// Send/Recv bear no collective, so the guard is fine.
func guardedP2P(c *comm.Comm) {
	if c.Rank() == 0 {
		comm.Send(c, 1, 1)
	}
}

// guardedDirect is commsym's finding, not commreach's: running only
// commreach over this file must stay silent here, so the two analyzers
// never double-report one site.
func guardedDirect(c *comm.Comm) {
	if c.Rank() == 0 {
		comm.Barrier(c)
	}
}

// audited carries the justification where the guarded call is taken.
func audited(c *comm.Comm, v int) int {
	if c.Rank() == 0 {
		//parsivet:commreach — audited: size-1 sub-communicator, cannot deadlock (testdata)
		return fuse(c, v)
	}
	return 0
}

// pureGuarded calls only collective-free helpers under the guard: clean.
func pureGuarded(c *comm.Comm, v int) int {
	if c.Rank() == 0 {
		return add(v, 1)
	}
	return 0
}
