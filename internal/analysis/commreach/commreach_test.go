package commreach_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/commreach"
)

// TestCommReach proves the interprocedural generalization of commsym:
// calls taken under rank-dependent conditionals whose callees bear a
// collective one or two hops down are flagged with the bearing path,
// while symmetric calls, guarded point-to-point traffic, direct
// collective calls (commsym's finding), and audited sites stay silent.
// The testdata imports the real parsimone/internal/comm package.
func TestCommReach(t *testing.T) {
	analysistest.RunPackages(t, commreach.Analyzer, "engine")
}
