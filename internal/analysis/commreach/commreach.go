// Package commreach is the interprocedural generalization of commsym: a
// call under a rank-dependent conditional must not lead — through any
// chain of client functions — to a comm collective. commsym flags the
// collective written lexically inside the guarded branch; commreach flags
// the guarded call whose callee reaches the collective two or more hops
// down, which deadlocks identically (the guarded ranks enter the
// collective, the rest never arrive) but is invisible per-package.
//
// The analysis has two halves. A whole-program backward pass marks every
// function in comm's client set that transitively reaches a collective
// ("collective-bearing"); comm's own internals are excluded — implementing
// a collective out of rank-asymmetric sends is the package's job, and its
// symmetry is the fault layer's runtime contract. Then every file outside
// comm is scanned for rank-guarded regions (commsym.RankGuarded), and each
// guarded call to a collective-bearing function is reported with the chain
// from callee to collective. Direct collective calls inside a guard stay
// commsym's finding, so no site is reported twice.
package commreach

import (
	"go/ast"
	"strings"

	"parsimone/internal/analysis"
	"parsimone/internal/analysis/callgraph"
	"parsimone/internal/analysis/commsym"
)

// Analyzer is the commreach check.
var Analyzer = &analysis.Analyzer{
	Name:       "commreach",
	Doc:        "flags rank-guarded calls to functions that transitively reach a comm collective",
	Suppress:   "commreach",
	RunProgram: run,
}

// inComm reports whether the node belongs to the comm package itself.
func inComm(n *callgraph.Node) bool {
	if n.Pkg == nil {
		return false
	}
	path := n.Pkg.Path()
	return path == "comm" || strings.HasSuffix(path, "/comm")
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Of(pass.Program)
	bearing := g.Reach(callgraph.ReachOpts{
		Sink: func(n *callgraph.Node) bool { return commsym.IsCollective(n.Func) },
		SkipNode: func(n *callgraph.Node) bool {
			return inComm(n) && !commsym.IsCollective(n.Func)
		},
		SkipEdge: func(caller *callgraph.Node, e callgraph.Edge) bool {
			return pass.SuppressedAt(e.Site, "commreach")
		},
	})
	for _, pkg := range pass.Program.Packages {
		if pkg.Types != nil && (pkg.Types.Path() == "comm" || strings.HasSuffix(pkg.Types.Path(), "/comm")) {
			continue
		}
		for _, f := range pkg.Files {
			guarded := commsym.RankGuarded(pkg.Info, f)
			if len(guarded) == 0 {
				continue
			}
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callgraph.StaticCallee(pkg.Info, call)
				if fn == nil || commsym.IsCollective(fn) {
					return true // dynamic, or commsym's direct finding
				}
				n := g.NodeOf(fn)
				if n == nil || !bearing.Reaches(n) || bearing.IsSink(n) {
					return true
				}
				for _, gd := range guarded {
					if gd.Pos() <= call.Pos() && call.End() <= gd.End() {
						pass.Reportf(call.Pos(),
							"call to %s under a rank-dependent conditional reaches a collective: %s; every rank must reach the collective or the guarded ranks deadlock — restructure or annotate //parsivet:commreach",
							n.Name, bearing.PathString(n))
						break
					}
				}
				return true
			})
		}
	}
	return nil
}
