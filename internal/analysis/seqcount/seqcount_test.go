package seqcount_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/seqcount"
)

// TestSeqCount proves the analyzer flags a seeded ad-hoc goroutine in a
// deterministic package and accepts the //parsivet:seqcount suppression.
func TestSeqCount(t *testing.T) { analysistest.Run(t, seqcount.Analyzer, "ganesh") }

// TestNonDeterministicPackage proves goroutines outside the deterministic
// set (e.g. the comm runtime, the pool itself) are not flagged.
func TestNonDeterministicPackage(t *testing.T) { analysistest.Run(t, seqcount.Analyzer, "other") }

// TestWirePackage proves the serialization codecs are guarded too: the
// checkpoint bytes they produce are compared bit-for-bit on resume.
func TestWirePackage(t *testing.T) { analysistest.Run(t, seqcount.Analyzer, "wire") }
