// Seeded case proving the wire codec package sits inside the deterministic
// set: its encoders feed checkpoint bytes compared bit-for-bit across
// (p, W) configurations, so ad-hoc goroutines are flagged there too.
package wire

func launch(work func()) {
	go work() // want "ad-hoc goroutine"
}

func encodeSequentially(parts []func()) {
	for _, p := range parts {
		p()
	}
}
