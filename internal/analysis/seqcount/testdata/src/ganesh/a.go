// Seeded seqcount cases. The package is named "ganesh" so it falls inside
// the deterministic set the analyzer guards.
package ganesh

func launch(work func()) {
	go work() // want "ad-hoc goroutine"
}

func launchClosure(n int) {
	go func() { // want "ad-hoc goroutine"
		_ = n * n
	}()
}

func audited(work func()) {
	//parsivet:seqcount — audited launch (testdata)
	go work()
}

func sequentialIsFine(work func()) {
	work()
}
