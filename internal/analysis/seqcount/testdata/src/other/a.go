// Package other is outside the deterministic set: it may launch goroutines
// (as the comm runtime and internal/pool do).
package other

func launch(work func()) {
	go work()
}
