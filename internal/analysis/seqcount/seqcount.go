// Package seqcount flags `go` statements inside the deterministic
// packages. All intra-rank parallelism must flow through internal/pool,
// whose workers partition index ranges deterministically and report the
// per-worker counters the hybrid p×W scaling model is calibrated on; an
// ad-hoc goroutine bypasses both — its interleaving is scheduler-dependent
// and its work is invisible to the trace/scaling accounting. Audited
// launches (none today) carry //parsivet:seqcount.
package seqcount

import (
	"go/ast"

	"parsimone/internal/analysis"
)

// Analyzer is the seqcount check.
var Analyzer = &analysis.Analyzer{
	Name:     "seqcount",
	Doc:      "flags goroutine launches in deterministic packages that bypass internal/pool",
	Suppress: "seqcount",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go,
					"ad-hoc goroutine in deterministic package %q bypasses the internal/pool p×W scaling model; use pool.Run or annotate //parsivet:seqcount",
					pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
