package maporder_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/maporder"
)

// TestMapOrder proves the analyzer catches seeded unordered iterations in a
// deterministic package and accepts the collect-then-sort idiom and the
// //parsivet:ordered suppression.
func TestMapOrder(t *testing.T) { analysistest.Run(t, maporder.Analyzer, "core") }

// TestNonDeterministicPackage proves packages outside the deterministic set
// are not checked at all.
func TestNonDeterministicPackage(t *testing.T) { analysistest.Run(t, maporder.Analyzer, "other") }
