// Package maporder flags `range` over a map inside the deterministic
// packages. Go randomizes map-iteration order per range, so any value that
// depends on visitation order — float accumulation, first-wins selection,
// serialized output — silently varies between runs and between ranks,
// breaking the bit-identity invariant the paper's parallel design rests on.
//
// Two shapes are accepted without annotation:
//
//   - the collect-then-sort idiom: a loop whose body only appends to one
//     slice, where a later statement in the same block sorts that slice;
//   - loops carrying a //parsivet:ordered suppression with a justification
//     (e.g. the loop only computes an order-free reduction such as a max
//     over ints, or populates another map).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"parsimone/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flags range over a map in deterministic packages unless keys are collected and sorted",
	Suppress: "ordered",
	Run:      run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsDeterministic(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMap(pass.TypesInfo.TypeOf(rs.X)) {
					continue
				}
				if collectThenSort(pass, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.For,
					"range over map %s in deterministic package %q: iteration order is randomized; collect and sort keys first, or annotate //parsivet:ordered with a justification",
					types.ExprString(rs.X), pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list owned by n, if any. Every statement —
// and hence every range loop — lives in exactly one such list, which also
// holds the statements that follow it.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// collectThenSort reports whether rs is the sanctioned collect-then-sort
// idiom: every body statement appends to the same slice, and a following
// statement in the enclosing block passes that slice to a sort call.
func collectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	target := ""
	for _, stmt := range rs.Body.List {
		t, ok := appendTarget(pass, stmt)
		if !ok || (target != "" && t != target) {
			return false
		}
		target = t
	}
	if target == "" {
		return false
	}
	for _, stmt := range rest {
		sorted := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isSortCall(pass, call) {
				for _, arg := range call.Args {
					if types.ExprString(arg) == target {
						sorted = true
					}
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}

// appendTarget matches `x = append(x, ...)` and returns x's rendering.
func appendTarget(pass *analysis.Pass, stmt ast.Stmt) (string, bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return "", false
	}
	lhs := types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return "", false
	}
	return lhs, true
}

// isSortCall recognizes the sort and slices sorting entry points.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
