// Package other is outside the deterministic set: unordered iteration is
// allowed here and the analyzer must stay silent.
package other

func plainRange(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
