// Seeded maporder cases. The package is named "core" so it falls inside
// the deterministic set the analyzer guards.
package core

import "sort"

func plainRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map m"
		total += v
	}
	return total
}

func collectThenSortKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}

func collectThenSortSlice(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func suppressed(m map[string]int) int {
	n := 0
	//parsivet:ordered — element count, independent of visitation order
	for range m {
		n++
	}
	return n
}

func sliceRangeIsFine(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
