// The loader enumerates packages with `go list` and type-checks them from
// source with go/types. It deliberately avoids golang.org/x/tools/go/packages
// (and any module download): `go list` reads only the local module and
// GOROOT, so `make lint` needs no network and reuses the go command's own
// caches. Dependencies are checked with IgnoreFuncBodies for speed; only the
// packages under analysis get full bodies and a populated types.Info.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, fully type-checked package under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *listError
}

type listError struct {
	Err string
}

// Loader loads and type-checks packages on demand, caching by import path.
// Every import path is checked exactly once — named packages fully (bodies
// and Info), pure dependencies with IgnoreFuncBodies — so all type
// identities are consistent regardless of the order packages are reached.
type Loader struct {
	fset    *token.FileSet
	meta    map[string]*listedPackage
	checked map[string]*types.Package
	full    map[string]*Package
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	return &Loader{
		fset:    token.NewFileSet(),
		meta:    map[string]*listedPackage{},
		checked: map[string]*types.Package{},
		full:    map[string]*Package{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list -e -deps -json args...` and merges the result into
// the metadata cache. CGO is disabled so every listed package has pure-Go
// sources the type checker can consume.
func (l *Loader) goList(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-json"}, args...)...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	dec := json.NewDecoder(out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if _, dup := l.meta[p.ImportPath]; !dup {
			l.meta[p.ImportPath] = &p
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.String())
	}
	return nil
}

// Load lists the packages matching patterns and returns the named (non-dep)
// ones fully type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var targets []*listedPackage
	for _, m := range l.meta {
		if !m.DepOnly {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	pkgs := make([]*Package, 0, len(targets))
	for _, m := range targets {
		if _, err := l.importPackage(m.ImportPath); err != nil {
			return nil, err
		}
		p, ok := l.full[m.ImportPath]
		if !ok {
			return nil, fmt.Errorf("analysis: %s was not fully checked", m.ImportPath)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// parseFiles parses the listed Go files of m with comments retained.
func (l *Loader) parseFiles(m *listedPackage) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo returns a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// CheckFiles parses and type-checks an explicit file list as a package with
// the given import path, resolving its imports through the loader. The
// analysistest harness uses it to load testdata packages that live outside
// the module's package graph. The checked package is registered under path,
// so a testdata package checked later may import an earlier one by that
// path — the interprocedural analyzers' testdata uses this to seed
// cross-package call chains.
func (l *Loader) CheckFiles(path string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	cfg := &types.Config{Importer: &pkgImporter{l: l}, FakeImportC: true}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.checked[path] = tpkg
	l.full[path] = pkg
	return pkg, nil
}

// importPackage returns the type-checked package at path, listing and
// checking it on first use: named (non-dep) packages get a full check with
// bodies and Info, pure dependencies are checked with IgnoreFuncBodies.
func (l *Loader) importPackage(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	m, ok := l.meta[path]
	if !ok {
		if err := l.goList(path); err != nil {
			return nil, err
		}
		if m, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("analysis: go list did not report %q", path)
		}
	}
	if m.Error != nil {
		return nil, fmt.Errorf("analysis: %s: %s", m.ImportPath, m.Error.Err)
	}
	files, err := l.parseFiles(m)
	if err != nil {
		return nil, err
	}
	cfg := &types.Config{
		Importer:         &pkgImporter{l: l, importMap: m.ImportMap},
		FakeImportC:      true,
		IgnoreFuncBodies: m.DepOnly,
	}
	var info *types.Info
	if !m.DepOnly {
		info = newInfo()
	}
	tpkg, err := cfg.Check(m.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", m.ImportPath, err)
	}
	l.checked[m.ImportPath] = tpkg
	if !m.DepOnly {
		l.full[m.ImportPath] = &Package{Path: m.ImportPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	}
	return tpkg, nil
}

// pkgImporter resolves one package's imports through the loader, applying
// the package's ImportMap (vendored path renames inside GOROOT).
type pkgImporter struct {
	l         *Loader
	importMap map[string]string
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.l.importPackage(path)
}
