// Supervisor-runtime cases: a package named jobs is NOT wallclock-exempt —
// its budget/backoff/report timing must carry audited //parsivet:wallclock
// annotations, and stochastic scheduling decisions stay banned outright.
package jobs

import (
	"time"
)

type job struct {
	started time.Time
	dur     time.Duration
}

func admit(j *job) {
	j.started = time.Now() // want "wallclock read"
}

func admitAudited(j *job) {
	j.started = time.Now() //parsivet:wallclock — report duration only, never feeds learned-network state
}

func finish(j *job) {
	j.dur = time.Since(j.started) // want "wallclock read"
}

func finishAudited(j *job) {
	j.dur = time.Since(j.started) //parsivet:wallclock — report duration only, never feeds learned-network state
}

// Deterministic backoff needs no wallclock read: timers and sleeps are
// allowed, only observing the clock is not.
func backoff(base time.Duration, attempt int) {
	time.Sleep(base << attempt)
}
