// Seeded prngonly cases in a non-exempt package.
package engine

import (
	_ "crypto/rand" // want "bypasses internal/prng"
	"math/rand"     // want "bypasses internal/prng"
	"time"
)

func draw() int {
	// Only the import is flagged; one finding per banned package.
	return rand.Int()
}

func stamp() time.Time {
	return time.Now() // want "wallclock read"
}

func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wallclock read"
}

func deadline(t0 time.Time) time.Duration {
	return time.Until(t0) // want "wallclock read"
}

func audited() time.Time {
	//parsivet:wallclock — audited harness timing (testdata)
	return time.Now()
}

func timersAreFine(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}
