// Seeded case proving the wire codec package is not wallclock-exempt: the
// encoded bytes must be a pure function of the encoded values (resume
// bit-identity), so PRNG imports and wallclock reads are flagged.
package wire

import (
	"math/rand" // want "bypasses internal/prng"
	"time"
)

func randomPadding() int {
	return rand.Int()
}

func stamp() time.Time {
	return time.Now() // want "wallclock read"
}
