// Package obs is wallclock-exempt: observability timestamps never feed
// learned-network state.
package obs

import "time"

func now() int64 { return time.Now().UnixNano() }
