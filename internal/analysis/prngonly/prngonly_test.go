package prngonly_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/prngonly"
)

// TestPRNGOnly proves the analyzer flags seeded math/rand and crypto/rand
// imports and wallclock reads, and accepts //parsivet:wallclock sites and
// timer construction.
func TestPRNGOnly(t *testing.T) { analysistest.Run(t, prngonly.Analyzer, "engine") }

// TestExemptPackage proves the obs/trace/bench allowlist: a package named
// obs may read the wallclock freely.
func TestExemptPackage(t *testing.T) { analysistest.Run(t, prngonly.Analyzer, "obs") }

// TestWirePackage proves the serialization codecs are not exempt: encoded
// bytes must be a pure function of the encoded values.
func TestWirePackage(t *testing.T) { analysistest.Run(t, prngonly.Analyzer, "wire") }

// TestJobsPackage proves the supervised job runtime is not exempt either:
// its budget/report timing must carry audited //parsivet:wallclock
// annotations, while timers and sleeps (deterministic backoff) pass freely.
func TestJobsPackage(t *testing.T) { analysistest.Run(t, prngonly.Analyzer, "jobs") }
