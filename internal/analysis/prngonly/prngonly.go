// Package prngonly forces every stochastic draw through internal/prng and
// every timestamp through the observability layer. The paper's design makes
// all ranks replay one MRG3 substream schedule derived from the run seed;
// an import of math/rand (host PRNG, unseeded or differently seeded per
// rank) or a wallclock read feeding a decision silently forks that
// schedule. The obs, trace, and bench packages are exempt — their
// timestamps never feed learned-network state — as are test files, which
// the parsivet driver does not load at all. Audited wallclock reads in
// timing harnesses (cmd/benchtab, examples) and in the supervised job
// runtime's budget/report timing (internal/jobs) carry
// //parsivet:wallclock.
package prngonly

import (
	"go/ast"
	"go/types"
	"strconv"

	"parsimone/internal/analysis"
)

// Analyzer is the prngonly check.
var Analyzer = &analysis.Analyzer{
	Name:     "prngonly",
	Doc:      "flags math/rand and crypto/rand imports and wallclock reads outside obs/trace/bench",
	Suppress: "wallclock",
	Run:      run,
}

// bannedImports are the host randomness sources internal/prng replaces.
var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// clockReads are the time package's wallclock entry points.
var clockReads = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

func run(pass *analysis.Pass) error {
	if analysis.WallclockExempt[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if bannedImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %s bypasses internal/prng: all stochastic draws must come from the run seed's MRG3 substreams",
					path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if clockReads[fn.FullName()] {
				pass.Reportf(call.Pos(),
					"%s is a wallclock read outside obs/trace/bench: deterministic code must not observe time; annotate //parsivet:wallclock if this is audited harness timing",
					fn.FullName())
			}
			return true
		})
	}
	return nil
}
