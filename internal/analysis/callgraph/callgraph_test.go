package callgraph

import (
	"go/types"
	"path/filepath"
	"testing"

	"parsimone/internal/analysis"
)

func loadCG(t *testing.T) (*analysis.Package, *Graph) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "cg")
	pkg, err := analysis.NewLoader().CheckFiles("cg", []string{filepath.Join(dir, "a.go")})
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram([]*analysis.Package{pkg})
	return pkg, Of(prog)
}

func fnOf(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	fn, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("function %s not found", name)
	}
	return fn
}

func timeSink(n *Node) bool {
	return n.Func != nil && n.Func.FullName() == "time.Now"
}

func TestBuildEdges(t *testing.T) {
	pkg, g := loadCG(t)

	// direct → stamp is a single static edge.
	direct := g.NodeOf(fnOf(t, pkg, "direct"))
	if len(direct.Out) != 1 || direct.Out[0].Kind != Static || direct.Out[0].Callee.Name != "cg.stamp" {
		t.Errorf("direct edges = %v, want one static edge to cg.stamp", direct.Out)
	}

	// dynamic's call through its parameter is recorded with no callee.
	dyn := g.NodeOf(fnOf(t, pkg, "dynamic"))
	if len(dyn.Out) != 1 || dyn.Out[0].Kind != Dynamic || dyn.Out[0].Callee != nil {
		t.Errorf("dynamic edges = %v, want one dynamic edge with nil callee", dyn.Out)
	}

	// passes references stamp outside call position: a ref edge, plus the
	// static call of dynamic.
	passes := g.NodeOf(fnOf(t, pkg, "passes"))
	var kinds []Kind
	for _, e := range passes.Out {
		kinds = append(kinds, e.Kind)
	}
	if len(passes.Out) != 2 || passes.Out[0].Kind != Static || passes.Out[1].Kind != Ref {
		t.Errorf("passes edge kinds = %v, want [static ref]", kinds)
	}

	// Interface dispatch resolves to the abstract method as a dynamic edge.
	viaIface := g.NodeOf(fnOf(t, pkg, "viaInterface"))
	if len(viaIface.Out) != 1 || viaIface.Out[0].Kind != Dynamic || viaIface.Out[0].Callee == nil {
		t.Errorf("viaInterface edges = %v, want one dynamic edge to the abstract method", viaIface.Out)
	}

	// Generic instantiation folds onto the origin function.
	inst := g.NodeOf(fnOf(t, pkg, "instantiated"))
	if len(inst.Out) != 1 || inst.Out[0].Callee != g.NodeOf(fnOf(t, pkg, "generic")) {
		t.Errorf("instantiated edges = %v, want one edge to the generic origin", inst.Out)
	}

	// Conversions and builtins produce no edges.
	clean := g.NodeOf(fnOf(t, pkg, "clean"))
	if len(clean.Out) != 0 {
		t.Errorf("clean edges = %v, want none", clean.Out)
	}
}

func TestReach(t *testing.T) {
	pkg, g := loadCG(t)
	r := g.Reach(ReachOpts{Sink: timeSink})

	reaches := map[string]bool{
		"direct":       true, // static chain
		"viaMethod":    true, // method call through a concrete receiver
		"iife":         true, // immediately-invoked literal
		"escape":       true, // escaping literal, via the ref edge
		"passes":       true, // function value passed on, via the ref edge
		"stamp":        true,
		"dynamic":      false, // dynamic call does not propagate
		"viaInterface": false, // interface dispatch does not propagate
		"clean":        false,
		"instantiated": false,
	}
	for name, want := range reaches {
		n := g.NodeOf(fnOf(t, pkg, name))
		if got := r.Reaches(n); got != want {
			t.Errorf("Reaches(%s) = %v, want %v", name, got, want)
		}
	}

	if got := r.PathString(g.NodeOf(fnOf(t, pkg, "direct"))); got != "cg.direct → cg.stamp → time.Now" {
		t.Errorf("PathString(direct) = %q", got)
	}
	if got := r.PathString(g.NodeOf(fnOf(t, pkg, "viaMethod"))); got != "cg.viaMethod → cg.widget.tick → cg.stamp → time.Now" {
		t.Errorf("PathString(viaMethod) = %q", got)
	}

	// The first hop of a path lies inside the reporting function's body.
	direct := g.NodeOf(fnOf(t, pkg, "direct"))
	path := r.Path(direct)
	if len(path) != 2 || path[0].Site < direct.Pos {
		t.Errorf("Path(direct) = %v, want two hops starting inside direct", path)
	}
}

func TestReachSkipRefs(t *testing.T) {
	pkg, g := loadCG(t)
	r := g.Reach(ReachOpts{Sink: timeSink, SkipRefs: true})
	if r.Reaches(g.NodeOf(fnOf(t, pkg, "escape"))) {
		t.Error("escape must not reach through a ref edge when SkipRefs is set")
	}
	if r.Reaches(g.NodeOf(fnOf(t, pkg, "passes"))) {
		t.Error("passes must not reach through a ref edge when SkipRefs is set")
	}
	if !r.Reaches(g.NodeOf(fnOf(t, pkg, "iife"))) {
		t.Error("an immediately-invoked literal is a static edge and must still reach")
	}
}

// TestReachDeterministic pins that repeated reachability passes pick the
// identical witness path for every node.
func TestReachDeterministic(t *testing.T) {
	pkg, g := loadCG(t)
	a := g.Reach(ReachOpts{Sink: timeSink})
	b := g.Reach(ReachOpts{Sink: timeSink})
	for _, name := range []string{"direct", "viaMethod", "iife", "escape", "passes"} {
		n := g.NodeOf(fnOf(t, pkg, name))
		if pa, pb := a.PathString(n), b.PathString(n); pa != pb {
			t.Errorf("witness path for %s differs across runs: %q vs %q", name, pa, pb)
		}
	}
}

// TestReachSkipNodeAndEdge pins the two barrier hooks: a skipped node
// neither takes nor forwards taint, and a skipped edge breaks the chain.
func TestReachSkipNodeAndEdge(t *testing.T) {
	pkg, g := loadCG(t)
	stamp := g.NodeOf(fnOf(t, pkg, "stamp"))

	r := g.Reach(ReachOpts{
		Sink:     timeSink,
		SkipNode: func(n *Node) bool { return n == stamp },
	})
	if r.Reaches(g.NodeOf(fnOf(t, pkg, "direct"))) {
		t.Error("direct must not reach when the chain's only hop is skipped")
	}

	r = g.Reach(ReachOpts{
		Sink:     timeSink,
		SkipEdge: func(caller *Node, e Edge) bool { return caller == stamp },
	})
	if r.Reaches(g.NodeOf(fnOf(t, pkg, "direct"))) {
		t.Error("direct must not reach when stamp's sink edge is skipped")
	}
	var now *Node
	for _, n := range g.Nodes() {
		if timeSink(n) {
			now = n
		}
	}
	if now == nil || !r.IsSink(now) {
		t.Error("time.Now should still be a sink node")
	}
}
