// Call-graph construction cases: static chains, method calls through
// concrete receivers, generic instantiation, immediately-invoked and
// escaping function literals, function-typed parameters (dynamic), and
// interface dispatch (dynamic).
package cg

import "time"

type widget struct{}

func (w *widget) tick() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }

func direct() int64 { return stamp() }

func viaMethod(w *widget) int64 { return w.tick() }

func iife() int64 {
	return func() int64 { return stamp() }()
}

func escape() func() int64 {
	return func() int64 { return stamp() }
}

func dynamic(f func() int64) int64 { return f() }

func passes() int64 { return dynamic(stamp) }

type ticker interface{ tick() int64 }

func viaInterface(t ticker) int64 { return t.tick() }

func generic[T any](v T) T { return v }

func instantiated() int { return generic[int](1) }

func clean(x int) int { return len([]int{x}) + int(int64(x)) }
