// Package callgraph builds a static call graph over the type-checked
// packages of one analysis.Program — the base layer of the interprocedural
// parsivet analyzers (detreach, commreach, errsink). The per-package
// analyzers see one function body at a time; the invariants they guard are
// properties of call *chains* (a wallclock read two helpers down forks the
// deterministic schedule exactly as a direct one does), so this package
// provides the chains.
//
// Nodes are declared functions and methods plus function literals; edges
// are recorded in source order, so every traversal is deterministic. Three
// edge kinds approximate Go's call semantics conservatively, without a
// pointer analysis:
//
//   - Static: a call whose callee resolves through go/types — a package
//     function, a method on a concrete receiver type (generic
//     instantiations are folded onto their origin), or an
//     immediately-invoked function literal.
//   - Ref: a reference to a function, method, or literal outside call
//     position (passed as an argument, stored in a variable or field,
//     returned). The enclosing function is treated as though it may invoke
//     the referenced function: whoever receives the value can call it, and
//     the reference site is the only place the graph can anchor that
//     possibility. This is what connects closures handed to pool.Run or
//     carried in pipeline structs back to the function that built them.
//   - Dynamic: a call through a function-typed variable, parameter, field,
//     or an interface method. The target is unknown; the edge is recorded
//     (with the abstract method as Callee for interface calls, nil
//     otherwise) so analyzers can see that a dynamic call happens, but
//     Reach never propagates through it — the matching Ref edge at the
//     value's creation site carries the taint instead.
//
// Bodies exist only for the packages under analysis; dependency functions
// (time.Now, os.Getenv, the standard library at large) are leaf nodes.
// Reachability that would continue inside a dependency's body is therefore
// invisible — sinks must be named at the dependency's surface.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"parsimone/internal/analysis"
)

// Kind classifies one call-graph edge.
type Kind uint8

const (
	// Static is a direct call with a statically resolved callee.
	Static Kind = iota
	// Ref is a function value escaping at its creation or reference site.
	Ref
	// Dynamic is a call whose target cannot be resolved statically.
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Ref:
		return "ref"
	default:
		return "dynamic"
	}
}

// Edge is one outgoing call, reference, or dynamic-call record.
type Edge struct {
	Kind Kind
	// Site is the call or reference position, the anchor for //parsivet
	// suppressions along a reported chain.
	Site token.Pos
	// Callee is nil for Dynamic edges through function-typed values.
	Callee *Node
}

// Node is one function: a declared function or method (Func set), a
// function literal (Lit set), or a bodyless dependency leaf.
type Node struct {
	Func *types.Func  // declared function or method; nil for literals
	Lit  *ast.FuncLit // function literal; nil for declared functions
	Pkg  *types.Package
	Sig  *types.Signature
	Name string    // display name: "pkg.Func", "pkg.T.Method", "pkg.Func.func"
	Pos  token.Pos // declaration position
	Out  []Edge    // outgoing edges in source order
}

// Graph is the whole-program call graph.
type Graph struct {
	funcs map[*types.Func]*Node
	lits  map[*ast.FuncLit]*Node
	nodes []*Node // deterministic creation order
}

// Of returns prog's call graph, building it on first use and sharing it
// across the interprocedural analyzers via Program.Memo.
func Of(prog *analysis.Program) *Graph {
	return prog.Memo("callgraph", func() any { return Build(prog) }).(*Graph)
}

// Build constructs the call graph over every package of prog. Packages,
// files, and bodies are visited in loader order, so node and edge order is
// a pure function of the source.
func Build(prog *analysis.Program) *Graph {
	g := &Graph{funcs: map[*types.Func]*Node{}, lits: map[*ast.FuncLit]*Node{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := g.funcNode(fn)
				if fd.Body != nil {
					g.addBody(pkg.Info, n, fd.Body)
				}
			}
		}
	}
	return g
}

// NodeOf returns the node of a declared function or method, folding
// generic instantiations onto their origin, or nil if fn is unknown.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.funcs[fn.Origin()]
}

// Nodes returns every node in deterministic source order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// funcNode interns the node of a declared function or method.
func (g *Graph) funcNode(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := g.funcs[fn]; ok {
		return n
	}
	sig, _ := fn.Type().(*types.Signature)
	n := &Node{Func: fn, Pkg: fn.Pkg(), Sig: sig, Name: displayName(fn), Pos: fn.Pos()}
	g.funcs[fn] = n
	g.nodes = append(g.nodes, n)
	return n
}

// litNode interns the node of a function literal enclosed by parent.
func (g *Graph) litNode(lit *ast.FuncLit, parent *Node, info *types.Info) *Node {
	if n, ok := g.lits[lit]; ok {
		return n
	}
	var sig *types.Signature
	if tv, ok := info.Types[lit]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}
	n := &Node{Lit: lit, Pkg: parent.Pkg, Sig: sig, Name: parent.Name + ".func", Pos: lit.Pos()}
	g.lits[lit] = n
	g.nodes = append(g.nodes, n)
	return n
}

// displayName renders a compact qualified name for diagnostics:
// pkg.Func for package functions, pkg.T.Method for methods.
func displayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		name = pkg.Name() + "." + name
	}
	return name
}

// StaticCallee resolves call's callee to the function object it names, or
// nil for calls through function-typed values. It sees through parentheses
// and explicit generic instantiation (f[T](...)); interface-method callees
// resolve to the abstract method object, which Build records as a Dynamic
// edge.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	case *ast.IndexListExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// addBody records the outgoing edges of n's body, interning nested
// function literals as child nodes along the way.
func (g *Graph) addBody(info *types.Info, n *Node, body ast.Node) {
	// Pass one: identifiers in call position (so the reference pass skips
	// them) and literals that are invoked where they stand.
	callPos := map[*ast.Ident]bool{}
	calledLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callPos[fun] = true
		case *ast.SelectorExpr:
			callPos[fun.Sel] = true
		case *ast.IndexExpr:
			switch x := ast.Unparen(fun.X).(type) {
			case *ast.Ident:
				callPos[x] = true
			case *ast.SelectorExpr:
				callPos[x.Sel] = true
			}
		case *ast.IndexListExpr:
			switch x := ast.Unparen(fun.X).(type) {
			case *ast.Ident:
				callPos[x] = true
			case *ast.SelectorExpr:
				callPos[x.Sel] = true
			}
		case *ast.FuncLit:
			calledLits[fun] = true
		}
		return true
	})

	// Pass two: edges in source order. Nested literals open their own node
	// and consume their own subtree.
	var walk func(nd ast.Node, cur *Node)
	walk = func(nd ast.Node, cur *Node) {
		ast.Inspect(nd, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				child := g.litNode(x, cur, info)
				kind := Ref
				if calledLits[x] {
					kind = Static
				}
				cur.Out = append(cur.Out, Edge{Kind: kind, Site: x.Pos(), Callee: child})
				walk(x.Body, child)
				return false
			case *ast.CallExpr:
				fun := ast.Unparen(x.Fun)
				if _, ok := fun.(*ast.FuncLit); ok {
					return true // edge added at the literal
				}
				if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
					return true // conversion or builtin, not a call edge
				}
				if fn := StaticCallee(info, x); fn != nil {
					kind := Static
					if sig, ok := fn.Type().(*types.Signature); ok &&
						sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
						kind = Dynamic
					}
					cur.Out = append(cur.Out, Edge{Kind: kind, Site: x.Pos(), Callee: g.funcNode(fn)})
				} else {
					cur.Out = append(cur.Out, Edge{Kind: Dynamic, Site: x.Pos()})
				}
				return true
			case *ast.Ident:
				if callPos[x] {
					return true
				}
				if fn, ok := info.Uses[x].(*types.Func); ok {
					cur.Out = append(cur.Out, Edge{Kind: Ref, Site: x.Pos(), Callee: g.funcNode(fn)})
				}
				return true
			}
			return true
		})
	}
	walk(body, n)
}

// ReachOpts configures one sink-reachability computation.
type ReachOpts struct {
	// Sink marks the taint sources: functions whose callers become
	// transitively tainted.
	Sink func(*Node) bool
	// SkipNode, when non-nil, stops taint from propagating into the given
	// function: it is never marked reached and its callers never see taint
	// through it. Used for the wallclock-exempt packages and for comm's own
	// internals.
	SkipNode func(*Node) bool
	// SkipEdge, when non-nil, excludes one edge from propagation — the
	// hook for //parsivet-audited call sites along a chain.
	SkipEdge func(caller *Node, e Edge) bool
	// SkipRefs excludes Ref edges: error-propagation chains (errsink)
	// follow only real calls, while taint chains (detreach, commreach)
	// follow escaping function values too.
	SkipRefs bool
}

// Reach is the result of one backward reachability pass: for every
// function that can reach a sink, the first hop of one deterministic
// witness path (breadth-first, so the path is among the shortest; ties
// break on source order).
type Reach struct {
	next map[*Node]Edge
	sink map[*Node]bool
}

// Reach computes which functions transitively reach a sink under opts. The
// propagation is a breadth-first traversal of reversed edges seeded with
// the sinks in source order, so the result — including each witness path —
// is deterministic.
func (g *Graph) Reach(opts ReachOpts) *Reach {
	type revEdge struct {
		caller *Node
		e      Edge
	}
	incoming := map[*Node][]revEdge{}
	for _, n := range g.nodes {
		if opts.SkipNode != nil && opts.SkipNode(n) {
			continue
		}
		for _, e := range n.Out {
			if e.Callee == nil || e.Kind == Dynamic {
				continue
			}
			if opts.SkipRefs && e.Kind == Ref {
				continue
			}
			if opts.SkipEdge != nil && opts.SkipEdge(n, e) {
				continue
			}
			incoming[e.Callee] = append(incoming[e.Callee], revEdge{n, e})
		}
	}
	r := &Reach{next: map[*Node]Edge{}, sink: map[*Node]bool{}}
	var queue []*Node
	for _, n := range g.nodes {
		if opts.Sink(n) {
			r.sink[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, in := range incoming[n] {
			if r.sink[in.caller] {
				continue
			}
			if _, seen := r.next[in.caller]; seen {
				continue
			}
			r.next[in.caller] = in.e
			queue = append(queue, in.caller)
		}
	}
	return r
}

// Reaches reports whether n transitively reaches a sink (a sink reaches
// trivially).
func (r *Reach) Reaches(n *Node) bool {
	if r.sink[n] {
		return true
	}
	_, ok := r.next[n]
	return ok
}

// IsSink reports whether n itself is a sink.
func (r *Reach) IsSink(n *Node) bool { return r.sink[n] }

// Path returns the witness chain from n to a sink as edges; the first
// edge's Site lies inside n's body. Nil when n does not reach.
func (r *Reach) Path(n *Node) []Edge {
	if r.sink[n] {
		return nil
	}
	var path []Edge
	for !r.sink[n] {
		e, ok := r.next[n]
		if !ok {
			return nil
		}
		path = append(path, e)
		n = e.Callee
	}
	return path
}

// PathString renders the witness chain from n as "a → b → c" for
// diagnostics, starting at n's own name and ending at the sink.
func (r *Reach) PathString(n *Node) string {
	s := n.Name
	for _, e := range r.Path(n) {
		s += " → " + e.Callee.Name
	}
	return s
}
