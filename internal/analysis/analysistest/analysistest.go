// Package analysistest runs one analyzer over testdata packages and
// checks its findings against `// want "regexp"` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// Test packages live under testdata/src/<pkg>/ beside the analyzer's test
// file. Each line that should be flagged carries a trailing comment
//
//	code() // want "part of the expected message"
//
// with one quoted regexp per expected finding on that line. Lines without
// a want comment must produce no finding — including lines silenced by the
// //parsivet suppression convention, which the harness applies exactly as
// the parsivet driver does.
//
// RunPackages loads several testdata packages into one loader — in the
// given order, so later packages may import earlier ones by bare name —
// and analyzes them as one program. The interprocedural analyzers use it
// to seed call chains that cross package boundaries.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"parsimone/internal/analysis"
)

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// Run analyzes testdata/src/<pkg> with a and reports any mismatch between
// findings and want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunPackages(t, a, pkg)
}

// RunPackages analyzes the testdata packages as one program, loading them
// in order through a shared loader so later packages may import earlier
// ones, and checks the findings of every file against its want comments.
func RunPackages(t *testing.T, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	var files []string
	for _, pkg := range pkgNames {
		dir := filepath.Join("testdata", "src", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		var pkgFiles []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				pkgFiles = append(pkgFiles, filepath.Join(dir, e.Name()))
			}
		}
		sort.Strings(pkgFiles)
		if len(pkgFiles) == 0 {
			t.Fatalf("no Go files under %s", dir)
		}
		p, err := loader.CheckFiles(pkg, pkgFiles)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
		files = append(files, pkgFiles...)
	}

	diags, err := analysis.AnalyzeProgram(analysis.NewProgram(pkgs), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type loc struct {
		file string
		line int
	}
	wants := map[loc][]*regexp.Regexp{}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", name, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
				}
				k := loc{name, i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	for _, d := range diags {
		k := loc{d.Position.Filename, d.Position.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched %q", k.file, k.line, re)
		}
	}
}
