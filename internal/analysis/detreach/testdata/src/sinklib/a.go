// Package sinklib is a non-deterministic, non-exempt helper package: the
// kind of utility code a deterministic package may innocently call into.
// Nothing here is flagged by detreach — the package is not in the
// deterministic set — but its functions taint callers across the package
// boundary.
package sinklib

import "time"

// Stamp reads the wallclock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Indirect reaches the wallclock one hop down.
func Indirect() int64 { return Stamp() }

// Audited reads the wallclock at a site audited for prngonly; the same
// annotation is a taint barrier for detreach, so callers stay clean.
func Audited() int64 {
	//parsivet:wallclock — audited harness timing, never feeds learned state (testdata)
	return time.Now().UnixNano()
}

// Pure is a clean helper.
func Pure(x int) int { return x * 2 }
