// Seeded detreach cases: a package named after a deterministic package
// whose exported entry points reach wallclock/PRNG/env sinks through
// helpers in another package.
package core

import (
	"os"

	"sinklib"
)

// Learn reaches time.Now three hops down, across the package boundary:
// Learn → helper → sinklib.Indirect → sinklib.Stamp → time.Now.
func Learn() int64 {
	return helper() // want "Learn reaches time.Now: core.Learn → core.helper → sinklib.Indirect → sinklib.Stamp → time.Now"
}

// helper is unexported: not an entry point itself, so the finding anchors
// at Learn's call above.
func helper() int64 { return sinklib.Indirect() }

// Env reaches the process environment directly.
func Env() string {
	return os.Getenv("HOME") // want "Env reaches os.Getenv"
}

// Closure leaks the taint through an escaping function value: the ref
// edge at the literal connects the entry point to the chain.
func Closure() func() int64 {
	return func() int64 { return sinklib.Stamp() } // want "Closure reaches time.Now"
}

// AuditedHop takes the tainted dependency at an audited call site: the
// suppression on the line above is the taint barrier.
func AuditedHop() int64 {
	//parsivet:detreach — audited: timing report only, never feeds learned state (testdata)
	return helper()
}

// AuditedSink calls the helper whose wallclock read carries the audited
// //parsivet:wallclock; the chain is broken at the sink, so the entry
// point is clean without its own annotation.
func AuditedSink() int64 { return sinklib.Audited() }

// Clean never reaches a sink.
func Clean(x int) int { return sinklib.Pure(x) + 1 }
