package detreach_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/detreach"
)

// TestDetReach proves the analyzer follows taint across package
// boundaries: exported entry points of a deterministic package reaching
// wallclock/env sinks through a helper package are flagged with the full
// call path, while audited hops (//parsivet:detreach on the call,
// //parsivet:wallclock at the sink) and pure chains stay silent. The
// sinklib package loads first so core can import it by bare name.
func TestDetReach(t *testing.T) {
	analysistest.RunPackages(t, detreach.Analyzer, "sinklib", "core")
}
