// Package detreach is the interprocedural generalization of prngonly: no
// function reachable from an exported entry point of the deterministic
// packages (analysis.DeterministicPackages) may transitively reach a
// wallclock, host-PRNG, or process-environment sink. prngonly catches the
// direct call — time.Now written inside a deterministic package — but a
// helper in any non-exempt package that reaches the sink two hops down
// forks the replicated MRG3 decision schedule exactly as silently.
// detreach walks the whole-program call graph backward from the sinks and
// reports, per entry point, the full offending call chain.
//
// Barriers: taint never propagates through the wallclock-exempt packages
// (obs, trace, bench — their timestamps never feed learned-network state),
// and an edge whose call site carries //parsivet:detreach or an audited
// //parsivet:wallclock stops the chain — the same convention prngonly
// already enforces at the sink.
//
// The diagnostic lands on the first call of the chain inside the entry
// point's own body, so the suppression sits where the deterministic
// package takes the tainted dependency.
package detreach

import (
	"parsimone/internal/analysis"
	"parsimone/internal/analysis/callgraph"
)

// Analyzer is the detreach check.
var Analyzer = &analysis.Analyzer{
	Name:       "detreach",
	Doc:        "flags deterministic entry points that transitively reach wallclock/PRNG/env sinks, with the full call path",
	Suppress:   "detreach",
	RunProgram: run,
}

// sinkFuncs are the host-nondeterminism entry points by fully qualified
// name.
var sinkFuncs = map[string]bool{
	"time.Now":     true,
	"time.Since":   true,
	"time.Until":   true,
	"os.Getenv":    true,
	"os.LookupEnv": true,
	"os.Environ":   true,
	"os.Hostname":  true,
	"os.Getpid":    true,
}

// sinkPkgs are the host-PRNG packages: any call into them is a sink.
var sinkPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func isSink(n *callgraph.Node) bool {
	if n.Func == nil {
		return false
	}
	if n.Pkg != nil && sinkPkgs[n.Pkg.Path()] {
		return true
	}
	return sinkFuncs[n.Func.FullName()]
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Of(pass.Program)
	r := g.Reach(callgraph.ReachOpts{
		Sink: isSink,
		SkipNode: func(n *callgraph.Node) bool {
			return n.Pkg != nil && analysis.WallclockExempt[n.Pkg.Name()]
		},
		SkipEdge: func(caller *callgraph.Node, e callgraph.Edge) bool {
			return pass.SuppressedAt(e.Site, "detreach") ||
				pass.SuppressedAt(e.Site, "wallclock")
		},
	})
	for _, n := range g.Nodes() {
		if n.Func == nil || !n.Func.Exported() || !analysis.IsDeterministic(n.Pkg) {
			continue
		}
		path := r.Path(n)
		if len(path) == 0 {
			continue
		}
		sink := path[len(path)-1].Callee
		pass.Reportf(path[0].Site,
			"deterministic entry point %s reaches %s: %s; a wallclock/PRNG/env read forks the replicated decision schedule — break the chain or annotate the audited hop //parsivet:detreach",
			n.Name, sink.Name, r.PathString(n))
	}
	return nil
}
