// Seeded commsym cases against the real internal/comm package.
package driver

import "parsimone/internal/comm"

func guardedCollective(c *comm.Comm) {
	if c.Rank() == 0 {
		comm.Barrier(c) // want "rank-dependent conditional"
	}
}

func guardedElseBranch(c *comm.Comm, v int) int {
	if c.Rank() != 0 {
		return v
	} else {
		return comm.AllReduce(c, v, func(a, b int) int { return a + b }) // want "rank-dependent conditional"
	}
}

func rankVariableSwitch(c *comm.Comm) {
	rank := c.Rank()
	switch rank {
	case 0:
		comm.Barrier(c) // want "rank-dependent conditional"
	}
}

func symmetricCollectives(c *comm.Comm, v int) int {
	comm.Barrier(c)
	return comm.Bcast(c, 0, v)
}

func pointToPointIsFine(c *comm.Comm, v int) int {
	if c.Rank() == 0 {
		comm.Send(c, 1, v)
		return v
	}
	return comm.Recv[int](c, 0)
}

func audited(c *comm.Comm) {
	if c.Rank() == 0 {
		//parsivet:commsym — audited: sub-communicator of size 1 (testdata)
		comm.Barrier(c)
	}
}

func droppedRun(p int) {
	comm.Run(p, func(c *comm.Comm) error { return nil }) // want "dropped"
}

func handledRun(p int) error {
	_, err := comm.Run(p, func(c *comm.Comm) error { return nil })
	return err
}

func saveCheckpoint(dir string) error {
	_ = dir
	return nil
}

func droppedCheckpoint() {
	saveCheckpoint("state") // want "dropped"
}

func handledCheckpoint() error {
	return saveCheckpoint("state")
}
