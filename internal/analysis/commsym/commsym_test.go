package commsym_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/commsym"
)

// TestCommSym proves the analyzer flags seeded rank-guarded collectives and
// dropped comm/checkpoint errors against the real internal/comm package,
// and accepts symmetric collectives, rank-guarded point-to-point traffic,
// handled errors, and //parsivet:commsym.
func TestCommSym(t *testing.T) { analysistest.Run(t, commsym.Analyzer, "driver") }
