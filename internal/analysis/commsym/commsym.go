// Package commsym enforces the symmetry contract of the comm collectives:
// every rank of a communicator must reach every collective call the same
// number of times, in the same order. A collective lexically guarded by a
// rank-dependent conditional is the canonical deadlock shape — the guarded
// ranks block in the collective while the rest never arrive — which the
// per-rank op counter of the fault layer can only detect at runtime, after
// the hang. Point-to-point Send/Recv are exempt: root-sends/leaf-receives
// are naturally rank-conditional. The package also flags comm run-loop and
// checkpoint/progress-manifest calls whose error result is silently
// dropped, since a swallowed checkpoint error turns a recoverable crash
// into a corrupt resume. Audited asymmetries carry //parsivet:commsym.
//
// commsym is per-package and lexical: it sees a collective only where the
// call appears. Its interprocedural generalization — a rank-guarded call
// to a function that reaches a collective further down the chain — is
// commreach, which reuses the guard detection exported here.
package commsym

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"parsimone/internal/analysis"
	"parsimone/internal/analysis/callgraph"
)

// Analyzer is the commsym check.
var Analyzer = &analysis.Analyzer{
	Name:     "commsym",
	Doc:      "flags comm collectives under rank-dependent conditionals and dropped comm/checkpoint errors",
	Suppress: "commsym",
	Run:      run,
}

// collectives are the comm entry points every rank must reach in lockstep.
var collectives = map[string]bool{
	"Bcast":          true,
	"Gather":         true,
	"AllGather":      true,
	"AllGatherv":     true,
	"Reduce":         true,
	"AllReduce":      true,
	"AllReduceSlice": true,
	"ExScan":         true,
	"Barrier":        true,
	"Split":          true,
}

// CheckpointName matches the durable-state helpers whose errors must not
// be dropped.
var CheckpointName = regexp.MustCompile(`(?i)checkpoint|progress|manifest`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		guarded := RankGuarded(pass.TypesInfo, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := callgraph.StaticCallee(pass.TypesInfo, n)
				if fn == nil || !IsCollective(fn) {
					return true
				}
				for _, g := range guarded {
					if g.Pos() <= n.Pos() && n.End() <= g.End() {
						pass.Reportf(n.Pos(),
							"comm.%s under a rank-dependent conditional: collectives must be reached by every rank or they deadlock; restructure or annotate //parsivet:commsym",
							fn.Name())
						break
					}
				}
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callgraph.StaticCallee(pass.TypesInfo, call)
				if fn == nil || !returnsError(fn) {
					return true
				}
				if FromComm(fn) || CheckpointName.MatchString(fn.Name()) {
					pass.Reportf(n.Pos(),
						"result of %s dropped: comm/checkpoint errors decide abort propagation and resume safety; handle the error or annotate //parsivet:commsym",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// IsCollective reports whether fn is one of the comm collectives every
// rank must reach in lockstep.
func IsCollective(fn *types.Func) bool {
	return fn != nil && collectives[fn.Name()] && FromComm(fn)
}

// FromComm reports whether fn is declared in the comm package.
func FromComm(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "comm" || strings.HasSuffix(pkg.Path(), "/comm")
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// RankGuarded collects the body extents of every rank-dependent if/switch
// in f: the regions where a collective — or, interprocedurally, a call
// that reaches one — is only executed by some ranks.
func RankGuarded(info *types.Info, f *ast.File) []ast.Node {
	var guarded []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if rankDependent(info, n.Cond) {
				guarded = append(guarded, n.Body)
				if n.Else != nil {
					guarded = append(guarded, n.Else)
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && rankDependent(info, n.Tag) {
				guarded = append(guarded, n.Body)
			}
		}
		return true
	})
	return guarded
}

// rankDependent reports whether cond's value depends on the caller's rank:
// it calls (*comm.Comm).Rank or reads an identifier named like "rank".
func rankDependent(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok &&
				fn.Name() == "Rank" && FromComm(fn) {
				found = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "rank") {
				found = true
			}
		}
		return !found
	})
	return found
}
