// Seeded errsink cases: carriers that propagate wire/comm/checkpoint
// errors up one or two levels before a caller discards them, plus the
// direct shapes that stay commsym's finding.
package store

import (
	"parsimone/internal/comm"
	"parsimone/internal/wire"
)

// load is a one-hop carrier: it returns wire.DecodeFile's error.
func load(data []byte) error {
	_, _, err := wire.DecodeFile(data)
	return err
}

// restore is a two-hop carrier: restore → load → wire.DecodeFile.
func restore(data []byte) error { return load(data) }

func dropStatement(data []byte) {
	load(data) // want "error from store.load discarded: it propagates comm/wire/checkpoint failures \\(store.load → wire.DecodeFile\\)"
}

func dropBlank(data []byte) {
	_ = restore(data) // want "error from store.restore discarded: it propagates comm/wire/checkpoint failures \\(store.restore → store.load → wire.DecodeFile\\)"
}

func dropDefer(data []byte) {
	defer load(data) // want "error from store.load discarded"
}

func dropGo(data []byte) {
	go restore(data) // want "error from store.restore discarded"
}

// dropDirectWire discards a wire origin in statement position: wire is
// not in commsym's comm/checkpoint set, so the site is errsink's.
func dropDirectWire(data []byte) {
	wire.DecodeFile(data) // want "error from wire.DecodeFile discarded"
}

// dropRunBlank blanks the error position of a direct comm origin — an
// assignment, not a bare statement, so it is errsink's, not commsym's.
func dropRunBlank() {
	_, _ = comm.Run(1, func(c *comm.Comm) error { return nil }) // want "error from comm.Run discarded"
}

// readProgress names durable state: its error result is an origin by
// name even though it calls no I/O here.
func readProgress() error { return nil }

// dropProgressStatement is commsym's finding (direct checkpoint-named
// drop in statement position): errsink must stay silent here.
func dropProgressStatement() {
	readProgress()
}

func dropProgressBlank() {
	_ = readProgress() // want "error from store.readProgress discarded"
}

// handled consumes the carrier's error: clean.
func handled(data []byte) error {
	if err := restore(data); err != nil {
		return err
	}
	return nil
}

// swallow handles the error internally and returns none, ending the
// chain: discarding swallow's (absent) result can never lose the wire
// failure, and callers dropping swallow stay clean.
func swallow(data []byte) {
	if err := load(data); err != nil {
		panic(err)
	}
}

func callsSwallow(data []byte) {
	swallow(data)
}

// audited carries the justification on the line above the discard.
func audited(data []byte) {
	//parsivet:errsink — audited: best-effort cache warm, failure re-read on demand (testdata)
	_ = restore(data)
}

// pair keeps the error in a named variable and returns it: clean.
func pair(data []byte) error {
	err := load(data)
	return err
}
