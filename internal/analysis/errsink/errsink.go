// Package errsink tracks comm/wire/checkpoint errors along interprocedural
// propagation chains and flags the site where one is discarded. commsym
// already catches the direct shape — a bare statement dropping the error
// of a comm run-loop or checkpoint helper — but once the error has been
// propagated up one level (a loader that returns wire.DecodeFile's error,
// a resume path that returns the checkpoint reader's), the per-package
// view no longer knows the discarded error decides resume safety.
//
// A function is an error origin if it is declared in comm or wire, or its
// name names durable state (checkpoint/progress/manifest), and its last
// result is error. A function is a carrier if its last result is error and
// it reaches an origin through a chain of error-returning functions — the
// only chains an error value can actually travel. Discarding a carrier's
// error — a bare call statement, defer, go, or a blank identifier in the
// error position of an assignment — is reported with the propagation
// chain. Direct comm/checkpoint drops in statement position stay commsym's
// finding, so no site is reported twice.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"parsimone/internal/analysis"
	"parsimone/internal/analysis/callgraph"
	"parsimone/internal/analysis/commsym"
)

// Analyzer is the errsink check.
var Analyzer = &analysis.Analyzer{
	Name:       "errsink",
	Doc:        "flags discarded errors that interprocedurally originate from comm/wire/checkpoint I/O",
	Suppress:   "errsink",
	RunProgram: run,
}

// fromWire reports whether fn is declared in the wire package.
func fromWire(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "wire" || strings.HasSuffix(pkg.Path(), "/wire")
}

// sigReturnsError reports whether sig's last result is error.
func sigReturnsError(sig *types.Signature) bool {
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// isOrigin reports whether n's error result is born in comm/wire/
// checkpoint I/O.
func isOrigin(n *callgraph.Node) bool {
	if n.Func == nil || !sigReturnsError(n.Sig) {
		return false
	}
	return commsym.FromComm(n.Func) || fromWire(n.Func) ||
		commsym.CheckpointName.MatchString(n.Func.Name())
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Of(pass.Program)
	carrier := g.Reach(callgraph.ReachOpts{
		Sink: isOrigin,
		// An error can only travel up a chain of error-returning
		// functions; a function that handles (or panics on) the error
		// internally ends the chain.
		SkipNode: func(n *callgraph.Node) bool { return !sigReturnsError(n.Sig) },
		SkipEdge: func(caller *callgraph.Node, e callgraph.Edge) bool {
			return pass.SuppressedAt(e.Site, "errsink")
		},
		// Referencing a function value does not propagate its error —
		// wherever the value is called does.
		SkipRefs: true,
	})
	// flagged resolves a call to its callee node when discarding that
	// callee's error loses a comm/wire/checkpoint failure.
	flagged := func(info *types.Info, call *ast.CallExpr, direct bool) *callgraph.Node {
		fn := callgraph.StaticCallee(info, call)
		n := g.NodeOf(fn)
		if n == nil || !sigReturnsError(n.Sig) {
			return nil
		}
		if carrier.IsSink(n) {
			// Direct origins in bare-statement position are commsym's
			// finding for comm/checkpoint names; wire and the non-statement
			// discard shapes are ours.
			if direct && (commsym.FromComm(fn) || commsym.CheckpointName.MatchString(fn.Name())) {
				return nil
			}
			return n
		}
		if carrier.Reaches(n) {
			return n
		}
		return nil
	}
	report := func(pos ast.Node, n *callgraph.Node) {
		chain := n.Name
		if !carrier.IsSink(n) {
			chain = carrier.PathString(n)
		}
		pass.Reportf(pos.Pos(),
			"error from %s discarded: it propagates comm/wire/checkpoint failures (%s) that decide abort and resume safety; handle it or annotate //parsivet:errsink",
			n.Name, chain)
	}
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.ExprStmt:
					if call, ok := x.X.(*ast.CallExpr); ok {
						if n := flagged(pkg.Info, call, true); n != nil {
							report(x, n)
						}
					}
				case *ast.DeferStmt:
					if n := flagged(pkg.Info, x.Call, false); n != nil {
						report(x, n)
					}
				case *ast.GoStmt:
					if n := flagged(pkg.Info, x.Call, false); n != nil {
						report(x, n)
					}
				case *ast.AssignStmt:
					for i, rhs := range x.Rhs {
						call, ok := ast.Unparen(rhs).(*ast.CallExpr)
						if !ok {
							continue
						}
						n := flagged(pkg.Info, call, false)
						if n == nil {
							continue
						}
						// Single call expanding to all LHS positions, or a
						// parallel assignment pairing Lhs[i] with Rhs[i].
						lhs := x.Lhs
						if len(x.Rhs) > 1 {
							if i >= len(lhs) {
								continue
							}
							lhs = lhs[i : i+1]
						}
						// The error is the last result; with a parallel
						// assignment the single LHS holds it directly.
						errPos := len(lhs) - 1
						if len(x.Rhs) == 1 && len(lhs) != n.Sig.Results().Len() {
							continue
						}
						if id, ok := lhs[errPos].(*ast.Ident); ok && id.Name == "_" {
							report(x, n)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}
