package errsink_test

import (
	"testing"

	"parsimone/internal/analysis/analysistest"
	"parsimone/internal/analysis/errsink"
)

// TestErrSink proves the analyzer tracks comm/wire/checkpoint errors
// along interprocedural carrier chains: discarding a carrier's error one
// or two hops above the origin is flagged with the propagation chain,
// while handled errors, internally-swallowed chains, commsym's direct
// statement drops, and audited sites stay silent. The testdata imports
// the real parsimone/internal/wire and comm packages.
func TestErrSink(t *testing.T) {
	analysistest.RunPackages(t, errsink.Analyzer, "store")
}
