// Package analysis is a minimal, dependency-free analog of the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// parsivet suite (cmd/parsivet). It exists because the reproduction's
// central invariant — every (p, W) configuration makes identical
// score-weighted random choices, so the learned network is bit-identical to
// the sequential baseline — is threatened by bug classes that are visible
// at compile time: map-iteration order in deterministic code, stray
// wallclock/PRNG reads in decision paths, raw float equality, rank-skewed
// collective calls, and ad-hoc goroutines outside the p×W worker-pool
// model. The dynamic guards (TestPInvariance, the crash-at-every-failpoint
// acceptance suite) catch these after the fact; the analyzers here catch
// them before any test runs.
//
// The framework mirrors the x/tools surface (Analyzer, Pass, Diagnostic, a
// driver, an analysistest-style harness) but is built only on the standard
// library's go/ast, go/parser, and go/types, loading packages through `go
// list` — no module downloads, no network, build-cache-friendly.
//
// # Suppression convention
//
// Every analyzer has a suppression keyword. A finding is silenced by a
// `//parsivet:<keyword>` comment on the flagged line or on the line
// directly above it; the rest of the comment line should say why the site
// is safe, e.g.
//
//	//parsivet:ordered — keys are collected and sorted two lines down
//	for k := range m { ... }
//
// The keywords are "ordered" (maporder), "wallclock" (prngonly), "floateq"
// (floateq), "commsym" (commsym), and "seqcount" (seqcount).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is a one-paragraph description shown by `parsivet -help`.
	Doc string
	// Suppress is the //parsivet:<keyword> that silences a finding of
	// this analyzer on the flagged line or the line above it.
	Suppress string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	report    func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Suppress: p.Analyzer.Suppress,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding with its resolved file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Suppress string         `json:"-"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// DeterministicPackages names the packages whose code feeds the
// bit-identity invariant: every value they compute must be a pure function
// of (data, seed, options), independent of p, W, scheduling, and map order.
// Matching is by package name: the testdata packages of the analyzer tests
// reuse these names to trigger the checks.
var DeterministicPackages = map[string]bool{
	"core":       true,
	"ganesh":     true,
	"splits":     true,
	"consensus":  true,
	"score":      true,
	"tree":       true,
	"module":     true,
	"result":     true,
	"cluster":    true,
	"ltbaseline": true,
	"genomica":   true,
	"wire":       true,
}

// WallclockExempt names the packages allowed to read the wallclock and
// host PRNGs: observability, tracing, and the benchmark harness, none of
// which feed learned-network state.
var WallclockExempt = map[string]bool{
	"obs":   true,
	"trace": true,
	"bench": true,
}

// IsDeterministic reports whether pkg is one of the bit-identity packages.
func IsDeterministic(pkg *types.Package) bool {
	return pkg != nil && DeterministicPackages[pkg.Name()]
}

// suppressions maps line numbers of one file to the parsivet keywords
// present on that line.
type suppressions map[int][]string

// suppressionIndex records, per file, the //parsivet:<keyword> comments.
type suppressionIndex map[string]suppressions

func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kw, ok := parseSuppression(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = suppressions{}
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], kw)
			}
		}
	}
	return idx
}

// parseSuppression extracts the keyword of a //parsivet:<keyword> comment.
func parseSuppression(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//parsivet:")
	if !ok {
		return "", false
	}
	kw := rest
	if i := strings.IndexFunc(rest, func(r rune) bool {
		return !('a' <= r && r <= 'z')
	}); i >= 0 {
		kw = rest[:i]
	}
	return kw, kw != ""
}

// suppressed reports whether d is silenced by a matching //parsivet
// comment on its line or the line above.
func (idx suppressionIndex) suppressed(d Diagnostic) bool {
	m := idx[d.Position.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		for _, kw := range m[line] {
			if kw == d.Suppress {
				return true
			}
		}
	}
	return false
}
