// Package analysis is a minimal, dependency-free analog of the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// parsivet suite (cmd/parsivet). It exists because the reproduction's
// central invariant — every (p, W) configuration makes identical
// score-weighted random choices, so the learned network is bit-identical to
// the sequential baseline — is threatened by bug classes that are visible
// at compile time: map-iteration order in deterministic code, stray
// wallclock/PRNG reads in decision paths, raw float equality, rank-skewed
// collective calls, and ad-hoc goroutines outside the p×W worker-pool
// model. The dynamic guards (TestPInvariance, the crash-at-every-failpoint
// acceptance suite) catch these after the fact; the analyzers here catch
// them before any test runs.
//
// The framework mirrors the x/tools surface (Analyzer, Pass, Diagnostic, a
// driver, an analysistest-style harness) but is built only on the standard
// library's go/ast, go/parser, and go/types, loading packages through `go
// list` — no module downloads, no network, build-cache-friendly.
//
// # Suppression convention
//
// Every analyzer has a suppression keyword. A finding is silenced by a
// `//parsivet:<keyword>` comment on the flagged line or on the line
// directly above it; the rest of the comment line should say why the site
// is safe, e.g.
//
//	//parsivet:ordered — keys are collected and sorted two lines down
//	for k := range m { ... }
//
// A site flagged by more than one analyzer carries the keywords
// comma-separated in a single comment: //parsivet:commsym,errsink — why.
// The keywords are "ordered" (maporder), "wallclock" (prngonly), "floateq"
// (floateq), "commsym" (commsym), "seqcount" (seqcount), "scorekernel"
// (scorekernel), and — for the interprocedural analyzers layered on the
// callgraph subpackage — "detreach", "commreach", and "errsink".
//
// Suppressions are tracked: the strict driver mode (`parsivet
// -strict-suppressions`, wired into `make lint`) reports any //parsivet:
// comment that no longer silences a finding and any keyword no analyzer
// owns, so audited sites cannot silently outlive the hazard they audit.
//
// # Per-package and whole-program analyzers
//
// An Analyzer provides Run (one package at a time, syntactic) or
// RunProgram (all packages at once, for the interprocedural checks that
// follow call chains across package boundaries). The driver runs the
// per-package analyzers over every package, then each whole-program
// analyzer once over the full Program.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is a one-paragraph description shown by `parsivet -help`.
	Doc string
	// Suppress is the //parsivet:<keyword> that silences a finding of
	// this analyzer on the flagged line or the line above it.
	Suppress string
	// Run inspects one package and reports findings through the pass.
	// Nil for whole-program analyzers.
	Run func(*Pass) error
	// RunProgram inspects all packages at once, for interprocedural
	// checks. Nil for per-package analyzers.
	RunProgram func(*ProgramPass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	report    func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Suppress: p.Analyzer.Suppress,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding with its resolved file position.
type Diagnostic struct {
	Analyzer string
	Suppress string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// MarshalJSON renders the finding in the `parsivet -json` schema: the
// position is flattened into file/line/column fields so CI and editors can
// jump to the site, and the suppression keyword is included so tooling can
// propose the annotation. The schema is documented in cmd/parsivet.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Suppress string `json:"suppress,omitempty"`
		Message  string `json:"message"`
	}{
		File:     d.Position.Filename,
		Line:     d.Position.Line,
		Column:   d.Position.Column,
		Analyzer: d.Analyzer,
		Suppress: d.Suppress,
		Message:  d.Message,
	})
}

// DeterministicPackages names the packages whose code feeds the
// bit-identity invariant: every value they compute must be a pure function
// of (data, seed, options), independent of p, W, scheduling, and map order.
// Matching is by package name: the testdata packages of the analyzer tests
// reuse these names to trigger the checks.
var DeterministicPackages = map[string]bool{
	"core":       true,
	"ganesh":     true,
	"splits":     true,
	"consensus":  true,
	"score":      true,
	"tree":       true,
	"module":     true,
	"result":     true,
	"cluster":    true,
	"ltbaseline": true,
	"genomica":   true,
	"wire":       true,
}

// WallclockExempt names the packages allowed to read the wallclock and
// host PRNGs: observability, tracing, and the benchmark harness, none of
// which feed learned-network state.
var WallclockExempt = map[string]bool{
	"obs":   true,
	"trace": true,
	"bench": true,
}

// IsDeterministic reports whether pkg is one of the bit-identity packages.
func IsDeterministic(pkg *types.Package) bool {
	return pkg != nil && DeterministicPackages[pkg.Name()]
}

// Program is the whole-program view the interprocedural analyzers run on:
// every package under analysis, loaded through one loader so type
// identities are shared across package boundaries.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	memo map[string]any
}

// NewProgram groups already-loaded packages into one program. All packages
// must share one loader (and hence one file set).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Packages: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	return p
}

// Memo returns the value cached under key, building and caching it on
// first use. The call graph is built once per run this way and shared by
// every interprocedural analyzer. Not safe for concurrent use; the driver
// runs analyzers sequentially.
func (p *Program) Memo(key string, build func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	if p.memo == nil {
		p.memo = map[string]any{}
	}
	v := build()
	p.memo[key] = v
	return v
}

// ProgramPass carries one whole-program analyzer's view of the program.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program
	report   func(Diagnostic)
	supp     *suppTracker
}

// Reportf records one finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Suppress: p.Analyzer.Suppress,
		Position: p.Program.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether pos carries a //parsivet:<kw> comment on
// its line or the line above. The interprocedural analyzers use it to
// treat audited sites as taint barriers; a consulted suppression counts as
// used for -strict-suppressions.
func (p *ProgramPass) SuppressedAt(pos token.Pos, kw string) bool {
	position := p.Program.Fset.Position(pos)
	return p.supp.match(position.Filename, position.Line, kw)
}

// suppEntry is one keyword of one //parsivet: comment.
type suppEntry struct {
	kw   string
	pos  token.Position
	used bool
}

// suppTracker indexes every //parsivet: comment of a program and records
// which entries actually silenced — or were consulted as a taint barrier
// by — a finding. Entries still unused after a run are the stale
// suppressions -strict-suppressions reports.
type suppTracker struct {
	byLine map[string]map[int][]*suppEntry
	all    []*suppEntry // source order
}

func newSuppTracker(fset *token.FileSet, files []*ast.File) *suppTracker {
	t := &suppTracker{byLine: map[string]map[int][]*suppEntry{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, kw := range parseSuppressions(c.Text) {
					e := &suppEntry{kw: kw, pos: pos}
					m := t.byLine[pos.Filename]
					if m == nil {
						m = map[int][]*suppEntry{}
						t.byLine[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], e)
					t.all = append(t.all, e)
				}
			}
		}
	}
	return t
}

// parseSuppressions extracts the keywords of a //parsivet:<kw>[,<kw>...]
// comment. Keywords are lower-case words; the justification text begins at
// the first rune that is neither a keyword letter nor a separating comma.
func parseSuppressions(text string) []string {
	rest, ok := strings.CutPrefix(text, "//parsivet:")
	if !ok {
		return nil
	}
	var kws []string
	for {
		i := strings.IndexFunc(rest, func(r rune) bool {
			return !('a' <= r && r <= 'z')
		})
		kw := rest
		if i >= 0 {
			kw = rest[:i]
		}
		if kw == "" {
			break
		}
		kws = append(kws, kw)
		if i < 0 || rest[i] != ',' {
			break
		}
		rest = rest[i+1:]
	}
	return kws
}

// match reports whether a kw suppression sits on line or the line above in
// file, marking every matching entry used.
func (t *suppTracker) match(file string, line int, kw string) bool {
	m := t.byLine[file]
	if m == nil {
		return false
	}
	found := false
	for _, l := range []int{line, line - 1} {
		for _, e := range m[l] {
			if e.kw == kw {
				e.used = true
				found = true
			}
		}
	}
	return found
}

// suppressed reports whether d is silenced by a matching //parsivet
// comment on its line or the line above.
func (t *suppTracker) suppressed(d Diagnostic) bool {
	if d.Suppress == "" {
		return false
	}
	return t.match(d.Position.Filename, d.Position.Line, d.Suppress)
}

// stale returns one diagnostic per suppression entry that no analyzer of
// the run used — the comment outlived the finding it once silenced — and
// per keyword no analyzer of the run owns. The returned diagnostics carry
// no Suppress keyword: a stale suppression is fixed by deleting it, not by
// suppressing the report.
func (t *suppTracker) stale(analyzers []*Analyzer) []Diagnostic {
	owned := map[string]bool{}
	for _, a := range analyzers {
		if a.Suppress != "" {
			owned[a.Suppress] = true
		}
	}
	var diags []Diagnostic
	for _, e := range t.all {
		switch {
		case !owned[e.kw]:
			diags = append(diags, Diagnostic{
				Analyzer: "suppressions",
				Position: e.pos,
				Message: fmt.Sprintf("unknown suppression keyword %q: no analyzer in this run owns it; fix the keyword or delete the comment",
					e.kw),
			})
		case !e.used:
			diags = append(diags, Diagnostic{
				Analyzer: "suppressions",
				Position: e.pos,
				Message: fmt.Sprintf("stale suppression //parsivet:%s: it silences no finding on this line or the line below; delete the comment",
					e.kw),
			})
		}
	}
	return diags
}
