package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"reflect"
	"strings"
	"testing"
)

func TestParseSuppressions(t *testing.T) {
	cases := []struct {
		text string
		kws  []string
	}{
		{"//parsivet:ordered", []string{"ordered"}},
		{"//parsivet:ordered — keys sorted below", []string{"ordered"}},
		{"//parsivet:wallclock harness timing", []string{"wallclock"}},
		{"//parsivet:commsym,errsink — audited drop", []string{"commsym", "errsink"}},
		{"//parsivet:commsym,errsink,detreach why", []string{"commsym", "errsink", "detreach"}},
		{"//parsivet:commsym, errsink — space breaks the list", []string{"commsym"}},
		{"// parsivet:ordered", nil}, // space breaks the marker, like //go: directives
		{"//parsivet:", nil},
		{"//parsivet:,ordered", nil}, // the list must open with a keyword
		{"// plain comment", nil},
		{"//parsivet:ORDERED", nil}, // keywords are lower-case
	}
	for _, c := range cases {
		if kws := parseSuppressions(c.text); !reflect.DeepEqual(kws, c.kws) {
			t.Errorf("parseSuppressions(%q) = %v; want %v", c.text, kws, c.kws)
		}
	}
}

func trackerFor(t *testing.T, src string) *suppTracker {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return newSuppTracker(fset, []*ast.File{f})
}

func TestSuppressionTracker(t *testing.T) {
	src := `package p

func f(m map[int]int) {
	//parsivet:ordered — above the site
	for range m {
	}
	_ = m //parsivet:floateq trailing
}
`
	idx := trackerFor(t, src)
	at := func(line int, kw string) Diagnostic {
		return Diagnostic{Suppress: kw, Position: token.Position{Filename: "p.go", Line: line}}
	}
	if !idx.suppressed(at(5, "ordered")) {
		t.Error("line 5 should be suppressed by the comment on line 4")
	}
	if !idx.suppressed(at(4, "ordered")) {
		t.Error("line 4 carries the comment itself")
	}
	if idx.suppressed(at(5, "floateq")) {
		t.Error("keyword must match the analyzer")
	}
	if !idx.suppressed(at(7, "floateq")) {
		t.Error("trailing comment on line 7 should suppress")
	}
	if idx.suppressed(at(6, "ordered")) {
		t.Error("suppression must not leak two lines down")
	}
}

// TestSuppressionMultiLineStatement pins the line-above convention for a
// flagged statement that spans several lines: the diagnostic anchors at the
// statement's first line, so the comment above that line silences it —
// and lines further into the statement do not.
func TestSuppressionMultiLineStatement(t *testing.T) {
	src := `package p

func g() error { return nil }

func f() {
	//parsivet:errsink — audited: probe only
	_ = g(
	)
}
`
	idx := trackerFor(t, src)
	d := Diagnostic{Suppress: "errsink", Position: token.Position{Filename: "p.go", Line: 7}}
	if !idx.suppressed(d) {
		t.Error("statement starting on line 7 should be suppressed by the comment on line 6")
	}
	d.Position.Line = 8
	if idx.suppressed(d) {
		t.Error("an anchor on the statement's continuation line must not match")
	}
}

// TestSuppressionMultipleKeywords pins the comma convention: one comment
// silences findings of several analyzers on the same line.
func TestSuppressionMultipleKeywords(t *testing.T) {
	src := `package p

func f() {
	//parsivet:commsym,errsink — one audited site, two analyzers
	work()
}

func work() {}
`
	idx := trackerFor(t, src)
	for _, kw := range []string{"commsym", "errsink"} {
		d := Diagnostic{Suppress: kw, Position: token.Position{Filename: "p.go", Line: 5}}
		if !idx.suppressed(d) {
			t.Errorf("keyword %q of the comma list should suppress", kw)
		}
	}
	d := Diagnostic{Suppress: "detreach", Position: token.Position{Filename: "p.go", Line: 5}}
	if idx.suppressed(d) {
		t.Error("a keyword outside the comma list must not suppress")
	}
}

// TestStaleSuppressions pins the -strict-suppressions contract: an entry
// that silenced a finding is live, one that silenced nothing is stale, and
// a keyword no analyzer owns is unknown.
func TestStaleSuppressions(t *testing.T) {
	src := `package p

func f() {
	//parsivet:ordered — live below
	work()
	//parsivet:ordered — stale, silences nothing
	rest()
	//parsivet:wallclok typo keyword
	other()
}

func work() {}
func rest() {}
func other() {}
`
	idx := trackerFor(t, src)
	// The finding on line 5 is silenced by the line-4 entry.
	if !idx.suppressed(Diagnostic{Suppress: "ordered", Position: token.Position{Filename: "p.go", Line: 5}}) {
		t.Fatal("line 5 should be suppressed")
	}
	analyzers := []*Analyzer{
		{Name: "maporder", Suppress: "ordered"},
		{Name: "prngonly", Suppress: "wallclock"},
	}
	stale := idx.stale(analyzers)
	if len(stale) != 2 {
		t.Fatalf("got %d stale findings, want 2: %v", len(stale), stale)
	}
	if stale[0].Position.Line != 6 || !strings.Contains(stale[0].Message, "stale suppression //parsivet:ordered") {
		t.Errorf("unexpected stale finding: %s", stale[0])
	}
	if stale[1].Position.Line != 8 || !strings.Contains(stale[1].Message, `unknown suppression keyword "wallclok"`) {
		t.Errorf("unexpected unknown-keyword finding: %s", stale[1])
	}
	for _, d := range stale {
		if d.Suppress != "" {
			t.Errorf("stale findings must not be suppressible: %s", d)
		}
	}
}

func TestWriteJSONAndText(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "maporder",
			Suppress: "ordered",
			Position: token.Position{Filename: "x.go", Line: 3, Column: 2},
			Message:  "range over map",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("unexpected JSON payload: %s", buf.String())
	}
	want := map[string]any{
		"file": "x.go", "line": float64(3), "column": float64(2),
		"analyzer": "maporder", "suppress": "ordered", "message": "range over map",
	}
	if !reflect.DeepEqual(decoded[0], want) {
		t.Errorf("JSON schema mismatch:\n got %v\nwant %v", decoded[0], want)
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings must encode as [], got %q", buf.String())
	}

	buf.Reset()
	if err := WriteText(&buf, diags); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x.go:3:2: [maporder] range over map\n" {
		t.Errorf("unexpected text rendering %q", got)
	}
}

// TestLoaderLoadsModulePackage exercises the go list + go/types pipeline on
// a real in-module package.
func TestLoaderLoadsModulePackage(t *testing.T) {
	pkgs, err := NewLoader().Load("parsimone/internal/prng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types.Name() != "prng" || len(p.Files) == 0 || len(p.Info.Defs) == 0 {
		t.Errorf("package not fully loaded: name=%q files=%d defs=%d",
			p.Types.Name(), len(p.Files), len(p.Info.Defs))
	}
}

// TestTestdataInvisibleToDriver pins why //parsivet: comments inside the
// analyzers' testdata packages can never go stale under the driver's
// -strict-suppressions: `go list ./...` — the driver's package
// enumeration — skips testdata directories entirely, so the audited
// fixtures there are only ever loaded by the analysistest harness.
func TestTestdataInvisibleToDriver(t *testing.T) {
	out, err := exec.Command("go", "list", "./...").Output()
	if err != nil {
		t.Fatalf("go list ./...: %v", err)
	}
	for _, path := range strings.Fields(string(out)) {
		if strings.Contains(path, "testdata") {
			t.Errorf("go list ./... must not surface testdata packages, got %s", path)
		}
	}
}
