package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text string
		kw   string
		ok   bool
	}{
		{"//parsivet:ordered", "ordered", true},
		{"//parsivet:ordered — keys sorted below", "ordered", true},
		{"//parsivet:wallclock harness timing", "wallclock", true},
		{"// parsivet:ordered", "", false}, // space breaks the marker, like //go: directives
		{"//parsivet:", "", false},
		{"// plain comment", "", false},
		{"//parsivet:ORDERED", "", false}, // keywords are lower-case
	}
	for _, c := range cases {
		kw, ok := parseSuppression(c.text)
		if ok != c.ok || kw != c.kw {
			t.Errorf("parseSuppression(%q) = %q, %v; want %q, %v", c.text, kw, ok, c.kw, c.ok)
		}
	}
}

func TestSuppressionIndex(t *testing.T) {
	src := `package p

func f(m map[int]int) {
	//parsivet:ordered — above the site
	for range m {
	}
	_ = m //parsivet:floateq trailing
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildSuppressionIndex(fset, []*ast.File{f})
	at := func(line int, kw string) Diagnostic {
		return Diagnostic{Suppress: kw, Position: token.Position{Filename: "p.go", Line: line}}
	}
	if !idx.suppressed(at(5, "ordered")) {
		t.Error("line 5 should be suppressed by the comment on line 4")
	}
	if !idx.suppressed(at(4, "ordered")) {
		t.Error("line 4 carries the comment itself")
	}
	if idx.suppressed(at(5, "floateq")) {
		t.Error("keyword must match the analyzer")
	}
	if !idx.suppressed(at(7, "floateq")) {
		t.Error("trailing comment on line 7 should suppress")
	}
	if idx.suppressed(at(6, "ordered")) {
		t.Error("suppression must not leak two lines down")
	}
}

func TestWriteJSONAndText(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "maporder",
			Position: token.Position{Filename: "x.go", Line: 3, Column: 2},
			Message:  "range over map",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 || decoded[0]["analyzer"] != "maporder" || decoded[0]["line"] != float64(3) {
		t.Errorf("unexpected JSON payload: %s", buf.String())
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings must encode as [], got %q", buf.String())
	}

	buf.Reset()
	if err := WriteText(&buf, diags); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x.go:3:2: [maporder] range over map\n" {
		t.Errorf("unexpected text rendering %q", got)
	}
}

// TestLoaderLoadsModulePackage exercises the go list + go/types pipeline on
// a real in-module package.
func TestLoaderLoadsModulePackage(t *testing.T) {
	pkgs, err := NewLoader().Load("parsimone/internal/prng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types.Name() != "prng" || len(p.Files) == 0 || len(p.Info.Defs) == 0 {
		t.Errorf("package not fully loaded: name=%q files=%d defs=%d",
			p.Types.Name(), len(p.Files), len(p.Info.Defs))
	}
}
