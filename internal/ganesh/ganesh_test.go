package ganesh

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"parsimone/internal/cluster"
	"parsimone/internal/comm"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/synth"
	"parsimone/internal/trace"
)

func testData(t testing.TB, n, m int, seed uint64) *score.QData {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{N: n, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	return score.QuantizeData(d)
}

func TestRunProducesValidClustering(t *testing.T) {
	q := testData(t, 30, 20, 1)
	cc := Run(q, score.DefaultPrior(), Params{Updates: 2}, prng.New(7), nil)
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, vc := range cc.Clusters {
		covered += len(vc.Vars)
	}
	if covered != 30 {
		t.Fatalf("clusters cover %d of 30 variables", covered)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	q := testData(t, 25, 15, 2)
	a := Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(3), nil)
	b := Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(3), nil)
	if !reflect.DeepEqual(a.VarSnapshot(), b.VarSnapshot()) {
		t.Fatal("identical seeds produced different clusterings")
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	q := testData(t, 40, 20, 3)
	a := Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(1), nil)
	b := Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(2), nil)
	if reflect.DeepEqual(a.VarSnapshot(), b.VarSnapshot()) {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

// TestParallelMatchesSequential is the central §4.2 reproduction contract:
// for every processor count, the parallel run must produce exactly the
// clustering the sequential run produces.
func TestParallelMatchesSequential(t *testing.T) {
	q := testData(t, 24, 16, 4)
	pr := score.DefaultPrior()
	par := Params{Updates: 2}
	want := Run(q, pr, par, prng.New(11), nil).VarSnapshot()
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		snaps := make([][][]int, p)
		_, err := comm.Run(p, func(c *comm.Comm) error {
			cc := RunParallel(c, q, pr, par, prng.New(11))
			snaps[c.Rank()] = cc.VarSnapshot()
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for k := 0; k < p; k++ {
			if !reflect.DeepEqual(snaps[k], want) {
				t.Fatalf("p=%d rank %d clustering differs from sequential", p, k)
			}
		}
	}
}

// TestParallelObsClusteringsMatchSequential checks the same contract for the
// observation-only sampler used in module learning.
func TestParallelObsClusteringsMatchSequential(t *testing.T) {
	q := testData(t, 12, 20, 5)
	pr := score.DefaultPrior()
	vars := []int{1, 3, 5, 7, 9}
	par := ObsParams{Updates: 3, Burnin: 1}
	wantSamples, wantFinal := SampleObsClusterings(q, pr, vars, par, prng.New(21), nil)
	for _, p := range []int{1, 2, 5} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			samples, final := SampleObsClusteringsParallel(c, q, pr, vars, par, prng.New(21))
			if !reflect.DeepEqual(samples, wantSamples) {
				return fmt.Errorf("rank %d samples differ", c.Rank())
			}
			if !reflect.DeepEqual(final.Snapshot(), wantFinal.Snapshot()) {
				return fmt.Errorf("rank %d final partition differs", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestWorkersInvariance: the intra-rank worker pool must not change the
// sampled clustering — sequential and parallel runs with W workers are
// bit-identical to the serial W=1 run, and so are the obs-only samples.
func TestWorkersInvariance(t *testing.T) {
	q := testData(t, 24, 16, 6)
	pr := score.DefaultPrior()
	want := Run(q, pr, Params{Updates: 2}, prng.New(13), nil).VarSnapshot()
	vars := []int{0, 2, 4, 6, 8}
	wantSamples, _ := SampleObsClusterings(q, pr, vars, ObsParams{Updates: 2}, prng.New(19), nil)
	for _, workers := range []int{2, 4} {
		par := Params{Updates: 2, Workers: workers}
		if got := Run(q, pr, par, prng.New(13), nil).VarSnapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("sequential W=%d clustering differs", workers)
		}
		_, err := comm.Run(3, func(c *comm.Comm) error {
			if got := RunParallel(c, q, pr, par, prng.New(13)).VarSnapshot(); !reflect.DeepEqual(got, want) {
				return fmt.Errorf("rank %d W=%d clustering differs", c.Rank(), workers)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		samples, _ := SampleObsClusterings(q, pr, vars, ObsParams{Updates: 2, Workers: workers}, prng.New(19), nil)
		if !reflect.DeepEqual(samples, wantSamples) {
			t.Fatalf("obs sampler W=%d samples differ", workers)
		}
	}
}

// TestWorkersRecordCounters: with W workers the recorded phases carry
// reproducible per-worker cost counters summing to the item costs.
func TestWorkersRecordCounters(t *testing.T) {
	q := testData(t, 24, 16, 7)
	record := func() *trace.Workload {
		wl := &trace.Workload{}
		Run(q, score.DefaultPrior(), Params{Updates: 1, Workers: 4}, prng.New(17), wl)
		return wl
	}
	a, b := record(), record()
	for _, ph := range a.Phases {
		if len(ph.WorkerCost) == 0 {
			t.Fatalf("phase %s has no worker counters", ph.Name)
		}
		if !reflect.DeepEqual(ph.WorkerCost, b.Phase(ph.Name).WorkerCost) {
			t.Fatalf("phase %s worker counters not reproducible", ph.Name)
		}
		var items, workers float64
		for _, it := range ph.Items {
			items += it.Cost
		}
		for _, c := range ph.WorkerCost {
			workers += c
		}
		if items != workers {
			t.Fatalf("phase %s: worker cost %v != item cost %v", ph.Name, workers, items)
		}
	}
}

// TestGibbsImprovesScore: the sampler should, on structured data, end far
// above the score of its random initialization.
func TestGibbsImprovesScore(t *testing.T) {
	q := testData(t, 40, 30, 6)
	pr := score.DefaultPrior()
	// Reconstruct the exact random initialization the run starts from.
	par := Params{Updates: 3}.withDefaults(q.N, q.M)
	init := cluster.NewRandomCoClustering(q, pr, par.InitVarClusters, par.InitObsClusters, prng.New(9))
	final := Run(q, pr, par, prng.New(9), nil)
	if final.Score() <= init.Score() {
		t.Fatalf("sampling did not improve the score: init %v, final %v",
			init.Score(), final.Score())
	}
}

// TestGibbsRecoversStructure: with low noise and few strong modules, the
// sampler must group same-module variables together far better than chance.
func TestGibbsRecoversStructure(t *testing.T) {
	d, truth, err := synth.Generate(synth.Config{
		N: 40, M: 60, Regulators: 4, Modules: 3, Noise: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	cc := Run(q, score.DefaultPrior(), Params{Updates: 4}, prng.New(5), nil)
	// Count pair agreement over member genes (exclude regulators).
	assign := cc.VarAssignment()
	var agree, total int
	for i := 4; i < q.N; i++ {
		for j := i + 1; j < q.N; j++ {
			sameTruth := truth.ModuleOf[i] == truth.ModuleOf[j]
			sameLearned := assign[i] == assign[j]
			if sameTruth == sameLearned {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.75 {
		t.Fatalf("pair agreement %.2f below 0.75", frac)
	}
}

func TestWorkloadRecorded(t *testing.T) {
	q := testData(t, 20, 12, 8)
	wl := &trace.Workload{}
	Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(2), wl)
	for _, name := range []string{PhaseVarReassign, PhaseVarMerge, PhaseObsReassign, PhaseObsMerge} {
		ph := wl.Phase(name)
		if ph == nil {
			t.Fatalf("phase %s not recorded", name)
		}
		if len(ph.Items) == 0 {
			t.Fatalf("phase %s has no items", name)
		}
		if ph.Collectives == 0 {
			t.Fatalf("phase %s has no collectives", name)
		}
		if !ph.PerSegmentBarrier {
			t.Fatalf("phase %s must be per-segment", name)
		}
	}
	if wl.TotalCost() <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestWorkloadRecordingDoesNotChangeResult(t *testing.T) {
	q := testData(t, 20, 12, 9)
	wl := &trace.Workload{}
	a := Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(4), wl)
	b := Run(q, score.DefaultPrior(), Params{Updates: 1}, prng.New(4), nil)
	if !reflect.DeepEqual(a.VarSnapshot(), b.VarSnapshot()) {
		t.Fatal("recording changed the result")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults(100, 49)
	if p.InitVarClusters != 50 {
		t.Fatalf("K0 = %d, want 50", p.InitVarClusters)
	}
	if p.InitObsClusters != 7 {
		t.Fatalf("L0 = %d, want 7", p.InitObsClusters)
	}
	if p.Updates != 1 {
		t.Fatalf("U = %d, want 1", p.Updates)
	}
	op := ObsParams{}.withDefaults(100)
	if op.InitObsClusters != 10 || op.Updates != 1 {
		t.Fatalf("obs defaults: %+v", op)
	}
}

func TestSampleObsClusteringsBurnin(t *testing.T) {
	q := testData(t, 10, 16, 10)
	samples, final := SampleObsClusterings(q, score.DefaultPrior(), []int{0, 1, 2},
		ObsParams{Updates: 5, Burnin: 2}, prng.New(6), nil)
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 (5 updates − 2 burn-in)", len(samples))
	}
	if err := final.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for si, snap := range samples {
		covered := 0
		for _, cl := range snap {
			covered += len(cl)
		}
		if covered != 16 {
			t.Fatalf("sample %d covers %d of 16 observations", si, covered)
		}
	}
}

func TestCoOccurrenceBasic(t *testing.T) {
	// Two snapshots over 4 variables: {0,1},{2,3} and {0,1,2},{3}.
	ens := [][][]int{
		{{0, 1}, {2, 3}},
		{{0, 1, 2}, {3}},
	}
	a := CoOccurrence(4, ens, 0)
	if a[0*4+1] != 1 {
		t.Fatalf("A(0,1) = %v, want 1", a[0*4+1])
	}
	if a[1*4+2] != 0.5 {
		t.Fatalf("A(1,2) = %v, want 0.5", a[1*4+2])
	}
	if a[0*4+3] != 0 {
		t.Fatalf("A(0,3) = %v, want 0", a[0*4+3])
	}
	// Symmetry and unit diagonal.
	for i := 0; i < 4; i++ {
		if a[i*4+i] != 1 {
			t.Fatalf("diagonal (%d) = %v", i, a[i*4+i])
		}
		for j := 0; j < 4; j++ {
			if a[i*4+j] != a[j*4+i] {
				t.Fatal("co-occurrence not symmetric")
			}
		}
	}
}

func TestCoOccurrenceThreshold(t *testing.T) {
	ens := [][][]int{
		{{0, 1}, {2}},
		{{0}, {1}, {2}},
	}
	a := CoOccurrence(3, ens, 0.6)
	if a[0*3+1] != 0 {
		t.Fatalf("A(0,1) = %v, want 0 after threshold", a[0*3+1])
	}
	if a[0] != 1 {
		t.Fatal("diagonal lost")
	}
}

func TestCoOccurrenceEmptyEnsemble(t *testing.T) {
	a := CoOccurrence(3, nil, 0)
	for _, v := range a {
		if v != 0 {
			t.Fatal("empty ensemble must give zero matrix")
		}
	}
}

func BenchmarkRunSequential(b *testing.B) {
	q := testData(b, 60, 40, 1)
	pr := score.DefaultPrior()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(q, pr, Params{Updates: 1}, prng.New(uint64(i)), nil)
	}
}

func BenchmarkRunParallelP4(b *testing.B) {
	q := testData(b, 60, 40, 1)
	pr := score.DefaultPrior()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm.Run(4, func(c *comm.Comm) error {
			RunParallel(c, q, pr, Params{Updates: 1}, prng.New(uint64(i)))
			return nil
		})
	}
}

// TestCoOccurrenceProperties: symmetric, unit diagonal for covered
// variables, all entries within [0,1] — for arbitrary ensembles.
func TestCoOccurrenceProperties(t *testing.T) {
	check := func(raw []uint8) bool {
		const n = 6
		// Build 1-3 random partitions of 0..n-1 from the raw bytes.
		var ens [][][]int
		idx := 0
		take := func() int {
			if idx >= len(raw) {
				return 0
			}
			v := int(raw[idx])
			idx++
			return v
		}
		for s := 0; s < take()%3+1; s++ {
			clusters := map[int][]int{}
			for x := 0; x < n; x++ {
				c := take() % 3
				clusters[c] = append(clusters[c], x)
			}
			var snap [][]int
			for c := 0; c < 3; c++ {
				if len(clusters[c]) > 0 {
					snap = append(snap, clusters[c])
				}
			}
			ens = append(ens, snap)
		}
		a := CoOccurrence(n, ens, 0)
		for i := 0; i < n; i++ {
			if a[i*n+i] < 0.999 {
				return false // every variable co-occurs with itself in every sample
			}
			for j := 0; j < n; j++ {
				if a[i*n+j] != a[j*n+i] || a[i*n+j] < 0 || a[i*n+j] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
