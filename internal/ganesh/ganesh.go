// Package ganesh implements the GaneSH Gibbs-sampler co-clustering task of
// Lemon-Tree (Joshi et al. 2008; §2.2.1 and Algorithms 1–3 of the paper),
// in a sequential and a distributed-memory parallel variant that produce
// bit-identical results.
//
// Each update step performs four sweeps: n variable reassignments, a
// variable-cluster merge pass, and — per variable cluster — m observation
// reassignments and an observation-cluster merge pass. Every individual
// decision is a collective weighted random choice over score gains. The
// parallel variant partitions the candidate evaluations of each decision
// over ranks (Algorithms 1–2), all-gathers the gains, and every rank then
// draws the same choice from the replicated PRNG stream; state transitions
// are applied redundantly on all ranks, so the clustering state never needs
// to be communicated.
package ganesh

import (
	"parsimone/internal/cluster"
	"parsimone/internal/comm"
	"parsimone/internal/obs"
	"parsimone/internal/pool"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/trace"
)

// Params configures a GaneSH run.
type Params struct {
	// InitVarClusters is K₀, the initial number of variable clusters;
	// 0 means n/2, the Lemon-Tree default.
	InitVarClusters int
	// InitObsClusters is the initial number of observation clusters per
	// variable cluster; 0 means ⌈√m⌉, the Lemon-Tree default.
	InitObsClusters int
	// Updates is U, the number of update steps.
	Updates int
	// Workers is W, the number of intra-rank worker goroutines evaluating
	// each decision's candidate gains (internal/pool); 0 or 1 means
	// serial. The drawn choices are identical for every worker count: the
	// Gain* evaluations are read-only on the clustering state and each
	// writes only its own gains slot.
	Workers int
	// Hooks supplies the observability sinks. The sampler makes thousands
	// of decisions per update step, so it feeds the metrics registry only
	// (per-phase cost/item/decision counters) and never emits per-decision
	// events; nil disables. Result-invisible, as everywhere.
	Hooks *obs.Hooks
	// Cancel is the run's cooperative cancellation signal, polled once per
	// update step — before any PRNG draw of the step, so a check never
	// perturbs the substream schedule. Firing panics through the rank's
	// abort path; nil disables (DESIGN §13).
	Cancel *comm.Canceler
}

func (p Params) withDefaults(n, m int) Params {
	if p.InitVarClusters == 0 {
		p.InitVarClusters = max(1, n/2)
	}
	if p.InitObsClusters == 0 {
		c := 1
		for c*c < m {
			c++
		}
		p.InitObsClusters = c
	}
	if p.Updates == 0 {
		p.Updates = 1
	}
	return p
}

// Phase names used for work recording.
const (
	PhaseVarReassign = "ganesh/var-reassign"
	PhaseVarMerge    = "ganesh/var-merge"
	PhaseObsReassign = "ganesh/obs-reassign"
	PhaseObsMerge    = "ganesh/obs-merge"
)

// logMLCost is the cost-unit weight of one marginal-likelihood evaluation
// relative to one cell-statistics update.
const logMLCost = 8

// gainsChunk is the pool chunk size for gain evaluations, which are much
// cheaper than split posteriors; small chunks keep the round-robin deal
// balanced over the short candidate lists of one decision.
const gainsChunk = 8

// executor abstracts how a decision's candidate gains are computed: locally
// (sequential) or block-partitioned over ranks followed by an all-gather
// (parallel), in both cases fanned over the intra-rank worker pool.
// Implementations must return exactly the same gains vector; the Stats are
// the pool counters of this rank's share, weighted by cost.
type executor interface {
	// gains evaluates eval(i) for i in [0, count) and returns all values;
	// cost(i) is the recorded cost of candidate i.
	gains(count int, eval func(int) float64, cost func(int) float64) ([]float64, pool.Stats)
}

type seqExec struct{ workers int }

func (e seqExec) gains(count int, eval func(int) float64, cost func(int) float64) ([]float64, pool.Stats) {
	out := make([]float64, count)
	st := pool.For(count, e.workers, gainsChunk, func(i, w int) float64 {
		out[i] = eval(i)
		return cost(i)
	})
	return out, st
}

type parExec struct {
	c       *comm.Comm
	workers int
}

func (e parExec) gains(count int, eval func(int) float64, cost func(int) float64) ([]float64, pool.Stats) {
	lo, hi := comm.BlockRange(count, e.c.Size(), e.c.Rank())
	local := make([]float64, hi-lo)
	st := pool.For(hi-lo, e.workers, gainsChunk, func(k, w int) float64 {
		local[k] = eval(lo + k)
		return cost(lo + k)
	})
	return comm.AllGatherv(e.c, local), st
}

// engine runs the sampler against an executor; the sequential and parallel
// entry points share all decision logic, which is what guarantees identical
// PRNG consumption and identical results.
type engine struct {
	q     *score.QData
	prior score.Prior
	// kern is the precomputed scoring kernel of prior, attached to the
	// clustering state so every gain evaluation hits the tables. A Gibbs
	// block never exceeds the full data matrix, so n·m covers every count.
	kern *score.Kernel
	g    *prng.MRG3
	ex   executor
	wl   *trace.Workload
	// decision counts segments for per-phase work recording.
	decision map[string]int
	// reg receives per-phase pool counters; ctrs caches the interned
	// counter handles so the hot decision loop skips the registry lookup.
	reg  *obs.Registry
	ctrs map[string]phaseCounters
}

// phaseCounters are one phase's cached metric handles.
type phaseCounters struct {
	cost, items, decisions *obs.Counter
}

func newEngine(q *score.QData, pr score.Prior, g *prng.MRG3, ex executor, wl *trace.Workload) *engine {
	return &engine{q: q, prior: pr, kern: score.NewKernel(pr, q.N*q.M),
		g: g, ex: ex, wl: wl, decision: make(map[string]int)}
}

// withObs attaches the metrics registry of hooks (nil-safe) and returns the
// engine for chaining.
func (e *engine) withObs(h *obs.Hooks) *engine {
	e.reg = h.Registry()
	if e.reg != nil {
		e.ctrs = make(map[string]phaseCounters)
	}
	return e
}

// count accumulates one decision's pool stats into the metrics registry.
func (e *engine) count(phaseName string, st pool.Stats) {
	if e.reg == nil {
		return
	}
	pc, ok := e.ctrs[phaseName]
	if !ok {
		pc = phaseCounters{
			cost:      e.reg.Counter("pool_cost_total", "accumulated abstract work-item cost by phase", "phase", phaseName),
			items:     e.reg.Counter("pool_items_total", "work items evaluated by phase", "phase", phaseName),
			decisions: e.reg.Counter("ganesh_decisions_total", "collective weighted choices drawn by phase", "phase", phaseName),
		}
		e.ctrs[phaseName] = pc
	}
	var cost float64
	var items int64
	for _, c := range st.Cost {
		cost += c
	}
	for _, n := range st.Items {
		items += n
	}
	pc.cost.Add(int64(cost))
	pc.items.Add(items)
	pc.decisions.Add(1)
}

// phase returns the recording phase for name, creating it on first use.
func (e *engine) phase(name string) *trace.Phase {
	if e.wl == nil {
		return nil
	}
	ph := e.wl.Phase(name)
	if ph == nil {
		ph = e.wl.AddPhase(name)
		ph.PerSegmentBarrier = true
	}
	return ph
}

// decide evaluates count candidate gains through the executor, records the
// work, converts gains to quantized weights, and draws the collective
// weighted choice. itemCost(i) reports the deterministic cost of evaluating
// candidate i.
func (e *engine) decide(phaseName string, count int, eval func(int) float64, itemCost func(int) float64) int {
	gains, st := e.ex.gains(count, eval, itemCost)
	e.count(phaseName, st)
	if ph := e.phase(phaseName); ph != nil {
		seg := e.decision[phaseName]
		e.decision[phaseName]++
		for i := 0; i < count; i++ {
			ph.Items = append(ph.Items, trace.Item{Cost: itemCost(i), Seg: seg})
		}
		ph.AddWorkerCost(st.Cost)
		ph.Collectives++ // the gains all-gather
		ph.Words += int64(count)
	}
	weights := score.QuantizeWeights(gains)
	s := e.g.WeightedIndex(weights)
	if s < 0 {
		// All gains were −Inf/NaN, which finite statistics cannot
		// produce; fall back to the last candidate (retain/new).
		s = count - 1
	}
	return s
}

// reassignVars performs the n variable-reassignment iterations of
// Algorithm 1 (Reassign-Var-Cluster).
func (e *engine) reassignVars(cc *cluster.CoClustering) {
	n := e.q.N
	for it := 0; it < n; it++ {
		r := e.g.Intn(n)
		cc.DetachVar(r)
		k := len(cc.Clusters)
		cost := func(i int) float64 {
			l := 1
			if i < k {
				l = len(cc.Clusters[i].Obs.Clusters)
			}
			return float64(e.q.M + logMLCost*2*l)
		}
		s := e.decide(PhaseVarReassign, k+1,
			func(i int) float64 { return cc.GainAttachVar(r, i) }, cost)
		cc.AttachVar(r, s)
		e.addSerial(PhaseVarReassign, float64(2*e.q.M))
	}
}

// mergeVars performs the variable-cluster merge pass of Algorithm 1
// (Merge-Var-Cluster). Cluster i is merged into the chosen cluster or
// retained; after a merge the list shrinks and index i is revisited.
func (e *engine) mergeVars(cc *cluster.CoClustering) {
	for i := 0; i < len(cc.Clusters); {
		cols := cc.VarColumnStats(i)
		e.addSerial(PhaseVarMerge, float64(len(cc.Clusters[i].Vars)*e.q.M))
		k := len(cc.Clusters)
		srcL := len(cc.Clusters[i].Obs.Clusters)
		cost := func(j int) float64 {
			if j == i {
				return 1
			}
			return float64(e.q.M + logMLCost*(2*len(cc.Clusters[j].Obs.Clusters)+srcL))
		}
		s := e.decide(PhaseVarMerge, k,
			func(j int) float64 { return cc.GainMergeVar(cols, i, j) }, cost)
		if s != i {
			cc.MergeVar(i, s)
			// The list shifted; position i now holds the next cluster.
		} else {
			i++
		}
	}
}

// ReassignObs performs the m observation-reassignment iterations of
// Algorithm 2 (Reassign-Obs-Cluster) on one observation partition. Exported
// because the module-learning task (Algorithm 4) reuses it with the variable
// clusters pinned.
func (e *engine) reassignObs(oc *cluster.ObsClusters) {
	m := e.q.M
	nv := len(oc.Vars)
	for it := 0; it < m; it++ {
		r := e.g.Intn(m)
		col := oc.DetachObs(r)
		l := len(oc.Clusters)
		s := e.decide(PhaseObsReassign, l+1,
			func(i int) float64 { return oc.GainAttachObs(col, i) },
			func(int) float64 { return 2 * logMLCost })
		oc.AttachObs(r, s)
		e.addSerial(PhaseObsReassign, float64(2*nv))
	}
}

// mergeObs performs the observation-cluster merge pass of Algorithm 2
// (Merge-Obs-Cluster) on one observation partition.
func (e *engine) mergeObs(oc *cluster.ObsClusters) {
	for i := 0; i < len(oc.Clusters); {
		l := len(oc.Clusters)
		s := e.decide(PhaseObsMerge, l,
			func(j int) float64 { return oc.GainMergeObs(i, j) },
			func(int) float64 { return 3 * logMLCost })
		if s != i {
			oc.MergeObs(i, s)
		} else {
			i++
		}
	}
}

func (e *engine) addSerial(phaseName string, cost float64) {
	if ph := e.phase(phaseName); ph != nil {
		ph.SerialCost += cost
	}
}

// run executes Algorithm 3: random initialization followed by U update
// steps.
func (e *engine) run(par Params) *cluster.CoClustering {
	par = par.withDefaults(e.q.N, e.q.M)
	cc := cluster.NewRandomCoClustering(e.q, e.prior, par.InitVarClusters, par.InitObsClusters, e.g)
	cc.UseKernel(e.kern)
	for u := 0; u < par.Updates; u++ {
		par.Cancel.Check()
		e.reassignVars(cc)
		e.mergeVars(cc)
		for vi := 0; vi < len(cc.Clusters); vi++ {
			oc := cc.Clusters[vi].Obs
			e.reassignObs(oc)
			e.mergeObs(oc)
		}
	}
	return cc
}

// Run executes one sequential GaneSH run and returns the final
// co-clustering. If wl is non-nil the parallelizable work is recorded into
// it for scaling analysis.
func Run(q *score.QData, pr score.Prior, par Params, g *prng.MRG3, wl *trace.Workload) *cluster.CoClustering {
	return newEngine(q, pr, g, seqExec{workers: par.Workers}, wl).withObs(par.Hooks).run(par)
}

// RunParallel executes the same algorithm across c's ranks. Every rank must
// pass a PRNG in the same state; every rank returns an identical
// co-clustering, bit-equal to the sequential result from the same state.
func RunParallel(c *comm.Comm, q *score.QData, pr score.Prior, par Params, g *prng.MRG3) *cluster.CoClustering {
	return newEngine(q, pr, g, parExec{c: c, workers: par.Workers}, nil).withObs(par.Hooks).run(par)
}

// ObsParams configures the observation-only sampler used by the
// module-learning task (Algorithm 4, lines 3–9).
type ObsParams struct {
	// InitObsClusters as in Params.
	InitObsClusters int
	// Updates is U, the number of update steps; Burnin is B, the number
	// of initial steps whose states are discarded.
	Updates, Burnin int
	// Workers as in Params.
	Workers int
	// Hooks as in Params (metrics only).
	Hooks *obs.Hooks
	// Cancel as in Params, polled once per update step.
	Cancel *comm.Canceler
}

func (p ObsParams) withDefaults(m int) ObsParams {
	if p.InitObsClusters == 0 {
		c := 1
		for c*c < m {
			c++
		}
		p.InitObsClusters = c
	}
	if p.Updates == 0 {
		p.Updates = 1
	}
	return p
}

// SampleObsClusterings runs GaneSH constrained to a single pinned variable
// cluster (the module's variables) and returns the observation clusterings
// sampled after burn-in — one snapshot per post-burn-in update step — plus
// the final partition state. Sequential variant.
func SampleObsClusterings(q *score.QData, pr score.Prior, vars []int, par ObsParams, g *prng.MRG3, wl *trace.Workload) ([][][]int, *cluster.ObsClusters) {
	return sampleObs(newEngine(q, pr, g, seqExec{workers: par.Workers}, wl).withObs(par.Hooks), vars, par)
}

// SampleObsClusteringsParallel is the distributed variant of
// SampleObsClusterings; identical results on every rank.
func SampleObsClusteringsParallel(c *comm.Comm, q *score.QData, pr score.Prior, vars []int, par ObsParams, g *prng.MRG3) ([][][]int, *cluster.ObsClusters) {
	return sampleObs(newEngine(q, pr, g, parExec{c: c, workers: par.Workers}, nil).withObs(par.Hooks), vars, par)
}

func sampleObs(e *engine, vars []int, par ObsParams) ([][][]int, *cluster.ObsClusters) {
	par = par.withDefaults(e.q.M)
	oc := cluster.NewRandomObsClusters(e.q, e.prior, vars, par.InitObsClusters, e.g)
	oc.UseKernel(e.kern)
	var samples [][][]int
	for u := 1; u <= par.Updates; u++ {
		par.Cancel.Check()
		e.reassignObs(oc)
		e.mergeObs(oc)
		if u > par.Burnin {
			samples = append(samples, oc.Snapshot())
		}
	}
	return samples, oc
}

// CoOccurrence accumulates an ensemble of variable-partition snapshots into
// the n×n co-occurrence frequency matrix of the consensus task (§2.2.2):
// entry (i,j) is the fraction of sampled clusterings in which variables i
// and j share a cluster. Entries below threshold are zeroed.
func CoOccurrence(n int, ensembles [][][]int, threshold float64) []float64 {
	a := make([]float64, n*n)
	if len(ensembles) == 0 {
		return a
	}
	inc := 1 / float64(len(ensembles))
	for _, snap := range ensembles {
		for _, cl := range snap {
			for _, i := range cl {
				for _, j := range cl {
					a[i*n+j] += inc
				}
			}
		}
	}
	for i := range a {
		if a[i] < threshold {
			a[i] = 0
		}
	}
	// Clamp accumulated rounding above 1.
	for i := range a {
		if a[i] > 1 {
			a[i] = 1
		}
	}
	return a
}
