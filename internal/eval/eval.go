// Package eval provides the held-out evaluation harness for learned module
// networks: k-fold cross-validation over observations, scoring each fold's
// network by how well its regression-tree CPDs predict the held-out
// conditions — predicted module mean (RMSE) and Gaussian log-likelihood —
// against the global-mean baseline. This is the generalization check that
// complements the paper's run-time evaluation: the learned structures must
// carry signal, not just be computed quickly.
package eval

import (
	"fmt"
	"math"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/module"
	"parsimone/internal/score"
)

// FoldResult is the held-out performance of one fold.
type FoldResult struct {
	Fold    int
	Modules int
	// CPDRMSE and BaselineRMSE average over modules the root-mean-square
	// error of the predicted module mean on held-out observations.
	CPDRMSE, BaselineRMSE float64
	// CPDLogLik and BaselineLogLik are mean per-cell held-out Gaussian
	// log-likelihoods.
	CPDLogLik, BaselineLogLik float64
}

// CVResult aggregates a cross-validation run.
type CVResult struct {
	Folds []FoldResult
	// Mean values across folds.
	CPDRMSE, BaselineRMSE     float64
	CPDLogLik, BaselineLogLik float64
}

// CrossValidate learns a module network on each of k training folds
// (observations held out round-robin) and evaluates the fold's CPDs on the
// held-out observations. The data set is standardized once up front so
// train and test share the transform (a slight information leak through the
// scaling constants, acceptable for a model-comparison harness and noted
// here for transparency); opt.Standardize is therefore forced off.
func CrossValidate(d *dataset.Data, opt core.Options, k int) (*CVResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need at least 2 folds, got %d", k)
	}
	if d.M < 2*k {
		return nil, fmt.Errorf("eval: %d observations cannot support %d folds", d.M, k)
	}
	std := d.Clone()
	std.Standardize()
	opt.Standardize = false

	cv := &CVResult{}
	for f := 0; f < k; f++ {
		var trainCols, testCols []int
		for j := 0; j < d.M; j++ {
			if j%k == f {
				testCols = append(testCols, j)
			} else {
				trainCols = append(trainCols, j)
			}
		}
		train, err := std.SelectObservations(trainCols)
		if err != nil {
			return nil, err
		}
		out, err := core.Learn(train, opt)
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		cpds, err := core.BuildCPDs(train, opt, out)
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		fr := evaluateFold(std, train, out, cpds, testCols)
		fr.Fold = f
		cv.Folds = append(cv.Folds, fr)
	}
	for _, fr := range cv.Folds {
		cv.CPDRMSE += fr.CPDRMSE
		cv.BaselineRMSE += fr.BaselineRMSE
		cv.CPDLogLik += fr.CPDLogLik
		cv.BaselineLogLik += fr.BaselineLogLik
	}
	n := float64(len(cv.Folds))
	cv.CPDRMSE /= n
	cv.BaselineRMSE /= n
	cv.CPDLogLik /= n
	cv.BaselineLogLik /= n
	return cv, nil
}

// evaluateFold scores one fold's CPDs on the held-out columns of std.
// prPrior provides the baseline's posterior-predictive conversion, matching
// the CPDs' leaf distributions.
var prPrior = score.DefaultPrior()

func evaluateFold(std, train *dataset.Data, out *core.Output, cpds []*module.CPD, testCols []int) FoldResult {
	fr := FoldResult{Modules: len(cpds)}
	if len(cpds) == 0 {
		return fr
	}
	var sumRMSEc, sumRMSEb, sumLLc, sumLLb float64
	cells := 0
	for _, cpd := range cpds {
		vars := out.Modules[cpd.Module].Vars
		// Training global distribution of the module.
		var tr score.Stats
		for _, x := range vars {
			for j := 0; j < train.M; j++ {
				tr.Add(score.Quantize(train.At(x, j)))
			}
		}
		gMean, gVar := prPrior.Predictive(tr)

		var seC, seB float64
		var llC, llB float64
		for _, j := range testCols {
			obs := make([]int64, std.N)
			for x := 0; x < std.N; x++ {
				obs[x] = score.Quantize(std.At(x, j))
			}
			pred, _ := cpd.Predict(obs)
			var actual float64
			for _, x := range vars {
				actual += std.At(x, j)
			}
			actual /= float64(len(vars))
			seC += (pred - actual) * (pred - actual)
			seB += (gMean - actual) * (gMean - actual)
			for _, x := range vars {
				v := score.Quantize(std.At(x, j))
				llC += cpd.LogLikelihood(obs, v)
				llB += gaussLogLik(score.Dequantize(v), gMean, gVar)
				cells++
			}
		}
		sumRMSEc += math.Sqrt(seC / float64(len(testCols)))
		sumRMSEb += math.Sqrt(seB / float64(len(testCols)))
		sumLLc += llC
		sumLLb += llB
	}
	k := float64(len(cpds))
	fr.CPDRMSE = sumRMSEc / k
	fr.BaselineRMSE = sumRMSEb / k
	if cells > 0 {
		fr.CPDLogLik = sumLLc / float64(cells)
		fr.BaselineLogLik = sumLLb / float64(cells)
	}
	return fr
}

func gaussLogLik(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}
