package eval

import (
	"math"
	"testing"

	"parsimone/internal/core"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
)

func cvOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Seed = 5
	opt.Ganesh.Updates = 3
	opt.Module.Tree.Updates = 4 // 3 trees per module for the ensemble CPD
	opt.Module.Splits = splits.Params{NumSplits: 3, MaxSteps: 48}
	return opt
}

func TestCrossValidateBasic(t *testing.T) {
	d, _, err := synth.Generate(synth.Config{
		N: 60, M: 60, Modules: 3, Regulators: 5, Noise: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := CrossValidate(d, cvOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 3 {
		t.Fatalf("%d folds", len(cv.Folds))
	}
	for _, fr := range cv.Folds {
		if fr.Modules == 0 {
			t.Fatalf("fold %d learned no modules", fr.Fold)
		}
		if math.IsNaN(fr.CPDRMSE) || math.IsNaN(fr.CPDLogLik) {
			t.Fatalf("fold %d has NaN metrics", fr.Fold)
		}
	}
}

// TestCrossValidateCPDBeatsBaseline: on structured data with modest noise,
// the learned CPDs must generalize — better held-out module-mean RMSE than
// the global-mean baseline, and a held-out likelihood in the same range
// (hard-routed tree CPDs are sharper per leaf, so occasional mis-routing
// costs likelihood even when point predictions improve; a catastrophic gap
// would indicate overconfident leaves or broken routing).
func TestCrossValidateCPDBeatsBaseline(t *testing.T) {
	var cpdRMSE, baseRMSE, cpdLL, baseLL float64
	seeds := []uint64{2, 3, 4}
	for _, seed := range seeds {
		d, _, err := synth.Generate(synth.Config{
			N: 60, M: 80, Modules: 3, Regulators: 5, Noise: 0.25, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		cv, err := CrossValidate(d, cvOptions(), 4)
		if err != nil {
			t.Fatal(err)
		}
		cpdRMSE += cv.CPDRMSE
		baseRMSE += cv.BaselineRMSE
		cpdLL += cv.CPDLogLik
		baseLL += cv.BaselineLogLik
	}
	k := float64(len(seeds))
	cpdRMSE, baseRMSE, cpdLL, baseLL = cpdRMSE/k, baseRMSE/k, cpdLL/k, baseLL/k
	if cpdRMSE >= baseRMSE {
		t.Fatalf("mean CPD RMSE %.3f not below baseline %.3f over %d data seeds",
			cpdRMSE, baseRMSE, len(seeds))
	}
	if cpdLL < 3*baseLL {
		t.Fatalf("CPD log-lik %.3f catastrophically below baseline %.3f", cpdLL, baseLL)
	}
}

func TestCrossValidateValidation(t *testing.T) {
	d, _, err := synth.Generate(synth.Config{N: 20, M: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossValidate(d, cvOptions(), 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CrossValidate(d, cvOptions(), 15); err == nil {
		t.Fatal("too many folds accepted")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d, _, err := synth.Generate(synth.Config{N: 40, M: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := CrossValidate(d, cvOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(d, cvOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPDRMSE != b.CPDRMSE || a.CPDLogLik != b.CPDLogLik {
		t.Fatal("cross-validation not deterministic")
	}
}

// TestFoldsPartitionObservations: the k folds' held-out sets must be
// disjoint and cover every observation exactly once.
func TestFoldsPartitionObservations(t *testing.T) {
	m, k := 23, 4
	seen := make([]int, m)
	for f := 0; f < k; f++ {
		for j := 0; j < m; j++ {
			if j%k == f {
				seen[j]++
			}
		}
	}
	for j, c := range seen {
		if c != 1 {
			t.Fatalf("observation %d held out %d times", j, c)
		}
	}
}
