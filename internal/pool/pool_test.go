package pool

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestForCoversAllIndices: every index in [0, n) is evaluated exactly once,
// for awkward (n, workers, chunk) combinations including n not a multiple of
// chunk and more workers than chunks.
func TestForCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{0, 4, 8}, {1, 4, 8}, {7, 1, 3}, {100, 3, 7}, {100, 16, 7},
		{5, 8, 2}, {64, 4, 0}, {33, 2, 32},
	} {
		counts := make([]int32, max(tc.n, 1))
		st := For(tc.n, tc.workers, tc.chunk, func(i, w int) float64 {
			atomic.AddInt32(&counts[i], 1)
			return 1
		})
		for i := 0; i < tc.n; i++ {
			if counts[i] != 1 {
				t.Fatalf("(%d,%d,%d): index %d evaluated %d times", tc.n, tc.workers, tc.chunk, i, counts[i])
			}
		}
		var items int64
		for _, it := range st.Items {
			items += it
		}
		if items != int64(tc.n) {
			t.Fatalf("(%d,%d,%d): Items sum %d, want %d", tc.n, tc.workers, tc.chunk, items, tc.n)
		}
	}
}

// TestForOutputMatchesSerial: indexed writes from the pool produce the same
// slice as a serial loop, for every worker count.
func TestForOutputMatchesSerial(t *testing.T) {
	const n = 97
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i*i) / 3
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := make([]float64, n)
		For(n, workers, 4, func(i, w int) float64 {
			got[i] = float64(i*i) / 3
			return got[i]
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: output differs from serial", workers)
		}
	}
}

// TestForStatsDeterministic: the per-worker counters are a pure function of
// (n, workers, chunk) — identical across runs, and the cost totals match the
// serial sum.
func TestForStatsDeterministic(t *testing.T) {
	cost := func(i, w int) float64 { return float64(i%7 + 1) }
	var wantTotal float64
	for i := 0; i < 83; i++ {
		wantTotal += cost(i, 0)
	}
	first := For(83, 4, 8, cost)
	for run := 0; run < 5; run++ {
		st := For(83, 4, 8, cost)
		if !reflect.DeepEqual(st, first) {
			t.Fatalf("run %d: stats differ: %+v vs %+v", run, st, first)
		}
	}
	var total float64
	for _, c := range first.Cost {
		total += c
	}
	if total != wantTotal {
		t.Fatalf("cost total %v, want %v", total, wantTotal)
	}
	if first.Workers != 4 || len(first.Cost) != 4 || len(first.Items) != 4 {
		t.Fatalf("unexpected shape: %+v", first)
	}
}

// TestForClampsWorkers: at most one worker per chunk, at least one worker.
func TestForClampsWorkers(t *testing.T) {
	st := For(10, 16, 8, func(i, w int) float64 { return 0 })
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2 (one per chunk)", st.Workers)
	}
	st = For(0, 16, 8, func(i, w int) float64 { return 0 })
	if st.Workers != 1 {
		t.Fatalf("workers = %d, want 1 for empty range", st.Workers)
	}
	st = For(10, 0, 8, func(i, w int) float64 { return 0 })
	if st.Workers != 1 {
		t.Fatalf("workers = %d, want 1 for workers<=0", st.Workers)
	}
}

// TestForWorkerIDsInRange: the worker id passed to fn matches the static
// round-robin chunk deal.
func TestForWorkerIDsInRange(t *testing.T) {
	const n, workers, chunk = 50, 3, 4
	owner := make([]int, n)
	For(n, workers, chunk, func(i, w int) float64 {
		owner[i] = w
		return 0
	})
	for i := 0; i < n; i++ {
		if want := (i / chunk) % workers; owner[i] != want {
			t.Fatalf("index %d evaluated by worker %d, want %d", i, owner[i], want)
		}
	}
}

// TestForPanicPropagates: a panic inside a worker reaches the caller, so the
// comm runtime's rank-level recovery still sees it.
func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(100, 4, 8, func(i, w int) float64 {
		if i == 57 {
			panic("boom")
		}
		return 0
	})
	t.Fatal("no panic")
}
