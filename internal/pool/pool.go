// Package pool provides the deterministic intra-rank worker pool that adds
// the thread level of hybrid process×thread parallelism to the engines: each
// message-passing rank partitions its local block of score evaluations into
// fixed-size chunks evaluated by W worker goroutines.
//
// Determinism is the design constraint (DESIGN.md §6): the learned network
// must be bit-identical for every (rank count, worker count) combination.
// The pool guarantees its half of that contract with a *static* round-robin
// chunk assignment — worker w evaluates chunks w, w+W, w+2W, … in order — so
// both the per-worker work counters and the set of items each worker touches
// are a pure function of (n, workers, chunk). The caller supplies the other
// half: fn(i, w) must depend only on i (each split already draws from its
// own numbered PRNG substream) and must write its result only to a slot
// indexed by i, never to shared mutable state.
package pool

import "sync"

// DefaultChunk is the chunk size used when For is called with chunk <= 0.
// Small enough that the round-robin deal stays balanced under the highly
// variable per-split costs (§5.3.1 of the paper), large enough that chunk
// bookkeeping is negligible against one bootstrap posterior evaluation.
const DefaultChunk = 32

// Stats reports the per-worker work of one For call. Because the chunk
// assignment is static, Stats is identical for every execution with the same
// (n, workers, chunk) — it can feed deterministic trace records.
type Stats struct {
	// Workers is the effective worker count after clamping (at most one
	// worker per chunk, at least one).
	Workers int
	// Items[w] is the number of items worker w evaluated; Cost[w] the sum
	// of fn's returned costs over those items.
	Items []int64
	Cost  []float64
}

// For evaluates fn(i, w) for every i in [0, n) using `workers` goroutines
// and returns the per-worker work counters. The index range is split into
// fixed-size chunks assigned round-robin: worker w evaluates chunks
// w, w+W, w+2W, … in ascending order. fn must be safe to call concurrently
// for distinct i; its return value is the abstract cost of item i (in the
// trace package's cost units), accumulated per worker.
//
// workers <= 1 (or a range of at most one chunk) runs inline on the calling
// goroutine with identical semantics. A panic in fn is re-raised on the
// calling goroutine after all workers finish, so rank-level recovery (the
// comm package's job-abort semantics) keeps working.
func For(n, workers, chunk int, fn func(i, worker int) float64) Stats {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if workers < 1 {
		workers = 1
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = max(1, nChunks)
	}
	st := Stats{Workers: workers, Items: make([]int64, workers), Cost: make([]float64, workers)}
	if n <= 0 {
		return st
	}
	if workers == 1 {
		var cost float64
		for i := 0; i < n; i++ {
			cost += fn(i, 0)
		}
		st.Items[0] = int64(n)
		st.Cost[0] = cost
		return st
	}
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() { panics[w] = recover() }()
			var items int64
			var cost float64
			for c := w; c < nChunks; c += workers {
				hi := min((c+1)*chunk, n)
				for i := c * chunk; i < hi; i++ {
					cost += fn(i, w)
					items++
				}
			}
			st.Items[w] = items
			st.Cost[w] = cost
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return st
}
