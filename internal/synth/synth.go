// Package synth generates module-structured gene-expression data sets with
// known ground truth. It stands in for the paper's real compendia (yeast,
// n=5716 × m=2577, and A. thaliana, n=18373 × m=5102; see DESIGN.md §2):
// the learner's run time and scaling behaviour depend on the matrix shape
// and the cluster structure of the data, both of which the generator
// controls, while the ground truth additionally enables accuracy studies the
// real data sets cannot support.
//
// The generative model mirrors the module-network semantics of §2.1:
// regulator variables respond to condition groups; each module is driven by
// a small regulator program (a threshold rule, i.e. a depth-limited
// regression tree over its regulators); member genes express the module mean
// plus independent noise.
package synth

import (
	"fmt"

	"parsimone/internal/dataset"
	"parsimone/internal/prng"
)

// Config controls the generated data set.
type Config struct {
	// N is the number of variables, M the number of observations.
	N, M int
	// Modules is the number of ground-truth modules; 0 derives it as
	// max(2, N/35), which matches the paper's observed growth of the
	// learned module count with n (§5.2.2: K grew 28–39 at n=1000 to
	// 111–170 at n=5716).
	Modules int
	// Regulators is the number of regulator variables; 0 derives it as
	// max(2, N/20). Regulators are the first variables of the data set.
	Regulators int
	// CondGroups is the number of condition (observation) groups; 0
	// derives it as max(2, ceil(sqrt(M))), the GaneSH initialization
	// heuristic.
	CondGroups int
	// Noise is the member-gene noise standard deviation relative to the
	// unit module signal; 0 defaults to 0.4.
	Noise float64
	// Seed drives the generator PRNG.
	Seed uint64
}

// withDefaults returns cfg with derived values filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Modules == 0 {
		cfg.Modules = max(2, cfg.N/35)
	}
	if cfg.Regulators == 0 {
		cfg.Regulators = max(2, cfg.N/20)
	}
	if cfg.CondGroups == 0 {
		g := 2
		for g*g < cfg.M {
			g++
		}
		cfg.CondGroups = max(2, g)
	}
	//parsivet:floateq — zero-value sentinel for "option unset", never a computed float
	if cfg.Noise == 0 {
		cfg.Noise = 0.4
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.N < 4 || cfg.M < 4 {
		return fmt.Errorf("synth: need at least 4×4, got %d×%d", cfg.N, cfg.M)
	}
	if cfg.Modules < 1 || cfg.Regulators < 1 || cfg.CondGroups < 1 {
		return fmt.Errorf("synth: modules, regulators, cond groups must be positive")
	}
	if cfg.Regulators+cfg.Modules > cfg.N {
		return fmt.Errorf("synth: %d regulators + %d modules exceed %d variables",
			cfg.Regulators, cfg.Modules, cfg.N)
	}
	if cfg.Noise < 0 {
		return fmt.Errorf("synth: negative noise %v", cfg.Noise)
	}
	return nil
}

// Truth records the generative ground truth.
type Truth struct {
	// ModuleOf maps each variable to its module in [0, Modules), or -1
	// for regulator variables (which belong to no module).
	ModuleOf []int
	// Regulators lists, per module, the variable indices of its drivers.
	Regulators [][]int
	// CondGroup maps each observation to its condition group.
	CondGroup []int
	// NumModules and NumGroups echo the effective configuration.
	NumModules, NumGroups int
}

// Generate produces a data set and its ground truth. The first
// cfg.Regulators variables are regulators (named R####), the rest are module
// members (named G####). Values are roughly unit scale.
func Generate(cfg Config) (*dataset.Data, *Truth, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	g := prng.New(cfg.Seed)
	d := dataset.New(cfg.N, cfg.M)
	truth := &Truth{
		ModuleOf:   make([]int, cfg.N),
		Regulators: make([][]int, cfg.Modules),
		CondGroup:  make([]int, cfg.M),
		NumModules: cfg.Modules,
		NumGroups:  cfg.CondGroups,
	}

	// Assign observations to condition groups round-robin so every group
	// is populated, then shuffle for realism.
	for j := 0; j < cfg.M; j++ {
		truth.CondGroup[j] = j % cfg.CondGroups
	}
	for j := cfg.M - 1; j > 0; j-- {
		k := g.Intn(j + 1)
		truth.CondGroup[j], truth.CondGroup[k] = truth.CondGroup[k], truth.CondGroup[j]
	}

	// Regulators: per-group baseline in {−1, +1} scaled, plus small noise,
	// so regulator values separate cleanly at threshold 0 — giving the
	// split-assignment phase real signal to find.
	groupLevel := make([][]float64, cfg.Regulators)
	seenLevels := make(map[string]bool, cfg.Regulators)
	for r := 0; r < cfg.Regulators; r++ {
		d.Names[r] = fmt.Sprintf("R%04d", r)
		truth.ModuleOf[r] = -1
		var levels []float64
		// Distinct activity patterns per regulator, or regulators are
		// mutually indistinguishable as parents (retry budget only
		// exhausted when regulators vastly outnumber sign patterns).
		for try := 0; try < 64; try++ {
			levels = make([]float64, cfg.CondGroups)
			key := make([]byte, cfg.CondGroups)
			for c := range levels {
				if g.Intn(2) == 0 {
					levels[c] = -1
					key[c] = '-'
				} else {
					levels[c] = 1
					key[c] = '+'
				}
			}
			if !seenLevels[string(key)] {
				seenLevels[string(key)] = true
				break
			}
		}
		groupLevel[r] = levels
		for j := 0; j < cfg.M; j++ {
			d.Set(r, j, levels[truth.CondGroup[j]]+0.2*g.Normal())
		}
	}

	// Module programs: 1–3 regulators each; module mean per observation is
	// a weighted threshold rule over the regulators' true group levels.
	type program struct {
		regs    []int
		weights []float64
	}
	programs := make([]program, cfg.Modules)
	// signature is the sign pattern of a program's output across condition
	// groups; modules must have distinct signatures or their standardized
	// expression profiles coincide and no clustering method can separate
	// them.
	signature := func(pr program) string {
		sig := make([]byte, cfg.CondGroups)
		for c := 0; c < cfg.CondGroups; c++ {
			var mean float64
			for t, r := range pr.regs {
				if groupLevel[r][c] > 0 {
					mean += pr.weights[t]
				} else {
					mean -= pr.weights[t]
				}
			}
			if mean > 0 {
				sig[c] = '+'
			} else {
				sig[c] = '-'
			}
		}
		return string(sig)
	}
	seenSig := make(map[string]bool, cfg.Modules)
	for mod := 0; mod < cfg.Modules; mod++ {
		var pr program
		for try := 0; try < 64; try++ {
			pr = program{}
			nr := 1 + g.Intn(min(3, cfg.Regulators))
			seen := make(map[int]bool, nr)
			for len(pr.regs) < nr {
				r := g.Intn(cfg.Regulators)
				if seen[r] {
					continue
				}
				seen[r] = true
				pr.regs = append(pr.regs, r)
				pr.weights = append(pr.weights, 0.5+g.Float64())
			}
			if sig := signature(pr); !seenSig[sig] {
				seenSig[sig] = true
				break
			}
			// Duplicate signature: resample (accepted as-is after the
			// retry budget, which only triggers when modules vastly
			// outnumber distinguishable sign patterns).
		}
		programs[mod] = pr
		truth.Regulators[mod] = append([]int(nil), pr.regs...)
	}

	// Member genes: contiguous module blocks. Every module is populated,
	// and — like real gene orderings, where co-regulated genes are
	// scattered rather than interleaved one-per-module — a prefix of the
	// variables covers proportionally fewer modules, so the module count
	// K of a "first n variables" subset grows with n, the driver of the
	// paper's superlinear n-scaling (§5.2.2).
	members := cfg.N - cfg.Regulators
	for k := 0; k < members; k++ {
		i := cfg.Regulators + k
		mod := k * cfg.Modules / members
		truth.ModuleOf[i] = mod
		d.Names[i] = fmt.Sprintf("G%04d", i)
		pr := programs[mod]
		offset := 0.3 * g.Normal() // per-gene baseline shift
		for j := 0; j < cfg.M; j++ {
			var mean float64
			for t, r := range pr.regs {
				if groupLevel[r][truth.CondGroup[j]] > 0 {
					mean += pr.weights[t]
				} else {
					mean -= pr.weights[t]
				}
			}
			d.Set(i, j, mean+offset+cfg.Noise*g.Normal())
		}
	}
	return d, truth, nil
}

// MustGenerate is Generate for known-good configurations; it panics on
// configuration errors.
func MustGenerate(cfg Config) (*dataset.Data, *Truth) {
	d, truth, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d, truth
}
