package synth

import (
	"math"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	d, truth, err := Generate(Config{N: 100, M: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 100 || d.M != 50 {
		t.Fatalf("shape %dx%d", d.N, d.M)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(truth.ModuleOf) != 100 || len(truth.CondGroup) != 50 {
		t.Fatal("truth shapes wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, _ := Generate(Config{N: 50, M: 30, Seed: 7})
	b, _, _ := Generate(Config{N: 50, M: 30, Seed: 7})
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("same seed diverged at cell %d", i)
		}
	}
	c, _, _ := Generate(Config{N: 50, M: 30, Seed: 8})
	same := 0
	for i := range a.Values {
		if a.Values[i] == c.Values[i] {
			same++
		}
	}
	if same > len(a.Values)/10 {
		t.Fatalf("different seeds produced %d/%d identical cells", same, len(a.Values))
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{N: 2, M: 50},
		{N: 50, M: 2},
		{N: 10, M: 10, Regulators: 8, Modules: 8},
		{N: 50, M: 50, Noise: -1},
	}
	for i, cfg := range bad {
		cfg.Seed = 1
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAllModulesPopulated(t *testing.T) {
	_, truth, err := Generate(Config{N: 200, M: 40, Modules: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	count := make([]int, truth.NumModules)
	for _, m := range truth.ModuleOf {
		if m >= 0 {
			count[m]++
		}
	}
	for mod, c := range count {
		if c == 0 {
			t.Fatalf("module %d has no members", mod)
		}
	}
}

func TestAllCondGroupsPopulated(t *testing.T) {
	_, truth, err := Generate(Config{N: 50, M: 30, CondGroups: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := make([]int, truth.NumGroups)
	for _, gr := range truth.CondGroup {
		count[gr]++
	}
	for gr, c := range count {
		if c == 0 {
			t.Fatalf("condition group %d empty", gr)
		}
	}
}

func TestRegulatorsHaveNoModule(t *testing.T) {
	d, truth, err := Generate(Config{N: 60, M: 20, Regulators: 5, Modules: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if truth.ModuleOf[i] != -1 {
			t.Fatalf("regulator %d assigned module %d", i, truth.ModuleOf[i])
		}
		if d.Names[i][0] != 'R' {
			t.Fatalf("regulator %d named %q", i, d.Names[i])
		}
	}
	for i := 5; i < 60; i++ {
		if truth.ModuleOf[i] < 0 || truth.ModuleOf[i] >= 4 {
			t.Fatalf("member %d module %d out of range", i, truth.ModuleOf[i])
		}
	}
}

func TestRegulatorIndicesValid(t *testing.T) {
	_, truth, err := Generate(Config{N: 120, M: 30, Regulators: 8, Modules: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for mod, regs := range truth.Regulators {
		if len(regs) == 0 || len(regs) > 3 {
			t.Fatalf("module %d has %d regulators", mod, len(regs))
		}
		seen := map[int]bool{}
		for _, r := range regs {
			if r < 0 || r >= 8 {
				t.Fatalf("module %d regulator %d out of range", mod, r)
			}
			if seen[r] {
				t.Fatalf("module %d repeats regulator %d", mod, r)
			}
			seen[r] = true
		}
	}
}

// TestModuleCoherence checks the generative signal: genes in the same module
// must correlate far more strongly than genes in different modules, which is
// what makes the clustering task solvable.
func TestModuleCoherence(t *testing.T) {
	d, truth, err := Generate(Config{N: 80, M: 100, Regulators: 6, Modules: 4, Noise: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	corr := func(a, b []float64) float64 {
		var sa, sb, saa, sbb, sab float64
		for i := range a {
			sa += a[i]
			sb += b[i]
			saa += a[i] * a[i]
			sbb += b[i] * b[i]
			sab += a[i] * b[i]
		}
		n := float64(len(a))
		cov := sab/n - sa/n*sb/n
		va := saa/n - sa/n*sa/n
		vb := sbb/n - sb/n*sb/n
		return cov / math.Sqrt(va*vb)
	}
	var within, across float64
	var nw, na int
	for i := 6; i < d.N; i++ {
		for j := i + 1; j < d.N; j++ {
			c := corr(d.Row(i), d.Row(j))
			if truth.ModuleOf[i] == truth.ModuleOf[j] {
				within += math.Abs(c)
				nw++
			} else {
				across += math.Abs(c)
				na++
			}
		}
	}
	within /= float64(nw)
	across /= float64(na)
	if within < across+0.2 {
		t.Fatalf("within-module |corr| %v not clearly above across-module %v", within, across)
	}
}

// TestRegulatorSeparatesModule checks the split signal: for some module, its
// true regulator's sign must partition observations into groups with clearly
// different module means.
func TestRegulatorSeparatesModule(t *testing.T) {
	d, truth, err := Generate(Config{N: 60, M: 120, Regulators: 4, Modules: 3, Noise: 0.3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for mod := 0; mod < truth.NumModules && !found; mod++ {
		reg := truth.Regulators[mod][0]
		var hi, lo []float64
		for j := 0; j < d.M; j++ {
			var mean float64
			cnt := 0
			for i := 0; i < d.N; i++ {
				if truth.ModuleOf[i] == mod {
					mean += d.At(i, j)
					cnt++
				}
			}
			mean /= float64(cnt)
			if d.At(reg, j) > 0 {
				hi = append(hi, mean)
			} else {
				lo = append(lo, mean)
			}
		}
		if len(hi) == 0 || len(lo) == 0 {
			continue
		}
		avg := func(xs []float64) float64 {
			var s float64
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		if math.Abs(avg(hi)-avg(lo)) > 0.5 {
			found = true
		}
	}
	if !found {
		t.Fatal("no module separated by its first true regulator")
	}
}

func TestDefaultDerivation(t *testing.T) {
	cfg := Config{N: 350, M: 100}.withDefaults()
	if cfg.Modules != 10 {
		t.Fatalf("modules = %d, want 10", cfg.Modules)
	}
	if cfg.Regulators != 17 {
		t.Fatalf("regulators = %d, want 17", cfg.Regulators)
	}
	if cfg.CondGroups != 10 {
		t.Fatalf("cond groups = %d, want 10", cfg.CondGroups)
	}
	if cfg.Noise != 0.4 {
		t.Fatalf("noise = %v", cfg.Noise)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic on bad config")
		}
	}()
	MustGenerate(Config{N: 1, M: 1})
}

// TestGenerateManyModulesFewPatterns: when modules vastly outnumber the
// distinguishable sign patterns, generation must still terminate (the
// signature-retry budget is finite) and produce a valid data set.
func TestGenerateManyModulesFewPatterns(t *testing.T) {
	d, truth, err := Generate(Config{
		N: 120, M: 20, Modules: 20, Regulators: 4, CondGroups: 2, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if truth.NumModules != 20 {
		t.Fatalf("modules = %d", truth.NumModules)
	}
}
