package module

import (
	"encoding/json"
	"reflect"
	"testing"

	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/wire"
)

func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// learnUnits captures the real units a learning run produces — the exact
// payloads the progress manifest persists.
func learnUnits(t *testing.T) (*score.QData, []*Unit) {
	t.Helper()
	q, moduleVars, _ := fixture(t, 31)
	var units []*Unit
	prog := &Progress{OnUnit: func(u *Unit) error {
		units = append(units, u)
		return nil
	}}
	if _, err := Learn(q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(9), nil, prog); err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("learning produced no units")
	}
	return q, units
}

// TestUnitWireRoundTrip: the binary codec reproduces learned units exactly —
// trees (including the reconstructed internal nodes, validated against the
// full structural invariants), assigned splits with bit-exact posteriors,
// and membership lists.
func TestUnitWireRoundTrip(t *testing.T) {
	q, units := learnUnits(t)
	for _, u := range units {
		e := wire.NewEncoder()
		u.EncodeWire(e)
		d := wire.NewDecoder(e.Bytes())
		got := DecodeUnitWire(d)
		if err := d.Err(); err != nil {
			t.Fatalf("module %d: decode: %v", u.Module, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("module %d: %d bytes left over", u.Module, d.Remaining())
		}
		if !reflect.DeepEqual(got, u) {
			t.Fatalf("module %d: decoded unit differs from original", u.Module)
		}
		for ti, tr := range got.Trees {
			if err := tr.CheckInvariants(q); err != nil {
				t.Fatalf("module %d tree %d: reconstructed tree violates invariants: %v", u.Module, ti, err)
			}
		}
	}
}

// TestUnitWireCompact pins the size motivation: the binary unit is several
// times smaller than its JSON manifest form.
func TestUnitWireCompact(t *testing.T) {
	_, units := learnUnits(t)
	var binTotal, jsonTotal int
	for _, u := range units {
		e := wire.NewEncoder()
		u.EncodeWire(e)
		binTotal += len(e.Bytes())
		jsonTotal += len(jsonBytes(t, u))
	}
	if binTotal*4 > jsonTotal {
		t.Fatalf("binary units %dB vs JSON %dB — expected ≥4× smaller", binTotal, jsonTotal)
	}
}

// TestUnitWireCorruptFailsCleanly: truncations and bit flips of a valid
// encoding either fail with a decoder error or decode into *some* unit —
// they never panic. (Semantic validation against the consensus modules is
// loadProgress's job.)
func TestUnitWireCorruptFailsCleanly(t *testing.T) {
	_, units := learnUnits(t)
	e := wire.NewEncoder()
	units[0].EncodeWire(e)
	data := e.Bytes()
	for cut := 0; cut < len(data); cut += 7 {
		d := wire.NewDecoder(data[:cut])
		u := DecodeUnitWire(d)
		if u != nil && d.Err() != nil {
			t.Fatalf("cut %d: decoder returned both a unit and error %v", cut, d.Err())
		}
	}
	for i := 0; i < len(data); i += 11 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		d := wire.NewDecoder(mut)
		_ = DecodeUnitWire(d) // must not panic
	}
}
