package module

import (
	"reflect"
	"testing"

	"parsimone/internal/comm"
	"parsimone/internal/ganesh"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
	"parsimone/internal/trace"
)

func fixture(t testing.TB, seed uint64) (*score.QData, [][]int, *synth.Truth) {
	t.Helper()
	d, truth, err := synth.Generate(synth.Config{
		N: 24, M: 30, Regulators: 3, Modules: 2, Noise: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	moduleVars := make([][]int, truth.NumModules)
	for x, mod := range truth.ModuleOf {
		if mod >= 0 {
			moduleVars[mod] = append(moduleVars[mod], x)
		}
	}
	return q, moduleVars, truth
}

func mustLearn(t testing.TB, q *score.QData, pr score.Prior, moduleVars [][]int, par Params, g *prng.MRG3, wl *trace.Workload) *Result {
	t.Helper()
	res, err := Learn(q, pr, moduleVars, par, g, wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func defaultParams() Params {
	return Params{
		Tree:   ganesh.ObsParams{Updates: 3, Burnin: 1},
		Splits: splits.Params{NumSplits: 2, MaxSteps: 24},
	}
}

func TestLearnBasic(t *testing.T) {
	q, moduleVars, _ := fixture(t, 1)
	res := mustLearn(t, q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(3), nil)
	if len(res.Modules) != 2 {
		t.Fatalf("%d modules", len(res.Modules))
	}
	for mi, mod := range res.Modules {
		if len(mod.Trees) != 2 { // Updates − Burnin
			t.Fatalf("module %d: %d trees, want 2", mi, len(mod.Trees))
		}
		for _, tr := range mod.Trees {
			if err := tr.CheckInvariants(q); err != nil {
				t.Fatalf("module %d: %v", mi, err)
			}
		}
		if len(mod.ParentsWeighted) == 0 {
			t.Fatalf("module %d has no weighted parents", mi)
		}
	}
}

func TestLearnDeterministic(t *testing.T) {
	q, moduleVars, _ := fixture(t, 2)
	a := mustLearn(t, q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(5), nil)
	b := mustLearn(t, q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(5), nil)
	if !reflect.DeepEqual(a.Splits, b.Splits) {
		t.Fatal("splits differ across identical runs")
	}
	for mi := range a.Modules {
		if !reflect.DeepEqual(a.Modules[mi].ParentsWeighted, b.Modules[mi].ParentsWeighted) {
			t.Fatal("parent scores differ across identical runs")
		}
	}
}

// TestParallelMatchesSequential: the end-to-end §4.2 contract for the entire
// third task.
func TestParallelMatchesSequential(t *testing.T) {
	q, moduleVars, _ := fixture(t, 3)
	pr := score.DefaultPrior()
	par := defaultParams()
	want := mustLearn(t, q, pr, moduleVars, par, prng.New(7), nil)
	for _, p := range []int{1, 2, 3, 4, 7} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			got, err := LearnParallel(c, q, pr, moduleVars, par, prng.New(7), nil)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got.Splits, want.Splits) {
				t.Errorf("p=%d rank %d: splits differ", p, c.Rank())
			}
			for mi := range want.Modules {
				if !reflect.DeepEqual(got.Modules[mi].ParentsWeighted, want.Modules[mi].ParentsWeighted) {
					t.Errorf("p=%d rank %d module %d: parents differ", p, c.Rank(), mi)
				}
				if !reflect.DeepEqual(got.Modules[mi].ParentsUniform, want.Modules[mi].ParentsUniform) {
					t.Errorf("p=%d rank %d module %d: uniform parents differ", p, c.Rank(), mi)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestTrueRegulatorsRecovered: with the candidate-parent list restricted to
// the regulator variables (the standard Lemon-Tree usage — member genes
// correlate with their own module as strongly as the driver does, which is
// why candidate lists exist), each module's top parents must favour its true
// regulators.
func TestTrueRegulatorsRecovered(t *testing.T) {
	q, moduleVars, truth := fixture(t, 4)
	res := mustLearn(t, q, score.DefaultPrior(), moduleVars,
		Params{
			Tree:   ganesh.ObsParams{Updates: 4, Burnin: 1},
			Splits: splits.Params{NumSplits: 4, Candidates: []int{0, 1, 2}},
		}, prng.New(9), nil)
	hits := 0
	for mi, mod := range res.Modules {
		if len(mod.ParentsWeighted) == 0 {
			continue
		}
		isTrue := map[int]bool{}
		for _, r := range truth.Regulators[mi] {
			isTrue[r] = true
		}
		if isTrue[mod.ParentsWeighted[0].Parent] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no module's top-ranked candidate parent is a true regulator")
	}
}

func TestParentScoresSortedAndBounded(t *testing.T) {
	q, moduleVars, _ := fixture(t, 5)
	res := mustLearn(t, q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(11), nil)
	for _, mod := range res.Modules {
		for i, ps := range mod.ParentsWeighted {
			if ps.Score < 0 || ps.Score > 1 {
				t.Fatalf("parent score %v out of [0,1]", ps.Score)
			}
			if ps.Count <= 0 {
				t.Fatal("parent with zero split count")
			}
			if i > 0 && mod.ParentsWeighted[i-1].Score < ps.Score {
				t.Fatal("parents not sorted by descending score")
			}
		}
	}
}

func TestScoreParentsAggregation(t *testing.T) {
	assigned := []splits.Assigned{
		{Module: 0, Parent: 5, Posterior: 1.0, NodeObs: 10},
		{Module: 0, Parent: 5, Posterior: 0.5, NodeObs: 30},
		{Module: 0, Parent: 7, Posterior: 0.8, NodeObs: 10},
		{Module: 1, Parent: 5, Posterior: 0.1, NodeObs: 10}, // other module
	}
	got := scoreParents(assigned, 0)
	if len(got) != 2 {
		t.Fatalf("%d parents, want 2", len(got))
	}
	// Parent 7: score 0.8. Parent 5: (1*10 + 0.5*30)/40 = 0.625.
	if got[0].Parent != 7 || got[0].Score != 0.8 {
		t.Fatalf("top parent %+v", got[0])
	}
	if got[1].Parent != 5 || got[1].Score != 0.625 || got[1].Count != 2 {
		t.Fatalf("second parent %+v", got[1])
	}
}

func TestScoreParentsEmpty(t *testing.T) {
	if got := scoreParents(nil, 0); len(got) != 0 {
		t.Fatalf("empty input gave %v", got)
	}
}

func TestWorkloadRecorded(t *testing.T) {
	q, moduleVars, _ := fixture(t, 6)
	wl := &trace.Workload{}
	mustLearn(t, q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(13), wl)
	if wl.Phase(splits.PhaseAssign) == nil {
		t.Fatal("split phase not recorded")
	}
	if wl.Phase(ganesh.PhaseObsReassign) == nil {
		t.Fatal("observation clustering phase not recorded")
	}
	// The split phase must dominate, as in the paper (>90 % §3.2.3).
	assignCost := wl.Phase(splits.PhaseAssign).TotalCost()
	if frac := assignCost / wl.TotalCost(); frac < 0.5 {
		t.Fatalf("split assignment is only %.0f%% of module-learning cost", frac*100)
	}
}

func BenchmarkLearn(b *testing.B) {
	q, moduleVars, _ := fixture(b, 1)
	pr := score.DefaultPrior()
	par := defaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustLearn(b, q, pr, moduleVars, par, prng.New(uint64(i)), nil)
	}
}
