// Package module implements the third Lemon-Tree task (§2.2.3, Algorithm 6
// of the paper): for every consensus module, sample observation clusterings
// with GaneSH (variables pinned), build an ensemble of regression trees by
// Bayesian hierarchical merging, assign parent splits to all internal tree
// nodes, and aggregate the chosen splits into parent (regulator) scores.
//
// The parent score of variable X for a module is the average of the
// posteriors of the chosen splits on X, weighted by the number of
// observations at the node each split was assigned to (§2.2.3 step 3). Both
// the posterior-weighted and the uniformly sampled split sets are scored;
// downstream analyses compare the two to assess regulator significance.
package module

import (
	"sort"

	"parsimone/internal/comm"
	"parsimone/internal/ganesh"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/trace"
	"parsimone/internal/tree"
)

// Params configures module learning.
type Params struct {
	// Tree controls the per-module observation-clustering sampler:
	// Updates−Burnin regression trees are built per module.
	Tree ganesh.ObsParams
	// Splits controls candidate-parent split assignment.
	Splits splits.Params
}

// ParentScore is one scored regulator of a module.
type ParentScore struct {
	// Parent is the variable index; Score its weighted-average posterior;
	// Count the number of chosen splits it appeared in.
	Parent int
	Score  float64
	Count  int
}

// Module is the learned result for one consensus module.
type Module struct {
	// Vars are the module's member variables.
	Vars []int
	// Trees is the learned regression-tree ensemble.
	Trees []*tree.Tree
	// ParentsWeighted scores parents from the posterior-weighted split
	// sample; ParentsUniform from the uniform split sample. Both sorted
	// by descending score (parent index ascending on ties).
	ParentsWeighted []ParentScore
	ParentsUniform  []ParentScore
}

// Result is the outcome of the module-learning task.
type Result struct {
	Modules []*Module
	// Splits is the raw split assignment the parent scores derive from.
	Splits splits.Result
}

// Unit is the self-contained outcome of learning one module: its
// regression-tree ensemble and its assigned splits. Because every module
// consumes its own numbered substream (see learn), a Unit depends only on
// the module's index, member variables, and the run configuration — it is
// the granularity of mid-task checkpointing, and a resumed Unit never
// needs recomputing. Parent scores are cheap and derived, so they are
// recomputed rather than persisted.
type Unit struct {
	Module   int               `json:"module"`
	Vars     []int             `json:"vars"`
	Trees    []*tree.Tree      `json:"trees"`
	Weighted []splits.Assigned `json:"weighted"`
	Uniform  []splits.Assigned `json:"uniform"`
}

// Progress wires module-granular checkpointing and fault injection into
// Learn/LearnParallel. All fields are optional; a nil *Progress disables
// both. In parallel runs every rank must hold the same Completed set, or
// ranks would disagree on which collectives to enter.
type Progress struct {
	// Completed holds previously learned units by module index; they are
	// reused verbatim instead of being recomputed.
	Completed map[int]*Unit
	// OnStart, when non-nil, runs before module mi is learned (not for
	// resumed units). The fault injector crashes here to model a failure
	// at a module boundary.
	OnStart func(mi int)
	// OnUnit, when non-nil, runs after module mi completes; an error
	// aborts learning (a checkpoint that cannot be persisted).
	OnUnit func(u *Unit) error
}

// learn drives Algorithm 6 against either the sequential or parallel
// primitives.
type primitives struct {
	sampleObs func(vars []int, par ganesh.ObsParams, g *prng.MRG3) [][][]int
	buildTree func(vars []int, clusters [][]int) *tree.Tree
	assign    func(modules [][]int, trees [][]*tree.Tree, par splits.Params, g *prng.MRG3) splits.Result
}

func learn(moduleVars [][]int, par Params, g *prng.MRG3, prim primitives, prog *Progress) (*Result, error) {
	res := &Result{}
	for mi, vars := range moduleVars {
		var u *Unit
		if prog != nil {
			u = prog.Completed[mi]
		}
		if u == nil {
			if prog != nil && prog.OnStart != nil {
				prog.OnStart(mi)
			}
			// Each module draws from its own numbered substream, so its
			// result is independent of which earlier modules were
			// recomputed vs resumed — the property that makes mid-task
			// resume bit-exact without persisting PRNG state.
			gi := g.Substream(uint64(mi + 1))
			u = &Unit{Module: mi, Vars: append([]int(nil), vars...)}
			for _, clusters := range prim.sampleObs(vars, par.Tree, gi) {
				u.Trees = append(u.Trees, prim.buildTree(vars, clusters))
			}
			sp := prim.assign([][]int{vars}, [][]*tree.Tree{u.Trees}, par.Splits, gi)
			u.Weighted = renumber(sp.Weighted, mi)
			u.Uniform = renumber(sp.Uniform, mi)
			if prog != nil && prog.OnUnit != nil {
				if err := prog.OnUnit(u); err != nil {
					return nil, err
				}
			}
		}
		res.Modules = append(res.Modules, &Module{Vars: append([]int(nil), u.Vars...), Trees: u.Trees})
		res.Splits.Weighted = append(res.Splits.Weighted, u.Weighted...)
		res.Splits.Uniform = append(res.Splits.Uniform, u.Uniform...)
	}
	for mi, mod := range res.Modules {
		mod.ParentsWeighted = scoreParents(res.Splits.Weighted, mi)
		mod.ParentsUniform = scoreParents(res.Splits.Uniform, mi)
	}
	return res, nil
}

// renumber rewrites the module index of a single-module assignment (always
// 0) to the module's global index.
func renumber(assigned []splits.Assigned, mi int) []splits.Assigned {
	out := append([]splits.Assigned(nil), assigned...)
	for i := range out {
		out[i].Module = mi
	}
	return out
}

// Learn runs the task sequentially. If wl is non-nil, parallelizable work is
// recorded for scaling analysis.
func Learn(q *score.QData, pr score.Prior, moduleVars [][]int, par Params, g *prng.MRG3, wl *trace.Workload, prog *Progress) (*Result, error) {
	return learn(moduleVars, par, g, primitives{
		sampleObs: func(vars []int, op ganesh.ObsParams, g *prng.MRG3) [][][]int {
			samples, _ := ganesh.SampleObsClusterings(q, pr, vars, op, g, wl)
			return samples
		},
		buildTree: func(vars []int, clusters [][]int) *tree.Tree {
			return tree.Build(q, pr, vars, clusters, wl)
		},
		assign: func(modules [][]int, trees [][]*tree.Tree, sp splits.Params, g *prng.MRG3) splits.Result {
			return splits.Learn(q, pr, modules, trees, sp, g, wl)
		},
	}, prog)
}

// LearnParallel runs the task across c's ranks; results are identical to
// Learn on every rank for every rank count.
func LearnParallel(c *comm.Comm, q *score.QData, pr score.Prior, moduleVars [][]int, par Params, g *prng.MRG3, prog *Progress) (*Result, error) {
	return learn(moduleVars, par, g, primitives{
		sampleObs: func(vars []int, op ganesh.ObsParams, g *prng.MRG3) [][][]int {
			samples, _ := ganesh.SampleObsClusteringsParallel(c, q, pr, vars, op, g)
			return samples
		},
		buildTree: func(vars []int, clusters [][]int) *tree.Tree {
			return tree.BuildParallel(c, q, pr, vars, clusters)
		},
		assign: func(modules [][]int, trees [][]*tree.Tree, sp splits.Params, g *prng.MRG3) splits.Result {
			return splits.LearnParallel(c, q, pr, modules, trees, sp, g)
		},
	}, prog)
}

// scoreParents aggregates the chosen splits of one module into parent
// scores: Score(X) = Σ posterior·|N| / Σ |N| over splits on X.
func scoreParents(assigned []splits.Assigned, module int) []ParentScore {
	type acc struct {
		num, den float64
		count    int
	}
	byParent := map[int]*acc{}
	for _, a := range assigned {
		if a.Module != module {
			continue
		}
		s := byParent[a.Parent]
		if s == nil {
			s = &acc{}
			byParent[a.Parent] = s
		}
		w := float64(a.NodeObs)
		s.num += a.Posterior * w
		s.den += w
		s.count++
	}
	out := make([]ParentScore, 0, len(byParent))
	for parent, s := range byParent {
		out = append(out, ParentScore{Parent: parent, Score: s.num / s.den, Count: s.count})
	}
	sort.Slice(out, func(i, j int) bool {
		//parsivet:floateq — exact compare of identical-provenance scores; ties break on Parent
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Parent < out[j].Parent
	})
	return out
}
