// Package module implements the third Lemon-Tree task (§2.2.3, Algorithm 6
// of the paper): for every consensus module, sample observation clusterings
// with GaneSH (variables pinned), build an ensemble of regression trees by
// Bayesian hierarchical merging, assign parent splits to all internal tree
// nodes, and aggregate the chosen splits into parent (regulator) scores.
//
// The parent score of variable X for a module is the average of the
// posteriors of the chosen splits on X, weighted by the number of
// observations at the node each split was assigned to (§2.2.3 step 3). Both
// the posterior-weighted and the uniformly sampled split sets are scored;
// downstream analyses compare the two to assess regulator significance.
package module

import (
	"sort"

	"parsimone/internal/comm"
	"parsimone/internal/ganesh"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/trace"
	"parsimone/internal/tree"
)

// Params configures module learning.
type Params struct {
	// Tree controls the per-module observation-clustering sampler:
	// Updates−Burnin regression trees are built per module.
	Tree ganesh.ObsParams
	// Splits controls candidate-parent split assignment.
	Splits splits.Params
}

// ParentScore is one scored regulator of a module.
type ParentScore struct {
	// Parent is the variable index; Score its weighted-average posterior;
	// Count the number of chosen splits it appeared in.
	Parent int
	Score  float64
	Count  int
}

// Module is the learned result for one consensus module.
type Module struct {
	// Vars are the module's member variables.
	Vars []int
	// Trees is the learned regression-tree ensemble.
	Trees []*tree.Tree
	// ParentsWeighted scores parents from the posterior-weighted split
	// sample; ParentsUniform from the uniform split sample. Both sorted
	// by descending score (parent index ascending on ties).
	ParentsWeighted []ParentScore
	ParentsUniform  []ParentScore
}

// Result is the outcome of the module-learning task.
type Result struct {
	Modules []*Module
	// Splits is the raw split assignment the parent scores derive from.
	Splits splits.Result
}

// learn drives Algorithm 6 against either the sequential or parallel
// primitives.
type primitives struct {
	sampleObs func(vars []int, par ganesh.ObsParams, g *prng.MRG3) [][][]int
	buildTree func(vars []int, clusters [][]int) *tree.Tree
	assign    func(modules [][]int, trees [][]*tree.Tree, par splits.Params, g *prng.MRG3) splits.Result
}

func learn(moduleVars [][]int, par Params, g *prng.MRG3, prim primitives) *Result {
	res := &Result{}
	trees := make([][]*tree.Tree, len(moduleVars))
	for mi, vars := range moduleVars {
		mod := &Module{Vars: append([]int(nil), vars...)}
		samples := prim.sampleObs(vars, par.Tree, g)
		for _, clusters := range samples {
			mod.Trees = append(mod.Trees, prim.buildTree(vars, clusters))
		}
		trees[mi] = mod.Trees
		res.Modules = append(res.Modules, mod)
	}
	res.Splits = prim.assign(moduleVars, trees, par.Splits, g)
	for mi, mod := range res.Modules {
		mod.ParentsWeighted = scoreParents(res.Splits.Weighted, mi)
		mod.ParentsUniform = scoreParents(res.Splits.Uniform, mi)
	}
	return res
}

// Learn runs the task sequentially. If wl is non-nil, parallelizable work is
// recorded for scaling analysis.
func Learn(q *score.QData, pr score.Prior, moduleVars [][]int, par Params, g *prng.MRG3, wl *trace.Workload) *Result {
	return learn(moduleVars, par, g, primitives{
		sampleObs: func(vars []int, op ganesh.ObsParams, g *prng.MRG3) [][][]int {
			samples, _ := ganesh.SampleObsClusterings(q, pr, vars, op, g, wl)
			return samples
		},
		buildTree: func(vars []int, clusters [][]int) *tree.Tree {
			return tree.Build(q, pr, vars, clusters, wl)
		},
		assign: func(modules [][]int, trees [][]*tree.Tree, sp splits.Params, g *prng.MRG3) splits.Result {
			return splits.Learn(q, pr, modules, trees, sp, g, wl)
		},
	})
}

// LearnParallel runs the task across c's ranks; results are identical to
// Learn on every rank for every rank count.
func LearnParallel(c *comm.Comm, q *score.QData, pr score.Prior, moduleVars [][]int, par Params, g *prng.MRG3) *Result {
	return learn(moduleVars, par, g, primitives{
		sampleObs: func(vars []int, op ganesh.ObsParams, g *prng.MRG3) [][][]int {
			samples, _ := ganesh.SampleObsClusteringsParallel(c, q, pr, vars, op, g)
			return samples
		},
		buildTree: func(vars []int, clusters [][]int) *tree.Tree {
			return tree.BuildParallel(c, q, pr, vars, clusters)
		},
		assign: func(modules [][]int, trees [][]*tree.Tree, sp splits.Params, g *prng.MRG3) splits.Result {
			return splits.LearnParallel(c, q, pr, modules, trees, sp, g)
		},
	})
}

// scoreParents aggregates the chosen splits of one module into parent
// scores: Score(X) = Σ posterior·|N| / Σ |N| over splits on X.
func scoreParents(assigned []splits.Assigned, module int) []ParentScore {
	type acc struct {
		num, den float64
		count    int
	}
	byParent := map[int]*acc{}
	for _, a := range assigned {
		if a.Module != module {
			continue
		}
		s := byParent[a.Parent]
		if s == nil {
			s = &acc{}
			byParent[a.Parent] = s
		}
		w := float64(a.NodeObs)
		s.num += a.Posterior * w
		s.den += w
		s.count++
	}
	out := make([]ParentScore, 0, len(byParent))
	for parent, s := range byParent {
		out = append(out, ParentScore{Parent: parent, Score: s.num / s.den, Count: s.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Parent < out[j].Parent
	})
	return out
}
