// Conditional probability distributions. A module network's semantics
// (§2.1) is that every variable in a module shares the module's CPD: a
// regression tree whose internal nodes test parent variables against split
// values and whose leaves carry a normal distribution over the module's
// expression. This file turns a learned module (tree structure + assigned
// splits) into an executable CPD, which is what downstream applications —
// prediction, scoring held-out data, condition-specific reasoning — consume.

package module

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/tree"
)

// CPDNode is one node of an executable regression-tree CPD.
type CPDNode struct {
	// Parent and Value define the test "x_Parent ≤ Value → Left" for
	// internal nodes (Parent is -1 at leaves and at internal nodes that
	// received no split).
	Parent int
	Value  int64
	// Mean and Variance are the leaf's normal distribution (also
	// populated at internal nodes, as the fallback prediction when the
	// node has no usable split).
	Mean, Variance float64
	// Obs is the number of training observations at the node.
	Obs         int
	Left, Right *CPDNode
}

// IsLeaf reports whether the node has no children.
func (n *CPDNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// MinSplitMargin is the minimum difference between the children's ≤-side
// fractions for a split to be installed as a routing test.
const MinSplitMargin = 0.3

// CPD is the shared conditional distribution of one module: an ensemble of
// regression trees (one per tree in the module's learned ensemble, matching
// Lemon-Tree's R trees per module), whose predictions are mixture-averaged.
type CPD struct {
	Module int
	Roots  []*CPDNode
}

// Root returns the first tree's root (the single-tree view).
func (c *CPD) Root() *CPDNode { return c.Roots[0] }

// BuildCPD assembles the executable CPD of module mi from its regression
// tree ensemble and the weighted splits assigned to the trees' nodes (the
// highest-posterior split per node is installed as the node's test).
// Because a tree's children arise from agglomerative merging, a split
// carries no inherent orientation; the ≤-side is routed to whichever child
// holds the majority of the node's ≤-side training observations, and only
// decisive splits (margin ≥ MinSplitMargin) are installed — an ambiguous
// split would mis-route held-out observations into confidently wrong
// leaves. Nodes without an installed split keep their training distribution
// as a fallback. It returns an error if the module has no trees.
func BuildCPD(mi int, mod *Module, assigned []splits.Assigned, q *score.QData, pr score.Prior) (*CPD, error) {
	if len(mod.Trees) == 0 {
		return nil, fmt.Errorf("module: module %d has no trees", mi)
	}
	cpd := &CPD{Module: mi}
	for ti, t := range mod.Trees {
		internal := t.InternalNodes()
		// Best split per internal node index of this tree.
		best := map[int]splits.Assigned{}
		for _, a := range assigned {
			if a.Module != mi || a.Tree != ti {
				continue
			}
			if cur, ok := best[a.Node]; !ok || a.Posterior > cur.Posterior {
				best[a.Node] = a
			}
		}
		nodeIndex := map[*tree.Node]int{}
		for i, n := range internal {
			nodeIndex[n] = i
		}
		var convert func(n *tree.Node) *CPDNode
		convert = func(n *tree.Node) *CPDNode {
			c := &CPDNode{Parent: -1, Obs: len(n.Obs)}
			c.Mean, c.Variance = pr.Predictive(n.Stats)
			if n.IsLeaf() {
				return c
			}
			c.Left = convert(n.Left)
			c.Right = convert(n.Right)
			if a, ok := best[nodeIndex[n]]; ok {
				leLeft, leRight := 0, 0
				for _, j := range n.Left.Obs {
					if q.At(a.Parent, j) <= a.Value {
						leLeft++
					}
				}
				for _, j := range n.Right.Obs {
					if q.At(a.Parent, j) <= a.Value {
						leRight++
					}
				}
				fracLeft := float64(leLeft) / float64(len(n.Left.Obs))
				fracRight := float64(leRight) / float64(len(n.Right.Obs))
				if math.Abs(fracLeft-fracRight) >= MinSplitMargin {
					c.Parent = a.Parent
					c.Value = a.Value
					if fracRight > fracLeft {
						c.Left, c.Right = c.Right, c.Left
					}
				}
			}
			return c
		}
		cpd.Roots = append(cpd.Roots, convert(t.Root))
	}
	return cpd, nil
}

// Predict routes a full observation vector (quantized, indexed by variable)
// down every tree of the ensemble and returns the mixture distribution of
// the reached leaves — ensemble averaging reduces the variance of any
// single tree's routing.
func (c *CPD) Predict(obs []int64) (mean, variance float64) {
	var sumMean, sumSecond float64
	for _, root := range c.Roots {
		n := root
		for !n.IsLeaf() {
			if n.Parent < 0 {
				break // unsplit internal node: stop with its distribution
			}
			if obs[n.Parent] <= n.Value {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		sumMean += n.Mean
		sumSecond += n.Variance + n.Mean*n.Mean
	}
	k := float64(len(c.Roots))
	mean = sumMean / k
	variance = sumSecond/k - mean*mean
	if variance < 1e-6 {
		variance = 1e-6
	}
	return mean, variance
}

// LogLikelihood returns the Gaussian log-density of value x (quantized)
// under the CPD's prediction for the observation vector.
func (c *CPD) LogLikelihood(obs []int64, x int64) float64 {
	mean, variance := c.Predict(obs)
	d := score.Dequantize(x) - mean
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}

// Depth returns the longest root-to-leaf path length over all trees of the
// ensemble (a single leaf has depth 0).
func (c *CPD) Depth() int {
	var walk func(n *CPDNode) int
	walk = func(n *CPDNode) int {
		if n == nil || n.IsLeaf() {
			return 0
		}
		return 1 + max(walk(n.Left), walk(n.Right))
	}
	depth := 0
	for _, root := range c.Roots {
		depth = max(depth, walk(root))
	}
	return depth
}

// BuildCPDs builds one CPD per module from a learning result.
func BuildCPDs(res *Result, q *score.QData, pr score.Prior) ([]*CPD, error) {
	out := make([]*CPD, len(res.Modules))
	for mi, mod := range res.Modules {
		cpd, err := BuildCPD(mi, mod, res.Splits.Weighted, q, pr)
		if err != nil {
			return nil, err
		}
		out[mi] = cpd
	}
	return out, nil
}

// cpdNodeJSON is the serialized form of a CPDNode.
type cpdNodeJSON struct {
	Parent   int          `json:"parent"`
	Value    int64        `json:"value,omitempty"`
	Mean     float64      `json:"mean"`
	Variance float64      `json:"variance"`
	Obs      int          `json:"obs"`
	Left     *cpdNodeJSON `json:"left,omitempty"`
	Right    *cpdNodeJSON `json:"right,omitempty"`
}

func toJSON(n *CPDNode) *cpdNodeJSON {
	if n == nil {
		return nil
	}
	return &cpdNodeJSON{
		Parent: n.Parent, Value: n.Value,
		Mean: n.Mean, Variance: n.Variance, Obs: n.Obs,
		Left: toJSON(n.Left), Right: toJSON(n.Right),
	}
}

func fromJSON(j *cpdNodeJSON) *CPDNode {
	if j == nil {
		return nil
	}
	return &CPDNode{
		Parent: j.Parent, Value: j.Value,
		Mean: j.Mean, Variance: j.Variance, Obs: j.Obs,
		Left: fromJSON(j.Left), Right: fromJSON(j.Right),
	}
}

// WriteJSON serializes the CPD ensemble.
func (c *CPD) WriteJSON(w io.Writer) error {
	roots := make([]*cpdNodeJSON, len(c.Roots))
	for i, r := range c.Roots {
		roots[i] = toJSON(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Module int            `json:"module"`
		Roots  []*cpdNodeJSON `json:"roots"`
	}{Module: c.Module, Roots: roots})
}

// ReadCPDJSON parses a CPD written by WriteJSON.
func ReadCPDJSON(r io.Reader) (*CPD, error) {
	var j struct {
		Module int            `json:"module"`
		Roots  []*cpdNodeJSON `json:"roots"`
	}
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, err
	}
	if len(j.Roots) == 0 {
		return nil, fmt.Errorf("module: CPD JSON has no trees")
	}
	c := &CPD{Module: j.Module}
	for _, root := range j.Roots {
		c.Roots = append(c.Roots, fromJSON(root))
	}
	return c, nil
}
