// Binary (wire-format) codec for learned module units — the payload of the
// per-module progress manifest (checkpoint v3, DESIGN §12). A Unit is
// exactly what mid-task resume replays, so the codec must round-trip every
// field bit-identically: the tree and split codecs it composes encode
// integer statistics exactly and posteriors as raw IEEE-754 bits.

package module

import (
	"parsimone/internal/splits"
	"parsimone/internal/tree"
	"parsimone/internal/wire"
)

// EncodeWire appends the unit to e.
func (u *Unit) EncodeWire(e *wire.Encoder) {
	e.Int(u.Module)
	e.SortedInts(u.Vars)
	e.Uvarint(uint64(len(u.Trees)))
	for _, t := range u.Trees {
		t.EncodeWire(e)
	}
	splits.EncodeAssigned(e, u.Weighted)
	splits.EncodeAssigned(e, u.Uniform)
}

// DecodeUnitWire reads a unit written by EncodeWire. Errors are reported
// through d's sticky error; the result is nil once d has failed.
func DecodeUnitWire(d *wire.Decoder) *Unit {
	u := &Unit{
		Module: d.Int(),
		Vars:   d.SortedInts(),
	}
	// A tree costs at least its empty Vars list and one node tag.
	n := d.Count(2)
	if d.Err() != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		t := tree.DecodeWire(d)
		if d.Err() != nil {
			return nil
		}
		u.Trees = append(u.Trees, t)
	}
	u.Weighted = splits.DecodeAssigned(d)
	u.Uniform = splits.DecodeAssigned(d)
	if d.Err() != nil {
		return nil
	}
	return u
}
