package module

import (
	"bytes"
	"math"
	"testing"

	"parsimone/internal/prng"
	"parsimone/internal/score"
)

func learnForCPD(t *testing.T, seed uint64) (*score.QData, *Result) {
	t.Helper()
	q, moduleVars, _ := fixture(t, seed)
	res := mustLearn(t, q, score.DefaultPrior(), moduleVars, defaultParams(), prng.New(seed+50), nil)
	return q, res
}

func TestBuildCPDs(t *testing.T) {
	q, res := learnForCPD(t, 21)
	cpds, err := BuildCPDs(res, q, score.DefaultPrior())
	if err != nil {
		t.Fatal(err)
	}
	if len(cpds) != len(res.Modules) {
		t.Fatalf("%d CPDs for %d modules", len(cpds), len(res.Modules))
	}
	for mi, cpd := range cpds {
		if cpd.Module != mi || len(cpd.Roots) == 0 {
			t.Fatalf("CPD %d malformed", mi)
		}
	}
}

func TestBuildCPDNoTrees(t *testing.T) {
	if _, err := BuildCPD(0, &Module{}, nil, nil, score.DefaultPrior()); err == nil {
		t.Fatal("module without trees accepted")
	}
}

func TestCPDStructureMatchesTree(t *testing.T) {
	q, res := learnForCPD(t, 22)
	cpd, err := BuildCPD(0, res.Modules[0], res.Splits.Weighted, q, score.DefaultPrior())
	if err != nil {
		t.Fatal(err)
	}
	// Node counts of the CPD equal the source tree's.
	var count func(n *CPDNode) int
	count = func(n *CPDNode) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	src := res.Modules[0].Trees[0]
	want := len(src.InternalNodes()) + len(src.Leaves())
	if got := count(cpd.Root()); got != want {
		t.Fatalf("CPD tree 0 has %d nodes, tree has %d", got, want)
	}
	if len(cpd.Roots) != len(res.Modules[0].Trees) {
		t.Fatalf("CPD has %d trees, module has %d", len(cpd.Roots), len(res.Modules[0].Trees))
	}
	if cpd.Depth() < 1 {
		t.Fatal("expected a non-trivial tree")
	}
}

func TestCPDLeafDistributionsFinite(t *testing.T) {
	q, res := learnForCPD(t, 23)
	cpds, err := BuildCPDs(res, q, score.DefaultPrior())
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *CPDNode)
	walk = func(n *CPDNode) {
		if n == nil {
			return
		}
		if math.IsNaN(n.Mean) || math.IsInf(n.Mean, 0) || n.Variance <= 0 {
			t.Fatalf("bad node distribution mean=%v var=%v", n.Mean, n.Variance)
		}
		walk(n.Left)
		walk(n.Right)
	}
	for _, cpd := range cpds {
		for _, root := range cpd.Roots {
			walk(root)
		}
	}
}

// TestCPDPredictionTracksTrainingData: routing training observations
// through the CPDs must predict module means better than the global module
// mean for at least one module — across several data seeds, since any
// single small instance can learn weak trees.
func TestCPDPredictionTracksTrainingData(t *testing.T) {
	improved := 0
	for _, seed := range []uint64{24, 25, 26} {
		q, res := learnForCPD(t, seed)
		cpds, err := BuildCPDs(res, q, score.DefaultPrior())
		if err != nil {
			t.Fatal(err)
		}
		for mi, cpd := range cpds {
			vars := res.Modules[mi].Vars
			gMean, _ := score.DefaultPrior().Predictive(statsOfModule(q, vars))
			var errCPD, errGlobal float64
			for j := 0; j < q.M; j++ {
				obs := make([]int64, q.N)
				for x := 0; x < q.N; x++ {
					obs[x] = q.At(x, j)
				}
				pred, _ := cpd.Predict(obs)
				var actual float64
				for _, x := range vars {
					actual += score.Dequantize(q.At(x, j))
				}
				actual /= float64(len(vars))
				errCPD += (pred - actual) * (pred - actual)
				errGlobal += (gMean - actual) * (gMean - actual)
			}
			if errCPD < errGlobal {
				improved++
			}
		}
	}
	if improved == 0 {
		t.Fatal("no module's CPD beats the global-mean predictor across three data seeds")
	}
}

func statsOfModule(q *score.QData, vars []int) score.Stats {
	var s score.Stats
	for _, x := range vars {
		for _, v := range q.Row(x) {
			s.Add(v)
		}
	}
	return s
}

func TestCPDLogLikelihoodFinite(t *testing.T) {
	q, res := learnForCPD(t, 25)
	cpds, err := BuildCPDs(res, q, score.DefaultPrior())
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]int64, q.N)
	for x := 0; x < q.N; x++ {
		obs[x] = q.At(x, 0)
	}
	for _, cpd := range cpds {
		ll := cpd.LogLikelihood(obs, q.At(res.Modules[cpd.Module].Vars[0], 0))
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			t.Fatalf("log-likelihood %v", ll)
		}
	}
}

// TestCPDLikelihoodPrefersOwnData: a module's CPD should assign higher
// total likelihood to its own members' values than to values of an
// anti-correlated foreign module... at minimum, held-in data should beat
// random noise values.
func TestCPDLikelihoodPrefersOwnData(t *testing.T) {
	q, res := learnForCPD(t, 26)
	cpds, err := BuildCPDs(res, q, score.DefaultPrior())
	if err != nil {
		t.Fatal(err)
	}
	g := prng.New(99)
	better := 0
	for _, cpd := range cpds {
		vars := res.Modules[cpd.Module].Vars
		var llReal, llNoise float64
		for j := 0; j < q.M; j++ {
			obs := make([]int64, q.N)
			for x := 0; x < q.N; x++ {
				obs[x] = q.At(x, j)
			}
			for _, x := range vars {
				llReal += cpd.LogLikelihood(obs, q.At(x, j))
				llNoise += cpd.LogLikelihood(obs, score.Quantize(4*g.Normal()))
			}
		}
		if llReal > llNoise {
			better++
		}
	}
	if better != len(cpds) {
		t.Fatalf("only %d of %d CPDs prefer real data over noise", better, len(cpds))
	}
}

func TestPredictiveMoments(t *testing.T) {
	pr := score.DefaultPrior()
	var s score.Stats
	for i := 0; i < 100; i++ {
		s.Add(score.Quantize(2 + float64(i%3-1)))
	}
	mean, variance := pr.Predictive(s)
	// With 100 observations the predictive tracks the empirical moments.
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean %v", mean)
	}
	if variance <= 0 || variance > 2 {
		t.Fatalf("variance %v", variance)
	}
	// The empty block must have a broad, finite predictive.
	m0, v0 := pr.Predictive(score.Stats{})
	if math.IsNaN(m0) || v0 <= 0 || math.IsInf(v0, 0) {
		t.Fatalf("empty-block predictive %v %v", m0, v0)
	}
	// A tiny tight block must not be overconfident: its predictive
	// variance must exceed its (near-zero) empirical variance.
	var tiny score.Stats
	tiny.Add(score.Quantize(1))
	tiny.Add(score.Quantize(1))
	_, vt := pr.Predictive(tiny)
	if vt < 0.1 {
		t.Fatalf("tiny tight block overconfident: variance %v", vt)
	}
}

func TestCPDJSONRoundTrip(t *testing.T) {
	q, res := learnForCPD(t, 27)
	cpds, err := BuildCPDs(res, q, score.DefaultPrior())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cpds[0].WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCPDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Module != cpds[0].Module || got.Depth() != cpds[0].Depth() {
		t.Fatal("round trip changed structure")
	}
	// Round-tripped CPD must predict identically.
	obs := make([]int64, q.N)
	for x := 0; x < q.N; x++ {
		obs[x] = q.At(x, 3)
	}
	m1, v1 := cpds[0].Predict(obs)
	m2, v2 := got.Predict(obs)
	if m1 != m2 || v1 != v2 {
		t.Fatal("round-tripped CPD predicts differently")
	}
}

func TestReadCPDJSONErrors(t *testing.T) {
	if _, err := ReadCPDJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCPDJSON(bytes.NewReader([]byte(`{"module":0}`))); err == nil {
		t.Fatal("treeless CPD accepted")
	}
}
