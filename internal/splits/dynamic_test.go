package splits

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"parsimone/internal/comm"
	"parsimone/internal/prng"
	"parsimone/internal/score"
)

// TestDynamicCoordTimeoutHarmless: with all workers healthy, an armed
// coordinator watchdog must not change the learned splits.
func TestDynamicCoordTimeoutHarmless(t *testing.T) {
	q, modules, trees, _ := fixture(t, 11)
	pr := score.DefaultPrior()
	par := Params{NumSplits: 2, MaxSteps: 24}
	want := Learn(q, pr, modules, trees, par, prng.New(17), nil)
	armed := par
	armed.CoordTimeout = 10 * time.Second
	_, err := comm.Run(3, func(c *comm.Comm) error {
		got := LearnParallelDynamic(c, q, pr, modules, trees, armed, prng.New(17), 7)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d: result differs with CoordTimeout armed", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDynamicCoordTimeoutDetectsHungWorker: a worker stalled before its
// first work request (an injected hour-long delay, the model of a hung rank)
// must turn into a coordinator timeout error rather than a silent hang, and
// the resulting abort must release the stalled worker too — the whole world
// returns promptly.
func TestDynamicCoordTimeoutDetectsHungWorker(t *testing.T) {
	q, modules, trees, _ := fixture(t, 11)
	pr := score.DefaultPrior()
	par := Params{NumSplits: 2, MaxSteps: 24, CoordTimeout: 50 * time.Millisecond}
	// Rank 1's op 1 is its first work-request Send: delaying it by an hour
	// models a worker that accepted work assignment but never engages.
	faults := []comm.Fault{{Rank: 1, Op: 1, Kind: comm.FaultDelay, Delay: time.Hour}}
	start := time.Now()
	_, err := comm.RunWithFaults(3, faults, func(c *comm.Comm) error {
		LearnParallelDynamic(c, q, pr, modules, trees, par, prng.New(17), 7)
		return nil
	})
	var re *comm.RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("got %v, want the coordinator's (rank 0) RankError", err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error %v does not report the timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("world took %v to abort; the stalled worker was not released", elapsed)
	}
}

// TestDynamicCoordinatorReleasedByCancel: a coordinator waiting on a hung
// worker with NO watchdog configured (CoordTimeout 0, the unbounded wait)
// must still be released promptly when the run's cancel signal fires —
// cancellation, not the timeout, tears the world down.
func TestDynamicCoordinatorReleasedByCancel(t *testing.T) {
	q, modules, trees, _ := fixture(t, 11)
	pr := score.DefaultPrior()
	reason := errors.New("test: run cancelled")
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Rank 1 never makes its first work request; without a watchdog only
	// the cancel signal can release the coordinator.
	faults := []comm.Fault{{Rank: 1, Op: 1, Kind: comm.FaultDelay, Delay: time.Hour}}
	start := time.Now()
	_, err := comm.RunWithFaults(3, faults, func(c *comm.Comm) error {
		par := Params{NumSplits: 2, MaxSteps: 24,
			Cancel: comm.NewCanceler(done, func() error { return reason })}
		LearnParallelDynamic(c, q, pr, modules, trees, par, prng.New(17), 7)
		return nil
	})
	var re *comm.RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("got %v, want the coordinator's (rank 0) RankError", err)
	}
	if !errors.Is(err, reason) {
		t.Fatalf("error %v does not carry the cancellation reason", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("world took %v to abort after cancellation", elapsed)
	}
}
