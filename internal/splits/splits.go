// Package splits implements the parent-split assignment phase of the
// module-learning task (§2.2.3 step 2, Algorithm 5 of the paper) — the phase
// that accounts for more than 90 % of the sequential run time and whose
// variable per-split cost causes the load imbalance analyzed in §5.3.1.
//
// Every combination ⟨module Mᵢ, tree T, internal node N, candidate parent
// Xᵢ, observation Dⱼ at N⟩ is a candidate split. Its posterior — the
// probability that splitting N's observations on Xᵢ ≤ Dᵢⱼ improves the
// Bayesian score — is estimated by bootstrap resampling with early
// termination: at least MinSteps and at most MaxSteps resamples of the
// node's observations, each costing O(|N|) work, stopping once the estimate
// is confidently resolved. Clear splits resolve in MinSteps; ambiguous ones
// run to MaxSteps, which reproduces the paper's observation that "the time
// required for this phase cannot be estimated a priori and varies
// significantly across splits".
//
// The candidate list is flattened globally and block-partitioned over ranks
// (the paper's fine-grained distribution; Algorithm 5 line 5). Each split's
// bootstrap draws come from a numbered PRNG substream indexed by the
// split's *global* position, so posteriors are identical for every rank
// count and for the sequential run (§4.2's block-split PRNG discipline).
package splits

import (
	"fmt"
	"math"
	"sort"
	"time"

	"parsimone/internal/comm"
	"parsimone/internal/obs"
	"parsimone/internal/pool"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/trace"
	"parsimone/internal/tree"
)

// Params configures split assignment.
//
// # Zero-value sentinels
//
// The zero value of every field selects its documented default — an
// *explicit* zero cannot be configured. Count fields (NumSplits, MaxSteps,
// MinSteps) treat any value ≤ 0 as "use the default": a negative count is
// never meaningful, and silently accepting one would make posterior() run
// zero bootstrap steps and divide by zero. For CIHalfWidth a negative
// value IS meaningful and is honored: it disables early termination, so
// every split runs to MaxSteps (the half-width test `hw < CIHalfWidth`
// can then never pass). TestParamsWithDefaults pins all of this.
type Params struct {
	// NumSplits is J: how many weighted and how many uniform splits are
	// chosen per node. Values ≤ 0 select the default, 2.
	NumSplits int
	// MaxSteps is S, the bootstrap resampling cap per split; MinSteps the
	// floor before early termination is allowed. Values ≤ 0 select the
	// defaults, 64 and 8.
	MaxSteps, MinSteps int
	// CIHalfWidth is the normal-approximation confidence half-width below
	// which sampling stops early. 0 selects the default, 0.08; a negative
	// value disables early termination entirely.
	CIHalfWidth float64
	// Candidates is the candidate-parent list P; nil means every
	// variable (the paper's genome-scale setting).
	Candidates []int
	// DynamicChunk, when positive, makes LearnParallel use the dynamic
	// coordinator/worker distribution (the paper's §6 future work) with
	// this chunk size instead of the static block partition. The learned
	// result is identical either way.
	DynamicChunk int
	// ScanSelection makes LearnParallel use the paper's segmented-scan
	// selection (§3.2.3) instead of gathering the full posterior vector:
	// less communication, identical result. Ignored when DynamicChunk is
	// set.
	ScanSelection bool
	// Workers is W, the number of intra-rank worker goroutines evaluating
	// this rank's posterior block (internal/pool); 0 or 1 means serial.
	// Posteriors, trace items, and the selected splits are bit-identical
	// for every (rank count, W) combination: each candidate draws only
	// from its own numbered substream and writes only its own slot.
	Workers int
	// CoordTimeout, when positive, bounds how long the dynamic
	// coordinator waits for a worker's next request: a hung worker then
	// aborts the world (detectably, via the usual RankError) instead of
	// deadlocking the coordinator in RecvAny forever. 0 waits without
	// bound.
	CoordTimeout time.Duration
	// Hooks receives observability events and metrics (nil disables both).
	// Observability is result-invisible: hooks never consume the PRNG
	// stream or alter control flow. In a parallel run either every rank or
	// no rank must attach hooks — the rank-imbalance summary is gathered
	// collectively, so a mixed configuration would deadlock, exactly like
	// disagreeing on any other collective.
	Hooks *obs.Hooks
	// DisableKernel makes every posterior evaluation score through
	// Prior.LogML directly instead of the precomputed kernel tables. The
	// learned result is identical either way (the kernel is an exact
	// re-expression); the switch exists so the `kernel` benchtab
	// experiment can measure the tables' effect end to end.
	DisableKernel bool
	// DisableBatch makes posterior evaluation run candidate-at-a-time (the
	// pre-batch hot loop: per-candidate left-mask build and degenerate
	// pre-scan, no per-pair sorted ranks, no logML memo). The learned
	// result is identical either way — batching only removes repeated
	// work, never reorders a PRNG draw or changes a float operation
	// (DESIGN §16) — so the switch exists for A/B verification and the
	// `batch` benchtab experiment, like DisableKernel for the kernel.
	DisableBatch bool
	// Cancel is the run's cooperative cancellation signal. Split
	// assignment itself polls nothing (a module's splits are recomputed
	// wholesale on resume, so the module edge is the cancellation
	// granularity), but the dynamic coordinator's watchdog wait honors it:
	// a cancelled run releases a coordinator blocked on worker requests
	// immediately instead of after CoordTimeout (comm.RecvAnyCtx).
	Cancel *comm.Canceler
}

func (p Params) withDefaults(n int) Params {
	if p.NumSplits <= 0 {
		p.NumSplits = 2
	}
	if p.MaxSteps <= 0 {
		p.MaxSteps = 64
	}
	if p.MinSteps <= 0 {
		p.MinSteps = 8
	}
	//parsivet:floateq — zero-value sentinel for "option unset", never a computed float
	if p.CIHalfWidth == 0 {
		p.CIHalfWidth = 0.08
	}
	if p.Candidates == nil {
		p.Candidates = make([]int, n)
		for i := range p.Candidates {
			p.Candidates[i] = i
		}
	}
	return p
}

// Validate reports configuration errors withDefaults cannot repair. A
// non-nil empty Candidates slice is rejected: nil means "all variables",
// but an explicitly empty candidate-parent list enumerates zero candidate
// splits and silently yields an empty Result with no diagnostic. Core
// Options validation and the parsimone CLI surface this before any
// learning runs.
func (p Params) Validate() error {
	if p.Candidates != nil && len(p.Candidates) == 0 {
		return fmt.Errorf("splits: Candidates must be nil (all variables) or non-empty — an empty list yields zero candidate splits and an empty Result")
	}
	return nil
}

// Assigned is one split assigned to a tree node.
type Assigned struct {
	// Module, Tree and Node locate the internal node (tree and node in
	// canonical enumeration order; node indexes the pre-order internal
	// list of its tree).
	Module, Tree, Node int
	// Parent is the split variable; Value the quantized split threshold
	// (x ≤ Value goes left).
	Parent int
	Value  int64
	// Posterior is the bootstrap posterior of the split improving the
	// score; NodeObs the number of observations at the node (the weight
	// used for parent scoring).
	Posterior float64
	NodeObs   int
}

// Result holds the splits chosen per node: Weighted by posterior-weighted
// random sampling, Uniform by uniform random sampling over the retained
// candidates (§2.2.3 step 2(ii)).
type Result struct {
	Weighted []Assigned
	Uniform  []Assigned
}

// nodeRef is one internal node in the global enumeration, with its
// per-observation column statistics cached.
type nodeRef struct {
	module, treeIdx, nodeIdx int
	node                     *tree.Node
	// offset is the node's first index in the global candidate list;
	// count its number of candidates (|P|·|Obs|).
	offset, count int
	// colStats[k] covers the module's variables at observation Obs[k].
	colStats []score.Stats
}

// enumerate builds the canonical global node list and candidate offsets.
// trees[mi] is the ensemble for module mi over vars modules[mi].
func enumerate(q *score.QData, modules [][]int, trees [][]*tree.Tree, candParents []int) []*nodeRef {
	var nodes []*nodeRef
	offset := 0
	for mi := range trees {
		for ti, tr := range trees[mi] {
			for ni, n := range tr.InternalNodes() {
				ref := &nodeRef{
					module: mi, treeIdx: ti, nodeIdx: ni, node: n,
					offset: offset, count: len(candParents) * len(n.Obs),
				}
				ref.colStats = make([]score.Stats, len(n.Obs))
				for k, j := range n.Obs {
					for _, x := range modules[mi] {
						ref.colStats[k].Add(q.At(x, j))
					}
				}
				nodes = append(nodes, ref)
				offset += ref.count
			}
		}
	}
	return nodes
}

// PhaseAssign is the work-recording phase name for posterior computation.
const PhaseAssign = "splits/assign"

const logMLCost = 8

// nodeIndexAt returns the index in nodes of the node owning global candidate
// ci (nodes' [offset, offset+count) ranges tile the candidate list).
func nodeIndexAt(nodes []*nodeRef, ci int) int {
	return sort.Search(len(nodes), func(i int) bool {
		return nodes[i].offset+nodes[i].count > ci
	})
}

// itemCost is the recorded cost of one posterior evaluation that consumed
// `steps` bootstrap resamples of a node with nObs observations.
func itemCost(steps, nObs int) float64 {
	return float64((steps + 1) * nObs * (1 + logMLCost/4))
}

// scratch is one worker's reusable buffers for posterior evaluation,
// allocation-free per candidate. The candidate list is parent-major within
// a node — nObs consecutive candidates share ⟨node, parent⟩ — so the parent
// column gathered over the node's observations is cached across candidates
// and refilled only when the pair changes. The batched path additionally
// keys the pair's sorted-order structure (spos/rank) on the same change.
type scratch struct {
	// node and parent key the cached column.
	node   *nodeRef
	parent int
	// pobs[k] is the parent's quantized value at the node's k-th
	// observation; mask[k] the candidate's left/right side
	// (pobs[k] ≤ value), rebuilt per candidate in one pass (unbatched
	// path only — the batched path replaces the mask with spos/rank).
	pobs []int64
	mask []bool
	// spos[k] is observation slot k's position in the pair's sorted order
	// (by value, ties by slot — a permutation); rank[k] is the left count
	// of the candidate whose threshold is slot k's value: the number of
	// pobs ≤ pobs[k]. A pick lands left of candidate k iff
	// spos[pick] < rank[k], and the candidate is degenerate iff
	// rank[k] == nObs — both O(1), replacing the per-candidate O(nObs)
	// mask build and degenerate pre-scan with one O(nObs log nObs) sort
	// per pair.
	spos, rank []int32
	// sortBuf holds the slot permutation while fillPair sorts.
	sortBuf []int32
	// picks receives one bootstrap step's batched draws.
	picks []int
	// memo is the worker's exact logML cache (batched path), lazily bound
	// to the run's kernel by memoFor.
	memo *score.Memo
}

// newScratches allocates one scratch per pool worker — separately, so
// workers never write into a shared cache line.
func newScratches(workers int) []*scratch {
	out := make([]*scratch, workers)
	for i := range out {
		out[i] = &scratch{parent: -1}
	}
	return out
}

// memoFor returns the worker's memo cache over kern, creating or rebinding
// it on first use (scratches outlive no kernel: each learn call builds one
// kernel and one scratch set, so the rebind happens once per worker).
func (sc *scratch) memoFor(kern *score.Kernel) *score.Memo {
	if sc.memo == nil || sc.memo.Kernel() != kern {
		sc.memo = score.NewMemo(kern, 0)
	}
	return sc.memo
}

// grow resizes the per-observation buffers for a node with nObs
// observations.
func (sc *scratch) grow(nObs int) {
	if cap(sc.pobs) < nObs {
		sc.pobs = make([]int64, nObs)
		sc.mask = make([]bool, nObs)
		sc.spos = make([]int32, nObs)
		sc.rank = make([]int32, nObs)
		sc.sortBuf = make([]int32, nObs)
		sc.picks = make([]int, nObs)
	}
	sc.pobs = sc.pobs[:nObs]
	sc.mask = sc.mask[:nObs]
	sc.spos = sc.spos[:nObs]
	sc.rank = sc.rank[:nObs]
	sc.sortBuf = sc.sortBuf[:nObs]
	sc.picks = sc.picks[:nObs]
}

// fillPair caches the ⟨node, parent⟩ pair: the parent column over the
// node's observations, its sorted order, and the per-slot ranks (prefix
// counts of the sorted column — the batched path's whole-pair sufficient
// structure). One sort amortizes over the pair's nObs candidates.
func (sc *scratch) fillPair(q *score.QData, ref *nodeRef, parent, nObs int) {
	sc.grow(nObs)
	prow := q.Row(parent)
	for k, j := range ref.node.Obs {
		sc.pobs[k] = prow[j]
	}
	buf := sc.sortBuf
	for k := range buf {
		buf[k] = int32(k)
	}
	sort.Slice(buf, func(a, b int) bool {
		va, vb := sc.pobs[buf[a]], sc.pobs[buf[b]]
		if va != vb {
			return va < vb
		}
		return buf[a] < buf[b]
	})
	for p, k := range buf {
		sc.spos[k] = int32(p)
	}
	// Ranks: every slot of a run of equal values gets the run's end
	// position — the count of column values ≤ that value.
	for p := 0; p < nObs; {
		runStart, v := p, sc.pobs[buf[p]]
		for p < nObs && sc.pobs[buf[p]] == v {
			p++
		}
		for i := runStart; i < p; i++ {
			sc.rank[buf[i]] = int32(p)
		}
	}
	sc.node, sc.parent = ref, parent
}

// maxStatsN returns the largest sufficient-statistics count the bootstrap
// can produce over these nodes — a full resample drawing one observation
// column (one Stats value per module variable) |Obs| times — which sizes
// the kernel tables so the hot loop never takes the fallback path.
func maxStatsN(nodes []*nodeRef) int {
	maxN := 0
	for _, ref := range nodes {
		if len(ref.colStats) == 0 {
			continue
		}
		if n := len(ref.node.Obs) * int(ref.colStats[0].N); n > maxN {
			maxN = n
		}
	}
	return maxN
}

// newKernel builds the scoring kernel every selection path shares. With
// par.DisableKernel the table degenerates to the N=0 entry, so every call
// takes the Prior.LogML fallback — the pre-kernel scoring path, kept
// reachable for the `kernel` benchtab measurement.
func newKernel(pr score.Prior, nodes []*nodeRef, par Params) *score.Kernel {
	if par.DisableKernel {
		return score.NewKernel(pr, 0)
	}
	return score.NewKernel(pr, maxStatsN(nodes))
}

// posterior computes the bootstrap posterior of global candidate ci of node
// ref, drawing from sub (the candidate's numbered substream) and scoring
// through kern — bit-equal to the prior's LogML (score.Kernel). sc is the
// calling worker's scratch. It returns the posterior and the number of
// resampling steps consumed. The batched and unbatched bodies return
// identical bits and consume identical draws (TestPosteriorBatchBitIdentical);
// par.DisableBatch selects the pre-batch body for A/B measurement.
func posterior(q *score.QData, kern *score.Kernel, ref *nodeRef, candParents []int, ci int, sub *prng.MRG3, par Params, sc *scratch) (float64, int) {
	if par.DisableBatch {
		return posteriorUnbatched(q, kern, ref, candParents, ci, sub, par, sc)
	}
	return posteriorBatched(q, kern, ref, candParents, ci, sub, par, sc)
}

// posteriorBatched evaluates one candidate against its pair's cached
// sorted-rank structure: the degenerate test and the per-pick side test are
// rank comparisons (O(1) and branch-free), the per-candidate mask build is
// gone, and logML goes through the worker's exact memo. Each candidate
// still consumes its own substream in the exact unbatched order — the
// bootstrap draws are the one part of the pair that cannot be shared
// without changing bits (DESIGN §16).
func posteriorBatched(q *score.QData, kern *score.Kernel, ref *nodeRef, candParents []int, ci int, sub *prng.MRG3, par Params, sc *scratch) (float64, int) {
	local := ci - ref.offset
	nObs := len(ref.node.Obs)
	parent := candParents[local/nObs]
	if sc.node != ref || sc.parent != parent {
		sc.fillPair(q, ref, parent, nObs)
	}
	// threshold rank: picks with spos < t fall left. rank ≥ 1 always (the
	// threshold value is its own observation), so only the all-left side
	// can degenerate.
	t := sc.rank[local%nObs]
	if int(t) == nObs {
		return 0, 0
	}
	spos := sc.spos
	cols := ref.colStats
	picks := sc.picks
	memo := sc.memoFor(kern)
	draw := prng.NewUniform(nObs)
	successes, steps := 0, 0
	for steps < par.MaxSteps {
		steps++
		// One batched fill per step, exactly as the unbatched body draws.
		draw.Fill(sub, picks)
		// Branch-free merge: spos[pick]−t is negative exactly for left
		// picks, so its sign extension is an all-ones mask selecting the
		// pick's contribution to the left block; the total accumulates
		// unconditionally and the right block is total − left. Adding an
		// AND-masked zero and subtracting exact integer sums are both
		// identities in int64 arithmetic, so ls/rs/total carry the same
		// bits the two-sided Merge sequence produced — with no per-pick
		// branch to mispredict and every accumulator in a register.
		var lsN, lsS, lsQ, totN, totS, totQ int64
		for _, pick := range picks {
			c := &cols[pick]
			m := int64(spos[pick]-t) >> 63
			totN += c.N
			totS += c.Sum
			totQ += c.SumSq
			lsN += c.N & m
			lsS += c.Sum & m
			lsQ += c.SumSq & m
		}
		ls := score.Stats{N: lsN, Sum: lsS, SumSq: lsQ}
		rs := score.Stats{N: totN - lsN, Sum: totS - lsS, SumSq: totQ - lsQ}
		tot := score.Stats{N: totN, Sum: totS, SumSq: totQ}
		delta := memo.LogML(ls) + memo.LogML(rs) - memo.LogML(tot)
		if delta > 0 {
			successes++
		}
		if steps >= par.MinSteps {
			phat := float64(successes) / float64(steps)
			hw := 1.96 * math.Sqrt(phat*(1-phat)/float64(steps))
			if hw < par.CIHalfWidth {
				break
			}
		}
	}
	return float64(successes) / float64(steps), steps
}

// posteriorUnbatched is the pre-batch hot loop, kept reachable via
// par.DisableBatch as the A/B reference: per-candidate left-mask build and
// degenerate pre-scan, direct kernel scoring.
func posteriorUnbatched(q *score.QData, kern *score.Kernel, ref *nodeRef, candParents []int, ci int, sub *prng.MRG3, par Params, sc *scratch) (float64, int) {
	local := ci - ref.offset
	nObs := len(ref.node.Obs)
	parent := candParents[local/nObs]
	if sc.node != ref || sc.parent != parent {
		sc.grow(nObs)
		prow := q.Row(parent)
		for k, j := range ref.node.Obs {
			sc.pobs[k] = prow[j]
		}
		sc.node, sc.parent = ref, parent
	}
	value := sc.pobs[local%nObs]
	// Build the left mask and count the left side in the same pass, so each
	// column value is compared against the threshold exactly once per
	// candidate — the mask build IS the degenerate-split pre-scan.
	left := 0
	for k, v := range sc.pobs {
		le := v <= value
		sc.mask[k] = le
		if le {
			left++
		}
	}
	// Degenerate split: one side empty → zero posterior, discarded
	// (§2.2.3: "candidate splits with zero posterior probability are
	// discarded"). Costs one scan.
	if left == 0 || left == nObs {
		return 0, 0
	}
	mask := sc.mask
	cols := ref.colStats
	picks := sc.picks
	draw := prng.NewUniform(nObs)
	successes, steps := 0, 0
	for steps < par.MaxSteps {
		steps++
		var ls, rs score.Stats
		// One batched fill per step: the sampler keeps the generator state
		// in registers across the whole resample, drawing the exact
		// sequence nObs Intn calls would.
		draw.Fill(sub, picks)
		for _, pick := range picks {
			if mask[pick] {
				ls.Merge(cols[pick])
			} else {
				rs.Merge(cols[pick])
			}
		}
		delta := kern.LogML(ls) + kern.LogML(rs) - kern.LogML(ls.Plus(rs))
		if delta > 0 {
			successes++
		}
		if steps >= par.MinSteps {
			phat := float64(successes) / float64(steps)
			hw := 1.96 * math.Sqrt(phat*(1-phat)/float64(steps))
			if hw < par.CIHalfWidth {
				break
			}
		}
	}
	return float64(successes) / float64(steps), steps
}

// recordSplitMetrics records the result-invisible split-phase metrics:
// the split_steps histogram and the kernel/memo cache counters. Both
// metric-recording selection paths (gather and scan) go through this one
// helper so same-seed runs that differ only in ScanSelection produce
// byte-identical metrics dumps. Table hits are derived rather than counted
// in the hot loop — each completed bootstrap step makes exactly three logML
// calls (degenerate candidates make none), and every call is accounted to
// exactly one of: an empty-block early return (kernel's ZeroN unbatched,
// the memo's Zero batched), a memo serve, or a kernel call that either hit
// the table or fell back to Prior.LogML. So
//
//	hits = 3·Σsteps − zeroN − memoZero − memoHits − fallbacks
//
// and the table-hit path stays free of atomics. (The old derivation
// 3·Σsteps − fallbacks silently credited empty-block early returns — calls
// the table never served — as hits; TestKernelHitCounterExact pins the
// fix.) Memo counters are summed over the per-worker caches; their split
// between hit and miss depends on the worker count and block partition
// (cache state is per worker), while every other metric here is
// schedule-invariant.
func recordSplitMetrics(reg *obs.Registry, steps []int, kern *score.Kernel, scratches []*scratch) {
	if reg == nil {
		return
	}
	hist := reg.Histogram("split_steps", "bootstrap resampling steps per candidate split", obs.DefaultStepBuckets)
	var total int64
	for _, s := range steps {
		hist.Observe(float64(s))
		total += int64(s)
	}
	var memoHits, memoMisses, memoZero int64
	for _, sc := range scratches {
		if sc.memo != nil {
			memoHits += sc.memo.Hits()
			memoMisses += sc.memo.Misses()
			memoZero += sc.memo.Zero()
		}
	}
	misses := kern.Fallbacks()
	hits := 3*total - kern.ZeroN() - memoZero - memoHits - misses
	reg.Counter("kernel_table_hits_total", "split-score kernel LogML calls served from the precomputed tables", "phase", PhaseAssign).Add(hits)
	reg.Counter("kernel_table_misses_total", "split-score kernel LogML calls that fell back to direct Prior.LogML", "phase", PhaseAssign).Add(misses)
	reg.Counter("kernel_memo_hits_total", "split-score logML calls served from the per-worker exact memo caches", "phase", PhaseAssign).Add(memoHits)
	reg.Counter("kernel_memo_misses_total", "split-score logML memo lookups that went through to the kernel", "phase", PhaseAssign).Add(memoMisses)
	reg.Counter("kernel_zero_blocks_total", "split-score logML calls on empty blocks (N == 0), answered 0 without a table or memo lookup", "phase", PhaseAssign).Add(kern.ZeroN() + memoZero)
}

// learn computes all posteriors (partitioned by evalRange) and performs the
// per-node selection on the full posterior vector. gatherCosts, when
// non-nil, collects the per-rank pool costs for the rank-imbalance summary
// (returning non-nil on rank 0 only); it runs only when par.Hooks is
// attached, so runs without observability perform no extra communication.
func learn(q *score.QData, pr score.Prior, modules [][]int, trees [][]*tree.Tree,
	par Params, g *prng.MRG3,
	exchange func(local []float64, lo, hi, total int) []float64,
	evalRange func(total int) (int, int),
	gatherCosts func(localCost float64) []float64,
	wl *trace.Workload) Result {

	par = par.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	total := 0
	for _, ref := range nodes {
		total += ref.count
	}

	// Posterior computation over this rank's block of the global list,
	// fanned out over the intra-rank worker pool. Each candidate draws only
	// from its own numbered substream (Substream is read-only on base) and
	// writes only its own slot, so the fill is order-independent. The pool
	// deals chunks round-robin, so each worker sees strictly ascending
	// candidate indices: a per-worker monotone cursor replaces the binary
	// search for the owning node (one O(log nodes) sort.Search per
	// candidate would dominate the loop overhead on cheap splits; see
	// BenchmarkNodeLookup).
	base := g.Clone()
	lo, hi := evalRange(total)
	local := make([]float64, hi-lo)
	steps := make([]int, hi-lo)
	nw := par.Workers
	if nw < 1 {
		nw = 1
	}
	cursors := make([]int, nw)
	if len(nodes) > 0 {
		start := nodeIndexAt(nodes, lo)
		for w := range cursors {
			cursors[w] = start
		}
	}
	kern := newKernel(pr, nodes, par)
	scratches := newScratches(nw)
	st := pool.For(hi-lo, par.Workers, pool.DefaultChunk, func(k, w int) float64 {
		ci := lo + k
		ni := cursors[w]
		for nodes[ni].offset+nodes[ni].count <= ci {
			ni++
		}
		cursors[w] = ni
		ref := nodes[ni]
		p, s := posterior(q, kern, ref, par.Candidates, ci, base.Substream(uint64(ci)), par, scratches[w])
		local[k] = p
		steps[k] = s
		return itemCost(s, len(ref.node.Obs))
	})
	if h := par.Hooks; h != nil {
		h.PoolCost(PhaseAssign, st)
		h.WorkerImbalance(PhaseAssign, st)
		recordSplitMetrics(h.Registry(), steps, kern, scratches)
		if gatherCosts != nil {
			var localCost float64
			for _, c := range st.Cost {
				localCost += c
			}
			if perRank := gatherCosts(localCost); perRank != nil {
				h.RankImbalance(PhaseAssign, perRank)
			}
		}
	}
	if wl != nil {
		ph := wl.Phase(PhaseAssign)
		if ph == nil {
			ph = wl.AddPhase(PhaseAssign)
		}
		// Later calls (module learning records one assignment per module)
		// continue the segment numbering where the previous call stopped,
		// so node segments stay globally distinct for the coarse model.
		segBase := 0
		if len(ph.Items) > 0 {
			segBase = ph.Items[len(ph.Items)-1].Seg + 1
		}
		// Record items serially in canonical candidate order: the trace is
		// identical for every worker count, while the per-worker counters
		// reflect the pool's static chunk deal.
		ni := 0
		for k, s := range steps {
			ci := lo + k
			for nodes[ni].offset+nodes[ni].count <= ci {
				ni++
			}
			ph.Items = append(ph.Items, trace.Item{Cost: itemCost(s, len(nodes[ni].node.Obs)), Seg: segBase + ni})
		}
		ph.AddWorkerCost(st.Cost)
		ph.Collectives++
		ph.Words += int64(total)
	}
	posteriors := exchange(local, lo, hi, total)

	return selectSplits(q, nodes, posteriors, par, g)
}

// selectSplits performs the per-node selection over the full posterior
// vector: J weighted + J uniform picks over the retained (non-zero
// posterior) candidates per node, in canonical node order, consuming the
// shared stream identically on every rank.
func selectSplits(q *score.QData, nodes []*nodeRef, posteriors []float64, par Params, g *prng.MRG3) Result {
	var res Result
	for _, ref := range nodes {
		ps := posteriors[ref.offset : ref.offset+ref.count]
		weights := make([]uint64, len(ps))
		var retained []int
		for i, p := range ps {
			// score.QuantizeProb, not an ad-hoc rounding: a retained
			// (positive-posterior) candidate must map to a positive weight
			// or WeightedIndex could face an all-zero vector and return -1.
			weights[i] = score.QuantizeProb(p)
			if p > 0 {
				retained = append(retained, i)
			}
		}
		if len(retained) == 0 {
			continue
		}
		mk := func(local int) Assigned {
			nObs := len(ref.node.Obs)
			parent := par.Candidates[local/nObs]
			return Assigned{
				Module: ref.module, Tree: ref.treeIdx, Node: ref.nodeIdx,
				Parent:    parent,
				Value:     q.At(parent, ref.node.Obs[local%nObs]),
				Posterior: ps[local],
				NodeObs:   nObs,
			}
		}
		for s := 0; s < par.NumSplits; s++ {
			wi := g.WeightedIndex(weights)
			res.Weighted = append(res.Weighted, mk(wi))
		}
		for s := 0; s < par.NumSplits; s++ {
			ui := retained[g.Intn(len(retained))]
			res.Uniform = append(res.Uniform, mk(ui))
		}
	}
	return res
}

// Learn computes and selects splits sequentially.
func Learn(q *score.QData, pr score.Prior, modules [][]int, trees [][]*tree.Tree,
	par Params, g *prng.MRG3, wl *trace.Workload) Result {
	return learn(q, pr, modules, trees, par, g,
		func(local []float64, lo, hi, total int) []float64 { return local },
		func(total int) (int, int) { return 0, total },
		nil,
		wl)
}

// LearnParallel computes posteriors over c's ranks (fine-grained static
// block distribution, Algorithm 5 line 5 — or the dynamic distribution when
// par.DynamicChunk is set), gathers them, and selects splits identically on
// every rank.
func LearnParallel(c *comm.Comm, q *score.QData, pr score.Prior, modules [][]int,
	trees [][]*tree.Tree, par Params, g *prng.MRG3) Result {
	if par.DynamicChunk > 0 {
		return LearnParallelDynamic(c, q, pr, modules, trees, par, g, par.DynamicChunk)
	}
	if par.ScanSelection {
		return LearnParallelScan(c, q, pr, modules, trees, par, g)
	}
	return learn(q, pr, modules, trees, par, g,
		func(local []float64, lo, hi, total int) []float64 {
			return comm.AllGatherv(c, local)
		},
		func(total int) (int, int) {
			return comm.BlockRange(total, c.Size(), c.Rank())
		},
		func(localCost float64) []float64 {
			per := comm.AllGatherv(c, []float64{localCost})
			if c.Rank() != 0 {
				return nil
			}
			return per
		},
		nil)
}
