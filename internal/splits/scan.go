// Segmented-scan split selection — the communication structure the paper
// actually implements for Algorithm 5: "the contiguous arrangement of
// candidate splits for every node allows us to compute the split weights
// for random sampling for all the nodes using a single segmented parallel
// scan over the distributed cand-probs. Then, the splits for all the nodes
// are selected independently on each processor, followed by an all-gather
// call to collect all the chosen splits" (§3.2.3).
//
// LearnParallel (static path) gathers the full posterior vector — simple,
// O(total) communication. This variant exchanges only per-node per-rank
// weight partials and the chosen splits, O(p·nodes + J·nodes) — the paper's
// O(τ log p + µJKRL) communication bound. Because sampling weights are
// integers, the distributed prefix sums are exact, and the selection
// consumes the shared PRNG stream identically to the gather-based path, so
// the chosen splits are bit-identical.

package splits

import (
	"sort"

	"parsimone/internal/comm"
	"parsimone/internal/pool"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/tree"
)

// nodePartial is one rank's contribution to one node's weight totals.
type nodePartial struct {
	Rank int
	// Node is the global node index.
	Node int
	// Weight is the sum of this rank's quantized weights for the node;
	// Retained the count of non-zero-posterior candidates.
	Weight   uint64
	Retained int
}

// pickMsg is one chosen split, sent to all ranks by its owner.
type pickMsg struct {
	Node int
	// Kind 0 = weighted, 1 = uniform; S is the pick's sequence number.
	Kind, S int
	A       Assigned
}

// LearnParallelScan computes the same Result as LearnParallel using the
// paper's segmented-scan selection: posteriors stay distributed; only
// per-node weight partials and the chosen splits travel.
func LearnParallelScan(c *comm.Comm, q *score.QData, pr score.Prior, modules [][]int,
	trees [][]*tree.Tree, par Params, g *prng.MRG3) Result {
	par = par.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	total := 0
	for _, ref := range nodes {
		total += ref.count
	}
	base := g.Clone()

	// Local posteriors over this rank's block, kept distributed; evaluated
	// by the intra-rank worker pool with indexed writes (identical for
	// every worker count). Weights come from score.QuantizeProb — the same
	// grid as the gather-based path, bit for bit, or the two paths would
	// consume the shared PRNG stream differently. Per-worker monotone
	// cursors replace the per-candidate binary search, as in learn.
	lo, hi := comm.BlockRange(total, c.Size(), c.Rank())
	localW := make([]uint64, hi-lo)
	localP := make([]float64, hi-lo)
	localRetained := make([]bool, hi-lo)
	localSteps := make([]int, hi-lo)
	nw := max(1, par.Workers)
	cursors := make([]int, nw)
	if len(nodes) > 0 {
		start := nodeIndexAt(nodes, lo)
		for w := range cursors {
			cursors[w] = start
		}
	}
	kern := newKernel(pr, nodes, par)
	scratches := newScratches(nw)
	st := pool.For(hi-lo, par.Workers, pool.DefaultChunk, func(k, w int) float64 {
		ci := lo + k
		nc := cursors[w]
		for nodes[nc].offset+nodes[nc].count <= ci {
			nc++
		}
		cursors[w] = nc
		ref := nodes[nc]
		p, s := posterior(q, kern, ref, par.Candidates, ci, base.Substream(uint64(ci)), par, scratches[w])
		localW[k] = score.QuantizeProb(p)
		localP[k] = p
		localRetained[k] = p > 0
		localSteps[k] = s
		return itemCost(s, len(ref.node.Obs))
	})
	if h := par.Hooks; h != nil {
		h.PoolCost(PhaseAssign, st)
		h.WorkerImbalance(PhaseAssign, st)
		recordSplitMetrics(h.Registry(), localSteps, kern, scratches)
		var localCost float64
		for _, cst := range st.Cost {
			localCost += cst
		}
		perRank := comm.AllGatherv(c, []float64{localCost})
		if c.Rank() == 0 {
			h.RankImbalance(PhaseAssign, perRank)
		}
	}

	// Per-node partial sums of this rank's block (the local half of the
	// segmented scan).
	var partials []nodePartial
	ni := 0
	for ci := lo; ci < hi; ci++ {
		for nodes[ni].offset+nodes[ni].count <= ci {
			ni++
		}
		if len(partials) == 0 || partials[len(partials)-1].Node != ni {
			partials = append(partials, nodePartial{Rank: c.Rank(), Node: ni})
		}
		p := &partials[len(partials)-1]
		p.Weight += localW[ci-lo]
		if localRetained[ci-lo] {
			p.Retained++
		}
	}
	// All-gather the partials: entries arrive rank-major and node-ascending
	// within a rank, giving every rank the full segmented prefix structure.
	allPartials := comm.AllGatherv(c, partials)
	byNode := make([][]nodePartial, len(nodes))
	for _, p := range allPartials {
		byNode[p.Node] = append(byNode[p.Node], p)
	}

	// mkLocal materializes the Assigned for a candidate this rank owns.
	mkLocal := func(nodeIdx, ci int) Assigned {
		ref := nodes[nodeIdx]
		local := ci - ref.offset
		nObs := len(ref.node.Obs)
		parent := par.Candidates[local/nObs]
		p := localP[ci-lo]
		return Assigned{
			Module: ref.module, Tree: ref.treeIdx, Node: ref.nodeIdx,
			Parent:    parent,
			Value:     q.At(parent, ref.node.Obs[local%nObs]),
			Posterior: p,
			NodeObs:   nObs,
		}
	}

	// Selection: identical draws to the gather-based path, but only the
	// rank owning the crossing point materializes the pick.
	var localPicks []pickMsg
	for nodeIdx := range nodes {
		var totalW uint64
		retained := 0
		for _, p := range byNode[nodeIdx] {
			totalW += p.Weight
			retained += p.Retained
		}
		if retained == 0 {
			continue
		}
		for s := 0; s < par.NumSplits; s++ {
			u := g.Uint64n(totalW)
			var cum uint64
			for _, p := range byNode[nodeIdx] {
				if u < cum+p.Weight {
					if p.Rank == c.Rank() {
						ci := findWeighted(nodes[nodeIdx], lo, hi, localW, u-cum)
						localPicks = append(localPicks, pickMsg{Node: nodeIdx, Kind: 0, S: s, A: mkLocal(nodeIdx, ci)})
					}
					break
				}
				cum += p.Weight
			}
		}
		for s := 0; s < par.NumSplits; s++ {
			u := g.Uint64n(uint64(retained))
			var cum uint64
			for _, p := range byNode[nodeIdx] {
				if u < cum+uint64(p.Retained) {
					if p.Rank == c.Rank() {
						ci := findRetained(nodes[nodeIdx], lo, hi, localRetained, int(u-cum))
						localPicks = append(localPicks, pickMsg{Node: nodeIdx, Kind: 1, S: s, A: mkLocal(nodeIdx, ci)})
					}
					break
				}
				cum += uint64(p.Retained)
			}
		}
	}

	// Collect the picks (the paper's final all-gather) and restore the
	// canonical (node, kind, sequence) order. Received collective payloads
	// are shared between ranks (comm passes references), so sort a copy.
	all := append([]pickMsg(nil), comm.AllGatherv(c, localPicks)...)
	sort.Slice(all, func(a, b int) bool {
		if all[a].Node != all[b].Node {
			return all[a].Node < all[b].Node
		}
		if all[a].Kind != all[b].Kind {
			return all[a].Kind < all[b].Kind
		}
		return all[a].S < all[b].S
	})
	var res Result
	for _, p := range all {
		if p.Kind == 0 {
			res.Weighted = append(res.Weighted, p.A)
		} else {
			res.Uniform = append(res.Uniform, p.A)
		}
	}
	return res
}

// findWeighted locates the candidate index within this rank's slice of the
// node whose local weight prefix crosses rem.
func findWeighted(ref *nodeRef, lo, hi int, localW []uint64, rem uint64) int {
	start := max(ref.offset, lo)
	end := min(ref.offset+ref.count, hi)
	var cum uint64
	for ci := start; ci < end; ci++ {
		cum += localW[ci-lo]
		if rem < cum {
			return ci
		}
	}
	panic("splits: weighted crossing not found in local block")
}

// findRetained locates the rem-th retained candidate within this rank's
// slice of the node.
func findRetained(ref *nodeRef, lo, hi int, localRetained []bool, rem int) int {
	start := max(ref.offset, lo)
	end := min(ref.offset+ref.count, hi)
	for ci := start; ci < end; ci++ {
		if localRetained[ci-lo] {
			if rem == 0 {
				return ci
			}
			rem--
		}
	}
	panic("splits: retained crossing not found in local block")
}
