// Binary (wire-format) codec for assigned splits — the second half of the
// per-module progress manifest (DESIGN §12). Index fields pack as zigzag
// varints; the split threshold is already a quantized integer (the same
// grid score.QuantizeData works in) and packs the same way; the bootstrap
// posterior is the one genuinely real-valued field and is stored as its
// exact IEEE-754 bits so resumed units are bit-identical.

package splits

import "parsimone/internal/wire"

// EncodeAssigned appends a counted list of assigned splits to e.
func EncodeAssigned(e *wire.Encoder, as []Assigned) {
	e.Uvarint(uint64(len(as)))
	for _, a := range as {
		e.Int(a.Module)
		e.Int(a.Tree)
		e.Int(a.Node)
		e.Int(a.Parent)
		e.Varint(a.Value)
		e.Float64(a.Posterior)
		e.Int(a.NodeObs)
	}
}

// DecodeAssigned reads a list written by EncodeAssigned. Errors are
// reported through d's sticky error; the result is nil once d has failed.
func DecodeAssigned(d *wire.Decoder) []Assigned {
	// Each entry is at least six 1-byte varints plus an 8-byte float.
	n := d.Count(14)
	if d.Err() != nil || n == 0 {
		return nil
	}
	as := make([]Assigned, n)
	for i := range as {
		as[i] = Assigned{
			Module:    d.Int(),
			Tree:      d.Int(),
			Node:      d.Int(),
			Parent:    d.Int(),
			Value:     d.Varint(),
			Posterior: d.Float64(),
			NodeObs:   d.Int(),
		}
	}
	if d.Err() != nil {
		return nil
	}
	return as
}
