// Dynamic split distribution — the paper's stated future work (§6:
// "implementing a dynamic load balancing scheme for computing the posterior
// probabilities for all the candidate parent splits"). Rank 0 acts as the
// coordinator, dealing fixed-size chunks of the global candidate list to
// workers on demand, so slow (high-step-count) splits no longer pin an
// entire static block to one rank.
//
// Because every split's bootstrap draws come from the substream numbered by
// its global index, the computed posteriors — and therefore the learned
// network — are identical to the static schemes' output; only the
// assignment of work to ranks changes.

package splits

import (
	"fmt"

	"parsimone/internal/comm"
	"parsimone/internal/pool"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/tree"
)

// chunkMsg is the coordinator's reply to a work request: the half-open
// candidate range [Lo, Hi); Lo == -1 signals that the list is exhausted.
type chunkMsg struct{ Lo, Hi int }

// valMsg carries one computed posterior back to the gather phase.
type valMsg struct {
	Index int
	P     float64
}

// DefaultDynamicChunk is the chunk size of the dynamic scheme.
const DefaultDynamicChunk = 64

// LearnParallelDynamic is the dynamic-scheme counterpart of LearnParallel:
// ranks 1…p−1 request fixed-size chunks of the candidate list from the
// rank-0 coordinator until it is exhausted, so expensive splits no longer
// pin a whole static block to one rank. It shares enumerate, posterior, and
// the selection logic with the static path and returns the identical
// result. With p == 1 it falls back to the sequential path; chunk ≤ 0 uses
// DefaultDynamicChunk.
func LearnParallelDynamic(c *comm.Comm, q *score.QData, pr score.Prior, modules [][]int,
	trees [][]*tree.Tree, par Params, g *prng.MRG3, chunk int) Result {
	if chunk <= 0 {
		chunk = DefaultDynamicChunk
	}
	if c.Size() == 1 {
		return Learn(q, pr, modules, trees, par, g, nil)
	}
	par = par.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	total := 0
	for _, ref := range nodes {
		total += ref.count
	}
	base := g.Clone()

	// computeRange evaluates one dealt chunk through the intra-rank worker
	// pool; a sub-chunk granularity finer than the dealt chunk keeps W
	// workers busy inside it. valMsg carries the global index, so dealing
	// order never affects the gathered result. One nodeIndexAt seeds
	// per-worker monotone cursors for the chunk (each worker's indices
	// ascend), so the binary search runs once per dealt chunk, not once
	// per candidate. No par.Hooks cost events are emitted on this path:
	// which rank computes which chunk is demand-driven and therefore
	// scheduling-dependent, and per-rank cost events would break the
	// event-stream determinism the static and scan paths guarantee.
	subChunk := max(1, chunk/8)
	nw := max(1, par.Workers)
	cursors := make([]int, nw)
	kern := newKernel(pr, nodes, par)
	// Scratches persist across dealt chunks: the ⟨node, parent⟩ cache key
	// stays valid whatever ranges the coordinator deals this rank.
	scratches := newScratches(nw)
	computeRange := func(lo, hi int, out []valMsg) []valMsg {
		tmp := make([]valMsg, hi-lo)
		start := nodeIndexAt(nodes, lo)
		for w := range cursors {
			cursors[w] = start
		}
		pool.For(hi-lo, par.Workers, subChunk, func(k, w int) float64 {
			ci := lo + k
			ni := cursors[w]
			for nodes[ni].offset+nodes[ni].count <= ci {
				ni++
			}
			cursors[w] = ni
			ref := nodes[ni]
			p, s := posterior(q, kern, ref, par.Candidates, ci, base.Substream(uint64(ci)), par, scratches[w])
			tmp[k] = valMsg{Index: ci, P: p}
			return itemCost(s, len(ref.node.Obs))
		})
		return append(out, tmp...)
	}

	var local []valMsg
	if c.Rank() == 0 {
		// Coordinator: deal chunks on request; each worker is released
		// with an exhausted marker once the list is done.
		next := 0
		active := c.Size() - 1
		for active > 0 {
			// The wait honors both the watchdog timeout and the run's
			// cancel signal (comm.RecvAnyCtx): a hung worker turns into a
			// detectable failure after CoordTimeout, and a cancelled run
			// releases the coordinator immediately instead of waiting the
			// timeout out.
			_, worker, ok := comm.RecvAnyCtx[int](c, par.Cancel, par.CoordTimeout)
			if !ok {
				panic(fmt.Errorf("splits: dynamic coordinator timed out after %v waiting for a work request (%d workers still active)",
					par.CoordTimeout, active))
			}
			if next < total {
				hi := min(next+chunk, total)
				comm.Send(c, worker, chunkMsg{Lo: next, Hi: hi})
				next = hi
			} else {
				comm.Send(c, worker, chunkMsg{Lo: -1})
				active--
			}
		}
	} else {
		for {
			comm.Send(c, 0, c.Rank())
			ch := comm.Recv[chunkMsg](c, 0)
			if ch.Lo < 0 {
				break
			}
			local = computeRange(ch.Lo, ch.Hi, local)
		}
	}

	// Gather all posteriors everywhere and restore canonical order.
	all := comm.AllGatherv(c, local)
	posteriors := make([]float64, total)
	for _, v := range all {
		posteriors[v.Index] = v.P
	}
	return selectSplits(q, nodes, posteriors, par, g)
}
