package splits

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"parsimone/internal/comm"
	"parsimone/internal/obs"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/synth"
	"parsimone/internal/trace"
	"parsimone/internal/tree"
)

// fixture builds a small module set with trees from synthetic data.
func fixture(t testing.TB, seed uint64) (*score.QData, [][]int, [][]*tree.Tree, *synth.Truth) {
	t.Helper()
	d, truth, err := synth.Generate(synth.Config{
		N: 20, M: 30, Regulators: 3, Modules: 2, Noise: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	pr := score.DefaultPrior()
	// Ground-truth modules as the module set (members only).
	modules := make([][]int, truth.NumModules)
	for x, mod := range truth.ModuleOf {
		if mod >= 0 {
			modules[mod] = append(modules[mod], x)
		}
	}
	// One tree per module from an even observation clustering.
	clusters := func(k int) [][]int {
		out := make([][]int, k)
		for j := 0; j < q.M; j++ {
			out[j*k/q.M] = append(out[j*k/q.M], j)
		}
		return out
	}
	trees := make([][]*tree.Tree, len(modules))
	for mi, vars := range modules {
		trees[mi] = []*tree.Tree{tree.Build(q, pr, vars, clusters(4), nil)}
	}
	return q, modules, trees, truth
}

func TestLearnBasic(t *testing.T) {
	q, modules, trees, _ := fixture(t, 1)
	res := Learn(q, score.DefaultPrior(), modules, trees, Params{NumSplits: 2}, prng.New(5), nil)
	if len(res.Weighted) == 0 || len(res.Uniform) == 0 {
		t.Fatal("no splits assigned")
	}
	if len(res.Weighted) != len(res.Uniform) {
		t.Fatalf("weighted %d != uniform %d", len(res.Weighted), len(res.Uniform))
	}
	for _, a := range res.Weighted {
		if a.Posterior <= 0 || a.Posterior > 1 {
			t.Fatalf("posterior %v out of (0,1]", a.Posterior)
		}
		if a.Module < 0 || a.Module >= len(modules) {
			t.Fatalf("module %d out of range", a.Module)
		}
		if a.Parent < 0 || a.Parent >= q.N {
			t.Fatalf("parent %d out of range", a.Parent)
		}
		if a.NodeObs < 2 {
			t.Fatalf("node with %d observations produced a split", a.NodeObs)
		}
	}
}

func TestLearnSplitsPerNode(t *testing.T) {
	q, modules, trees, _ := fixture(t, 2)
	j := 3
	res := Learn(q, score.DefaultPrior(), modules, trees, Params{NumSplits: j}, prng.New(6), nil)
	// Count per (module, tree, node): must be exactly J where present.
	counts := map[[3]int]int{}
	for _, a := range res.Weighted {
		counts[[3]int{a.Module, a.Tree, a.Node}]++
	}
	for key, c := range counts {
		if c != j {
			t.Fatalf("node %v has %d weighted splits, want %d", key, c, j)
		}
	}
}

func TestLearnDeterministic(t *testing.T) {
	q, modules, trees, _ := fixture(t, 3)
	a := Learn(q, score.DefaultPrior(), modules, trees, Params{}, prng.New(7), nil)
	b := Learn(q, score.DefaultPrior(), modules, trees, Params{}, prng.New(7), nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different splits")
	}
}

// TestParallelMatchesSequential: the §4.2 contract for the dominant phase.
func TestParallelMatchesSequential(t *testing.T) {
	q, modules, trees, _ := fixture(t, 4)
	pr := score.DefaultPrior()
	par := Params{NumSplits: 2, MaxSteps: 24}
	want := Learn(q, pr, modules, trees, par, prng.New(9), nil)
	for _, p := range []int{1, 2, 3, 5, 8} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			got := LearnParallel(c, q, pr, modules, trees, par, prng.New(9))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("p=%d rank %d: splits differ", p, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestTrueRegulatorsScoreHighly: splits on a module's true regulator must
// appear among the assigned splits with high posterior — the signal the
// whole pipeline exists to find.
func TestTrueRegulatorsScoreHighly(t *testing.T) {
	q, modules, trees, truth := fixture(t, 5)
	res := Learn(q, score.DefaultPrior(), modules, trees,
		Params{NumSplits: 4}, prng.New(11), nil)
	// For each module, check whether any weighted split uses a true
	// regulator; across modules at least one must, and its posterior must
	// be substantial.
	bestTrue := 0.0
	for _, a := range res.Weighted {
		for _, r := range truth.Regulators[a.Module] {
			if a.Parent == r && a.Posterior > bestTrue {
				bestTrue = a.Posterior
			}
		}
	}
	if bestTrue < 0.5 {
		t.Fatalf("no true regulator split with posterior ≥ 0.5 (best %v)", bestTrue)
	}
}

func TestPosteriorDegenerateSplit(t *testing.T) {
	q, modules, trees, _ := fixture(t, 6)
	par := Params{}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	ref := nodes[0]
	// Find the candidate whose value is the node's maximum for parent 0:
	// everything goes left → degenerate → posterior 0, zero steps.
	maxIdx, maxVal := 0, q.At(par.Candidates[0], ref.node.Obs[0])
	for k, j := range ref.node.Obs {
		if v := q.At(par.Candidates[0], j); v >= maxVal {
			maxVal, maxIdx = v, k
		}
	}
	ci := ref.offset + maxIdx // parent index 0 → offset + obs index
	kern := score.NewKernel(score.DefaultPrior(), maxStatsN(nodes))
	p, steps := posterior(q, kern, ref, par.Candidates, ci, prng.New(1), par, &scratch{parent: -1})
	if p != 0 || steps != 0 {
		t.Fatalf("degenerate split: posterior %v steps %d, want 0, 0", p, steps)
	}
}

func TestPosteriorStepBounds(t *testing.T) {
	q, modules, trees, _ := fixture(t, 7)
	par := Params{MinSteps: 8, MaxSteps: 32}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	g := prng.New(3)
	kern := score.NewKernel(score.DefaultPrior(), maxStatsN(nodes))
	sc := &scratch{parent: -1}
	for _, ref := range nodes[:min(3, len(nodes))] {
		for ci := ref.offset; ci < ref.offset+min(ref.count, 50); ci++ {
			_, steps := posterior(q, kern, ref, par.Candidates, ci, g.Substream(uint64(ci)), par, sc)
			if steps != 0 && (steps < par.MinSteps || steps > par.MaxSteps) {
				t.Fatalf("steps %d outside [%d, %d]", steps, par.MinSteps, par.MaxSteps)
			}
		}
	}
}

func TestEnumerateOffsets(t *testing.T) {
	q, modules, trees, _ := fixture(t, 8)
	par := Params{}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	offset := 0
	for _, ref := range nodes {
		if ref.offset != offset {
			t.Fatalf("node offset %d, want %d", ref.offset, offset)
		}
		if ref.count != len(par.Candidates)*len(ref.node.Obs) {
			t.Fatalf("node count %d, want %d", ref.count, len(par.Candidates)*len(ref.node.Obs))
		}
		if len(ref.colStats) != len(ref.node.Obs) {
			t.Fatal("column stats length mismatch")
		}
		offset += ref.count
	}
}

func TestCandidateRestriction(t *testing.T) {
	q, modules, trees, _ := fixture(t, 9)
	cands := []int{0, 1, 2} // regulators only
	res := Learn(q, score.DefaultPrior(), modules, trees,
		Params{Candidates: cands}, prng.New(13), nil)
	for _, a := range append(res.Weighted, res.Uniform...) {
		if a.Parent > 2 {
			t.Fatalf("split uses parent %d outside candidate list", a.Parent)
		}
	}
}

func TestWorkloadRecordsImbalanceSource(t *testing.T) {
	q, modules, trees, _ := fixture(t, 10)
	wl := &trace.Workload{}
	Learn(q, score.DefaultPrior(), modules, trees, Params{}, prng.New(15), wl)
	ph := wl.Phase(PhaseAssign)
	if ph == nil || len(ph.Items) == 0 {
		t.Fatal("no work recorded")
	}
	if ph.PerSegmentBarrier {
		t.Fatal("split phase must be a single global partition, not per-segment")
	}
	// Item costs must actually vary (the imbalance source).
	minC, maxC := ph.Items[0].Cost, ph.Items[0].Cost
	for _, it := range ph.Items {
		minC = min(minC, it.Cost)
		maxC = max(maxC, it.Cost)
	}
	if maxC <= minC {
		t.Fatal("all split costs identical; no imbalance to study")
	}
}

// TestParamsWithDefaults pins the zero-value sentinel semantics documented
// on Params: zero and negative counts select defaults; negative CIHalfWidth
// is honored and disables early termination.
func TestParamsWithDefaults(t *testing.T) {
	cases := []struct {
		name                       string
		in                         Params
		splits, maxSteps, minSteps int
		ciHW                       float64
	}{
		{"zero value", Params{}, 2, 64, 8, 0.08},
		{"negative counts fall back", Params{NumSplits: -1, MaxSteps: -64, MinSteps: -8}, 2, 64, 8, 0.08},
		{"negative half-width honored", Params{CIHalfWidth: -1}, 2, 64, 8, -1},
		{"explicit values kept", Params{NumSplits: 3, MaxSteps: 32, MinSteps: 4, CIHalfWidth: 0.2}, 3, 32, 4, 0.2},
	}
	for _, tc := range cases {
		p := tc.in.withDefaults(10)
		if p.NumSplits != tc.splits || p.MaxSteps != tc.maxSteps || p.MinSteps != tc.minSteps || p.CIHalfWidth != tc.ciHW {
			t.Errorf("%s: got %+v", tc.name, p)
		}
		if len(p.Candidates) != 10 || p.Candidates[9] != 9 {
			t.Errorf("%s: candidate default: %v", tc.name, p.Candidates)
		}
	}
}

// TestNegativeCIHalfWidthRunsToMaxSteps pins the "disabled early
// termination" semantics end to end: every posterior consumes exactly
// MaxSteps bootstrap resamples (or one degenerate scan).
func TestNegativeCIHalfWidthRunsToMaxSteps(t *testing.T) {
	q, modules, trees, _ := fixture(t, 3)
	pr := score.DefaultPrior()
	par := Params{MaxSteps: 12, CIHalfWidth: -1}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	g := prng.New(9)
	kern := score.NewKernel(pr, maxStatsN(nodes))
	sc := &scratch{parent: -1}
	checked := 0
	for _, ref := range nodes {
		for ci := ref.offset; ci < ref.offset+ref.count && checked < 50; ci++ {
			_, steps := posterior(q, kern, ref, par.Candidates, ci, g.Substream(uint64(ci)), par, sc)
			if steps != 0 && steps != par.MaxSteps {
				t.Fatalf("candidate %d stopped early at %d steps despite disabled CI", ci, steps)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no candidates checked")
	}
}

// TestSelectSplitsPosteriorExtremes is the satellite regression test for the
// shared quantizer: selection must stay well-defined (and p-invariant, via
// the shared grid) when posteriors sit at the extremes — exactly 0,
// sub-ULP positive, and exactly 1. Before score.QuantizeProb, a sub-ULP
// posterior quantized to weight 0 while staying "retained", so a node whose
// only retained candidates were sub-ULP handed WeightedIndex an all-zero
// vector, which returns -1 and crashed the selection.
func TestSelectSplitsPosteriorExtremes(t *testing.T) {
	q, modules, trees, _ := fixture(t, 5)
	par := Params{NumSplits: 2}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	total := 0
	for _, ref := range nodes {
		total += ref.count
	}
	tiny := 1e-300 // rounds to zero on the 2^32 grid without QuantizeProb's floor
	for name, fill := range map[string]func(i int) float64{
		"all zero":       func(int) float64 { return 0 },
		"all one":        func(int) float64 { return 1 },
		"sub-ULP only":   func(int) float64 { return tiny },
		"mixed extremes": func(i int) float64 { return []float64{0, tiny, 1}[i%3] },
	} {
		posteriors := make([]float64, total)
		for i := range posteriors {
			posteriors[i] = fill(i)
		}
		res := selectSplits(q, nodes, posteriors, par, prng.New(21))
		for _, a := range append(append([]Assigned(nil), res.Weighted...), res.Uniform...) {
			if a.Posterior <= 0 {
				t.Fatalf("%s: selected a zero-posterior candidate: %+v", name, a)
			}
		}
		if name == "all zero" && (len(res.Weighted) != 0 || len(res.Uniform) != 0) {
			t.Fatalf("all-zero posteriors still selected splits: %+v", res)
		}
		if name != "all zero" && len(res.Weighted) == 0 {
			t.Fatalf("%s: no splits selected", name)
		}
	}
}

// BenchmarkNodeLookup compares the per-candidate sort.Search node lookup
// (the old hot-loop code) against the monotone cursor that replaced it,
// over a realistic enumeration. The surrounding posterior work is elided so
// the benchmark isolates exactly the lookup cost the cursor removes.
func BenchmarkNodeLookup(b *testing.B) {
	q, modules, trees, _ := fixture(b, 1)
	par := Params{}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	total := 0
	for _, ref := range nodes {
		total += ref.count
	}
	b.Run("sort.Search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink int
			for ci := 0; ci < total; ci++ {
				sink += nodeIndexAt(nodes, ci)
			}
			_ = sink
		}
	})
	b.Run("cursor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink, ni int
			for ci := 0; ci < total; ci++ {
				for nodes[ni].offset+nodes[ni].count <= ci {
					ni++
				}
				sink += ni
			}
			_ = sink
		}
	})
}

func BenchmarkLearn(b *testing.B) {
	q, modules, trees, _ := fixture(b, 1)
	pr := score.DefaultPrior()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Learn(q, pr, modules, trees, Params{MaxSteps: 16}, prng.New(uint64(i)), nil)
	}
}

// TestDynamicMatchesStatic: the dynamic coordinator/worker distribution
// (the paper's §6 future work) must return exactly the static schemes'
// result — per-split substreams make posteriors independent of which rank
// computes them.
func TestDynamicMatchesStatic(t *testing.T) {
	q, modules, trees, _ := fixture(t, 11)
	pr := score.DefaultPrior()
	par := Params{NumSplits: 2, MaxSteps: 24}
	want := Learn(q, pr, modules, trees, par, prng.New(17), nil)
	for _, p := range []int{1, 2, 3, 5} {
		for _, chunk := range []int{0, 1, 7, 1000000} {
			_, err := comm.Run(p, func(c *comm.Comm) error {
				got := LearnParallelDynamic(c, q, pr, modules, trees, par, prng.New(17), chunk)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("p=%d chunk=%d rank %d: dynamic result differs", p, chunk, c.Rank())
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d chunk=%d: %v", p, chunk, err)
			}
		}
	}
}

// TestScanSelectionMatchesGather: the paper's segmented-scan selection path
// must choose bit-identical splits to the gather-based path and the
// sequential path — integer weights make the distributed prefix sums exact.
func TestScanSelectionMatchesGather(t *testing.T) {
	q, modules, trees, _ := fixture(t, 12)
	pr := score.DefaultPrior()
	par := Params{NumSplits: 3, MaxSteps: 24}
	want := Learn(q, pr, modules, trees, par, prng.New(31), nil)
	for _, p := range []int{1, 2, 3, 5, 8} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			got := LearnParallelScan(c, q, pr, modules, trees, par, prng.New(31))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("p=%d rank %d: scan-selected splits differ", p, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestWorkersInvariance: the intra-rank worker pool must not change the
// result — sequential Learn and all three parallel paths return bit-identical
// splits for every (p, W) combination.
func TestWorkersInvariance(t *testing.T) {
	q, modules, trees, _ := fixture(t, 14)
	pr := score.DefaultPrior()
	base := Params{NumSplits: 2, MaxSteps: 24}
	want := Learn(q, pr, modules, trees, base, prng.New(23), nil)
	for _, workers := range []int{2, 3, 8} {
		par := base
		par.Workers = workers
		if got := Learn(q, pr, modules, trees, par, prng.New(23), nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("sequential W=%d: splits differ", workers)
		}
		for _, p := range []int{2, 3} {
			for name, run := range map[string]func(c *comm.Comm) Result{
				"gather": func(c *comm.Comm) Result {
					return LearnParallel(c, q, pr, modules, trees, par, prng.New(23))
				},
				"scan": func(c *comm.Comm) Result {
					return LearnParallelScan(c, q, pr, modules, trees, par, prng.New(23))
				},
				"dynamic": func(c *comm.Comm) Result {
					return LearnParallelDynamic(c, q, pr, modules, trees, par, prng.New(23), 16)
				},
			} {
				_, err := comm.Run(p, func(c *comm.Comm) error {
					if got := run(c); !reflect.DeepEqual(got, want) {
						t.Errorf("%s p=%d W=%d rank %d: splits differ", name, p, workers, c.Rank())
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%s p=%d W=%d: %v", name, p, workers, err)
				}
			}
		}
	}
}

// TestWorkersTraceDeterministic: with W workers the recorded trace items are
// identical to the serial recording (canonical candidate order), and the
// per-worker counters are reproducible with totals matching the item costs.
func TestWorkersTraceDeterministic(t *testing.T) {
	q, modules, trees, _ := fixture(t, 15)
	pr := score.DefaultPrior()
	record := func(workers int) *trace.Phase {
		wl := &trace.Workload{}
		Learn(q, pr, modules, trees, Params{MaxSteps: 24, Workers: workers}, prng.New(29), wl)
		return wl.Phase(PhaseAssign)
	}
	serial := record(1)
	for _, workers := range []int{1, 4} {
		a, b := record(workers), record(workers)
		if !reflect.DeepEqual(a.Items, serial.Items) {
			t.Fatalf("W=%d: trace items differ from serial recording", workers)
		}
		if !reflect.DeepEqual(a.WorkerCost, b.WorkerCost) {
			t.Fatalf("W=%d: worker counters not reproducible: %v vs %v", workers, a.WorkerCost, b.WorkerCost)
		}
		var items, workersSum float64
		for _, it := range a.Items {
			items += it.Cost
		}
		for _, c := range a.WorkerCost {
			workersSum += c
		}
		if items != workersSum {
			t.Fatalf("W=%d: worker cost total %v != item cost total %v", workers, workersSum, items)
		}
	}
	if len(record(4).WorkerCost) != 4 {
		t.Fatal("W=4 did not record 4 worker counters")
	}
}

// BenchmarkLearnWorkers measures the split-scoring wall time at W ∈ {1,2,4,8}
// on one fixture — the intra-rank speedup probe (>1 on multicore hosts).
func BenchmarkLearnWorkers(b *testing.B) {
	q, modules, trees, _ := fixture(b, 1)
	pr := score.DefaultPrior()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("W%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Learn(q, pr, modules, trees, Params{MaxSteps: 32, Workers: workers}, prng.New(uint64(i)), nil)
			}
		})
	}
}

// TestScanUsesLessCommunication: the scan path must move fewer elements
// than the gather path (its entire reason to exist).
func TestScanUsesLessCommunication(t *testing.T) {
	q, modules, trees, _ := fixture(t, 13)
	pr := score.DefaultPrior()
	par := Params{NumSplits: 2, MaxSteps: 16}
	elems := func(fn func(c *comm.Comm)) int64 {
		stats, err := comm.Run(4, func(c *comm.Comm) error {
			fn(c)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range stats {
			total += s.Elems
		}
		return total
	}
	gather := elems(func(c *comm.Comm) { LearnParallel(c, q, pr, modules, trees, par, prng.New(3)) })
	scan := elems(func(c *comm.Comm) { LearnParallelScan(c, q, pr, modules, trees, par, prng.New(3)) })
	if scan >= gather {
		t.Fatalf("scan moved %d elements, gather %d — no saving", scan, gather)
	}
}

// TestParamsValidate: nil Candidates means "all variables" and is fine; a
// non-nil empty slice enumerates zero candidate splits and must be rejected
// instead of silently yielding an empty Result.
func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("nil Candidates rejected: %v", err)
	}
	if err := (Params{Candidates: []int{0, 2}}).Validate(); err != nil {
		t.Fatalf("non-empty Candidates rejected: %v", err)
	}
	if err := (Params{Candidates: []int{}}).Validate(); err == nil {
		t.Fatal("empty non-nil Candidates accepted")
	}
}

// TestScanMetricsParity: two same-seed runs that differ only in
// ScanSelection must produce byte-identical metrics dumps — the scan path
// used to skip the split_steps histogram the gather path records.
func TestScanMetricsParity(t *testing.T) {
	q, modules, trees, _ := fixture(t, 16)
	pr := score.DefaultPrior()
	dump := func(scan bool) string {
		reg := obs.NewRegistry()
		par := Params{NumSplits: 2, MaxSteps: 24, Hooks: obs.NewHooks(nil, reg)}
		_, err := comm.Run(2, func(c *comm.Comm) error {
			if scan {
				LearnParallelScan(c, q, pr, modules, trees, par, prng.New(21))
			} else {
				LearnParallel(c, q, pr, modules, trees, par, prng.New(21))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	gather, scan := dump(false), dump(true)
	if !strings.Contains(scan, "split_steps") {
		t.Fatal("scan path did not record the split_steps histogram")
	}
	if !strings.Contains(scan, "kernel_table_hits_total") {
		t.Fatal("scan path did not record the kernel cache counters")
	}
	if gather != scan {
		t.Errorf("metrics dumps differ across ScanSelection:\n--- gather ---\n%s\n--- scan ---\n%s", gather, scan)
	}
}

// posteriorPreKernel is the pre-kernel posterior, kept verbatim as the
// differential baseline: direct Prior.LogML per bootstrap step, a separate
// q.At degenerate pre-scan, and a prow comparison per resampled pick.
// TestPosteriorMatchesPreKernel and BenchmarkPosterior run it against the
// kernel implementation.
func posteriorPreKernel(q *score.QData, pr score.Prior, ref *nodeRef, candParents []int, ci int, sub *prng.MRG3, par Params) (float64, int) {
	local := ci - ref.offset
	nObs := len(ref.node.Obs)
	parent := candParents[local/nObs]
	value := q.At(parent, ref.node.Obs[local%nObs])
	left := 0
	for _, j := range ref.node.Obs {
		if q.At(parent, j) <= value {
			left++
		}
	}
	if left == 0 || left == nObs {
		return 0, 0
	}
	prow := q.Row(parent)
	successes, steps := 0, 0
	for steps < par.MaxSteps {
		steps++
		var ls, rs score.Stats
		for k := 0; k < nObs; k++ {
			pick := sub.Intn(nObs)
			j := ref.node.Obs[pick]
			if prow[j] <= value {
				ls.Merge(ref.colStats[pick])
			} else {
				rs.Merge(ref.colStats[pick])
			}
		}
		delta := pr.LogML(ls) + pr.LogML(rs) - pr.LogML(ls.Plus(rs))
		if delta > 0 {
			successes++
		}
		if steps >= par.MinSteps {
			phat := float64(successes) / float64(steps)
			hw := 1.96 * math.Sqrt(phat*(1-phat)/float64(steps))
			if hw < par.CIHalfWidth {
				break
			}
		}
	}
	return float64(successes) / float64(steps), steps
}

// TestPosteriorMatchesPreKernel: the kernel/leftMask posterior must return
// the identical (posterior, steps) pair — same float bits, same PRNG
// consumption — as the pre-kernel implementation for every candidate.
func TestPosteriorMatchesPreKernel(t *testing.T) {
	q, modules, trees, _ := fixture(t, 17)
	pr := score.DefaultPrior()
	par := Params{MaxSteps: 24}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	kern := score.NewKernel(pr, maxStatsN(nodes))
	sc := &scratch{parent: -1}
	g := prng.New(19)
	for _, ref := range nodes {
		for ci := ref.offset; ci < ref.offset+ref.count; ci++ {
			wantP, wantS := posteriorPreKernel(q, pr, ref, par.Candidates, ci, g.Substream(uint64(ci)), par)
			gotP, gotS := posterior(q, kern, ref, par.Candidates, ci, g.Substream(uint64(ci)), par, sc)
			if math.Float64bits(gotP) != math.Float64bits(wantP) || gotS != wantS {
				t.Fatalf("candidate %d: kernel posterior (%v, %d), pre-kernel (%v, %d)",
					ci, gotP, gotS, wantP, wantS)
			}
		}
	}
	if kern.Fallbacks() != 0 {
		t.Fatalf("kernel fell back %d times; maxStatsN sized the table too small", kern.Fallbacks())
	}
}

// TestPosteriorBatchBitIdentical: the batched body (per-pair sorted ranks,
// branch-free merge, exact logML memo) must return the identical
// (posterior, steps) pair — same float bits, same PRNG consumption — as the
// unbatched body for every candidate, and whole learned Results must be
// byte-identical across DisableBatch.
func TestPosteriorBatchBitIdentical(t *testing.T) {
	q, modules, trees, _ := fixture(t, 18)
	pr := score.DefaultPrior()
	par := Params{MaxSteps: 24}.withDefaults(q.N)
	parOff := par
	parOff.DisableBatch = true
	nodes := enumerate(q, modules, trees, par.Candidates)
	kern := score.NewKernel(pr, maxStatsN(nodes))
	scBatch := &scratch{parent: -1}
	scRef := &scratch{parent: -1}
	g := prng.New(19)
	for _, ref := range nodes {
		for ci := ref.offset; ci < ref.offset+ref.count; ci++ {
			wantP, wantS := posterior(q, kern, ref, parOff.Candidates, ci, g.Substream(uint64(ci)), parOff, scRef)
			gotP, gotS := posterior(q, kern, ref, par.Candidates, ci, g.Substream(uint64(ci)), par, scBatch)
			if math.Float64bits(gotP) != math.Float64bits(wantP) || gotS != wantS {
				t.Fatalf("candidate %d: batched (%v, %d), unbatched (%v, %d)",
					ci, gotP, gotS, wantP, wantS)
			}
		}
	}
	if scBatch.memo == nil || scBatch.memo.Misses() == 0 {
		t.Fatal("batched sweep never consulted the memo")
	}
	if scRef.memo != nil {
		t.Fatal("unbatched sweep allocated a memo")
	}
	// End to end: same seed, batch on vs off, byte-identical Result.
	for _, seed := range []uint64{5, 23} {
		on := Learn(q, pr, modules, trees, Params{MaxSteps: 24}, prng.New(seed), nil)
		off := Learn(q, pr, modules, trees, Params{MaxSteps: 24, DisableBatch: true}, prng.New(seed), nil)
		if !reflect.DeepEqual(on, off) {
			t.Fatalf("seed %d: learned splits differ across DisableBatch", seed)
		}
	}
}

// TestKernelHitCounterExact is the satellite regression test for the
// kernel_table_hits_total derivation: with DisableKernel every N>0 call
// falls back to Prior.LogML, so the table serves exactly zero calls — but
// the old derivation (3·Σsteps − fallbacks) credited the kernel's
// uncounted N==0 early returns as phantom table hits. The fixture's small
// nodes make one-sided resamples (an empty block on one side) common, so
// zero-N calls provably occur.
func TestKernelHitCounterExact(t *testing.T) {
	q, modules, trees, _ := fixture(t, 16)
	pr := score.DefaultPrior()
	for name, disableBatch := range map[string]bool{"batched": false, "unbatched": true} {
		reg := obs.NewRegistry()
		par := Params{MaxSteps: 24, DisableKernel: true, DisableBatch: disableBatch,
			Hooks: obs.NewHooks(nil, reg)}
		Learn(q, pr, modules, trees, par, prng.New(21), nil)
		counter := func(metric string) int64 {
			return reg.Counter(metric, "", "phase", PhaseAssign).Value()
		}
		if hits := counter("kernel_table_hits_total"); hits != 0 {
			t.Errorf("%s: DisableKernel run reports %d table hits, want 0", name, hits)
		}
		if misses := counter("kernel_table_misses_total"); misses == 0 {
			t.Errorf("%s: DisableKernel run reports no fallbacks", name)
		}
		// The regression's premise: empty-block calls actually happen on
		// this fixture (one-sided resamples), so the old derivation would
		// have credited them as phantom hits.
		if zero := counter("kernel_zero_blocks_total"); zero == 0 {
			t.Errorf("%s: no empty-block calls observed; fixture does not exercise the bug", name)
		}
		if disableBatch {
			if mh := counter("kernel_memo_hits_total") + counter("kernel_memo_misses_total"); mh != 0 {
				t.Errorf("unbatched run reports %d memo lookups, want 0", mh)
			}
		} else if counter("kernel_memo_misses_total") == 0 {
			t.Error("batched run reports no memo lookups")
		}
	}
	// With the kernel enabled the accounting identity still must hold:
	// hits + fallbacks + memo serves + empty blocks = 3·Σsteps, with
	// fallbacks zero (maxStatsN sizes the table to cover every block).
	reg := obs.NewRegistry()
	Learn(q, pr, modules, trees, Params{MaxSteps: 24, Hooks: obs.NewHooks(nil, reg)}, prng.New(21), nil)
	if misses := reg.Counter("kernel_table_misses_total", "", "phase", PhaseAssign).Value(); misses != 0 {
		t.Errorf("enabled-kernel run reports %d fallbacks, want 0", misses)
	}
	if hits := reg.Counter("kernel_table_hits_total", "", "phase", PhaseAssign).Value(); hits <= 0 {
		t.Errorf("enabled-kernel run reports %d table hits, want > 0", hits)
	}
}

// BenchmarkPosterior contrasts the pre-kernel hot loop, the PR 5 kernel
// implementation (DisableBatch), and the batched implementation over one
// full candidate sweep (the acceptance bar is ≥ 1.5× batch vs kernel).
func BenchmarkPosterior(b *testing.B) {
	q, modules, trees, _ := fixture(b, 1)
	pr := score.DefaultPrior()
	par := Params{MaxSteps: 32, CIHalfWidth: -1}.withDefaults(q.N)
	nodes := enumerate(q, modules, trees, par.Candidates)
	total := 0
	for _, ref := range nodes {
		total += ref.count
	}
	// Position one generator per candidate up front: substream derivation is
	// identical on both sides and not part of the scoring work under test.
	g := prng.New(11)
	subs := make([]*prng.MRG3, total)
	for ci := range subs {
		subs[ci] = g.Substream(uint64(ci))
	}
	sweep := func(eval func(ref *nodeRef, ci int, sub *prng.MRG3) float64) float64 {
		var sum float64
		ni := 0
		for ci := 0; ci < total; ci++ {
			for nodes[ni].offset+nodes[ni].count <= ci {
				ni++
			}
			sum += eval(nodes[ni], ci, subs[ci].Clone())
		}
		return sum
	}
	b.Run("prekernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(func(ref *nodeRef, ci int, sub *prng.MRG3) float64 {
				p, _ := posteriorPreKernel(q, pr, ref, par.Candidates, ci, sub, par)
				return p
			})
		}
	})
	b.Run("kernel", func(b *testing.B) {
		parOff := par
		parOff.DisableBatch = true
		kern := score.NewKernel(pr, maxStatsN(nodes))
		sc := &scratch{parent: -1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(func(ref *nodeRef, ci int, sub *prng.MRG3) float64 {
				p, _ := posterior(q, kern, ref, parOff.Candidates, ci, sub, parOff, sc)
				return p
			})
		}
	})
	b.Run("batch", func(b *testing.B) {
		kern := score.NewKernel(pr, maxStatsN(nodes))
		sc := &scratch{parent: -1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(func(ref *nodeRef, ci int, sub *prng.MRG3) float64 {
				p, _ := posterior(q, kern, ref, par.Candidates, ci, sub, par, sc)
				return p
			})
		}
	})
}
