// Recovery events. The supervised parallel driver (core.LearnParallel)
// restarts a run after a rank failure, resuming from the newest
// checkpoints; each restart is recorded as a RecoveryEvent so operators can
// see what failed and how often — determinism (DESIGN §6) guarantees the
// recovered network is bit-identical, but the failures themselves must stay
// visible.

package trace

import "fmt"

// RecoveryEvent records one supervised restart after a rank failure.
type RecoveryEvent struct {
	// Attempt is the 1-based restart number that followed this failure.
	Attempt int
	// Rank is the rank whose failure aborted the world.
	Rank int
	// Panicked is true when the rank panicked (a crash) rather than
	// returning an error.
	Panicked bool
	// Err describes the originating failure.
	Err string
}

// String formats the event for run logs.
func (e RecoveryEvent) String() string {
	what := "failed"
	if e.Panicked {
		what = "crashed"
	}
	return fmt.Sprintf("restart %d: rank %d %s: %s", e.Attempt, e.Rank, what, e.Err)
}
