// Package trace provides the instrumentation used to reproduce the paper's
// performance analysis: per-task wall-clock timers (Fig. 5a/5c), per-work-item
// cost accounting, the load-imbalance measure of §5.3.1, and a strong-scaling
// time model.
//
// The time model addresses a hardware substitution documented in DESIGN.md:
// the paper measures wall time on up to 4096 physical cores, which this
// environment does not have. The engines here record the cost of every work
// item (in abstract cost units proportional to the arithmetic performed,
// e.g. sampling steps × observations for a candidate split). Because the
// parallel algorithm partitions work items over ranks with a fixed
// deterministic rule, the per-rank work for any p can be computed exactly
// from the recorded item costs, and the modeled parallel time is
//
//	T(p) = κ · max_k work_k(p) + comm(p)
//
// where κ (seconds per cost unit) is calibrated from the measured sequential
// wall time and comm(p) charges each collective call α·⌈log₂ p⌉ plus β per
// transferred word, the standard postal model the paper's complexity analysis
// uses (§3.1).
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Timers accumulates named wall-clock durations in first-use order, matching
// the paper's task decomposition (GaneSH / consensus clustering / learning
// modules, and the phases within the last task).
type Timers struct {
	order []string
	m     map[string]time.Duration
}

// NewTimers returns an empty timer set.
func NewTimers() *Timers {
	return &Timers{m: make(map[string]time.Duration)}
}

// Add accumulates d into the named timer.
func (t *Timers) Add(name string, d time.Duration) {
	if _, ok := t.m[name]; !ok {
		t.order = append(t.order, name)
	}
	t.m[name] += d
}

// Time runs fn and accumulates its duration into the named timer.
func (t *Timers) Time(name string, fn func()) {
	start := time.Now()
	fn()
	t.Add(name, time.Since(start))
}

// Get returns the accumulated duration for name (zero if never added).
func (t *Timers) Get(name string) time.Duration { return t.m[name] }

// Names returns the timer names in first-use order.
func (t *Timers) Names() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Total returns the sum of all timers.
func (t *Timers) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.m {
		sum += d
	}
	return sum
}

// String formats the timers as "name=duration" pairs in first-use order.
func (t *Timers) String() string {
	s := ""
	for _, name := range t.order {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", name, t.m[name])
	}
	return s
}

// Imbalance is the paper's load-imbalance measure (§5.3.1): the deviation of
// the maximum per-rank load from the average load, normalized by the average.
// Zero means perfectly balanced. It returns 0 for empty input or zero total.
func Imbalance(perRank []float64) float64 {
	if len(perRank) == 0 {
		return 0
	}
	var sum, maxv float64
	for _, w := range perRank {
		sum += w
		if w > maxv {
			maxv = w
		}
	}
	//parsivet:floateq — a sum of non-negative weights is exactly 0 iff every weight is
	if sum == 0 {
		return 0
	}
	avg := sum / float64(len(perRank))
	return (maxv - avg) / avg
}

// Item is one recorded unit of parallelizable work. Cost is in abstract cost
// units. Seg identifies the coarse-grained container the item belongs to
// (e.g. the tree-node index for a candidate split): the coarse distribution
// scheme of §3.2.3 assigns whole segments to ranks, while the paper's
// fine-grained scheme block-partitions the flat item list.
type Item struct {
	Cost float64
	Seg  int
}

// Phase is the recorded work of one parallel phase of the algorithm.
type Phase struct {
	Name  string
	Items []Item
	// Collectives is the number of collective operations the phase
	// performs; each costs α·⌈log₂ p⌉ in the model. Words is the total
	// number of words moved through collectives, charged β each.
	Collectives int64
	Words       int64
	// SerialCost is work replicated on every rank (e.g. applying cluster
	// state transitions), which does not shrink with p.
	SerialCost float64
	// PerSegmentBarrier marks phases whose items are produced by a
	// sequence of collective decisions (one segment per decision, e.g.
	// the candidate evaluations of one Gibbs step): ranks synchronize
	// after every segment, so each segment is block-partitioned
	// independently and the per-rank work is the sum over segments of the
	// rank's share. Without it, the whole item list is partitioned once.
	PerSegmentBarrier bool
	// WorkerCost[w] is the cost this rank's intra-rank worker w evaluated
	// (the hybrid thread level under the rank level; internal/pool). The
	// pool's static chunk assignment makes these counters deterministic.
	WorkerCost []float64
}

// AddWorkerCost accumulates one pool invocation's per-worker cost counters
// into the phase, growing WorkerCost to the widest pool seen.
func (ph *Phase) AddWorkerCost(cost []float64) {
	for len(ph.WorkerCost) < len(cost) {
		ph.WorkerCost = append(ph.WorkerCost, 0)
	}
	for w, c := range cost {
		ph.WorkerCost[w] += c
	}
}

// WorkerImbalance returns the §5.3.1 imbalance measure applied one level
// down, across the intra-rank workers that evaluated this phase's items.
func (ph *Phase) WorkerImbalance() float64 { return Imbalance(ph.WorkerCost) }

// TotalCost returns the sum of item costs plus the serial cost.
func (ph *Phase) TotalCost() float64 {
	sum := ph.SerialCost
	for _, it := range ph.Items {
		sum += it.Cost
	}
	return sum
}

// Workload is the complete work recording of one run, in phase order.
type Workload struct {
	Phases []*Phase
}

// AddPhase appends a phase and returns it for the caller to fill.
func (w *Workload) AddPhase(name string) *Phase {
	ph := &Phase{Name: name}
	w.Phases = append(w.Phases, ph)
	return ph
}

// Phase returns the phase with the given name, or nil.
func (w *Workload) Phase(name string) *Phase {
	for _, ph := range w.Phases {
		if ph.Name == name {
			return ph
		}
	}
	return nil
}

// TotalCost sums all phase costs.
func (w *Workload) TotalCost() float64 {
	var sum float64
	for _, ph := range w.Phases {
		sum += ph.TotalCost()
	}
	return sum
}

// Scheme selects how a phase's items are distributed over ranks.
type Scheme int

const (
	// StaticFine block-partitions the flat item list over ranks — the
	// paper's scheme (Algorithm 5, line 5).
	StaticFine Scheme = iota
	// StaticCoarse assigns whole segments to ranks round-robin — the
	// "simple parallelization scheme" §3.2.3 rejects for load imbalance.
	StaticCoarse
	// Dynamic deals items to ranks greedily in chunks, least-loaded rank
	// first — the dynamic load balancing named as future work in §6.
	Dynamic
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case StaticFine:
		return "static-fine"
	case StaticCoarse:
		return "static-coarse"
	case Dynamic:
		return "dynamic"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Model holds the calibration constants of the time model.
type Model struct {
	// SecPerCost converts cost units to seconds; calibrate with
	// Calibrate.
	SecPerCost float64
	// Alpha is the per-hop collective latency (seconds); Beta the
	// per-word transfer time (seconds). Defaults mirror an HDR100-class
	// interconnect like the paper's testbed.
	Alpha float64
	Beta  float64
	// DynamicChunk is the chunk size used by the Dynamic scheme.
	DynamicChunk int
}

// DefaultModel returns a model with interconnect constants representative of
// the paper's HDR100 InfiniBand testbed (≈1.5 µs collective hop latency,
// ≈1 ns per 8-byte word) and unit compute cost. Call Calibrate to set
// SecPerCost from a measured sequential run.
func DefaultModel() Model {
	return Model{SecPerCost: 1, Alpha: 1.5e-6, Beta: 1e-9, DynamicChunk: 64}
}

// Calibrate sets SecPerCost so that the workload's total cost corresponds to
// the measured sequential duration.
func (m *Model) Calibrate(w *Workload, measured time.Duration) {
	total := w.TotalCost()
	if total > 0 {
		m.SecPerCost = measured.Seconds() / total
	}
}

// PerRankWork returns each rank's total cost for the phase under the given
// scheme with p ranks.
func (m Model) PerRankWork(ph *Phase, p int, scheme Scheme) []float64 {
	work := make([]float64, p)
	switch scheme {
	case StaticFine:
		if ph.PerSegmentBarrier {
			// Partition each contiguous same-segment run separately;
			// a rank's work within a barrier window is max-combined
			// across ranks by the caller via the overall max, and the
			// sum over windows approximates the lock-step schedule.
			perSegmentWork(ph.Items, p, work)
			break
		}
		n := len(ph.Items)
		for k := 0; k < p; k++ {
			lo, hi := blockRange(n, p, k)
			for i := lo; i < hi; i++ {
				work[k] += ph.Items[i].Cost
			}
		}
	case StaticCoarse:
		for _, it := range ph.Items {
			work[seg(it)%p] += it.Cost
		}
	case Dynamic:
		chunk := m.DynamicChunk
		if chunk <= 0 {
			chunk = 64
		}
		// Greedy on-line dealing: each chunk goes to the currently
		// least-loaded rank, approximating a work queue.
		for lo := 0; lo < len(ph.Items); lo += chunk {
			hi := min(lo+chunk, len(ph.Items))
			var c float64
			for _, it := range ph.Items[lo:hi] {
				c += it.Cost
			}
			k := argmin(work)
			work[k] += c
		}
	}
	for k := range work {
		work[k] += ph.SerialCost
	}
	return work
}

// perSegmentWork block-partitions each contiguous same-segment run of items
// independently and accumulates every rank's share. With near-uniform item
// costs inside a segment (the GaneSH case), rank 0 always holds a widest
// block, so max_k(work_k) equals the lock-step time Σ_seg max_k(share).
func perSegmentWork(items []Item, p int, work []float64) {
	for lo := 0; lo < len(items); {
		hi := lo + 1
		for hi < len(items) && items[hi].Seg == items[lo].Seg {
			hi++
		}
		n := hi - lo
		for k := 0; k < p; k++ {
			a, b := blockRange(n, p, k)
			for i := a; i < b; i++ {
				work[k] += items[lo+i].Cost
			}
		}
		lo = hi
	}
}

func seg(it Item) int {
	if it.Seg < 0 {
		return 0
	}
	return it.Seg
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// PhaseTime returns the modeled duration of one phase on p ranks: the
// maximum per-rank compute time plus the communication charge.
func (m Model) PhaseTime(ph *Phase, p int, scheme Scheme) time.Duration {
	return m.HybridPhaseTime(ph, p, 1, scheme)
}

// HybridPhaseTime returns the modeled duration of one phase on p ranks with
// W intra-rank workers each: a rank's partitionable item work divides by W
// (the pool evaluates it concurrently), while SerialCost — replicated state
// transitions outside the pool — does not, an Amdahl term that bounds the
// hybrid speedup exactly as replication bounds the rank-level speedup.
func (m Model) HybridPhaseTime(ph *Phase, p, workers int, scheme Scheme) time.Duration {
	if workers < 1 {
		workers = 1
	}
	work := m.PerRankWork(ph, p, scheme)
	var maxWork float64
	for _, w := range work {
		h := (w-ph.SerialCost)/float64(workers) + ph.SerialCost
		if h > maxWork {
			maxWork = h
		}
	}
	sec := maxWork * m.SecPerCost
	if p > 1 {
		sec += float64(ph.Collectives) * m.Alpha * ceilLog2(p)
		sec += float64(ph.Words) * m.Beta
	}
	return time.Duration(sec * float64(time.Second))
}

// Time returns the modeled end-to-end duration on p ranks.
func (m Model) Time(w *Workload, p int, scheme Scheme) time.Duration {
	return m.HybridTime(w, p, 1, scheme)
}

// HybridTime returns the modeled end-to-end duration on p ranks × W workers.
func (m Model) HybridTime(w *Workload, p, workers int, scheme Scheme) time.Duration {
	var total time.Duration
	for _, ph := range w.Phases {
		total += m.HybridPhaseTime(ph, p, workers, scheme)
	}
	return total
}

// PhaseImbalance returns the §5.3.1 imbalance measure for one phase at p
// ranks under the scheme.
func (m Model) PhaseImbalance(ph *Phase, p int, scheme Scheme) float64 {
	return Imbalance(m.PerRankWork(ph, p, scheme))
}

func ceilLog2(p int) float64 {
	l := 0
	for v := p - 1; v > 0; v >>= 1 {
		l++
	}
	return float64(l)
}

// blockRange mirrors comm.BlockRange; duplicated to keep trace free of a
// dependency on the runtime package (comm depends on nothing, trace depends
// on nothing — engines depend on both).
func blockRange(n, size, rank int) (lo, hi int) {
	base := n / size
	rem := n % size
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// SortedPhaseNames returns the phase names sorted alphabetically; useful for
// stable reporting.
func (w *Workload) SortedPhaseNames() []string {
	names := make([]string, 0, len(w.Phases))
	for _, ph := range w.Phases {
		names = append(names, ph.Name)
	}
	sort.Strings(names)
	return names
}
