package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimersAccumulate(t *testing.T) {
	tm := NewTimers()
	tm.Add("a", time.Second)
	tm.Add("b", 2*time.Second)
	tm.Add("a", time.Second)
	if got := tm.Get("a"); got != 2*time.Second {
		t.Fatalf("a = %v", got)
	}
	if got := tm.Total(); got != 4*time.Second {
		t.Fatalf("total = %v", got)
	}
	names := tm.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestTimersTime(t *testing.T) {
	tm := NewTimers()
	tm.Time("sleep", func() { time.Sleep(10 * time.Millisecond) })
	if tm.Get("sleep") < 5*time.Millisecond {
		t.Fatalf("timer did not measure: %v", tm.Get("sleep"))
	}
}

func TestTimersString(t *testing.T) {
	tm := NewTimers()
	tm.Add("x", time.Second)
	if tm.String() != "x=1s" {
		t.Fatalf("got %q", tm.String())
	}
}

func TestImbalanceBalanced(t *testing.T) {
	if got := Imbalance([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("balanced imbalance = %v", got)
	}
}

func TestImbalanceKnownValue(t *testing.T) {
	// max=6, avg=3 → (6−3)/3 = 1.
	if got := Imbalance([]float64{6, 2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if Imbalance(nil) != 0 {
		t.Fatal("nil input")
	}
	if Imbalance([]float64{0, 0}) != 0 {
		t.Fatal("zero total")
	}
	if Imbalance([]float64{5}) != 0 {
		t.Fatal("single rank must be balanced")
	}
}

func TestImbalanceNonNegative(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		return Imbalance(xs) >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func buildPhase(costs []float64, segs []int) *Phase {
	ph := &Phase{Name: "test"}
	for i, c := range costs {
		seg := 0
		if segs != nil {
			seg = segs[i]
		}
		ph.Items = append(ph.Items, Item{Cost: c, Seg: seg})
	}
	return ph
}

func TestPerRankWorkConservesTotal(t *testing.T) {
	costs := []float64{5, 1, 9, 2, 2, 7, 3, 4, 4, 1, 8, 6}
	segs := []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	ph := buildPhase(costs, segs)
	var want float64
	for _, c := range costs {
		want += c
	}
	m := DefaultModel()
	for _, scheme := range []Scheme{StaticFine, StaticCoarse, Dynamic} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			work := m.PerRankWork(ph, p, scheme)
			var got float64
			for _, w := range work {
				got += w
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v p=%d: total %v, want %v", scheme, p, got, want)
			}
		}
	}
}

func TestSerialCostRepeatsPerRank(t *testing.T) {
	ph := buildPhase([]float64{4, 4}, nil)
	ph.SerialCost = 10
	m := DefaultModel()
	work := m.PerRankWork(ph, 4, StaticFine)
	for k, w := range work {
		if w < 10 {
			t.Fatalf("rank %d work %v missing serial cost", k, w)
		}
	}
}

func TestStaticFineIsContiguousBlocks(t *testing.T) {
	ph := buildPhase([]float64{1, 1, 1, 1, 1, 1}, nil)
	m := DefaultModel()
	work := m.PerRankWork(ph, 3, StaticFine)
	for k, w := range work {
		if w != 2 {
			t.Fatalf("rank %d got %v, want 2", k, w)
		}
	}
}

func TestStaticCoarseFollowsSegments(t *testing.T) {
	// Two segments with very different cost; with p=2 coarse puts each
	// segment on its own rank.
	costs := []float64{10, 10, 10, 1}
	segs := []int{0, 0, 0, 1}
	ph := buildPhase(costs, segs)
	m := DefaultModel()
	work := m.PerRankWork(ph, 2, StaticCoarse)
	if work[0] != 30 || work[1] != 1 {
		t.Fatalf("got %v, want [30 1]", work)
	}
}

func TestDynamicBeatsCoarseOnSkew(t *testing.T) {
	// One huge segment and many small ones: dynamic must end up closer to
	// balanced than coarse.
	var costs []float64
	var segs []int
	for i := 0; i < 64; i++ {
		costs = append(costs, 1)
		segs = append(segs, 0) // all in segment 0 → coarse piles on one rank
	}
	ph := buildPhase(costs, segs)
	m := DefaultModel()
	m.DynamicChunk = 4
	coarse := Imbalance(m.PerRankWork(ph, 4, StaticCoarse))
	dynamic := Imbalance(m.PerRankWork(ph, 4, Dynamic))
	if dynamic >= coarse {
		t.Fatalf("dynamic imbalance %v not better than coarse %v", dynamic, coarse)
	}
}

func TestPhaseTimeDecreasesWithRanks(t *testing.T) {
	costs := make([]float64, 1000)
	for i := range costs {
		costs[i] = 1
	}
	ph := buildPhase(costs, nil)
	m := DefaultModel()
	m.SecPerCost = 1e-3
	t1 := m.PhaseTime(ph, 1, StaticFine)
	t4 := m.PhaseTime(ph, 4, StaticFine)
	if t4 >= t1 {
		t.Fatalf("T(4)=%v not less than T(1)=%v", t4, t1)
	}
	if ratio := float64(t1) / float64(t4); ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("uniform work should scale ~4x, got %.2fx", ratio)
	}
}

func TestPhaseTimeChargesCommunication(t *testing.T) {
	ph := buildPhase([]float64{1}, nil)
	ph.Collectives = 1000
	ph.Words = 1_000_000
	m := DefaultModel()
	m.SecPerCost = 0
	t1 := m.PhaseTime(ph, 1, StaticFine)
	t64 := m.PhaseTime(ph, 64, StaticFine)
	if t1 != 0 {
		t.Fatalf("p=1 must not pay communication, got %v", t1)
	}
	if t64 == 0 {
		t.Fatal("p=64 must pay communication")
	}
}

func TestCalibrate(t *testing.T) {
	w := &Workload{}
	ph := w.AddPhase("work")
	ph.Items = append(ph.Items, Item{Cost: 500}, Item{Cost: 500})
	m := DefaultModel()
	m.Calibrate(w, 2*time.Second)
	if math.Abs(m.SecPerCost-0.002) > 1e-12 {
		t.Fatalf("SecPerCost = %v, want 0.002", m.SecPerCost)
	}
	if got := m.Time(w, 1, StaticFine); got != 2*time.Second {
		t.Fatalf("modeled sequential time %v, want 2s", got)
	}
}

func TestWorkloadPhaseLookup(t *testing.T) {
	w := &Workload{}
	w.AddPhase("a")
	w.AddPhase("b")
	if w.Phase("b") == nil || w.Phase("c") != nil {
		t.Fatal("phase lookup broken")
	}
	names := w.SortedPhaseNames()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestImbalanceGrowsWithRanksOnSkewedWork(t *testing.T) {
	// Reproduces the §5.3.1 observation in miniature: with heavy-tailed
	// item costs, static-fine imbalance grows as p grows.
	costs := make([]float64, 4096)
	for i := range costs {
		costs[i] = 1
		if i%100 == 0 {
			costs[i] = 50
		}
	}
	ph := buildPhase(costs, nil)
	m := DefaultModel()
	small := m.PhaseImbalance(ph, 8, StaticFine)
	large := m.PhaseImbalance(ph, 1024, StaticFine)
	if large <= small {
		t.Fatalf("imbalance did not grow: p=8 %v, p=1024 %v", small, large)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]float64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for p, want := range cases {
		if got := ceilLog2(p); got != want {
			t.Fatalf("ceilLog2(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if StaticFine.String() != "static-fine" || StaticCoarse.String() != "static-coarse" || Dynamic.String() != "dynamic" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(42).String() == "" {
		t.Fatal("unknown scheme must still format")
	}
}

func TestPerSegmentBarrierPartition(t *testing.T) {
	// Two segments of 4 unit items each, p=2: every rank gets 2 items per
	// segment → 4 total each.
	ph := buildPhase([]float64{1, 1, 1, 1, 1, 1, 1, 1}, []int{0, 0, 0, 0, 1, 1, 1, 1})
	ph.PerSegmentBarrier = true
	m := DefaultModel()
	work := m.PerRankWork(ph, 2, StaticFine)
	if work[0] != 4 || work[1] != 4 {
		t.Fatalf("work = %v, want [4 4]", work)
	}
}

func TestPerSegmentBarrierSmallSegments(t *testing.T) {
	// Segments narrower than p: every segment's single item lands on rank 0,
	// so rank 0 serializes all of them — the lock-step behaviour.
	ph := buildPhase([]float64{3, 5, 2}, []int{0, 1, 2})
	ph.PerSegmentBarrier = true
	m := DefaultModel()
	work := m.PerRankWork(ph, 4, StaticFine)
	if work[0] != 10 {
		t.Fatalf("rank 0 work = %v, want 10", work[0])
	}
	for k := 1; k < 4; k++ {
		if work[k] != 0 {
			t.Fatalf("rank %d work = %v, want 0", k, work[k])
		}
	}
}

// TestModeledTimeMonotoneInP: for uniform-cost items the modeled compute
// time must never increase as ranks are added (communication terms may
// offset it, so test with zero comm charge).
func TestModeledTimeMonotoneInP(t *testing.T) {
	w := &Workload{}
	ph := w.AddPhase("uniform")
	for i := 0; i < 512; i++ {
		ph.Items = append(ph.Items, Item{Cost: 1})
	}
	m := DefaultModel()
	m.Alpha, m.Beta = 0, 0
	prev := m.Time(w, 1, StaticFine)
	for p := 2; p <= 1024; p *= 2 {
		cur := m.Time(w, p, StaticFine)
		if cur > prev {
			t.Fatalf("modeled time rose from %v to %v at p=%d", prev, cur, p)
		}
		prev = cur
	}
}

func TestAddWorkerCostAccumulates(t *testing.T) {
	ph := &Phase{Name: "x"}
	ph.AddWorkerCost([]float64{3, 1})
	ph.AddWorkerCost([]float64{1, 1, 2}) // wider pool later in the phase
	ph.AddWorkerCost(nil)
	want := []float64{4, 2, 2}
	if len(ph.WorkerCost) != len(want) {
		t.Fatalf("WorkerCost = %v, want %v", ph.WorkerCost, want)
	}
	for w, c := range want {
		if ph.WorkerCost[w] != c {
			t.Fatalf("WorkerCost = %v, want %v", ph.WorkerCost, want)
		}
	}
	// max=4, avg=8/3 → (4−8/3)/(8/3) = 0.5.
	if got := ph.WorkerImbalance(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("WorkerImbalance = %v, want 0.5", got)
	}
}

// TestHybridPhaseTimeDividesItemWork: with no serial cost, W workers divide
// the per-rank compute time by W; PhaseTime must equal the W=1 hybrid time.
func TestHybridPhaseTimeDividesItemWork(t *testing.T) {
	costs := make([]float64, 1024)
	for i := range costs {
		costs[i] = 1
	}
	ph := buildPhase(costs, nil)
	m := DefaultModel()
	m.SecPerCost = 1e-3
	t1 := m.HybridPhaseTime(ph, 1, 1, StaticFine)
	if t1 != m.PhaseTime(ph, 1, StaticFine) {
		t.Fatal("PhaseTime must equal HybridPhaseTime at W=1")
	}
	t4 := m.HybridPhaseTime(ph, 1, 4, StaticFine)
	if ratio := float64(t1) / float64(t4); math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("W=4 speedup %.3fx, want 4x", ratio)
	}
}

// TestHybridPhaseTimeSerialCostIsAmdahlFloor: replicated serial work does not
// shrink with W, so the hybrid time is bounded below by it.
func TestHybridPhaseTimeSerialCostIsAmdahlFloor(t *testing.T) {
	ph := buildPhase([]float64{100}, nil)
	ph.SerialCost = 100
	m := DefaultModel()
	m.SecPerCost = 1e-3
	t1 := m.HybridPhaseTime(ph, 1, 1, StaticFine)
	t100 := m.HybridPhaseTime(ph, 1, 100, StaticFine)
	floor := time.Duration(ph.SerialCost * m.SecPerCost * float64(time.Second))
	if t100 < floor {
		t.Fatalf("hybrid time %v below serial floor %v", t100, floor)
	}
	if ratio := float64(t1) / float64(t100); ratio > 2.01 {
		t.Fatalf("speedup %.2fx exceeds the Amdahl bound 2x", ratio)
	}
	if got := m.HybridTime(&Workload{Phases: []*Phase{ph}}, 1, 100, StaticFine); got != t100 {
		t.Fatalf("HybridTime %v, want %v", got, t100)
	}
}

// TestCommunicationTermGrowsWithP: with compute zeroed, the α·log p charge
// must be non-decreasing in p.
func TestCommunicationTermGrowsWithP(t *testing.T) {
	w := &Workload{}
	ph := w.AddPhase("comm")
	ph.Collectives = 100
	m := DefaultModel()
	m.SecPerCost = 0
	prev := m.Time(w, 2, StaticFine)
	for p := 4; p <= 4096; p *= 2 {
		cur := m.Time(w, p, StaticFine)
		if cur < prev {
			t.Fatalf("comm charge fell from %v to %v at p=%d", prev, cur, p)
		}
		prev = cur
	}
}
