// A lightweight metrics registry: counters, gauges, and fixed-bucket
// histograms with optional labels, dumped as JSON or Prometheus text
// exposition format. Deliberately tiny — no dependency, no background
// goroutines — because the container must not alter the run it observes.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into fixed upper-bound buckets
// (cumulative, Prometheus-style, with an implicit +Inf bucket).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// DefaultStepBuckets suits bootstrap step counts (MinSteps…MaxSteps).
var DefaultStepBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// series is one named+labeled metric in the registry.
type series struct {
	name   string
	help   string
	labels string // rendered `{k="v",…}` or ""
	kind   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metrics by (name, labels). Safe for concurrent use from
// all ranks; lookups intern the series so hot paths pay one mutex + map hit.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels turns ("phase", "splits/assign", "rank", "0") into the
// canonical sorted `{phase="splits/assign",rank="0"}` form.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// lookup interns the series for (name, labels), checking kind consistency.
func (r *Registry) lookup(name, help, kind string, kv []string) *series {
	labels := renderLabels(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = &series{name: name, help: help, labels: labels, kind: kind}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		}
		r.series[key] = s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, s.kind, kind))
	}
	return s
}

// Counter returns (creating on first use) the counter name with the given
// key, value label pairs. A nil registry returns a no-op counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels).c
}

// Gauge returns (creating on first use) the gauge name with the given
// label pairs. A nil registry returns a no-op gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels).g
}

// Histogram returns (creating on first use) the histogram name with the
// given bucket upper bounds and label pairs. Bounds are fixed at first use.
// A nil registry returns a no-op histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		s.h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
	}
	return s.h
}

// snapshot returns the series sorted by (name, labels) for stable dumps.
func (r *Registry) snapshot() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// jsonMetric is the JSON dump form of one series.
type jsonMetric struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Help   string  `json:"help,omitempty"`
	Value  float64 `json:"value"`
	// Histogram-only fields.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// WriteJSON dumps every metric as a JSON array sorted by (name, labels).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var out []jsonMetric
	for _, s := range r.snapshot() {
		m := jsonMetric{Name: s.name, Labels: s.labels, Kind: s.kind, Help: s.help}
		switch s.kind {
		case kindCounter:
			m.Value = float64(s.c.Value())
		case kindGauge:
			m.Value = s.g.Value()
		case kindHistogram:
			s.h.mu.Lock()
			m.Count = s.h.n
			m.Sum = s.h.sum
			m.Bounds = append([]float64(nil), s.h.bounds...)
			m.Buckets = append([]int64(nil), s.h.counts...)
			s.h.mu.Unlock()
			m.Value = float64(m.Count)
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by (name, labels), with histogram series
// expanded into cumulative _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastHelp := ""
	for _, s := range r.snapshot() {
		if s.name != lastHelp {
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, strings.ReplaceAll(s.help, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			lastHelp = s.name
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %v\n", s.name, s.labels, s.g.Value())
		case kindHistogram:
			err = s.h.writePrometheus(w, s.name, s.labels)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePrometheus renders one histogram's cumulative bucket series.
func (h *Histogram) writePrometheus(w io.Writer, name, labels string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatBound(b)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", name, labels, h.sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.n)
	return err
}

// formatBound renders a bucket bound the way Prometheus expects.
func formatBound(b float64) string {
	//parsivet:floateq — integrality test for rendering; Trunc equality is exact by construction
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}
