// Package obs is the run-level observability layer: a structured,
// machine-readable record of what a learning run did — task and phase
// boundaries, checkpoint writes, recovery events, per-rank communication
// traffic, intra-rank worker-pool cost summaries, and split-phase load
// imbalance — plus a lightweight metrics registry dumped as JSON or
// Prometheus text format.
//
// The paper's production setting is multi-day runs on thousands of cores
// (§5.2.2 estimates 13.5 and 49 days for the full compendia); post-hoc log
// archaeology does not work at that scale. The obs layer gives every run an
// exportable event stream that per-phase profiling (the next optimization
// round's input) and operational tooling can consume.
//
// # Determinism contract
//
// Observability is result-invisible and self-deterministic:
//
//   - Attaching sinks never changes the learned network. Recorders only
//     observe; they never consume PRNG state or alter control flow.
//   - The event stream itself is deterministic modulo wall-clock fields
//     (Event.TNS, Event.DurNS): two same-seed runs of the same
//     configuration produce byte-identical logs after Canonical strips the
//     clock fields, so a test — or an operator — can diff two runs' logs.
//     The one exception is the dynamic split distribution, whose
//     work-to-rank assignment is scheduling-dependent by design; its
//     per-rank cost events are therefore not emitted (see
//     splits.LearnParallelDynamic).
//
// In the parallel engine each rank records into its own Recorder (a Comm
// must only be used from its own goroutine, and the same holds here); the
// per-rank streams are gathered to rank 0 at the end of the run and merged
// deterministically by Merge — the rank-0-serialized sink, mirroring the
// paper's "rank 0 writes all files" I/O discipline (§5.3).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"parsimone/internal/comm"
	"parsimone/internal/trace"
)

// Event types emitted by the engines. Every event carries exactly one
// payload field (checked by Validate).
const (
	TypeRunStart    = "run.start"         // payload Run
	TypeRunEnd      = "run.end"           // payload Run
	TypeTaskStart   = "task.start"        // payload Task
	TypeTaskEnd     = "task.end"          // payload Task
	TypeTaskResume  = "task.resume"       // payload Task (skipped via checkpoint)
	TypeModuleStart = "module.start"      // payload Module
	TypeModuleDone  = "module.done"       // payload Module
	TypeCheckpoint  = "checkpoint.write"  // payload Checkpoint
	TypeRecovery    = "recovery"          // payload Recovery
	TypeCommStats   = "comm.stats"        // payload Comm
	TypePoolCost    = "pool.cost"         // payload Pool
	TypeImbalance   = "imbalance"         // payload Imbalance
	TypeConsensus   = "consensus.extract" // payload Consensus

	// Job lifecycle events, emitted by the supervised job runtime
	// (internal/jobs). Rank is always 0: the runtime is a single
	// supervisor, not a rank of a world.
	TypeJobQueued       = "job.queued"       // payload Job
	TypeJobAdmitted     = "job.admitted"     // payload Job
	TypeJobRunning      = "job.running"      // payload Job
	TypeJobRetry        = "job.retry"        // payload Job
	TypeJobCheckpointed = "job.checkpointed" // payload Job
	TypeJobDone         = "job.done"         // payload Job
	TypeJobFailed       = "job.failed"       // payload Job
	TypeJobCancelled    = "job.cancelled"    // payload Job (deadline or drain; agrees with jobs_cancelled_total)
)

// RunInfo describes a whole run (run.start / run.end).
type RunInfo struct {
	// Ranks is p; Workers is W per rank.
	Ranks   int    `json:"ranks"`
	Workers int    `json:"workers,omitempty"`
	Seed    uint64 `json:"seed"`
	// N×M is the data shape.
	N int `json:"n"`
	M int `json:"m"`
	// Modules is the learned module count (run.end only).
	Modules int `json:"modules,omitempty"`
}

// TaskInfo names a pipeline task boundary.
type TaskInfo struct {
	Name string `json:"name"`
}

// ModuleInfo describes one module-learning unit boundary.
type ModuleInfo struct {
	Index int `json:"index"`
	// Vars is the module's member count; Splits the number of assigned
	// splits (module.done only).
	Vars   int `json:"vars,omitempty"`
	Splits int `json:"splits,omitempty"`
}

// CheckpointInfo records one checkpoint file write.
type CheckpointInfo struct {
	File string `json:"file"`
}

// PoolInfo is one intra-rank worker-pool cost summary: the per-worker cost
// counters of one phase evaluation on this rank (deterministic — the pool's
// chunk assignment is static).
type PoolInfo struct {
	Phase   string    `json:"phase"`
	Workers int       `json:"workers"`
	Cost    []float64 `json:"cost"`
	Items   []int64   `json:"items,omitempty"`
}

// ImbalanceInfo is the §5.3.1 measure (max−avg)/avg of a phase's load,
// across intra-rank workers or across ranks.
type ImbalanceInfo struct {
	Phase string `json:"phase"`
	// Across is "workers" or "ranks".
	Across string  `json:"across"`
	Value  float64 `json:"value"`
	// PerUnit is the underlying load vector (one entry per worker or rank).
	PerUnit []float64 `json:"per_unit,omitempty"`
}

// ConsensusInfo records one spectral peeling step of the consensus task.
type ConsensusInfo struct {
	// Remaining is the submatrix size the eigenpair was computed on.
	Remaining  int     `json:"remaining"`
	Eigenvalue float64 `json:"eigenvalue"`
	Iters      int     `json:"iters"`
	Converged  bool    `json:"converged"`
	// Extracted is the extracted cluster size (0 when peeling stopped).
	Extracted int `json:"extracted,omitempty"`
}

// JobInfo describes one lifecycle transition of a supervised job
// (internal/jobs). The payload of every job.* event type.
type JobInfo struct {
	// ID is the runner-assigned job id (dense, in submission order);
	// Name the caller's label.
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
	// Ranks×Workers is the p×W capacity the job holds while admitted.
	Ranks   int `json:"ranks,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Restarts counts runner-level retries so far (job.retry, job.done,
	// job.failed).
	Restarts int `json:"restarts,omitempty"`
	// Checkpoint is the job's checkpoint directory (job.checkpointed: the
	// durable resume state a drained or failed job left behind).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Err describes the failure (job.failed, job.retry).
	Err string `json:"err,omitempty"`
}

// Event is one structured run event. Seq is dense and ascending within a
// stream; Rank is the emitting rank. TNS (wall-clock nanoseconds) and DurNS
// (a measured duration) are the only nondeterministic fields — Canonical
// strips them for log diffing. Exactly one payload pointer is non-nil.
type Event struct {
	Seq  int    `json:"seq"`
	Rank int    `json:"rank"`
	Type string `json:"type"`

	TNS   int64 `json:"t_ns,omitempty"`
	DurNS int64 `json:"dur_ns,omitempty"`

	Run        *RunInfo             `json:"run,omitempty"`
	Task       *TaskInfo            `json:"task,omitempty"`
	Module     *ModuleInfo          `json:"module,omitempty"`
	Checkpoint *CheckpointInfo      `json:"checkpoint,omitempty"`
	Recovery   *trace.RecoveryEvent `json:"recovery,omitempty"`
	Comm       *comm.Stats          `json:"comm,omitempty"`
	Pool       *PoolInfo            `json:"pool,omitempty"`
	Imbalance  *ImbalanceInfo       `json:"imbalance,omitempty"`
	Consensus  *ConsensusInfo       `json:"consensus,omitempty"`
	Job        *JobInfo             `json:"job,omitempty"`
}

// payload returns the event's single non-nil payload, or nil.
func (e *Event) payload() any {
	ptrs := []struct {
		v  any
		ok bool
	}{
		{e.Run, e.Run != nil}, {e.Task, e.Task != nil}, {e.Module, e.Module != nil},
		{e.Checkpoint, e.Checkpoint != nil}, {e.Recovery, e.Recovery != nil},
		{e.Comm, e.Comm != nil}, {e.Pool, e.Pool != nil}, {e.Imbalance, e.Imbalance != nil},
		{e.Consensus, e.Consensus != nil}, {e.Job, e.Job != nil},
	}
	var found any
	for _, p := range ptrs {
		if p.ok {
			if found != nil {
				return nil // more than one payload: invalid
			}
			found = p.v
		}
	}
	return found
}

// typePayload maps each event type to a checker for its required payload.
var typePayload = map[string]func(*Event) bool{
	TypeRunStart:    func(e *Event) bool { return e.Run != nil },
	TypeRunEnd:      func(e *Event) bool { return e.Run != nil },
	TypeTaskStart:   func(e *Event) bool { return e.Task != nil },
	TypeTaskEnd:     func(e *Event) bool { return e.Task != nil },
	TypeTaskResume:  func(e *Event) bool { return e.Task != nil },
	TypeModuleStart: func(e *Event) bool { return e.Module != nil },
	TypeModuleDone:  func(e *Event) bool { return e.Module != nil },
	TypeCheckpoint:  func(e *Event) bool { return e.Checkpoint != nil },
	TypeRecovery:    func(e *Event) bool { return e.Recovery != nil },
	TypeCommStats:   func(e *Event) bool { return e.Comm != nil },
	TypePoolCost:    func(e *Event) bool { return e.Pool != nil },
	TypeImbalance:   func(e *Event) bool { return e.Imbalance != nil },
	TypeConsensus:   func(e *Event) bool { return e.Consensus != nil },

	TypeJobQueued:       func(e *Event) bool { return e.Job != nil },
	TypeJobAdmitted:     func(e *Event) bool { return e.Job != nil },
	TypeJobRunning:      func(e *Event) bool { return e.Job != nil },
	TypeJobRetry:        func(e *Event) bool { return e.Job != nil },
	TypeJobCheckpointed: func(e *Event) bool { return e.Job != nil },
	TypeJobDone:         func(e *Event) bool { return e.Job != nil },
	TypeJobFailed:       func(e *Event) bool { return e.Job != nil },
	TypeJobCancelled:    func(e *Event) bool { return e.Job != nil },
}

// Validate checks an event stream against the schema: known types, the
// type's payload present (and no other), non-negative ranks, and a dense
// ascending Seq numbering.
func Validate(events []Event) error {
	for i := range events {
		e := &events[i]
		check, ok := typePayload[e.Type]
		if !ok {
			return fmt.Errorf("obs: event %d has unknown type %q", i, e.Type)
		}
		if !check(e) {
			return fmt.Errorf("obs: event %d (%s) is missing its %s payload", i, e.Type, e.Type)
		}
		if p := e.payload(); p == nil {
			return fmt.Errorf("obs: event %d (%s) carries multiple payloads", i, e.Type)
		}
		if e.Rank < 0 {
			return fmt.Errorf("obs: event %d has negative rank %d", i, e.Rank)
		}
		if e.Seq != i {
			return fmt.Errorf("obs: event %d has seq %d, want dense ascending numbering", i, e.Seq)
		}
	}
	return nil
}

// Recorder accumulates one rank's events. A nil *Recorder is a valid no-op
// sink, so call sites need no guards. Emit is safe for concurrent use, but
// the engines only emit from the rank's own goroutine (pool workers never
// emit), which is what keeps per-rank streams deterministic.
type Recorder struct {
	mu     sync.Mutex
	rank   int
	now    func() int64
	events []Event
}

// NewRecorder returns a recorder stamping events with the given rank.
func NewRecorder(rank int) *Recorder {
	return &Recorder{rank: rank, now: func() int64 { return time.Now().UnixNano() }}
}

// Emit appends one event, filling Seq, Rank, and the wall-clock stamp.
// The caller sets Type, the payload, and (optionally) DurNS.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = len(r.events)
	ev.Rank = r.rank
	ev.TNS = r.now()
	r.events = append(r.events, ev)
}

// Events returns the recorded stream (a copy).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Merge interleaves per-rank event streams into one deterministic stream
// and renumbers Seq globally. Events are ordered by (per-rank seq, rank):
// ranks advance in lockstep through collectives, so equal local sequence
// numbers correspond to roughly the same program point, and the tiebreak by
// rank makes the order a pure function of the recorded streams — never of
// goroutine scheduling.
func Merge(perRank [][]Event) []Event {
	var all []Event
	for _, evs := range perRank {
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Seq != all[b].Seq {
			return all[a].Seq < all[b].Seq
		}
		return all[a].Rank < all[b].Rank
	})
	for i := range all {
		all[i].Seq = i
	}
	return all
}

// Canonical returns a copy of the stream with the wall-clock fields (TNS,
// DurNS) zeroed — the determinism-comparable form. Everything else in an
// event is deterministic for a fixed (data, options, rank count) run.
func Canonical(events []Event) []Event {
	out := append([]Event(nil), events...)
	for i := range out {
		out[i].TNS = 0
		out[i].DurNS = 0
	}
	return out
}

// DiffCanonical compares two streams modulo wall-clock fields and returns a
// descriptive error at the first difference (nil if identical).
func DiffCanonical(a, b []Event) error {
	ca, cb := Canonical(a), Canonical(b)
	n := min(len(ca), len(cb))
	for i := 0; i < n; i++ {
		ja, err := json.Marshal(ca[i])
		if err != nil {
			return err
		}
		jb, err := json.Marshal(cb[i])
		if err != nil {
			return err
		}
		if string(ja) != string(jb) {
			return fmt.Errorf("obs: event %d differs:\n  a: %s\n  b: %s", i, ja, jb)
		}
	}
	if len(ca) != len(cb) {
		return fmt.Errorf("obs: stream lengths differ: %d vs %d events", len(ca), len(cb))
	}
	return nil
}

// WriteJSONL writes the stream as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
