// Hooks bundle the two sinks the engines thread through their parameters:
// the per-rank event recorder and the (shared, concurrency-safe) metrics
// registry. Engine packages accept a *Hooks in their Params so no public
// function signature changes when observability is attached.

package obs

import (
	"fmt"

	"parsimone/internal/comm"
	"parsimone/internal/pool"
	"parsimone/internal/trace"
)

// Hooks carries the sinks of one rank. A nil *Hooks — and a Hooks with nil
// fields — is a valid no-op, so engines call through it unconditionally.
type Hooks struct {
	// Rec receives this rank's events (nil disables event recording).
	Rec *Recorder
	// Reg receives metrics (shared across ranks; nil disables metrics).
	Reg *Registry
}

// NewHooks returns hooks over the given sinks, or nil if both are nil (so
// `hooks == nil` stays the cheap fast-path test in the engines).
func NewHooks(rec *Recorder, reg *Registry) *Hooks {
	if rec == nil && reg == nil {
		return nil
	}
	return &Hooks{Rec: rec, Reg: reg}
}

// Emit forwards to the recorder; safe on nil hooks.
func (h *Hooks) Emit(ev Event) {
	if h == nil {
		return
	}
	h.Rec.Emit(ev)
}

// Registry returns the metrics registry, or nil.
func (h *Hooks) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.Reg
}

// PoolCost emits one worker-pool cost summary event for a phase evaluation
// and accumulates the phase's cost and item counters into the registry. The
// pool's static chunk assignment makes st deterministic for a fixed
// (n, workers, chunk), so the event is determinism-safe.
func (h *Hooks) PoolCost(phase string, st pool.Stats) {
	if h == nil {
		return
	}
	h.Rec.Emit(Event{Type: TypePoolCost, Pool: &PoolInfo{
		Phase:   phase,
		Workers: st.Workers,
		Cost:    append([]float64(nil), st.Cost...),
		Items:   append([]int64(nil), st.Items...),
	}})
	if h.Reg != nil {
		var cost float64
		var items int64
		for _, c := range st.Cost {
			cost += c
		}
		for _, n := range st.Items {
			items += n
		}
		h.Reg.Counter("pool_cost_total", "accumulated abstract work-item cost by phase", "phase", phase).Add(int64(cost))
		h.Reg.Counter("pool_items_total", "work items evaluated by phase", "phase", phase).Add(items)
	}
}

// WorkerImbalance emits the §5.3.1 imbalance of one pool evaluation across
// the rank's workers and records it as a gauge.
func (h *Hooks) WorkerImbalance(phase string, st pool.Stats) {
	if h == nil || st.Workers <= 1 {
		return
	}
	v := trace.Imbalance(st.Cost)
	h.Rec.Emit(Event{Type: TypeImbalance, Imbalance: &ImbalanceInfo{
		Phase: phase, Across: "workers", Value: v,
		PerUnit: append([]float64(nil), st.Cost...),
	}})
	if h.Reg != nil {
		h.Reg.Gauge("imbalance_workers", "latest §5.3.1 worker load imbalance by phase", "phase", phase).Set(v)
	}
}

// RankImbalance emits the §5.3.1 imbalance of a phase's per-rank work. The
// caller gathers the per-rank costs (deterministically) and invokes this on
// rank 0 only, keeping the event single-sourced.
func (h *Hooks) RankImbalance(phase string, perRank []float64) {
	if h == nil || len(perRank) <= 1 {
		return
	}
	v := trace.Imbalance(perRank)
	h.Rec.Emit(Event{Type: TypeImbalance, Imbalance: &ImbalanceInfo{
		Phase: phase, Across: "ranks", Value: v,
		PerUnit: append([]float64(nil), perRank...),
	}})
	if h.Reg != nil {
		h.Reg.Gauge("imbalance_ranks", "latest §5.3.1 rank load imbalance by phase", "phase", phase).Set(v)
	}
}

// CommStats emits one per-rank traffic snapshot event and mirrors the
// counters into the registry under a rank label.
func (h *Hooks) CommStats(rank int, s comm.Stats) {
	if h == nil {
		return
	}
	snap := s
	h.Rec.Emit(Event{Type: TypeCommStats, Comm: &snap})
	if h.Reg != nil {
		label := fmt.Sprintf("%d", rank)
		h.Reg.Counter("comm_sends_total", "point-to-point messages sent", "rank", label).Add(s.Sends)
		h.Reg.Counter("comm_elems_total", "elements (words) sent", "rank", label).Add(s.Elems)
		h.Reg.Counter("comm_collectives_total", "collective operations entered", "rank", label).Add(s.Collectives)
		h.Reg.Counter("comm_ops_total", "communication calls made", "rank", label).Add(s.Ops)
		h.Reg.Counter("comm_retries_total", "messages retransmitted after a drop", "rank", label).Add(s.Retries)
	}
}
