package obs

import (
	"bytes"
	"strings"
	"testing"

	"parsimone/internal/comm"
	"parsimone/internal/pool"
	"parsimone/internal/trace"
)

// fixedClock makes recorders deterministic in tests.
func fixedClock(r *Recorder) *Recorder {
	t := int64(0)
	r.now = func() int64 { t += 1000; return t }
	return r
}

func TestRecorderStampsAndOrders(t *testing.T) {
	r := fixedClock(NewRecorder(3))
	r.Emit(Event{Type: TypeTaskStart, Task: &TaskInfo{Name: "ganesh"}})
	r.Emit(Event{Type: TypeTaskEnd, Task: &TaskInfo{Name: "ganesh"}, DurNS: 42})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seq not dense ascending: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Rank != 3 || evs[1].Rank != 3 {
		t.Fatalf("rank not stamped: %+v", evs)
	}
	if evs[0].TNS == 0 || evs[1].TNS <= evs[0].TNS {
		t.Fatalf("wall clock not stamped: %d, %d", evs[0].TNS, evs[1].TNS)
	}
	if err := Validate(evs); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: TypeTaskStart, Task: &TaskInfo{Name: "x"}}) // must not panic
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder returned events: %v", evs)
	}
	var h *Hooks
	h.Emit(Event{Type: TypeTaskStart, Task: &TaskInfo{Name: "x"}})
	h.PoolCost("p", pool.Stats{})
	h.CommStats(0, comm.Stats{})
	h.RankImbalance("p", []float64{1, 2})
	if NewHooks(nil, nil) != nil {
		t.Fatal("NewHooks(nil, nil) should be nil")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
	}{
		{"unknown type", []Event{{Seq: 0, Type: "bogus"}}},
		{"missing payload", []Event{{Seq: 0, Type: TypeTaskStart}}},
		{"multiple payloads", []Event{{Seq: 0, Type: TypeTaskStart,
			Task: &TaskInfo{Name: "t"}, Run: &RunInfo{}}}},
		{"negative rank", []Event{{Seq: 0, Rank: -1, Type: TypeTaskStart, Task: &TaskInfo{Name: "t"}}}},
		{"non-dense seq", []Event{{Seq: 5, Type: TypeTaskStart, Task: &TaskInfo{Name: "t"}}}},
	}
	for _, tc := range cases {
		if err := Validate(tc.evs); err == nil {
			t.Errorf("%s: Validate accepted invalid stream", tc.name)
		}
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func(rank int, n int) []Event {
		r := fixedClock(NewRecorder(rank))
		for i := 0; i < n; i++ {
			r.Emit(Event{Type: TypePoolCost, Pool: &PoolInfo{Phase: "ph", Workers: 1, Cost: []float64{float64(i)}}})
		}
		return r.Events()
	}
	a := Merge([][]Event{mk(0, 3), mk(1, 2), mk(2, 3)})
	b := Merge([][]Event{mk(0, 3), mk(1, 2), mk(2, 3)})
	if err := DiffCanonical(a, b); err != nil {
		t.Fatal(err)
	}
	if err := Validate(a); err != nil {
		t.Fatal(err)
	}
	// (seq, rank) interleaving: first three events are the rank 0,1,2
	// events with local seq 0.
	for i := 0; i < 3; i++ {
		if a[i].Rank != i {
			t.Fatalf("event %d has rank %d, want %d (lockstep interleaving)", i, a[i].Rank, i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := fixedClock(NewRecorder(0))
	r.Emit(Event{Type: TypeRunStart, Run: &RunInfo{Ranks: 2, Seed: 7, N: 10, M: 5}})
	r.Emit(Event{Type: TypeCommStats, Comm: &comm.Stats{Sends: 3, Elems: 12}})
	r.Emit(Event{Type: TypeRecovery, Recovery: &trace.RecoveryEvent{Attempt: 1, Rank: 1, Err: "boom"}})
	r.Emit(Event{Type: TypeConsensus, Consensus: &ConsensusInfo{Remaining: 8, Eigenvalue: 2.5, Iters: 12, Converged: true, Extracted: 4}})
	evs := r.Events()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(evs) {
		t.Fatalf("wrote %d lines, want %d", got, len(evs))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(back); err != nil {
		t.Fatal(err)
	}
	if err := DiffCanonical(evs, back); err != nil {
		t.Fatal(err)
	}
}

func TestDiffCanonicalIgnoresClockOnly(t *testing.T) {
	mk := func(clockStep int64) []Event {
		r := NewRecorder(0)
		tck := int64(0)
		r.now = func() int64 { tck += clockStep; return tck }
		r.Emit(Event{Type: TypeTaskStart, Task: &TaskInfo{Name: "modules"}})
		r.Emit(Event{Type: TypeTaskEnd, Task: &TaskInfo{Name: "modules"}, DurNS: clockStep})
		return r.Events()
	}
	if err := DiffCanonical(mk(10), mk(999)); err != nil {
		t.Fatalf("clock-only difference reported: %v", err)
	}
	a := mk(10)
	b := mk(10)
	b[1].Task.Name = "other"
	if err := DiffCanonical(a, b); err == nil {
		t.Fatal("payload difference not reported")
	}
	if err := DiffCanonical(a, a[:1]); err == nil {
		t.Fatal("length difference not reported")
	}
}

func TestHooksPoolCostAndImbalance(t *testing.T) {
	rec := fixedClock(NewRecorder(1))
	reg := NewRegistry()
	h := NewHooks(rec, reg)
	st := pool.Stats{Workers: 2, Items: []int64{10, 6}, Cost: []float64{30, 10}}
	h.PoolCost("splits/assign", st)
	h.WorkerImbalance("splits/assign", st)
	h.RankImbalance("splits/assign", []float64{60, 20})

	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[1].Imbalance.Across != "workers" || evs[2].Imbalance.Across != "ranks" {
		t.Fatalf("imbalance events wrong: %+v", evs[1:])
	}
	// (30,10): avg 20, max 30 → 0.5; (60,20): avg 40, max 60 → 0.5.
	if evs[1].Imbalance.Value != 0.5 || evs[2].Imbalance.Value != 0.5 {
		t.Fatalf("imbalance values: %v, %v", evs[1].Imbalance.Value, evs[2].Imbalance.Value)
	}
	if got := reg.Counter("pool_items_total", "", "phase", "splits/assign").Value(); got != 16 {
		t.Fatalf("pool_items_total = %d, want 16", got)
	}
}
