package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops")
	c.Add(3)
	c.Add(4)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	// Same (name, labels) returns the same series.
	if reg.Counter("ops_total", "ops").Value() != 7 {
		t.Fatal("counter lookup did not intern")
	}
	// Distinct labels are distinct series; label order does not matter.
	reg.Counter("ops_total", "ops", "rank", "0").Add(1)
	a := reg.Counter("x_total", "", "a", "1", "b", "2")
	b := reg.Counter("x_total", "", "b", "2", "a", "1")
	a.Add(5)
	if b.Value() != 5 {
		t.Fatal("label order changed series identity")
	}
	g := reg.Gauge("temp", "t")
	g.Set(1.5)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("steps", "bootstrap steps", []float64{8, 16, 64})
	for _, v := range []float64{1, 8, 9, 64, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`steps_bucket{le="8"} 2`,    // 1, 8
		`steps_bucket{le="16"} 3`,   // +9
		`steps_bucket{le="64"} 4`,   // +64
		`steps_bucket{le="+Inf"} 5`, // +100
		`steps_count 5`,
		"# TYPE steps histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryJSONDumpSortedAndParsable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "z").Add(1)
	reg.Counter("a_total", "a", "rank", "1").Add(2)
	reg.Counter("a_total", "a", "rank", "0").Add(3)
	reg.Gauge("g", "g").Set(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []jsonMetric
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d metrics, want 4", len(out))
	}
	// Sorted by (name, labels): a{rank=0}, a{rank=1}, g, z.
	order := []string{"a_total", "a_total", "g", "z_total"}
	for i, want := range order {
		if out[i].Name != want {
			t.Fatalf("metric %d is %s, want %s", i, out[i].Name, want)
		}
	}
	if !strings.Contains(out[0].Labels, `rank="0"`) {
		t.Fatalf("labels not sorted: %s", out[0].Labels)
	}
}

func TestRegistryPrometheusTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("comm_sends_total", "point-to-point messages sent", "rank", "0").Add(12)
	reg.Gauge("imbalance_ranks", "imbalance", "phase", "splits/assign").Set(0.25)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE comm_sends_total counter",
		`comm_sends_total{rank="0"} 12`,
		"# TYPE imbalance_ranks gauge",
		`imbalance_ranks{phase="splits/assign"} 0.25`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Add(1)
	reg.Gauge("y", "").Set(2)
	reg.Histogram("z", "", DefaultStepBuckets).Observe(3)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil registry dump: %q", buf.String())
	}
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConcurrent exercises the registry from many goroutines (the
// parallel engine's ranks share one registry); run with -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Counter("ops_total", "").Add(1)
				reg.Gauge("g", "", "rank", string(rune('0'+r))).Set(float64(i))
				reg.Histogram("h", "", DefaultStepBuckets).Observe(float64(i % 70))
			}
		}(r)
	}
	wg.Wait()
	if got := reg.Counter("ops_total", "").Value(); got != 800 {
		t.Fatalf("ops_total = %d, want 800", got)
	}
	if got := reg.Histogram("h", "", DefaultStepBuckets).Count(); got != 800 {
		t.Fatalf("histogram count = %d, want 800", got)
	}
}
