// Checkpointing. The paper's pipeline writes intermediate artifacts between
// tasks (§5.3: "any intermediate files and the final MoNet structure ...
// are written to the disk by the process with rank 0"), which lets an
// interrupted multi-day run resume at a task boundary. Because every task
// draws from its own numbered PRNG substream, resuming from a checkpoint
// reproduces *exactly* the network an uninterrupted run would learn.
//
// Three files live in Options.CheckpointDir: ensembles.json (task 1),
// modules.json (task 2), and progress.json — the per-module manifest that
// lets a crash inside module learning (>90 % of runtime, §5.2) resume at
// the last completed module instead of the last task boundary.

package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"parsimone/internal/module"
	"parsimone/internal/wire"
)

// checkpoint file names inside Options.CheckpointDir. The names are stable
// across formats: a v3 binary checkpoint still lives in ensembles.json etc.,
// and readers detect the format by content (wire magic vs JSON), so a
// directory written by either format resumes under either setting.
const (
	ckptEnsembles = "ensembles.json"
	ckptModules   = "modules.json"
	ckptProgress  = "progress.json"
)

// Checkpoint format versions. v2 is the JSON format; v3 is the binary wire
// format (internal/wire, DESIGN §12) written when Options.BinaryCheckpoints
// is set. The read path accepts both, auto-detected by magic. Files written
// before versioning carry no version field and are rejected; there is no
// migration — delete the directory and re-learn.
const (
	checkpointVersion       = 2
	checkpointVersionBinary = 3
)

// ensemblesCheckpoint persists the GaneSH task's output.
type ensemblesCheckpoint struct {
	Version int `json:"version"`
	// Seed and GaneshRuns guard against resuming with a different
	// configuration.
	Seed       uint64    `json:"seed"`
	GaneshRuns int       `json:"ganeshRuns"`
	N          int       `json:"n"`
	Ensembles  [][][]int `json:"ensembles"`
}

// modulesCheckpoint persists the consensus task's output. GaneshRuns guards
// it too: the consensus modules are a function of the G-run ensemble, so
// resuming them under a different G would silently keep the old modules.
type modulesCheckpoint struct {
	Version    int     `json:"version"`
	Seed       uint64  `json:"seed"`
	GaneshRuns int     `json:"ganeshRuns"`
	N          int     `json:"n"`
	ModuleVars [][]int `json:"moduleVars"`
}

// progressCheckpoint persists the per-module units completed so far inside
// the module-learning task. Each unit is independent (its own numbered PRNG
// substream), so any subset can be resumed and the remainder recomputed
// bit-identically.
type progressCheckpoint struct {
	Version    int            `json:"version"`
	Seed       uint64         `json:"seed"`
	GaneshRuns int            `json:"ganeshRuns"`
	N          int            `json:"n"`
	Units      []*module.Unit `json:"units"`
}

// checkVersion rejects JSON checkpoint files written in another format.
// A file where the version field is simply absent predates versioning and
// is reported as such, not as the misleading "format v0".
func checkVersion(name string, got int, present bool) error {
	if !present {
		return fmt.Errorf("core: checkpoint %s has no version field (pre-versioning format), expected v%d — delete the checkpoint directory to re-learn",
			name, checkpointVersion)
	}
	if got != checkpointVersion {
		return fmt.Errorf("core: checkpoint %s is format v%d, expected v%d — delete the checkpoint directory to re-learn",
			name, got, checkpointVersion)
	}
	return nil
}

// wireCheckpoint is the codec contract each checkpoint type implements for
// the v3 binary format: its wire header (kind plus the configuration triple
// the loaders validate) and its section payloads.
type wireCheckpoint interface {
	wireKind() wire.Kind
	wireHeader() wire.Header
	encodeSections() []wire.Section
	decodeSections(h wire.Header, secs []wire.Section) error
}

// loadCheckpoint reads and validates a checkpoint file into v; a missing
// file returns (false, nil). The format is auto-detected by content: a v3
// binary file starts with the wire magic, anything else is decoded as the
// v2 JSON format — strictly. Unknown or misspelled JSON fields and trailing
// garbage (a concatenated or half-overwritten file) are corruption, never a
// silent partial resume.
func loadCheckpoint(dir, name string, v wireCheckpoint) (bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if wire.IsWire(data) {
		h, secs, err := wire.DecodeFile(data)
		if err != nil {
			return false, fmt.Errorf("core: corrupt checkpoint %s: %w", name, err)
		}
		if h.Kind != v.wireKind() {
			return false, fmt.Errorf("core: checkpoint %s is a %s, expected a %s", name, h.Kind, v.wireKind())
		}
		if err := v.decodeSections(h, secs); err != nil {
			return false, fmt.Errorf("core: corrupt checkpoint %s: %w", name, err)
		}
		return true, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return false, fmt.Errorf("core: corrupt checkpoint %s: %w", name, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return false, fmt.Errorf("core: corrupt checkpoint %s: trailing data after the JSON document", name)
	}
	// Distinguish an absent version field from an explicit one: the struct
	// field alone cannot (both decode to 0).
	var probe struct {
		Version *int `json:"version"`
	}
	_ = json.Unmarshal(data, &probe) // data already decoded strictly above
	version := 0
	if probe.Version != nil {
		version = *probe.Version
	}
	if err := checkVersion(name, version, probe.Version != nil); err != nil {
		return false, err
	}
	return true, nil
}

// saveCheckpoint writes v atomically and durably: create the directory,
// write a temp file, fsync it, rename over the final name, and fsync the
// directory. Without the fsyncs a crash can leave a renamed-but-truncated
// file that loadCheckpoint rejects as corrupt on resume; a stale .tmp from
// an earlier crash is simply overwritten. With binary set the v3 wire
// format is written instead of v2 JSON; both resume interchangeably.
func saveCheckpoint(dir, name string, v wireCheckpoint, binary bool) error {
	var data []byte
	if binary {
		data = wire.EncodeFile(v.wireHeader(), v.encodeSections())
	} else {
		var err error
		if data, err = json.Marshal(v); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadEnsembles returns the checkpointed GaneSH ensembles if present and
// consistent with the options.
func loadEnsembles(dir string, opt Options, n int) ([][][]int, error) {
	var ck ensemblesCheckpoint
	ok, err := loadCheckpoint(dir, ckptEnsembles, &ck)
	if err != nil || !ok {
		return nil, err
	}
	if ck.Seed != opt.Seed || ck.GaneshRuns != opt.GaneshRuns || ck.N != n {
		return nil, fmt.Errorf("core: checkpoint %s was written by a different configuration (seed %d, G %d, n %d)",
			ckptEnsembles, ck.Seed, ck.GaneshRuns, ck.N)
	}
	return ck.Ensembles, nil
}

// loadModules returns the checkpointed consensus modules if present and
// consistent.
func loadModules(dir string, opt Options, n int) ([][]int, bool, error) {
	var ck modulesCheckpoint
	ok, err := loadCheckpoint(dir, ckptModules, &ck)
	if err != nil || !ok {
		return nil, false, err
	}
	if ck.Seed != opt.Seed || ck.GaneshRuns != opt.GaneshRuns || ck.N != n {
		return nil, false, fmt.Errorf("core: checkpoint %s was written by a different configuration (seed %d, G %d, n %d)",
			ckptModules, ck.Seed, ck.GaneshRuns, ck.N)
	}
	return ck.ModuleVars, true, nil
}

// loadProgress returns the completed module units if a progress manifest is
// present and consistent with the options and the current module
// memberships. A unit whose module index or variables do not match the
// consensus result indicates a foreign manifest and is an error, not a
// silent partial resume.
func loadProgress(dir string, opt Options, n int, moduleVars [][]int) (map[int]*module.Unit, error) {
	var ck progressCheckpoint
	ok, err := loadCheckpoint(dir, ckptProgress, &ck)
	if err != nil || !ok {
		return nil, err
	}
	if ck.Seed != opt.Seed || ck.GaneshRuns != opt.GaneshRuns || ck.N != n {
		return nil, fmt.Errorf("core: checkpoint %s was written by a different configuration (seed %d, G %d, n %d)",
			ckptProgress, ck.Seed, ck.GaneshRuns, ck.N)
	}
	units := make(map[int]*module.Unit, len(ck.Units))
	for _, u := range ck.Units {
		if u == nil {
			return nil, fmt.Errorf("core: checkpoint %s has a null unit", ckptProgress)
		}
		if u.Module < 0 || u.Module >= len(moduleVars) {
			return nil, fmt.Errorf("core: checkpoint %s references module %d of %d",
				ckptProgress, u.Module, len(moduleVars))
		}
		if !equalInts(u.Vars, moduleVars[u.Module]) {
			return nil, fmt.Errorf("core: checkpoint %s unit for module %d does not match the consensus module members",
				ckptProgress, u.Module)
		}
		if _, dup := units[u.Module]; dup {
			return nil, fmt.Errorf("core: checkpoint %s has duplicate units for module %d", ckptProgress, u.Module)
		}
		units[u.Module] = u
	}
	return units, nil
}

// saveProgress rewrites the whole progress manifest (units sorted by module
// index) atomically via saveCheckpoint. Manifests are small relative to the
// work a module represents, so whole-file rewrites keep the format trivial.
func saveProgress(dir string, opt Options, n int, units map[int]*module.Unit) error {
	ck := progressCheckpoint{Version: checkpointVersion, Seed: opt.Seed, GaneshRuns: opt.GaneshRuns, N: n}
	for _, u := range units {
		ck.Units = append(ck.Units, u)
	}
	sort.Slice(ck.Units, func(i, j int) bool { return ck.Units[i].Module < ck.Units[j].Module })
	return saveCheckpoint(dir, ckptProgress, &ck, opt.BinaryCheckpoints)
}

// equalInts reports whether a and b hold the same sequence.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
