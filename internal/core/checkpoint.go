// Checkpointing. The paper's pipeline writes intermediate artifacts between
// tasks (§5.3: "any intermediate files and the final MoNet structure ...
// are written to the disk by the process with rank 0"), which lets an
// interrupted multi-day run resume at a task boundary. Because every task
// draws from its own numbered PRNG substream, resuming from a checkpoint
// reproduces *exactly* the network an uninterrupted run would learn.

package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// checkpoint file names inside Options.CheckpointDir.
const (
	ckptEnsembles = "ensembles.json"
	ckptModules   = "modules.json"
)

// ensemblesCheckpoint persists the GaneSH task's output.
type ensemblesCheckpoint struct {
	// Seed and GaneshRuns guard against resuming with a different
	// configuration.
	Seed       uint64    `json:"seed"`
	GaneshRuns int       `json:"ganeshRuns"`
	N          int       `json:"n"`
	Ensembles  [][][]int `json:"ensembles"`
}

// modulesCheckpoint persists the consensus task's output. GaneshRuns guards
// it too: the consensus modules are a function of the G-run ensemble, so
// resuming them under a different G would silently keep the old modules.
type modulesCheckpoint struct {
	Seed       uint64  `json:"seed"`
	GaneshRuns int     `json:"ganeshRuns"`
	N          int     `json:"n"`
	ModuleVars [][]int `json:"moduleVars"`
}

// loadCheckpoint reads and validates a checkpoint file into v; a missing
// file returns (false, nil).
func loadCheckpoint(dir, name string, v any) (bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("core: corrupt checkpoint %s: %w", name, err)
	}
	return true, nil
}

// saveCheckpoint writes v atomically and durably: create the directory,
// write a temp file, fsync it, rename over the final name, and fsync the
// directory. Without the fsyncs a crash can leave a renamed-but-truncated
// file that loadCheckpoint rejects as corrupt on resume; a stale .tmp from
// an earlier crash is simply overwritten.
func saveCheckpoint(dir, name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadEnsembles returns the checkpointed GaneSH ensembles if present and
// consistent with the options.
func loadEnsembles(dir string, opt Options, n int) ([][][]int, error) {
	var ck ensemblesCheckpoint
	ok, err := loadCheckpoint(dir, ckptEnsembles, &ck)
	if err != nil || !ok {
		return nil, err
	}
	if ck.Seed != opt.Seed || ck.GaneshRuns != opt.GaneshRuns || ck.N != n {
		return nil, fmt.Errorf("core: checkpoint %s was written by a different configuration (seed %d, G %d, n %d)",
			ckptEnsembles, ck.Seed, ck.GaneshRuns, ck.N)
	}
	return ck.Ensembles, nil
}

// loadModules returns the checkpointed consensus modules if present and
// consistent.
func loadModules(dir string, opt Options, n int) ([][]int, bool, error) {
	var ck modulesCheckpoint
	ok, err := loadCheckpoint(dir, ckptModules, &ck)
	if err != nil || !ok {
		return nil, false, err
	}
	if ck.Seed != opt.Seed || ck.GaneshRuns != opt.GaneshRuns || ck.N != n {
		return nil, false, fmt.Errorf("core: checkpoint %s was written by a different configuration (seed %d, G %d, n %d)",
			ckptModules, ck.Seed, ck.GaneshRuns, ck.N)
	}
	return ck.ModuleVars, true, nil
}
