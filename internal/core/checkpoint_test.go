package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"parsimone/internal/result"
	"parsimone/internal/wire"
)

// writeCkpt drops raw bytes where loadCheckpoint will look for them.
func writeCkpt(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// validEnsemblesJSON is a well-formed v2 ensembles checkpoint document.
func validEnsemblesJSON(t *testing.T) []byte {
	t.Helper()
	ck := ensemblesCheckpoint{Version: checkpointVersion, Seed: 7, GaneshRuns: 2, N: 4,
		Ensembles: [][][]int{{{0, 1}, {2, 3}}, {{0, 2}, {1, 3}}}}
	data, err := json.Marshal(&ck)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadCheckpointStrictJSON: the v2 JSON reader must reject anything that
// is not exactly one well-formed document with exactly the known fields — a
// truncated file, a misspelled or extra field, and concatenated documents
// (a half-overwritten file) are corruption, not a silent partial resume.
func TestLoadCheckpointStrictJSON(t *testing.T) {
	valid := validEnsemblesJSON(t)
	cases := map[string]struct {
		data []byte
		want string
	}{
		"truncated": {valid[:len(valid)/2], "corrupt checkpoint"},
		"extra field": {[]byte(`{"version":2,"seed":7,"ganeshRuns":2,"n":4,"ensembles":[],"extra":1}`),
			`unknown field "extra"`},
		"misspelled field": {[]byte(`{"version":2,"seed":7,"ganeshRun":2,"n":4,"ensembles":[]}`),
			`unknown field "ganeshRun"`},
		"concatenated documents": {append(append([]byte{}, valid...), valid...),
			"trailing data after the JSON document"},
		"trailing garbage": {append(append([]byte{}, valid...), []byte("xx")...),
			"trailing data after the JSON document"},
		"empty file": {nil, "corrupt checkpoint"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeCkpt(t, dir, ckptEnsembles, tc.data)
			var ck ensemblesCheckpoint
			_, err := loadCheckpoint(dir, ckptEnsembles, &ck)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want an error containing %q", err, tc.want)
			}
		})
	}
	// Sanity: the valid document itself loads.
	dir := t.TempDir()
	writeCkpt(t, dir, ckptEnsembles, valid)
	var ck ensemblesCheckpoint
	if ok, err := loadCheckpoint(dir, ckptEnsembles, &ck); err != nil || !ok {
		t.Fatalf("valid document rejected: ok=%v err=%v", ok, err)
	}
}

// TestBinaryCheckpointRoundTrip: each checkpoint type survives a v3 binary
// save/load cycle with its payload intact.
func TestBinaryCheckpointRoundTrip(t *testing.T) {
	ens := &ensemblesCheckpoint{Version: checkpointVersion, Seed: 11, GaneshRuns: 3, N: 6,
		Ensembles: [][][]int{{{0, 1, 2}, {3, 4, 5}}, {{0, 3}, {1, 2, 4, 5}}, {{5}}}}
	mods := &modulesCheckpoint{Version: checkpointVersion, Seed: 11, GaneshRuns: 3, N: 6,
		ModuleVars: [][]int{{0, 2, 4}, {1, 3}, {5}}}
	t.Run("ensembles", func(t *testing.T) {
		dir := t.TempDir()
		if err := saveCheckpoint(dir, ckptEnsembles, ens, true); err != nil {
			t.Fatal(err)
		}
		var got ensemblesCheckpoint
		if ok, err := loadCheckpoint(dir, ckptEnsembles, &got); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		if got.Seed != ens.Seed || got.GaneshRuns != ens.GaneshRuns || got.N != ens.N {
			t.Fatalf("header fields lost: %+v", got)
		}
		if !reflect.DeepEqual(got.Ensembles, ens.Ensembles) {
			t.Fatalf("ensembles differ:\n got %v\nwant %v", got.Ensembles, ens.Ensembles)
		}
	})
	t.Run("modules", func(t *testing.T) {
		dir := t.TempDir()
		if err := saveCheckpoint(dir, ckptModules, mods, true); err != nil {
			t.Fatal(err)
		}
		var got modulesCheckpoint
		if ok, err := loadCheckpoint(dir, ckptModules, &got); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		if !reflect.DeepEqual(got.ModuleVars, mods.ModuleVars) {
			t.Fatalf("modules differ:\n got %v\nwant %v", got.ModuleVars, mods.ModuleVars)
		}
	})
	t.Run("kind mismatch", func(t *testing.T) {
		// A binary ensembles file loaded as a modules checkpoint must be
		// rejected by kind, not misparsed.
		dir := t.TempDir()
		if err := saveCheckpoint(dir, ckptModules, ens, true); err != nil {
			t.Fatal(err)
		}
		var got modulesCheckpoint
		_, err := loadCheckpoint(dir, ckptModules, &got)
		if err == nil || !strings.Contains(err.Error(), "expected a modules") {
			t.Fatalf("got %v, want a kind-mismatch rejection", err)
		}
	})
}

// TestBinaryCheckpointCorruptFailsCleanly: every truncation of a valid
// binary checkpoint is rejected with an error, never a panic or a silent
// partial resume.
func TestBinaryCheckpointCorruptFailsCleanly(t *testing.T) {
	ens := &ensemblesCheckpoint{Version: checkpointVersion, Seed: 11, GaneshRuns: 3, N: 6,
		Ensembles: [][][]int{{{0, 1, 2}, {3, 4, 5}}}}
	data := wire.EncodeFile(ens.wireHeader(), ens.encodeSections())
	dir := t.TempDir()
	for cut := 0; cut < len(data); cut++ {
		writeCkpt(t, dir, ckptEnsembles, data[:cut])
		var got ensemblesCheckpoint
		if _, err := loadCheckpoint(dir, ckptEnsembles, &got); err == nil {
			// Truncating to zero bytes is "corrupt"; anything that keeps the
			// magic must fail decode.
			t.Fatalf("truncation to %d bytes loaded without error", cut)
		}
	}
}

// TestMixedFormatResume: checkpoints written under one format resume under
// the other. The file names are stable and readers auto-detect by content,
// so flipping Options.BinaryCheckpoints between runs is always safe.
func TestMixedFormatResume(t *testing.T) {
	d, _ := testData(t, 30, 24, 4)
	opt := fastOptions(9)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, flip := range []struct {
		name          string
		first, second bool
	}{{"json_then_binary", false, true}, {"binary_then_json", true, false}} {
		t.Run(flip.name, func(t *testing.T) {
			dir := t.TempDir()
			first := opt
			first.CheckpointDir = dir
			first.BinaryCheckpoints = flip.first
			if _, err := Learn(d, first); err != nil {
				t.Fatal(err)
			}
			second := opt
			second.CheckpointDir = dir
			second.BinaryCheckpoints = flip.second
			got, err := Learn(d, second)
			if err != nil {
				t.Fatalf("resume across formats failed: %v", err)
			}
			if !result.Equal(got.Network, want.Network) {
				t.Fatal("cross-format resume differs from the uninterrupted run")
			}
		})
	}
}

// TestBinaryCheckpointSize pins the tentpole's size claim on the progress
// manifest, the checkpoint that dominates disk traffic (it is rewritten
// after every module): the v3 binary encoding is several times smaller than
// the v2 JSON it replaces.
func TestBinaryCheckpointSize(t *testing.T) {
	d, _ := testData(t, 48, 24, 2)
	sizes := map[bool]int64{}
	for _, binary := range []bool{false, true} {
		opt := fastOptions(3)
		opt.CheckpointDir = t.TempDir()
		opt.BinaryCheckpoints = binary
		if _, err := Learn(d, opt); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(filepath.Join(opt.CheckpointDir, ckptProgress))
		if err != nil {
			t.Fatal(err)
		}
		sizes[binary] = fi.Size()
	}
	if ratio := float64(sizes[false]) / float64(sizes[true]); ratio < 5 {
		t.Fatalf("binary progress checkpoint only %.1f× smaller than JSON (%d vs %d bytes), want ≥ 5×",
			ratio, sizes[true], sizes[false])
	}
}

// FuzzWireCheckpoint feeds arbitrary bytes through the full checkpoint read
// path — format auto-detection, wire decoding, strict JSON — for all three
// checkpoint types. The property is simply that nothing panics and errors
// are reported, not swallowed.
func FuzzWireCheckpoint(f *testing.F) {
	ens := &ensemblesCheckpoint{Version: checkpointVersion, Seed: 7, GaneshRuns: 2, N: 4,
		Ensembles: [][][]int{{{0, 1}, {2, 3}}}}
	mods := &modulesCheckpoint{Version: checkpointVersion, Seed: 7, GaneshRuns: 2, N: 4,
		ModuleVars: [][]int{{0, 1}, {2, 3}}}
	prog := &progressCheckpoint{Version: checkpointVersion, Seed: 7, GaneshRuns: 2, N: 4}
	for _, v := range []wireCheckpoint{ens, mods, prog} {
		f.Add(wire.EncodeFile(v.wireHeader(), v.encodeSections()))
		data, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte{0xB7, 'P', 'M', 'W'})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		writeCkpt(t, dir, ckptEnsembles, data)
		var e ensemblesCheckpoint
		_, _ = loadCheckpoint(dir, ckptEnsembles, &e)
		var m modulesCheckpoint
		_, _ = loadCheckpoint(dir, ckptEnsembles, &m)
		var p progressCheckpoint
		_, _ = loadCheckpoint(dir, ckptEnsembles, &p)
	})
}
