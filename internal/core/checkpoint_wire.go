// Checkpoint v3: the binary wire-format codecs for the three checkpoint
// files (DESIGN §12). Every file carries the self-describing wire header —
// magic, format version, kind, and the (seed, GaneshRuns, N) configuration
// triple the loaders validate — followed by one payload section per file.
// Readers dispatch on section IDs and skip unknown ones, so later revisions
// can append sections (say, integrity hashes) without a version bump.

package core

import (
	"fmt"

	"parsimone/internal/module"
	"parsimone/internal/wire"
)

// Section IDs, scoped per file kind. ID 1 is each file's payload.
const secPayload = 1

// header builds the shared wire header for a checkpoint's guard fields.
func ckptHeader(kind wire.Kind, seed uint64, ganeshRuns, n int) wire.Header {
	return wire.Header{Kind: kind, Seed: seed, GaneshRuns: ganeshRuns, N: n}
}

// payloadSection wraps an encoded body as the single payload section.
func payloadSection(e *wire.Encoder) []wire.Section {
	return []wire.Section{{ID: secPayload, Body: e.Bytes()}}
}

// requirePayload finds the payload section or reports which file is broken.
func requirePayload(secs []wire.Section, kind wire.Kind) (*wire.Decoder, error) {
	body, ok := wire.FindSection(secs, secPayload)
	if !ok {
		return nil, fmt.Errorf("%s has no payload section", kind)
	}
	return wire.NewDecoder(body), nil
}

// finish checks the payload was consumed exactly.
func finishPayload(d *wire.Decoder, kind wire.Kind) error {
	if err := d.Err(); err != nil {
		return fmt.Errorf("%s: %w", kind, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%s payload has %d trailing bytes", kind, d.Remaining())
	}
	return nil
}

// --- ensembles.json (v3): G runs × clusters × delta-coded member lists ---

func (ck *ensemblesCheckpoint) wireKind() wire.Kind { return wire.KindEnsembles }

func (ck *ensemblesCheckpoint) wireHeader() wire.Header {
	return ckptHeader(wire.KindEnsembles, ck.Seed, ck.GaneshRuns, ck.N)
}

func (ck *ensemblesCheckpoint) encodeSections() []wire.Section {
	e := wire.NewEncoder()
	e.Uvarint(uint64(len(ck.Ensembles)))
	for _, run := range ck.Ensembles {
		e.Uvarint(uint64(len(run)))
		for _, cluster := range run {
			e.SortedInts(cluster)
		}
	}
	return payloadSection(e)
}

func (ck *ensemblesCheckpoint) decodeSections(h wire.Header, secs []wire.Section) error {
	d, err := requirePayload(secs, wire.KindEnsembles)
	if err != nil {
		return err
	}
	ck.Version = checkpointVersionBinary
	ck.Seed, ck.GaneshRuns, ck.N = h.Seed, h.GaneshRuns, h.N
	runs := d.Count(1)
	ck.Ensembles = make([][][]int, 0, runs)
	for r := 0; r < runs && d.Err() == nil; r++ {
		clusters := d.Count(1)
		run := make([][]int, 0, clusters)
		for c := 0; c < clusters && d.Err() == nil; c++ {
			run = append(run, d.SortedInts())
		}
		ck.Ensembles = append(ck.Ensembles, run)
	}
	return finishPayload(d, wire.KindEnsembles)
}

// --- modules.json (v3): delta-coded consensus module member lists ---

func (ck *modulesCheckpoint) wireKind() wire.Kind { return wire.KindModules }

func (ck *modulesCheckpoint) wireHeader() wire.Header {
	return ckptHeader(wire.KindModules, ck.Seed, ck.GaneshRuns, ck.N)
}

func (ck *modulesCheckpoint) encodeSections() []wire.Section {
	e := wire.NewEncoder()
	e.Uvarint(uint64(len(ck.ModuleVars)))
	for _, vars := range ck.ModuleVars {
		e.SortedInts(vars)
	}
	return payloadSection(e)
}

func (ck *modulesCheckpoint) decodeSections(h wire.Header, secs []wire.Section) error {
	d, err := requirePayload(secs, wire.KindModules)
	if err != nil {
		return err
	}
	ck.Version = checkpointVersionBinary
	ck.Seed, ck.GaneshRuns, ck.N = h.Seed, h.GaneshRuns, h.N
	nm := d.Count(1)
	ck.ModuleVars = make([][]int, 0, nm)
	for i := 0; i < nm && d.Err() == nil; i++ {
		ck.ModuleVars = append(ck.ModuleVars, d.SortedInts())
	}
	return finishPayload(d, wire.KindModules)
}

// --- progress.json (v3): completed module units ---

func (ck *progressCheckpoint) wireKind() wire.Kind { return wire.KindProgress }

func (ck *progressCheckpoint) wireHeader() wire.Header {
	return ckptHeader(wire.KindProgress, ck.Seed, ck.GaneshRuns, ck.N)
}

func (ck *progressCheckpoint) encodeSections() []wire.Section {
	e := wire.NewEncoder()
	e.Uvarint(uint64(len(ck.Units)))
	for _, u := range ck.Units {
		u.EncodeWire(e)
	}
	return payloadSection(e)
}

func (ck *progressCheckpoint) decodeSections(h wire.Header, secs []wire.Section) error {
	d, err := requirePayload(secs, wire.KindProgress)
	if err != nil {
		return err
	}
	ck.Version = checkpointVersionBinary
	ck.Seed, ck.GaneshRuns, ck.N = h.Seed, h.GaneshRuns, h.N
	nu := d.Count(1)
	ck.Units = make([]*module.Unit, 0, nu)
	for i := 0; i < nu && d.Err() == nil; i++ {
		if u := module.DecodeUnitWire(d); u != nil {
			ck.Units = append(ck.Units, u)
		}
	}
	return finishPayload(d, wire.KindProgress)
}
