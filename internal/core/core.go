// Package core assembles the full Lemon-Tree pipeline of the paper into one
// engine: (1) an ensemble of GaneSH co-clustering runs, (2) sequential
// consensus clustering of the sampled variable partitions into modules, and
// (3) module learning — regression-tree ensembles, parent-split assignment,
// and regulator scoring. It exposes a sequential entry point and a
// distributed-memory parallel one that produce identical networks for every
// rank count (the paper's §4.2 guarantee), plus per-task timing matching the
// paper's breakdown (Fig. 5) and optional work recording for the scaling
// model.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"parsimone/internal/comm"
	"parsimone/internal/consensus"
	"parsimone/internal/dataset"
	"parsimone/internal/ganesh"
	"parsimone/internal/module"
	"parsimone/internal/obs"
	"parsimone/internal/prng"
	"parsimone/internal/result"
	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/trace"
)

// Task names for the timing breakdown, matching the paper's decomposition.
const (
	TaskGaneSH    = "ganesh"
	TaskConsensus = "consensus"
	TaskModules   = "modules"
)

// Options configures a learning run. Use DefaultOptions as the base.
type Options struct {
	// Prior is the normal-gamma score prior.
	Prior score.Prior
	// Seed drives all randomness; identical seeds give identical
	// networks across engines and rank counts.
	Seed uint64
	// GaneshRuns is G, the number of independent co-clustering runs
	// sampled into the consensus ensemble.
	GaneshRuns int
	// GaneshGroups, when > 1, lets the parallel engine execute the G runs
	// on disjoint rank groups of p/GaneshGroups ranks each — the paper's
	// observation that "G runs of GaneSH can be executed in parallel on
	// p/G processors each, without any communication" (§3.2.1). Because
	// every run draws from its own numbered substream, the learned
	// network is identical regardless of the grouping.
	GaneshGroups int
	// Ganesh configures each run (U update steps, K₀, L₀).
	Ganesh ganesh.Params
	// CoOccurrenceThreshold zeroes co-occurrence entries below it
	// (§2.2.2).
	CoOccurrenceThreshold float64
	// Consensus configures the spectral consensus clustering.
	Consensus consensus.Params
	// Module configures tree learning and split assignment.
	Module module.Params
	// Standardize rescales each variable to zero mean and unit variance
	// before quantization.
	Standardize bool
	// RecordWork enables work recording (sequential engine only); the
	// recorded workload drives the strong-scaling time model.
	RecordWork bool
	// Workers is W, the number of intra-rank worker goroutines each
	// engine (and, in the parallel engine, each rank) uses to evaluate
	// its block of score computations — the thread level of hybrid
	// process×thread parallelism (internal/pool). 0 or 1 means serial.
	// The learned network is bit-identical for every (p, Workers)
	// combination (DESIGN.md §6). Copied into Ganesh, Module.Tree, and
	// Module.Splits unless those set their own worker counts.
	Workers int
	// CheckpointDir, when set, persists each task's output there (as the
	// paper's pipeline writes intermediate files between tasks, §5.3) plus
	// a per-module progress manifest inside module learning, and resumes
	// from whatever checkpoints exist. Because each task — and each module
	// within task 3 — draws from its own numbered PRNG substream, a
	// resumed run learns exactly the network an uninterrupted run would.
	// In the parallel engine only rank 0 writes, as in the paper.
	CheckpointDir string
	// BinaryCheckpoints selects the v3 binary wire format (internal/wire,
	// DESIGN §12) for checkpoint writes: several times smaller and faster
	// to save and load than the v2 JSON format, with bit-identical resume.
	// Reading auto-detects either format, so flipping this switch between
	// runs of the same configuration is safe — existing checkpoints still
	// resume, and newly written files use the selected format.
	BinaryCheckpoints bool
	// MaxRestarts is how many times the supervised parallel driver
	// (LearnParallel) restarts the world after a rank failure before
	// giving up, resuming from the newest checkpoints. 0 disables
	// recovery.
	MaxRestarts int
	// Inject, when non-nil, injects a deterministic failure into the run —
	// the test- and benchmark-facing face of the fault-tolerance layer.
	// Rejected by the sequential engine (recovery is a property of the
	// supervised parallel driver; use LearnParallel(1, …) to exercise it
	// single-rank).
	Inject *FaultSpec
	// Events enables structured run-event recording (internal/obs). Each
	// rank records into its own recorder; the streams are gathered to rank
	// 0, merged deterministically, and returned in Output.Events. Recording
	// is result-invisible: the learned network is bit-identical with and
	// without it.
	Events bool
	// Metrics, when non-nil, receives counters, gauges, and histograms
	// from every layer of the run (comm traffic, pool costs, split steps,
	// imbalance). The registry is concurrency-safe and shared by all ranks
	// of an in-process world. Like Events, result-invisible.
	Metrics *obs.Registry
	// Ctx, when non-nil, threads cooperative cancellation and deadline
	// propagation through the run: every rank polls the context at its
	// deterministic iteration boundaries (GaneSH update steps, consensus
	// peeling rounds, module-unit edges, task boundaries — DESIGN §13).
	// Checks never consume PRNG draws or reorder collectives, so an
	// unfired context is result-invisible; when it fires, the run drains
	// to its durable checkpoints and the driver returns a *CancelledError
	// wrapping ErrCancelled (context cancelled) or ErrDeadline (deadline
	// exceeded). A nil Ctx never cancels.
	Ctx context.Context
}

// FaultSpec describes a deterministic failure to inject. Comm faults
// address communication operations by (rank, op) — see comm.Fault — and are
// honored by LearnParallel, which owns the world. Task, when non-empty,
// crashes rank Rank at a pipeline failpoint: TaskGaneSH or TaskConsensus
// (immediately after that task's checkpoint is written) or "module:<k>" (as
// module k's learning starts). The supervised driver clears the spec after
// the first attempt, so an injected failure fires exactly once.
type FaultSpec struct {
	Comm []comm.Fault
	Task string
	Rank int
	// CancelAt, when > 0, fires the run's cancellation signal when rank
	// Rank reaches its CancelAt-th cancellation check (1-based) — the
	// cancel analog of comm.Fault's op addressing, used by the
	// cancel-at-every-failpoint matrix. Checks happen at deterministic
	// program points, so (Rank, CancelAt) is a reproducible address.
	// Mutually exclusive with Task.
	CancelAt int64
}

// parseFailpoint splits a FaultSpec.Task into a boundary name ("" when
// unset) and a module index (-1 for task boundaries).
func parseFailpoint(s string) (string, int, error) {
	switch s {
	case "", TaskGaneSH, TaskConsensus:
		return s, -1, nil
	}
	if rest, ok := strings.CutPrefix(s, "module:"); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 0 {
			return "", -1, fmt.Errorf("core: bad module failpoint %q", s)
		}
		return "module", k, nil
	}
	return "", -1, fmt.Errorf("core: unknown failpoint %q (want %q, %q, or \"module:<k>\")",
		s, TaskGaneSH, TaskConsensus)
}

// DefaultOptions mirrors the paper's minimum-run-time experiment
// configuration (§5.1): a single GaneSH run with one update step and one
// regression tree per module, all variables as candidate parents.
func DefaultOptions() Options {
	return Options{
		Prior:                 score.DefaultPrior(),
		Seed:                  1,
		GaneshRuns:            1,
		Ganesh:                ganesh.Params{Updates: 1},
		CoOccurrenceThreshold: 0.25,
		Consensus:             consensus.Params{},
		Module: module.Params{
			Tree: ganesh.ObsParams{Updates: 2, Burnin: 1},
		},
		Standardize: true,
	}
}

// Output is the result of a learning run.
type Output struct {
	// Network is the learned module network.
	Network *result.Network
	// Modules carries the full per-module artifacts (trees, parent
	// scores).
	Modules []*module.Module
	// Splits is the raw split assignment behind the parent scores; CPDs
	// are assembled from it (see BuildCPDs).
	Splits splits.Result
	// Timers holds the per-task wall-clock breakdown of this rank.
	Timers *trace.Timers
	// Workload is the recorded parallelizable work (nil unless
	// Options.RecordWork was set on the sequential engine).
	Workload *trace.Workload
	// CommStats aggregates message traffic (parallel engine only).
	CommStats comm.Stats
	// Recovery lists the supervised restarts the run survived (empty for
	// an uninterrupted run; LearnParallel only).
	Recovery []trace.RecoveryEvent
	// CancelChecks counts the cancellation checks this rank polled — the
	// probe a cancel matrix uses to enumerate every cancellation point of
	// a clean run. Identical on every rank and for every p: checks happen
	// only at replicated program points.
	CancelChecks int64
	// Events is the merged structured event stream (Options.Events; on
	// rank 0 / the sequential engine only — other ranks return nil).
	Events []obs.Event
}

func (o Options) validate() error {
	if err := o.Prior.Validate(); err != nil {
		return err
	}
	if err := o.Module.Splits.Validate(); err != nil {
		return fmt.Errorf("core: invalid split params: %w", err)
	}
	if o.GaneshRuns < 1 {
		return fmt.Errorf("core: GaneshRuns %d must be ≥ 1", o.GaneshRuns)
	}
	if o.CoOccurrenceThreshold < 0 || o.CoOccurrenceThreshold > 1 {
		return fmt.Errorf("core: co-occurrence threshold %v outside [0,1]", o.CoOccurrenceThreshold)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers %d must be ≥ 0", o.Workers)
	}
	if o.MaxRestarts < 0 {
		return fmt.Errorf("core: MaxRestarts %d must be ≥ 0", o.MaxRestarts)
	}
	if o.Inject != nil {
		if _, _, err := parseFailpoint(o.Inject.Task); err != nil {
			return err
		}
		if o.Inject.Rank < 0 {
			return fmt.Errorf("core: Inject.Rank %d must be ≥ 0", o.Inject.Rank)
		}
		if o.Inject.CancelAt < 0 {
			return fmt.Errorf("core: Inject.CancelAt %d must be ≥ 0", o.Inject.CancelAt)
		}
		if o.Inject.CancelAt > 0 && o.Inject.Task != "" {
			return fmt.Errorf("core: Inject.CancelAt and Inject.Task are mutually exclusive")
		}
	}
	return nil
}

// withHooks threads this rank's observability hooks into every task's
// params. Per-rank data (pool costs, imbalance) is emitted by every rank;
// single-sourced task data (the consensus peeling trail, replicated
// identically everywhere) attaches only where root is true — rank 0 or the
// sequential engine.
func (o Options) withHooks(h *obs.Hooks, root bool) Options {
	if h == nil {
		return o
	}
	o.Ganesh.Hooks = h
	o.Module.Tree.Hooks = h
	o.Module.Splits.Hooks = h
	if root {
		o.Consensus.Hooks = h
	}
	return o
}

// withCancel threads this rank's cancellation signal into every task's
// params. Unlike withHooks there is no root gating: each rank polls its own
// Canceler at the same replicated program points, so check counts stay
// rank-identical and no collective is reordered.
func (o Options) withCancel(cl *comm.Canceler) Options {
	o.Ganesh.Cancel = cl
	o.Module.Tree.Cancel = cl
	o.Module.Splits.Cancel = cl
	o.Consensus.Cancel = cl
	return o
}

// withWorkers threads the hybrid worker knob into every task's params,
// keeping any per-task count the caller set explicitly.
func (o Options) withWorkers() Options {
	if o.Workers == 0 {
		return o
	}
	if o.Ganesh.Workers == 0 {
		o.Ganesh.Workers = o.Workers
	}
	if o.Module.Tree.Workers == 0 {
		o.Module.Tree.Workers = o.Workers
	}
	if o.Module.Splits.Workers == 0 {
		o.Module.Splits.Workers = o.Workers
	}
	return o
}

// prepare standardizes (optionally) and quantizes the data set.
func prepare(d *dataset.Data, opt Options) (*score.QData, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N < 2 || d.M < 2 {
		return nil, fmt.Errorf("core: need at least a 2×2 data set, got %d×%d", d.N, d.M)
	}
	if d.N*d.M > score.MaxBlockCells {
		return nil, fmt.Errorf("core: %d×%d = %d cells exceeds the exact-statistics capacity of %d (see score.MaxBlockCells)",
			d.N, d.M, d.N*d.M, score.MaxBlockCells)
	}
	work := d
	if opt.Standardize {
		work = d.Clone()
		work.Standardize()
	}
	return score.QuantizeData(work), nil
}

// pipeline is the engine-independent run: prim supplies the sequential or
// parallel task primitives.
type pipeline struct {
	// ganeshEnsembles returns the variable-partition snapshot of every
	// co-clustering run, indexed by run.
	ganeshEnsembles func(opt Options, master *prng.MRG3) [][][]int
	moduleRun       func(moduleVars [][]int, par module.Params, g *prng.MRG3, prog *module.Progress) (*module.Result, error)
	// writesCheckpoints is true on the rank that persists checkpoints
	// (the only rank in the sequential engine; rank 0 in the parallel
	// one). Task-level events are emitted from the same place, keeping
	// the merged stream single-sourced.
	writesCheckpoints bool
	// rank identifies this pipeline instance for fault injection (0 in
	// the sequential engine).
	rank int
	// hooks is this rank's observability sink (nil when disabled); ranks
	// the world size, for run.start/run.end events.
	hooks *obs.Hooks
	ranks int
	// cancel is this rank's cancellation signal, polled at the task
	// boundaries and module-unit edges of run() (and, through the params
	// threaded by withCancel, inside the tasks themselves).
	cancel *comm.Canceler
}

// failpointFn returns the task-boundary crash hook for this rank: a no-op
// unless opt.Inject targets a failpoint on this rank.
func (prim pipeline) failpointFn(opt Options) func(task string, mi int) {
	if opt.Inject == nil || opt.Inject.Task == "" || opt.Inject.Rank != prim.rank {
		return func(string, int) {}
	}
	task, k, err := parseFailpoint(opt.Inject.Task)
	if err != nil {
		// validate() already rejected malformed specs.
		return func(string, int) {}
	}
	return func(at string, mi int) {
		if at == task && mi == k {
			panic(fmt.Errorf("%w: rank %d at failpoint %q", comm.ErrInjected, prim.rank, opt.Inject.Task))
		}
	}
}

// snapshotOf converts a final variable → cluster assignment into the
// partition snapshot consumed by the consensus task.
func snapshotOf(assign []int) [][]int {
	byCluster := map[int][]int{}
	maxC := -1
	for x, c := range assign {
		byCluster[c] = append(byCluster[c], x)
		if c > maxC {
			maxC = c
		}
	}
	snap := make([][]int, 0, len(byCluster))
	for c := 0; c <= maxC; c++ {
		if vars, ok := byCluster[c]; ok {
			snap = append(snap, vars)
		}
	}
	return snap
}

func run(d *dataset.Data, q *score.QData, opt Options, prim pipeline, timers *trace.Timers) (*Output, error) {
	master := prng.New(opt.Seed)
	failpoint := prim.failpointFn(opt)

	// Task-level events are single-sourced from the checkpoint-writing
	// rank; per-rank data (pool costs, comm stats) is emitted elsewhere
	// through the hooks each engine carries.
	emit := func(ev obs.Event) {
		if prim.writesCheckpoints {
			prim.hooks.Emit(ev)
		}
	}
	taskEvent := func(typ, name string) {
		ev := obs.Event{Type: typ, Task: &obs.TaskInfo{Name: name}}
		if typ == obs.TypeTaskEnd {
			ev.DurNS = int64(timers.Get(name))
		}
		emit(ev)
	}
	checkpointEvent := func(file string) {
		emit(obs.Event{Type: obs.TypeCheckpoint, Checkpoint: &obs.CheckpointInfo{File: file}})
	}
	emit(obs.Event{Type: obs.TypeRunStart, Run: &obs.RunInfo{
		Ranks: prim.ranks, Workers: opt.Workers, Seed: opt.Seed, N: q.N, M: q.M,
	}})

	// Task 1: G GaneSH co-clustering runs, each on its own numbered
	// substream, so the sampled ensemble is independent of the execution
	// layout (all ranks per run, or disjoint rank groups per §3.2.1).
	var ensembles [][][]int
	var resumedModules [][]int
	haveModules := false
	prim.cancel.Check()
	if opt.CheckpointDir != "" {
		var err error
		if prim.writesCheckpoints {
			// Resume entry: clear any orphaned temp files an interrupted
			// atomic rename left behind before touching the directory.
			if err = sweepTempCheckpoints(opt.CheckpointDir); err != nil {
				return nil, err
			}
		}
		if resumedModules, haveModules, err = loadModules(opt.CheckpointDir, opt, q.N); err != nil {
			return nil, err
		}
		if !haveModules {
			if ensembles, err = loadEnsembles(opt.CheckpointDir, opt, q.N); err != nil {
				return nil, err
			}
		}
	}
	if !haveModules && ensembles == nil {
		taskEvent(obs.TypeTaskStart, TaskGaneSH)
		timers.Time(TaskGaneSH, func() {
			ensembles = prim.ganeshEnsembles(opt, master)
		})
		if opt.CheckpointDir != "" && prim.writesCheckpoints {
			ck := ensemblesCheckpoint{Version: checkpointVersion, Seed: opt.Seed, GaneshRuns: opt.GaneshRuns, N: q.N, Ensembles: ensembles}
			if err := saveCheckpoint(opt.CheckpointDir, ckptEnsembles, &ck, opt.BinaryCheckpoints); err != nil {
				return nil, err
			}
			checkpointEvent(ckptEnsembles)
		}
		taskEvent(obs.TypeTaskEnd, TaskGaneSH)
		failpoint(TaskGaneSH, -1)
	} else {
		taskEvent(obs.TypeTaskResume, TaskGaneSH)
	}
	// Task-boundary cancellation point: the GaneSH checkpoint (when
	// enabled) is durable by now, so a cancel here resumes from it.
	prim.cancel.Check()

	// Task 2: consensus clustering, sequential as in the paper (<0.04 %
	// of run time), replicated on every rank in the parallel engine.
	var moduleVars [][]int
	if haveModules {
		moduleVars = resumedModules
		taskEvent(obs.TypeTaskResume, TaskConsensus)
	} else {
		taskEvent(obs.TypeTaskStart, TaskConsensus)
		var consErr error
		timers.Time(TaskConsensus, func() {
			a := ganesh.CoOccurrence(q.N, ensembles, opt.CoOccurrenceThreshold)
			moduleVars, consErr = consensus.Cluster(q.N, a, opt.Consensus)
		})
		if consErr != nil {
			return nil, consErr
		}
		if opt.CheckpointDir != "" && prim.writesCheckpoints {
			ck := modulesCheckpoint{Version: checkpointVersion, Seed: opt.Seed, GaneshRuns: opt.GaneshRuns, N: q.N, ModuleVars: moduleVars}
			if err := saveCheckpoint(opt.CheckpointDir, ckptModules, &ck, opt.BinaryCheckpoints); err != nil {
				return nil, err
			}
			checkpointEvent(ckptModules)
		}
		taskEvent(obs.TypeTaskEnd, TaskConsensus)
		failpoint(TaskConsensus, -1)
	}
	prim.cancel.Check()

	// Task 3: module learning on its own substream, one numbered
	// sub-substream per module, checkpointed module-by-module so a crash
	// here loses at most one module's work.
	prog := &module.Progress{
		OnStart: func(mi int) {
			emit(obs.Event{Type: obs.TypeModuleStart, Module: &obs.ModuleInfo{
				Index: mi, Vars: len(moduleVars[mi]),
			}})
			failpoint("module", mi)
			// Module-unit cancellation edge: everything before module mi
			// is durably checkpointed (when enabled), and unit mi has not
			// drawn from its substream yet, so a cancel here loses no
			// completed work and a resume recomputes mi bit-identically.
			prim.cancel.Check()
		},
	}
	var saveUnit func(u *module.Unit) error
	if opt.CheckpointDir != "" {
		units, err := loadProgress(opt.CheckpointDir, opt, q.N, moduleVars)
		if err != nil {
			return nil, err
		}
		if units == nil {
			units = map[int]*module.Unit{}
		}
		prog.Completed = units
		if prim.writesCheckpoints {
			saveUnit = func(u *module.Unit) error {
				units[u.Module] = u
				return saveProgress(opt.CheckpointDir, opt, q.N, units)
			}
		}
	}
	prog.OnUnit = func(u *module.Unit) error {
		if saveUnit != nil {
			if err := saveUnit(u); err != nil {
				return err
			}
			checkpointEvent(ckptProgress)
		}
		emit(obs.Event{Type: obs.TypeModuleDone, Module: &obs.ModuleInfo{
			Index: u.Module, Vars: len(u.Vars), Splits: len(u.Weighted) + len(u.Uniform),
		}})
		return nil
	}
	var modRes *module.Result
	var modErr error
	taskEvent(obs.TypeTaskStart, TaskModules)
	timers.Time(TaskModules, func() {
		g := master.Substream(uint64(opt.GaneshRuns + 1))
		modRes, modErr = prim.moduleRun(moduleVars, opt.Module, g, prog)
	})
	if modErr != nil {
		return nil, modErr
	}
	taskEvent(obs.TypeTaskEnd, TaskModules)

	// Assemble the network artifact.
	net := &result.Network{N: d.N, M: d.M, Names: append([]string(nil), d.Names...)}
	for mi, mod := range modRes.Modules {
		rm := result.Module{ID: mi, Variables: append([]int(nil), mod.Vars...)}
		for _, v := range rm.Variables {
			rm.VariableNames = append(rm.VariableNames, d.Names[v])
		}
		for _, ps := range mod.ParentsWeighted {
			rm.Parents = append(rm.Parents, result.Parent{
				Index: ps.Parent, Name: d.Names[ps.Parent], Score: ps.Score, Count: ps.Count,
			})
		}
		for _, ps := range mod.ParentsUniform {
			rm.ParentsUniform = append(rm.ParentsUniform, result.Parent{
				Index: ps.Parent, Name: d.Names[ps.Parent], Score: ps.Score, Count: ps.Count,
			})
		}
		net.Modules = append(net.Modules, rm)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	emit(obs.Event{Type: obs.TypeRunEnd, Run: &obs.RunInfo{
		Ranks: prim.ranks, Workers: opt.Workers, Seed: opt.Seed, N: q.N, M: q.M,
		Modules: len(net.Modules),
	}})
	return &Output{Network: net, Modules: modRes.Modules, Splits: modRes.Splits, Timers: timers}, nil
}

// Learn runs the full pipeline sequentially. A cancelled Options.Ctx
// surfaces as a *CancelledError; the checkpoints written so far (when
// Options.CheckpointDir is set) resume bit-identically.
func Learn(d *dataset.Data, opt Options) (out *Output, err error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Inject != nil {
		return nil, fmt.Errorf("core: fault injection needs the supervised parallel driver; use LearnParallel(1, …) for a single-rank run")
	}
	opt = opt.withWorkers()
	q, err := prepare(d, opt)
	if err != nil {
		return nil, err
	}
	var wl *trace.Workload
	if opt.RecordWork {
		wl = &trace.Workload{}
	}
	var rec *obs.Recorder
	if opt.Events {
		rec = obs.NewRecorder(0)
	}
	hooks := obs.NewHooks(rec, opt.Metrics)
	opt = opt.withHooks(hooks, true)
	cl := newCanceler(opt, 0)
	opt = opt.withCancel(cl)
	// The sequential engine has no comm world to recover a cancellation
	// panic; convert it into the documented error return here.
	defer catchCancel(opt, &out, &err)
	timers := trace.NewTimers()
	out, err = run(d, q, opt, pipeline{
		ganeshEnsembles: func(opt Options, master *prng.MRG3) [][][]int {
			ensembles := make([][][]int, opt.GaneshRuns)
			for r := 0; r < opt.GaneshRuns; r++ {
				g := master.Substream(uint64(r + 1))
				ensembles[r] = snapshotOf(ganesh.Run(q, opt.Prior, opt.Ganesh, g, wl).VarAssignment())
			}
			return ensembles
		},
		moduleRun: func(moduleVars [][]int, par module.Params, g *prng.MRG3, prog *module.Progress) (*module.Result, error) {
			return module.Learn(q, opt.Prior, moduleVars, par, g, wl, prog)
		},
		writesCheckpoints: true,
		hooks:             hooks,
		ranks:             1,
		cancel:            cl,
	}, timers)
	if err != nil {
		return nil, err
	}
	out.Workload = wl
	out.CancelChecks = cl.Checks()
	if rec != nil {
		out.Events = rec.Events()
	}
	return out, nil
}

// LearnWithComm runs the full pipeline on an existing communicator; every
// rank returns an identical network. When Options.Ctx fires, the first rank
// to poll it panics with an ErrCancelled/ErrDeadline-wrapped error, tearing
// the world down through the usual abort path — callers driving their own
// comm.Run see it as a RankError; LearnParallel distills it into a
// *CancelledError.
func LearnWithComm(c *comm.Comm, d *dataset.Data, opt Options) (*Output, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.RecordWork {
		return nil, fmt.Errorf("core: work recording is only supported on the sequential engine")
	}
	opt = opt.withWorkers()
	q, err := prepare(d, opt)
	if err != nil {
		return nil, err
	}
	var rec *obs.Recorder
	if opt.Events {
		rec = obs.NewRecorder(c.Rank())
	}
	hooks := obs.NewHooks(rec, opt.Metrics)
	opt = opt.withHooks(hooks, c.Rank() == 0)
	cl := newCanceler(opt, c.Rank())
	opt = opt.withCancel(cl)
	timers := trace.NewTimers()
	out, err := run(d, q, opt, pipeline{
		ganeshEnsembles: func(opt Options, master *prng.MRG3) [][][]int {
			return parallelEnsembles(c, q, opt, master)
		},
		moduleRun: func(moduleVars [][]int, par module.Params, g *prng.MRG3, prog *module.Progress) (*module.Result, error) {
			return module.LearnParallel(c, q, opt.Prior, moduleVars, par, g, prog)
		},
		writesCheckpoints: c.Rank() == 0,
		rank:              c.Rank(),
		hooks:             hooks,
		ranks:             c.Size(),
		cancel:            cl,
	}, timers)
	if err != nil {
		return nil, err
	}
	out.CommStats = c.Stats()
	out.CancelChecks = cl.Checks()
	// Snapshot per-rank traffic before the event gather adds its own.
	hooks.CommStats(c.Rank(), out.CommStats)
	if rec != nil {
		perRank := comm.Gather(c, 0, rec.Events())
		if c.Rank() == 0 {
			out.Events = obs.Merge(perRank)
		}
	}
	return out, nil
}

// BuildCPDs assembles the executable regression-tree CPD of every learned
// module (§2.1: the shared conditional distribution of a module's
// variables), from a learning output and the data set it was learned from.
// The same Options must be passed so preprocessing matches.
func BuildCPDs(d *dataset.Data, opt Options, out *Output) ([]*module.CPD, error) {
	q, err := prepare(d, opt)
	if err != nil {
		return nil, err
	}
	res := &module.Result{Modules: out.Modules, Splits: out.Splits}
	return module.BuildCPDs(res, q, opt.Prior)
}

// parallelEnsembles executes the G GaneSH runs on c's ranks: all ranks per
// run by default, or — with Options.GaneshGroups > 1 — on disjoint rank
// groups, each group handling the runs r ≡ group (mod groups), followed by
// an exchange of the sampled partitions (§3.2.1: the runs need no
// communication between groups).
func parallelEnsembles(c *comm.Comm, q *score.QData, opt Options, master *prng.MRG3) [][][]int {
	groups := opt.GaneshGroups
	if groups <= 1 || c.Size() == 1 || opt.GaneshRuns == 1 {
		ensembles := make([][][]int, opt.GaneshRuns)
		for r := 0; r < opt.GaneshRuns; r++ {
			g := master.Substream(uint64(r + 1))
			ensembles[r] = snapshotOf(ganesh.RunParallel(c, q, opt.Prior, opt.Ganesh, g).VarAssignment())
		}
		return ensembles
	}
	groups = min(groups, c.Size(), opt.GaneshRuns)
	// Contiguous rank groups of near-equal size.
	color := c.Rank() * groups / c.Size()
	sub := comm.Split(c, color)
	type runSnap struct {
		R    int
		Snap [][]int
	}
	var local []runSnap
	for r := color; r < opt.GaneshRuns; r += groups {
		g := master.Substream(uint64(r + 1))
		snap := snapshotOf(ganesh.RunParallel(sub, q, opt.Prior, opt.Ganesh, g).VarAssignment())
		// Only the group's first rank contributes to the exchange, so
		// each run appears exactly once.
		if sub.Rank() == 0 {
			local = append(local, runSnap{R: r, Snap: snap})
		}
	}
	all := comm.AllGatherv(c, local)
	ensembles := make([][][]int, opt.GaneshRuns)
	for _, rs := range all {
		ensembles[rs.R] = rs.Snap
	}
	return ensembles
}

// LearnParallel spins up p ranks, runs the parallel pipeline, and returns
// rank 0's output with the total message traffic of all ranks.
//
// It is also the supervised driver of the fault-tolerance layer: when a
// rank fails (organically or via Options.Inject), the whole world is torn
// down MPI-style, the failure is recorded as a recovery event, and — up to
// Options.MaxRestarts times — a fresh world is started that resumes from
// the newest checkpoints in Options.CheckpointDir (or from scratch without
// checkpointing). Determinism (DESIGN §6) makes the recovered network
// bit-identical to an uninterrupted run's.
//
// Cancellation (Options.Ctx) is not a failure: a cancelled world is never
// restarted, no restart budget is consumed, and the driver returns a
// *CancelledError naming the durable checkpoints the run drained to.
func LearnParallel(p int, d *dataset.Data, opt Options) (*Output, error) {
	attempt := opt
	var recovery []trace.RecoveryEvent
	for {
		outs := make([]*Output, p)
		var faults []comm.Fault
		if attempt.Inject != nil {
			faults = attempt.Inject.Comm
		}
		stats, err := comm.RunWithFaults(p, faults, func(c *comm.Comm) error {
			out, err := LearnWithComm(c, d, attempt)
			if err != nil {
				return err
			}
			outs[c.Rank()] = out
			return nil
		})
		if err != nil {
			if isCancel(err) {
				return nil, cancelledError(err, opt)
			}
			var re *comm.RankError
			if len(recovery) >= opt.MaxRestarts || !errors.As(err, &re) {
				return nil, err
			}
			recovery = append(recovery, trace.RecoveryEvent{
				Attempt:  len(recovery) + 1,
				Rank:     re.Rank,
				Panicked: re.Stack != "",
				Err:      re.Err.Error(),
			})
			// Injected faults fire once; an organic failure that repeats
			// every attempt exhausts MaxRestarts instead of looping.
			attempt.Inject = nil
			continue
		}
		total := comm.Stats{}
		for _, s := range stats {
			total.Add(s)
		}
		out := outs[0]
		out.CommStats = total
		out.Recovery = recovery
		// Failures happened before the surviving attempt's events, so
		// recovery events lead the merged stream.
		if len(recovery) > 0 && out.Events != nil {
			evs := make([]obs.Event, 0, len(recovery)+len(out.Events))
			for _, re := range recovery {
				r := re
				evs = append(evs, obs.Event{Type: obs.TypeRecovery, Recovery: &r})
			}
			evs = append(evs, out.Events...)
			for i := range evs {
				evs[i].Seq = i
			}
			out.Events = evs
		}
		return out, nil
	}
}
