package core

import (
	"testing"

	"parsimone/internal/obs"
	"parsimone/internal/result"
)

// withObs turns on both sinks.
func withObs(opt Options) Options {
	opt.Events = true
	opt.Metrics = obs.NewRegistry()
	return opt
}

// TestObservabilityResultInvisible is the §4.2 contract extended to the
// observability layer: attaching the event recorder and metrics registry
// must not change the learned network, sequentially or on p ranks, because
// the sinks never consume PRNG draws or alter control flow.
func TestObservabilityResultInvisible(t *testing.T) {
	d, _ := testData(t, 24, 20, 31)
	opt := fastOptions(41)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Learn(d, withObs(opt))
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(seq.Network, want.Network) {
		t.Fatal("sequential: sinks changed the network")
	}
	if len(seq.Events) == 0 {
		t.Fatal("sequential: no events recorded")
	}
	if err := obs.Validate(seq.Events); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3} {
		got, err := LearnParallel(p, d, withObs(opt))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !result.Equal(got.Network, want.Network) {
			t.Fatalf("p=%d: sinks changed the network", p)
		}
		if err := obs.Validate(got.Events); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestObservabilityEventStreamDeterministic: two same-seed runs record
// identical event streams modulo the wall-clock fields, and the canonical
// stream is also identical across worker counts (per-rank cost events are a
// pure function of the static schedule, not of goroutine interleaving).
func TestObservabilityEventStreamDeterministic(t *testing.T) {
	d, _ := testData(t, 24, 20, 32)
	opt := fastOptions(43)
	a, err := LearnParallel(2, d, withObs(opt))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LearnParallel(2, d, withObs(opt))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.DiffCanonical(a.Events, b.Events); err != nil {
		t.Fatal(err)
	}
}

// TestObservabilitySequentialEventShape pins the task-level skeleton of the
// sequential stream: run.start first, run.end last, every task bracketed,
// one module.start/module.done pair per learned module.
func TestObservabilitySequentialEventShape(t *testing.T) {
	d, _ := testData(t, 24, 20, 33)
	out, err := Learn(d, withObs(fastOptions(45)))
	if err != nil {
		t.Fatal(err)
	}
	evs := out.Events
	if evs[0].Type != obs.TypeRunStart {
		t.Fatalf("first event %s, want run.start", evs[0].Type)
	}
	last := evs[len(evs)-1]
	if last.Type != obs.TypeRunEnd {
		t.Fatalf("last event %s, want run.end", last.Type)
	}
	if last.Run.Modules != len(out.Network.Modules) {
		t.Fatalf("run.end module count %d, want %d", last.Run.Modules, len(out.Network.Modules))
	}
	count := map[string]int{}
	for _, ev := range evs {
		count[ev.Type]++
		if ev.Rank != 0 {
			t.Fatalf("sequential event on rank %d: %+v", ev.Rank, ev)
		}
	}
	if count[obs.TypeTaskStart] != 3 || count[obs.TypeTaskEnd] != 3 {
		t.Fatalf("task bracketing wrong: %v", count)
	}
	nm := len(out.Network.Modules)
	if count[obs.TypeModuleStart] != nm || count[obs.TypeModuleDone] != nm {
		t.Fatalf("module events %d/%d, want %d each", count[obs.TypeModuleStart], count[obs.TypeModuleDone], nm)
	}
	// task.end carries the measured duration.
	for _, ev := range evs {
		if ev.Type == obs.TypeTaskEnd && ev.DurNS < 0 {
			t.Fatalf("negative task duration: %+v", ev)
		}
	}
}

// TestObservabilityRecoveryEventsLead: after an injected rank failure the
// merged stream starts with the recovery record, then the surviving
// attempt's run.start, and remains schema-valid.
func TestObservabilityRecoveryEventsLead(t *testing.T) {
	d, _ := testData(t, 24, 20, 34)
	opt := withObs(fastOptions(47))
	opt.MaxRestarts = 1
	opt.Inject = &FaultSpec{Task: TaskGaneSH, Rank: 1}
	out, err := LearnParallel(2, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Recovery) != 1 {
		t.Fatalf("recovery events: %v", out.Recovery)
	}
	if err := obs.Validate(out.Events); err != nil {
		t.Fatal(err)
	}
	if out.Events[0].Type != obs.TypeRecovery || out.Events[0].Recovery.Attempt != 1 {
		t.Fatalf("first event %+v, want the recovery record", out.Events[0])
	}
	if out.Events[1].Type != obs.TypeRunStart {
		t.Fatalf("second event %s, want the restarted run.start", out.Events[1].Type)
	}
}

// TestObservabilityCheckpointEvents: a checkpointed run records one
// checkpoint.write per persisted artifact, and a resumed run records
// task.resume instead of re-bracketing the completed tasks.
func TestObservabilityCheckpointEvents(t *testing.T) {
	d, _ := testData(t, 24, 20, 35)
	opt := withObs(fastOptions(49))
	opt.CheckpointDir = t.TempDir()
	out, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]int{}
	for _, ev := range out.Events {
		if ev.Type == obs.TypeCheckpoint {
			files[ev.Checkpoint.File]++
		}
	}
	nm := len(out.Network.Modules)
	if files["ensembles.json"] != 1 || files["modules.json"] != 1 || files["progress.json"] != nm {
		t.Fatalf("checkpoint events %v, want 1/1/%d", files, nm)
	}
	// Resume from the completed checkpoints: the heavy tasks are skipped
	// and the stream says so.
	opt.Metrics = obs.NewRegistry()
	again, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	resumed := 0
	for _, ev := range again.Events {
		switch ev.Type {
		case obs.TypeTaskResume:
			resumed++
		case obs.TypeModuleStart:
			t.Fatalf("resumed run re-learned module %d", ev.Module.Index)
		}
	}
	if resumed == 0 {
		t.Fatal("resumed run recorded no task.resume events")
	}
	if !result.Equal(again.Network, out.Network) {
		t.Fatal("resumed network differs")
	}
}
