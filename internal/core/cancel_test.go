package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"parsimone/internal/comm"
	"parsimone/internal/dataset"
	"parsimone/internal/prng"
	"parsimone/internal/result"
)

// cancelFixture shares the recovery fixture and probes the clean run's
// cancellation-check count — the address space of the cancel matrix.
func cancelFixture(t *testing.T) (d *fixtureData, checks int64) {
	t.Helper()
	data, opt, want := recoveryFixture(t)
	probe, err := Learn(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if probe.CancelChecks < 5 {
		t.Fatalf("clean run polled only %d cancellation checks, matrix needs more structure", probe.CancelChecks)
	}
	return &fixtureData{data: data, opt: opt, want: want}, probe.CancelChecks
}

type fixtureData struct {
	data *dataset.Data
	opt  Options
	want *Output
}

// cancelAndResume cancels a run at check index at (on rank 0), asserts the
// documented *CancelledError, then resumes from the drained checkpoints and
// returns the resumed output. batchOffRun/batchOffResume disable the batched
// split scorer independently on the two legs: the result is defined to be
// identical either way, so every combination — including a batched run
// resumed unbatched — must land on the same network.
func cancelAndResume(t *testing.T, f *fixtureData, p int, binary bool, at int64,
	batchOffRun, batchOffResume bool) *Output {
	t.Helper()
	dir := t.TempDir()
	injected := f.opt
	injected.CheckpointDir = dir
	injected.BinaryCheckpoints = binary
	injected.Module.Splits.DisableBatch = batchOffRun
	injected.MaxRestarts = 1 // must NOT be consumed: cancellation is not a failure
	injected.Inject = &FaultSpec{CancelAt: at, Rank: 0}
	out, err := LearnParallel(p, f.data, injected)
	if err == nil {
		t.Fatalf("cancel at check %d returned no error (out=%v)", at, out != nil)
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("cancel at check %d: error %v is not a *CancelledError", at, err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancel at check %d: error %v does not unwrap to ErrCancelled", at, err)
	}
	if ce.CheckpointDir != dir {
		t.Fatalf("CancelledError names dir %q, want %q", ce.CheckpointDir, dir)
	}
	for _, name := range ce.Checkpoints {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("CancelledError lists %s but it is not durable: %v", name, err)
		}
	}
	resumed := f.opt
	resumed.CheckpointDir = dir
	resumed.BinaryCheckpoints = binary
	resumed.Module.Splits.DisableBatch = batchOffResume
	got, err := LearnParallel(p, f.data, resumed)
	if err != nil {
		t.Fatalf("resume after cancel at check %d failed: %v", at, err)
	}
	return got
}

// TestCancelMatrixBitIdentical is the acceptance property of cooperative
// cancellation: a run cancelled at EVERY cancellation check (the cancel
// analog of the crash matrix's failpoints), then resumed from its drained
// checkpoints, learns a network bit-identical to the uninterrupted run.
// Exhaustive over check indices at p=1/JSON; the p ∈ {2, 4} worlds and the
// binary checkpoint format cover five spread indices each, mirroring the
// crash matrix's density. The batchOff rows rerun spread indices with the
// batched split scorer disabled — and one row resumes a batched run
// unbatched — proving the restructure preserved resume bit-identity on
// both paths and across them.
func TestCancelMatrixBitIdentical(t *testing.T) {
	f, checks := cancelFixture(t)
	spread := []int64{1, checks / 4, checks / 2, 3 * checks / 4, checks}
	cases := []struct {
		p        int
		binary   bool
		at       []int64
		batchOff [2]bool // [run leg, resume leg]
	}{
		{1, false, nil, [2]bool{}}, // nil → every check index
		{1, true, spread, [2]bool{}},
		{2, false, spread, [2]bool{}},
		{2, true, spread, [2]bool{}},
		{4, false, spread, [2]bool{}},
		{4, true, spread, [2]bool{}},
		{1, false, spread, [2]bool{true, true}},
		{4, true, spread, [2]bool{true, true}},
		{2, false, spread, [2]bool{false, true}}, // cross: batched run, unbatched resume
	}
	for _, tc := range cases {
		ats := tc.at
		if ats == nil {
			for at := int64(1); at <= checks; at++ {
				ats = append(ats, at)
			}
		}
		format := "json"
		if tc.binary {
			format = "binary"
		}
		if tc.batchOff[0] || tc.batchOff[1] {
			format += fmt.Sprintf("_nobatch%v%v", tc.batchOff[0], tc.batchOff[1])
		}
		for _, at := range ats {
			at := at
			t.Run(fmt.Sprintf("%s_p%d_check%d", format, tc.p, at), func(t *testing.T) {
				got := cancelAndResume(t, f, tc.p, tc.binary, at, tc.batchOff[0], tc.batchOff[1])
				if !result.Equal(got.Network, f.want.Network) {
					t.Fatal("resumed network differs from the uninterrupted run")
				}
				if len(got.Recovery) != 0 {
					t.Fatalf("resume recorded %d recovery events, want 0 (cancellation is not a failure)", len(got.Recovery))
				}
			})
		}
	}
}

// TestCancelChecksInvariant: the check count is a pure function of the run
// configuration — identical for the sequential engine and every world size.
// This is what makes (Rank, CancelAt) a reproducible address and proves the
// checks sit at replicated program points only.
func TestCancelChecksInvariant(t *testing.T) {
	f, checks := cancelFixture(t)
	for _, p := range []int{1, 2, 4} {
		out, err := LearnParallel(p, f.data, f.opt)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if out.CancelChecks != checks {
			t.Fatalf("p=%d polled %d cancellation checks, sequential run polled %d", p, out.CancelChecks, checks)
		}
	}
}

// TestCancelVictimRankIrrelevant: cancelling a non-writer rank drains the
// same resumable state — the abort propagates to the writer, which has
// already persisted every completed unit.
func TestCancelVictimRankIrrelevant(t *testing.T) {
	f, checks := cancelFixture(t)
	const p = 4
	dir := t.TempDir()
	injected := f.opt
	injected.CheckpointDir = dir
	injected.Inject = &FaultSpec{CancelAt: checks / 2, Rank: p - 1}
	if _, err := LearnParallel(p, f.data, injected); !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	resumed := f.opt
	resumed.CheckpointDir = dir
	got, err := LearnParallel(p, f.data, resumed)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !result.Equal(got.Network, f.want.Network) {
		t.Fatal("resumed network differs from the uninterrupted run")
	}
}

// TestAlreadyCancelledContext: a context cancelled before the run starts
// stops it at the first check, through both engines, as ErrCancelled.
func TestAlreadyCancelledContext(t *testing.T) {
	d, _ := testData(t, 20, 16, 1)
	opt := fastOptions(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt.Ctx = ctx
	t.Run("sequential", func(t *testing.T) {
		out, err := Learn(d, opt)
		if out != nil || !errors.Is(err, ErrCancelled) {
			t.Fatalf("got (%v, %v), want (nil, ErrCancelled)", out != nil, err)
		}
		var ce *CancelledError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *CancelledError", err)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		out, err := LearnParallel(2, d, opt)
		if out != nil || !errors.Is(err, ErrCancelled) {
			t.Fatalf("got (%v, %v), want (nil, ErrCancelled)", out != nil, err)
		}
	})
}

// TestDeadlineMapsToErrDeadline: a context stopped by its deadline is
// distinguishable from an explicit cancellation.
func TestDeadlineMapsToErrDeadline(t *testing.T) {
	d, _ := testData(t, 20, 16, 1)
	opt := fastOptions(3)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	opt.Ctx = ctx
	_, err := Learn(d, opt)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if errors.Is(err, ErrCancelled) {
		t.Fatalf("deadline expiry also matches ErrCancelled: %v", err)
	}
}

// TestUnfiredContextInvisible: attaching a live context that never fires
// must be result-invisible — bit-identical network, zero PRNG perturbation.
func TestUnfiredContextInvisible(t *testing.T) {
	d, _ := testData(t, 20, 16, 1)
	opt := fastOptions(3)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt.Ctx = ctx
	got, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("attaching an unfired context changed the learned network")
	}
	if got.CancelChecks != want.CancelChecks {
		t.Fatalf("check counts differ with (%d) and without (%d) a context", got.CancelChecks, want.CancelChecks)
	}
}

// TestCancelAtValidation: malformed cancel injections are rejected up front.
func TestCancelAtValidation(t *testing.T) {
	d, _ := testData(t, 20, 16, 1)
	opt := fastOptions(3)
	opt.Inject = &FaultSpec{CancelAt: -1}
	if _, err := LearnParallel(2, d, opt); err == nil {
		t.Error("negative CancelAt accepted")
	}
	opt = fastOptions(3)
	opt.Inject = &FaultSpec{CancelAt: 1, Task: TaskGaneSH}
	if _, err := LearnParallel(2, d, opt); err == nil {
		t.Error("CancelAt combined with Task accepted")
	}
}

// TestSweepOrphanedTempCheckpoints: a run killed mid-write can orphan a
// checkpoint *.tmp file; resume must remove it and still recover the
// bit-identical network from the durable files beside it.
func TestSweepOrphanedTempCheckpoints(t *testing.T) {
	d, opt, want := recoveryFixture(t)
	dir := t.TempDir()
	injected := opt
	injected.CheckpointDir = dir
	injected.Inject = &FaultSpec{Task: "module:1", Rank: 0} // MaxRestarts = 0: leaves checkpoints behind
	if _, err := LearnParallel(2, d, injected); err == nil {
		t.Fatal("injected crash returned no error")
	}
	// Plant stale temp files — the debris of an interrupted atomic rename.
	for _, name := range []string{ckptEnsembles, ckptModules, ckptProgress} {
		stale := filepath.Join(dir, name+".tmp")
		if err := os.WriteFile(stale, []byte("torn partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	resumed := opt
	resumed.CheckpointDir = dir
	got, err := LearnParallel(2, d, resumed)
	if err != nil {
		t.Fatalf("resume beside stale temp files failed: %v", err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("resumed network differs from the uninterrupted run")
	}
	for _, name := range []string{ckptEnsembles, ckptModules, ckptProgress} {
		if _, err := os.Stat(filepath.Join(dir, name+".tmp")); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale %s.tmp survived the resume sweep (err=%v)", name, err)
		}
	}
}

// TestSoakCancelFaultChaos is the seeded chaos soak behind `make soak`: a
// deterministic MRG3 stream picks (p, checkpoint format, cancel point,
// batched-scorer on/off per leg, and optionally a comm-fault crash) per
// iteration; every iteration must end in the bit-identical network, either
// directly (fault + supervised restart) or after a resume (cancellation).
// The batch draws are independent for the run and resume legs, so the soak
// also exercises crossing the batched/unbatched boundary mid-job.
// PARSIMONE_SOAK_ITERS scales the iteration count (default 3, so the test
// stays cheap in tier-1).
func TestSoakCancelFaultChaos(t *testing.T) {
	iters := 3
	if s := os.Getenv("PARSIMONE_SOAK_ITERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad PARSIMONE_SOAK_ITERS %q", s)
		}
		iters = v
	}
	f, checks := cancelFixture(t)
	g := prng.New(0xC0FFEE)
	ps := []int{1, 2, 4}
	for i := 0; i < iters; i++ {
		p := ps[g.Intn(len(ps))]
		binary := g.Intn(2) == 1
		at := int64(1 + g.Intn(int(checks)))
		crash := g.Intn(2) == 1 && p > 1
		batchOffRun := g.Intn(2) == 1
		batchOffResume := g.Intn(2) == 1
		t.Run(fmt.Sprintf("iter%d_p%d_at%d_crash%v_nobatch%v%v", i, p, at, crash, batchOffRun, batchOffResume), func(t *testing.T) {
			if crash {
				// Fault plan: crash a random rank at a random comm op, let
				// the supervised restart recover.
				dir := t.TempDir()
				injected := f.opt
				injected.CheckpointDir = dir
				injected.BinaryCheckpoints = binary
				injected.Module.Splits.DisableBatch = batchOffRun
				injected.MaxRestarts = 1
				injected.Inject = &FaultSpec{Comm: []comm.Fault{
					{Rank: g.Intn(p), Op: int64(1 + g.Intn(64)), Kind: comm.FaultCrash},
				}}
				got, err := LearnParallel(p, f.data, injected)
				if err != nil {
					t.Fatalf("soak recovery failed: %v", err)
				}
				if !result.Equal(got.Network, f.want.Network) {
					t.Fatal("soak-recovered network differs from the uninterrupted run")
				}
				return
			}
			got := cancelAndResume(t, f, p, binary, at, batchOffRun, batchOffResume)
			if !result.Equal(got.Network, f.want.Network) {
				t.Fatal("soak resume differs from the uninterrupted run")
			}
		})
	}
}
