package core

import (
	"os"
	"path/filepath"
	"testing"

	"parsimone/internal/dataset"
	"parsimone/internal/ganesh"
	"parsimone/internal/result"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
)

func testData(t testing.TB, n, m int, seed uint64) (*dataset.Data, *synth.Truth) {
	t.Helper()
	d, truth, err := synth.Generate(synth.Config{
		N: n, M: m, Regulators: max(2, n/10), Modules: max(2, n/12), Noise: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, truth
}

// fastOptions keeps unit-test runs quick.
func fastOptions(seed uint64) Options {
	opt := DefaultOptions()
	opt.Seed = seed
	opt.Ganesh.Updates = 1
	opt.Module.Splits = splits.Params{NumSplits: 2, MaxSteps: 16}
	return opt
}

func TestLearnEndToEnd(t *testing.T) {
	d, _ := testData(t, 30, 24, 1)
	out, err := Learn(d, fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Network == nil || len(out.Network.Modules) == 0 {
		t.Fatal("no modules learned")
	}
	if err := out.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	// Task breakdown present and dominated by module learning
	// (paper §5.3.1: ≥94.7 % sequentially).
	for _, task := range []string{TaskGaneSH, TaskConsensus, TaskModules} {
		if out.Timers.Get(task) < 0 {
			t.Fatalf("task %s missing", task)
		}
	}
}

func TestLearnDeterministic(t *testing.T) {
	d, _ := testData(t, 24, 20, 2)
	a, err := Learn(d, fastOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(d, fastOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(a.Network, b.Network) {
		t.Fatal("identical seeds gave different networks")
	}
	c, err := Learn(d, fastOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	if result.Equal(a.Network, c.Network) {
		t.Fatal("different seeds gave identical networks")
	}
}

// TestPInvariance is the paper's headline correctness property (§4.2): the
// parallel engine learns exactly the network the sequential engine learns,
// for every processor count.
func TestPInvariance(t *testing.T) {
	d, _ := testData(t, 24, 20, 3)
	opt := fastOptions(7)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		got, err := LearnParallel(p, d, opt)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !result.Equal(got.Network, want.Network) {
			t.Fatalf("p=%d: network differs from sequential", p)
		}
	}
	// Hybrid sweep: the intra-rank worker pool must preserve the same
	// network for every (p, W) combination, including the sequential
	// engine with workers.
	for _, workers := range []int{1, 2, 4} {
		opt.Workers = workers
		got, err := Learn(d, opt)
		if err != nil {
			t.Fatalf("seq W=%d: %v", workers, err)
		}
		if !result.Equal(got.Network, want.Network) {
			t.Fatalf("seq W=%d: network differs", workers)
		}
		for _, p := range []int{1, 2, 4} {
			got, err := LearnParallel(p, d, opt)
			if err != nil {
				t.Fatalf("p=%d W=%d: %v", p, workers, err)
			}
			if !result.Equal(got.Network, want.Network) {
				t.Fatalf("p=%d W=%d: network differs from sequential", p, workers)
			}
		}
	}
}

func TestLearnRecordsWork(t *testing.T) {
	d, _ := testData(t, 24, 20, 4)
	opt := fastOptions(9)
	opt.RecordWork = true
	out, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workload == nil || out.Workload.TotalCost() <= 0 {
		t.Fatal("work not recorded")
	}
	if out.Workload.Phase(splits.PhaseAssign) == nil {
		t.Fatal("split phase missing from workload")
	}
}

func TestLearnParallelRejectsRecording(t *testing.T) {
	d, _ := testData(t, 20, 16, 5)
	opt := fastOptions(11)
	opt.RecordWork = true
	if _, err := LearnParallel(2, d, opt); err == nil {
		t.Fatal("parallel engine accepted work recording")
	}
}

func TestLearnValidation(t *testing.T) {
	d, _ := testData(t, 20, 16, 6)
	opt := fastOptions(1)
	opt.GaneshRuns = 0
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("GaneshRuns 0 accepted")
	}
	opt = fastOptions(1)
	opt.CoOccurrenceThreshold = 1.5
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("bad threshold accepted")
	}
	opt = fastOptions(1)
	opt.Prior.Alpha0 = -1
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("bad prior accepted")
	}
	// A non-nil empty candidate list means "no parents allowed" by mistake,
	// not "default to all variables" — reject it instead of learning a
	// parentless forest.
	opt = fastOptions(1)
	opt.Module.Splits.Candidates = []int{}
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("non-nil empty candidate list accepted")
	}
	tiny := dataset.New(1, 1)
	if _, err := Learn(tiny, fastOptions(1)); err == nil {
		t.Fatal("1×1 data set accepted")
	}
}

func TestLearnDoesNotMutateInput(t *testing.T) {
	d, _ := testData(t, 20, 16, 7)
	before := append([]float64(nil), d.Values...)
	if _, err := Learn(d, fastOptions(13)); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if d.Values[i] != before[i] {
			t.Fatal("input data mutated")
		}
	}
}

func TestMultipleGaneshRuns(t *testing.T) {
	d, _ := testData(t, 24, 20, 8)
	opt := fastOptions(15)
	opt.GaneshRuns = 3
	out, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	// With a threshold below 1/G, consensus still forms modules.
	if len(out.Network.Modules) == 0 {
		t.Fatal("no modules from multi-run ensemble")
	}
}

// TestModuleRecovery: the full pipeline must group true module members
// together far better than chance (measured by ARI over member genes).
func TestModuleRecovery(t *testing.T) {
	d, truth, err := synth.Generate(synth.Config{
		N: 40, M: 50, Regulators: 4, Modules: 3, Noise: 0.2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions(17)
	opt.Ganesh.Updates = 3
	out, errLearn := Learn(d, opt)
	if errLearn != nil {
		t.Fatal(errLearn)
	}
	learned := out.Network.ModuleOf()
	// ARI excludes items labeled -1 on either side (regulators in the
	// truth, unassigned variables in the learned network).
	ari := result.AdjustedRandIndex(truth.ModuleOf, learned)
	if ari < 0.3 {
		t.Fatalf("module recovery ARI %.3f below 0.3", ari)
	}
}

func TestDefaultOptionsMatchPaperMinimumConfig(t *testing.T) {
	opt := DefaultOptions()
	if opt.GaneshRuns != 1 {
		t.Fatal("paper's minimum config uses a single GaneSH run")
	}
	if opt.Ganesh.Updates != 1 {
		t.Fatal("paper's minimum config uses one update step")
	}
	if got := opt.Module.Tree.Updates - opt.Module.Tree.Burnin; got != 1 {
		t.Fatalf("paper's minimum config builds one tree per module, got %d", got)
	}
	if opt.Module.Splits.Candidates != nil {
		t.Fatal("default candidate set must be all variables")
	}
}

func TestGaneshTaskSubordinateToModules(t *testing.T) {
	// §5.3.1: the module-learning task dominates. Check on the recorded
	// workload (costs, not wall time, for robustness).
	d, _ := testData(t, 30, 30, 10)
	opt := fastOptions(19)
	opt.RecordWork = true
	out, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	assign := out.Workload.Phase(splits.PhaseAssign).TotalCost()
	var ganeshCost float64
	for _, name := range []string{ganesh.PhaseVarReassign, ganesh.PhaseVarMerge} {
		if ph := out.Workload.Phase(name); ph != nil {
			ganeshCost += ph.TotalCost()
		}
	}
	if assign <= ganeshCost {
		t.Fatalf("split assignment (%.0f) does not dominate GaneSH (%.0f)", assign, ganeshCost)
	}
}

func BenchmarkLearnSequential(b *testing.B) {
	d, _ := testData(b, 40, 40, 1)
	opt := fastOptions(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLearnParallelP4(b *testing.B) {
	d, _ := testData(b, 40, 40, 1)
	opt := fastOptions(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LearnParallel(4, d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPInvarianceDynamicSplits: the dynamic split distribution (the paper's
// §6 future work) must also reproduce the sequential network exactly.
func TestPInvarianceDynamicSplits(t *testing.T) {
	d, _ := testData(t, 24, 20, 11)
	opt := fastOptions(21)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Module.Splits.DynamicChunk = 16
	for _, p := range []int{2, 5} {
		got, err := LearnParallel(p, d, opt)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !result.Equal(got.Network, want.Network) {
			t.Fatalf("p=%d: dynamic-splits network differs from sequential", p)
		}
	}
}

// TestPInvarianceGaneshGroups: executing the G GaneSH runs on disjoint rank
// groups (§3.2.1) must still learn exactly the sequential network.
func TestPInvarianceGaneshGroups(t *testing.T) {
	d, _ := testData(t, 24, 20, 12)
	opt := fastOptions(23)
	opt.GaneshRuns = 4
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ p, groups int }{
		{2, 2}, {4, 2}, {4, 4}, {5, 3}, {3, 8}, // groups > p clamps
	} {
		opt.GaneshGroups = tc.groups
		got, err := LearnParallel(tc.p, d, opt)
		if err != nil {
			t.Fatalf("p=%d groups=%d: %v", tc.p, tc.groups, err)
		}
		if !result.Equal(got.Network, want.Network) {
			t.Fatalf("p=%d groups=%d: network differs from sequential", tc.p, tc.groups)
		}
	}
}

// TestPInvarianceScanSelection: the paper's segmented-scan selection wired
// through the full pipeline must also reproduce the sequential network.
func TestPInvarianceScanSelection(t *testing.T) {
	d, _ := testData(t, 24, 20, 13)
	opt := fastOptions(25)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Module.Splits.ScanSelection = true
	for _, p := range []int{2, 4} {
		got, err := LearnParallel(p, d, opt)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !result.Equal(got.Network, want.Network) {
			t.Fatalf("p=%d: scan-selection network differs from sequential", p)
		}
	}
}

func TestLearnRejectsOverflowSizedData(t *testing.T) {
	// A data set whose cell count exceeds the exact-statistics capacity
	// must be rejected up front, not corrupt Σx² silently.
	d := &dataset.Data{N: 1 << 13, M: 1 << 13} // 2^26 cells > 2^25
	d.Names = make([]string, d.N)
	d.Values = make([]float64, d.N*d.M)
	if _, err := Learn(d, fastOptions(1)); err == nil {
		t.Fatal("oversized data set accepted")
	}
}

// TestCheckpointResume: interrupting after any task boundary and resuming
// from the checkpoints must learn exactly the uninterrupted network, and
// must skip the completed tasks.
func TestCheckpointResume(t *testing.T) {
	d, _ := testData(t, 24, 20, 14)
	opt := fastOptions(27)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt.CheckpointDir = dir
	first, err := Learn(d, opt) // writes both checkpoints
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(first.Network, want.Network) {
		t.Fatal("checkpointing changed the result")
	}
	resumed, err := Learn(d, opt) // resumes from the modules checkpoint
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(resumed.Network, want.Network) {
		t.Fatal("resumed network differs")
	}
	if resumed.Timers.Get(TaskGaneSH) != 0 || resumed.Timers.Get(TaskConsensus) != 0 {
		t.Fatal("resume did not skip completed tasks")
	}
}

func TestCheckpointPartialResume(t *testing.T) {
	d, _ := testData(t, 24, 20, 15)
	opt := fastOptions(29)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt.CheckpointDir = dir
	if _, err := Learn(d, opt); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between task 1 and task 2: keep only the GaneSH
	// checkpoint.
	if err := os.Remove(filepath.Join(dir, "modules.json")); err != nil {
		t.Fatal(err)
	}
	resumed, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(resumed.Network, want.Network) {
		t.Fatal("partial resume differs")
	}
	if resumed.Timers.Get(TaskGaneSH) != 0 {
		t.Fatal("partial resume re-ran GaneSH")
	}
}

func TestCheckpointConfigMismatchRejected(t *testing.T) {
	d, _ := testData(t, 24, 20, 16)
	opt := fastOptions(31)
	dir := t.TempDir()
	opt.CheckpointDir = dir
	if _, err := Learn(d, opt); err != nil {
		t.Fatal(err)
	}
	opt.Seed = 999 // different run must not silently reuse the checkpoint
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

// TestCheckpointLeftoverTmpIgnored: a stale .tmp file from a crashed save
// must neither break the run nor leak into the resumed state.
func TestCheckpointLeftoverTmpIgnored(t *testing.T) {
	d, _ := testData(t, 24, 20, 18)
	opt := fastOptions(35)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt.CheckpointDir = dir
	if err := os.WriteFile(filepath.Join(dir, "ensembles.json.tmp"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Learn(d, opt); err != nil {
		t.Fatalf("leftover .tmp broke the run: %v", err)
	}
	resumed, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(resumed.Network, want.Network) {
		t.Fatal("resume after leftover .tmp differs")
	}
}

// TestCheckpointCorruptRejected: a truncated/corrupt checkpoint must fail
// loudly instead of resuming from garbage.
func TestCheckpointCorruptRejected(t *testing.T) {
	d, _ := testData(t, 24, 20, 19)
	opt := fastOptions(37)
	dir := t.TempDir()
	opt.CheckpointDir = dir
	if err := os.WriteFile(filepath.Join(dir, "ensembles.json"), []byte(`{"seed":37,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestCheckpointGaneshRunsMismatchRejected: changing G invalidates both the
// ensembles and the consensus modules derived from them.
func TestCheckpointGaneshRunsMismatchRejected(t *testing.T) {
	d, _ := testData(t, 24, 20, 20)
	opt := fastOptions(39)
	dir := t.TempDir()
	opt.CheckpointDir = dir
	if _, err := Learn(d, opt); err != nil {
		t.Fatal(err)
	}
	opt.GaneshRuns = 2
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("GaneshRuns-mismatched checkpoint accepted")
	}
	// Also with only the ensembles checkpoint present.
	if err := os.Remove(filepath.Join(dir, "modules.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("GaneshRuns-mismatched ensembles checkpoint accepted")
	}
}

// TestCheckpointCreatesDir: a nested CheckpointDir that does not exist yet
// must be created by the first save.
func TestCheckpointCreatesDir(t *testing.T) {
	d, _ := testData(t, 24, 20, 21)
	opt := fastOptions(41)
	dir := filepath.Join(t.TempDir(), "nested", "ckpt")
	opt.CheckpointDir = dir
	if _, err := Learn(d, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "modules.json")); err != nil {
		t.Fatal("checkpoint not written into created directory")
	}
}

func TestWorkersValidation(t *testing.T) {
	d, _ := testData(t, 20, 16, 22)
	opt := fastOptions(1)
	opt.Workers = -1
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

func TestCheckpointParallelWritesAndResumes(t *testing.T) {
	d, _ := testData(t, 24, 20, 17)
	opt := fastOptions(33)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt.CheckpointDir = dir
	if _, err := LearnParallel(3, d, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ensembles.json")); err != nil {
		t.Fatal("parallel run did not write checkpoints")
	}
	// Sequential resume from the parallel run's checkpoints: identical.
	resumed, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(resumed.Network, want.Network) {
		t.Fatal("cross-engine resume differs")
	}
}
