package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsimone/internal/comm"
	"parsimone/internal/dataset"
	"parsimone/internal/result"
	"parsimone/internal/wire"
)

// recoveryFixture is shared by the recovery tests: a data set whose consensus
// produces at least three modules (so the module failpoints 0, mid, last are
// distinct), plus the uninterrupted reference network.
func recoveryFixture(t *testing.T) (*dataset.Data, Options, *Output) {
	t.Helper()
	d, _ := testData(t, 48, 24, 2)
	opt := fastOptions(3)
	want, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if nm := len(want.Network.Modules); nm < 3 {
		t.Fatalf("fixture produced %d modules, need ≥ 3 for distinct module failpoints", nm)
	}
	return d, opt, want
}

// TestFailpointRecoveryBitIdentical is the acceptance property of the
// fault-tolerance layer: a rank killed at each task boundary and at three
// module-learning crash points, followed by an automatic supervised restart
// from checkpoints, yields a network bit-identical to the uninterrupted run
// for p ∈ {1, 2, 4} — under both the v2 JSON and the v3 binary checkpoint
// formats, and with the batched split scorer disabled (the reference was
// learned batched, so the nobatch rows also prove A/B bit-identity through
// a crash and restart).
func TestFailpointRecoveryBitIdentical(t *testing.T) {
	d, opt, want := recoveryFixture(t)
	nm := len(want.Network.Modules)
	failpoints := []string{
		TaskGaneSH,
		TaskConsensus,
		"module:0",
		fmt.Sprintf("module:%d", nm/2),
		fmt.Sprintf("module:%d", nm-1),
	}
	for _, format := range []struct {
		name     string
		binary   bool
		batchOff bool
	}{{"json", false, false}, {"binary", true, false}, {"json_nobatch", false, true}} {
		for _, p := range []int{1, 2, 4} {
			for _, fp := range failpoints {
				t.Run(fmt.Sprintf("%s_p%d_%s", format.name, p, fp), func(t *testing.T) {
					injected := opt
					injected.CheckpointDir = t.TempDir()
					injected.BinaryCheckpoints = format.binary
					injected.Module.Splits.DisableBatch = format.batchOff
					injected.MaxRestarts = 1
					injected.Inject = &FaultSpec{Task: fp, Rank: 0}
					got, err := LearnParallel(p, d, injected)
					if err != nil {
						t.Fatalf("recovery failed: %v", err)
					}
					if !result.Equal(got.Network, want.Network) {
						t.Fatal("recovered network differs from the uninterrupted run")
					}
					if len(got.Recovery) != 1 {
						t.Fatalf("recorded %d recovery events, want 1", len(got.Recovery))
					}
					ev := got.Recovery[0]
					if ev.Rank != 0 || !ev.Panicked || !strings.Contains(ev.Err, fp) {
						t.Fatalf("recovery event %+v does not describe the injected failpoint %q", ev, fp)
					}
				})
			}
		}
	}
}

// TestFailpointRecoveryNonWriterRank: the crashing rank need not be the
// checkpoint writer — killing the last rank mid-module-learning recovers the
// same network from rank 0's manifests.
func TestFailpointRecoveryNonWriterRank(t *testing.T) {
	d, opt, want := recoveryFixture(t)
	const p = 4
	injected := opt
	injected.CheckpointDir = t.TempDir()
	injected.MaxRestarts = 1
	injected.Inject = &FaultSpec{Task: "module:1", Rank: p - 1}
	got, err := LearnParallel(p, d, injected)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("recovered network differs from the uninterrupted run")
	}
	if len(got.Recovery) != 1 || got.Recovery[0].Rank != p-1 {
		t.Fatalf("recovery events %+v, want one event from rank %d", got.Recovery, p-1)
	}
}

// TestCommFaultRecoveryBitIdentical kills a rank at arbitrary communication
// operations — a quarter, half, and three quarters through its op sequence,
// probed from a clean run — and checks the supervised restart still converges
// on the identical network.
func TestCommFaultRecoveryBitIdentical(t *testing.T) {
	d, opt, want := recoveryFixture(t)
	for _, p := range []int{2, 4} {
		victim := p - 1
		probe, err := comm.Run(p, func(c *comm.Comm) error {
			_, err := LearnWithComm(c, d, opt)
			return err
		})
		if err != nil {
			t.Fatalf("p=%d probe: %v", p, err)
		}
		maxOp := probe[victim].Ops
		if maxOp < 4 {
			t.Fatalf("p=%d: probe counted only %d ops on rank %d", p, maxOp, victim)
		}
		for _, op := range []int64{maxOp / 4, maxOp / 2, 3 * maxOp / 4} {
			t.Run(fmt.Sprintf("p%d_op%d", p, op), func(t *testing.T) {
				injected := opt
				injected.CheckpointDir = t.TempDir()
				injected.MaxRestarts = 1
				injected.Inject = &FaultSpec{Comm: []comm.Fault{
					{Rank: victim, Op: op, Kind: comm.FaultCrash},
				}}
				got, err := LearnParallel(p, d, injected)
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				if !result.Equal(got.Network, want.Network) {
					t.Fatal("recovered network differs from the uninterrupted run")
				}
				if len(got.Recovery) != 1 || got.Recovery[0].Rank != victim {
					t.Fatalf("recovery events %+v, want one crash on rank %d", got.Recovery, victim)
				}
			})
		}
	}
}

// TestRecoveryWithoutCheckpoints: restart-from-scratch (no CheckpointDir) is
// slower but must still reach the identical network — determinism, not
// persisted state, is what recovery relies on.
func TestRecoveryWithoutCheckpoints(t *testing.T) {
	d, opt, want := recoveryFixture(t)
	injected := opt
	injected.MaxRestarts = 1
	injected.Inject = &FaultSpec{Task: "module:0", Rank: 0}
	got, err := LearnParallel(2, d, injected)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("recovered network differs from the uninterrupted run")
	}
	if len(got.Recovery) != 1 {
		t.Fatalf("recorded %d recovery events, want 1", len(got.Recovery))
	}
}

// TestMaxRestartsExhausted: with recovery disabled the injected crash is the
// caller's error, identifiable as injected through the RankError chain.
func TestMaxRestartsExhausted(t *testing.T) {
	d, opt, _ := recoveryFixture(t)
	injected := opt
	injected.Inject = &FaultSpec{Task: TaskGaneSH, Rank: 0} // MaxRestarts = 0
	_, err := LearnParallel(2, d, injected)
	if err == nil {
		t.Fatal("crash with MaxRestarts=0 returned no error")
	}
	if !errors.Is(err, comm.ErrInjected) {
		t.Fatalf("error %v does not unwrap to ErrInjected", err)
	}
}

// TestSequentialRejectsInject: fault injection is a property of the
// supervised parallel driver, so the sequential engine refuses it instead of
// silently ignoring the spec.
func TestSequentialRejectsInject(t *testing.T) {
	d, _ := testData(t, 20, 16, 1)
	opt := fastOptions(3)
	opt.Inject = &FaultSpec{Task: TaskGaneSH}
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("sequential Learn accepted Inject")
	}
}

// TestCrossEngineManifestResume: a parallel run killed mid-module-learning
// with recovery disabled leaves its manifests behind; a later *sequential*
// run pointed at the same directory must resume from them — including the
// per-module progress manifest — and learn the identical network. This is
// the CLI's kill → rerun story.
func TestCrossEngineManifestResume(t *testing.T) {
	d, opt, want := recoveryFixture(t)
	nm := len(want.Network.Modules)
	dir := t.TempDir()
	injected := opt
	injected.CheckpointDir = dir
	injected.Inject = &FaultSpec{Task: fmt.Sprintf("module:%d", nm-1), Rank: 0}
	if _, err := LearnParallel(2, d, injected); err == nil {
		t.Fatal("injected crash with MaxRestarts=0 returned no error")
	}
	// The crash happened after nm-1 modules completed, so the progress
	// manifest must exist and be non-trivial.
	if fi, err := os.Stat(filepath.Join(dir, ckptProgress)); err != nil || fi.Size() == 0 {
		t.Fatalf("no progress manifest left behind: %v", err)
	}
	resumed := opt
	resumed.CheckpointDir = dir
	got, err := Learn(d, resumed)
	if err != nil {
		t.Fatalf("sequential resume failed: %v", err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("resumed network differs from the uninterrupted run")
	}
}

// TestCheckpointVersionRejected: checkpoint files from another format version
// are rejected with an error naming both versions, and a pre-versioning file
// — where the version field is simply absent — is reported as exactly that,
// not as the misleading "format v0".
func TestCheckpointVersionRejected(t *testing.T) {
	d, opt, _ := recoveryFixture(t)
	t.Run("ensembles_missing_version", func(t *testing.T) {
		dir := t.TempDir()
		pre := fmt.Sprintf(`{"seed":%d,"ganeshRuns":%d,"n":%d,"ensembles":[]}`, opt.Seed, opt.GaneshRuns, d.N)
		if err := os.WriteFile(filepath.Join(dir, ckptEnsembles), []byte(pre), 0o644); err != nil {
			t.Fatal(err)
		}
		resumed := opt
		resumed.CheckpointDir = dir
		_, err := Learn(d, resumed)
		if err == nil || !strings.Contains(err.Error(), "no version field (pre-versioning format), expected v2") {
			t.Fatalf("got %v, want a pre-versioning rejection", err)
		}
		if err != nil && strings.Contains(err.Error(), "format v0") {
			t.Fatalf("missing version misreported as an explicit v0: %v", err)
		}
	})
	t.Run("ensembles_explicit_v0", func(t *testing.T) {
		dir := t.TempDir()
		v0 := fmt.Sprintf(`{"version":0,"seed":%d,"ganeshRuns":%d,"n":%d,"ensembles":[]}`, opt.Seed, opt.GaneshRuns, d.N)
		if err := os.WriteFile(filepath.Join(dir, ckptEnsembles), []byte(v0), 0o644); err != nil {
			t.Fatal(err)
		}
		resumed := opt
		resumed.CheckpointDir = dir
		_, err := Learn(d, resumed)
		if err == nil || !strings.Contains(err.Error(), "format v0, expected v2") {
			t.Fatalf("got %v, want a version-mismatch rejection", err)
		}
	})
	t.Run("progress_v1", func(t *testing.T) {
		dir := t.TempDir()
		v1 := fmt.Sprintf(`{"version":1,"seed":%d,"ganeshRuns":%d,"n":%d,"units":[]}`, opt.Seed, opt.GaneshRuns, d.N)
		if err := os.WriteFile(filepath.Join(dir, ckptProgress), []byte(v1), 0o644); err != nil {
			t.Fatal(err)
		}
		resumed := opt
		resumed.CheckpointDir = dir
		_, err := Learn(d, resumed)
		if err == nil || !strings.Contains(err.Error(), "format v1, expected v2") {
			t.Fatalf("got %v, want a version-mismatch rejection", err)
		}
	})
	t.Run("binary_future_version", func(t *testing.T) {
		dir := t.TempDir()
		ck := ensemblesCheckpoint{Seed: opt.Seed, GaneshRuns: opt.GaneshRuns, N: d.N}
		data := wire.EncodeFile(ck.wireHeader(), ck.encodeSections())
		data[4]++ // bump the wire version byte right after the magic
		if err := os.WriteFile(filepath.Join(dir, ckptEnsembles), data, 0o644); err != nil {
			t.Fatal(err)
		}
		resumed := opt
		resumed.CheckpointDir = dir
		_, err := Learn(d, resumed)
		if err == nil || !strings.Contains(err.Error(), "format v2, this build expects v1") {
			t.Fatalf("got %v, want a wire version-mismatch rejection", err)
		}
	})
}

// TestProgressManifestForeignRejected: a manifest whose units disagree with
// the consensus modules (here: a stale unit for an out-of-range module) is an
// error, never a silent partial resume.
func TestProgressManifestForeignRejected(t *testing.T) {
	d, opt, _ := recoveryFixture(t)
	dir := t.TempDir()
	foreign := fmt.Sprintf(`{"version":2,"seed":%d,"ganeshRuns":%d,"n":%d,"units":[{"module":999,"vars":[0]}]}`,
		opt.Seed, opt.GaneshRuns, d.N)
	if err := os.WriteFile(filepath.Join(dir, ckptProgress), []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := opt
	resumed.CheckpointDir = dir
	if _, err := Learn(d, resumed); err == nil || !strings.Contains(err.Error(), "module 999") {
		t.Fatalf("got %v, want a foreign-manifest rejection", err)
	}
}

// TestInjectValidation: malformed fault specs are rejected up front.
func TestInjectValidation(t *testing.T) {
	d, _ := testData(t, 20, 16, 1)
	for _, task := range []string{"modules", "module:", "module:-1", "module:x", "nonsense"} {
		opt := fastOptions(3)
		opt.Inject = &FaultSpec{Task: task}
		if _, err := LearnParallel(2, d, opt); err == nil {
			t.Errorf("Inject.Task %q accepted, want validation error", task)
		}
	}
	opt := fastOptions(3)
	opt.Inject = &FaultSpec{Task: TaskGaneSH, Rank: -1}
	if _, err := LearnParallel(2, d, opt); err == nil {
		t.Error("negative Inject.Rank accepted")
	}
	opt = fastOptions(3)
	opt.MaxRestarts = -1
	if _, err := LearnParallel(2, d, opt); err == nil {
		t.Error("negative MaxRestarts accepted")
	}
}
