// Cooperative cancellation and deadline propagation (DESIGN §13). A run
// accepts a context.Context through Options.Ctx; every engine layer polls a
// per-rank comm.Canceler at its deterministic iteration boundaries (GaneSH
// update steps, consensus peeling rounds, module-unit edges, task
// boundaries). Checks never consume PRNG draws and never reorder
// collectives, so cancellation is result-invisible until it fires — and a
// cancelled-then-resumed run is bit-identical to an uninterrupted one, the
// same guarantee the crash-recovery matrix proves for failures.
//
// On fire, the polling rank panics; the panic rides the existing comm
// abort-propagation path (every blocked rank releases with ErrAborted), the
// durable checkpoints written so far are the resume state, and the driver
// returns a *CancelledError wrapping ErrCancelled or ErrDeadline.

package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"parsimone/internal/comm"
)

// ErrCancelled is wrapped by every failure caused by Options.Ctx being
// cancelled (and by injected cancellations); ErrDeadline by failures caused
// by the context's deadline expiring. Both unwrap from the *CancelledError
// the drivers return.
var (
	ErrCancelled = errors.New("core: run cancelled")
	ErrDeadline  = errors.New("core: run deadline exceeded")
)

// CancelledError reports a run stopped by cooperative cancellation. The run
// drained cleanly: every checkpoint listed was written durably (fsync +
// atomic rename) before the error was returned, and re-running the same
// configuration against CheckpointDir resumes from them to the bit-identical
// network an uninterrupted run would have learned.
type CancelledError struct {
	// Cause is ErrCancelled or ErrDeadline.
	Cause error
	// CheckpointDir is Options.CheckpointDir ("" when the run was not
	// checkpointing — resumption then recomputes from scratch).
	CheckpointDir string
	// Checkpoints lists the durable checkpoint files present in
	// CheckpointDir at cancellation time, the inputs of a resume.
	Checkpoints []string
}

// Error names the cause and the resumable state left behind.
func (e *CancelledError) Error() string {
	if e.CheckpointDir == "" {
		return fmt.Sprintf("%v (no checkpoint directory; resume recomputes from scratch)", e.Cause)
	}
	if len(e.Checkpoints) == 0 {
		return fmt.Sprintf("%v (checkpoint directory %s is empty; resume recomputes from scratch)", e.Cause, e.CheckpointDir)
	}
	return fmt.Sprintf("%v (drained to checkpoint %s: %s)", e.Cause, e.CheckpointDir, strings.Join(e.Checkpoints, ", "))
}

// Unwrap exposes the cause for errors.Is(err, ErrCancelled/ErrDeadline).
func (e *CancelledError) Unwrap() error { return e.Cause }

// cancelReason maps the context's terminal state to the package sentinel,
// evaluated at fire time so a deadline expiry is distinguishable from an
// explicit cancel. With no context (or an injected cancellation, where the
// context is still live) it reports ErrCancelled.
func cancelReason(ctx context.Context) func() error {
	return func() error {
		if ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrDeadline
		}
		return ErrCancelled
	}
}

// newCanceler builds one rank's Canceler from the run options: the signal
// is Options.Ctx's done channel (nil context → counting-only), and an
// Inject.CancelAt targeting this rank arms the deterministic test
// injection. Every engine creates one even without a context, so
// Output.CancelChecks is always a meaningful probe.
func newCanceler(opt Options, rank int) *comm.Canceler {
	var done <-chan struct{}
	var ctx context.Context
	if opt.Ctx != nil {
		ctx = opt.Ctx
		done = ctx.Done()
	}
	cl := comm.NewCanceler(done, cancelReason(ctx))
	if opt.Inject != nil && opt.Inject.CancelAt > 0 && opt.Inject.Rank == rank {
		cl.InjectAt(opt.Inject.CancelAt)
	}
	return cl
}

// isCancel reports whether err carries a cancellation sentinel.
func isCancel(err error) bool {
	return errors.Is(err, ErrCancelled) || errors.Is(err, ErrDeadline)
}

// cancelledError distills a cancellation failure into the *CancelledError
// the drivers return, recording the durable checkpoints left behind.
func cancelledError(err error, opt Options) *CancelledError {
	cause := ErrCancelled
	if errors.Is(err, ErrDeadline) {
		cause = ErrDeadline
	}
	ce := &CancelledError{Cause: cause, CheckpointDir: opt.CheckpointDir}
	if opt.CheckpointDir != "" {
		for _, name := range []string{ckptEnsembles, ckptModules, ckptProgress} {
			if _, err := os.Stat(filepath.Join(opt.CheckpointDir, name)); err == nil {
				ce.Checkpoints = append(ce.Checkpoints, name)
			}
		}
	}
	return ce
}

// catchCancel converts a cancellation panic escaping the sequential engine
// into the documented error return; any other panic is re-raised. (The
// parallel engine needs no equivalent: a rank's cancellation panic is
// recovered by comm.RunWithFaults into a RankError, which LearnParallel
// distills with cancelledError.)
func catchCancel(opt Options, out **Output, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	err, ok := r.(error)
	if !ok || !isCancel(err) {
		panic(r)
	}
	*out = nil
	*errp = cancelledError(err, opt)
}

// sweepTempCheckpoints removes orphaned checkpoint temp files — the
// leftovers of an atomic rename interrupted between write and rename. They
// are never read (loads open only the final names, and saveCheckpoint
// truncates its temp file before writing), so the sweep is pure hygiene:
// without it a killed run leaves a *.tmp in the directory forever. Called
// at resume time by the checkpoint-writing rank only, before any load, so
// it cannot race a writer.
func sweepTempCheckpoints(dir string) error {
	for _, name := range []string{ckptEnsembles, ckptModules, ckptProgress} {
		if err := os.Remove(filepath.Join(dir, name+".tmp")); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("core: sweeping stale checkpoint temp file: %w", err)
		}
	}
	return nil
}
