package comm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// chatter is a small fixed communication program: every rank's op sequence
// is a pure function of (p, rank), which is what fault addressing relies on.
func chatter(c *Comm) error {
	for i := 0; i < 3; i++ {
		sum := AllReduce(c, c.Rank()+1, func(a, b int) int { return a + b })
		want := c.Size() * (c.Size() + 1) / 2
		if sum != want {
			return fmt.Errorf("round %d: sum %d, want %d", i, sum, want)
		}
		Barrier(c)
	}
	return nil
}

func TestFaultCrashDeterministic(t *testing.T) {
	faults := []Fault{{Rank: 2, Op: 5, Kind: FaultCrash}}
	var first *RankError
	for trial := 0; trial < 3; trial++ {
		_, err := RunWithFaults(4, faults, chatter)
		var re *RankError
		if !errors.As(err, &re) {
			t.Fatalf("trial %d: got %v, want RankError", trial, err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("trial %d: error %v does not wrap ErrInjected", trial, err)
		}
		if re.Rank != 2 {
			t.Fatalf("trial %d: crash reported from rank %d, want 2", trial, re.Rank)
		}
		if first == nil {
			first = re
			continue
		}
		if re.Err.Error() != first.Err.Error() {
			t.Fatalf("trial %d: error %q differs from first trial %q",
				trial, re.Err, first.Err)
		}
	}
	if !strings.Contains(first.Err.Error(), "op 5") {
		t.Fatalf("crash error %q does not name the op index", first.Err)
	}
}

// TestFaultCrashEveryOp proves every op index of a fixed program is an
// addressable crash site: whatever op the fault names, the run fails with
// ErrInjected from that rank at that op, and the originating failure is
// reported in preference to the cascaded aborts.
func TestFaultCrashEveryOp(t *testing.T) {
	const p, victim = 4, 1
	stats, err := Run(p, chatter)
	if err != nil {
		t.Fatal(err)
	}
	maxOp := stats[victim].Ops
	if maxOp < 6 {
		t.Fatalf("probe run made only %d ops on rank %d; program too small", maxOp, victim)
	}
	for op := int64(1); op <= maxOp; op++ {
		_, err := RunWithFaults(p, []Fault{{Rank: victim, Op: op, Kind: FaultCrash}}, chatter)
		var re *RankError
		if !errors.As(err, &re) || !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: got %v, want injected RankError", op, err)
		}
		if re.Rank != victim {
			t.Fatalf("op %d: reported rank %d, want %d", op, re.Rank, victim)
		}
		if want := fmt.Sprintf("op %d", op); !strings.Contains(re.Err.Error(), want) {
			t.Fatalf("op %d: error %q does not mention %q", op, re.Err, want)
		}
	}
}

func TestFaultDelayPreservesResults(t *testing.T) {
	run := func(faults []Fault) ([]Stats, error) {
		return RunWithFaults(4, faults, chatter)
	}
	clean, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := run([]Fault{
		{Rank: 0, Op: 2, Kind: FaultDelay, Delay: 5 * time.Millisecond},
		{Rank: 3, Op: 7, Kind: FaultDelay, Delay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	for k := range clean {
		if clean[k] != delayed[k] {
			t.Fatalf("rank %d stats changed under delay: %+v vs %+v", k, clean[k], delayed[k])
		}
	}
}

// TestFaultDelayReleasedByAbort: a rank stalled in an injected delay must be
// released when another rank fails — otherwise a crashed world would hang for
// the remainder of the stall. The hour-long delay makes a missed release a
// test timeout rather than a silent pass.
func TestFaultDelayReleasedByAbort(t *testing.T) {
	boom := errors.New("boom")
	faults := []Fault{{Rank: 0, Op: 1, Kind: FaultDelay, Delay: time.Hour}}
	_, err := RunWithFaults(2, faults, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		Barrier(c) // rank 0 stalls at op 1 of this barrier
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the originating boom error", err)
	}
}

func TestFaultDropRetryDeliversAndCounts(t *testing.T) {
	faults := []Fault{{Rank: 0, Op: 1, Kind: FaultDropRetry, Delay: time.Millisecond}}
	stats, err := RunWithFaults(2, faults, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 42)
			return nil
		}
		if got := Recv[int](c, 0); got != 42 {
			return fmt.Errorf("received %d, want 42", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Retries != 1 {
		t.Fatalf("rank 0 counted %d retries, want 1", stats[0].Retries)
	}
	if stats[1].Retries != 0 {
		t.Fatalf("rank 1 counted %d retries, want 0", stats[1].Retries)
	}
}

func TestPlanFaultDeterministicAndInRange(t *testing.T) {
	const p, maxOp = 5, 37
	for seed := uint64(0); seed < 200; seed++ {
		f := PlanFault(seed, p, maxOp)
		if g := PlanFault(seed, p, maxOp); g != f {
			t.Fatalf("seed %d: PlanFault not deterministic: %v vs %v", seed, f, g)
		}
		if f.Rank < 0 || f.Rank >= p {
			t.Fatalf("seed %d: rank %d outside [0,%d)", seed, f.Rank, p)
		}
		if f.Op < 1 || f.Op > maxOp {
			t.Fatalf("seed %d: op %d outside [1,%d]", seed, f.Op, maxOp)
		}
		if crash := PlanFault(seed, p, maxOp, FaultCrash); crash.Kind != FaultCrash {
			t.Fatalf("seed %d: restricted kind ignored, got %v", seed, crash.Kind)
		}
	}
}

func TestRecvAnyTimeout(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Phase 1: nothing in flight — the deadline must fire.
			if from, v, ok := RecvAnyTimeout[int](c, 20*time.Millisecond); ok || from != -1 || v != 0 {
				return fmt.Errorf("empty timeout returned (%d, %d, %v), want (-1, 0, false)", from, v, ok)
			}
			Barrier(c)
			// Phase 2: a message is coming — it must be delivered.
			from, v, ok := RecvAnyTimeout[int](c, 10*time.Second)
			if !ok || from != 1 || v != 42 {
				return fmt.Errorf("delivery returned (%d, %d, %v), want (1, 42, true)", from, v, ok)
			}
			// Phase 3: a stashed message of the wanted type is found without
			// waiting, even with a zero deadline.
			Send(c, 0, "stash")
			Send(c, 0, 7)
			if got := Recv[string](c, 0); got != "stash" {
				return fmt.Errorf("stash recv got %q", got)
			}
			if from, v, ok := RecvAnyTimeout[int](c, 0); !ok || from != 0 || v != 7 {
				return fmt.Errorf("pending scan returned (%d, %d, %v), want (0, 7, true)", from, v, ok)
			}
			return nil
		}
		Barrier(c)
		Send(c, 0, 42)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveAbortPropagation (one row per collective): when a rank dies
// instead of entering a collective, every rank blocked inside that collective
// must be released with ErrAborted, and the originating failure — not a
// cascaded abort — must be the error Run reports.
func TestCollectiveAbortPropagation(t *testing.T) {
	boom := errors.New("victim died before the collective")
	cases := []struct {
		name string
		op   func(c *Comm)
	}{
		{"Bcast", func(c *Comm) { Bcast(c, 0, c.Rank()) }},
		{"Gather", func(c *Comm) { Gather(c, 0, c.Rank()) }},
		{"AllReduce", func(c *Comm) { AllReduce(c, c.Rank(), func(a, b int) int { return a + b }) }},
		{"ExScan", func(c *Comm) { ExScan(c, 1, func(a, b int) int { return a + b }, 0) }},
		{"Barrier", func(c *Comm) { Barrier(c) }},
		{"Split", func(c *Comm) { Split(c, c.Rank()%2) }},
	}
	const p, victim = 4, 2
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			released := make([]error, p) // each rank writes only its own slot
			_, err := Run(p, func(c *Comm) error {
				if c.Rank() == victim {
					panic(boom)
				}
				defer func() {
					if r := recover(); r != nil {
						if e, ok := r.(error); ok {
							released[c.Rank()] = e
						}
						panic(r)
					}
				}()
				tc.op(c)
				return nil
			})
			var re *RankError
			if !errors.As(err, &re) || re.Rank != victim || !errors.Is(err, boom) {
				t.Fatalf("got %v, want the victim's RankError from rank %d", err, victim)
			}
			blocked := 0
			for k, e := range released {
				if e == nil {
					continue // this rank's part of the collective completed
				}
				blocked++
				if !errors.Is(e, ErrAborted) {
					t.Fatalf("rank %d released with %v, want ErrAborted", k, e)
				}
			}
			if blocked == 0 {
				t.Fatalf("no rank was blocked in %s; the test exercises nothing", tc.name)
			}
		})
	}
}
