package comm

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestCancelerNilSafe: the nil Canceler is a full no-op — checks pass,
// counts read zero, and Done blocks forever.
func TestCancelerNilSafe(t *testing.T) {
	var cl *Canceler
	cl.Check() // must not panic
	if cl.Checks() != 0 {
		t.Fatalf("nil Canceler counted %d checks", cl.Checks())
	}
	select {
	case <-cl.Done():
		t.Fatal("nil Canceler's Done channel is closed")
	default:
	}
}

// TestCancelerCounts: an unfired Canceler counts its checks and stays
// silent.
func TestCancelerCounts(t *testing.T) {
	cl := NewCanceler(nil, nil)
	for i := 0; i < 5; i++ {
		cl.Check()
	}
	if cl.Checks() != 5 {
		t.Fatalf("counted %d checks, want 5", cl.Checks())
	}
}

// TestCancelerInjectAt: the injected fire is exact — checks 1..n−1 pass,
// check n panics with the reason error.
func TestCancelerInjectAt(t *testing.T) {
	reason := errors.New("test: injected cancel")
	cl := NewCanceler(nil, func() error { return reason }).InjectAt(3)
	cl.Check()
	cl.Check()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("third check did not fire the injection")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, reason) {
			t.Fatalf("panic %v does not wrap the reason error", r)
		}
		if cl.Checks() != 3 {
			t.Fatalf("fired after %d checks, want 3", cl.Checks())
		}
	}()
	cl.Check()
}

// TestCancelerDoneFires: once the done channel closes, the next check
// panics with the reason evaluated at fire time.
func TestCancelerDoneFires(t *testing.T) {
	reason := errors.New("test: external cancel")
	done := make(chan struct{})
	cl := NewCanceler(done, func() error { return reason })
	cl.Check() // open channel: no fire
	close(done)
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, reason) {
			t.Fatalf("panic %v does not wrap the reason error", r)
		}
	}()
	cl.Check()
}

// TestRecvAnyCtxDelivers: with a live Canceler attached, RecvAnyCtx still
// delivers messages exactly like RecvAnyTimeout.
func TestRecvAnyCtxDelivers(t *testing.T) {
	cl := NewCanceler(make(chan struct{}), nil)
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			Send(c, 0, 42)
			return nil
		}
		from, v, ok := RecvAnyCtx[int](c, cl, time.Minute)
		if !ok || from != 1 || v != 42 {
			t.Errorf("RecvAnyCtx got %d/%d/%v, want 1/42/true", from, v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvAnyCtxTimesOut: the watchdog timeout still applies with a live
// (unfired) Canceler.
func TestRecvAnyCtxTimesOut(t *testing.T) {
	cl := NewCanceler(make(chan struct{}), nil)
	_, err := Run(1, func(c *Comm) error {
		from, v, ok := RecvAnyCtx[int](c, cl, 20*time.Millisecond)
		if ok || from != -1 || v != 0 {
			t.Errorf("RecvAnyCtx got %d/%d/%v, want -1/0/false", from, v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvAnyCtxCancelReleasesWait: a blocked receive is released the
// moment the cancel signal fires — even with no timeout configured (d ≤ 0,
// the unbounded coordinator wait) — and the rank aborts with the reason.
func TestRecvAnyCtxCancelReleasesWait(t *testing.T) {
	reason := errors.New("test: drain")
	done := make(chan struct{})
	cl := NewCanceler(done, func() error { return reason })
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			RecvAnyCtx[int](c, cl, 0) // no watchdog: only cancellation can release this
			t.Error("cancelled RecvAnyCtx returned instead of panicking")
		} else {
			Recv[int](c, 0) // blocked forever; released by the abort
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || !errors.Is(err, reason) {
		t.Fatalf("world error %v does not carry the cancellation reason from a rank", err)
	}
	if !strings.Contains(err.Error(), "wait cancelled") {
		t.Fatalf("error %q does not describe a cancelled wait", err)
	}
}
