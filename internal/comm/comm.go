// Package comm provides an MPI-like message-passing runtime for the
// networked distributed-memory model the paper's algorithms are designed for
// (§3.1). Ranks run as goroutines with private state and communicate only
// through point-to-point sends and the standard collectives used by the
// parallel algorithms: bcast, reduce, all-reduce, gather, all-gather, scan,
// and barrier.
//
// Collectives fold contributions in rank order, so reductions over
// floating-point or integer values are bitwise-independent of the number of
// in-flight interleavings, and the engines built on top produce identical
// results for every rank count.
//
// # Payload immutability
//
// Unlike real MPI, messages are passed by reference (the ranks share one
// address space). A value received from Recv or from any collective may be
// aliased by every other rank: treat received payloads as immutable, and
// copy before mutating (sorting a gathered slice in place, for example, is
// a data race).
package comm

import (
	"errors"
	"fmt"
	"reflect"
	"runtime/debug"
	"sync"
	"time"
)

// envelope is a single in-flight point-to-point message.
type envelope struct {
	from int
	v    any
}

// Stats counts traffic sent by one rank. Element counts approximate words:
// a scalar is one element, a slice contributes its length.
type Stats struct {
	Sends       int64 // point-to-point messages sent
	Elems       int64 // elements sent
	Collectives int64 // collective operations entered
	// Ops numbers every communication call this rank made (point-to-point
	// and collective entries, including those nested inside composite
	// collectives). For a fixed program and rank count the sequence is
	// deterministic, which is what makes Fault.Op a reproducible address.
	Ops int64
	// Retries counts messages retransmitted after an injected drop.
	Retries int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Sends += other.Sends
	s.Elems += other.Elems
	s.Collectives += other.Collectives
	s.Ops += other.Ops
	s.Retries += other.Retries
}

// World is the shared runtime for one parallel execution.
type World struct {
	size  int
	inbox []chan envelope
	// aborted is closed when any rank fails, releasing ranks blocked in
	// communication — the MPI job-abort semantic.
	aborted   chan struct{}
	abortOnce sync.Once
	// faults is the injection plan for this world (RunWithFaults). Empty in
	// production runs and in subworlds created by Split.
	faults []Fault
}

// abort releases every blocked rank.
func (w *World) abort() { w.abortOnce.Do(func() { close(w.aborted) }) }

// ErrAborted is the panic/err value raised in ranks that were blocked in
// communication when another rank failed.
var ErrAborted = errors.New("comm: world aborted because another rank failed")

// Comm is one rank's endpoint into a World. A Comm must only be used from
// the goroutine it was handed to.
type Comm struct {
	world   *World
	rank    int
	pending map[int][]any // messages received out of order, by sender
	stats   Stats
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Stats returns the traffic counters accumulated by this rank so far.
func (c *Comm) Stats() Stats { return c.stats }

// RankError reports a failure (error or panic) in a specific rank.
type RankError struct {
	Rank  int
	Err   error
	Stack string // non-empty if the rank panicked
}

// Error formats the failure with its rank and, for panics, the stack.
func (e *RankError) Error() string {
	if e.Stack != "" {
		return fmt.Sprintf("rank %d panicked: %v\n%s", e.Rank, e.Err, e.Stack)
	}
	return fmt.Sprintf("rank %d: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes fn on p ranks concurrently and blocks until all complete.
// It returns the per-rank traffic stats and the lowest-rank error, if any.
// A panic inside a rank is recovered and reported as a RankError.
func Run(p int, fn func(*Comm) error) ([]Stats, error) {
	return RunWithFaults(p, nil, fn)
}

// RunWithFaults is Run with a deterministic fault plan injected: each Fault
// fires when its target rank reaches the fault's op index (see Fault and
// Stats.Ops). Faults apply only to this top-level world — communicators
// created by Split inherit the abort channel but no faults, and number
// their ops independently.
func RunWithFaults(p int, faults []Fault, fn func(*Comm) error) ([]Stats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: rank count %d must be positive", p)
	}
	w := &World{size: p, inbox: make([]chan envelope, p), aborted: make(chan struct{}), faults: faults}
	for i := range w.inbox {
		// Buffer enough that tree exchanges never deadlock on slow
		// receivers; gathers may still block, which is fine.
		w.inbox[i] = make(chan envelope, p+8)
	}
	errs := make([]error, p)
	stats := make([]Stats, p)
	var wg sync.WaitGroup
	for k := 0; k < p; k++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{world: w, rank: rank, pending: make(map[int][]any)}
			defer func() {
				stats[rank] = c.stats
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, ErrAborted) {
						errs[rank] = &RankError{Rank: rank, Err: ErrAborted}
					} else {
						// Keep the panic value's error chain intact so
						// supervisors can errors.Is/As through the
						// RankError (ErrInjected, failpoint sentinels).
						err, ok := r.(error)
						if !ok {
							err = fmt.Errorf("%v", r)
						}
						errs[rank] = &RankError{
							Rank:  rank,
							Err:   err,
							Stack: string(debug.Stack()),
						}
					}
					w.abort()
				}
			}()
			if err := fn(c); err != nil {
				errs[rank] = &RankError{Rank: rank, Err: err}
				w.abort()
			}
		}(k)
	}
	wg.Wait()
	// Prefer the originating failure over cascaded aborts.
	var abortErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			if abortErr == nil {
				abortErr = err
			}
			continue
		}
		return stats, err
	}
	return stats, abortErr
}

// elems estimates the number of elements (words) in a payload.
func elems(v any) int64 {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array, reflect.String:
		return int64(rv.Len())
	default:
		return 1
	}
}

// Send delivers v to rank `to`. Sending to oneself is allowed and is received
// by a matching Recv.
func Send[T any](c *Comm, to int, v T) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("comm: send to invalid rank %d of %d", to, c.world.size))
	}
	c.tick()
	c.stats.Sends++
	c.stats.Elems += elems(v)
	select {
	case c.world.inbox[to] <- envelope{from: c.rank, v: v}:
	case <-c.world.aborted:
		panic(ErrAborted)
	}
}

// Recv blocks until a message from rank `from` arrives and returns it.
// Messages from other senders that arrive in the meantime are stashed and
// delivered to later Recv calls in arrival order.
func Recv[T any](c *Comm, from int) T {
	c.tick()
	if q := c.pending[from]; len(q) > 0 {
		v := q[0]
		c.pending[from] = q[1:]
		return v.(T)
	}
	for {
		var env envelope
		select {
		case env = <-c.world.inbox[c.rank]:
		case <-c.world.aborted:
			panic(ErrAborted)
		}
		if env.from == from {
			return env.v.(T)
		}
		c.pending[env.from] = append(c.pending[env.from], env.v)
	}
}

// Bcast distributes root's value to every rank along a binomial tree and
// returns it. The v argument is ignored on non-root ranks.
func Bcast[T any](c *Comm, root int, v T) T {
	c.tick()
	c.stats.Collectives++
	p := c.world.size
	vr := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := (vr - mask + root) % p
			v = Recv[T](c, parent)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			child := (vr + mask + root) % p
			Send(c, child, v)
		}
	}
	return v
}

// Gather collects one value from every rank at root, ordered by rank.
// Non-root ranks receive nil.
func Gather[T any](c *Comm, root int, v T) []T {
	c.tick()
	c.stats.Collectives++
	if c.rank != root {
		Send(c, root, v)
		return nil
	}
	out := make([]T, c.world.size)
	for k := 0; k < c.world.size; k++ {
		if k == root {
			out[k] = v
			continue
		}
		out[k] = Recv[T](c, k)
	}
	return out
}

// AllGather collects one value from every rank on every rank, ordered by
// rank.
func AllGather[T any](c *Comm, v T) []T {
	vs := Gather(c, 0, v)
	return Bcast(c, 0, vs)
}

// Reduce folds the per-rank values with op in ascending rank order and
// returns the result at root (the zero value of T elsewhere). Folding in
// rank order keeps floating-point reductions deterministic.
func Reduce[T any](c *Comm, root int, v T, op func(T, T) T) T {
	vs := Gather(c, root, v)
	if c.rank != root {
		var zero T
		return zero
	}
	acc := vs[0]
	for _, x := range vs[1:] {
		acc = op(acc, x)
	}
	return acc
}

// AllReduce folds the per-rank values with op in ascending rank order and
// returns the result on every rank.
func AllReduce[T any](c *Comm, v T, op func(T, T) T) T {
	return Bcast(c, 0, Reduce(c, 0, v, op))
}

// ExScan returns the exclusive prefix fold of the per-rank values in rank
// order: rank 0 receives id, rank k receives op(v₀, …, v_{k−1}).
func ExScan[T any](c *Comm, v T, op func(T, T) T, id T) T {
	vs := AllGather(c, v)
	acc := id
	for k := 0; k < c.rank; k++ {
		acc = op(acc, vs[k])
	}
	return acc
}

// Barrier blocks until all ranks have entered it.
func Barrier(c *Comm) {
	c.tick()
	c.stats.Collectives++
	token := Gather(c, 0, struct{}{})
	_ = token
	Bcast(c, 0, struct{}{})
}

// AllReduceSlice folds equal-length slices elementwise in rank order and
// returns the folded slice on every rank. It panics if lengths differ.
func AllReduceSlice[T any](c *Comm, v []T, op func(T, T) T) []T {
	parts := Gather(c, 0, v)
	var folded []T
	if c.rank == 0 {
		folded = make([]T, len(v))
		copy(folded, parts[0])
		for _, part := range parts[1:] {
			if len(part) != len(folded) {
				panic(fmt.Sprintf("comm: AllReduceSlice length mismatch %d != %d", len(part), len(folded)))
			}
			for i, x := range part {
				folded[i] = op(folded[i], x)
			}
		}
	}
	return Bcast(c, 0, folded)
}

// AllGatherv concatenates the per-rank slices in rank order on every rank.
func AllGatherv[T any](c *Comm, v []T) []T {
	parts := Gather(c, 0, v)
	var out []T
	if c.rank == 0 {
		for _, part := range parts {
			out = append(out, part...)
		}
	}
	return Bcast(c, 0, out)
}

// BlockRange returns the half-open index range [lo, hi) of block `rank` when
// n items are partitioned into `size` nearly equal contiguous blocks, with
// the first n mod size blocks one longer. It is the canonical partition used
// by every parallel phase, so work distribution and random-stream
// distribution always line up (§4.2).
func BlockRange(n, size, rank int) (lo, hi int) {
	base := n / size
	rem := n % size
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// BlockOwner returns the rank whose block contains item i under BlockRange
// partitioning of n items over size ranks.
func BlockOwner(n, size, i int) int {
	base := n / size
	rem := n % size
	wide := (base + 1) * rem // items covered by the wider blocks
	if base == 0 {
		return i
	}
	if i < wide {
		return i / (base + 1)
	}
	return rem + (i-wide)/base
}

// RecvAny blocks until a message whose payload is assignable to T arrives
// from any sender, and returns the sender's rank and the message. The
// payload type acts as a lightweight MPI tag: messages of other types are
// stashed for later typed Recv calls, so a coordinator matching requests is
// not confused by peers that have already moved on to a later exchange.
// Stashed messages are scanned lowest sender rank first; per-sender order
// among same-type messages is preserved.
func RecvAny[T any](c *Comm) (int, T) {
	c.tick()
	for from := 0; from < c.world.size; from++ {
		q := c.pending[from]
		for i, v := range q {
			if tv, ok := v.(T); ok {
				c.pending[from] = append(q[:i:i], q[i+1:]...)
				return from, tv
			}
		}
	}
	for {
		select {
		case env := <-c.world.inbox[c.rank]:
			if tv, ok := env.v.(T); ok {
				return env.from, tv
			}
			c.pending[env.from] = append(c.pending[env.from], env.v)
		case <-c.world.aborted:
			panic(ErrAborted)
		}
	}
}

// RecvAnyTimeout is RecvAny with a deadline: it returns (-1, zero, false)
// if no message of type T arrives within d. It lets a coordinator that
// would otherwise block forever on a hung peer turn the hang into a
// detectable failure (the dynamic split-distribution watchdog).
func RecvAnyTimeout[T any](c *Comm, d time.Duration) (int, T, bool) {
	c.tick()
	for from := 0; from < c.world.size; from++ {
		q := c.pending[from]
		for i, v := range q {
			if tv, ok := v.(T); ok {
				c.pending[from] = append(q[:i:i], q[i+1:]...)
				return from, tv, true
			}
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		select {
		case env := <-c.world.inbox[c.rank]:
			if tv, ok := env.v.(T); ok {
				return env.from, tv, true
			}
			c.pending[env.from] = append(c.pending[env.from], env.v)
		case <-t.C:
			var zero T
			return -1, zero, false
		case <-c.world.aborted:
			panic(ErrAborted)
		}
	}
}

// Split partitions the ranks into disjoint subgroups by color and returns a
// subgroup communicator (the MPI_Comm_split pattern): ranks sharing a color
// form a new world, renumbered 0…k−1 in parent-rank order. The subworld
// shares the parent's abort channel, so a failure anywhere still releases
// every blocked rank. Collective over the parent communicator.
func Split(c *Comm, color int) *Comm {
	colors := AllGather(c, color)
	var members []int
	for rank, col := range colors {
		if col == color {
			members = append(members, rank)
		}
	}
	myNewRank := 0
	for i, rank := range members {
		if rank == c.rank {
			myNewRank = i
		}
	}
	var w *World
	if members[0] == c.rank {
		w = &World{size: len(members), inbox: make([]chan envelope, len(members)), aborted: c.world.aborted}
		for i := range w.inbox {
			w.inbox[i] = make(chan envelope, len(members)+8)
		}
		for _, rank := range members[1:] {
			Send(c, rank, w)
		}
	} else {
		w = Recv[*World](c, members[0])
	}
	return &Comm{world: w, rank: myNewRank, pending: make(map[int][]any)}
}
