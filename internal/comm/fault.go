// Deterministic fault injection for the message-passing runtime. Long
// multi-day runs of the pipeline must survive rank failures (§5.3 persists
// intermediate artifacts for exactly this reason), so failures need to be
// reproducible test inputs rather than flakes: a Fault addresses one rank's
// c-th communication operation, an address that is a pure function of the
// program and the rank count. The supervised driver in internal/core uses
// these faults to prove that crash → restart → resume is bit-exact.

package comm

import (
	"errors"
	"fmt"
	"time"
)

// FaultKind selects what happens when a Fault fires.
type FaultKind int

const (
	// FaultCrash panics the target rank with an ErrInjected-wrapped error,
	// aborting the world — the model of a killed process.
	FaultCrash FaultKind = iota
	// FaultDelay stalls the target operation for Delay before proceeding —
	// the model of a hung or slow rank. The stall is abort-aware: if the
	// world aborts while the rank sleeps, it releases immediately with the
	// usual ErrAborted panic.
	FaultDelay
	// FaultDropRetry models a dropped-and-retransmitted message: the first
	// transmission is counted as lost (Stats.Retries), the operation waits
	// Delay for the retransmit timeout, then delivers normally. The
	// payload still arrives exactly once, so results are unchanged.
	FaultDropRetry
)

// String names the kind for logs and test output.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDelay:
		return "delay"
	case FaultDropRetry:
		return "drop-retry"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected failure, keyed by (Rank, Op): it fires when rank
// Rank enters its Op-th communication operation (1-based; every
// point-to-point call and collective entry advances the counter, including
// calls nested inside composite collectives — see Stats.Ops). A Fault whose
// Op is never reached does not fire.
type Fault struct {
	Rank int
	Op   int64
	Kind FaultKind
	// Delay is the stall for FaultDelay and the retransmit timeout for
	// FaultDropRetry; ignored by FaultCrash.
	Delay time.Duration
}

// String formats the fault as an address, e.g. "crash@rank1/op37".
func (f Fault) String() string {
	return fmt.Sprintf("%v@rank%d/op%d", f.Kind, f.Rank, f.Op)
}

// ErrInjected is wrapped by every failure raised by FaultCrash, so
// supervisors can tell injected crashes from organic bugs.
var ErrInjected = errors.New("comm: injected fault")

// tick advances this rank's op counter and fires any fault scheduled at the
// new index. Called on entry to every point-to-point op and collective.
func (c *Comm) tick() {
	c.stats.Ops++
	for _, f := range c.world.faults {
		if f.Rank != c.rank || f.Op != c.stats.Ops {
			continue
		}
		switch f.Kind {
		case FaultCrash:
			panic(fmt.Errorf("%w: rank %d killed at op %d", ErrInjected, c.rank, c.stats.Ops))
		case FaultDelay:
			c.sleep(f.Delay)
		case FaultDropRetry:
			c.stats.Retries++
			c.sleep(f.Delay)
		}
	}
}

// sleep waits for d but releases immediately (with the job-abort panic) if
// the world aborts, so a delayed rank can never outlive its world.
func (c *Comm) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.world.aborted:
		panic(ErrAborted)
	}
}

// PlanFault derives a reproducible fault from a seed: target rank, op index
// in [1, maxOp], and kind (drawn from kinds, or all three when empty) are a
// pure function of (seed, p, maxOp), so a randomized fault campaign can be
// replayed from its seed alone. The generator is an inline splitmix64 to
// keep the runtime free of PRNG dependencies.
func PlanFault(seed uint64, p int, maxOp int64, kinds ...FaultKind) Fault {
	if p <= 0 || maxOp <= 0 {
		panic(fmt.Sprintf("comm: PlanFault needs p > 0 and maxOp > 0, got %d, %d", p, maxOp))
	}
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultCrash, FaultDelay, FaultDropRetry}
	}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4b7b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return Fault{
		Rank:  int(next() % uint64(p)),
		Op:    1 + int64(next()%uint64(maxOp)),
		Kind:  kinds[next()%uint64(len(kinds))],
		Delay: time.Millisecond,
	}
}
