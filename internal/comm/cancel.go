// Cooperative cancellation for the message-passing runtime. A long
// structure-learning run must be stoppable without losing its resumable
// state: the Canceler is the one cancel signal every engine layer polls at
// its deterministic iteration boundaries (GaneSH update steps, consensus
// peeling rounds, module-unit edges — the same boundaries the fault model
// of internal/core addresses).
//
// The determinism contract is strict: a cancellation check NEVER consumes a
// PRNG draw and NEVER performs communication, so attaching, polling, or
// firing a Canceler cannot perturb the learned network. Cancellation fires
// by panicking, which rides the existing abort-propagation path: the
// panicking rank's world is torn down exactly as for a crash, every durable
// checkpoint written so far survives, and a resumed run is bit-identical to
// an uninterrupted one.

package comm

import (
	"fmt"
	"time"
)

// Canceler polls a cancellation signal at deterministic program points.
// Each rank holds its own Canceler (the checks counter, like a Comm, must
// only be touched from the rank's goroutine); all ranks of a world share
// the underlying done channel.
//
// A nil *Canceler is a valid no-op: Check returns immediately and Done
// returns a nil channel (which blocks forever in a select).
type Canceler struct {
	done   <-chan struct{}
	reason func() error
	checks int64
	fireAt int64
}

// NewCanceler returns a Canceler over done; reason supplies the error to
// fail with when the signal fires (called at fire time, so it can
// distinguish cancellation from deadline expiry). A nil done channel never
// fires organically — useful for a counting-only Canceler. A nil reason
// falls back to a generic cancellation error.
func NewCanceler(done <-chan struct{}, reason func() error) *Canceler {
	return &Canceler{done: done, reason: reason}
}

// InjectAt arms a deterministic test injection: the Canceler fires at its
// n-th Check (1-based) even though the done channel is still open — the
// cancellation analog of Fault.Op addressing. Because checks happen at
// deterministic program points, (rank, n) is a reproducible address for a
// fixed program and rank count. n ≤ 0 disables injection.
func (cl *Canceler) InjectAt(n int64) *Canceler {
	cl.fireAt = n
	return cl
}

// Checks returns how many times Check has been called — the probe a cancel
// matrix uses to enumerate every cancellation point of a clean run.
func (cl *Canceler) Checks() int64 {
	if cl == nil {
		return 0
	}
	return cl.checks
}

// Done exposes the underlying signal channel for select-based waits
// (RecvAnyCtx); nil when the Canceler is nil or counting-only.
func (cl *Canceler) Done() <-chan struct{} {
	if cl == nil {
		return nil
	}
	return cl.done
}

// cause resolves the error to fail with.
func (cl *Canceler) cause() error {
	if cl == nil {
		return fmt.Errorf("comm: run cancelled")
	}
	if cl.reason != nil {
		if err := cl.reason(); err != nil {
			return err
		}
	}
	return fmt.Errorf("comm: run cancelled")
}

// Check polls the signal: if it has fired (or a test injection is due),
// Check panics with the reason error, tearing the rank down through the
// same recover/abort path as a crash. The poll is non-blocking, consumes no
// PRNG state, and performs no communication, so placing a Check anywhere is
// result-invisible until the moment it fires.
func (cl *Canceler) Check() {
	if cl == nil {
		return
	}
	cl.checks++
	if cl.fireAt > 0 && cl.checks == cl.fireAt {
		panic(fmt.Errorf("cancelled at check %d (injected): %w", cl.checks, cl.cause()))
	}
	select {
	case <-cl.done:
		panic(fmt.Errorf("cancelled at check %d: %w", cl.checks, cl.cause()))
	default:
	}
}

// RecvAnyCtx is RecvAnyTimeout with cancellation: it blocks until a message
// whose payload is assignable to T arrives from any sender, honoring both a
// timeout and the run's cancel signal. d ≤ 0 waits without bound (so a
// coordinator configured without a watchdog still honors cancellation);
// cl == nil reduces to RecvAnyTimeout. On timeout it returns (-1, zero,
// false); when the cancel signal fires first it panics with the Canceler's
// reason error, aborting the world like any rank failure.
func RecvAnyCtx[T any](c *Comm, cl *Canceler, d time.Duration) (int, T, bool) {
	c.tick()
	for from := 0; from < c.world.size; from++ {
		q := c.pending[from]
		for i, v := range q {
			if tv, ok := v.(T); ok {
				c.pending[from] = append(q[:i:i], q[i+1:]...)
				return from, tv, true
			}
		}
	}
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	for {
		select {
		case env := <-c.world.inbox[c.rank]:
			if tv, ok := env.v.(T); ok {
				return env.from, tv, true
			}
			c.pending[env.from] = append(c.pending[env.from], env.v)
		case <-timeout:
			var zero T
			return -1, zero, false
		case <-cl.Done():
			panic(fmt.Errorf("comm: wait cancelled: %w", cl.cause()))
		case <-c.world.aborted:
			panic(ErrAborted)
		}
	}
}
