package comm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// sizes exercised by most collective tests, including non-powers of two.
var sizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestRunInvalidSize(t *testing.T) {
	for _, p := range []int{0, -1} {
		if _, err := Run(p, func(c *Comm) error { return nil }); err == nil {
			t.Errorf("Run(%d) succeeded, want error", p)
		}
	}
}

func TestRunRanksAndSize(t *testing.T) {
	for _, p := range sizes {
		seen := make([]bool, p)
		_, err := Run(p, func(c *Comm) error {
			if c.Size() != p {
				return fmt.Errorf("size %d, want %d", c.Size(), p)
			}
			seen[c.Rank()] = true // each rank writes its own slot
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for k, ok := range seen {
			if !ok {
				t.Fatalf("p=%d: rank %d never ran", p, k)
			}
		}
	}
}

func TestRunReportsError(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return wantErr
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 || !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want RankError{Rank:2, boom}", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 || re.Stack == "" {
		t.Fatalf("got %v, want RankError with stack from rank 1", err)
	}
}

func TestSendRecvPair(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 42)
			if got := Recv[string](c, 1); got != "hello" {
				return fmt.Errorf("got %q", got)
			}
		} else {
			if got := Recv[int](c, 0); got != 42 {
				return fmt.Errorf("got %d", got)
			}
			Send(c, 0, "hello")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvOutOfOrderSenders(t *testing.T) {
	// Rank 0 receives from rank 2 first even if rank 1's message arrives
	// earlier; the stashed message must still be delivered afterwards.
	_, err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			Send(c, 0, 100)
		case 2:
			Send(c, 0, 200)
		case 0:
			if got := Recv[int](c, 2); got != 200 {
				return fmt.Errorf("from 2: got %d", got)
			}
			if got := Recv[int](c, 1); got != 100 {
				return fmt.Errorf("from 1: got %d", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvPreservesPerSenderOrder(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				Send(c, 1, i)
			}
		} else {
			for i := 0; i < 50; i++ {
				if got := Recv[int](c, 0); got != i {
					return fmt.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 5, 1)
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("got %v, want panic RankError from rank 0", err)
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range sizes {
		for root := 0; root < p; root++ {
			_, err := Run(p, func(c *Comm) error {
				v := -1
				if c.Rank() == root {
					v = 1000 + root
				}
				got := Bcast(c, root, v)
				if got != 1000+root {
					return fmt.Errorf("rank %d got %d", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBcastSlice(t *testing.T) {
	_, err := Run(5, func(c *Comm) error {
		var v []float64
		if c.Rank() == 0 {
			v = []float64{1.5, 2.5, 3.5}
		}
		got := Bcast(c, 0, v)
		if len(got) != 3 || got[2] != 3.5 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherOrdered(t *testing.T) {
	for _, p := range sizes {
		_, err := Run(p, func(c *Comm) error {
			got := Gather(c, 0, c.Rank()*10)
			if c.Rank() != 0 {
				if got != nil {
					return fmt.Errorf("non-root got %v", got)
				}
				return nil
			}
			for k, v := range got {
				if v != k*10 {
					return fmt.Errorf("slot %d = %d", k, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllGather(t *testing.T) {
	for _, p := range sizes {
		_, err := Run(p, func(c *Comm) error {
			got := AllGather(c, c.Rank()+1)
			if len(got) != p {
				return fmt.Errorf("len %d", len(got))
			}
			for k, v := range got {
				if v != k+1 {
					return fmt.Errorf("slot %d = %d", k, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, p := range sizes {
		want := p * (p - 1) / 2
		_, err := Run(p, func(c *Comm) error {
			got := AllReduce(c, c.Rank(), func(a, b int) int { return a + b })
			if got != want {
				return fmt.Errorf("rank %d got %d want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	_, err := Run(7, func(c *Comm) error {
		got := AllReduce(c, (c.Rank()*3)%7, func(a, b int) int { return max(a, b) })
		if got != 6 {
			return fmt.Errorf("got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceRankOrderDeterministic(t *testing.T) {
	// Non-commutative op exposes fold order: result must be the rank-order
	// fold regardless of p's tree shape.
	for _, p := range sizes {
		want := ""
		for k := 0; k < p; k++ {
			want += fmt.Sprint(k)
		}
		_, err := Run(p, func(c *Comm) error {
			got := AllReduce(c, fmt.Sprint(c.Rank()), func(a, b string) string { return a + b })
			if got != want {
				return fmt.Errorf("got %q want %q", got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestExScan(t *testing.T) {
	for _, p := range sizes {
		_, err := Run(p, func(c *Comm) error {
			got := ExScan(c, c.Rank()+1, func(a, b int) int { return a + b }, 0)
			want := 0
			for k := 0; k < c.Rank(); k++ {
				want += k + 1
			}
			if got != want {
				return fmt.Errorf("rank %d got %d want %d", c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	_, err := Run(8, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			Barrier(c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSlice(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		v := []int{c.Rank(), c.Rank() * 2, 1}
		got := AllReduceSlice(c, v, func(a, b int) int { return a + b })
		want := []int{0 + 1 + 2 + 3, 0 + 2 + 4 + 6, 4}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("slot %d: got %d want %d", i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSliceLengthMismatch(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		v := make([]int, c.Rank()+1)
		AllReduceSlice(c, v, func(a, b int) int { return a + b })
		return nil
	})
	if err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestAllGatherv(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		local := make([]int, c.Rank()) // rank 0 contributes nothing
		for i := range local {
			local[i] = c.Rank()*100 + i
		}
		got := AllGatherv(c, local)
		want := []int{100, 200, 201}
		if len(got) != len(want) {
			return fmt.Errorf("got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("got %v want %v", got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounted(t *testing.T) {
	stats, err := Run(4, func(c *Comm) error {
		AllGather(c, []float64{1, 2, 3})
		Barrier(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total Stats
	for _, s := range stats {
		total.Add(s)
	}
	if total.Collectives == 0 || total.Sends == 0 || total.Elems == 0 {
		t.Fatalf("stats not accumulated: %+v", total)
	}
}

func TestBlockRangeCoversAll(t *testing.T) {
	check := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%16 + 1
		covered := 0
		prevHi := 0
		for k := 0; k < p; k++ {
			lo, hi := BlockRange(n, p, k)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRangeBalanced(t *testing.T) {
	// No block may be more than one longer than another.
	for _, n := range []int{0, 1, 5, 16, 17, 100} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			minLen, maxLen := n+1, -1
			for k := 0; k < p; k++ {
				lo, hi := BlockRange(n, p, k)
				minLen = min(minLen, hi-lo)
				maxLen = max(maxLen, hi-lo)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("n=%d p=%d: block lengths differ by %d", n, p, maxLen-minLen)
			}
		}
	}
}

func TestBlockOwnerMatchesBlockRange(t *testing.T) {
	for _, n := range []int{1, 5, 16, 17, 100} {
		for _, p := range []int{1, 2, 3, 7, 16, 100} {
			for i := 0; i < n; i++ {
				owner := BlockOwner(n, p, i)
				lo, hi := BlockRange(n, p, owner)
				if i < lo || i >= hi {
					t.Fatalf("n=%d p=%d i=%d: owner %d has [%d,%d)", n, p, i, owner, lo, hi)
				}
			}
		}
	}
}

func BenchmarkAllReduceP8(b *testing.B) {
	Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			AllReduce(c, c.Rank(), func(a, b int) int { return a + b })
		}
		return nil
	})
}

func BenchmarkBcastP8(b *testing.B) {
	Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			Bcast(c, 0, i)
		}
		return nil
	})
}

func TestRecvAny(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 0 {
			got := map[int]int{}
			for i := 0; i < 3; i++ {
				from, v := RecvAny[int](c)
				got[from] = v
			}
			for k := 1; k < 4; k++ {
				if got[k] != k*11 {
					return fmt.Errorf("from %d: got %d", k, got[k])
				}
			}
		} else {
			Send(c, 0, c.Rank()*11)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyDrainsPendingFirst(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			Send(c, 0, "one")
		case 2:
			Send(c, 0, "two")
		case 0:
			// Force rank 1's message into the pending stash by asking
			// for rank 2 first.
			if got := Recv[string](c, 2); got != "two" {
				return fmt.Errorf("from 2: %q", got)
			}
			from, v := RecvAny[string](c)
			if from != 1 || v != "one" {
				return fmt.Errorf("RecvAny got %d/%q", from, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyTimeoutDrainsPendingFirst(t *testing.T) {
	// A typed message already sitting in the pending stash must satisfy
	// RecvAnyTimeout immediately — no fresh arrival, no timeout wait.
	_, err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			Send(c, 0, 42)
			Send(c, 2, "go") // sequence rank 2 after the int is in flight
		case 2:
			Recv[string](c, 1)
			Send(c, 0, "sync")
		case 0:
			// Receiving rank 2's string first forces rank 1's int into
			// the stash (rank 1's send happens-before rank 2's).
			if got := Recv[string](c, 2); got != "sync" {
				return fmt.Errorf("from 2: %q", got)
			}
			from, v, ok := RecvAnyTimeout[int](c, time.Minute)
			if !ok || from != 1 || v != 42 {
				return fmt.Errorf("RecvAnyTimeout got %d/%d/%v, want 1/42/true", from, v, ok)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyTimeoutStashesMixedTypes(t *testing.T) {
	// A coordinator draining typed requests must stash interleaved
	// messages of other types and leave them deliverable to later typed
	// Recv calls in arrival order.
	_, err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			Send(c, 0, "late-a")
			Send(c, 0, 7)
			Send(c, 2, "go")
		case 2:
			Recv[string](c, 1)
			Send(c, 0, 9)
		case 0:
			from, v, ok := RecvAnyTimeout[int](c, time.Minute)
			if !ok || from != 1 || v != 7 {
				return fmt.Errorf("first int: %d/%d/%v", from, v, ok)
			}
			from, v, ok = RecvAnyTimeout[int](c, time.Minute)
			if !ok || from != 2 || v != 9 {
				return fmt.Errorf("second int: %d/%d/%v", from, v, ok)
			}
			if got := Recv[string](c, 1); got != "late-a" {
				return fmt.Errorf("stashed string lost: %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyTimeoutTimesOutWhileStashing(t *testing.T) {
	// Only wrong-type messages arrive: the call must report a timeout
	// with the (-1, zero, false) contract, and the messages it stashed
	// while waiting must still be delivered by later typed Recvs.
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			Send(c, 0, "kept")
			Send(c, 0, "done")
			return nil
		}
		from, v, ok := RecvAnyTimeout[int](c, 100*time.Millisecond)
		if ok || from != -1 || v != 0 {
			return fmt.Errorf("want timeout (-1, 0, false), got %d/%d/%v", from, v, ok)
		}
		if a := Recv[string](c, 1); a != "kept" {
			return fmt.Errorf("first stashed string: %q", a)
		}
		if b := Recv[string](c, 1); b != "done" {
			return fmt.Errorf("second stashed string: %q", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortReleasesBlockedRanks(t *testing.T) {
	// Rank 0 panics while rank 1 is blocked waiting for a message that
	// will never arrive; the world abort must release rank 1 and Run must
	// report rank 0's panic (not the cascade).
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("original failure")
		}
		Recv[int](c, 0) // would block forever without abort
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("got %v", err)
	}
	if re.Rank != 0 || errors.Is(err, ErrAborted) {
		t.Fatalf("want rank 0's original panic, got %v", err)
	}
}

func TestAbortFromErrorReturn(t *testing.T) {
	wantErr := errors.New("worker failed")
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return wantErr
		}
		Recv[int](c, 0)
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want the originating error", err)
	}
}

func TestSplitBasic(t *testing.T) {
	// 7 ranks, 3 colors by modulo: groups {0,3,6}, {1,4}, {2,5}.
	_, err := Run(7, func(c *Comm) error {
		color := c.Rank() % 3
		sub := Split(c, color)
		wantSize := 3 - min(color, 1) // color 0 → 3 members; 1,2 → 2
		if color == 0 && sub.Size() != 3 || color > 0 && sub.Size() != 2 {
			return fmt.Errorf("rank %d color %d: sub size %d (want %d)", c.Rank(), color, sub.Size(), wantSize)
		}
		// Subgroup collectives work and stay inside the group.
		sum := AllReduce(sub, c.Rank(), func(a, b int) int { return a + b })
		want := 0
		for r := 0; r < 7; r++ {
			if r%3 == color {
				want += r
			}
		}
		if sum != want {
			return fmt.Errorf("rank %d: group sum %d want %d", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRankOrder(t *testing.T) {
	_, err := Run(6, func(c *Comm) error {
		sub := Split(c, c.Rank()/3) // groups {0,1,2} and {3,4,5}
		if got := sub.Rank(); got != c.Rank()%3 {
			return fmt.Errorf("parent rank %d got sub rank %d", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSingleColor(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		sub := Split(c, 0)
		if sub.Size() != 4 || sub.Rank() != c.Rank() {
			return fmt.Errorf("identity split broken: %d/%d", sub.Rank(), sub.Size())
		}
		Barrier(sub)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitAbortReleasesSubgroups(t *testing.T) {
	// A panic in one subgroup must release ranks blocked in another.
	_, err := Run(4, func(c *Comm) error {
		sub := Split(c, c.Rank()%2)
		if c.Rank() == 0 {
			panic("subgroup failure")
		}
		if c.Rank() == 2 {
			// Blocked on a message from subgroup peer 0 (parent rank 0 is
			// in the other group; here sub peer is parent rank 0? no —
			// group of even ranks is {0,2}: sub rank 1 waits for sub rank 0,
			// which panicked).
			Recv[int](sub, 0)
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("got %v, want original panic from rank 0", err)
	}
}

func TestSplitArbitraryColorsProperty(t *testing.T) {
	// Any color assignment must produce consistent subgroups: sizes sum to
	// p, sub-ranks are 0..k-1 in parent order, and subgroup collectives
	// agree with a direct computation.
	check := func(raw [6]uint8) bool {
		p := 6
		colors := make([]int, p)
		for i := range colors {
			colors[i] = int(raw[i]) % 3
		}
		ok := true
		_, err := Run(p, func(c *Comm) error {
			sub := Split(c, colors[c.Rank()])
			wantSize := 0
			wantRank := 0
			for r := 0; r < p; r++ {
				if colors[r] == colors[c.Rank()] {
					if r < c.Rank() {
						wantRank++
					}
					wantSize++
				}
			}
			if sub.Size() != wantSize || sub.Rank() != wantRank {
				ok = false
				return nil
			}
			sum := AllReduce(sub, c.Rank(), func(a, b int) int { return a + b })
			want := 0
			for r := 0; r < p; r++ {
				if colors[r] == colors[c.Rank()] {
					want += r
				}
			}
			if sum != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
