// Package ltbaseline is the reference ("Lemon-Tree-style") sequential
// implementation used as the Table 1 baseline. It executes exactly the same
// algorithm as the optimized engine — same decision order, same PRNG
// consumption, same quantized sampling weights — but computes every score by
// rescanning the raw data cells of the blocks involved, the way the original
// Lemon-Tree recomputes statistics per evaluation, instead of maintaining
// incremental sufficient statistics and per-node caches.
//
// Because sufficient statistics are exact integers (package score), the
// rescanned statistics are bit-identical to the optimized engine's cached
// ones, so the two engines learn exactly the same network from the same seed
// — the property the paper verifies between Lemon-Tree and its optimized
// C++ implementation (§4.1, §5.2.1) — while differing by a constant-factor
// amount of work.
//
// This package intentionally duplicates the decision loops of the optimized
// engine rather than sharing them: the paper's verification is between two
// independent implementations, and so is ours.
package ltbaseline

import (
	"math"
	"sort"

	"parsimone/internal/cluster"
	"parsimone/internal/consensus"
	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/ganesh"
	"parsimone/internal/module"
	"parsimone/internal/prng"
	"parsimone/internal/result"
	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/trace"
	"parsimone/internal/tree"
)

// blockStats rescans the raw cells of a (vars × obs) block.
func blockStats(q *score.QData, vars, obs []int) score.Stats {
	var s score.Stats
	for _, x := range vars {
		row := q.Row(x)
		for _, j := range obs {
			s.Add(row[j])
		}
	}
	return s
}

// rowPart rescans variable x's cells over obs.
func rowPart(q *score.QData, x int, obs []int) score.Stats {
	var s score.Stats
	row := q.Row(x)
	for _, j := range obs {
		s.Add(row[j])
	}
	return s
}

// decide mirrors the optimized engine's collective decision: quantized
// weights from gains, one weighted draw.
func decide(g *prng.MRG3, gains []float64) int {
	weights := score.QuantizeWeights(gains)
	s := g.WeightedIndex(weights)
	if s < 0 {
		s = len(gains) - 1
	}
	return s
}

// gibbs runs the GaneSH update loops with rescanning score evaluation. The
// cluster state object is reused for membership bookkeeping only; its cached
// statistics are deliberately not consulted for scoring.
type gibbs struct {
	q *score.QData
	// k is the precomputed scoring kernel of the prior — bit-identical to
	// Prior.LogML (score.Kernel), so the baseline keeps its rescanning
	// character while scoring through the same tables as the engines.
	k *score.Kernel
	g *prng.MRG3
	// m memoizes split-posterior logML calls on the exact integer triple
	// (score.Memo), mirroring the optimized engines' batched scorer. The
	// statistics themselves are still rescanned from raw cells each step;
	// only the scoring suffix is cached, and the memo delegates misses to k,
	// so every answer stays bit-identical. Lazily built on first use.
	m *score.Memo
}

func (e *gibbs) gainAttachVar(cc *cluster.CoClustering, x, to int) float64 {
	if to == len(cc.Clusters) {
		return e.k.LogML(score.StatsOf(e.q.Row(x)))
	}
	vc := cc.Clusters[to]
	var gain float64
	for _, oc := range vc.Obs.Clusters {
		b := blockStats(e.q, vc.Vars, oc.Obs)
		part := rowPart(e.q, x, oc.Obs)
		gain += e.k.LogML(b.Plus(part)) - e.k.LogML(b)
	}
	return gain
}

func (e *gibbs) gainMergeVar(cc *cluster.CoClustering, src, dst int) float64 {
	if src == dst {
		return 0
	}
	sc, dc := cc.Clusters[src], cc.Clusters[dst]
	var gain float64
	for _, oc := range dc.Obs.Clusters {
		b := blockStats(e.q, dc.Vars, oc.Obs)
		part := blockStats(e.q, sc.Vars, oc.Obs)
		gain += e.k.LogML(b.Plus(part)) - e.k.LogML(b)
	}
	for _, oc := range sc.Obs.Clusters {
		gain -= e.k.LogML(blockStats(e.q, sc.Vars, oc.Obs))
	}
	return gain
}

func (e *gibbs) gainAttachObs(oc *cluster.ObsClusters, j, to int) float64 {
	col := rowColumn(e.q, oc.Vars, j)
	if to == len(oc.Clusters) {
		return e.k.LogML(col)
	}
	b := blockStats(e.q, oc.Vars, oc.Clusters[to].Obs)
	return e.k.LogML(b.Plus(col)) - e.k.LogML(b)
}

func (e *gibbs) gainMergeObs(oc *cluster.ObsClusters, i, j int) float64 {
	if i == j {
		return 0
	}
	a := blockStats(e.q, oc.Vars, oc.Clusters[i].Obs)
	b := blockStats(e.q, oc.Vars, oc.Clusters[j].Obs)
	return e.k.LogML(a.Plus(b)) - e.k.LogML(a) - e.k.LogML(b)
}

// rowColumn rescans observation j's cells over vars.
func rowColumn(q *score.QData, vars []int, j int) score.Stats {
	var s score.Stats
	for _, x := range vars {
		s.Add(q.At(x, j))
	}
	return s
}

func (e *gibbs) reassignVars(cc *cluster.CoClustering) {
	n := e.q.N
	for it := 0; it < n; it++ {
		r := e.g.Intn(n)
		cc.DetachVar(r)
		k := len(cc.Clusters)
		gains := make([]float64, k+1)
		for i := range gains {
			gains[i] = e.gainAttachVar(cc, r, i)
		}
		cc.AttachVar(r, decide(e.g, gains))
	}
}

func (e *gibbs) mergeVars(cc *cluster.CoClustering) {
	for i := 0; i < len(cc.Clusters); {
		k := len(cc.Clusters)
		gains := make([]float64, k)
		for j := range gains {
			gains[j] = e.gainMergeVar(cc, i, j)
		}
		s := decide(e.g, gains)
		if s != i {
			cc.MergeVar(i, s)
		} else {
			i++
		}
	}
}

func (e *gibbs) reassignObs(oc *cluster.ObsClusters) {
	m := e.q.M
	for it := 0; it < m; it++ {
		r := e.g.Intn(m)
		oc.DetachObs(r)
		l := len(oc.Clusters)
		gains := make([]float64, l+1)
		for i := range gains {
			gains[i] = e.gainAttachObs(oc, r, i)
		}
		oc.AttachObs(r, decide(e.g, gains))
	}
}

func (e *gibbs) mergeObs(oc *cluster.ObsClusters) {
	for i := 0; i < len(oc.Clusters); {
		l := len(oc.Clusters)
		gains := make([]float64, l)
		for j := range gains {
			gains[j] = e.gainMergeObs(oc, i, j)
		}
		s := decide(e.g, gains)
		if s != i {
			oc.MergeObs(i, s)
		} else {
			i++
		}
	}
}

// runGaneSH mirrors ganesh.Run.
func (e *gibbs) runGaneSH(par ganesh.Params) *cluster.CoClustering {
	k0 := par.InitVarClusters
	if k0 == 0 {
		k0 = max(1, e.q.N/2)
	}
	l0 := par.InitObsClusters
	if l0 == 0 {
		l0 = 1
		for l0*l0 < e.q.M {
			l0++
		}
	}
	updates := par.Updates
	if updates == 0 {
		updates = 1
	}
	cc := cluster.NewRandomCoClustering(e.q, e.k.Prior(), k0, l0, e.g)
	for u := 0; u < updates; u++ {
		e.reassignVars(cc)
		e.mergeVars(cc)
		for vi := 0; vi < len(cc.Clusters); vi++ {
			oc := cc.Clusters[vi].Obs
			e.reassignObs(oc)
			e.mergeObs(oc)
		}
	}
	return cc
}

// sampleObs mirrors ganesh.SampleObsClusterings.
func (e *gibbs) sampleObs(vars []int, par ganesh.ObsParams) [][][]int {
	l0 := par.InitObsClusters
	if l0 == 0 {
		l0 = 1
		for l0*l0 < e.q.M {
			l0++
		}
	}
	updates := par.Updates
	if updates == 0 {
		updates = 1
	}
	oc := cluster.NewRandomObsClusters(e.q, e.k.Prior(), vars, l0, e.g)
	var samples [][][]int
	for u := 1; u <= updates; u++ {
		e.reassignObs(oc)
		e.mergeObs(oc)
		if u > par.Burnin {
			samples = append(samples, oc.Snapshot())
		}
	}
	return samples
}

// buildTree mirrors tree.Build with rescanned merge scores.
func (e *gibbs) buildTree(vars []int, clusters [][]int) *tree.Tree {
	subtrees := make([]*tree.Node, len(clusters))
	for i, cl := range clusters {
		obs := append([]int(nil), cl...)
		sort.Ints(obs)
		subtrees[i] = &tree.Node{Obs: obs, Stats: blockStats(e.q, vars, obs)}
	}
	for len(subtrees) > 1 {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < len(subtrees)-1; i++ {
			a := blockStats(e.q, vars, subtrees[i].Obs)
			b := blockStats(e.q, vars, subtrees[i+1].Obs)
			s := e.k.LogML(a.Plus(b)) - e.k.LogML(a) - e.k.LogML(b)
			if s > bestScore {
				bestScore, best = s, i
			}
		}
		a, b := subtrees[best], subtrees[best+1]
		obs := append(append([]int(nil), a.Obs...), b.Obs...)
		sort.Ints(obs)
		merged := &tree.Node{Obs: obs, Stats: a.Stats.Plus(b.Stats), Left: a, Right: b}
		subtrees[best] = merged
		subtrees = append(subtrees[:best+1], subtrees[best+2:]...)
	}
	return &tree.Tree{Root: subtrees[0], Vars: append([]int(nil), vars...)}
}

// learnSplits mirrors splits.Learn but rescans module cells per bootstrap
// step instead of using precomputed per-observation column statistics.
func (e *gibbs) learnSplits(moduleVars [][]int, trees [][]*tree.Tree, par splits.Params) splits.Result {
	numSplits := par.NumSplits
	if numSplits == 0 {
		numSplits = 2
	}
	maxSteps := par.MaxSteps
	if maxSteps == 0 {
		maxSteps = 64
	}
	minSteps := par.MinSteps
	if minSteps == 0 {
		minSteps = 8
	}
	ciHW := par.CIHalfWidth
	//parsivet:floateq — zero-value sentinel for "option unset", never a computed float
	if ciHW == 0 {
		ciHW = 0.08
	}
	cands := par.Candidates
	if cands == nil {
		cands = make([]int, e.q.N)
		for i := range cands {
			cands[i] = i
		}
	}

	type nodeRef struct {
		module, treeIdx, nodeIdx int
		node                     *tree.Node
		offset, count            int
	}
	var nodes []*nodeRef
	offset := 0
	for mi := range trees {
		for ti, tr := range trees[mi] {
			for niIdx, n := range tr.InternalNodes() {
				ref := &nodeRef{module: mi, treeIdx: ti, nodeIdx: niIdx, node: n,
					offset: offset, count: len(cands) * len(n.Obs)}
				nodes = append(nodes, ref)
				offset += ref.count
			}
		}
	}
	total := offset

	base := e.g.Clone()
	posteriors := make([]float64, total)
	ni := 0
	for ci := 0; ci < total; ci++ {
		for nodes[ni].offset+nodes[ni].count <= ci {
			ni++
		}
		ref := nodes[ni]
		posteriors[ci] = e.posterior(moduleVars[ref.module], ref.node, cands, ci-ref.offset,
			base.Substream(uint64(ci)), minSteps, maxSteps, ciHW)
	}

	var res splits.Result
	for _, ref := range nodes {
		ps := posteriors[ref.offset : ref.offset+ref.count]
		weights := make([]uint64, len(ps))
		var retained []int
		for i, p := range ps {
			// Shared grid with splits.selectSplits (score.QuantizeProb): the
			// baseline must consume the PRNG stream identically to the
			// optimized engines or the bit-identity check is meaningless.
			weights[i] = score.QuantizeProb(p)
			if p > 0 {
				retained = append(retained, i)
			}
		}
		if len(retained) == 0 {
			continue
		}
		mk := func(local int) splits.Assigned {
			nObs := len(ref.node.Obs)
			parent := cands[local/nObs]
			return splits.Assigned{
				Module: ref.module, Tree: ref.treeIdx, Node: ref.nodeIdx,
				Parent:    parent,
				Value:     e.q.At(parent, ref.node.Obs[local%nObs]),
				Posterior: ps[local],
				NodeObs:   nObs,
			}
		}
		for s := 0; s < numSplits; s++ {
			res.Weighted = append(res.Weighted, mk(e.g.WeightedIndex(weights)))
		}
		for s := 0; s < numSplits; s++ {
			res.Uniform = append(res.Uniform, mk(retained[e.g.Intn(len(retained))]))
		}
	}
	return res
}

// posterior mirrors the optimized bootstrap estimator, rescanning the module
// column cells for every resampled observation.
func (e *gibbs) posterior(vars []int, node *tree.Node, cands []int, local int,
	sub *prng.MRG3, minSteps, maxSteps int, ciHW float64) float64 {
	nObs := len(node.Obs)
	parent := cands[local/nObs]
	value := e.q.At(parent, node.Obs[local%nObs])
	left := 0
	for _, j := range node.Obs {
		if e.q.At(parent, j) <= value {
			left++
		}
	}
	if left == 0 || left == nObs {
		return 0
	}
	prow := e.q.Row(parent)
	if e.m == nil {
		e.m = score.NewMemo(e.k, 0)
	}
	successes, steps := 0, 0
	for steps < maxSteps {
		steps++
		var ls, rs score.Stats
		for k := 0; k < nObs; k++ {
			pick := sub.Intn(nObs)
			j := node.Obs[pick]
			col := rowColumn(e.q, vars, j) // rescan: no cached column stats
			if prow[j] <= value {
				ls.Merge(col)
			} else {
				rs.Merge(col)
			}
		}
		delta := e.m.LogML(ls) + e.m.LogML(rs) - e.m.LogML(ls.Plus(rs))
		if delta > 0 {
			successes++
		}
		if steps >= minSteps {
			phat := float64(successes) / float64(steps)
			hw := 1.96 * math.Sqrt(phat*(1-phat)/float64(steps))
			if hw < ciHW {
				break
			}
		}
	}
	return float64(successes) / float64(steps)
}

// scoreParents mirrors module.Learn's parent aggregation.
func scoreParents(assigned []splits.Assigned, mi int) []module.ParentScore {
	type acc struct {
		num, den float64
		count    int
	}
	byParent := map[int]*acc{}
	for _, a := range assigned {
		if a.Module != mi {
			continue
		}
		s := byParent[a.Parent]
		if s == nil {
			s = &acc{}
			byParent[a.Parent] = s
		}
		w := float64(a.NodeObs)
		s.num += a.Posterior * w
		s.den += w
		s.count++
	}
	out := make([]module.ParentScore, 0, len(byParent))
	for parent, s := range byParent {
		out = append(out, module.ParentScore{Parent: parent, Score: s.num / s.den, Count: s.count})
	}
	sort.Slice(out, func(i, j int) bool {
		//parsivet:floateq — exact compare of identical-provenance scores; ties break on Parent
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Parent < out[j].Parent
	})
	return out
}

// Learn runs the full reference pipeline, mirroring core.Learn step for
// step. The returned network is bit-identical to the optimized engines'
// output for the same data and options.
func Learn(d *dataset.Data, opt core.Options) (*core.Output, error) {
	if err := opt.Prior.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Module.Splits.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	work := d
	if opt.Standardize {
		work = d.Clone()
		work.Standardize()
	}
	q := score.QuantizeData(work)
	// One kernel for the whole run: the rescanned blocks never exceed the
	// full data matrix, so n·m tables every count the baseline can score.
	kern := score.NewKernel(opt.Prior, q.N*q.M)
	timers := trace.NewTimers()
	master := prng.New(opt.Seed)

	var ensembles [][][]int
	timers.Time(core.TaskGaneSH, func() {
		for r := 0; r < opt.GaneshRuns; r++ {
			e := &gibbs{q: q, k: kern, g: master.Substream(uint64(r + 1))}
			cc := e.runGaneSH(opt.Ganesh)
			ensembles = append(ensembles, cc.VarSnapshot())
		}
	})

	var moduleVars [][]int
	var consErr error
	timers.Time(core.TaskConsensus, func() {
		a := ganesh.CoOccurrence(q.N, ensembles, opt.CoOccurrenceThreshold)
		moduleVars, consErr = consensus.Cluster(q.N, a, opt.Consensus)
	})
	if consErr != nil {
		return nil, consErr
	}

	var modules []*module.Module
	timers.Time(core.TaskModules, func() {
		gTask := master.Substream(uint64(opt.GaneshRuns + 1))
		var allW, allU []splits.Assigned
		for mi, vars := range moduleVars {
			// One numbered substream per module, mirroring module.learn's
			// checkpointable per-module units: each module's trees and
			// splits depend only on its own index and members.
			e := &gibbs{q: q, k: kern, g: gTask.Substream(uint64(mi + 1))}
			mod := &module.Module{Vars: append([]int(nil), vars...)}
			for _, clusters := range e.sampleObs(vars, opt.Module.Tree) {
				mod.Trees = append(mod.Trees, e.buildTree(vars, clusters))
			}
			modules = append(modules, mod)
			sp := e.learnSplits([][]int{vars}, [][]*tree.Tree{mod.Trees}, opt.Module.Splits)
			for _, a := range sp.Weighted {
				a.Module = mi
				allW = append(allW, a)
			}
			for _, a := range sp.Uniform {
				a.Module = mi
				allU = append(allU, a)
			}
		}
		for mi, mod := range modules {
			mod.ParentsWeighted = scoreParents(allW, mi)
			mod.ParentsUniform = scoreParents(allU, mi)
		}
	})

	net := &result.Network{N: d.N, M: d.M, Names: append([]string(nil), d.Names...)}
	for mi, mod := range modules {
		rm := result.Module{ID: mi, Variables: append([]int(nil), mod.Vars...)}
		for _, v := range rm.Variables {
			rm.VariableNames = append(rm.VariableNames, d.Names[v])
		}
		for _, ps := range mod.ParentsWeighted {
			rm.Parents = append(rm.Parents, result.Parent{
				Index: ps.Parent, Name: d.Names[ps.Parent], Score: ps.Score, Count: ps.Count,
			})
		}
		for _, ps := range mod.ParentsUniform {
			rm.ParentsUniform = append(rm.ParentsUniform, result.Parent{
				Index: ps.Parent, Name: d.Names[ps.Parent], Score: ps.Score, Count: ps.Count,
			})
		}
		net.Modules = append(net.Modules, rm)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return &core.Output{Network: net, Modules: modules, Timers: timers}, nil
}
