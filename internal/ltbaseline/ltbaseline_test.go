package ltbaseline

import (
	"testing"
	"time"

	"parsimone/internal/cluster"
	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/prng"
	"parsimone/internal/result"
	"parsimone/internal/score"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
)

func testData(t testing.TB, n, m int, seed uint64) *dataset.Data {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{
		N: n, M: m, Regulators: max(2, n/10), Modules: max(2, n/12), Noise: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fastOptions(seed uint64) core.Options {
	opt := core.DefaultOptions()
	opt.Seed = seed
	opt.Module.Splits = splits.Params{NumSplits: 2, MaxSteps: 16}
	return opt
}

func TestLearnProducesValidNetwork(t *testing.T) {
	d := testData(t, 24, 20, 1)
	out, err := Learn(d, fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Network.Modules) == 0 {
		t.Fatal("no modules")
	}
	if err := out.Network.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExactMatchWithOptimizedEngine is the §5.2.1 reproduction contract:
// "we verified that our implementation learns the exact same MoNets as the
// ones learned by Lemon-Tree in all the cases". Both engines here must learn
// bit-identical networks from the same seed, across several data sets.
func TestExactMatchWithOptimizedEngine(t *testing.T) {
	for _, tc := range []struct {
		n, m     int
		dataSeed uint64
		runSeed  uint64
	}{
		{20, 16, 1, 5},
		{24, 20, 2, 7},
		{30, 25, 3, 11},
	} {
		d := testData(t, tc.n, tc.m, tc.dataSeed)
		opt := fastOptions(tc.runSeed)
		slow, err := Learn(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := core.Learn(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !result.Equal(slow.Network, fast.Network) {
			t.Fatalf("n=%d m=%d: baseline and optimized networks differ", tc.n, tc.m)
		}
	}
}

// TestExactMatchWithParallelEngine closes the triangle: the reference
// baseline must also match the parallel engine exactly.
func TestExactMatchWithParallelEngine(t *testing.T) {
	d := testData(t, 24, 20, 4)
	opt := fastOptions(13)
	slow, err := Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.LearnParallel(3, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(slow.Network, par.Network) {
		t.Fatal("baseline and parallel networks differ")
	}
}

// TestBaselineIsSlower: the whole point of the optimized engine (Table 1).
// Measured on a workload large enough for timer noise not to matter.
func TestBaselineIsSlower(t *testing.T) {
	d := testData(t, 60, 50, 5)
	opt := fastOptions(17)
	timeOf := func(fn func() error) time.Duration {
		start := time.Now()
		if err := fn(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	slow := timeOf(func() error { _, err := Learn(d, opt); return err })
	fast := timeOf(func() error { _, err := core.Learn(d, opt); return err })
	if slow <= fast {
		t.Fatalf("baseline (%v) not slower than optimized (%v)", slow, fast)
	}
	t.Logf("baseline %v, optimized %v, speedup %.1fx", slow, fast, float64(slow)/float64(fast))
}

func TestLearnValidatesInput(t *testing.T) {
	d := testData(t, 20, 16, 6)
	opt := fastOptions(1)
	opt.Prior.Beta0 = 0
	if _, err := Learn(d, opt); err == nil {
		t.Fatal("bad prior accepted")
	}
}

func BenchmarkBaselineLearn(b *testing.B) {
	d := testData(b, 40, 40, 1)
	opt := fastOptions(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScore contrasts the two score-evaluation strategies on
// the operation that dominates GaneSH: evaluating a variable's attachment
// gain against a cluster. The optimized engine uses cached incremental
// statistics; the reference engine rescans the raw block cells.
func BenchmarkAblationScore(b *testing.B) {
	d := testData(b, 100, 100, 1)
	work := d.Clone()
	work.Standardize()
	q := score.QuantizeData(work)
	pr := score.DefaultPrior()
	cc := cluster.NewRandomCoClustering(q, pr, 10, 5, prng.New(1))
	e := &gibbs{q: q, k: score.NewKernel(pr, q.N*q.M), g: prng.New(2)}
	cc.DetachVar(50)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.GainAttachVar(50, i%len(cc.Clusters))
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.gainAttachVar(cc, 50, i%len(cc.Clusters))
		}
	})
}
