// Package wire implements the versioned binary on-disk format shared by
// checkpoint files and serialized networks (DESIGN §12). At production scale
// the JSON artifacts dominate recovery time and cache footprint; this format
// packs the same data an order of magnitude tighter by exploiting its shape:
// sorted index lists (module memberships, observation sets, ensembles)
// delta-code to near-nothing, and the quantized integers the score layer
// already works in (split thresholds, sufficient statistics) fit in one or
// two varint bytes.
//
// A file is a self-describing header — magic, format version, kind, and the
// run-configuration triple (seed, GaneshRuns, N) that checkpoint resume
// validates — followed by length-prefixed sections. Readers dispatch on
// section IDs and skip unknown ones by length, so later format revisions can
// append sections without breaking older readers; the format version gates
// incompatible changes with the same negotiation discipline as checkpoint v2
// (reject with an error naming both versions, never guess).
//
// Encoding vocabulary (all integers little-endian base-128 varints):
//
//	uvarint    unsigned varint (encoding/binary Uvarint)
//	varint     zigzag-signed varint (encoding/binary Varint)
//	float64    IEEE-754 bits, 8 bytes little-endian (bit-exact round trip)
//	string     uvarint byte length + raw bytes
//	ints       uvarint count + one varint per element
//	sortedInts uvarint count + varint first element + varint deltas
//	uint64s    uvarint count + one uvarint per element (quantized weights)
//
// Decoding is hostile-input safe: every count is validated against the bytes
// remaining (each element occupies ≥ 1 byte), so a corrupt or adversarial
// length prefix cannot force a huge allocation, and errors are sticky — the
// first failure poisons the Decoder and every later read returns zero values.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the wire-format version this package reads and writes. Files
// carrying any other version are rejected up front (version negotiation as
// in checkpoint v2); there is no cross-version migration.
const Version = 1

// magic identifies a wire-format file. The first byte is outside ASCII so a
// wire file can never be confused with the JSON ('{') or XML ('<') formats
// it replaces — readers auto-detect by prefix via IsWire.
var magic = [4]byte{0xB7, 'P', 'M', 'W'}

// Kind says what a wire file contains; readers reject a file of the wrong
// kind rather than misinterpreting its sections.
type Kind uint8

const (
	// KindEnsembles is the GaneSH task checkpoint (core ensembles.json's
	// binary successor).
	KindEnsembles Kind = 1
	// KindModules is the consensus task checkpoint.
	KindModules Kind = 2
	// KindProgress is the per-module progress manifest.
	KindProgress Kind = 3
	// KindNetwork is a serialized result.Network.
	KindNetwork Kind = 4
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindEnsembles:
		return "ensembles checkpoint"
	case KindModules:
		return "modules checkpoint"
	case KindProgress:
		return "progress manifest"
	case KindNetwork:
		return "network"
	}
	return fmt.Sprintf("kind %d", uint8(k))
}

// Header is the self-describing file header. Seed, GaneshRuns, and N carry
// the run configuration checkpoint resume validates; network files set the
// fields that do not apply to them to zero.
type Header struct {
	Kind       Kind
	Seed       uint64
	GaneshRuns int
	N          int
}

// Section is one length-prefixed file section. IDs are scoped per Kind;
// readers skip sections whose ID they do not know.
type Section struct {
	ID   uint64
	Body []byte
}

// FindSection returns the body of the first section with the given ID.
func FindSection(secs []Section, id uint64) ([]byte, bool) {
	for _, s := range secs {
		if s.ID == id {
			return s.Body, true
		}
	}
	return nil, false
}

// IsWire reports whether data starts with the wire magic — the format
// auto-detection hook (a JSON checkpoint starts with '{', an XML network
// with '<').
func IsWire(data []byte) bool {
	return len(data) >= len(magic) && bytes.Equal(data[:len(magic)], magic[:])
}

// EncodeFile assembles a complete wire file: magic, header, then the
// sections in order.
func EncodeFile(h Header, secs []Section) []byte {
	e := NewEncoder()
	e.buf = append(e.buf, magic[:]...)
	e.Uvarint(Version)
	e.Uvarint(uint64(h.Kind))
	e.Uvarint(h.Seed)
	e.Uvarint(uint64(h.GaneshRuns))
	e.Uvarint(uint64(h.N))
	for _, s := range secs {
		e.Uvarint(s.ID)
		e.Uvarint(uint64(len(s.Body)))
		e.buf = append(e.buf, s.Body...)
	}
	return e.buf
}

// DecodeFile parses a wire file into its header and sections. The whole
// input must be consumed by well-formed sections — trailing garbage is an
// error, never silently ignored (a truncated rename or a concatenated pair
// of files must fail fast, not resume from partial state).
func DecodeFile(data []byte) (Header, []Section, error) {
	if !IsWire(data) {
		return Header{}, nil, fmt.Errorf("wire: bad magic (not a wire-format file)")
	}
	d := NewDecoder(data[len(magic):])
	v := d.Uvarint()
	if d.Err() == nil && v != Version {
		return Header{}, nil, fmt.Errorf("wire: file is format v%d, this build expects v%d", v, Version)
	}
	var h Header
	h.Kind = Kind(d.Uvarint())
	h.Seed = d.Uvarint()
	h.GaneshRuns = d.nonNegInt("ganeshRuns")
	h.N = d.nonNegInt("n")
	var secs []Section
	for d.Err() == nil && d.Remaining() > 0 {
		id := d.Uvarint()
		n := d.Count(1)
		secs = append(secs, Section{ID: id, Body: d.Raw(n)})
	}
	if err := d.Err(); err != nil {
		return Header{}, nil, err
	}
	return h, secs, nil
}

// Encoder appends wire-encoded values to a growing buffer. The zero value
// is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(x uint64) { e.buf = binary.AppendUvarint(e.buf, x) }

// Varint appends a zigzag-signed varint.
func (e *Encoder) Varint(x int64) { e.buf = binary.AppendVarint(e.buf, x) }

// Int appends an int as a zigzag varint.
func (e *Encoder) Int(x int) { e.Varint(int64(x)) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Float64 appends the IEEE-754 bits of f, 8 bytes little-endian. Fixed
// width keeps the round trip bit-exact for every value including NaN
// payloads, ±Inf, and negative zero.
func (e *Encoder) Float64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed byte string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Ints appends a counted list of varints.
func (e *Encoder) Ints(xs []int) {
	e.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		e.Varint(int64(x))
	}
}

// SortedInts appends a counted, delta-coded integer list: the first element
// verbatim, then successive differences. On the sorted non-negative index
// lists this format exists for (module memberships, observation sets,
// ensemble clusters) every delta is small and encodes in one byte; the
// zigzag coding keeps arbitrary (even unsorted) input correct, merely less
// compact.
func (e *Encoder) SortedInts(xs []int) {
	e.Uvarint(uint64(len(xs)))
	prev := 0
	for i, x := range xs {
		if i == 0 {
			e.Varint(int64(x))
		} else {
			e.Varint(int64(x) - int64(prev))
		}
		prev = x
	}
}

// Uint64s appends a counted list of unsigned varints — the packed encoding
// for quantized sampling weights, which score.QuantizeWeights already maps
// onto [0, 2^20].
func (e *Encoder) Uint64s(xs []uint64) {
	e.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		e.Uvarint(x)
	}
}

// Decoder reads wire-encoded values with a sticky error: after the first
// failure every read returns zero values and Err reports the cause.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps data for decoding.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Failf records a decode failure (the first one wins).
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.data) - d.off
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.Failf("truncated or overlong uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return x
}

// Varint reads a zigzag-signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.Failf("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return x
}

// Int reads a zigzag varint and narrows it to int.
func (d *Decoder) Int() int {
	x := d.Varint()
	if int64(int(x)) != x {
		d.Failf("varint %d overflows int", x)
		return 0
	}
	return int(x)
}

// nonNegInt reads a uvarint that must fit in a non-negative int.
func (d *Decoder) nonNegInt(what string) int {
	x := d.Uvarint()
	if x > uint64(math.MaxInt) {
		d.Failf("%s %d overflows int", what, x)
		return 0
	}
	return int(x)
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.Failf("unexpected end of input at offset %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

// Float64 reads 8 little-endian bytes as IEEE-754 float64 bits.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.Failf("truncated float64 at offset %d", d.off)
		return 0
	}
	bits := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return math.Float64frombits(bits)
}

// Raw consumes and returns the next n bytes (aliasing the input buffer).
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.Failf("truncated section: need %d bytes at offset %d, have %d", n, d.off, len(d.data)-d.off)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// Count reads an element count and validates it against the bytes
// remaining, given that each element occupies at least elemSize bytes — the
// guard that keeps corrupt length prefixes from forcing huge allocations.
func (d *Decoder) Count(elemSize int) int {
	if elemSize < 1 {
		elemSize = 1
	}
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()/elemSize) {
		d.Failf("count %d exceeds the %d bytes remaining", n, d.Remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed byte string.
func (d *Decoder) String() string {
	n := d.Count(1)
	return string(d.Raw(n))
}

// Ints reads a counted varint list.
func (d *Decoder) Ints() []int {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return xs
}

// SortedInts reads a delta-coded list written by Encoder.SortedInts.
func (d *Decoder) SortedInts() []int {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	prev := int64(0)
	for i := range xs {
		delta := d.Varint()
		var v int64
		if i == 0 {
			v = delta
		} else {
			v = prev + delta
		}
		if int64(int(v)) != v {
			d.Failf("delta-coded value %d overflows int", v)
			return nil
		}
		xs[i] = int(v)
		prev = v
	}
	if d.err != nil {
		return nil
	}
	return xs
}

// Uint64s reads a counted uvarint list.
func (d *Decoder) Uint64s() []uint64 {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = d.Uvarint()
	}
	if d.err != nil {
		return nil
	}
	return xs
}
