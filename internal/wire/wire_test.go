package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uvarint(0)
	e.Uvarint(math.MaxUint64)
	e.Varint(0)
	e.Varint(-1)
	e.Varint(math.MinInt64)
	e.Varint(math.MaxInt64)
	e.Int(-42)
	e.Byte(0xA5)
	e.Float64(0)
	e.Float64(math.Copysign(0, -1))
	e.Float64(math.Inf(1))
	e.Float64(math.NaN())
	e.Float64(1.0 / 3.0)
	e.String("")
	e.String("gène-α\x00binary")

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint 0 = %d", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint max = %d", got)
	}
	for _, want := range []int64{0, -1, math.MinInt64, math.MaxInt64} {
		if got := d.Varint(); got != want {
			t.Errorf("varint %d = %d", want, got)
		}
	}
	if got := d.Int(); got != -42 {
		t.Errorf("int -42 = %d", got)
	}
	if got := d.Byte(); got != 0xA5 {
		t.Errorf("byte = %x", got)
	}
	for _, want := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.NaN(), 1.0 / 3.0} {
		got := d.Float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("float64 %v bits %x, want %x", want, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string = %q", got)
	}
	if got := d.String(); got != "gène-α\x00binary" {
		t.Errorf("string = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestListRoundTrip(t *testing.T) {
	lists := [][]int{
		nil,
		{0},
		{5},
		{-3, 0, 7},
		{0, 1, 2, 3, 1000, 1001, 1 << 40},
		{7, 3, 9, 1}, // unsorted: SortedInts must stay correct, just less compact
	}
	for _, xs := range lists {
		e := NewEncoder()
		e.SortedInts(xs)
		e.Ints(xs)
		d := NewDecoder(e.Bytes())
		if got := d.SortedInts(); !equalInts(got, xs) {
			t.Errorf("SortedInts(%v) round-tripped to %v", xs, got)
		}
		if got := d.Ints(); !equalInts(got, xs) {
			t.Errorf("Ints(%v) round-tripped to %v", xs, got)
		}
		if err := d.Err(); err != nil {
			t.Errorf("lists %v: %v", xs, err)
		}
	}
	e := NewEncoder()
	e.Uint64s([]uint64{0, 1, 1 << 20, math.MaxUint64})
	d := NewDecoder(e.Bytes())
	got := d.Uint64s()
	if len(got) != 4 || got[3] != math.MaxUint64 || d.Err() != nil {
		t.Errorf("Uint64s round trip = %v (%v)", got, d.Err())
	}
}

// TestSortedIntsCompact pins the size win delta coding exists for: a dense
// sorted index list costs ~1 byte per element.
func TestSortedIntsCompact(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = 100000 + 3*i
	}
	e := NewEncoder()
	e.SortedInts(xs)
	if n := len(e.Bytes()); n > 1010 {
		t.Fatalf("1000 dense sorted ints encoded to %d bytes, want ≈1 byte each", n)
	}
}

func TestFileRoundTrip(t *testing.T) {
	h := Header{Kind: KindProgress, Seed: 0xDEADBEEF, GaneshRuns: 7, N: 1234}
	secs := []Section{
		{ID: 1, Body: []byte("alpha")},
		{ID: 9, Body: nil},
		{ID: 2, Body: bytes.Repeat([]byte{0xFF}, 300)},
	}
	data := EncodeFile(h, secs)
	if !IsWire(data) {
		t.Fatal("encoded file fails IsWire")
	}
	gh, gs, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h {
		t.Fatalf("header %+v, want %+v", gh, h)
	}
	if len(gs) != len(secs) {
		t.Fatalf("%d sections, want %d", len(gs), len(secs))
	}
	for i := range secs {
		if gs[i].ID != secs[i].ID || !bytes.Equal(gs[i].Body, secs[i].Body) {
			t.Errorf("section %d mismatch", i)
		}
	}
	if body, ok := FindSection(gs, 2); !ok || len(body) != 300 {
		t.Errorf("FindSection(2) = %d bytes, %v", len(body), ok)
	}
	if _, ok := FindSection(gs, 99); ok {
		t.Error("FindSection found a section that does not exist")
	}
}

func TestDecodeFileRejects(t *testing.T) {
	good := EncodeFile(Header{Kind: KindNetwork, N: 3}, []Section{{ID: 1, Body: []byte{1, 2, 3}}})
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"json", []byte(`{"version":2}`), "bad magic"},
		{"magic only", magic[:], "uvarint"},
		{"truncated header", good[:5], "uvarint"},
		{"truncated section body", good[:len(good)-2], "exceeds"},
		{"trailing garbage", append(append([]byte{}, good...), 0x80), "uvarint"},
		{"oversized section length", append(append([]byte{}, good...), 5, 127), "count 127 exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFile(tc.data)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestVersionNegotiation: a file from a future format version is rejected
// with an error naming both versions, before any section is touched.
func TestVersionNegotiation(t *testing.T) {
	data := EncodeFile(Header{Kind: KindNetwork}, nil)
	// The version uvarint is the byte right after the magic (Version < 128).
	data[len(magic)] = Version + 1
	_, _, err := DecodeFile(data)
	if err == nil || !strings.Contains(err.Error(), "format v2, this build expects v1") {
		t.Fatalf("got %v, want a version-mismatch rejection naming v2 and v1", err)
	}
}

// TestUnknownSectionsSkipped: a reader dispatching on known section IDs is
// oblivious to appended sections — the forward-compatibility contract.
func TestUnknownSectionsSkipped(t *testing.T) {
	data := EncodeFile(Header{Kind: KindModules, N: 5}, []Section{
		{ID: 1, Body: []byte("payload")},
		{ID: 7777, Body: []byte("from the future")},
	})
	_, secs, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if body, ok := FindSection(secs, 1); !ok || string(body) != "payload" {
		t.Fatalf("known section not found: %q %v", body, ok)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x80}) // truncated uvarint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("no error from truncated uvarint")
	}
	first := d.Err()
	// Every later read is a zero value and must not disturb the first error.
	if d.Uvarint() != 0 || d.Varint() != 0 || d.Byte() != 0 || d.Float64() != 0 ||
		d.String() != "" || d.SortedInts() != nil || d.Remaining() != 0 {
		t.Error("poisoned decoder returned non-zero values")
	}
	if d.Err() != first {
		t.Error("sticky error was replaced")
	}
}

// TestCountGuard: a length prefix claiming more elements than bytes remain
// fails instead of allocating.
func TestCountGuard(t *testing.T) {
	e := NewEncoder()
	e.Uvarint(1 << 40) // a count with no data behind it
	d := NewDecoder(e.Bytes())
	if xs := d.SortedInts(); xs != nil || d.Err() == nil {
		t.Fatalf("huge count decoded to %v, err %v", xs, d.Err())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
