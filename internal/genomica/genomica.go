// Package genomica implements the iterative two-step module-network
// learning algorithm of Segal et al. (2003, 2005) — the GENOMICA approach —
// as a comparison system for the Lemon-Tree pipeline the paper parallelizes.
// The paper's related work (§1.1) reports that Lemon-Tree constructs more
// robust networks than GENOMICA, and its future work (§6) proposes
// extending the parallel components to GENOMICA; this package provides both
// the sequential algorithm and that parallel extension.
//
// The algorithm alternates two steps from a random initial assignment of
// variables to K modules:
//
//   - M-step: for each module, induce a regression-tree CPD top-down —
//     greedily choosing, at each node, the ⟨parent, value⟩ split with the
//     best Bayesian score improvement over the module's block, recursing
//     while the improvement is positive and the node is large enough.
//   - E-step: reassign every variable to the module whose tree-induced
//     observation partition gives its row the best score gain, as a batch
//     (hard EM), which is also what makes the step embarrassingly parallel
//     — the batching strategy of the prior GENOMICA parallelizations (Liu
//     et al. 2005, Jiang et al. 2006).
//
// Iteration stops when an E-step moves no variable or after MaxIters.
package genomica

import (
	"fmt"
	"sort"

	"parsimone/internal/comm"
	"parsimone/internal/prng"
	"parsimone/internal/score"
)

// Params configures a GENOMICA run.
type Params struct {
	// Modules is K, the fixed number of modules. Required (> 0): unlike
	// Lemon-Tree, GENOMICA does not discover the module count.
	Modules int
	// MaxIters bounds the EM iterations. Default 10.
	MaxIters int
	// MinLeaf is the smallest observation set a tree may split. Default 4.
	MinLeaf int
	// MaxDepth bounds tree depth. Default 4.
	MaxDepth int
	// Candidates is the candidate-parent list; nil means all variables.
	Candidates []int
	// ValueGrid is the number of split values tried per parent per node
	// (quantiles of the parent's values at the node). Default 8.
	ValueGrid int
}

func (p Params) withDefaults(n int) (Params, error) {
	if p.Modules <= 0 {
		return p, fmt.Errorf("genomica: Modules must be positive")
	}
	if p.MaxIters == 0 {
		p.MaxIters = 10
	}
	if p.MinLeaf == 0 {
		p.MinLeaf = 4
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 4
	}
	if p.ValueGrid == 0 {
		p.ValueGrid = 8
	}
	if p.Candidates == nil {
		p.Candidates = make([]int, n)
		for i := range p.Candidates {
			p.Candidates[i] = i
		}
	}
	return p, nil
}

// TreeNode is one node of a GENOMICA regression tree: the observation set,
// the split (Parent == -1 at leaves), and children.
type TreeNode struct {
	Obs         []int
	Parent      int
	Value       int64
	Left, Right *TreeNode
}

// Leaves returns the node's leaf partition in left-to-right order.
func (n *TreeNode) Leaves() []*TreeNode {
	if n.Parent < 0 {
		return []*TreeNode{n}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Module is one learned GENOMICA module.
type Module struct {
	Vars []int
	Tree *TreeNode
	// Parents are the distinct split variables of the tree, root-first.
	Parents []int
}

// Result is a learned GENOMICA module network.
type Result struct {
	Modules []*Module
	// Assign maps each variable to its module.
	Assign []int
	// Iters is the number of EM iterations performed; Converged reports
	// whether the final E-step moved no variable.
	Iters     int
	Converged bool
	// Score is the final total network score.
	Score float64
}

// rowPartStats returns the statistics of variable x's cells over obs.
func rowPartStats(q *score.QData, x int, obs []int) score.Stats {
	var s score.Stats
	row := q.Row(x)
	for _, j := range obs {
		s.Add(row[j])
	}
	return s
}

// blockStats returns the statistics of (vars × obs).
func blockStats(q *score.QData, vars, obs []int) score.Stats {
	var s score.Stats
	for _, x := range vars {
		s.Merge(rowPartStats(q, x, obs))
	}
	return s
}

// bestSplit finds the best ⟨parent, value⟩ split of obs for the module's
// variables, returning the improvement (0 if none is positive).
func bestSplit(q *score.QData, pr score.Prior, vars, obs []int, par Params) (parent int, value int64, gain float64) {
	parent = -1
	whole := pr.LogML(blockStats(q, vars, obs))
	vals := make([]int64, len(obs))
	for _, x := range par.Candidates {
		row := q.Row(x)
		for i, j := range obs {
			vals[i] = row[j]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		// Quantile grid of distinct candidate thresholds.
		tried := map[int64]bool{}
		for t := 1; t <= par.ValueGrid; t++ {
			v := vals[(len(vals)-1)*t/(par.ValueGrid+1)]
			if tried[v] {
				continue
			}
			tried[v] = true
			var le, gt score.Stats
			nle := 0
			for _, xx := range vars {
				rowx := q.Row(xx)
				for _, j := range obs {
					if row[j] <= v {
						le.Add(rowx[j])
					} else {
						gt.Add(rowx[j])
					}
				}
			}
			for _, j := range obs {
				if row[j] <= v {
					nle++
				}
			}
			if nle == 0 || nle == len(obs) {
				continue
			}
			g := pr.LogML(le) + pr.LogML(gt) - whole
			if g > gain {
				gain, parent, value = g, x, v
			}
		}
	}
	return parent, value, gain
}

// induceTree builds the module's regression tree top-down.
func induceTree(q *score.QData, pr score.Prior, vars, obs []int, depth int, par Params) *TreeNode {
	node := &TreeNode{Obs: obs, Parent: -1}
	if len(vars) == 0 || depth >= par.MaxDepth || len(obs) < 2*par.MinLeaf {
		return node
	}
	parent, value, gain := bestSplit(q, pr, vars, obs, par)
	if parent < 0 || gain <= 0 {
		return node
	}
	var le, gt []int
	row := q.Row(parent)
	for _, j := range obs {
		if row[j] <= value {
			le = append(le, j)
		} else {
			gt = append(gt, j)
		}
	}
	if len(le) < par.MinLeaf || len(gt) < par.MinLeaf {
		return node
	}
	node.Parent = parent
	node.Value = value
	node.Left = induceTree(q, pr, vars, le, depth+1, par)
	node.Right = induceTree(q, pr, vars, gt, depth+1, par)
	return node
}

// treeParents lists the distinct split variables, pre-order.
func treeParents(n *TreeNode) []int {
	var out []int
	seen := map[int]bool{}
	var walk func(t *TreeNode)
	walk = func(t *TreeNode) {
		if t == nil || t.Parent < 0 {
			return
		}
		if !seen[t.Parent] {
			seen[t.Parent] = true
			out = append(out, t.Parent)
		}
		walk(t.Left)
		walk(t.Right)
	}
	walk(n)
	return out
}

// engine holds the per-run state shared by the sequential and parallel
// variants.
type engine struct {
	q  *score.QData
	pr score.Prior
	// mStep learns the trees of every module (possibly partitioned over
	// ranks); eStep returns every variable's best module given the trees.
	mStep func(members [][]int, par Params) []*TreeNode
	eStep func(members [][]int, treesK []*TreeNode, par Params) []int
}

func (e *engine) run(par Params, g *prng.MRG3) (*Result, error) {
	par, err := par.withDefaults(e.q.N)
	if err != nil {
		return nil, err
	}
	n := e.q.N
	assign := make([]int, n)
	for x := 0; x < n; x++ {
		assign[x] = g.Intn(par.Modules)
	}
	membersOf := func(assign []int) [][]int {
		members := make([][]int, par.Modules)
		for x, k := range assign {
			members[k] = append(members[k], x)
		}
		return members
	}

	res := &Result{}
	var treesK []*TreeNode
	var members [][]int
	for it := 1; it <= par.MaxIters; it++ {
		res.Iters = it
		members = membersOf(assign)
		treesK = e.mStep(members, par)
		next := e.eStep(members, treesK, par)
		moved := 0
		for x := range next {
			if next[x] != assign[x] {
				moved++
			}
		}
		assign = next
		if moved == 0 {
			res.Converged = true
			break
		}
	}
	// Final M-step on the converged assignment.
	members = membersOf(assign)
	treesK = e.mStep(members, par)

	res.Assign = assign
	var total float64
	for k := 0; k < par.Modules; k++ {
		mod := &Module{Vars: members[k], Tree: treesK[k], Parents: treeParents(treesK[k])}
		res.Modules = append(res.Modules, mod)
		for _, leaf := range treesK[k].Leaves() {
			total += e.pr.LogML(blockStats(e.q, members[k], leaf.Obs))
		}
	}
	res.Score = total
	return res, nil
}

// allObs returns 0..m-1.
func allObs(m int) []int {
	obs := make([]int, m)
	for j := range obs {
		obs[j] = j
	}
	return obs
}

// Learn runs GENOMICA sequentially.
func Learn(q *score.QData, pr score.Prior, par Params, g *prng.MRG3) (*Result, error) {
	e := &engine{q: q, pr: pr}
	e.mStep = func(members [][]int, par Params) []*TreeNode {
		trees := make([]*TreeNode, len(members))
		for k, vars := range members {
			trees[k] = induceTree(q, pr, vars, allObs(q.M), 0, par)
		}
		return trees
	}
	e.eStep = func(members [][]int, treesK []*TreeNode, par Params) []int {
		leaves := make([][]*TreeNode, len(treesK))
		leafStats := make([][]score.Stats, len(treesK))
		prepLeafStats(q, members, treesK, leaves, leafStats)
		next := make([]int, q.N)
		for x := 0; x < q.N; x++ {
			next[x] = bestModuleFor(q, pr, leaves, leafStats, x)
		}
		return next
	}
	return e.run(par, g)
}

// LearnParallel runs GENOMICA across c's ranks: the M-step partitions
// modules over ranks (tree induction is independent per module) and the
// E-step partitions variables; both exchange results with all-gathers.
// Every rank must pass a PRNG in the same state; results are identical to
// Learn.
func LearnParallel(c *comm.Comm, q *score.QData, pr score.Prior, par Params, g *prng.MRG3) (*Result, error) {
	e := &engine{q: q, pr: pr}
	e.mStep = func(members [][]int, par Params) []*TreeNode {
		lo, hi := comm.BlockRange(len(members), c.Size(), c.Rank())
		local := make([]*TreeNode, 0, hi-lo)
		for k := lo; k < hi; k++ {
			local = append(local, induceTree(q, pr, members[k], allObs(q.M), 0, par))
		}
		return comm.AllGatherv(c, local)
	}
	e.eStep = func(members [][]int, treesK []*TreeNode, par Params) []int {
		leaves := make([][]*TreeNode, len(treesK))
		leafStats := make([][]score.Stats, len(treesK))
		prepLeafStats(q, members, treesK, leaves, leafStats)
		lo, hi := comm.BlockRange(q.N, c.Size(), c.Rank())
		local := make([]int, 0, hi-lo)
		for x := lo; x < hi; x++ {
			local = append(local, bestModuleFor(q, pr, leaves, leafStats, x))
		}
		return comm.AllGatherv(c, local)
	}
	return e.run(par, g)
}

// prepLeafStats fills the per-module leaf lists and leaf block statistics.
func prepLeafStats(q *score.QData, members [][]int, treesK []*TreeNode, leaves [][]*TreeNode, leafStats [][]score.Stats) {
	for k, t := range treesK {
		leaves[k] = t.Leaves()
		leafStats[k] = make([]score.Stats, len(leaves[k]))
		for li, leaf := range leaves[k] {
			leafStats[k][li] = blockStats(q, members[k], leaf.Obs)
		}
	}
}

// bestModuleFor scores variable x against every module's leaf partition
// (with x's own contribution removed from its current module's statistics
// being unnecessary under batch hard-EM: all variables are scored against
// the same frozen partition) and returns the arg-max, lowest index on ties.
func bestModuleFor(q *score.QData, pr score.Prior, leaves [][]*TreeNode, leafStats [][]score.Stats, x int) int {
	best, bestGain := 0, 0.0
	for k := range leaves {
		var gain float64
		for li, leaf := range leaves[k] {
			part := rowPartStats(q, x, leaf.Obs)
			gain += pr.LogML(leafStats[k][li].Plus(part)) - pr.LogML(leafStats[k][li])
		}
		if k == 0 || gain > bestGain {
			best, bestGain = k, gain
		}
	}
	return best
}
