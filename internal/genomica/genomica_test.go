package genomica

import (
	"reflect"
	"testing"

	"parsimone/internal/comm"
	"parsimone/internal/prng"
	"parsimone/internal/result"
	"parsimone/internal/score"
	"parsimone/internal/synth"
)

func testData(t testing.TB, n, m int, seed uint64) (*score.QData, *synth.Truth) {
	t.Helper()
	d, truth, err := synth.Generate(synth.Config{
		N: n, M: m, Regulators: max(2, n/10), Modules: max(2, n/12), Noise: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	return score.QuantizeData(d), truth
}

func TestLearnBasic(t *testing.T) {
	q, _ := testData(t, 30, 24, 1)
	res, err := Learn(q, score.DefaultPrior(), Params{Modules: 3, MaxIters: 5}, prng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modules) != 3 {
		t.Fatalf("%d modules", len(res.Modules))
	}
	covered := 0
	for k, mod := range res.Modules {
		covered += len(mod.Vars)
		for _, x := range mod.Vars {
			if res.Assign[x] != k {
				t.Fatalf("variable %d in module %d but assigned %d", x, k, res.Assign[x])
			}
		}
	}
	if covered != q.N {
		t.Fatalf("modules cover %d of %d variables", covered, q.N)
	}
	if res.Iters < 1 {
		t.Fatal("no iterations")
	}
}

func TestLearnRequiresModuleCount(t *testing.T) {
	q, _ := testData(t, 20, 16, 2)
	if _, err := Learn(q, score.DefaultPrior(), Params{}, prng.New(1)); err == nil {
		t.Fatal("Modules 0 accepted")
	}
}

func TestLearnDeterministic(t *testing.T) {
	q, _ := testData(t, 24, 20, 3)
	a, err := Learn(q, score.DefaultPrior(), Params{Modules: 3}, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(q, score.DefaultPrior(), Params{Modules: 3}, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) || a.Score != b.Score {
		t.Fatal("same seed gave different results")
	}
}

// TestParallelMatchesSequential: the parallel extension must learn exactly
// the sequential network (the same §4.2 contract as the Lemon-Tree engines).
func TestParallelMatchesSequential(t *testing.T) {
	q, _ := testData(t, 24, 20, 4)
	pr := score.DefaultPrior()
	par := Params{Modules: 3, MaxIters: 4}
	want, err := Learn(q, pr, par, prng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 5} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			got, err := LearnParallel(c, q, pr, par, prng.New(7))
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got.Assign, want.Assign) {
				t.Errorf("p=%d rank %d: assignment differs", p, c.Rank())
			}
			if got.Score != want.Score {
				t.Errorf("p=%d rank %d: score %v != %v", p, c.Rank(), got.Score, want.Score)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTreesRespectLeafConstraints(t *testing.T) {
	q, _ := testData(t, 24, 40, 5)
	par := Params{Modules: 3, MinLeaf: 5, MaxDepth: 3}
	res, err := Learn(q, score.DefaultPrior(), par, prng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range res.Modules {
		var walk func(n *TreeNode, depth int)
		walk = func(n *TreeNode, depth int) {
			if n == nil {
				return
			}
			if depth > 3 {
				t.Fatal("tree deeper than MaxDepth")
			}
			if n.Parent >= 0 {
				if len(n.Left.Obs) < 5 || len(n.Right.Obs) < 5 {
					t.Fatal("leaf below MinLeaf")
				}
				if len(n.Left.Obs)+len(n.Right.Obs) != len(n.Obs) {
					t.Fatal("children do not partition the node")
				}
				walk(n.Left, depth+1)
				walk(n.Right, depth+1)
			}
		}
		walk(mod.Tree, 0)
	}
}

// TestEMImprovesScore: the converged network must score at least as well
// as the first iteration's.
func TestEMImprovesScore(t *testing.T) {
	q, _ := testData(t, 36, 30, 6)
	pr := score.DefaultPrior()
	one, err := Learn(q, pr, Params{Modules: 3, MaxIters: 1}, prng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Learn(q, pr, Params{Modules: 3, MaxIters: 8}, prng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if full.Score < one.Score {
		t.Fatalf("more EM iterations worsened the score: %v -> %v", one.Score, full.Score)
	}
}

// TestRecoversStructure: on clean synthetic data, GENOMICA should group
// same-module variables well above chance.
func TestRecoversStructure(t *testing.T) {
	d, truth, err := synth.Generate(synth.Config{
		N: 40, M: 60, Regulators: 4, Modules: 3, Noise: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	res, err := Learn(q, score.DefaultPrior(), Params{Modules: 3, MaxIters: 8}, prng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	ari := result.AdjustedRandIndex(truth.ModuleOf, res.Assign)
	if ari < 0.2 {
		t.Fatalf("ARI %.3f below 0.2", ari)
	}
}

func TestTreeParents(t *testing.T) {
	tree := &TreeNode{
		Parent: 3,
		Left:   &TreeNode{Parent: -1},
		Right: &TreeNode{
			Parent: 3, // repeated parent must be deduplicated
			Left:   &TreeNode{Parent: -1},
			Right:  &TreeNode{Parent: 5, Left: &TreeNode{Parent: -1}, Right: &TreeNode{Parent: -1}},
		},
	}
	got := treeParents(tree)
	if !reflect.DeepEqual(got, []int{3, 5}) {
		t.Fatalf("parents = %v", got)
	}
}

func TestLeaves(t *testing.T) {
	leaf := &TreeNode{Parent: -1, Obs: []int{1}}
	if got := leaf.Leaves(); len(got) != 1 || got[0] != leaf {
		t.Fatal("single leaf")
	}
	tree := &TreeNode{
		Parent: 0,
		Left:   &TreeNode{Parent: -1, Obs: []int{1}},
		Right:  &TreeNode{Parent: -1, Obs: []int{2}},
	}
	if got := tree.Leaves(); len(got) != 2 {
		t.Fatalf("%d leaves", len(got))
	}
}

func BenchmarkLearn(b *testing.B) {
	q, _ := testData(b, 40, 30, 1)
	pr := score.DefaultPrior()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(q, pr, Params{Modules: 3, MaxIters: 3}, prng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
