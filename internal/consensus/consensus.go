// Package consensus implements the second Lemon-Tree task (§2.2.2): turning
// an ensemble of sampled variable clusterings into a single consensus
// partition via the hypergraph spectral method of Michoel & Nachtergaele
// (2012). The co-occurrence frequency matrix (built by ganesh.CoOccurrence,
// thresholded) is peeled greedily: the dominant (Perron) eigenvector of the
// matrix restricted to the unassigned variables points at the densest
// cluster; its strongest prefix is extracted as a cluster and the process
// repeats until the dominant eigenvalue falls below a cutoff or too few
// variables remain.
//
// The task is a negligible fraction of total run time (<0.04 % in the
// paper), so as in the paper it runs sequentially — replicated on all ranks
// in the parallel pipeline.
package consensus

import (
	"fmt"
	"sort"

	"parsimone/internal/comm"
	"parsimone/internal/matrix"
	"parsimone/internal/obs"
)

// Params configures consensus clustering.
//
// # Zero-value sentinels
//
// Every zero-valued field selects its documented default — an explicit zero
// cannot be configured. Count fields (MinClusterSize, MaxIter) and the
// positivity-requiring knobs (SupportFrac, Tol) treat any value ≤ 0 as "use
// the default". MinEigenvalue is different: 0 selects the default 1.0, but
// a *negative* value is honored and disables the eigenvalue stopping rule —
// peeling then continues until an extraction comes up short (the dominant
// eigenvalue of a non-negative matrix is never below a negative cutoff).
// TestParamsWithDefaults pins all of this.
type Params struct {
	// MinClusterSize is the smallest cluster kept as a module; smaller
	// extractions stop the peeling. Values ≤ 0 select the default, 2.
	MinClusterSize int
	// MinEigenvalue stops peeling once the dominant eigenvalue of the
	// remaining matrix drops below it. 0 selects the default, 1.0 (an
	// isolated variable contributes exactly 1 through its unit diagonal);
	// a negative value disables this stopping rule.
	MinEigenvalue float64
	// SupportFrac is the eigenvector support cut: only variables whose
	// Perron-vector component is at least SupportFrac times the largest
	// component are candidates for the extracted cluster. Values ≤ 0
	// select the default, 0.5.
	SupportFrac float64
	// MaxIter and Tol control the power iteration. Values ≤ 0 select the
	// defaults, 1000 and 1e-10.
	MaxIter int
	Tol     float64
	// Hooks receives one consensus.extract event per peeling step (nil
	// disables). The parallel pipeline attaches it on rank 0 only: the
	// task is replicated identically on every rank, so a single source
	// keeps the merged event stream free of p-fold duplicates.
	Hooks *obs.Hooks
	// Cancel is the run's cooperative cancellation signal, polled once per
	// peeling round. Unlike Hooks it is attached on every rank — the task
	// is replicated, and each rank polls its own per-rank Canceler at the
	// same deterministic point, so no collective is reordered (DESIGN §13).
	Cancel *comm.Canceler
}

func (p Params) withDefaults() Params {
	if p.MinClusterSize <= 0 {
		p.MinClusterSize = 2
	}
	//parsivet:floateq — zero-value sentinel for "option unset", never a computed float
	if p.MinEigenvalue == 0 {
		p.MinEigenvalue = 1.0
	}
	if p.SupportFrac <= 0 {
		p.SupportFrac = 0.5
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 1000
	}
	if p.Tol <= 0 {
		p.Tol = 1e-10
	}
	return p
}

// Cluster extracts consensus clusters from the n×n co-occurrence matrix a
// (row-major, symmetric, non-negative; see ganesh.CoOccurrence). It returns
// the clusters, each sorted ascending, ordered by extraction (densest
// first). Variables not in any returned cluster are not part of any module,
// matching Lemon-Tree's behaviour of dropping weakly co-clustered genes.
//
// A malformed matrix (wrong size, NaN, asymmetric — matrix.FromDense's
// checks) and a power iteration that fails to converge within MaxIter both
// return an error; the clusters extracted before a convergence failure are
// returned alongside it. Earlier versions panicked on the former and
// silently used the unconverged eigenpair for the latter, which could peel
// a garbage cluster without any trace of the failure.
func Cluster(n int, a []float64, par Params) ([][]int, error) {
	par = par.withDefaults()
	sym, err := matrix.FromDense(n, a)
	if err != nil {
		return nil, fmt.Errorf("consensus: %w", err)
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var clusters [][]int
	for len(remaining) >= par.MinClusterSize {
		par.Cancel.Check()
		sub := sym.Submatrix(remaining)
		res := matrix.PowerIteration(sub, par.MaxIter, par.Tol)
		if !res.Converged {
			par.Hooks.Emit(obs.Event{Type: obs.TypeConsensus, Consensus: &obs.ConsensusInfo{
				Remaining: len(remaining), Eigenvalue: res.Value, Iters: res.Iters,
			}})
			return clusters, fmt.Errorf(
				"consensus: power iteration did not converge within %d iterations on %d remaining variables (eigenvalue estimate %g, tol %g)",
				par.MaxIter, len(remaining), res.Value, par.Tol)
		}
		extracted := 0
		var members []int
		if res.Value >= par.MinEigenvalue {
			members = extract(sub, res.Vector, par.MinClusterSize, par.SupportFrac)
			if len(members) >= par.MinClusterSize {
				extracted = len(members)
			}
		}
		par.Hooks.Emit(obs.Event{Type: obs.TypeConsensus, Consensus: &obs.ConsensusInfo{
			Remaining: len(remaining), Eigenvalue: res.Value, Iters: res.Iters,
			Converged: true, Extracted: extracted,
		}})
		if extracted == 0 {
			break
		}
		cluster := make([]int, len(members))
		inCluster := make(map[int]bool, len(members))
		for i, local := range members {
			cluster[i] = remaining[local]
			inCluster[local] = true
		}
		sort.Ints(cluster)
		clusters = append(clusters, cluster)
		var rest []int
		for local, global := range remaining {
			if !inCluster[local] {
				rest = append(rest, global)
			}
		}
		remaining = rest
	}
	return clusters, nil
}

// extract selects the cluster indicated by the dominant eigenvector v of the
// submatrix sub: variables sorted by eigenvector weight (descending, index
// ascending on ties, which keeps the result deterministic), cut at the
// prefix maximizing the within-prefix *co-occurrence* density — the
// off-diagonal weight per member, W_off(k)/k. Excluding the diagonal keeps
// variables that never co-cluster with anything from forming spurious
// modules (each variable trivially co-occurs with itself).
func extract(sub *matrix.Sym, v []float64, minSize int, supportFrac float64) []int {
	n := sub.N
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		//parsivet:floateq — exact compare of one eigenvector's own entries; ties break on index
		if v[order[a]] != v[order[b]] {
			return v[order[a]] > v[order[b]]
		}
		return order[a] < order[b]
	})
	// Incrementally grow the prefix, tracking within-prefix off-diagonal
	// weight.
	var within float64
	bestK, bestDensity := 0, 0.0
	cut := supportFrac * v[order[0]]
	for k := 1; k <= n; k++ {
		i := order[k-1]
		if v[i] <= 0 || v[i] < cut {
			// The Perron vector's support has ended; variables beyond
			// it belong to other clusters or to none.
			break
		}
		for t := 0; t < k-1; t++ {
			within += 2 * sub.At(i, order[t])
		}
		density := within / float64(k)
		if k >= minSize && density > bestDensity {
			bestDensity = density
			bestK = k
		}
	}
	return order[:bestK]
}
