// Package consensus implements the second Lemon-Tree task (§2.2.2): turning
// an ensemble of sampled variable clusterings into a single consensus
// partition via the hypergraph spectral method of Michoel & Nachtergaele
// (2012). The co-occurrence frequency matrix (built by ganesh.CoOccurrence,
// thresholded) is peeled greedily: the dominant (Perron) eigenvector of the
// matrix restricted to the unassigned variables points at the densest
// cluster; its strongest prefix is extracted as a cluster and the process
// repeats until the dominant eigenvalue falls below a cutoff or too few
// variables remain.
//
// The task is a negligible fraction of total run time (<0.04 % in the
// paper), so as in the paper it runs sequentially — replicated on all ranks
// in the parallel pipeline.
package consensus

import (
	"sort"

	"parsimone/internal/matrix"
)

// Params configures consensus clustering.
type Params struct {
	// MinClusterSize is the smallest cluster kept as a module; smaller
	// extractions stop the peeling. Default 2.
	MinClusterSize int
	// MinEigenvalue stops peeling once the dominant eigenvalue of the
	// remaining matrix drops below it. Default 1.0 (an isolated variable
	// contributes exactly 1 through its unit diagonal).
	MinEigenvalue float64
	// SupportFrac is the eigenvector support cut: only variables whose
	// Perron-vector component is at least SupportFrac times the largest
	// component are candidates for the extracted cluster. Default 0.5.
	SupportFrac float64
	// MaxIter and Tol control the power iteration. Defaults 1000, 1e-10.
	MaxIter int
	Tol     float64
}

func (p Params) withDefaults() Params {
	if p.MinClusterSize == 0 {
		p.MinClusterSize = 2
	}
	if p.MinEigenvalue == 0 {
		p.MinEigenvalue = 1.0
	}
	if p.SupportFrac == 0 {
		p.SupportFrac = 0.5
	}
	if p.MaxIter == 0 {
		p.MaxIter = 1000
	}
	if p.Tol == 0 {
		p.Tol = 1e-10
	}
	return p
}

// Cluster extracts consensus clusters from the n×n co-occurrence matrix a
// (row-major, symmetric, non-negative; see ganesh.CoOccurrence). It returns
// the clusters, each sorted ascending, ordered by extraction (densest
// first). Variables not in any returned cluster are not part of any module,
// matching Lemon-Tree's behaviour of dropping weakly co-clustered genes.
func Cluster(n int, a []float64, par Params) [][]int {
	par = par.withDefaults()
	sym, err := matrix.FromDense(n, a)
	if err != nil {
		panic("consensus: " + err.Error())
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var clusters [][]int
	for len(remaining) >= par.MinClusterSize {
		sub := sym.Submatrix(remaining)
		res := matrix.PowerIteration(sub, par.MaxIter, par.Tol)
		if res.Value < par.MinEigenvalue {
			break
		}
		members := extract(sub, res.Vector, par.MinClusterSize, par.SupportFrac)
		if len(members) < par.MinClusterSize {
			break
		}
		cluster := make([]int, len(members))
		inCluster := make(map[int]bool, len(members))
		for i, local := range members {
			cluster[i] = remaining[local]
			inCluster[local] = true
		}
		sort.Ints(cluster)
		clusters = append(clusters, cluster)
		var rest []int
		for local, global := range remaining {
			if !inCluster[local] {
				rest = append(rest, global)
			}
		}
		remaining = rest
	}
	return clusters
}

// extract selects the cluster indicated by the dominant eigenvector v of the
// submatrix sub: variables sorted by eigenvector weight (descending, index
// ascending on ties, which keeps the result deterministic), cut at the
// prefix maximizing the within-prefix *co-occurrence* density — the
// off-diagonal weight per member, W_off(k)/k. Excluding the diagonal keeps
// variables that never co-cluster with anything from forming spurious
// modules (each variable trivially co-occurs with itself).
func extract(sub *matrix.Sym, v []float64, minSize int, supportFrac float64) []int {
	n := sub.N
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if v[order[a]] != v[order[b]] {
			return v[order[a]] > v[order[b]]
		}
		return order[a] < order[b]
	})
	// Incrementally grow the prefix, tracking within-prefix off-diagonal
	// weight.
	var within float64
	bestK, bestDensity := 0, 0.0
	cut := supportFrac * v[order[0]]
	for k := 1; k <= n; k++ {
		i := order[k-1]
		if v[i] <= 0 || v[i] < cut {
			// The Perron vector's support has ended; variables beyond
			// it belong to other clusters or to none.
			break
		}
		for t := 0; t < k-1; t++ {
			within += 2 * sub.At(i, order[t])
		}
		density := within / float64(k)
		if k >= minSize && density > bestDensity {
			bestDensity = density
			bestK = k
		}
	}
	return order[:bestK]
}
