package consensus

import (
	"reflect"
	"strings"
	"testing"

	"parsimone/internal/ganesh"
	"parsimone/internal/obs"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/synth"
)

// mustCluster fails the test on any Cluster error.
func mustCluster(t *testing.T, n int, a []float64, par Params) [][]int {
	t.Helper()
	got, err := Cluster(n, a, par)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// block builds a co-occurrence matrix with perfect blocks.
func block(n int, groups [][]int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	for _, g := range groups {
		for _, i := range g {
			for _, j := range g {
				a[i*n+j] = 1
			}
		}
	}
	return a
}

func TestClusterPerfectBlocks(t *testing.T) {
	a := block(7, [][]int{{0, 1, 2, 3}, {4, 5, 6}})
	got := mustCluster(t, 7, a, Params{})
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestClusterExtractsDensestFirst(t *testing.T) {
	// The larger clique has the larger Perron value and must come first
	// even when its indices come later.
	a := block(9, [][]int{{0, 1}, {2, 3, 4, 5, 6}})
	got := mustCluster(t, 9, a, Params{})
	if len(got) < 2 {
		t.Fatalf("got %v", got)
	}
	if !reflect.DeepEqual(got[0], []int{2, 3, 4, 5, 6}) {
		t.Fatalf("densest cluster not first: %v", got)
	}
}

func TestClusterNoisyBlocks(t *testing.T) {
	// Strong blocks plus weak off-block noise must still be recovered.
	// The blocks have slightly different strength so the Perron vector
	// localizes (exactly symmetric blocks are a degenerate tie).
	n := 8
	a := block(n, [][]int{{0, 1, 2}})
	for _, i := range []int{3, 4, 5} {
		for _, j := range []int{3, 4, 5} {
			if i != j {
				a[i*n+j] = 0.8
			}
		}
	}
	// Residual off-block noise: small, as after the co-occurrence
	// threshold of §2.2.2 (that threshold exists precisely to remove
	// strong spurious coupling).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && a[i*n+j] == 0 {
				a[i*n+j] = 0.05
			}
		}
	}
	got := mustCluster(t, n, a, Params{})
	if len(got) < 2 {
		t.Fatalf("got %v", got)
	}
	if !reflect.DeepEqual(got[0], []int{0, 1, 2}) && !reflect.DeepEqual(got[0], []int{3, 4, 5}) {
		t.Fatalf("first cluster %v not a true block", got[0])
	}
}

func TestClusterEmptyMatrix(t *testing.T) {
	a := make([]float64, 16) // all zero — no co-occurrence at all
	got := mustCluster(t, 4, a, Params{})
	if len(got) != 0 {
		t.Fatalf("zero matrix produced clusters: %v", got)
	}
}

func TestClusterSingletonsNotEmitted(t *testing.T) {
	// Identity matrix: every variable only co-occurs with itself; with
	// MinClusterSize 2 nothing is a module.
	n := 5
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	got := mustCluster(t, n, a, Params{})
	if len(got) != 0 {
		t.Fatalf("identity matrix produced clusters: %v", got)
	}
}

func TestClusterMinSizeRespected(t *testing.T) {
	a := block(6, [][]int{{0, 1, 2, 3}, {4, 5}})
	got := mustCluster(t, 6, a, Params{MinClusterSize: 3})
	for _, c := range got {
		if len(c) < 3 {
			t.Fatalf("cluster %v below min size", c)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	a := block(10, [][]int{{0, 3, 5}, {1, 2, 8}, {4, 6, 7, 9}})
	x := mustCluster(t, 10, a, Params{})
	y := mustCluster(t, 10, a, Params{})
	if !reflect.DeepEqual(x, y) {
		t.Fatal("consensus clustering not deterministic")
	}
}

func TestClusterErrorsOnAsymmetric(t *testing.T) {
	a := make([]float64, 4)
	a[1] = 0.5 // (0,1) without (1,0)
	if _, err := Cluster(2, a, Params{}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestClusterErrorsOnWrongSize(t *testing.T) {
	if _, err := Cluster(3, make([]float64, 4), Params{}); err == nil {
		t.Fatal("wrong-size matrix accepted")
	}
}

func TestClusterNonConvergenceSurfaced(t *testing.T) {
	// A matrix whose dominant eigenvector needs more than one power step,
	// with MaxIter 1: the old code silently peeled a cluster from the
	// unconverged eigenpair; now the failure is an error plus an event.
	a := block(8, [][]int{{0, 1, 2}, {3, 4, 5}})
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && a[i*8+j] == 0 {
				a[i*8+j] = 0.05
			}
		}
	}
	rec := obs.NewRecorder(0)
	_, err := Cluster(8, a, Params{MaxIter: 1, Hooks: obs.NewHooks(rec, nil)})
	if err == nil || !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("non-convergence not surfaced: %v", err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events emitted")
	}
	last := evs[len(evs)-1]
	if last.Type != obs.TypeConsensus || last.Consensus.Converged {
		t.Fatalf("last event should record the unconverged step: %+v", last)
	}
	if err := obs.Validate(evs); err != nil {
		t.Fatal(err)
	}
}

func TestClusterEmitsExtractionEvents(t *testing.T) {
	a := block(7, [][]int{{0, 1, 2, 3}, {4, 5, 6}})
	rec := obs.NewRecorder(0)
	got, err := Cluster(7, a, Params{Hooks: obs.NewHooks(rec, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want one per peeling step: %+v", len(evs), evs)
	}
	if evs[0].Consensus.Extracted != 4 || evs[1].Consensus.Extracted != 3 {
		t.Fatalf("extraction sizes wrong: %+v", evs)
	}
	for _, ev := range evs {
		if !ev.Consensus.Converged || ev.Consensus.Iters <= 0 || ev.Consensus.Eigenvalue <= 0 {
			t.Fatalf("bad extraction event: %+v", ev)
		}
	}
	// Hooks never change the clusters themselves.
	if bare := mustCluster(t, 7, a, Params{}); !reflect.DeepEqual(bare, got) {
		t.Fatalf("hooks changed the result: %v vs %v", bare, got)
	}
}

// TestEndToEndWithGaneSH drives the real pipeline front half: sample
// clusterings with GaneSH, accumulate co-occurrence, extract consensus
// modules, and check they reflect the synthetic ground truth.
func TestEndToEndWithGaneSH(t *testing.T) {
	d, truth, err := synth.Generate(synth.Config{
		N: 36, M: 40, Regulators: 4, Modules: 3, Noise: 0.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	pr := score.DefaultPrior()
	var ensembles [][][]int
	for gRun := 0; gRun < 3; gRun++ {
		cc := ganesh.Run(q, pr, ganesh.Params{Updates: 2}, prng.New(uint64(100+gRun)), nil)
		ensembles = append(ensembles, cc.VarSnapshot())
	}
	a := ganesh.CoOccurrence(q.N, ensembles, 0.35)
	modules := mustCluster(t, q.N, a, Params{})
	if len(modules) == 0 {
		t.Fatal("no consensus modules found")
	}
	// Most pairs inside a consensus module should share a true module.
	var same, total int
	for _, mod := range modules {
		for ai := 0; ai < len(mod); ai++ {
			for bi := ai + 1; bi < len(mod); bi++ {
				i, j := mod[ai], mod[bi]
				if truth.ModuleOf[i] >= 0 && truth.ModuleOf[i] == truth.ModuleOf[j] {
					same++
				}
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("modules are all singletons")
	}
	if frac := float64(same) / float64(total); frac < 0.6 {
		t.Fatalf("consensus module purity %.2f below 0.6 (modules %v)", frac, modules)
	}
}

// TestParamsWithDefaults pins the zero-value sentinel semantics documented
// on Params: zero and negative counts select defaults, negative
// MinEigenvalue is honored (disables the eigenvalue stop), negative
// Tol/SupportFrac fall back to defaults (they must be positive).
func TestParamsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Params
		want Params
	}{
		{"zero value", Params{},
			Params{MinClusterSize: 2, MinEigenvalue: 1.0, SupportFrac: 0.5, MaxIter: 1000, Tol: 1e-10}},
		{"negative counts fall back", Params{MinClusterSize: -3, MaxIter: -1},
			Params{MinClusterSize: 2, MinEigenvalue: 1.0, SupportFrac: 0.5, MaxIter: 1000, Tol: 1e-10}},
		{"negative eigenvalue honored", Params{MinEigenvalue: -1},
			Params{MinClusterSize: 2, MinEigenvalue: -1, SupportFrac: 0.5, MaxIter: 1000, Tol: 1e-10}},
		{"non-positive tol and support fall back", Params{Tol: -1e-3, SupportFrac: -0.1},
			Params{MinClusterSize: 2, MinEigenvalue: 1.0, SupportFrac: 0.5, MaxIter: 1000, Tol: 1e-10}},
		{"explicit values kept", Params{MinClusterSize: 5, MinEigenvalue: 2, SupportFrac: 0.7, MaxIter: 10, Tol: 1e-6},
			Params{MinClusterSize: 5, MinEigenvalue: 2, SupportFrac: 0.7, MaxIter: 10, Tol: 1e-6}},
	}
	for _, tc := range cases {
		if got := tc.in.withDefaults(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestClusterNegativeMinEigenvalueDisablesStop pins the documented
// "disabled" semantics: with MinEigenvalue < 0 peeling continues past the
// default cutoff and stops only when an extraction comes up short.
func TestClusterNegativeMinEigenvalueDisablesStop(t *testing.T) {
	// Two weak blocks whose dominant eigenvalues sit below the default
	// cutoff of 1.0 once the diagonal is down-weighted.
	n := 4
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 0.3
	}
	a[0*n+1], a[1*n+0] = 0.3, 0.3
	a[2*n+3], a[3*n+2] = 0.3, 0.3
	if got := mustCluster(t, n, a, Params{}); len(got) != 0 {
		t.Fatalf("default cutoff should reject weak blocks, got %v", got)
	}
	got, err := Cluster(n, a, Params{MinEigenvalue: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("disabled eigenvalue stop still rejected every cluster")
	}
}
