package consensus

import (
	"reflect"
	"testing"

	"parsimone/internal/ganesh"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/synth"
)

// block builds a co-occurrence matrix with perfect blocks.
func block(n int, groups [][]int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	for _, g := range groups {
		for _, i := range g {
			for _, j := range g {
				a[i*n+j] = 1
			}
		}
	}
	return a
}

func TestClusterPerfectBlocks(t *testing.T) {
	a := block(7, [][]int{{0, 1, 2, 3}, {4, 5, 6}})
	got := Cluster(7, a, Params{})
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestClusterExtractsDensestFirst(t *testing.T) {
	// The larger clique has the larger Perron value and must come first
	// even when its indices come later.
	a := block(9, [][]int{{0, 1}, {2, 3, 4, 5, 6}})
	got := Cluster(9, a, Params{})
	if len(got) < 2 {
		t.Fatalf("got %v", got)
	}
	if !reflect.DeepEqual(got[0], []int{2, 3, 4, 5, 6}) {
		t.Fatalf("densest cluster not first: %v", got)
	}
}

func TestClusterNoisyBlocks(t *testing.T) {
	// Strong blocks plus weak off-block noise must still be recovered.
	// The blocks have slightly different strength so the Perron vector
	// localizes (exactly symmetric blocks are a degenerate tie).
	n := 8
	a := block(n, [][]int{{0, 1, 2}})
	for _, i := range []int{3, 4, 5} {
		for _, j := range []int{3, 4, 5} {
			if i != j {
				a[i*n+j] = 0.8
			}
		}
	}
	// Residual off-block noise: small, as after the co-occurrence
	// threshold of §2.2.2 (that threshold exists precisely to remove
	// strong spurious coupling).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && a[i*n+j] == 0 {
				a[i*n+j] = 0.05
			}
		}
	}
	got := Cluster(n, a, Params{})
	if len(got) < 2 {
		t.Fatalf("got %v", got)
	}
	if !reflect.DeepEqual(got[0], []int{0, 1, 2}) && !reflect.DeepEqual(got[0], []int{3, 4, 5}) {
		t.Fatalf("first cluster %v not a true block", got[0])
	}
}

func TestClusterEmptyMatrix(t *testing.T) {
	a := make([]float64, 16) // all zero — no co-occurrence at all
	got := Cluster(4, a, Params{})
	if len(got) != 0 {
		t.Fatalf("zero matrix produced clusters: %v", got)
	}
}

func TestClusterSingletonsNotEmitted(t *testing.T) {
	// Identity matrix: every variable only co-occurs with itself; with
	// MinClusterSize 2 nothing is a module.
	n := 5
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	got := Cluster(n, a, Params{})
	if len(got) != 0 {
		t.Fatalf("identity matrix produced clusters: %v", got)
	}
}

func TestClusterMinSizeRespected(t *testing.T) {
	a := block(6, [][]int{{0, 1, 2, 3}, {4, 5}})
	got := Cluster(6, a, Params{MinClusterSize: 3})
	for _, c := range got {
		if len(c) < 3 {
			t.Fatalf("cluster %v below min size", c)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	a := block(10, [][]int{{0, 3, 5}, {1, 2, 8}, {4, 6, 7, 9}})
	x := Cluster(10, a, Params{})
	y := Cluster(10, a, Params{})
	if !reflect.DeepEqual(x, y) {
		t.Fatal("consensus clustering not deterministic")
	}
}

func TestClusterPanicsOnAsymmetric(t *testing.T) {
	a := make([]float64, 4)
	a[1] = 0.5 // (0,1) without (1,0)
	defer func() {
		if recover() == nil {
			t.Fatal("asymmetric matrix accepted")
		}
	}()
	Cluster(2, a, Params{})
}

// TestEndToEndWithGaneSH drives the real pipeline front half: sample
// clusterings with GaneSH, accumulate co-occurrence, extract consensus
// modules, and check they reflect the synthetic ground truth.
func TestEndToEndWithGaneSH(t *testing.T) {
	d, truth, err := synth.Generate(synth.Config{
		N: 36, M: 40, Regulators: 4, Modules: 3, Noise: 0.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	pr := score.DefaultPrior()
	var ensembles [][][]int
	for gRun := 0; gRun < 3; gRun++ {
		cc := ganesh.Run(q, pr, ganesh.Params{Updates: 2}, prng.New(uint64(100+gRun)), nil)
		ensembles = append(ensembles, cc.VarSnapshot())
	}
	a := ganesh.CoOccurrence(q.N, ensembles, 0.35)
	modules := Cluster(q.N, a, Params{})
	if len(modules) == 0 {
		t.Fatal("no consensus modules found")
	}
	// Most pairs inside a consensus module should share a true module.
	var same, total int
	for _, mod := range modules {
		for ai := 0; ai < len(mod); ai++ {
			for bi := ai + 1; bi < len(mod); bi++ {
				i, j := mod[ai], mod[bi]
				if truth.ModuleOf[i] >= 0 && truth.ModuleOf[i] == truth.ModuleOf[j] {
					same++
				}
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("modules are all singletons")
	}
	if frac := float64(same) / float64(total); frac < 0.6 {
		t.Fatalf("consensus module purity %.2f below 0.6 (modules %v)", frac, modules)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.MinClusterSize != 2 || p.MinEigenvalue != 1.0 || p.MaxIter != 1000 || p.Tol != 1e-10 {
		t.Fatalf("defaults: %+v", p)
	}
}
