package tree

import (
	"reflect"
	"testing"

	"parsimone/internal/comm"
	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/synth"
)

func testData(t testing.TB, n, m int, seed uint64) *score.QData {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{N: n, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	return score.QuantizeData(d)
}

// evenClusters partitions observations 0..m-1 into k equal slabs.
func evenClusters(m, k int) [][]int {
	out := make([][]int, k)
	for j := 0; j < m; j++ {
		out[j*k/m] = append(out[j*k/m], j)
	}
	return out
}

func TestBuildSingleCluster(t *testing.T) {
	q := testData(t, 6, 10, 1)
	tr := Build(q, score.DefaultPrior(), []int{0, 1}, evenClusters(10, 1), nil)
	if !tr.Root.IsLeaf() {
		t.Fatal("single cluster must give a single leaf root")
	}
	if len(tr.Root.Obs) != 10 {
		t.Fatalf("root covers %d of 10", len(tr.Root.Obs))
	}
	if err := tr.CheckInvariants(q); err != nil {
		t.Fatal(err)
	}
}

func TestBuildStructure(t *testing.T) {
	q := testData(t, 8, 20, 2)
	clusters := evenClusters(20, 5)
	tr := Build(q, score.DefaultPrior(), []int{1, 3, 5}, clusters, nil)
	if err := tr.CheckInvariants(q); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 5 {
		t.Fatalf("%d leaves, want 5", got)
	}
	if got := len(tr.InternalNodes()); got != 4 {
		t.Fatalf("%d internal nodes, want 4", got)
	}
	if len(tr.Root.Obs) != 20 {
		t.Fatal("root must cover all observations")
	}
}

func TestLeavesPreserveClusters(t *testing.T) {
	q := testData(t, 6, 12, 3)
	clusters := [][]int{{0, 3, 6}, {1, 4, 7, 9}, {2, 5, 8, 10, 11}}
	tr := Build(q, score.DefaultPrior(), []int{0, 2}, clusters, nil)
	leaves := tr.Leaves()
	got := map[int]bool{}
	for _, l := range leaves {
		got[len(l.Obs)] = true
	}
	if !got[3] || !got[4] || !got[5] {
		t.Fatalf("leaf sizes lost: %v", leaves)
	}
}

func TestInternalNodesPreOrder(t *testing.T) {
	q := testData(t, 4, 8, 4)
	tr := Build(q, score.DefaultPrior(), []int{0, 1}, evenClusters(8, 4), nil)
	nodes := tr.InternalNodes()
	if len(nodes) == 0 || nodes[0] != tr.Root {
		t.Fatal("pre-order must start at the root")
	}
}

// TestMergePrefersCoherentNeighbors: observation clusters drawn from two
// regimes must merge within regimes first.
func TestMergePrefersCoherentNeighbors(t *testing.T) {
	d, _, err := synth.Generate(synth.Config{N: 10, M: 40, Regulators: 2, Modules: 2, Noise: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	q := score.QuantizeData(d)
	// Hand-build 4 clusters: two from the low regime of variable 2's
	// module, two from the high regime, interleaved so only scores (not
	// order) can pair them.
	var lo, hi []int
	for j := 0; j < q.M; j++ {
		if q.At(2, j) < 0 {
			lo = append(lo, j)
		} else {
			hi = append(hi, j)
		}
	}
	if len(lo) < 4 || len(hi) < 4 {
		t.Skip("degenerate regime split")
	}
	clusters := [][]int{lo[:len(lo)/2], lo[len(lo)/2:], hi[:len(hi)/2], hi[len(hi)/2:]}
	tr := Build(q, score.DefaultPrior(), []int{2, 3, 4}, clusters, nil)
	if err := tr.CheckInvariants(q); err != nil {
		t.Fatal(err)
	}
	// The root split should separate lo from hi: one child holds all lo.
	left := tr.Root.Left.Obs
	isLo := map[int]bool{}
	for _, j := range lo {
		isLo[j] = true
	}
	loCount := 0
	for _, j := range left {
		if isLo[j] {
			loCount++
		}
	}
	if frac := float64(loCount) / float64(len(left)); frac > 0.2 && frac < 0.8 {
		t.Fatalf("root split mixes regimes: %.2f of left child is low-regime", frac)
	}
}

func TestBuildDeterministic(t *testing.T) {
	q := testData(t, 8, 16, 6)
	clusters := evenClusters(16, 6)
	a := Build(q, score.DefaultPrior(), []int{0, 1, 2}, clusters, nil)
	b := Build(q, score.DefaultPrior(), []int{0, 1, 2}, clusters, nil)
	if !reflect.DeepEqual(shape(a.Root), shape(b.Root)) {
		t.Fatal("builds differ")
	}
}

// shape serializes a tree's structure for comparison.
func shape(n *Node) [][]int {
	if n == nil {
		return nil
	}
	out := [][]int{n.Obs}
	out = append(out, shape(n.Left)...)
	out = append(out, shape(n.Right)...)
	return out
}

// TestBuildParallelMatchesSequential: the §4.2 contract for tree building.
func TestBuildParallelMatchesSequential(t *testing.T) {
	q := testData(t, 10, 24, 7)
	pr := score.DefaultPrior()
	vars := []int{1, 4, 7}
	clusters := evenClusters(24, 8)
	want := shape(Build(q, pr, vars, clusters, nil).Root)
	for _, p := range []int{1, 2, 3, 5, 8} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			tr := BuildParallel(c, q, pr, vars, clusters)
			if !reflect.DeepEqual(shape(tr.Root), want) {
				t.Errorf("p=%d rank %d tree differs", p, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	q := testData(t, 4, 4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty cluster list")
		}
	}()
	Build(q, score.DefaultPrior(), []int{0}, nil, nil)
}

// TestBuildWithGaneSHClusters drives the real Algorithm 4 front half:
// GaneSH-sampled observation clusterings feed the tree builder.
func TestBuildWithGaneSHClusters(t *testing.T) {
	q := testData(t, 12, 25, 9)
	pr := score.DefaultPrior()
	// Lazy import cycle avoidance: sample clusters with a local Gibbs-free
	// partition (random) — the integration with GaneSH proper is tested in
	// the module package.
	g := prng.New(3)
	clusters := make([][]int, 5)
	for j := 0; j < q.M; j++ {
		c := g.Intn(5)
		clusters[c] = append(clusters[c], j)
	}
	var nonEmpty [][]int
	for _, cl := range clusters {
		if len(cl) > 0 {
			nonEmpty = append(nonEmpty, cl)
		}
	}
	tr := Build(q, pr, []int{0, 1, 2, 3}, nonEmpty, nil)
	if err := tr.CheckInvariants(q); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	q := testData(b, 20, 100, 1)
	clusters := evenClusters(100, 10)
	pr := score.DefaultPrior()
	vars := []int{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(q, pr, vars, clusters, nil)
	}
}
