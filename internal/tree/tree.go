// Package tree builds the binary regression-tree structures of the
// module-learning task (§2.2.3 step 1, Algorithm 4 lines 10–18): the leaves
// are an observation clustering sampled by GaneSH, and internal nodes are
// created by Bayesian hierarchical agglomerative clustering — repeatedly
// merging the pair of *consecutive* subtrees whose merged block has the best
// score gain, until a single root remains.
//
// The parallel variant partitions the per-round merge-score evaluations over
// ranks and combines them with an all-reduce max (score, then lowest index
// on ties), exactly mirroring Algorithm 4; results are identical to the
// sequential variant for every rank count because every candidate score is
// computed by exactly one rank and compared exactly.
package tree

import (
	"fmt"
	"sort"

	"parsimone/internal/comm"
	"parsimone/internal/score"
	"parsimone/internal/trace"
)

// Node is a node of a binary regression tree over observations.
type Node struct {
	// Obs is the sorted set of observations at the node.
	Obs []int
	// Stats covers the module's variables × Obs.
	Stats score.Stats
	// Left and Right are nil for leaves.
	Left, Right *Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a binary regression tree for one module.
type Tree struct {
	Root *Node
	// Vars are the module's variables the tree was built for.
	Vars []int
}

// InternalNodes returns the non-leaf nodes in pre-order (root first) — the
// canonical enumeration order used by split assignment.
func (t *Tree) InternalNodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		out = append(out, n)
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// Leaves returns the leaf nodes in pre-order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	return out
}

// CheckInvariants verifies the structural tree invariants: every internal
// node's observation set is the disjoint union of its children's, statistics
// match a recomputation, and the root covers every leaf observation exactly
// once.
func (t *Tree) CheckInvariants(q *score.QData) error {
	var walk func(n *Node) error
	walk = func(n *Node) error {
		var want score.Stats
		for _, x := range t.Vars {
			row := q.Row(x)
			for _, j := range n.Obs {
				want.Add(row[j])
			}
		}
		if n.Stats != want {
			return fmt.Errorf("tree: node stats %+v, recomputed %+v", n.Stats, want)
		}
		if n.IsLeaf() {
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("tree: internal node with a single child")
		}
		if len(n.Left.Obs)+len(n.Right.Obs) != len(n.Obs) {
			return fmt.Errorf("tree: child observation counts %d+%d != %d",
				len(n.Left.Obs), len(n.Right.Obs), len(n.Obs))
		}
		union := map[int]bool{}
		for _, j := range n.Left.Obs {
			union[j] = true
		}
		for _, j := range n.Right.Obs {
			if union[j] {
				return fmt.Errorf("tree: observation %d in both children", j)
			}
			union[j] = true
		}
		for _, j := range n.Obs {
			if !union[j] {
				return fmt.Errorf("tree: observation %d lost in children", j)
			}
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	return walk(t.Root)
}

// PhaseBuild is the work-recording phase name.
const PhaseBuild = "tree/build"

const logMLCost = 8

// leafNodes creates the initial subtree list from an observation clustering
// (canonical order: as given, which snapshots order by smallest member).
func leafNodes(q *score.QData, vars []int, clusters [][]int) []*Node {
	leaves := make([]*Node, len(clusters))
	for i, cl := range clusters {
		obs := append([]int(nil), cl...)
		sort.Ints(obs)
		var s score.Stats
		for _, x := range vars {
			row := q.Row(x)
			for _, j := range obs {
				s.Add(row[j])
			}
		}
		leaves[i] = &Node{Obs: obs, Stats: s}
	}
	return leaves
}

// mergeGain is the Bayesian merge score of consecutive subtrees a and b.
func mergeGain(pr score.Prior, a, b *Node) float64 {
	return pr.LogML(a.Stats.Plus(b.Stats)) - pr.LogML(a.Stats) - pr.LogML(b.Stats)
}

// merge creates the parent of two consecutive subtrees.
func merge(a, b *Node) *Node {
	obs := make([]int, 0, len(a.Obs)+len(b.Obs))
	obs = append(obs, a.Obs...)
	obs = append(obs, b.Obs...)
	sort.Ints(obs)
	return &Node{Obs: obs, Stats: a.Stats.Plus(b.Stats), Left: a, Right: b}
}

// scoredIndex pairs a merge score with its pair index for exact max
// reduction (higher score wins; lower index on ties).
type scoredIndex struct {
	Score float64
	Index int
}

func better(a, b scoredIndex) scoredIndex {
	if b.Index < 0 {
		return a
	}
	if a.Index < 0 {
		return b
	}
	//parsivet:floateq — Algorithm 4's exact max reduction: equal bits tie-break on index
	if a.Score > b.Score || (a.Score == b.Score && a.Index < b.Index) {
		return a
	}
	return b
}

// build runs the agglomeration; evalBlock returns the best merge candidate
// among pair indices [lo, hi) and is the hook the parallel variant uses to
// restrict evaluation to a rank's block before the cross-rank reduction.
func build(q *score.QData, pr score.Prior, vars []int, clusters [][]int,
	pick func(subtrees []*Node) int, wl *trace.Workload) *Tree {
	if len(clusters) == 0 {
		panic("tree: no observation clusters")
	}
	subtrees := leafNodes(q, vars, clusters)
	var ph *trace.Phase
	if wl != nil {
		ph = wl.Phase(PhaseBuild)
		if ph == nil {
			ph = wl.AddPhase(PhaseBuild)
			ph.PerSegmentBarrier = true
		}
	}
	round := 0
	for len(subtrees) > 1 {
		if ph != nil {
			for i := 0; i < len(subtrees)-1; i++ {
				ph.Items = append(ph.Items, trace.Item{Cost: 3 * logMLCost, Seg: round})
			}
			ph.Collectives++
			ph.Words += 2
			ph.SerialCost += float64(len(subtrees[0].Obs)) // merge bookkeeping
		}
		best := pick(subtrees)
		merged := merge(subtrees[best], subtrees[best+1])
		subtrees[best] = merged
		subtrees = append(subtrees[:best+1], subtrees[best+2:]...)
		round++
	}
	return &Tree{Root: subtrees[0], Vars: append([]int(nil), vars...)}
}

// Build constructs the regression tree sequentially.
func Build(q *score.QData, pr score.Prior, vars []int, clusters [][]int, wl *trace.Workload) *Tree {
	return build(q, pr, vars, clusters, func(subtrees []*Node) int {
		best := scoredIndex{Index: -1}
		for i := 0; i < len(subtrees)-1; i++ {
			best = better(best, scoredIndex{Score: mergeGain(pr, subtrees[i], subtrees[i+1]), Index: i})
		}
		return best.Index
	}, wl)
}

// BuildParallel constructs the identical tree with the per-round merge
// scores partitioned over c's ranks (Algorithm 4 lines 13–17).
func BuildParallel(c *comm.Comm, q *score.QData, pr score.Prior, vars []int, clusters [][]int) *Tree {
	return build(q, pr, vars, clusters, func(subtrees []*Node) int {
		pairs := len(subtrees) - 1
		lo, hi := comm.BlockRange(pairs, c.Size(), c.Rank())
		local := scoredIndex{Index: -1}
		for i := lo; i < hi; i++ {
			local = better(local, scoredIndex{Score: mergeGain(pr, subtrees[i], subtrees[i+1]), Index: i})
		}
		best := comm.AllReduce(c, local, better)
		return best.Index
	}, nil)
}
