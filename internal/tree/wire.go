// Binary (wire-format) codec for regression trees — the bulk of the
// per-module progress manifest (DESIGN §12).
//
// Only the tree *shape* and the *leaves* are encoded. CheckInvariants'
// contract — every internal node's observation set is the disjoint union of
// its children's and its statistics match a recomputation — means internal
// nodes are fully derivable: Obs is the sorted merge of the children's Obs
// and Stats is the exact integer sum of the children's Stats. Eliding them
// roughly halves the encoded size (a tree over m observations has m leaves
// and m−1 internal nodes whose observation lists sum to another full copy
// of the data per level).

package tree

import (
	"parsimone/internal/score"
	"parsimone/internal/wire"
)

// nodeTag encodes a node's role in the pre-order stream.
const (
	nodeTagNil      = 0
	nodeTagLeaf     = 1
	nodeTagInternal = 2
)

// maxWireDepth bounds decode recursion on hostile input. Real trees are
// bounded by their observation count, far below this.
const maxWireDepth = 100000

// EncodeWire appends the tree to e: Vars delta-coded, then the node stream
// in pre-order with leaf observation sets delta-coded and leaf statistics
// as zigzag varints (exact — the statistics are integer sums of quantized
// values).
func (t *Tree) EncodeWire(e *wire.Encoder) {
	e.SortedInts(t.Vars)
	encodeNode(e, t.Root)
}

func encodeNode(e *wire.Encoder, n *Node) {
	switch {
	case n == nil:
		e.Byte(nodeTagNil)
	case n.IsLeaf():
		e.Byte(nodeTagLeaf)
		e.SortedInts(n.Obs)
		e.Varint(n.Stats.N)
		e.Varint(n.Stats.Sum)
		e.Varint(n.Stats.SumSq)
	default:
		e.Byte(nodeTagInternal)
		encodeNode(e, n.Left)
		encodeNode(e, n.Right)
	}
}

// DecodeWire reads a tree written by EncodeWire, reconstructing internal
// nodes from their children. Errors are reported through d's sticky error;
// the returned tree is nil once d has failed.
func DecodeWire(d *wire.Decoder) *Tree {
	t := &Tree{Vars: d.SortedInts()}
	t.Root = decodeNode(d, 0)
	if d.Err() != nil {
		return nil
	}
	return t
}

func decodeNode(d *wire.Decoder, depth int) *Node {
	if depth > maxWireDepth {
		d.Failf("tree deeper than %d levels", maxWireDepth)
		return nil
	}
	switch tag := d.Byte(); tag {
	case nodeTagNil:
		return nil
	case nodeTagLeaf:
		n := &Node{Obs: d.SortedInts()}
		n.Stats = score.Stats{N: d.Varint(), Sum: d.Varint(), SumSq: d.Varint()}
		if d.Err() != nil {
			return nil
		}
		return n
	case nodeTagInternal:
		n := &Node{
			Left:  decodeNode(d, depth+1),
			Right: decodeNode(d, depth+1),
		}
		if d.Err() != nil {
			return nil
		}
		n.Obs = mergeSorted(obsOf(n.Left), obsOf(n.Right))
		n.Stats = addStats(statsOf(n.Left), statsOf(n.Right))
		return n
	default:
		d.Failf("unknown tree node tag %d", tag)
		return nil
	}
}

func obsOf(n *Node) []int {
	if n == nil {
		return nil
	}
	return n.Obs
}

func statsOf(n *Node) score.Stats {
	if n == nil {
		return score.Stats{}
	}
	return n.Stats
}

func addStats(a, b score.Stats) score.Stats {
	return score.Stats{N: a.N + b.N, Sum: a.Sum + b.Sum, SumSq: a.SumSq + b.SumSq}
}

// mergeSorted merges two sorted int slices into a new sorted slice. For the
// disjoint partitions tree invariants guarantee, the result is exactly the
// parent's original observation set.
func mergeSorted(a, b []int) []int {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
