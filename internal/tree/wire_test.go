package tree

import (
	"reflect"
	"testing"

	"parsimone/internal/score"
	"parsimone/internal/wire"
)

// leaf builds a leaf whose stats are consistent with nVars variables over
// its observations (each quantized cell contributing value 1).
func leaf(obs ...int) *Node {
	n := &Node{Obs: obs}
	n.Stats = score.Stats{N: int64(len(obs)), Sum: int64(len(obs)), SumSq: int64(len(obs))}
	return n
}

func internal(l, r *Node) *Node {
	return &Node{
		Obs:   mergeSorted(l.Obs, r.Obs),
		Stats: addStats(l.Stats, r.Stats),
		Left:  l,
		Right: r,
	}
}

func roundTrip(t *testing.T, tr *Tree) *Tree {
	t.Helper()
	e := wire.NewEncoder()
	tr.EncodeWire(e)
	d := wire.NewDecoder(e.Bytes())
	got := DecodeWire(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
	return got
}

func TestTreeWireRoundTrip(t *testing.T) {
	cases := map[string]*Tree{
		"single leaf": {Vars: []int{2, 5}, Root: leaf(0, 1, 2)},
		"two levels":  {Vars: []int{0}, Root: internal(leaf(0, 2), leaf(1, 3))},
		"unbalanced": {Vars: []int{1, 4, 9}, Root: internal(
			internal(leaf(0), internal(leaf(1, 5), leaf(2))), leaf(3, 4, 6, 7))},
		"nil root": {Vars: []int{3}},
	}
	for name, tr := range cases {
		t.Run(name, func(t *testing.T) {
			got := roundTrip(t, tr)
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
			}
		})
	}
}

// TestTreeWireNegativeStats: quantized sums are signed; the codec must not
// assume non-negative statistics.
func TestTreeWireNegativeStats(t *testing.T) {
	n := &Node{Obs: []int{0, 4}, Stats: score.Stats{N: 2, Sum: -17, SumSq: 145}}
	tr := &Tree{Vars: []int{0}, Root: n}
	if got := roundTrip(t, tr); !reflect.DeepEqual(got, tr) {
		t.Fatal("negative stats did not round-trip")
	}
}

// TestTreeWireInternalElided: internal nodes carry no payload on the wire —
// the encoding of a full tree is dominated by its leaves.
func TestTreeWireInternalElided(t *testing.T) {
	full := &Tree{Vars: []int{0}, Root: internal(internal(leaf(0), leaf(1)), internal(leaf(2), leaf(3)))}
	leavesOnly := 0
	for _, l := range full.Leaves() {
		e := wire.NewEncoder()
		encodeNode(e, l)
		leavesOnly += len(e.Bytes())
	}
	e := wire.NewEncoder()
	full.EncodeWire(e)
	// Whole tree ≤ leaves + one tag byte per internal node + Vars list.
	if overhead := len(e.Bytes()) - leavesOnly; overhead > 3+4 {
		t.Fatalf("internal-node overhead %d bytes, want ≤ 7", overhead)
	}
}

func TestTreeWireDepthLimit(t *testing.T) {
	// A run of internal tags nesting past the recursion cap must fail, not
	// overflow the stack.
	e := wire.NewEncoder()
	e.SortedInts([]int{0})
	for i := 0; i < maxWireDepth+2; i++ {
		e.Byte(nodeTagInternal)
	}
	d := wire.NewDecoder(e.Bytes())
	if tr := DecodeWire(d); tr != nil || d.Err() == nil {
		t.Fatalf("over-deep tree decoded: %v, err %v", tr, d.Err())
	}
}
