package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"parsimone/internal/prng"
	"parsimone/internal/score"
	"parsimone/internal/synth"
)

// approxEqual compares score sums, which may differ in the last bits because
// floating-point summation order varies between the gain formula and the
// full-score recomputation (the sufficient statistics themselves are exact).
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func testData(t *testing.T, n, m int, seed uint64) *score.QData {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{N: n, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	d.Standardize()
	return score.QuantizeData(d)
}

func TestNewRandomObsClusters(t *testing.T) {
	q := testData(t, 10, 20, 1)
	g := prng.New(1)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0, 1, 2}, 4, g)
	if err := oc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range oc.Clusters {
		total += len(c.Obs)
	}
	if total != 20 {
		t.Fatalf("clusters cover %d of 20 observations", total)
	}
}

func TestNewRandomObsClustersClampsCount(t *testing.T) {
	q := testData(t, 10, 5, 2)
	g := prng.New(2)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0}, 100, g)
	if len(oc.Clusters) > 5 {
		t.Fatalf("%d clusters for 5 observations", len(oc.Clusters))
	}
	oc2 := NewRandomObsClusters(q, score.DefaultPrior(), []int{0}, 0, prng.New(3))
	if len(oc2.Clusters) != 1 {
		t.Fatalf("count 0 should clamp to 1, got %d", len(oc2.Clusters))
	}
}

func TestObsDetachAttachRoundTrip(t *testing.T) {
	q := testData(t, 8, 12, 3)
	g := prng.New(4)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{1, 3, 5}, 3, g)
	before := oc.Score()
	home := oc.Assign[7]
	col := oc.DetachObs(7)
	gain := oc.GainAttachObs(col, home)
	// Re-attaching home must restore the exact score (exact statistics).
	oc.AttachObs(7, home)
	if err := oc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if oc.Score() != before {
		t.Fatalf("detach/attach changed score %v -> %v", before, oc.Score())
	}
	_ = gain
}

func TestObsAttachNewCluster(t *testing.T) {
	q := testData(t, 8, 12, 5)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0, 2}, 2, prng.New(5))
	col := oc.DetachObs(3)
	want := oc.GainAttachObs(col, len(oc.Clusters))
	preScore := oc.Score()
	oc.AttachObs(3, len(oc.Clusters))
	if err := oc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := oc.Score() - preScore; !approxEqual(got, want) {
		t.Fatalf("new-cluster gain %v, realized %v", want, got)
	}
	last := oc.Clusters[len(oc.Clusters)-1]
	if len(last.Obs) != 1 || last.Obs[0] != 3 {
		t.Fatalf("new cluster contents %v", last.Obs)
	}
}

func TestObsDetachRemovesEmptyCluster(t *testing.T) {
	q := testData(t, 6, 8, 6)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0, 1}, 2, prng.New(6))
	// Move everything out of cluster 0 except one observation, then detach it.
	for len(oc.Clusters[0].Obs) > 1 {
		j := oc.Clusters[0].Obs[0]
		oc.DetachObs(j)
		oc.AttachObs(j, 1%len(oc.Clusters))
	}
	before := len(oc.Clusters)
	j := oc.Clusters[0].Obs[0]
	oc.DetachObs(j)
	if len(oc.Clusters) != before-1 {
		t.Fatal("empty cluster not removed")
	}
	oc.AttachObs(j, 0)
	if err := oc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObsMergeGainRealized(t *testing.T) {
	q := testData(t, 8, 15, 7)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0, 1, 2, 3}, 4, prng.New(7))
	if len(oc.Clusters) < 2 {
		t.Skip("random init produced one cluster")
	}
	want := oc.GainMergeObs(0, 1)
	before := oc.Score()
	oc.MergeObs(0, 1)
	if err := oc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := oc.Score() - before; !approxEqual(got, want) {
		t.Fatalf("merge gain %v, realized %v", want, got)
	}
}

func TestObsMergeGainRetainIsZero(t *testing.T) {
	q := testData(t, 6, 10, 8)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0}, 3, prng.New(8))
	if oc.GainMergeObs(0, 0) != 0 {
		t.Fatal("retain gain must be zero")
	}
}

func TestAddRemoveVarExact(t *testing.T) {
	q := testData(t, 8, 10, 9)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0, 1}, 2, prng.New(9))
	before := oc.Score()
	oc.AddVar(5)
	oc.RemoveVar(5)
	if oc.Score() != before {
		t.Fatal("AddVar/RemoveVar not exactly inverse")
	}
	if err := oc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveVarPanicsOnNonMember(t *testing.T) {
	q := testData(t, 6, 6, 10)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0, 1}, 2, prng.New(10))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	oc.RemoveVar(4)
}

func TestObsSnapshotCanonical(t *testing.T) {
	q := testData(t, 6, 9, 11)
	oc := NewRandomObsClusters(q, score.DefaultPrior(), []int{0}, 3, prng.New(11))
	snap := oc.Snapshot()
	covered := map[int]bool{}
	prevFirst := -1
	for _, cl := range snap {
		if cl[0] <= prevFirst {
			t.Fatal("snapshot clusters not ordered by first member")
		}
		prevFirst = cl[0]
		for i, j := range cl {
			if i > 0 && cl[i-1] >= j {
				t.Fatal("snapshot cluster not sorted")
			}
			covered[j] = true
		}
	}
	if len(covered) != 9 {
		t.Fatalf("snapshot covers %d of 9", len(covered))
	}
}

func newCC(t *testing.T, n, m, k0 int, seed uint64) (*CoClustering, *score.QData) {
	t.Helper()
	q := testData(t, n, m, seed)
	g := prng.New(seed + 100)
	cc := NewRandomCoClustering(q, score.DefaultPrior(), k0, 3, g)
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return cc, q
}

func TestNewRandomCoClusteringCoversAllVars(t *testing.T) {
	cc, q := newCC(t, 20, 15, 5, 12)
	seen := 0
	for _, vc := range cc.Clusters {
		seen += len(vc.Vars)
	}
	if seen != q.N {
		t.Fatalf("clusters cover %d of %d variables", seen, q.N)
	}
}

func TestVarDetachAttachRoundTrip(t *testing.T) {
	cc, _ := newCC(t, 15, 12, 4, 13)
	before := cc.Score()
	home := cc.Assign[9]
	cc.DetachVar(9)
	cc.AttachVar(9, home)
	if cc.Score() != before {
		t.Fatalf("detach/attach changed score %v -> %v", before, cc.Score())
	}
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVarAttachGainRealized(t *testing.T) {
	cc, _ := newCC(t, 15, 12, 4, 14)
	cc.DetachVar(3)
	for to := 0; to <= len(cc.Clusters); to++ {
		want := cc.GainAttachVar(3, to)
		before := cc.Score()
		cc.AttachVar(3, to)
		got := cc.Score() - before
		if !approxEqual(got, want) {
			t.Fatalf("to=%d: gain %v, realized %v", to, want, got)
		}
		cc.DetachVar(3)
	}
	cc.AttachVar(3, 0)
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVarAttachNewClusterSingleObsCluster(t *testing.T) {
	cc, q := newCC(t, 10, 8, 3, 15)
	cc.DetachVar(2)
	cc.AttachVar(2, len(cc.Clusters))
	vc := cc.Clusters[len(cc.Clusters)-1]
	if len(vc.Vars) != 1 || vc.Vars[0] != 2 {
		t.Fatalf("singleton cluster vars %v", vc.Vars)
	}
	if len(vc.Obs.Clusters) != 1 || len(vc.Obs.Clusters[0].Obs) != q.M {
		t.Fatal("new variable cluster must start with one observation cluster over all observations")
	}
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVarDetachRemovesEmptyCluster(t *testing.T) {
	cc, _ := newCC(t, 10, 8, 3, 16)
	// Shrink cluster 0 to one variable.
	for len(cc.Clusters[0].Vars) > 1 {
		x := cc.Clusters[0].Vars[0]
		cc.DetachVar(x)
		cc.AttachVar(x, 1%len(cc.Clusters))
	}
	before := len(cc.Clusters)
	x := cc.Clusters[0].Vars[0]
	cc.DetachVar(x)
	if len(cc.Clusters) != before-1 {
		t.Fatal("empty variable cluster not removed")
	}
	cc.AttachVar(x, 0)
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeVarGainRealized(t *testing.T) {
	cc, _ := newCC(t, 18, 10, 5, 17)
	if len(cc.Clusters) < 2 {
		t.Skip("single cluster")
	}
	cols := cc.VarColumnStats(0)
	want := cc.GainMergeVar(cols, 0, 1)
	before := cc.Score()
	cc.MergeVar(0, 1)
	if got := cc.Score() - before; !approxEqual(got, want) {
		t.Fatalf("merge gain %v, realized %v", want, got)
	}
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeVarGainRetainIsZero(t *testing.T) {
	cc, _ := newCC(t, 12, 8, 3, 18)
	cols := cc.VarColumnStats(0)
	if cc.GainMergeVar(cols, 0, 0) != 0 {
		t.Fatal("retain gain must be zero")
	}
}

func TestVarSnapshotCanonical(t *testing.T) {
	cc, q := newCC(t, 14, 8, 4, 19)
	snap := cc.VarSnapshot()
	covered := map[int]bool{}
	prevFirst := -1
	for _, cl := range snap {
		if cl[0] <= prevFirst {
			t.Fatal("snapshot not ordered by first member")
		}
		prevFirst = cl[0]
		for _, x := range cl {
			covered[x] = true
		}
	}
	if len(covered) != q.N {
		t.Fatalf("snapshot covers %d of %d", len(covered), q.N)
	}
}

// TestRandomOpSequenceInvariants drives the state through random mixed
// operations and verifies the exact-statistics invariant throughout.
func TestRandomOpSequenceInvariants(t *testing.T) {
	cc, q := newCC(t, 16, 12, 4, 20)
	g := prng.New(999)
	for step := 0; step < 200; step++ {
		switch g.Intn(4) {
		case 0: // move a variable
			x := g.Intn(q.N)
			cc.DetachVar(x)
			to := g.Intn(len(cc.Clusters) + 1)
			cc.AttachVar(x, to)
		case 1: // merge two variable clusters
			if len(cc.Clusters) >= 2 {
				src := g.Intn(len(cc.Clusters))
				dst := g.Intn(len(cc.Clusters))
				if src != dst {
					cc.MergeVar(src, dst)
				}
			}
		case 2: // move an observation within a random cluster
			vc := cc.Clusters[g.Intn(len(cc.Clusters))]
			j := g.Intn(q.M)
			vc.Obs.DetachObs(j)
			to := g.Intn(len(vc.Obs.Clusters) + 1)
			vc.Obs.AttachObs(j, to)
		case 3: // merge two observation clusters
			vc := cc.Clusters[g.Intn(len(cc.Clusters))]
			if len(vc.Obs.Clusters) >= 2 {
				src := g.Intn(len(vc.Obs.Clusters))
				dst := g.Intn(len(vc.Obs.Clusters))
				if src != dst {
					vc.Obs.MergeObs(src, dst)
				}
			}
		}
		if step%20 == 19 {
			if err := cc.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := cc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScoreDecomposable: the total score must equal the sum of block scores
// computed independently, for arbitrary partitions (property-based).
func TestScoreDecomposable(t *testing.T) {
	q := testData(t, 10, 10, 21)
	pr := score.DefaultPrior()
	check := func(seed uint16) bool {
		g := prng.New(uint64(seed))
		cc := NewRandomCoClustering(q, pr, 3, 2, g)
		var total float64
		for _, vc := range cc.Clusters {
			for _, c := range vc.Obs.Clusters {
				total += pr.LogML(c.Stats)
			}
		}
		return approxEqual(total, cc.Score())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGainAttachVar(b *testing.B) {
	d, _, _ := synth.Generate(synth.Config{N: 100, M: 100, Seed: 1})
	d.Standardize()
	q := score.QuantizeData(d)
	cc := NewRandomCoClustering(q, score.DefaultPrior(), 10, 5, prng.New(1))
	cc.DetachVar(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.GainAttachVar(50, i%len(cc.Clusters))
	}
}

func BenchmarkMergeGains(b *testing.B) {
	d, _, _ := synth.Generate(synth.Config{N: 100, M: 100, Seed: 1})
	d.Standardize()
	q := score.QuantizeData(d)
	cc := NewRandomCoClustering(q, score.DefaultPrior(), 10, 5, prng.New(1))
	cols := cc.VarColumnStats(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.GainMergeVar(cols, 0, 1%len(cc.Clusters))
	}
}
