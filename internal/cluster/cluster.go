// Package cluster maintains the co-clustering state that the GaneSH Gibbs
// sampler (§2.2.1, Algorithms 1–3 of the paper) operates on: a partition of
// variables into variable clusters and, within each variable cluster, a
// partition of the observations into observation clusters. Each
// (variable-cluster × observation-cluster) block carries exact sufficient
// statistics (see package score), so move and merge operations update the
// decomposable Bayesian score incrementally and reproducibly.
//
// Every mutating operation is deterministic given its arguments. The
// parallel engines replicate this state on all ranks and apply the same
// operations everywhere; only the *scoring* of candidate operations is
// partitioned across ranks.
package cluster

import (
	"fmt"
	"sort"

	"parsimone/internal/prng"
	"parsimone/internal/score"
)

// ObsCluster is one observation cluster inside a variable cluster, together
// with the sufficient statistics of its block (parent cluster's variables ×
// this cluster's observations).
type ObsCluster struct {
	Obs   []int
	Stats score.Stats
}

// ObsClusters is a partition of all m observations relative to a fixed set
// of variables. It is used both inside CoClustering (one per variable
// cluster) and standalone for the module-learning task, where GaneSH runs
// with the variable clusters pinned (Algorithm 4, lines 3–9).
type ObsClusters struct {
	Q     *score.QData
	Prior score.Prior
	// Kernel, when non-nil, serves LogML evaluations from the precomputed
	// score kernel — bit-identical to Prior.LogML (score.Kernel), so gains
	// and scores are unchanged. Must be built for the same Prior.
	Kernel *score.Kernel
	// Vars are the variables whose cells the blocks cover.
	Vars []int
	// Assign maps each observation to its cluster index, or -1 while the
	// observation is detached.
	Assign   []int
	Clusters []*ObsCluster
}

// logML evaluates the prior's marginal log-likelihood, through the kernel
// when one is attached.
func (oc *ObsClusters) logML(s score.Stats) float64 {
	if oc.Kernel != nil {
		return oc.Kernel.LogML(s)
	}
	return oc.Prior.LogML(s)
}

// UseKernel attaches k (which must be built for oc.Prior) so every
// subsequent LogML evaluation goes through the precomputed tables.
func (oc *ObsClusters) UseKernel(k *score.Kernel) { oc.Kernel = k }

// NewRandomObsClusters partitions the m observations of q into `count`
// clusters uniformly at random (consuming m draws from g in observation
// order), relative to the given variables. Empty clusters are removed.
func NewRandomObsClusters(q *score.QData, pr score.Prior, vars []int, count int, g *prng.MRG3) *ObsClusters {
	if count < 1 {
		count = 1
	}
	if count > q.M {
		count = q.M
	}
	oc := &ObsClusters{Q: q, Prior: pr, Vars: append([]int(nil), vars...), Assign: make([]int, q.M)}
	for c := 0; c < count; c++ {
		oc.Clusters = append(oc.Clusters, &ObsCluster{})
	}
	for j := 0; j < q.M; j++ {
		c := g.Intn(count)
		oc.Assign[j] = c
		oc.Clusters[c].Obs = append(oc.Clusters[c].Obs, j)
	}
	oc.dropEmpty()
	oc.rebuildStats()
	return oc
}

// newSingleObsCluster returns an ObsClusters with every observation in one
// cluster — the initial observation partition of a freshly created singleton
// variable cluster.
func newSingleObsCluster(q *score.QData, pr score.Prior, vars []int) *ObsClusters {
	oc := &ObsClusters{Q: q, Prior: pr, Vars: append([]int(nil), vars...), Assign: make([]int, q.M)}
	c := &ObsCluster{Obs: make([]int, q.M)}
	for j := 0; j < q.M; j++ {
		c.Obs[j] = j
	}
	oc.Clusters = []*ObsCluster{c}
	oc.rebuildStats()
	return oc
}

// dropEmpty removes empty clusters, shifting later indices down — the
// canonical compaction every rank performs identically.
func (oc *ObsClusters) dropEmpty() {
	out := oc.Clusters[:0]
	for _, c := range oc.Clusters {
		if len(c.Obs) > 0 {
			out = append(out, c)
		}
	}
	oc.Clusters = out
	for idx, c := range oc.Clusters {
		for _, j := range c.Obs {
			oc.Assign[j] = idx
		}
	}
}

// rebuildStats recomputes every block's statistics from the raw cells.
func (oc *ObsClusters) rebuildStats() {
	for _, c := range oc.Clusters {
		c.Stats = score.Stats{}
		for _, x := range oc.Vars {
			row := oc.Q.Row(x)
			for _, j := range c.Obs {
				c.Stats.Add(row[j])
			}
		}
	}
}

// ColumnStats returns the statistics of observation j's cells across the
// cluster set's variables.
func (oc *ObsClusters) ColumnStats(j int) score.Stats {
	var s score.Stats
	for _, x := range oc.Vars {
		s.Add(oc.Q.At(x, j))
	}
	return s
}

// Score returns the total block score of this observation partition.
func (oc *ObsClusters) Score() float64 {
	var total float64
	for _, c := range oc.Clusters {
		total += oc.logML(c.Stats)
	}
	return total
}

// AddVar extends every block with variable x's cells.
func (oc *ObsClusters) AddVar(x int) {
	row := oc.Q.Row(x)
	for _, c := range oc.Clusters {
		for _, j := range c.Obs {
			c.Stats.Add(row[j])
		}
	}
	oc.Vars = append(oc.Vars, x)
}

// RemoveVar deletes variable x's cells from every block. It panics if x is
// not a member.
func (oc *ObsClusters) RemoveVar(x int) {
	found := false
	for i, v := range oc.Vars {
		if v == x {
			oc.Vars = append(oc.Vars[:i], oc.Vars[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("cluster: RemoveVar(%d): not a member", x))
	}
	row := oc.Q.Row(x)
	for _, c := range oc.Clusters {
		for _, j := range c.Obs {
			c.Stats.Remove(row[j])
		}
	}
}

// DetachObs removes observation j from its cluster and returns its column
// statistics. If the cluster becomes empty it is removed (canonical
// compaction). The observation must be re-attached with AttachObs before any
// other mutation.
func (oc *ObsClusters) DetachObs(j int) score.Stats {
	ci := oc.Assign[j]
	if ci < 0 {
		panic(fmt.Sprintf("cluster: DetachObs(%d): already detached", j))
	}
	c := oc.Clusters[ci]
	col := oc.ColumnStats(j)
	c.Stats.Unmerge(col)
	for i, o := range c.Obs {
		if o == j {
			c.Obs = append(c.Obs[:i], c.Obs[i+1:]...)
			break
		}
	}
	oc.Assign[j] = -1
	if len(c.Obs) == 0 {
		oc.Clusters = append(oc.Clusters[:ci], oc.Clusters[ci+1:]...)
		for idx := ci; idx < len(oc.Clusters); idx++ {
			for _, o := range oc.Clusters[idx].Obs {
				oc.Assign[o] = idx
			}
		}
	}
	return col
}

// GainAttachObs returns the score gain of attaching a detached observation
// with column statistics col to cluster `to`; to == len(Clusters) scores
// placing it in a new singleton cluster.
func (oc *ObsClusters) GainAttachObs(col score.Stats, to int) float64 {
	if to == len(oc.Clusters) {
		return oc.logML(col)
	}
	c := oc.Clusters[to]
	return oc.logML(c.Stats.Plus(col)) - oc.logML(c.Stats)
}

// AttachObs places a detached observation j into cluster `to`;
// to == len(Clusters) creates a new cluster.
func (oc *ObsClusters) AttachObs(j, to int) {
	if oc.Assign[j] != -1 {
		panic(fmt.Sprintf("cluster: AttachObs(%d): not detached", j))
	}
	col := oc.ColumnStats(j)
	if to == len(oc.Clusters) {
		oc.Clusters = append(oc.Clusters, &ObsCluster{})
	}
	c := oc.Clusters[to]
	c.Obs = append(c.Obs, j)
	c.Stats.Merge(col)
	oc.Assign[j] = to
}

// GainMergeObs returns the score gain of merging cluster src into dst
// (0 when src == dst, i.e. retaining).
func (oc *ObsClusters) GainMergeObs(src, dst int) float64 {
	if src == dst {
		return 0
	}
	a, b := oc.Clusters[src], oc.Clusters[dst]
	return oc.logML(a.Stats.Plus(b.Stats)) -
		oc.logML(a.Stats) - oc.logML(b.Stats)
}

// MergeObs merges cluster src into dst and removes src.
func (oc *ObsClusters) MergeObs(src, dst int) {
	if src == dst {
		panic("cluster: MergeObs with src == dst")
	}
	a, b := oc.Clusters[src], oc.Clusters[dst]
	b.Obs = append(b.Obs, a.Obs...)
	b.Stats.Merge(a.Stats)
	for _, j := range a.Obs {
		oc.Assign[j] = dst
	}
	oc.Clusters = append(oc.Clusters[:src], oc.Clusters[src+1:]...)
	for idx := src; idx < len(oc.Clusters); idx++ {
		for _, o := range oc.Clusters[idx].Obs {
			oc.Assign[o] = idx
		}
	}
}

// Snapshot returns the observation partition as cluster-index slices with
// canonically sorted contents (clusters ordered by smallest member).
func (oc *ObsClusters) Snapshot() [][]int {
	out := make([][]int, len(oc.Clusters))
	for i, c := range oc.Clusters {
		out[i] = append([]int(nil), c.Obs...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// CheckInvariants verifies assignment/membership consistency and that all
// block statistics equal a from-scratch recomputation. Used by tests and
// available for debugging.
func (oc *ObsClusters) CheckInvariants() error {
	seen := make([]int, oc.Q.M)
	for i := range seen {
		seen[i] = -1
	}
	for ci, c := range oc.Clusters {
		if len(c.Obs) == 0 {
			return fmt.Errorf("cluster: empty obs cluster %d retained", ci)
		}
		var want score.Stats
		for _, x := range oc.Vars {
			row := oc.Q.Row(x)
			for _, j := range c.Obs {
				want.Add(row[j])
			}
		}
		if c.Stats != want {
			return fmt.Errorf("cluster: obs cluster %d stats %+v, recomputed %+v", ci, c.Stats, want)
		}
		for _, j := range c.Obs {
			if seen[j] != -1 {
				return fmt.Errorf("cluster: observation %d in clusters %d and %d", j, seen[j], ci)
			}
			seen[j] = ci
			if oc.Assign[j] != ci {
				return fmt.Errorf("cluster: observation %d assigned %d, member of %d", j, oc.Assign[j], ci)
			}
		}
	}
	for j, ci := range oc.Assign {
		if ci >= 0 && seen[j] != ci {
			return fmt.Errorf("cluster: observation %d assignment %d has no membership", j, ci)
		}
	}
	return nil
}

// VarCluster is one variable cluster with its observation partition.
type VarCluster struct {
	Vars []int
	Obs  *ObsClusters
}

// CoClustering is the full two-way clustering state of Algorithm 3.
type CoClustering struct {
	Q     *score.QData
	Prior score.Prior
	// Kernel, when non-nil, serves LogML evaluations from the precomputed
	// score kernel — bit-identical to Prior.LogML (score.Kernel). Propagated
	// to every nested observation partition by UseKernel and AttachVar.
	Kernel *score.Kernel
	// Assign maps each variable to its cluster index, or -1 while
	// detached.
	Assign   []int
	Clusters []*VarCluster
}

// logML evaluates the prior's marginal log-likelihood, through the kernel
// when one is attached.
func (cc *CoClustering) logML(s score.Stats) float64 {
	if cc.Kernel != nil {
		return cc.Kernel.LogML(s)
	}
	return cc.Prior.LogML(s)
}

// UseKernel attaches k (which must be built for cc.Prior) to the
// co-clustering and every nested observation partition.
func (cc *CoClustering) UseKernel(k *score.Kernel) {
	cc.Kernel = k
	for _, vc := range cc.Clusters {
		vc.Obs.Kernel = k
	}
}

// NewRandomCoClustering assigns each variable to one of k0 clusters
// uniformly at random (n draws in variable order), then partitions each
// cluster's observations into obsCount random clusters (m draws per cluster,
// in cluster order). Empty variable clusters are removed. This is the random
// initialization of Algorithm 3, lines 3–5.
func NewRandomCoClustering(q *score.QData, pr score.Prior, k0, obsCount int, g *prng.MRG3) *CoClustering {
	if k0 < 1 {
		k0 = 1
	}
	if k0 > q.N {
		k0 = q.N
	}
	cc := &CoClustering{Q: q, Prior: pr, Assign: make([]int, q.N)}
	members := make([][]int, k0)
	for x := 0; x < q.N; x++ {
		c := g.Intn(k0)
		members[c] = append(members[c], x)
	}
	for _, vars := range members {
		if len(vars) == 0 {
			continue
		}
		vc := &VarCluster{
			Vars: vars,
			Obs:  NewRandomObsClusters(q, pr, vars, obsCount, g),
		}
		cc.Clusters = append(cc.Clusters, vc)
	}
	for idx, vc := range cc.Clusters {
		for _, x := range vc.Vars {
			cc.Assign[x] = idx
		}
	}
	return cc
}

// Score returns the total score over all blocks of all variable clusters.
func (cc *CoClustering) Score() float64 {
	var total float64
	for _, vc := range cc.Clusters {
		total += vc.Obs.Score()
	}
	return total
}

// DetachVar removes variable x from its cluster. If the cluster becomes
// empty it is removed. The variable must be re-attached with AttachVar
// before any other mutation.
func (cc *CoClustering) DetachVar(x int) {
	ci := cc.Assign[x]
	if ci < 0 {
		panic(fmt.Sprintf("cluster: DetachVar(%d): already detached", x))
	}
	vc := cc.Clusters[ci]
	vc.Obs.RemoveVar(x)
	for i, v := range vc.Vars {
		if v == x {
			vc.Vars = append(vc.Vars[:i], vc.Vars[i+1:]...)
			break
		}
	}
	cc.Assign[x] = -1
	if len(vc.Vars) == 0 {
		cc.Clusters = append(cc.Clusters[:ci], cc.Clusters[ci+1:]...)
		for idx := ci; idx < len(cc.Clusters); idx++ {
			for _, v := range cc.Clusters[idx].Vars {
				cc.Assign[v] = idx
			}
		}
	}
}

// GainAttachVar returns the score gain of attaching the detached variable x
// to cluster `to`; to == len(Clusters) scores a new singleton cluster
// (which starts with a single observation cluster).
func (cc *CoClustering) GainAttachVar(x, to int) float64 {
	row := cc.Q.Row(x)
	if to == len(cc.Clusters) {
		return cc.logML(score.StatsOf(row))
	}
	vc := cc.Clusters[to]
	var gain float64
	for _, c := range vc.Obs.Clusters {
		var part score.Stats
		for _, j := range c.Obs {
			part.Add(row[j])
		}
		gain += cc.logML(c.Stats.Plus(part)) - cc.logML(c.Stats)
	}
	return gain
}

// AttachVar places the detached variable x into cluster `to`;
// to == len(Clusters) creates a new singleton cluster.
func (cc *CoClustering) AttachVar(x, to int) {
	if cc.Assign[x] != -1 {
		panic(fmt.Sprintf("cluster: AttachVar(%d): not detached", x))
	}
	if to == len(cc.Clusters) {
		vc := &VarCluster{
			Vars: []int{x},
			Obs:  newSingleObsCluster(cc.Q, cc.Prior, []int{x}),
		}
		vc.Obs.Kernel = cc.Kernel
		cc.Clusters = append(cc.Clusters, vc)
		cc.Assign[x] = to
		return
	}
	vc := cc.Clusters[to]
	vc.Vars = append(vc.Vars, x)
	vc.Obs.AddVar(x)
	cc.Assign[x] = to
}

// VarColumnStats returns, for variable cluster src, the per-observation
// statistics of its cells — the precomputation that makes each merge
// candidate evaluable in O(m + L) instead of O(|vars|·m).
func (cc *CoClustering) VarColumnStats(src int) []score.Stats {
	cols := make([]score.Stats, cc.Q.M)
	for _, x := range cc.Clusters[src].Vars {
		row := cc.Q.Row(x)
		for j, v := range row {
			cols[j].Add(v)
		}
	}
	return cols
}

// GainMergeVar returns the score gain of merging variable cluster src into
// dst, where the merged cluster keeps dst's observation partition. cols must
// be VarColumnStats(src). Returns 0 for src == dst (retain).
func (cc *CoClustering) GainMergeVar(cols []score.Stats, src, dst int) float64 {
	if src == dst {
		return 0
	}
	var gain float64
	for _, c := range cc.Clusters[dst].Obs.Clusters {
		var part score.Stats
		for _, j := range c.Obs {
			part.Merge(cols[j])
		}
		gain += cc.logML(c.Stats.Plus(part)) - cc.logML(c.Stats)
	}
	for _, c := range cc.Clusters[src].Obs.Clusters {
		gain -= cc.logML(c.Stats)
	}
	return gain
}

// MergeVar merges variable cluster src into dst; the merged cluster keeps
// dst's observation partition. src is removed.
func (cc *CoClustering) MergeVar(src, dst int) {
	if src == dst {
		panic("cluster: MergeVar with src == dst")
	}
	sc, dc := cc.Clusters[src], cc.Clusters[dst]
	for _, x := range sc.Vars {
		dc.Obs.AddVar(x)
		dc.Vars = append(dc.Vars, x)
		cc.Assign[x] = dst
	}
	cc.Clusters = append(cc.Clusters[:src], cc.Clusters[src+1:]...)
	for idx := src; idx < len(cc.Clusters); idx++ {
		for _, v := range cc.Clusters[idx].Vars {
			cc.Assign[v] = idx
		}
	}
}

// VarAssignment returns a copy of the variable → cluster index assignment.
func (cc *CoClustering) VarAssignment() []int {
	return append([]int(nil), cc.Assign...)
}

// VarSnapshot returns the variable partition as sorted slices, clusters
// ordered by smallest member — the canonical form sampled into the
// co-clustering ensemble.
func (cc *CoClustering) VarSnapshot() [][]int {
	out := make([][]int, len(cc.Clusters))
	for i, vc := range cc.Clusters {
		out[i] = append([]int(nil), vc.Vars...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// CheckInvariants verifies the full co-clustering state, including every
// nested observation partition.
func (cc *CoClustering) CheckInvariants() error {
	seen := make([]int, cc.Q.N)
	for i := range seen {
		seen[i] = -1
	}
	for ci, vc := range cc.Clusters {
		if len(vc.Vars) == 0 {
			return fmt.Errorf("cluster: empty variable cluster %d retained", ci)
		}
		if len(vc.Vars) != len(vc.Obs.Vars) {
			return fmt.Errorf("cluster: cluster %d has %d vars but obs partition covers %d",
				ci, len(vc.Vars), len(vc.Obs.Vars))
		}
		for _, x := range vc.Vars {
			if seen[x] != -1 {
				return fmt.Errorf("cluster: variable %d in clusters %d and %d", x, seen[x], ci)
			}
			seen[x] = ci
			if cc.Assign[x] != ci {
				return fmt.Errorf("cluster: variable %d assigned %d, member of %d", x, cc.Assign[x], ci)
			}
		}
		if err := vc.Obs.CheckInvariants(); err != nil {
			return fmt.Errorf("cluster %d: %w", ci, err)
		}
	}
	return nil
}
