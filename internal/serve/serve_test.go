package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/jobs"
	"parsimone/internal/obs"
	"parsimone/internal/result"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
)

// fixture builds a small learning problem as the server would see it (TSV
// round-tripped) plus its reference network: the options below mirror what
// buildJob derives from the request fields used throughout these tests
// (seed 3, updates 1, splits 2, max_steps 16).
func fixture(t *testing.T) (string, *dataset.Data, *core.Output) {
	t.Helper()
	d0, _, err := synth.Generate(synth.Config{
		N: 48, M: 24, Regulators: 4, Modules: 4, Noise: 0.3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d0.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	tsv := buf.String()
	d, err := dataset.ReadTSV(strings.NewReader(tsv))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 3
	opt.Ganesh.Updates = 1
	opt.Module.Splits = splits.Params{NumSplits: 2, MaxSteps: 16}
	want, err := core.Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tsv, d, want
}

// submitBody is the standard request the fixture's reference corresponds to.
func submitBody(tsv string) string {
	req := JobRequest{
		Name:     "t",
		Dataset:  DatasetRequest{TSV: tsv},
		Ranks:    1,
		Seed:     3,
		Updates:  1,
		Splits:   2,
		MaxSteps: 16,
	}
	b, _ := json.Marshal(req)
	return string(b)
}

// call routes one request through the server and returns the response.
func call(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// decode unmarshals a JSON response body.
func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad response body %q: %v", w.Body.String(), err)
	}
	return v
}

// waitDone long-polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, s *Server, id int) JobStatus {
	t.Helper()
	for i := 0; i < 600; i++ {
		w := call(t, s, "GET", fmt.Sprintf("/api/v1/jobs/%d?wait_ms=1000", id), "")
		st := decode[JobStatus](t, w)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
	}
	t.Fatalf("job %d never reached a terminal state", id)
	return JobStatus{}
}

// TestSubmitWaitFetchRoundTrip: POST a learn job, long-poll it done, and
// fetch the network in all three formats, the module list, the per-module
// regulator scores, the event stream, and a prediction — the full surface
// against one run.
func TestSubmitWaitFetchRoundTrip(t *testing.T) {
	tsv, d, want := fixture(t)
	s := NewServer(Config{Jobs: jobs.Config{MaxJobs: 2}})
	defer s.Close()

	w := call(t, s, "POST", "/api/v1/jobs", submitBody(tsv))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", w.Code, w.Body)
	}
	st := decode[JobStatus](t, w)
	if st.ID != 0 || st.Cached {
		t.Fatalf("submit status: %+v", st)
	}

	st = waitDone(t, s, 0)
	if st.State != "done" || st.Modules == 0 || st.Error != "" {
		t.Fatalf("terminal status: %+v", st)
	}

	// The network round-trips bit-identically in every format.
	readers := map[string]func(*bytes.Reader) (*result.Network, error){
		"json":   func(r *bytes.Reader) (*result.Network, error) { return result.ReadJSON(r) },
		"xml":    func(r *bytes.Reader) (*result.Network, error) { return result.ReadXML(r) },
		"binary": func(r *bytes.Reader) (*result.Network, error) { return result.ReadBinary(r) },
	}
	for format, read := range readers {
		w = call(t, s, "GET", "/api/v1/jobs/0/network?format="+format, "")
		if w.Code != http.StatusOK {
			t.Fatalf("network %s: code %d body %s", format, w.Code, w.Body)
		}
		got, err := read(bytes.NewReader(w.Body.Bytes()))
		if err != nil {
			t.Fatalf("network %s: %v", format, err)
		}
		if !result.Equal(got, want.Network) {
			t.Fatalf("network %s differs from the reference", format)
		}
	}

	// Module list and per-module lookup with regulator scores.
	w = call(t, s, "GET", "/api/v1/jobs/0/modules", "")
	mods := decode[[]moduleSummary](t, w)
	if len(mods) != len(want.Network.Modules) {
		t.Fatalf("module list: %d entries, want %d", len(mods), len(want.Network.Modules))
	}
	w = call(t, s, "GET", fmt.Sprintf("/api/v1/jobs/0/modules/%d", mods[0].ID), "")
	mod := decode[result.Module](t, w)
	if mod.ID != mods[0].ID || len(mod.Parents) != mods[0].Parents {
		t.Fatalf("module lookup: %+v vs summary %+v", mod, mods[0])
	}

	// The job's lifecycle event stream, as JSONL.
	w = call(t, s, "GET", "/api/v1/jobs/0/events", "")
	evs, err := obs.ReadJSONL(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ev := range evs {
		if ev.Job == nil {
			t.Fatalf("event without job payload: %+v", ev)
		}
		seen[ev.Type] = true
	}
	for _, typ := range []string{obs.TypeJobQueued, obs.TypeJobAdmitted, obs.TypeJobRunning, obs.TypeJobDone} {
		if !seen[typ] {
			t.Fatalf("event stream is missing %s (got %v)", typ, seen)
		}
	}

	// A prediction on the first training observation: one (mean, variance)
	// per module.
	obsVec := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		obsVec[i] = d.At(i, 0)
	}
	body, _ := json.Marshal(PredictRequest{Observation: obsVec})
	w = call(t, s, "POST", "/api/v1/jobs/0/predict", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("predict: code %d body %s", w.Code, w.Body)
	}
	pr := decode[PredictResponse](t, w)
	if len(pr.Predictions) != len(want.Network.Modules) {
		t.Fatalf("predict: %d predictions, want %d", len(pr.Predictions), len(want.Network.Modules))
	}
	for _, p := range pr.Predictions {
		if p.Variance <= 0 {
			t.Fatalf("prediction %+v has non-positive variance", p)
		}
	}
}

// TestCacheHitBitIdenticalNoRelearn: a repeated identical submission — even
// at a different p×W shape — is served from the exact result cache with a
// byte-identical network and no second learning run.
func TestCacheHitBitIdenticalNoRelearn(t *testing.T) {
	tsv, _, _ := fixture(t)
	s := NewServer(Config{Jobs: jobs.Config{MaxJobs: 2}})
	defer s.Close()

	w := call(t, s, "POST", "/api/v1/jobs", submitBody(tsv))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", w.Code, w.Body)
	}
	waitDone(t, s, 0)
	first := call(t, s, "GET", "/api/v1/jobs/0/network?format=binary", "")

	// Same learning problem, different execution shape: Workers is
	// result-invisible, so the key is identical and the cache answers.
	var req JobRequest
	json.Unmarshal([]byte(submitBody(tsv)), &req) //nolint:errcheck
	req.Workers = 2
	body, _ := json.Marshal(req)
	w = call(t, s, "POST", "/api/v1/jobs", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("resubmit: code %d, want 200 (cache hit), body %s", w.Code, w.Body)
	}
	st := decode[JobStatus](t, w)
	if !st.Cached || st.State != "done" || st.ID != 1 {
		t.Fatalf("resubmit status: %+v", st)
	}

	second := call(t, s, "GET", "/api/v1/jobs/1/network?format=binary", "")
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached network is not byte-identical to the original")
	}

	// No second learning run: exactly one job ever reached the runner.
	queued := 0
	for _, ev := range s.rec.Events() {
		if ev.Type == obs.TypeJobQueued {
			queued++
		}
	}
	if queued != 1 {
		t.Fatalf("%d jobs reached the runner, want 1", queued)
	}
	if hits := s.reg.Counter("serve_cache_hits_total", "", "server", "serve").Value(); hits != 1 {
		t.Fatalf("serve_cache_hits_total = %d, want 1", hits)
	}
}

// TestDrainRejectsAndReportsResumePaths: draining a loaded server 503s new
// submissions, cancels the running job to its durable checkpoints, surfaces
// the resume path in both the drain reports and the job status — and a
// fresh server over the same checkpoint root resumes the submission to the
// bit-identical network.
func TestDrainRejectsAndReportsResumePaths(t *testing.T) {
	tsv, _, want := fixture(t)
	root := t.TempDir()
	s := NewServer(Config{Jobs: jobs.Config{MaxJobs: 1}, CheckpointRoot: root})

	// A longer configuration, so the run is still in flight after its
	// first checkpoint lands.
	var req JobRequest
	json.Unmarshal([]byte(submitBody(tsv)), &req) //nolint:errcheck
	req.GaneshRuns = 2
	req.Trees = 2
	body, _ := json.Marshal(req)
	w := call(t, s, "POST", "/api/v1/jobs", string(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", w.Code, w.Body)
	}
	st := decode[JobStatus](t, w)
	ckptDir := filepath.Join(root, st.CacheKey[:16])

	// Wait for durable checkpoint state, then drain mid-run.
	deadline := time.After(60 * time.Second)
	for {
		if ents, err := os.ReadDir(ckptDir); err == nil && len(ents) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no checkpoint appeared")
		case <-time.After(5 * time.Millisecond):
		}
	}
	reports := s.Drain()

	if len(reports) != 1 || reports[0].State != jobs.StateCancelled {
		t.Fatalf("drain reports: %+v", reports)
	}
	if reports[0].Checkpoint != ckptDir {
		t.Fatalf("drain report checkpoint %q, want %q", reports[0].Checkpoint, ckptDir)
	}

	// New submissions are rejected while draining.
	w = call(t, s, "POST", "/api/v1/jobs", submitBody(tsv))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: code %d, want 503", w.Code)
	}
	w = call(t, s, "GET", "/healthz", "")
	if h := decode[map[string]string](t, w); h["status"] != "draining" {
		t.Fatalf("healthz: %v", h)
	}

	// The job status maps the *core.CancelledError onto the resume path.
	st = waitDone(t, s, 0)
	if st.State != "cancelled" || st.Checkpoint != ckptDir || !st.Resumable {
		t.Fatalf("cancelled status: %+v", st)
	}

	// A fresh server over the same root content-addresses the same
	// checkpoint directory and resumes the run bit-identically.
	s2 := NewServer(Config{Jobs: jobs.Config{MaxJobs: 1}, CheckpointRoot: root})
	defer s2.Close()
	w = call(t, s2, "POST", "/api/v1/jobs", string(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("resubmit: code %d body %s", w.Code, w.Body)
	}
	if st = waitDone(t, s2, 0); st.State != "done" {
		t.Fatalf("resumed job: %+v", st)
	}
	w = call(t, s2, "GET", "/api/v1/jobs/0/network?format=json", "")
	got, err := result.ReadJSON(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 3
	opt.Ganesh.Updates = 1
	opt.GaneshRuns = 2
	opt.Module.Tree.Updates = 2 + opt.Module.Tree.Burnin
	opt.Module.Splits = splits.Params{NumSplits: 2, MaxSteps: 16}
	d, err := dataset.ReadTSV(strings.NewReader(tsv))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(got, ref.Network) {
		t.Fatal("resumed network differs from an uninterrupted run")
	}
	_ = want
}

// TestBadRequests covers the request-validation edges: malformed dataset
// choices, unknown enum values, path escapes, and unknown jobs.
func TestBadRequests(t *testing.T) {
	tsv, _, _ := fixture(t)
	s := NewServer(Config{Jobs: jobs.Config{MaxJobs: 1}})
	defer s.Close()

	post := func(mutate func(*JobRequest)) *httptest.ResponseRecorder {
		var req JobRequest
		json.Unmarshal([]byte(submitBody(tsv)), &req) //nolint:errcheck
		mutate(&req)
		b, _ := json.Marshal(req)
		return call(t, s, "POST", "/api/v1/jobs", string(b))
	}

	cases := []struct {
		name   string
		mutate func(*JobRequest)
	}{
		{"no dataset", func(r *JobRequest) { r.Dataset = DatasetRequest{} }},
		{"both tsv and path", func(r *JobRequest) { r.Dataset.Path = "x.tsv" }},
		{"path without data dir", func(r *JobRequest) { r.Dataset = DatasetRequest{Path: "x.tsv"} }},
		{"bad dist", func(r *JobRequest) { r.Dist = "chaotic" }},
		{"bad checkpoint format", func(r *JobRequest) { r.CheckpointFormat = "yaml" }},
		{"unknown regulator", func(r *JobRequest) { r.Regulators = []string{"nope"} }},
		{"negative restarts", func(r *JobRequest) { r.MaxRestarts = -1 }},
	}
	for _, tc := range cases {
		if w := post(tc.mutate); w.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (body %s)", tc.name, w.Code, w.Body)
		}
	}

	if w := call(t, s, "GET", "/api/v1/jobs/99", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", w.Code)
	}
	if w := call(t, s, "GET", "/api/v1/jobs/notanint", ""); w.Code != http.StatusBadRequest {
		t.Errorf("non-numeric id: code %d, want 400", w.Code)
	}

	// Path escapes are rejected even with a data dir configured.
	s2 := NewServer(Config{Jobs: jobs.Config{MaxJobs: 1}, DataDir: t.TempDir()})
	defer s2.Close()
	var req JobRequest
	req.Dataset = DatasetRequest{Path: "../etc/passwd"}
	b, _ := json.Marshal(req)
	if w := call(t, s2, "POST", "/api/v1/jobs", string(b)); w.Code != http.StatusBadRequest {
		t.Errorf("path escape: code %d, want 400", w.Code)
	}
}

// TestMalformedQueryParamsRejected: a present-but-non-integer wait_ms or
// after is a 400, not a silent fall-back to the default (which turned a
// typo'd long-poll into an instant return). Empty values still mean default.
func TestMalformedQueryParamsRejected(t *testing.T) {
	tsv, _, _ := fixture(t)
	s := NewServer(Config{Jobs: jobs.Config{MaxJobs: 1}})
	defer s.Close()
	if w := call(t, s, "POST", "/api/v1/jobs", submitBody(tsv)); w.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", w.Code, w.Body)
	}

	bad := []string{
		"/api/v1/jobs/0?wait_ms=abc",
		"/api/v1/jobs/0?wait_ms=12.5",
		"/api/v1/jobs/0/events?after=xyz",
		"/api/v1/jobs/0/events?wait_ms=abc",
		"/api/v1/jobs/0/events?after=3&wait_ms=1e3",
	}
	for _, target := range bad {
		w := call(t, s, "GET", target, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (body %s)", target, w.Code, w.Body)
			continue
		}
		var body map[string]string
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Errorf("%s: missing JSON error body %q", target, w.Body)
		}
	}

	good := []string{
		"/api/v1/jobs/0",
		"/api/v1/jobs/0?wait_ms=",
		"/api/v1/jobs/0?wait_ms=1",
		"/api/v1/jobs/0/events?after=",
		"/api/v1/jobs/0/events?after=-1&wait_ms=1",
	}
	for _, target := range good {
		if w := call(t, s, "GET", target, ""); w.Code != http.StatusOK {
			t.Errorf("%s: code %d, want 200 (body %s)", target, w.Code, w.Body)
		}
	}
	waitDone(t, s, 0)
}

// TestServerSidePathAndMetrics: a dataset loaded by server-side path learns
// the same network as the inline upload, and /metrics exports the runner
// and server series in Prometheus text format.
func TestServerSidePathAndMetrics(t *testing.T) {
	tsv, _, want := fixture(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "expr.tsv"), []byte(tsv), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{Jobs: jobs.Config{MaxJobs: 1}, DataDir: dir})
	defer s.Close()

	var req JobRequest
	json.Unmarshal([]byte(submitBody(tsv)), &req) //nolint:errcheck
	req.Dataset = DatasetRequest{Path: "expr.tsv"}
	b, _ := json.Marshal(req)
	w := call(t, s, "POST", "/api/v1/jobs", string(b))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %s", w.Code, w.Body)
	}
	waitDone(t, s, 0)
	w = call(t, s, "GET", "/api/v1/jobs/0/network?format=json", "")
	got, err := result.ReadJSON(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(got, want.Network) {
		t.Fatal("path-loaded dataset learned a different network")
	}

	w = call(t, s, "GET", "/metrics", "")
	text := w.Body.String()
	for _, series := range []string{"jobs_done_total", "serve_cache_misses_total", "serve_requests_total"} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}
