// The HTTP/JSON API: request/response schemas and handlers. All routes live
// under /api/v1; errors are JSON objects {"error": "..."} with conventional
// status codes (400 bad request, 404 unknown job, 409 result not ready,
// 503 draining).

package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/obs"
)

// maxBodyBytes caps request bodies (a TSV upload dominates).
const maxBodyBytes = 256 << 20

// maxWaitMS caps long-poll waits so a stuck client cannot pin a handler.
const maxWaitMS = 60_000

// DatasetRequest names the expression matrix to learn from: exactly one of
// an inline TSV upload or a path under the server's data dir.
type DatasetRequest struct {
	TSV  string `json:"tsv,omitempty"`
	Path string `json:"path,omitempty"`
}

// JobRequest is the POST /api/v1/jobs body. Zero values keep the engine
// defaults (mirroring the parsimone CLI flags of the same names); Ranks and
// Workers set the p×W execution shape, which is result-invisible and
// therefore not part of the cache key.
type JobRequest struct {
	Name    string         `json:"name,omitempty"`
	Dataset DatasetRequest `json:"dataset"`

	Ranks   int    `json:"ranks,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`

	GaneshRuns int      `json:"ganesh_runs,omitempty"`
	Updates    int      `json:"updates,omitempty"`
	Trees      int      `json:"trees,omitempty"`
	Splits     int      `json:"splits,omitempty"`
	MaxSteps   int      `json:"max_steps,omitempty"`
	Dist       string   `json:"dist,omitempty"`
	Regulators []string `json:"regulators,omitempty"`
	N          int      `json:"n,omitempty"`
	M          int      `json:"m,omitempty"`

	DeadlineMS       int64  `json:"deadline_ms,omitempty"`
	MaxRestarts      int    `json:"max_restarts,omitempty"`
	CheckpointFormat string `json:"checkpoint_format,omitempty"`
}

// JobStatus is the server's view of one job, returned by the submit, list,
// and status endpoints.
type JobStatus struct {
	ID    int    `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// Cached reports that the submission was answered from the exact
	// result cache — no learning run happened for it.
	Cached  bool `json:"cached,omitempty"`
	Ranks   int  `json:"ranks"`
	Workers int  `json:"workers"`
	// Restarts counts runner-level retries consumed so far.
	Restarts int `json:"restarts,omitempty"`
	// Modules is the learned module count (terminal done jobs only).
	Modules int `json:"modules,omitempty"`
	// Checkpoint is the resume path of a cancelled job (deadline or
	// drain); Resumable reports whether it holds durable checkpoints.
	Checkpoint string `json:"checkpoint,omitempty"`
	Resumable  bool   `json:"resumable,omitempty"`
	Error      string `json:"error,omitempty"`
	// CacheKey is the job's exact result-cache key — the hash of (dataset,
	// result-affecting options, seed) that a resubmission would hit.
	CacheKey string `json:"cache_key"`
}

// PredictRequest is the POST /api/v1/jobs/{id}/predict body: one raw
// observation vector with a value per variable, original (unstandardized)
// scale.
type PredictRequest struct {
	Observation []float64 `json:"observation"`
}

// ModulePrediction is one module's CPD evaluated on the observation.
type ModulePrediction struct {
	Module   int     `json:"module"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
}

// PredictResponse carries one prediction per learned module.
type PredictResponse struct {
	Predictions []ModulePrediction `json:"predictions"`
}

// moduleSummary is one row of the module list endpoint.
type moduleSummary struct {
	ID        int `json:"id"`
	Variables int `json:"variables"`
	Parents   int `json:"parents"`
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/network", s.handleNetwork)
	mux.HandleFunc("GET /api/v1/jobs/{id}/modules", s.handleModules)
	mux.HandleFunc("GET /api/v1/jobs/{id}/modules/{k}", s.handleModule)
	mux.HandleFunc("POST /api/v1/jobs/{id}/predict", s.handlePredict)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — headers are sent; nothing left to report
}

// writeError renders an error body with the given status.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// statusOf snapshots one job's JobStatus.
func (s *Server) statusOf(sj *servedJob) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID: sj.id, Name: sj.name, State: s.stateLocked(sj), Cached: sj.cached,
		Ranks: sj.ranks, Workers: sj.workers, CacheKey: sj.key,
	}
	if sj.job != nil {
		st.Restarts = sj.job.Restarts()
	}
	if sj.terminal && sj.err == nil && sj.entry.out != nil {
		st.Modules = len(sj.entry.out.Network.Modules)
	}
	if sj.err != nil {
		st.Error = sj.err.Error()
		var ce *core.CancelledError
		if errors.As(sj.err, &ce) {
			st.Checkpoint = ce.CheckpointDir
			st.Resumable = len(ce.Checkpoints) > 0
		}
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sj, reused, err := s.submit(&req)
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, s.statusOf(sj))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snapshot := append([]*servedJob(nil), s.table...)
	s.mu.Unlock()
	list := make([]JobStatus, len(snapshot))
	for i, sj := range snapshot {
		list[i] = s.statusOf(sj)
	}
	writeJSON(w, http.StatusOK, list)
}

// lookup resolves the {id} path value; a nil return means the response was
// already written.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *servedJob {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil
	}
	sj, ok := s.jobByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return nil
	}
	return sj
}

// intParam parses an integer query parameter. An absent or empty value means
// def; a present non-integer value is a client error — the 400 is written
// here and ok is false. (Silently defaulting on a typo like ?wait_ms=abc
// turned long-polls into instant returns with no signal to the client.)
func intParam(w http.ResponseWriter, r *http.Request, name string, def int) (n int, ok bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New(name+": "+err.Error()))
		return 0, false
	}
	return n, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sj := s.lookup(w, r)
	if sj == nil {
		return
	}
	// ?wait_ms long-polls for the terminal state: the handler returns as
	// soon as the job finishes (result published), or with the current
	// state at timeout.
	waitMS, ok := intParam(w, r, "wait_ms", 0)
	if !ok {
		return
	}
	if waitMS = min(waitMS, maxWaitMS); waitMS > 0 {
		select {
		case <-sj.done:
		case <-time.After(time.Duration(waitMS) * time.Millisecond):
		}
	}
	writeJSON(w, http.StatusOK, s.statusOf(sj))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sj := s.lookup(w, r)
	if sj == nil {
		return
	}
	after, ok := intParam(w, r, "after", -1)
	if !ok {
		return
	}
	waitMS, ok := intParam(w, r, "wait_ms", 0)
	if !ok {
		return
	}
	waitMS = min(waitMS, maxWaitMS)
	var timeout <-chan time.Time
	if waitMS > 0 {
		timeout = time.After(time.Duration(waitMS) * time.Millisecond)
	}
	for {
		// Observe terminal-ness BEFORE scanning: the runner emits a job's
		// last event before its done channel closes, so a scan after done
		// was seen set cannot miss trailing events.
		terminal := sj.job == nil
		if !terminal {
			select {
			case <-sj.done:
				terminal = true
			default:
			}
		}
		evs := s.jobEvents(sj, after)
		if len(evs) > 0 || terminal || waitMS == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Job-State", s.statusOf(sj).State)
			obs.WriteJSONL(w, evs) //nolint:errcheck — client gone is not a server error
			return
		}
		select {
		case <-sj.done:
		case <-timeout:
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Job-State", s.statusOf(sj).State)
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// jobEvents filters the shared recorder down to one job's job.* lifecycle
// events with Seq > after. Cache hits never reached the runner and have an
// empty stream. Seq numbers stay global (the recorder's), so a client
// resumes with after=<last seen seq>.
func (s *Server) jobEvents(sj *servedJob, after int) []obs.Event {
	if sj.job == nil {
		return nil
	}
	var out []obs.Event
	for _, ev := range s.rec.Events() {
		if ev.Seq > after && ev.Job != nil && ev.Job.ID == sj.job.ID {
			out = append(out, ev)
		}
	}
	return out
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	sj := s.lookup(w, r)
	if sj == nil {
		return
	}
	e, err := s.result(sj)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	n := e.out.Network
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		err = n.WriteJSON(w)
	case "xml":
		w.Header().Set("Content-Type", "application/xml")
		err = n.WriteXML(w)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		err = n.WriteBinary(w)
	default:
		writeError(w, http.StatusBadRequest, errors.New("format "+format+" not one of json, xml, binary"))
		return
	}
	_ = err // headers are sent; a broken pipe has no one left to tell
}

func (s *Server) handleModules(w http.ResponseWriter, r *http.Request) {
	sj := s.lookup(w, r)
	if sj == nil {
		return
	}
	e, err := s.result(sj)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	mods := e.out.Network.Modules
	list := make([]moduleSummary, len(mods))
	for i, mod := range mods {
		list[i] = moduleSummary{ID: mod.ID, Variables: len(mod.Variables), Parents: len(mod.Parents)}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleModule(w http.ResponseWriter, r *http.Request) {
	sj := s.lookup(w, r)
	if sj == nil {
		return
	}
	e, err := s.result(sj)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for i := range e.out.Network.Modules {
		if mod := &e.out.Network.Modules[i]; mod.ID == k {
			writeJSON(w, http.StatusOK, mod)
			return
		}
	}
	writeError(w, http.StatusNotFound, errors.New("no such module"))
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	sj := s.lookup(w, r)
	if sj == nil {
		return
	}
	e, err := s.result(sj)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Observation) != e.data.N {
		writeError(w, http.StatusBadRequest,
			errors.New("observation has "+strconv.Itoa(len(req.Observation))+" values, dataset has "+strconv.Itoa(e.data.N)+" variables"))
		return
	}
	preds, err := e.predict(req.Observation)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w) //nolint:errcheck — client gone is not a server error
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
