// The exact result cache. A learned network is a pure function of
// (dataset, result-affecting options, seed) — the bit-identity the engine
// guarantees across every p×W execution (DESIGN §6) and the p-invariance
// tests pin. That purity makes an *exact* cache correct by construction:
// two submissions with the same key would learn byte-identical networks, so
// the second can be served from memory without a learning run, whatever
// rank/worker shape either submission asked for.

package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"hash"
	"math"
	"sync"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/module"
	"parsimone/internal/score"
)

// canonicalOptions is the serialized form of exactly the result-affecting
// subset of core.Options. Scheduling and supervision knobs are deliberately
// absent — Ranks, Workers (at every level), GaneshGroups, DynamicChunk,
// ScanSelection, DisableKernel, DisableBatch, CoordTimeout, CheckpointDir,
// BinaryCheckpoints, MaxRestarts, Inject, Ctx, Events, Metrics, RecordWork
// — each documented result-invisible, so resubmitting the same learning
// problem at a different p×W (or with checkpointing toggled) still hits.
type canonicalOptions struct {
	PriorMu0     float64 `json:"mu0"`
	PriorLambda0 float64 `json:"lambda0"`
	PriorAlpha0  float64 `json:"alpha0"`
	PriorBeta0   float64 `json:"beta0"`

	Seed       uint64 `json:"seed"`
	GaneshRuns int    `json:"ganesh_runs"`

	GaneshInitVarClusters int `json:"ganesh_init_var_clusters"`
	GaneshInitObsClusters int `json:"ganesh_init_obs_clusters"`
	GaneshUpdates         int `json:"ganesh_updates"`

	CoOccurrenceThreshold float64 `json:"co_occurrence_threshold"`

	ConsensusMinClusterSize int     `json:"consensus_min_cluster_size"`
	ConsensusMinEigenvalue  float64 `json:"consensus_min_eigenvalue"`
	ConsensusSupportFrac    float64 `json:"consensus_support_frac"`
	ConsensusMaxIter        int     `json:"consensus_max_iter"`
	ConsensusTol            float64 `json:"consensus_tol"`

	TreeInitObsClusters int `json:"tree_init_obs_clusters"`
	TreeUpdates         int `json:"tree_updates"`
	TreeBurnin          int `json:"tree_burnin"`

	SplitsNumSplits   int     `json:"splits_num"`
	SplitsMaxSteps    int     `json:"splits_max_steps"`
	SplitsMinSteps    int     `json:"splits_min_steps"`
	SplitsCIHalfWidth float64 `json:"splits_ci_half_width"`
	Candidates        []int   `json:"candidates,omitempty"`

	Standardize bool `json:"standardize"`
}

func canonicalize(opt core.Options) canonicalOptions {
	return canonicalOptions{
		PriorMu0:     opt.Prior.Mu0,
		PriorLambda0: opt.Prior.Lambda0,
		PriorAlpha0:  opt.Prior.Alpha0,
		PriorBeta0:   opt.Prior.Beta0,

		Seed:       opt.Seed,
		GaneshRuns: opt.GaneshRuns,

		GaneshInitVarClusters: opt.Ganesh.InitVarClusters,
		GaneshInitObsClusters: opt.Ganesh.InitObsClusters,
		GaneshUpdates:         opt.Ganesh.Updates,

		CoOccurrenceThreshold: opt.CoOccurrenceThreshold,

		ConsensusMinClusterSize: opt.Consensus.MinClusterSize,
		ConsensusMinEigenvalue:  opt.Consensus.MinEigenvalue,
		ConsensusSupportFrac:    opt.Consensus.SupportFrac,
		ConsensusMaxIter:        opt.Consensus.MaxIter,
		ConsensusTol:            opt.Consensus.Tol,

		TreeInitObsClusters: opt.Module.Tree.InitObsClusters,
		TreeUpdates:         opt.Module.Tree.Updates,
		TreeBurnin:          opt.Module.Tree.Burnin,

		SplitsNumSplits:   opt.Module.Splits.NumSplits,
		SplitsMaxSteps:    opt.Module.Splits.MaxSteps,
		SplitsMinSteps:    opt.Module.Splits.MinSteps,
		SplitsCIHalfWidth: opt.Module.Splits.CIHalfWidth,
		Candidates:        opt.Module.Splits.Candidates,

		Standardize: opt.Standardize,
	}
}

// CacheKey returns the exact result-cache key of a learning run: a sha256
// over the dataset's canonical bytes (shape, names, IEEE-754 value bits)
// and the canonicalized result-affecting options (which carry the seed).
// Keys are stable across processes, so the key also content-addresses the
// job's checkpoint directory — a resubmission after a drain resumes from
// exactly the checkpoints its earlier incarnation wrote.
func CacheKey(d *dataset.Data, opt core.Options) string {
	h := sha256.New()
	hashDataset(h, d)
	// The canonical struct has a fixed field order, so encoding/json gives
	// deterministic bytes.
	cb, err := json.Marshal(canonicalize(opt))
	if err != nil {
		panic("serve: canonical options not marshalable: " + err.Error())
	}
	h.Write(cb)
	return hex.EncodeToString(h.Sum(nil))
}

// hashDataset feeds the dataset's canonical bytes to h: the n×m shape,
// length-prefixed variable names, then every value's IEEE-754 bit pattern
// in row-major order.
func hashDataset(h hash.Hash, d *dataset.Data) {
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(d.N))
	writeU64(uint64(d.M))
	for _, name := range d.Names {
		writeU64(uint64(len(name)))
		h.Write([]byte(name))
	}
	for _, v := range d.Values {
		writeU64(math.Float64bits(v))
	}
}

// cacheEntry is one completed learning run: the inputs that keyed it and
// the output it produced. Prediction state (executable CPDs plus the
// training standardization statistics) is assembled lazily on the first
// predict query and shared by every job that resolves to this entry.
type cacheEntry struct {
	key  string
	data *dataset.Data
	opt  core.Options
	out  *core.Output

	once sync.Once
	cpds []*module.CPD
	// mean/sd are the per-variable training statistics used to map a raw
	// observation onto the standardized scale the CPDs were learned on
	// (nil when the run did not standardize).
	mean, sd []float64
	cpdErr   error
}

// predictors builds (once) and returns the entry's executable CPDs.
func (e *cacheEntry) predictors() ([]*module.CPD, error) {
	e.once.Do(func() {
		e.cpds, e.cpdErr = core.BuildCPDs(e.data, e.opt, e.out)
		if e.cpdErr != nil || !e.opt.Standardize {
			return
		}
		e.mean = make([]float64, e.data.N)
		e.sd = make([]float64, e.data.N)
		for i := 0; i < e.data.N; i++ {
			row := e.data.Row(i)
			var sum float64
			for _, v := range row {
				sum += v
			}
			m := sum / float64(e.data.M)
			var ss float64
			for _, v := range row {
				dv := v - m
				ss += dv * dv
			}
			e.mean[i] = m
			e.sd[i] = math.Sqrt(ss / float64(e.data.M))
		}
	})
	return e.cpds, e.cpdErr
}

// predict evaluates every module's CPD on one raw observation vector
// (length n, original scale). The observation is standardized with the
// training statistics and quantized exactly as the training data was, then
// routed through each module's regression-tree ensemble.
func (e *cacheEntry) predict(obs []float64) ([]ModulePrediction, error) {
	cpds, err := e.predictors()
	if err != nil {
		return nil, err
	}
	q := make([]int64, len(obs))
	for i, v := range obs {
		if e.opt.Standardize {
			if e.sd[i] > 0 {
				v = (v - e.mean[i]) / e.sd[i]
			} else {
				v = 0 // constant training row standardizes to zero
			}
		}
		q[i] = score.Quantize(v)
	}
	preds := make([]ModulePrediction, 0, len(cpds))
	for _, cpd := range cpds {
		mean, variance := cpd.Predict(q)
		preds = append(preds, ModulePrediction{Module: cpd.Module, Mean: mean, Variance: variance})
	}
	return preds, nil
}
