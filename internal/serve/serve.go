// Package serve is the HTTP/JSON surface of parsimoned: a learn-and-predict
// service over the supervised job runtime (internal/jobs). Clients submit
// learning runs (inline TSV upload or a server-side dataset path, plus the
// result-affecting core.Options, the p×W execution shape, and a per-job
// budget), poll status, stream the job's obs `job.*` lifecycle events as
// JSONL, download the learned network in any of the three result formats,
// and run prediction queries against completed runs.
//
// Two properties of the engine shape the design (DESIGN §14):
//
//   - Determinism: the learned network is a pure function of (dataset,
//     options, seed), so the server keeps an exact result cache keyed by a
//     hash of exactly those inputs. A repeated submission returns the
//     cached bit-identical network without a second learning run, and an
//     in-flight duplicate is coalesced onto the running job. The same key
//     content-addresses the job's checkpoint directory, so a resubmission
//     after a drain resumes from its earlier incarnation's checkpoints.
//   - Cooperative cancellation: Drain (the SIGTERM path) rejects new
//     submissions with 503, cancels running jobs through their contexts so
//     they drain to durable checkpoints, and reports each job's resume
//     path.
//
// The package is supervisor-side code like internal/jobs: it never touches
// learned-network state, and it reads no wallclock (long-polls use timer
// channels only).
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"sync"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/jobs"
	"parsimone/internal/obs"
)

// errDraining rejects submissions while the server drains; mapped to 503.
var errDraining = errors.New("serve: draining, not accepting new jobs")

// Config configures a Server.
type Config struct {
	// Jobs configures the underlying runner (MaxJobs, Slots, RetryBase).
	// Hooks is owned by the server — it installs its own recorder and
	// registry so the event stream and /metrics are always wired.
	Jobs jobs.Config
	// CheckpointRoot, when set, gives every job a checkpoint directory
	// under it, content-addressed by the job's cache key — the durable
	// state a drain leaves behind and a resubmission resumes from. Empty
	// disables checkpointing.
	CheckpointRoot string
	// DataDir, when set, is the root for server-side dataset paths
	// (DatasetRequest.Path, resolved strictly inside it). Empty restricts
	// submissions to inline TSV uploads.
	DataDir string
	// Registry receives the runner's jobs_* metrics and the server's
	// serve_* metrics, exported at /metrics. NewServer creates one when
	// nil.
	Registry *obs.Registry
}

// servedJob is one submission as the server tracks it. The server assigns
// its own dense ids because cache hits never reach the runner.
type servedJob struct {
	id      int
	name    string
	key     string
	cached  bool // resolved from the result cache at submit time
	ranks   int
	workers int
	ckptDir string

	// job is the underlying runner job; nil for cache hits. Duplicate
	// submissions coalesced onto an in-flight job share its pointer.
	job   *jobs.Job
	entry *cacheEntry
	// done closes when the job is terminal and its result published
	// (closed at creation for cache hits).
	done chan struct{}

	// Guarded by Server.mu.
	terminal bool
	err      error
}

// Server is the parsimoned HTTP handler plus the state behind it: the job
// runner, the server-side job table, and the exact result cache.
type Server struct {
	cfg    Config
	runner *jobs.Runner
	rec    *obs.Recorder
	reg    *obs.Registry
	mux    *http.ServeMux

	mu       sync.Mutex
	draining bool
	table    []*servedJob
	inflight map[string]*servedJob // cache key → running job (single-flight)
	cache    map[string]*cacheEntry
	reports  []jobs.Report // drain reports, once drained
}

// NewServer builds a server over the given configuration.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		rec:      obs.NewRecorder(0),
		reg:      cfg.Registry,
		inflight: map[string]*servedJob{},
		cache:    map[string]*cacheEntry{},
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	rcfg := cfg.Jobs
	rcfg.Hooks = obs.NewHooks(s.rec, s.reg)
	s.runner = jobs.New(rcfg)
	s.routes()
	return s
}

// Registry returns the metrics registry the server exports at /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler, counting each request against its
// route pattern (bounded label cardinality — never the raw URL).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	s.reg.Counter("serve_requests_total", "HTTP requests by route", "route", pattern).Add(1)
	// Dispatch through the mux itself (not the handler it returned) so the
	// request gets its path values bound.
	s.mux.ServeHTTP(w, r)
}

// submit resolves one job request: cache hit, coalesce onto an in-flight
// duplicate, or submit a fresh job to the runner. The returned bool is true
// when no new learning run was started.
func (s *Server) submit(req *JobRequest) (*servedJob, bool, error) {
	d, err := s.loadDataset(req)
	if err != nil {
		return nil, false, err
	}
	spec, budget, err := s.buildJob(req, d)
	if err != nil {
		return nil, false, err
	}
	key := CacheKey(d, spec.Options)
	if s.cfg.CheckpointRoot != "" {
		budget.CheckpointDir = filepath.Join(s.cfg.CheckpointRoot, key[:16])
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errDraining
	}
	if e, ok := s.cache[key]; ok {
		sj := &servedJob{
			id: len(s.table), name: req.Name, key: key, cached: true,
			ranks: max(1, spec.Ranks), workers: max(1, spec.Options.Workers),
			entry: e, done: make(chan struct{}), terminal: true,
		}
		close(sj.done)
		s.table = append(s.table, sj)
		s.reg.Counter("serve_cache_hits_total", "submissions served from the exact result cache", "server", "serve").Add(1)
		return sj, true, nil
	}
	if running, ok := s.inflight[key]; ok {
		// Single-flight: an identical submission is already learning (and,
		// when checkpointing, owns the key's checkpoint directory).
		// Coalesce instead of racing it.
		s.reg.Counter("serve_coalesced_total", "submissions coalesced onto an identical in-flight job", "server", "serve").Add(1)
		return running, true, nil
	}
	s.reg.Counter("serve_cache_misses_total", "submissions that required a learning run", "server", "serve").Add(1)
	// Submit under s.mu: Runner.Submit never blocks (admission is
	// asynchronous), and holding the lock makes the draining check and the
	// in-flight reservation atomic.
	j, err := s.runner.Submit(spec, budget)
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			err = errDraining
		}
		return nil, false, err
	}
	sj := &servedJob{
		id: len(s.table), name: req.Name, key: key,
		ranks: max(1, spec.Ranks), workers: max(1, spec.Options.Workers),
		ckptDir: budget.CheckpointDir, job: j,
		entry: &cacheEntry{key: key, data: d, opt: spec.Options},
		done:  make(chan struct{}),
	}
	s.table = append(s.table, sj)
	s.inflight[key] = sj
	go s.finalize(sj)
	return sj, false, nil
}

// finalize waits for a runner job and publishes its result: on success the
// entry enters the result cache; either way the job leaves the in-flight
// set and its done channel closes.
func (s *Server) finalize(sj *servedJob) {
	out, err := sj.job.Wait()
	s.mu.Lock()
	sj.terminal = true
	sj.err = err
	delete(s.inflight, sj.key)
	if err == nil {
		sj.entry.out = out
		s.cache[sj.key] = sj.entry
		s.reg.Gauge("serve_cache_entries", "networks held by the exact result cache", "server", "serve").Set(float64(len(s.cache)))
	}
	s.mu.Unlock()
	close(sj.done)
}

// jobByID returns the server-side job with the given id.
func (s *Server) jobByID(id int) (*servedJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.table) {
		return nil, false
	}
	return s.table[id], true
}

// result returns a terminal job's cache entry (with its learned output), or
// an error describing why it has none yet.
func (s *Server) result(sj *servedJob) (*cacheEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sj.terminal {
		return nil, fmt.Errorf("job %d is not finished", sj.id)
	}
	if sj.err != nil || sj.entry.out == nil {
		return nil, fmt.Errorf("job %d has no result: %s", sj.id, s.stateLocked(sj))
	}
	return sj.entry, nil
}

// stateLocked names the job's current lifecycle state; callers hold s.mu.
// Terminal states come from the server's published view (so a "done" answer
// implies the result is fetchable), non-terminal ones from the runner.
func (s *Server) stateLocked(sj *servedJob) string {
	if sj.terminal {
		if sj.err != nil {
			var ce *core.CancelledError
			if errors.As(sj.err, &ce) {
				return jobs.StateCancelled.String()
			}
			return jobs.StateFailed.String()
		}
		return jobs.StateDone.String()
	}
	return sj.job.State().String()
}

// Drain performs the graceful SIGTERM shutdown: new submissions get 503,
// running jobs are cancelled through their contexts so they drain to
// durable checkpoints, and the runner's per-job reports — naming each
// resume path — are returned (and kept for later calls). Idempotent.
func (s *Server) Drain() []jobs.Report {
	s.mu.Lock()
	if s.draining {
		reports := s.reports
		s.mu.Unlock()
		return reports
	}
	s.draining = true
	s.mu.Unlock()

	reports := s.runner.Drain()
	s.mu.Lock()
	s.reports = reports
	s.mu.Unlock()
	return reports
}

// Close stops admission and waits for every submitted job to finish
// normally (no cancellation) — the test and smoke-run teardown.
func (s *Server) Close() []jobs.Report {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if alreadyDraining {
		s.mu.Lock()
		reports := s.reports
		s.mu.Unlock()
		return reports
	}
	reports := s.runner.Close()
	s.mu.Lock()
	s.reports = reports
	s.mu.Unlock()
	return reports
}

// loadDataset resolves the request's dataset: exactly one of an inline TSV
// upload or a server-side path under Config.DataDir, optionally subset to
// the first n variables × m observations.
func (s *Server) loadDataset(req *JobRequest) (*dataset.Data, error) {
	var (
		d   *dataset.Data
		err error
	)
	switch {
	case req.Dataset.TSV != "" && req.Dataset.Path != "":
		return nil, errors.New("dataset: give tsv or path, not both")
	case req.Dataset.TSV != "":
		d, err = dataset.ReadTSV(strings.NewReader(req.Dataset.TSV))
	case req.Dataset.Path != "":
		if s.cfg.DataDir == "" {
			return nil, errors.New("dataset: server-side paths are disabled (no data dir configured)")
		}
		if !filepath.IsLocal(req.Dataset.Path) {
			return nil, fmt.Errorf("dataset: path %q escapes the data dir", req.Dataset.Path)
		}
		d, err = dataset.LoadTSV(filepath.Join(s.cfg.DataDir, req.Dataset.Path))
	default:
		return nil, errors.New("dataset: tsv or path required")
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if req.N > 0 || req.M > 0 {
		n, m := d.N, d.M
		if req.N > 0 {
			n = req.N
		}
		if req.M > 0 {
			m = req.M
		}
		if d, err = d.Subset(n, m); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
	}
	return d, nil
}

// buildJob maps the request onto a runner spec and budget, mirroring the
// parsimone CLI's flag semantics (zero values keep the defaults).
func (s *Server) buildJob(req *JobRequest, d *dataset.Data) (jobs.Spec, jobs.Budget, error) {
	opt := core.DefaultOptions()
	if req.Seed != 0 {
		opt.Seed = req.Seed
	}
	opt.Workers = req.Workers
	if req.GaneshRuns > 0 {
		opt.GaneshRuns = req.GaneshRuns
	}
	if req.Updates > 0 {
		opt.Ganesh.Updates = req.Updates
	}
	if req.Trees > 0 {
		opt.Module.Tree.Updates = req.Trees + opt.Module.Tree.Burnin
	}
	if req.Splits > 0 {
		opt.Module.Splits.NumSplits = req.Splits
	}
	if req.MaxSteps > 0 {
		opt.Module.Splits.MaxSteps = req.MaxSteps
	}
	switch req.Dist {
	case "", "static":
	case "scan":
		opt.Module.Splits.ScanSelection = true
	case "dynamic":
		opt.Module.Splits.DynamicChunk = 64
	default:
		return jobs.Spec{}, jobs.Budget{}, fmt.Errorf("dist %q not one of static, scan, dynamic", req.Dist)
	}
	if len(req.Regulators) > 0 {
		index := make(map[string]int, d.N)
		for i, name := range d.Names {
			index[name] = i
		}
		for _, name := range req.Regulators {
			i, ok := index[name]
			if !ok {
				return jobs.Spec{}, jobs.Budget{}, fmt.Errorf("regulator %q is not a variable of the dataset", name)
			}
			opt.Module.Splits.Candidates = append(opt.Module.Splits.Candidates, i)
		}
	}

	b := jobs.Budget{MaxRestarts: req.MaxRestarts}
	if req.DeadlineMS > 0 {
		b.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	switch req.CheckpointFormat {
	case "", "json":
	case "binary":
		b.BinaryCheckpoints = true
	default:
		return jobs.Spec{}, jobs.Budget{}, fmt.Errorf("checkpoint_format %q not one of json, binary", req.CheckpointFormat)
	}
	return jobs.Spec{Name: req.Name, Ranks: req.Ranks, Data: d, Options: opt}, b, nil
}
