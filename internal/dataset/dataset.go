// Package dataset holds the n×m expression matrix the learners consume:
// n variables (genes) observed in m conditions, continuous values, as in
// §2.1 of the paper. It supports the TSV interchange format used by
// Lemon-Tree-style tools (one row per variable: name followed by m values)
// and row/column subsetting for the paper's "first n variables × first m
// observations" experiment construction (§5.2).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Data is an n×m matrix of observations with named variables.
type Data struct {
	// Names has one entry per variable (row).
	Names []string
	// Values is row-major: Values[i*M+j] is variable i in observation j.
	Values []float64
	N, M   int
}

// New allocates an n×m data set with generated variable names G0001….
func New(n, m int) *Data {
	d := &Data{
		Names:  make([]string, n),
		Values: make([]float64, n*m),
		N:      n,
		M:      m,
	}
	for i := range d.Names {
		d.Names[i] = fmt.Sprintf("G%04d", i)
	}
	return d
}

// At returns the value of variable i in observation j.
func (d *Data) At(i, j int) float64 { return d.Values[i*d.M+j] }

// Set assigns the value of variable i in observation j.
func (d *Data) Set(i, j int, v float64) { d.Values[i*d.M+j] = v }

// Row returns the observation vector of variable i, aliasing the underlying
// storage.
func (d *Data) Row(i int) []float64 { return d.Values[i*d.M : (i+1)*d.M] }

// Subset returns a deep copy restricted to the first n variables and first m
// observations, mirroring the paper's construction of smaller benchmark data
// sets from the full compendium.
func (d *Data) Subset(n, m int) (*Data, error) {
	if n <= 0 || n > d.N || m <= 0 || m > d.M {
		return nil, fmt.Errorf("dataset: subset %d×%d outside %d×%d", n, m, d.N, d.M)
	}
	s := New(n, m)
	copy(s.Names, d.Names[:n])
	for i := 0; i < n; i++ {
		copy(s.Row(i), d.Row(i)[:m])
	}
	return s, nil
}

// Clone returns a deep copy.
func (d *Data) Clone() *Data {
	c := New(d.N, d.M)
	copy(c.Names, d.Names)
	copy(c.Values, d.Values)
	return c
}

// Validate checks structural invariants and that all values are finite.
func (d *Data) Validate() error {
	if d.N < 0 || d.M < 0 {
		return fmt.Errorf("dataset: negative dimensions %d×%d", d.N, d.M)
	}
	if len(d.Names) != d.N {
		return fmt.Errorf("dataset: %d names for %d variables", len(d.Names), d.N)
	}
	if len(d.Values) != d.N*d.M {
		return fmt.Errorf("dataset: %d values for %d×%d matrix", len(d.Values), d.N, d.M)
	}
	for i, v := range d.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: non-finite value at cell %d", i)
		}
	}
	return nil
}

// Standardize rescales each variable in place to zero mean and unit variance
// (constant rows are left at zero), the usual preprocessing for expression
// compendia before module-network learning.
func (d *Data) Standardize() {
	for i := 0; i < d.N; i++ {
		row := d.Row(i)
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum / float64(d.M)
		var ss float64
		for _, v := range row {
			dv := v - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(d.M))
		for j, v := range row {
			if sd > 0 {
				row[j] = (v - mean) / sd
			} else {
				row[j] = 0
			}
		}
	}
}

// WriteTSV writes the data set as a header line ("gene" plus observation
// labels) followed by one line per variable: name, then m tab-separated
// values.
func (d *Data) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "gene")
	for j := 0; j < d.M; j++ {
		fmt.Fprintf(bw, "\tobs%d", j)
	}
	fmt.Fprintln(bw)
	for i := 0; i < d.N; i++ {
		fmt.Fprint(bw, d.Names[i])
		for _, v := range d.Row(i) {
			fmt.Fprintf(bw, "\t%g", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV. A header line is detected
// by a non-numeric second field and skipped. Rows must all have the same
// number of values.
func ReadTSV(r io.Reader) (*Data, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var names []string
	var values []float64
	m := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d: need a name and at least one value", line)
		}
		if line == 1 {
			if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
				continue // header
			}
		}
		if m == -1 {
			m = len(fields) - 1
		} else if len(fields)-1 != m {
			return nil, fmt.Errorf("dataset: line %d: %d values, want %d", line, len(fields)-1, m)
		}
		names = append(names, fields[0])
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
			// NaN/Inf parse fine but poison every downstream score;
			// reject them here, where the line number is still known.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: line %d: non-finite value %q", line, f)
			}
			values = append(values, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: no data rows")
	}
	return &Data{Names: names, Values: values, N: len(names), M: m}, nil
}

// LoadTSV reads a data set from the named file.
func LoadTSV(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadTSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// SaveTSV writes the data set to the named file.
func (d *Data) SaveTSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SelectObservations returns a deep copy containing only the given
// observation columns, in the given order. Used for cross-validation folds.
func (d *Data) SelectObservations(cols []int) (*Data, error) {
	for _, j := range cols {
		if j < 0 || j >= d.M {
			return nil, fmt.Errorf("dataset: observation %d outside [0,%d)", j, d.M)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: empty observation selection")
	}
	s := New(d.N, len(cols))
	copy(s.Names, d.Names)
	for i := 0; i < d.N; i++ {
		row := d.Row(i)
		out := s.Row(i)
		for k, j := range cols {
			out[k] = row[j]
		}
	}
	return s, nil
}
