package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parsimone/internal/comm"
)

func writeTestFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.tsv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTSVParallelMatchesSequential(t *testing.T) {
	d := New(13, 7)
	for i := range d.Values {
		d.Values[i] = float64(i) * 1.5
	}
	path := filepath.Join(t.TempDir(), "d.tsv")
	if err := d.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	want, err := LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 5, 13, 16} {
		_, err := comm.Run(p, func(c *comm.Comm) error {
			got, err := LoadTSVParallel(c, path)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got.Values, want.Values) || !reflect.DeepEqual(got.Names, want.Names) {
				t.Errorf("p=%d rank %d: parallel load differs", p, c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestLoadTSVParallelHeader(t *testing.T) {
	path := writeTestFile(t, "gene\tobs0\tobs1\ng1\t1\t2\ng2\t3\t4\n")
	_, err := comm.Run(3, func(c *comm.Comm) error {
		got, err := LoadTSVParallel(c, path)
		if err != nil {
			return err
		}
		if got.N != 2 || got.M != 2 || got.At(1, 1) != 4 {
			t.Errorf("rank %d: got %+v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadTSVParallelMissingFile(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing.tsv")
	_, err := comm.Run(2, func(c *comm.Comm) error {
		if _, err := LoadTSVParallel(c, missing); err == nil {
			t.Errorf("rank %d: missing file accepted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadTSVParallelParseError(t *testing.T) {
	// The bad value lands in one rank's block; every rank must return the
	// error (collective failure, no deadlock).
	path := writeTestFile(t, "g1\t1\t2\ng2\tbad\t4\ng3\t5\t6\n")
	_, err := comm.Run(3, func(c *comm.Comm) error {
		if _, err := LoadTSVParallel(c, path); err == nil {
			t.Errorf("rank %d: parse error not reported", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadTSVParallelRagged(t *testing.T) {
	path := writeTestFile(t, "g1\t1\t2\ng2\t3\n")
	_, err := comm.Run(2, func(c *comm.Comm) error {
		if _, err := LoadTSVParallel(c, path); err == nil {
			t.Errorf("rank %d: ragged file accepted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadTSVParallelEmpty(t *testing.T) {
	path := writeTestFile(t, "gene\tobs0\n")
	_, err := comm.Run(2, func(c *comm.Comm) error {
		if _, err := LoadTSVParallel(c, path); err == nil {
			t.Errorf("rank %d: empty file accepted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
