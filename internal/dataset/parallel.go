// Parallel input, mirroring §5.3 of the paper: "reading the given data set
// in parallel ... by block distributing the variables in the data set to
// the MPI processes ... Then, every process reads the observations for the
// variables assigned to it. Finally, the observations for all the variables
// are communicated to all the processes so that each process has the
// complete data set."
//
// Here every rank scans the file's lines (I/O is cheap), but only parses
// the numeric values of its own variable block (parsing dominates), then
// the parsed rows are all-gathered in variable order.

package dataset

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"parsimone/internal/comm"
)

// parsedRow is one variable's parsed data, exchanged between ranks.
type parsedRow struct {
	Name   string
	Values []float64
}

// LoadTSVParallel reads the named TSV file cooperatively on c's ranks and
// returns the complete data set on every rank. Errors (missing file,
// malformed rows) are detected collectively: every rank returns the same
// error.
func LoadTSVParallel(c *comm.Comm, path string) (*Data, error) {
	rows, localErr := readLines(path)
	// Agree on failure and on the row count before touching content.
	type header struct {
		Err  string
		Rows int
	}
	h := header{Rows: len(rows)}
	if localErr != nil {
		h.Err = localErr.Error()
	}
	hs := comm.AllGather(c, h)
	for _, other := range hs {
		if other.Err != "" {
			return nil, fmt.Errorf("dataset: parallel load: %s", other.Err)
		}
		if other.Rows != h.Rows {
			return nil, fmt.Errorf("dataset: ranks disagree on row count (%d vs %d)", other.Rows, h.Rows)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: %s: no data rows", path)
	}

	// Parse this rank's block of variables.
	lo, hi := comm.BlockRange(len(rows), c.Size(), c.Rank())
	local := make([]parsedRow, 0, hi-lo)
	parseErr := ""
	for i := lo; i < hi; i++ {
		row, err := parseRow(rows[i])
		if err != nil {
			parseErr = fmt.Sprintf("row %d: %v", i, err)
			break
		}
		local = append(local, row)
	}
	errs := comm.AllGather(c, parseErr)
	for _, e := range errs {
		if e != "" {
			return nil, fmt.Errorf("dataset: %s: %s", path, e)
		}
	}

	all := comm.AllGatherv(c, local)
	m := len(all[0].Values)
	d := &Data{N: len(all), M: m}
	d.Names = make([]string, 0, len(all))
	d.Values = make([]float64, 0, len(all)*m)
	for _, row := range all {
		if len(row.Values) != m {
			return nil, fmt.Errorf("dataset: %s: ragged rows (%d vs %d values)", path, len(row.Values), m)
		}
		d.Names = append(d.Names, row.Name)
		d.Values = append(d.Values, row.Values...)
	}
	return d, d.Validate()
}

// readLines returns the raw data lines of the file (header skipped, blank
// lines dropped).
func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []string
	first := true
	for sc.Scan() {
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		if first {
			first = false
			fields := strings.SplitN(text, "\t", 3)
			if len(fields) >= 2 {
				if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
					continue // header line
				}
			}
		}
		out = append(out, text)
	}
	return out, sc.Err()
}

// parseRow parses one data line: name, then tab-separated values.
func parseRow(line string) (parsedRow, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 2 {
		return parsedRow{}, fmt.Errorf("need a name and at least one value")
	}
	row := parsedRow{Name: fields[0], Values: make([]float64, 0, len(fields)-1)}
	for _, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return parsedRow{}, err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return parsedRow{}, fmt.Errorf("non-finite value %q", f)
		}
		row.Values = append(row.Values, v)
	}
	return row, nil
}
