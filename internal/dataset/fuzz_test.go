package dataset

import (
	"strings"
	"testing"
)

// FuzzReadTSV drives the TSV loader with arbitrary byte soup: the loader
// must return an error for malformed input — ragged rows, empty cells,
// non-finite values, binary garbage, oversized fields — and must never
// panic. Whatever it does accept must satisfy every Data invariant,
// including finiteness, so nothing the loader admits can poison the exact
// integer statistics downstream.
func FuzzReadTSV(f *testing.F) {
	f.Add("gene\tobs0\tobs1\nG0\t1.5\t-2\nG1\t0\t3e-2\n") // well-formed
	f.Add("G0\t1\t2\nG1\t3\n")                            // ragged row
	f.Add("G0\t\t2\n")                                    // empty cell
	f.Add("G0\tNaN\t2\n")                                 // NaN value
	f.Add("G0\t+Inf\t-Inf\n")                             // infinities
	f.Add("G0\t1e309\t0\n")                               // overflow to Inf
	f.Add("G0\t" + strings.Repeat("9", 4096) + "\t1\n")   // huge field
	f.Add("\n\n\nG0\t1\t2\n\n")                           // blank lines
	f.Add("name only\n")                                  // no values
	f.Add("\x00\xff\t\x01\n")                             // binary garbage
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadTSV accepted input that fails Validate: %v\ninput: %q", verr, input)
		}
		if d.N == 0 || d.M == 0 {
			t.Fatalf("ReadTSV accepted an empty %d×%d data set\ninput: %q", d.N, d.M, input)
		}
	})
}
