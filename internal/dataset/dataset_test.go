package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func fill(d *Data) {
	for i := 0; i < d.N; i++ {
		for j := 0; j < d.M; j++ {
			d.Set(i, j, float64(i*100+j))
		}
	}
}

func TestNewShape(t *testing.T) {
	d := New(3, 4)
	if d.N != 3 || d.M != 4 || len(d.Values) != 12 || len(d.Names) != 3 {
		t.Fatalf("bad shape: %+v", d)
	}
	if d.Names[0] != "G0000" || d.Names[2] != "G0002" {
		t.Fatalf("bad names: %v", d.Names)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAtSetRow(t *testing.T) {
	d := New(2, 3)
	d.Set(1, 2, 7.5)
	if d.At(1, 2) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	row := d.Row(1)
	if len(row) != 3 || row[2] != 7.5 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 9 // aliasing
	if d.At(1, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestSubset(t *testing.T) {
	d := New(4, 5)
	fill(d)
	s, err := d.Subset(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || s.M != 3 {
		t.Fatalf("shape %dx%d", s.N, s.M)
	}
	if s.At(1, 2) != 102 {
		t.Fatalf("value %v", s.At(1, 2))
	}
	// Deep copy: mutating the subset must not touch the original.
	s.Set(0, 0, -1)
	if d.At(0, 0) == -1 {
		t.Fatal("subset aliases original")
	}
}

func TestSubsetBounds(t *testing.T) {
	d := New(4, 5)
	for _, c := range [][2]int{{0, 3}, {5, 3}, {3, 0}, {3, 6}, {-1, 2}} {
		if _, err := d.Subset(c[0], c[1]); err == nil {
			t.Errorf("Subset(%d,%d) should fail", c[0], c[1])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	d := New(2, 2)
	fill(d)
	c := d.Clone()
	c.Set(0, 0, -5)
	c.Names[0] = "X"
	if d.At(0, 0) == -5 || d.Names[0] == "X" {
		t.Fatal("clone aliases original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := New(2, 2)
	d.Set(1, 1, math.NaN())
	if d.Validate() == nil {
		t.Fatal("NaN not caught")
	}
	d = New(2, 2)
	d.Names = d.Names[:1]
	if d.Validate() == nil {
		t.Fatal("name count mismatch not caught")
	}
	d = New(2, 2)
	d.Values = d.Values[:3]
	if d.Validate() == nil {
		t.Fatal("value count mismatch not caught")
	}
}

func TestStandardize(t *testing.T) {
	d := New(2, 100)
	for j := 0; j < 100; j++ {
		d.Set(0, j, float64(j)*3+17)
		d.Set(1, j, 42) // constant row
	}
	d.Standardize()
	row := d.Row(0)
	var sum, ss float64
	for _, v := range row {
		sum += v
	}
	mean := sum / 100
	for _, v := range row {
		ss += (v - mean) * (v - mean)
	}
	if math.Abs(mean) > 1e-9 || math.Abs(ss/100-1) > 1e-9 {
		t.Fatalf("mean %v var %v", mean, ss/100)
	}
	for _, v := range d.Row(1) {
		if v != 0 {
			t.Fatal("constant row must map to zero")
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	d := New(3, 4)
	fill(d)
	d.Names[1] = "YFG1"
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || got.M != 4 || got.Names[1] != "YFG1" {
		t.Fatalf("round trip shape/names: %+v", got)
	}
	for i := range d.Values {
		if d.Values[i] != got.Values[i] {
			t.Fatalf("value %d: %v != %v", i, d.Values[i], got.Values[i])
		}
	}
}

func TestTSVRoundTripProperty(t *testing.T) {
	check := func(vals []float64, nRaw uint8) bool {
		n := int(nRaw)%3 + 1
		if len(vals) < n {
			return true
		}
		m := len(vals) / n
		d := New(n, m)
		for i := 0; i < n*m; i++ {
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			d.Values[i] = v
		}
		var buf bytes.Buffer
		if err := d.WriteTSV(&buf); err != nil {
			return false
		}
		got, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		for i := range d.Values {
			// %g is shortest-exact for float64, so equality is exact.
			if got.Values[i] != d.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTSVNoHeader(t *testing.T) {
	in := "g1\t1.5\t2.5\ng2\t3\t4\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 2 || d.M != 2 || d.At(0, 1) != 2.5 {
		t.Fatalf("%+v", d)
	}
}

func TestReadTSVSkipsBlankLines(t *testing.T) {
	in := "gene\tobs0\n\ng1\t1\n\ng2\t2\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 2 || d.M != 1 {
		t.Fatalf("%dx%d", d.N, d.M)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"header only":   "gene\tobs0\n",
		"ragged":        "g1\t1\t2\ng2\t3\n",
		"non-numeric":   "g1\t1\ng2\tfoo\n",
		"name only row": "g1\n",
	}
	for name, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestSaveLoadTSV(t *testing.T) {
	d := New(2, 3)
	fill(d)
	path := filepath.Join(t.TempDir(), "d.tsv")
	if err := d.SaveTSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || got.M != 3 || got.At(1, 2) != 102 {
		t.Fatalf("%+v", got)
	}
}

func TestLoadTSVMissingFile(t *testing.T) {
	if _, err := LoadTSV(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestSelectObservations(t *testing.T) {
	d := New(2, 4)
	fill(d)
	s, err := d.SelectObservations([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 2 || s.At(1, 0) != 103 || s.At(1, 1) != 101 {
		t.Fatalf("selection wrong: %+v", s.Values)
	}
	// Deep copy.
	s.Set(0, 0, -9)
	if d.At(0, 3) == -9 {
		t.Fatal("selection aliases original")
	}
}

func TestSelectObservationsErrors(t *testing.T) {
	d := New(2, 3)
	if _, err := d.SelectObservations(nil); err == nil {
		t.Fatal("empty selection accepted")
	}
	if _, err := d.SelectObservations([]int{5}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}
