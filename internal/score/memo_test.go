package score

import (
	"math"
	"testing"

	"parsimone/internal/prng"
)

// randStats draws a plausible sufficient-statistics triple: quantized
// values on the ValueScale grid, counts in the split-bootstrap range.
func randStats(g *prng.MRG3, maxN int) Stats {
	var s Stats
	n := g.Intn(maxN + 1)
	for i := 0; i < n; i++ {
		v := int64(g.Intn(8*ValueScale)) - 4*ValueScale
		s.Add(v)
	}
	return s
}

// TestMemoLogMLBitIdentical: every memo answer — first sight, cache hit,
// collision overwrite — must be bit-equal to Kernel.LogML, which is
// bit-equal to Prior.LogML.
func TestMemoLogMLBitIdentical(t *testing.T) {
	pr := DefaultPrior()
	kern := NewKernel(pr, 4096)
	// A tiny cache forces collisions and overwrites.
	m := NewMemo(kern, 8)
	g := prng.New(41)
	stats := make([]Stats, 400)
	for i := range stats {
		stats[i] = randStats(g, 64)
	}
	// Two sweeps: the second re-queries every triple, hitting a mix of
	// cached and evicted slots.
	for sweep := 0; sweep < 2; sweep++ {
		for _, s := range stats {
			got := m.LogML(s)
			want := kern.LogML(s)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("sweep %d stats %+v: memo %v, kernel %v", sweep, s, got, want)
			}
			if w2 := pr.LogML(s); s.N > 0 && math.Float64bits(got) != math.Float64bits(w2) {
				t.Fatalf("stats %+v: memo %v, prior %v", s, got, w2)
			}
		}
	}
}

// TestMemoCounters pins the counter semantics: zero for empty blocks, one
// miss then hits for a repeated triple, and hits + misses + zero equal to
// the number of calls.
func TestMemoCounters(t *testing.T) {
	kern := NewKernel(DefaultPrior(), 64)
	m := NewMemo(kern, 16)
	if m.LogML(Stats{}) != 0 {
		t.Fatal("empty block did not score 0")
	}
	if m.Zero() != 1 || m.Hits() != 0 || m.Misses() != 0 {
		t.Fatalf("after empty block: zero=%d hits=%d misses=%d", m.Zero(), m.Hits(), m.Misses())
	}
	var s Stats
	s.Add(3 * ValueScale)
	s.Add(-ValueScale)
	m.LogML(s)
	if m.Misses() != 1 || m.Hits() != 0 {
		t.Fatalf("first sight: hits=%d misses=%d", m.Hits(), m.Misses())
	}
	for i := 0; i < 5; i++ {
		m.LogML(s)
	}
	if m.Misses() != 1 || m.Hits() != 5 {
		t.Fatalf("repeats: hits=%d misses=%d", m.Hits(), m.Misses())
	}
	if total := m.Hits() + m.Misses() + m.Zero(); total != 7 {
		t.Fatalf("counter total %d, want 7", total)
	}
}

// TestMemoZeroBypassesKernel: the memo answers empty blocks itself, so the
// kernel's ZeroN counter stays untouched by the batched path.
func TestMemoZeroBypassesKernel(t *testing.T) {
	kern := NewKernel(DefaultPrior(), 64)
	m := NewMemo(kern, 16)
	m.LogML(Stats{})
	if kern.ZeroN() != 0 {
		t.Fatalf("kernel ZeroN %d after memo empty-block call, want 0", kern.ZeroN())
	}
	if kern.LogML(Stats{}) != 0 || kern.ZeroN() != 1 {
		t.Fatalf("kernel ZeroN %d after direct empty-block call, want 1", kern.ZeroN())
	}
}

// TestNewMemoSizing: power-of-two rounding and the ≤0 default.
func TestNewMemoSizing(t *testing.T) {
	kern := NewKernel(DefaultPrior(), 0)
	for _, tc := range []struct{ in, want int }{
		{0, DefaultMemoSlots}, {-5, DefaultMemoSlots}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewMemo(kern, tc.in).Slots(); got != tc.want {
			t.Errorf("NewMemo(%d): %d slots, want %d", tc.in, got, tc.want)
		}
	}
}

// FuzzMemoLogML: for arbitrary exact triples, the memo must stay bit-equal
// to the kernel on both a cold and a warm query.
func FuzzMemoLogML(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(1), int64(ValueScale), int64(ValueScale)*int64(ValueScale))
	f.Add(int64(30), int64(-7)*ValueScale, int64(1<<40))
	kern := NewKernel(DefaultPrior(), 1024)
	m := NewMemo(kern, 64)
	f.Fuzz(func(t *testing.T, n, sum, sumsq int64) {
		s := Stats{N: n, Sum: sum, SumSq: sumsq}
		want := kern.LogML(s)
		for i := 0; i < 2; i++ {
			got := m.LogML(s)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("query %d of %+v: memo %v, kernel %v", i, s, got, want)
			}
		}
	})
}
