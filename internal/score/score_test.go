package score

import (
	"math"
	"testing"
	"testing/quick"

	"parsimone/internal/dataset"
)

func TestQuantizeRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 0.5, 3.14159, -7.9} {
		q := Quantize(x)
		if math.Abs(Dequantize(q)-x) > 1.0/ValueScale {
			t.Fatalf("quantize(%v) = %v, error too large", x, Dequantize(q))
		}
	}
}

func TestQuantizeClips(t *testing.T) {
	if Quantize(100) != int64(MaxAbsValue*ValueScale) {
		t.Fatal("positive clip failed")
	}
	if Quantize(-100) != -int64(MaxAbsValue*ValueScale) {
		t.Fatal("negative clip failed")
	}
}

func TestQuantizeMonotone(t *testing.T) {
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Quantize(a) <= Quantize(b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeData(t *testing.T) {
	d := dataset.New(2, 3)
	d.Set(1, 2, 1.5)
	q := QuantizeData(d)
	if q.N != 2 || q.M != 3 {
		t.Fatalf("shape %dx%d", q.N, q.M)
	}
	if q.At(1, 2) != 3<<(FracBits-1) {
		t.Fatalf("At(1,2) = %d", q.At(1, 2))
	}
	if len(q.Row(1)) != 3 || q.Row(1)[2] != q.At(1, 2) {
		t.Fatal("Row broken")
	}
}

func TestStatsAddRemoveExact(t *testing.T) {
	// Incremental add/remove must equal from-scratch statistics exactly.
	vals := []int64{Quantize(1.1), Quantize(-2.2), Quantize(0.3), Quantize(5)}
	var s Stats
	for _, v := range vals {
		s.Add(v)
	}
	s.Add(Quantize(7))
	s.Remove(Quantize(7))
	want := StatsOf(vals)
	if s != want {
		t.Fatalf("incremental %+v != recomputed %+v", s, want)
	}
}

func TestStatsMergeUnmergeExact(t *testing.T) {
	a := StatsOf([]int64{1, 2, 3})
	b := StatsOf([]int64{10, 20})
	merged := a
	merged.Merge(b)
	if merged != StatsOf([]int64{1, 2, 3, 10, 20}) {
		t.Fatalf("merge wrong: %+v", merged)
	}
	merged.Unmerge(b)
	if merged != a {
		t.Fatalf("unmerge did not invert merge: %+v", merged)
	}
	if a.Plus(b) != StatsOf([]int64{1, 2, 3, 10, 20}) {
		t.Fatal("Plus wrong")
	}
}

func TestStatsIncrementalEqualsRecomputedProperty(t *testing.T) {
	check := func(raw []int16, removeIdx []uint8) bool {
		var inc Stats
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
			inc.Add(vals[i])
		}
		// Remove a subset (each index at most once).
		removed := map[int]bool{}
		var remaining []int64
		for _, ri := range removeIdx {
			if len(vals) == 0 {
				break
			}
			i := int(ri) % len(vals)
			if !removed[i] {
				removed[i] = true
				inc.Remove(vals[i])
			}
		}
		for i, v := range vals {
			if !removed[i] {
				remaining = append(remaining, v)
			}
		}
		return inc == StatsOf(remaining)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPriorValid(t *testing.T) {
	if err := DefaultPrior().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorValidation(t *testing.T) {
	bad := []Prior{
		{Lambda0: 0, Alpha0: 1, Beta0: 1},
		{Lambda0: 1, Alpha0: -1, Beta0: 1},
		{Lambda0: 1, Alpha0: 1, Beta0: 0},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestLogMLEmptyIsZero(t *testing.T) {
	if got := DefaultPrior().LogML(Stats{}); got != 0 {
		t.Fatalf("empty block scored %v", got)
	}
}

func TestLogMLFinite(t *testing.T) {
	pr := DefaultPrior()
	check := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		ml := pr.LogML(StatsOf(vals))
		return !math.IsNaN(ml) && !math.IsInf(ml, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLogMLPrefersTightClusters: a block of near-identical values must score
// higher than the same number of widely spread values — the property that
// makes the Gibbs sampler group co-expressed genes.
func TestLogMLPrefersTightClusters(t *testing.T) {
	pr := DefaultPrior()
	tight := Stats{}
	spread := Stats{}
	for i := 0; i < 20; i++ {
		tight.Add(Quantize(1.0 + 0.01*float64(i%3)))
		spread.Add(Quantize(float64(i%7) - 3))
	}
	if pr.LogML(tight) <= pr.LogML(spread) {
		t.Fatalf("tight %v not preferred over spread %v",
			pr.LogML(tight), pr.LogML(spread))
	}
}

// TestLogMLSplitCoherentGroups: splitting a bimodal block into its two modes
// must increase the total score; splitting a homogeneous block must not
// increase it materially. This is the signal behind both observation
// clustering and split assignment.
func TestLogMLSplitCoherentGroups(t *testing.T) {
	pr := DefaultPrior()
	var all, lo, hi Stats
	for i := 0; i < 30; i++ {
		a := Quantize(-2 + 0.05*float64(i%5))
		b := Quantize(2 + 0.05*float64(i%5))
		all.Add(a)
		all.Add(b)
		lo.Add(a)
		hi.Add(b)
	}
	if pr.LogML(lo)+pr.LogML(hi) <= pr.LogML(all) {
		t.Fatal("splitting a bimodal block did not improve the score")
	}

	var uni, uniA, uniB Stats
	for i := 0; i < 60; i++ {
		q := Quantize(1 + 0.02*float64(i%5))
		uni.Add(q)
		if i%2 == 0 {
			uniA.Add(q)
		} else {
			uniB.Add(q)
		}
	}
	if pr.LogML(uniA)+pr.LogML(uniB) > pr.LogML(uni)+1 {
		t.Fatal("splitting a homogeneous block improved the score materially")
	}
}

// TestLogMLScaleInvariantShape: adding more consistent evidence increases
// the per-point fit advantage of the correct grouping.
func TestLogMLMoreEvidenceStrongerPreference(t *testing.T) {
	pr := DefaultPrior()
	advantage := func(n int) float64 {
		var all, lo, hi Stats
		for i := 0; i < n; i++ {
			a, b := Quantize(-2), Quantize(2)
			all.Add(a)
			all.Add(b)
			lo.Add(a)
			hi.Add(b)
		}
		return pr.LogML(lo) + pr.LogML(hi) - pr.LogML(all)
	}
	if advantage(50) <= advantage(5) {
		t.Fatal("advantage of correct split did not grow with evidence")
	}
}

func TestQuantizeWeightsBasic(t *testing.T) {
	ws := QuantizeWeights([]float64{0, math.Log(0.5)})
	if ws[0] != 1<<WeightBits {
		t.Fatalf("max weight = %d, want 2^%d", ws[0], WeightBits)
	}
	if ws[1] != 1<<(WeightBits-1) {
		t.Fatalf("half weight = %d", ws[1])
	}
}

func TestQuantizeWeightsMaxAlwaysPositive(t *testing.T) {
	check := func(scores []float64) bool {
		clean := false
		for _, s := range scores {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = true
			}
		}
		ws := QuantizeWeights(scores)
		if !clean {
			return true
		}
		var total uint64
		for _, w := range ws {
			total += w
		}
		return total > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeWeightsHandlesDegenerate(t *testing.T) {
	ws := QuantizeWeights([]float64{math.Inf(-1), math.NaN()})
	if ws[0] != 0 || ws[1] != 0 {
		t.Fatalf("degenerate scores got weights %v", ws)
	}
	if ws := QuantizeWeights(nil); len(ws) != 0 {
		t.Fatal("nil input")
	}
}

// TestQuantizeWeightsInfinity is the regression test for the +Inf bug: with
// a +Inf maximum, s−max is NaN for that entry and uint64(NaN) is
// platform-dependent. +Inf must clamp to MaxWeight deterministically, finite
// entries must vanish next to it, and the degenerate inputs stay at zero.
func TestQuantizeWeightsInfinity(t *testing.T) {
	ws := QuantizeWeights([]float64{math.Inf(1), 0, math.NaN(), math.Inf(-1)})
	if ws[0] != MaxWeight {
		t.Fatalf("+Inf weight = %d, want MaxWeight %d", ws[0], MaxWeight)
	}
	if ws[1] != 0 {
		t.Fatalf("finite score next to +Inf got weight %d, want 0", ws[1])
	}
	if ws[2] != 0 || ws[3] != 0 {
		t.Fatalf("NaN/−Inf weights = %v, want 0", ws[2:])
	}
	// Two +Inf entries: both clamp, an equal-weight choice between them.
	ws = QuantizeWeights([]float64{math.Inf(1), math.Inf(1)})
	if ws[0] != MaxWeight || ws[1] != MaxWeight {
		t.Fatalf("double +Inf weights = %v", ws)
	}
	// All-(−Inf): no candidate, all-zero weights.
	ws = QuantizeWeights([]float64{math.Inf(-1), math.Inf(-1)})
	if ws[0] != 0 || ws[1] != 0 {
		t.Fatalf("all-(−Inf) weights = %v, want zeros", ws)
	}
	// The maximum finite score still maps exactly to MaxWeight.
	if ws := QuantizeWeights([]float64{-2, -9}); ws[0] != MaxWeight {
		t.Fatalf("max finite weight = %d, want %d", ws[0], MaxWeight)
	}
}

func TestQuantizeWeightsRelativeOrder(t *testing.T) {
	ws := QuantizeWeights([]float64{-1, -3, -2})
	if !(ws[0] > ws[2] && ws[2] > ws[1]) {
		t.Fatalf("weight order broken: %v", ws)
	}
}

func TestQuantizeProbTable(t *testing.T) {
	cases := []struct {
		name string
		p    float64
		want uint64
	}{
		{"zero", 0, 0},
		{"negative", -0.5, 0},
		{"NaN", math.NaN(), 0},
		{"one clamps to MaxWeight", 1.0, MaxWeight},
		{"above one clamps", 1.5, MaxWeight},
		{"+Inf clamps", math.Inf(1), MaxWeight},
		{"-Inf is zero", math.Inf(-1), 0},
		{"half", 0.5, uint64(1) << (WeightBits - 1)},
		{"typical posterior 1/64", 1.0 / 64, uint64(1) << (WeightBits - 6)},
		{"sub-ULP stays selectable", 1e-300, 1},
		{"smallest positive stays selectable", math.SmallestNonzeroFloat64, 1},
		{"just below grid stays selectable", 1.0 / (1 << (WeightBits + 4)), 1},
	}
	for _, tc := range cases {
		if got := QuantizeProb(tc.p); got != tc.want {
			t.Errorf("%s: QuantizeProb(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestQuantizeProbMatchesLegacyGrid pins QuantizeProb to the historic
// round(p·2^32) grid for ordinary posteriors (k/steps with steps ≤ 256), so
// unifying the selection paths on the shared helper changed no learned
// network.
func TestQuantizeProbMatchesLegacyGrid(t *testing.T) {
	for steps := 1; steps <= 256; steps *= 2 {
		for k := 0; k <= steps; k++ {
			p := float64(k) / float64(steps)
			legacy := uint64(math.RoundToEven(p * (1 << 32)))
			if got := QuantizeProb(p); got != legacy {
				t.Fatalf("QuantizeProb(%d/%d) = %d, legacy grid %d", k, steps, got, legacy)
			}
		}
	}
}

func BenchmarkLogML(b *testing.B) {
	pr := DefaultPrior()
	s := StatsOf([]int64{100, 200, 300, -100, 50, 70, 90, 1000})
	b.Run("prior", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.LogML(s)
		}
	})
	b.Run("kernel", func(b *testing.B) {
		k := NewKernel(pr, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.LogML(s)
		}
	})
}

func BenchmarkStatsAdd(b *testing.B) {
	var s Stats
	for i := 0; i < b.N; i++ {
		s.Add(int64(i))
	}
}
