// Package score implements the decomposable Bayesian scoring function that
// drives every task of the Lemon-Tree pipeline (Joshi et al. 2008; §2.2 of
// the paper). A co-clustering is scored as the sum, over all
// (variable-cluster × observation-cluster) blocks, of the normal-gamma
// marginal log-likelihood of the block's cells; tree-merge scores and
// parent-split scores reuse the same block score on observation subsets.
//
// # Exactness discipline
//
// The paper verifies that its optimized engine, the original Lemon-Tree, and
// the parallel implementation at every processor count all learn *exactly*
// the same network (§4.1–4.2, §5.2.1). Floating-point sufficient statistics
// cannot deliver that: incrementally maintained sums drift from recomputed
// ones. This package therefore quantizes expression values to a 2⁻¹⁶ grid
// at ingestion and maintains sufficient statistics (count, Σx, Σx²) in exact
// int64 fixed point. Incremental and from-scratch statistics are then
// bit-identical, so the optimized engine, the naive rescanning baseline, and
// the parallel engine at any p produce the same scores and hence the same
// network. Sampling weights derived from scores are quantized to uint64
// (integer sums are associative), which makes collective weighted sampling
// independent of reduction order.
package score

import (
	"fmt"
	"math"

	"parsimone/internal/dataset"
)

// FracBits is the number of fractional bits of the fixed-point value grid.
const FracBits = 16

// ValueScale is the fixed-point scale factor, 2^FracBits.
const ValueScale = 1 << FracBits

// MaxAbsValue is the clipping bound applied at quantization. Standardized
// expression values essentially never exceed 8 standard deviations; the
// bound keeps Σx² within int64 for blocks of up to 2^25 cells.
const MaxAbsValue = 8.0

// MaxBlockCells is the largest block size for which the Σx² accumulator is
// guaranteed not to overflow given MaxAbsValue.
const MaxBlockCells = 1 << 25

// Quantize maps a raw value onto the fixed-point grid, clipping to
// ±MaxAbsValue.
func Quantize(x float64) int64 {
	if x > MaxAbsValue {
		x = MaxAbsValue
	} else if x < -MaxAbsValue {
		x = -MaxAbsValue
	}
	return int64(math.RoundToEven(x * ValueScale))
}

// Dequantize maps a fixed-point value back to float64.
func Dequantize(q int64) float64 { return float64(q) / ValueScale }

// QData is a data set quantized for exact scoring. Cells is row-major like
// dataset.Data.Values.
type QData struct {
	Cells []int64
	N, M  int
}

// QuantizeData quantizes every cell of d.
func QuantizeData(d *dataset.Data) *QData {
	q := &QData{Cells: make([]int64, len(d.Values)), N: d.N, M: d.M}
	for i, v := range d.Values {
		q.Cells[i] = Quantize(v)
	}
	return q
}

// At returns the quantized value of variable i in observation j.
func (q *QData) At(i, j int) int64 { return q.Cells[i*q.M+j] }

// Row returns variable i's quantized observation vector, aliasing storage.
func (q *QData) Row(i int) []int64 { return q.Cells[i*q.M : (i+1)*q.M] }

// Stats are exact sufficient statistics of a multiset of quantized values:
// the count, the sum (scale 2^FracBits), and the sum of squares (scale
// 2^(2·FracBits)). The zero value is the empty multiset.
type Stats struct {
	N     int64
	Sum   int64
	SumSq int64
}

// Add inserts one quantized value.
func (s *Stats) Add(q int64) {
	s.N++
	s.Sum += q
	s.SumSq += q * q
}

// Remove deletes one quantized value; exact because the arithmetic is
// integer. Removing a value never added corrupts the statistics silently,
// as with any sufficient-statistics sketch.
func (s *Stats) Remove(q int64) {
	s.N--
	s.Sum -= q
	s.SumSq -= q * q
}

// Merge adds all of other's values.
func (s *Stats) Merge(other Stats) {
	s.N += other.N
	s.Sum += other.Sum
	s.SumSq += other.SumSq
}

// Unmerge removes all of other's values.
func (s *Stats) Unmerge(other Stats) {
	s.N -= other.N
	s.Sum -= other.Sum
	s.SumSq -= other.SumSq
}

// Plus returns the union of two disjoint multisets' statistics.
func (s Stats) Plus(other Stats) Stats {
	return Stats{N: s.N + other.N, Sum: s.Sum + other.Sum, SumSq: s.SumSq + other.SumSq}
}

// StatsOf computes the statistics of a slice of quantized values.
func StatsOf(qs []int64) Stats {
	var s Stats
	for _, q := range qs {
		s.Add(q)
	}
	return s
}

// Prior is the normal-gamma prior (μ₀, λ₀, α₀, β₀) over each block's mean
// and precision.
type Prior struct {
	Mu0, Lambda0, Alpha0, Beta0 float64
}

// DefaultPrior returns the weakly informative prior used throughout: zero
// prior mean, 0.1 pseudo-observations, and a broad precision prior.
func DefaultPrior() Prior {
	return Prior{Mu0: 0, Lambda0: 0.1, Alpha0: 0.1, Beta0: 0.1}
}

// Validate reports a configuration error for non-positive hyperparameters.
func (p Prior) Validate() error {
	if p.Lambda0 <= 0 || p.Alpha0 <= 0 || p.Beta0 <= 0 {
		return fmt.Errorf("score: prior λ₀, α₀, β₀ must be positive, got %+v", p)
	}
	return nil
}

// LogML returns the normal-gamma marginal log-likelihood of the block whose
// sufficient statistics are s:
//
//	λN = λ₀+N, αN = α₀+N/2
//	βN = β₀ + ½·Σ(x−x̄)² + λ₀N(x̄−μ₀)²/(2λN)
//	logML = lnΓ(αN) − lnΓ(α₀) + α₀·ln β₀ − αN·ln βN + ½(ln λ₀ − ln λN) − (N/2)·ln 2π
//
// The empty block scores zero, which makes the total score decomposable over
// any partition.
func (p Prior) LogML(s Stats) float64 {
	if s.N == 0 {
		return 0
	}
	n := float64(s.N)
	sum := float64(s.Sum) / ValueScale
	sumsq := float64(s.SumSq) / (ValueScale * ValueScale)
	mean := sum / n
	ss := sumsq - sum*sum/n
	if ss < 0 {
		ss = 0 // guard the analytic non-negativity against rounding
	}
	lambdaN := p.Lambda0 + n
	alphaN := p.Alpha0 + n/2
	dm := mean - p.Mu0
	betaN := p.Beta0 + 0.5*ss + p.Lambda0*n*dm*dm/(2*lambdaN)
	lgA, _ := math.Lgamma(alphaN)
	lg0, _ := math.Lgamma(p.Alpha0)
	return lgA - lg0 +
		p.Alpha0*math.Log(p.Beta0) - alphaN*math.Log(betaN) +
		0.5*(math.Log(p.Lambda0)-math.Log(lambdaN)) -
		n/2*math.Log(2*math.Pi)
}

// WeightBits is the resolution of quantized sampling weights.
const WeightBits = 32

// MaxWeight is the quantized weight of the maximum log-score, 2^WeightBits.
const MaxWeight = uint64(1) << WeightBits

// QuantizeWeights converts log-scores to integer sampling weights:
// wᵢ = round(exp(sᵢ − max) · 2^WeightBits). The largest score always maps to
// a positive weight, so a selection is possible whenever scores exist.
// Entries with NaN score or score −Inf map to zero weight; +Inf entries (and
// anything whose scaled weight would exceed it) clamp to MaxWeight. The
// clamp matters for determinism: when the maximum is +Inf, sᵢ − max is NaN
// for that entry, and uint64(NaN) is platform-dependent in Go — amd64 yields
// a huge garbage value while arm64 yields 0, so the same run would select
// different candidates on different machines. The weights are what the
// collective weighted sampling consumes; because they are integers, partial
// sums combine associatively and selections are identical for every
// processor count.
func QuantizeWeights(logScores []float64) []uint64 {
	ws := make([]uint64, len(logScores))
	maxs := math.Inf(-1)
	for _, s := range logScores {
		if !math.IsNaN(s) && s > maxs {
			maxs = s
		}
	}
	if math.IsInf(maxs, -1) {
		return ws
	}
	for i, s := range logScores {
		if math.IsNaN(s) || math.IsInf(s, -1) {
			continue
		}
		if math.IsInf(s, 1) {
			ws[i] = MaxWeight
			continue
		}
		w := math.RoundToEven(math.Exp(s-maxs) * (1 << WeightBits))
		if !(w < float64(MaxWeight)) {
			ws[i] = MaxWeight
			continue
		}
		ws[i] = uint64(w)
	}
	return ws
}

// QuantizeProb converts one probability (a bootstrap posterior in [0, 1])
// to an integer sampling weight on the same 2^WeightBits grid as
// QuantizeWeights, with the same guarantees: a positive probability always
// maps to a positive weight (so any retained candidate stays selectable —
// a sub-ULP posterior must not make WeightedIndex fail on an all-zero
// vector), NaN and non-positive values map to zero, and values ≥ 1 clamp
// to MaxWeight (uint64 of an out-of-range float is platform-dependent in
// Go, exactly the portability trap QuantizeWeights documents). Every split
// selection path — the gather-based and segmented-scan parallel paths and
// the naive baseline — must use this one helper so their weights, and
// hence the learned networks, stay bit-identical.
func QuantizeProb(p float64) uint64 {
	if math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p >= 1 {
		return MaxWeight
	}
	w := math.RoundToEven(p * (1 << WeightBits))
	if w < 1 {
		return 1
	}
	if !(w < float64(MaxWeight)) {
		return MaxWeight
	}
	return uint64(w)
}

// Predictive returns the normal-gamma posterior predictive distribution of
// a new value given the block statistics s, approximated as a Gaussian: the
// posterior mean μN and the Student-t predictive variance
// βN(λN+1)/(λN(αN−1)). Unlike the raw empirical moments, the predictive
// variance stays honest on small or extremely tight blocks, which is what
// held-out likelihood scoring needs.
func (p Prior) Predictive(s Stats) (mean, variance float64) {
	n := float64(s.N)
	sum := float64(s.Sum) / ValueScale
	sumsq := float64(s.SumSq) / (ValueScale * ValueScale)
	var xbar, ss float64
	if s.N > 0 {
		xbar = sum / n
		ss = sumsq - sum*sum/n
		if ss < 0 {
			ss = 0
		}
	}
	lambdaN := p.Lambda0 + n
	alphaN := p.Alpha0 + n/2
	dm := xbar - p.Mu0
	betaN := p.Beta0 + 0.5*ss + p.Lambda0*n*dm*dm/(2*lambdaN)
	mean = (p.Lambda0*p.Mu0 + n*xbar) / lambdaN
	if alphaN > 1 {
		variance = betaN * (lambdaN + 1) / (lambdaN * (alphaN - 1))
	} else {
		// Heavy-tailed regime (tiny blocks): fall back to a broad but
		// finite spread.
		variance = betaN * (lambdaN + 1) / lambdaN * 10
	}
	if variance < 1e-6 {
		variance = 1e-6
	}
	return mean, variance
}
