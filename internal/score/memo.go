// The exact logML memo of the batched split scorer. Bootstrap resamples of
// the same ⟨node, parent⟩ pair keep producing blocks with identical
// sufficient statistics — skewed thresholds put small integer multiples of
// the same few observation columns on one side over and over — and every
// repeat pays Kernel.LogML's data-dependent Log(βN) suffix again. Memo
// caches the result keyed on the *exact integer* sufficient-statistic
// triple (N, Sum, SumSq), so a repeated block is served the bit-identical
// float64 the kernel produced the first time: integer keys mean there is no
// rounding in the lookup, only equality, which is what makes the cache
// exact (the same discipline as the kernel's integer count key, DESIGN
// §11/§16).
//
// The cache is direct-mapped with power-of-two slots and overwrites on
// collision: a single probe and a single three-word compare per lookup, no
// chains, no eviction bookkeeping. It is deliberately per-worker (not
// safe for concurrent use) so the hot path needs no atomics and the
// hit/miss counters are plain int64s.

package score

// DefaultMemoSlots is the slot count NewMemo uses when given size ≤ 0:
// 1024 slots × 32 bytes keeps one worker's cache inside L1.
const DefaultMemoSlots = 1024

// memoSlot is one direct-mapped cache slot. key.N == 0 marks an empty
// slot — LogML answers empty blocks before the lookup, so no stored key
// ever has N == 0.
type memoSlot struct {
	key Stats
	val float64
}

// Memo is a per-worker exact memo cache over one Kernel's LogML. Not safe
// for concurrent use: each pool worker owns one.
type Memo struct {
	kern  *Kernel
	mask  uint64
	slots []memoSlot
	// hits/misses/zero are plain counters (single-owner): hits were served
	// from a slot, misses went through to the kernel, zero were empty-block
	// early returns.
	hits, misses, zero int64
}

// NewMemo returns a memo over k with at least size slots (rounded up to a
// power of two); size ≤ 0 selects DefaultMemoSlots.
func NewMemo(k *Kernel, size int) *Memo {
	if size <= 0 {
		size = DefaultMemoSlots
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Memo{kern: k, mask: uint64(n - 1), slots: make([]memoSlot, n)}
}

// Kernel returns the kernel the memo caches for.
func (m *Memo) Kernel() *Kernel { return m.kern }

// Slots returns the slot count.
func (m *Memo) Slots() int { return len(m.slots) }

// Hits, Misses and Zero return the lookup counters: slot serves, kernel
// pass-throughs, and empty-block early returns.
func (m *Memo) Hits() int64   { return m.hits }
func (m *Memo) Misses() int64 { return m.misses }
func (m *Memo) Zero() int64   { return m.zero }

// mixMemoKey hashes the exact triple into a slot index distribution. Any
// deterministic mix is correct (a bad one only costs hit rate, never
// bits); this is three odd-constant multiplies and a fold.
func mixMemoKey(s Stats) uint64 {
	h := uint64(s.N)*0x9e3779b97f4a7c15 + uint64(s.Sum)*0xff51afd7ed558ccd + uint64(s.SumSq)*0xc4ceb9fe1a85ec53
	return h ^ h>>33
}

// LogML returns the kernel's LogML(s) — bit-identical, served from the
// cache when the exact triple was seen before. Empty blocks return 0
// without touching the cache or the kernel, mirroring Kernel.LogML's
// early return (so the kernel's ZeroN counter stays a pure unbatched-path
// counter).
func (m *Memo) LogML(s Stats) float64 {
	if s.N == 0 {
		m.zero++
		return 0
	}
	sl := &m.slots[mixMemoKey(s)&m.mask]
	if sl.key == s {
		m.hits++
		return sl.val
	}
	m.misses++
	v := m.kern.LogML(s)
	sl.key, sl.val = s, v
	return v
}
