package score

import (
	"math"
	"testing"
)

// FuzzQuantizeProb checks the invariants every split-selection path depends
// on: no panic for any float64 (NaN, ±Inf, subnormals), weights stay on the
// [0, MaxWeight] grid, positive probabilities stay selectable, non-positive
// and NaN map to zero, and the mapping is monotone — so quantization never
// reorders candidates relative to their probabilities.
func FuzzQuantizeProb(f *testing.F) {
	seeds := []float64{0, 1, 0.5, -1, math.NaN(), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, 1 - 0x1p-53, 1 + 0x1p-52, math.MaxFloat64}
	for _, a := range seeds {
		for _, b := range seeds {
			f.Add(a, b)
		}
	}
	f.Fuzz(func(t *testing.T, a, b float64) {
		wa, wb := QuantizeProb(a), QuantizeProb(b)
		for _, c := range []struct {
			p float64
			w uint64
		}{{a, wa}, {b, wb}} {
			if c.w > MaxWeight {
				t.Fatalf("QuantizeProb(%g) = %d exceeds MaxWeight", c.p, c.w)
			}
			if math.IsNaN(c.p) || c.p <= 0 {
				if c.w != 0 {
					t.Fatalf("QuantizeProb(%g) = %d, want 0", c.p, c.w)
				}
			} else if c.w == 0 {
				t.Fatalf("QuantizeProb(%g) = 0: positive probability must stay selectable", c.p)
			}
			if c.p >= 1 && c.w != MaxWeight {
				t.Fatalf("QuantizeProb(%g) = %d, want MaxWeight clamp", c.p, c.w)
			}
			if c.w != QuantizeProb(c.p) {
				t.Fatalf("QuantizeProb(%g) is not deterministic", c.p)
			}
		}
		if !math.IsNaN(a) && !math.IsNaN(b) && a <= b && wa > wb {
			t.Fatalf("QuantizeProb not monotone: Q(%g)=%d > Q(%g)=%d", a, wa, b, wb)
		}
	})
}

// FuzzQuantizeWeights checks the log-score weighting the collective
// sampling consumes: no panic on any inputs, weights on [0, MaxWeight],
// NaN/−Inf scores unselectable, a selection always possible when any score
// is non-NaN and above −Inf, and within-vector monotonicity — a higher
// score never receives a lower weight, which is what makes the quantized
// argmax/sampling agree with the real score order.
func FuzzQuantizeWeights(f *testing.F) {
	f.Add(0.0, 0.0, 0.0)
	f.Add(1.5, -3.25, 700.0)
	f.Add(math.Inf(1), math.NaN(), math.Inf(-1))
	f.Add(math.SmallestNonzeroFloat64, -math.MaxFloat64, 0x1p-1040)
	f.Add(-745.0, -744.0, 710.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		s := []float64{a, b, c}
		ws := QuantizeWeights(s)
		if len(ws) != len(s) {
			t.Fatalf("got %d weights for %d scores", len(ws), len(s))
		}
		anySelectable := false
		for i, w := range ws {
			if w > MaxWeight {
				t.Fatalf("weight %d of score %g exceeds MaxWeight", w, s[i])
			}
			if (math.IsNaN(s[i]) || math.IsInf(s[i], -1)) && w != 0 {
				t.Fatalf("score %g got weight %d, want 0", s[i], w)
			}
			anySelectable = anySelectable || w > 0
		}
		maxs := math.Inf(-1)
		for _, v := range s {
			if !math.IsNaN(v) && v > maxs {
				maxs = v
			}
		}
		if !math.IsInf(maxs, -1) && !anySelectable {
			t.Fatalf("scores %v have a maximum %g but no positive weight", s, maxs)
		}
		for i := range s {
			for j := range s {
				if math.IsNaN(s[i]) || math.IsNaN(s[j]) {
					continue
				}
				if s[i] <= s[j] && ws[i] > ws[j] {
					t.Fatalf("not monotone: score %g → %d but score %g → %d",
						s[i], ws[i], s[j], ws[j])
				}
			}
		}
		again := QuantizeWeights(s)
		for i := range ws {
			if ws[i] != again[i] {
				t.Fatalf("QuantizeWeights not deterministic at %d", i)
			}
		}
	})
}
