package score

import (
	"math"
	"testing"

	"parsimone/internal/prng"
)

// kernelTestPriors are the priors the differential tests sweep: the default,
// asymmetric shapes, and extreme-but-valid corners (tiny rates, huge scale,
// far-off-center means) where Lgamma/Log are least forgiving.
func kernelTestPriors() []Prior {
	return []Prior{
		DefaultPrior(),
		{Mu0: 1, Lambda0: 1, Alpha0: 1, Beta0: 1},
		{Mu0: -3.5, Lambda0: 0.01, Alpha0: 2.5, Beta0: 7},
		{Mu0: 1e6, Lambda0: 1e-8, Alpha0: 1e-8, Beta0: 1e308},
		{Mu0: -1e6, Lambda0: 1e8, Alpha0: 1e8, Beta0: 1e-308},
		{Mu0: 0, Lambda0: 0.1, Alpha0: 100, Beta0: 1e-3},
	}
}

// randomStats draws a Stats value whose fields are in the fixed-point ranges
// the quantizer produces (|value| ≤ a few·ValueScale per cell).
func randomStats(g *prng.MRG3, n int64) Stats {
	var s Stats
	s.N = n
	for i := int64(0); i < min(n, 64); i++ {
		v := int64(g.Uint64n(8*ValueScale)) - 4*ValueScale
		s.Sum += v
		s.SumSq += v * v
	}
	// Scale up without drawing MaxBlockCells values: counts beyond the
	// sampled cells reuse the accumulated sums, which keeps the fields in a
	// representative (and exactly representable) range.
	if n > 64 {
		s.Sum *= n / 64
		s.SumSq *= n / 64
	}
	return s
}

// TestKernelLogMLBitIdentical is the kernel's differential table test:
// Kernel.LogML must agree with Prior.LogML to the bit over randomized Stats,
// including N=0, counts at the table edge, counts beyond it (fallback), and
// N at MaxBlockCells, for every test prior.
func TestKernelLogMLBitIdentical(t *testing.T) {
	g := prng.New(41)
	for pi, pr := range kernelTestPriors() {
		const maxN = 4096
		k := NewKernel(pr, maxN)
		counts := []int64{0, 1, 2, 3, 17, 64, 1000, maxN - 1, maxN, maxN + 1, maxN * 3, MaxBlockCells}
		for _, n := range counts {
			for rep := 0; rep < 20; rep++ {
				s := randomStats(g, n)
				want := pr.LogML(s)
				got := k.LogML(s)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("prior %d, stats %+v: Kernel.LogML = %x (%v), Prior.LogML = %x (%v)",
						pi, s, math.Float64bits(got), got, math.Float64bits(want), want)
				}
			}
		}
	}
}

// TestKernelFallbackCounter pins the cache-miss accounting: in-table calls
// never touch the counter, out-of-table calls increment it once each, and
// N=0 short-circuits without counting.
func TestKernelFallbackCounter(t *testing.T) {
	k := NewKernel(DefaultPrior(), 10)
	if k.TableLen() != 11 {
		t.Fatalf("TableLen = %d, want 11", k.TableLen())
	}
	s := randomStats(prng.New(7), 5)
	k.LogML(s)
	k.LogML(Stats{})
	if got := k.Fallbacks(); got != 0 {
		t.Fatalf("fallbacks after in-table calls = %d, want 0", got)
	}
	big := randomStats(prng.New(8), 100)
	k.LogML(big)
	k.LogML(big)
	if got := k.Fallbacks(); got != 2 {
		t.Fatalf("fallbacks after two out-of-table calls = %d, want 2", got)
	}
}

// TestNewKernelClamps pins the constructor's bounds handling: negative maxN
// degenerates to the N=0-only table and oversized requests clamp to
// MaxKernelTableN, with the fallback keeping every call exact.
func TestNewKernelClamps(t *testing.T) {
	if got := NewKernel(DefaultPrior(), -5).TableLen(); got != 1 {
		t.Fatalf("TableLen for negative maxN = %d, want 1", got)
	}
	// Construct-time clamping only; building a MaxKernelTableN-sized table
	// here would dominate the test run, so check the arithmetic instead.
	if MaxKernelTableN != MaxBlockCells {
		t.Fatalf("MaxKernelTableN = %d, want MaxBlockCells = %d", MaxKernelTableN, MaxBlockCells)
	}
}

// FuzzKernelLogML fuzzes the bit-identity over arbitrary Stats fields and
// priors: for any valid prior and any Stats, Kernel.LogML and Prior.LogML
// must return identical bits on both the table and the fallback path.
func FuzzKernelLogML(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), 0.0, 0.1, 0.1, 0.1)
	f.Add(int64(8), int64(1000), int64(250000), 0.0, 0.1, 0.1, 0.1)
	f.Add(int64(5000), int64(-123456), int64(98765432), 1.5, 2.0, 3.0, 4.0)
	f.Add(int64(MaxBlockCells), int64(1)<<40, int64(1)<<50, -1e6, 1e-8, 1e-8, 1e308)
	f.Fuzz(func(t *testing.T, n, sum, sumsq int64, mu0, lambda0, alpha0, beta0 float64) {
		pr := Prior{Mu0: mu0, Lambda0: lambda0, Alpha0: alpha0, Beta0: beta0}
		if pr.Validate() != nil {
			// Sanitize invalid draws into a valid prior rather than skip, so
			// the corpus keeps exercising the comparison.
			pr = DefaultPrior()
		}
		const maxN = 1024
		k := NewKernel(pr, maxN)
		for _, s := range []Stats{
			{N: n, Sum: sum, SumSq: sumsq},
			{N: ((n % maxN) + maxN) % maxN, Sum: sum, SumSq: sumsq},
		} {
			want := pr.LogML(s)
			got := k.LogML(s)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("stats %+v prior %+v: kernel %x, prior %x",
					s, pr, math.Float64bits(got), math.Float64bits(want))
			}
		}
	})
}
