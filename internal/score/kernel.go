// The precomputed exact scoring kernel of the posterior hot loop. The
// parent-split bootstrap evaluates LogML millions of times against one
// fixed prior, and every call pays two Lgamma and three Log evaluations —
// yet four of those five transcendentals depend only on the block's integer
// count N, not on its data. Kernel tables them per count once — folded
// together with every other count-only float64 operation of the score —
// so the hot path keeps a single count-and-data-dependent Log(βN).
//
// # Exactness
//
// The bit-identity discipline (package doc) extends to this cache. Split
// Prior.LogML's evaluation into its count-only prefix operations and the
// data-dependent remainder: tabling works because
//
//  1. each table entry is produced at construction by the *same* float64
//     operation sequence, on the same operand bits, that Prior.LogML would
//     perform at call time — a float64 operation has one correctly-rounded
//     result, so the entry holds the identical bits; and
//  2. the data-dependent operations that remain at call time are an
//     unchanged suffix of Prior.LogML's left-to-right evaluation, written
//     with the same expression shape so the compiler makes the same
//     contraction (FMA) choices in both bodies.
//
// Substituting operands with identical bits into an identical operation
// sequence cannot change any downstream bit. Counts beyond the table fall
// back to Prior.LogML itself. TestKernelLogMLBitIdentical and
// FuzzKernelLogML pin the equivalence; DESIGN.md §11 spells out the
// argument.

package score

import (
	"math"
	"sync/atomic"
)

// MaxKernelTableN caps the kernel's table length (one kernelEntry per
// count). MaxBlockCells bounds every count the engines can produce, so the
// cap only guards against pathological constructor arguments.
const MaxKernelTableN = MaxBlockCells

// kernelEntry holds every count-only intermediate of Prior.LogML for one
// block count n, each computed at construction with the exact operation
// sequence the direct evaluation performs. One entry is 48 bytes, so the
// whole per-count state of a call sits on a single cache line.
type kernelEntry struct {
	// c1 = (lnΓ(α₀+n/2) − lnΓ(α₀)) + α₀·ln β₀ — the score's count-only
	// leading terms, folded left to right exactly as Prior.LogML folds them.
	c1 float64
	// c2 = 0.5·(ln λ₀ − ln(λ₀+n)); c3 = (n/2)·ln 2π.
	c2, c3 float64
	// alphaN = α₀ + n/2, the multiplier of the data-dependent ln βN.
	alphaN float64
	// lamN = λ₀·n and twoLam = 2·(λ₀+n), the count-only factors of βN's
	// shrinkage term λ₀·n·(mean−μ₀)² / (2·λN).
	lamN, twoLam float64
}

// Kernel is a precomputed, exact re-expression of one Prior's LogML:
// Kernel.LogML(s) is bit-equal to Prior.LogML(s) for every Stats value,
// with the count-only terms served from tables instead of recomputed per
// call. Safe for concurrent use.
type Kernel struct {
	prior Prior
	tab   []kernelEntry
	// fallbacks counts LogML calls whose N fell outside the table (served
	// by Prior.LogML, still exact). Atomic: the splits pool shares one
	// kernel across workers. The table-hit path never touches it.
	fallbacks atomic.Int64
	// zeroN counts LogML calls on empty blocks (s.N == 0), which return 0
	// without consulting the table or the prior. Counted so the
	// observability layer can derive true table serves: deriving hits as
	// 3·Σsteps − fallbacks silently credited these early returns to the
	// table (phantom hits, worst under DisableKernel). Atomic, but off the
	// table-hit path: only empty-block calls pay it.
	zeroN atomic.Int64
}

// NewKernel precomputes the scoring kernel of p for block counts 0…maxN.
// Calls with larger counts stay correct via the Prior.LogML fallback.
func NewKernel(p Prior, maxN int) *Kernel {
	if maxN < 0 {
		maxN = 0
	}
	if maxN > MaxKernelTableN {
		maxN = MaxKernelTableN
	}
	k := &Kernel{
		prior: p,
		tab:   make([]kernelEntry, maxN+1),
	}
	lg0, _ := math.Lgamma(p.Alpha0)
	logBeta0 := math.Log(p.Beta0)
	logLambda0 := math.Log(p.Lambda0)
	log2Pi := math.Log(2 * math.Pi)
	for i := range k.tab {
		n := float64(i)
		// Every expression below mirrors the corresponding Prior.LogML
		// intermediate exactly — same operands, same operation order — so
		// each entry is the bit the direct computation would have produced.
		lambdaN := p.Lambda0 + n
		alphaN := p.Alpha0 + n/2
		lgA, _ := math.Lgamma(alphaN)
		k.tab[i] = kernelEntry{
			c1:     lgA - lg0 + p.Alpha0*logBeta0,
			c2:     0.5 * (logLambda0 - math.Log(lambdaN)),
			c3:     n / 2 * log2Pi,
			alphaN: alphaN,
			lamN:   p.Lambda0 * n,
			twoLam: 2 * lambdaN,
		}
	}
	return k
}

// Prior returns the prior the kernel was built for.
func (k *Kernel) Prior() Prior { return k.prior }

// TableLen returns the number of tabled counts (maxN+1 after clamping).
func (k *Kernel) TableLen() int { return len(k.tab) }

// Fallbacks returns how many LogML calls fell outside the table since
// construction — the cache-miss counter the observability layer exposes.
func (k *Kernel) Fallbacks() int64 { return k.fallbacks.Load() }

// ZeroN returns how many LogML calls were empty-block (s.N == 0) early
// returns since construction — calls the table never served.
func (k *Kernel) ZeroN() int64 { return k.zeroN.Load() }

// LogML returns the normal-gamma marginal log-likelihood of the block whose
// sufficient statistics are s, bit-equal to Prior.LogML(s). The remaining
// operations are the data-dependent suffix of Prior.LogML's evaluation,
// kept in the same expression shape: Go may contract a*b+c into an FMA, so
// re-associating the expression could round differently even with identical
// operands.
func (k *Kernel) LogML(s Stats) float64 {
	if s.N == 0 {
		k.zeroN.Add(1)
		return 0
	}
	if s.N < 0 || s.N >= int64(len(k.tab)) {
		k.fallbacks.Add(1)
		return k.prior.LogML(s)
	}
	e := &k.tab[s.N]
	n := float64(s.N)
	sum := float64(s.Sum) / ValueScale
	sumsq := float64(s.SumSq) / (ValueScale * ValueScale)
	mean := sum / n
	ss := sumsq - sum*sum/n
	if ss < 0 {
		ss = 0 // guard the analytic non-negativity against rounding
	}
	dm := mean - k.prior.Mu0
	betaN := k.prior.Beta0 + 0.5*ss + e.lamN*dm*dm/e.twoLam
	return e.c1 - e.alphaN*math.Log(betaN) + e.c2 - e.c3
}
