// Package jobs is the supervised job runtime above core.LearnParallel: a
// deterministic-scheduling queue that admits learning runs against a shared
// capacity pool, enforces per-job budgets (deadline, restart count,
// checkpoint directory), retries failed worlds with jitter-free exponential
// backoff, and drains gracefully on demand — stop admitting, cancel running
// jobs through their contexts, and report the durable checkpoints each job
// left behind (DESIGN §13).
//
// Scheduling is strictly FIFO with head-of-line blocking: job i+1 is never
// admitted before job i, so the admission order is a pure function of the
// submission order — never of goroutine timing. Capacity is accounted in
// p×W slots (ranks × intra-rank workers), mirroring how the engine actually
// occupies cores. The runtime itself never perturbs determinism: each job's
// learned network is still a pure function of its (data, seed, options),
// whatever the runner interleaves.
//
// The package is supervisor-side code — it reads the wallclock for budget
// deadlines, backoff, and report durations, none of which feed
// learned-network state. Every read is audited with //parsivet:wallclock.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/obs"
)

// State is a job's lifecycle position.
type State int

const (
	// StateQueued: submitted, waiting for admission.
	StateQueued State = iota
	// StateRunning: admitted and executing (includes runner-level retries).
	StateRunning
	// StateDone: completed with a learned network.
	StateDone
	// StateFailed: exhausted its restart budget, or failed queued during a
	// drain.
	StateFailed
	// StateCancelled: stopped by its deadline or by a drain; its checkpoint
	// directory (if any) resumes bit-identically.
	StateCancelled
)

// String names the state for reports and logs.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrDrained fails jobs still queued when Drain is called: they never ran,
// so they have no checkpoint state.
var ErrDrained = errors.New("jobs: drained before admission")

// ErrClosed rejects submissions to a runner that is draining or closed.
var ErrClosed = errors.New("jobs: runner is closed to new submissions")

// Spec describes the learning run a job performs.
type Spec struct {
	// Name labels the job in events and reports.
	Name string
	// Ranks is p, the world size core.LearnParallel spins up (0 → 1).
	Ranks int
	// Data is the expression matrix to learn from.
	Data *dataset.Data
	// Options configures the run. The runner overrides Ctx, CheckpointDir,
	// BinaryCheckpoints, MaxRestarts, and Inject-after-first-attempt from
	// the job's Budget — restarts are runner-owned, so Options.MaxRestarts
	// is ignored.
	Options core.Options
}

// need is the job's p×W slot demand against the runner's capacity pool.
func (s Spec) need() int {
	return max(1, s.Ranks) * max(1, s.Options.Workers)
}

// Budget bounds one job's resource consumption.
type Budget struct {
	// Deadline, when > 0, cancels the job that long after it starts
	// running (queue wait does not count). A job stopped by its deadline
	// ends StateCancelled with an error wrapping core.ErrDeadline, and its
	// checkpoint directory resumes bit-identically.
	Deadline time.Duration
	// MaxRestarts is how many times the runner restarts the job's world
	// after a failure before declaring it failed. Restarts resume from
	// CheckpointDir and back off exponentially (jitter-free, base
	// Config.RetryBase).
	MaxRestarts int
	// CheckpointDir, when set, is where the job persists and resumes its
	// task checkpoints — the durable state a deadline, drain, or crash
	// leaves behind.
	CheckpointDir string
	// BinaryCheckpoints selects the v3 binary checkpoint wire format.
	BinaryCheckpoints bool
}

// Report summarizes one job after the runner finished with it.
type Report struct {
	ID       int
	Name     string
	State    State
	Restarts int
	// Checkpoint is the job's checkpoint directory when it holds durable
	// resume state, "" otherwise.
	Checkpoint string
	// Duration is the job's wall-clock running time (zero if never
	// admitted).
	Duration time.Duration
	Err      error
}

// String renders the report as one log line.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %d", r.ID)
	if r.Name != "" {
		fmt.Fprintf(&b, " (%s)", r.Name)
	}
	fmt.Fprintf(&b, ": %s", r.State)
	if r.Restarts > 0 {
		fmt.Fprintf(&b, ", %d restarts", r.Restarts)
	}
	if r.Checkpoint != "" {
		fmt.Fprintf(&b, ", checkpoint %s", r.Checkpoint)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, ": %v", r.Err)
	}
	return b.String()
}

// Config configures a Runner.
type Config struct {
	// MaxJobs caps concurrently running jobs (0 → 1).
	MaxJobs int
	// Slots caps the summed p×W demand of running jobs (0 → unlimited).
	// A job whose own demand exceeds Slots is rejected at Submit — it
	// could never be admitted.
	Slots int
	// RetryBase is the backoff base: restart attempt k (1-based) sleeps
	// RetryBase·2^(k−1) first, capped at maxRetryBackoff. Jitter-free, so a
	// fixed failure schedule replays an identical retry schedule. 0 retries
	// immediately.
	RetryBase time.Duration
	// Hooks receives the job lifecycle events
	// (queued/admitted/running/retry/checkpointed/done/failed) and the
	// jobs_* metrics. Nil disables both.
	Hooks *obs.Hooks
}

// Job is one submitted run. Its exported fields are immutable after Submit.
type Job struct {
	ID     int
	Spec   Spec
	Budget Budget

	r    *Runner
	done chan struct{}

	// Guarded by r.mu.
	state    State
	restarts int
	started  time.Time
	dur      time.Duration
	out      *core.Output
	err      error
}

// Wait blocks until the job reaches a terminal state and returns its
// output (nil unless StateDone) and error.
func (j *Job) Wait() (*core.Output, error) {
	<-j.done
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	return j.out, j.err
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	return j.state
}

// Restarts returns how many runner-level restarts the job has consumed.
func (j *Job) Restarts() int {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	return j.restarts
}

// report builds the job's Report; callers hold r.mu.
func (j *Job) reportLocked() Report {
	rep := Report{
		ID:       j.ID,
		Name:     j.Spec.Name,
		State:    j.state,
		Restarts: j.restarts,
		Duration: j.dur,
		Err:      j.err,
	}
	if hasCheckpoints(j.Budget.CheckpointDir) {
		rep.Checkpoint = j.Budget.CheckpointDir
	}
	return rep
}

// Runner is the supervised job queue. Create with New; submit with Submit;
// stop with Drain (cancel running work) or Close (let it finish).
type Runner struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     []*Job
	queue    []*Job
	running  int
	slots    int
	draining bool
	// closed stops admission of new submissions immediately (set by Close
	// before it waits, and by Drain), while draining additionally stops
	// the queue from being admitted.
	closed bool
}

// New returns a runner over the given configuration.
func New(cfg Config) *Runner {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1
	}
	r := &Runner{cfg: cfg}
	r.cond = sync.NewCond(&r.mu)
	r.ctx, r.cancel = context.WithCancel(context.Background())
	return r
}

// Submit enqueues one job. Admission is FIFO: the job runs once every
// earlier job has been admitted and the runner has MaxJobs and Slots
// capacity for it. Returns ErrClosed after Drain or Close, and an error for
// jobs whose p×W demand can never fit Slots.
func (r *Runner) Submit(spec Spec, b Budget) (*Job, error) {
	if spec.Data == nil {
		return nil, errors.New("jobs: Submit needs a dataset")
	}
	if b.MaxRestarts < 0 {
		return nil, fmt.Errorf("jobs: MaxRestarts %d must be ≥ 0", b.MaxRestarts)
	}
	if r.cfg.Slots > 0 && spec.need() > r.cfg.Slots {
		return nil, fmt.Errorf("jobs: job needs %d slots (p=%d × W=%d) but the pool has only %d",
			spec.need(), max(1, spec.Ranks), max(1, spec.Options.Workers), r.cfg.Slots)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.draining {
		return nil, ErrClosed
	}
	j := &Job{ID: len(r.jobs), Spec: spec, Budget: b, r: r, done: make(chan struct{})}
	r.jobs = append(r.jobs, j)
	r.queue = append(r.queue, j)
	r.emit(obs.TypeJobQueued, j)
	r.count("jobs_submitted_total", "jobs submitted to the runner", 1)
	r.gauges()
	r.admitLocked()
	return j, nil
}

// admitLocked admits queue heads while capacity allows; callers hold r.mu.
// Head-of-line blocking keeps admission order deterministic: if the head
// does not fit, nothing behind it is considered.
func (r *Runner) admitLocked() {
	for !r.draining && len(r.queue) > 0 {
		j := r.queue[0]
		need := j.Spec.need()
		if r.running >= r.cfg.MaxJobs {
			return
		}
		if r.cfg.Slots > 0 && r.slots+need > r.cfg.Slots {
			return
		}
		r.queue = r.queue[1:]
		r.running++
		r.slots += need
		j.state = StateRunning
		j.started = time.Now() //parsivet:wallclock — report duration only, never feeds learned-network state
		r.emit(obs.TypeJobAdmitted, j)
		r.gauges()
		go r.run(j)
	}
}

// run executes one admitted job: attempt, and on failure retry with
// jitter-free exponential backoff until the restart budget is spent. A
// cancellation (deadline or drain) is terminal immediately — the durable
// checkpoints are the job's result.
func (r *Runner) run(j *Job) {
	ctx := r.ctx
	cancel := context.CancelFunc(func() {})
	if j.Budget.Deadline > 0 {
		ctx, cancel = context.WithTimeout(r.ctx, j.Budget.Deadline)
	}
	defer cancel()

	opt := j.Spec.Options
	opt.Ctx = ctx
	opt.CheckpointDir = j.Budget.CheckpointDir
	opt.BinaryCheckpoints = j.Budget.BinaryCheckpoints
	opt.MaxRestarts = 0 // restarts are runner-owned

	r.mu.Lock()
	r.emit(obs.TypeJobRunning, j)
	r.mu.Unlock()

	for attempt := 0; ; attempt++ {
		out, err := core.LearnParallel(max(1, j.Spec.Ranks), j.Spec.Data, opt)
		if err == nil {
			r.finish(j, StateDone, out, nil)
			return
		}
		var ce *core.CancelledError
		if errors.As(err, &ce) {
			r.mu.Lock()
			if len(ce.Checkpoints) > 0 {
				r.emit(obs.TypeJobCheckpointed, j)
			}
			r.mu.Unlock()
			r.finish(j, StateCancelled, nil, err)
			return
		}
		if attempt >= j.Budget.MaxRestarts {
			r.finish(j, StateFailed, nil, err)
			return
		}
		// An injected fault fires once; clear it so the retry resumes
		// cleanly (mirroring core.LearnParallel's own restart loop).
		opt.Inject = nil
		r.mu.Lock()
		j.restarts++
		j.err = err
		r.emit(obs.TypeJobRetry, j)
		j.err = nil
		r.count("jobs_retries_total", "runner-level job restarts", 1)
		r.mu.Unlock()
		if r.cfg.RetryBase > 0 {
			backoff := retryBackoff(r.cfg.RetryBase, attempt)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				// Cancelled mid-backoff: the checkpoints written before
				// the failure are the drain state. Wrap the sentinel in a
				// *core.CancelledError naming them, exactly as an in-run
				// cancellation would — callers unwrap one error shape on
				// every cancellation path.
				r.mu.Lock()
				if hasCheckpoints(j.Budget.CheckpointDir) {
					r.emit(obs.TypeJobCheckpointed, j)
				}
				r.mu.Unlock()
				r.finish(j, StateCancelled, nil, cancelledError(ctx, j.Budget.CheckpointDir))
				return
			}
		}
	}
}

// maxRetryBackoff caps the exponential retry backoff. A bare
// base << attempt overflows time.Duration once the shifted bit leaves the
// top of int64 — an HTTP-submitted job with a big max_restarts could shift
// into a negative duration, and time.After of a negative duration fires
// immediately, busy-looping restarts with no sleep between them.
const maxRetryBackoff = 30 * time.Second

// retryBackoff is base·2^attempt clamped to maxRetryBackoff. The comparison
// form base > maxRetryBackoff>>attempt never shifts base itself, so it is
// overflow-free for every attempt count.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	if base >= maxRetryBackoff || attempt >= 63 || base > maxRetryBackoff>>attempt {
		return maxRetryBackoff
	}
	return base << attempt
}

// cancelCause maps a fired job context to the core sentinel a cancelled
// learning run would have reported.
func cancelCause(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return core.ErrDeadline
	}
	return core.ErrCancelled
}

// cancelledError builds the *core.CancelledError for a job cancelled
// outside a learning run (mid-backoff), mirroring the error the drivers
// return from an in-run cancellation: same unwrap chain, and the durable
// checkpoint files listed when the directory holds any.
func cancelledError(ctx context.Context, dir string) error {
	return &core.CancelledError{
		Cause:         cancelCause(ctx),
		CheckpointDir: dir,
		Checkpoints:   durableCheckpoints(dir),
	}
}

// finish moves a job to its terminal state, releases its capacity, and
// admits the next queue head.
func (r *Runner) finish(j *Job, st State, out *core.Output, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.state = st
	j.out = out
	j.err = err
	j.dur = time.Since(j.started) //parsivet:wallclock — report duration only, never feeds learned-network state
	r.running--
	r.slots -= j.Spec.need()
	switch st {
	case StateDone:
		r.emit(obs.TypeJobDone, j)
		r.count("jobs_done_total", "jobs completed with a learned network", 1)
	case StateCancelled:
		r.emit(obs.TypeJobCancelled, j)
		r.count("jobs_cancelled_total", "jobs stopped by deadline or drain", 1)
	default:
		r.emit(obs.TypeJobFailed, j)
		r.count("jobs_failed_total", "jobs that exhausted their restart budget", 1)
	}
	r.gauges()
	close(j.done)
	r.admitLocked()
	r.cond.Broadcast()
}

// Drain performs a graceful shutdown (the SIGTERM path): stop admitting,
// fail every still-queued job with ErrDrained, cancel the running jobs'
// contexts so they drain to durable checkpoints, wait for them to finish,
// and return one Report per submitted job, in submission order. Safe to
// call once; subsequent Submits return ErrClosed.
func (r *Runner) Drain() []Report {
	r.mu.Lock()
	r.closed = true
	r.draining = true
	for _, j := range r.queue {
		j.state = StateFailed
		j.err = ErrDrained
		r.emit(obs.TypeJobFailed, j)
		r.count("jobs_failed_total", "jobs that exhausted their restart budget", 1)
		close(j.done)
	}
	r.queue = nil
	r.gauges()
	r.mu.Unlock()

	r.cancel() // running jobs observe cancellation at their next check
	r.mu.Lock()
	for r.running > 0 {
		r.cond.Wait()
	}
	reports := r.reportsLocked()
	r.mu.Unlock()
	return reports
}

// Close stops admission of new jobs and waits for every submitted job —
// queued and running — to finish normally (no cancellation), returning the
// reports in submission order. Admission closes immediately: a Submit
// racing Close returns ErrClosed rather than being accepted during the
// wait (which could otherwise starve Close indefinitely).
func (r *Runner) Close() []Report {
	r.mu.Lock()
	r.closed = true
	for len(r.queue) > 0 || r.running > 0 {
		r.cond.Wait()
	}
	r.draining = true
	reports := r.reportsLocked()
	r.mu.Unlock()
	r.cancel()
	return reports
}

// reportsLocked builds the per-job reports; callers hold r.mu.
func (r *Runner) reportsLocked() []Report {
	reports := make([]Report, len(r.jobs))
	for i, j := range r.jobs {
		reports[i] = j.reportLocked()
	}
	return reports
}

// emit sends one lifecycle event for j; callers hold r.mu (the recorder
// has its own lock, so nesting is safe).
func (r *Runner) emit(typ string, j *Job) {
	if r.cfg.Hooks == nil {
		return
	}
	info := &obs.JobInfo{
		ID:       j.ID,
		Name:     j.Spec.Name,
		Ranks:    max(1, j.Spec.Ranks),
		Workers:  max(1, j.Spec.Options.Workers),
		Restarts: j.restarts,
	}
	if typ == obs.TypeJobCheckpointed {
		info.Checkpoint = j.Budget.CheckpointDir
	}
	if j.err != nil {
		info.Err = j.err.Error()
	}
	r.cfg.Hooks.Emit(obs.Event{Type: typ, Job: info})
}

// count bumps a runner counter metric.
func (r *Runner) count(name, help string, delta int64) {
	if reg := r.cfg.Hooks.Registry(); reg != nil {
		reg.Counter(name, help, "runner", "jobs").Add(delta)
	}
}

// gauges refreshes the queue/capacity gauges; callers hold r.mu.
func (r *Runner) gauges() {
	reg := r.cfg.Hooks.Registry()
	if reg == nil {
		return
	}
	reg.Gauge("jobs_queued", "jobs waiting for admission", "runner", "jobs").Set(float64(len(r.queue)))
	reg.Gauge("jobs_running", "jobs currently admitted", "runner", "jobs").Set(float64(r.running))
	reg.Gauge("jobs_slots_used", "p×W slots held by running jobs", "runner", "jobs").Set(float64(r.slots))
}

// hasCheckpoints reports whether dir holds at least one durable (non-temp)
// checkpoint file.
func hasCheckpoints(dir string) bool {
	return len(durableCheckpoints(dir)) > 0
}

// durableCheckpoints lists the durable (non-temp) checkpoint files in dir,
// sorted by name (os.ReadDir order) — the resume inputs a cancelled job
// reports through its *core.CancelledError.
func durableCheckpoints(dir string) []string {
	if dir == "" {
		return nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	return names
}
