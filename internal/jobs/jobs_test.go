package jobs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsimone/internal/comm"
	"parsimone/internal/core"
	"parsimone/internal/dataset"
	"parsimone/internal/obs"
	"parsimone/internal/result"
	"parsimone/internal/splits"
	"parsimone/internal/synth"
)

// fixture builds a small learning problem plus its uninterrupted reference
// network — the bit-identity oracle of every runtime test.
func fixture(t *testing.T) (*dataset.Data, core.Options, *core.Output) {
	t.Helper()
	d, _, err := synth.Generate(synth.Config{
		N: 48, M: 24, Regulators: 4, Modules: 4, Noise: 0.3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 3
	opt.Ganesh.Updates = 1
	opt.Module.Splits = splits.Params{NumSplits: 2, MaxSteps: 16}
	want, err := core.Learn(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d, opt, want
}

// eventTypes extracts the (type, job id) sequence of the job.* events.
func eventTypes(rec *obs.Recorder) []string {
	var seq []string
	for _, ev := range rec.Events() {
		if ev.Job != nil {
			seq = append(seq, fmt.Sprintf("%s:%d", ev.Type, ev.Job.ID))
		}
	}
	return seq
}

// TestRunnerFIFOAdmission: with one running slot, three jobs are admitted
// strictly in submission order, whatever order their goroutines would have
// been scheduled in, and all complete with the reference network.
func TestRunnerFIFOAdmission(t *testing.T) {
	d, opt, want := fixture(t)
	rec := obs.NewRecorder(0)
	r := New(Config{MaxJobs: 1, Hooks: obs.NewHooks(rec, nil)})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := r.Submit(Spec{Name: fmt.Sprintf("job%d", i), Ranks: 1, Data: d, Options: opt}, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	reports := r.Close()
	for i, j := range jobs {
		out, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !result.Equal(out.Network, want.Network) {
			t.Fatalf("job %d learned a different network", i)
		}
		if reports[i].State != StateDone {
			t.Fatalf("report %d: state %v, want done", i, reports[i].State)
		}
	}
	var admitted []int
	for _, ev := range rec.Events() {
		if ev.Type == obs.TypeJobAdmitted {
			admitted = append(admitted, ev.Job.ID)
		}
	}
	if fmt.Sprint(admitted) != "[0 1 2]" {
		t.Fatalf("admission order %v, want [0 1 2]", admitted)
	}
	if err := obs.Validate(rec.Events()); err != nil {
		t.Fatalf("job event stream invalid: %v", err)
	}
}

// TestRunnerSlotAccounting: capacity is p×W — a job that saturates the pool
// holds back the next one until it finishes (admitted-after-done in the
// event stream), and a job that can never fit is rejected at Submit.
func TestRunnerSlotAccounting(t *testing.T) {
	d, opt, _ := fixture(t)
	rec := obs.NewRecorder(0)
	r := New(Config{MaxJobs: 8, Slots: 4, Hooks: obs.NewHooks(rec, nil)})

	wide := opt
	wide.Workers = 2
	if _, err := r.Submit(Spec{Ranks: 4, Data: d, Options: wide}, Budget{}); err == nil {
		t.Fatal("job needing 8 slots admitted into a 4-slot pool")
	}

	// Job 0 needs 2×2 = 4 slots (the whole pool); job 1 needs 1.
	if _, err := r.Submit(Spec{Ranks: 2, Data: d, Options: wide}, Budget{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Spec{Ranks: 1, Data: d, Options: opt}, Budget{}); err != nil {
		t.Fatal(err)
	}
	reports := r.Close()
	for _, rep := range reports {
		if rep.State != StateDone {
			t.Fatalf("%v", rep)
		}
	}
	var order []string
	for _, ev := range rec.Events() {
		if ev.Type == obs.TypeJobAdmitted || ev.Type == obs.TypeJobDone {
			order = append(order, fmt.Sprintf("%s:%d", ev.Type, ev.Job.ID))
		}
	}
	wantOrder := "[job.admitted:0 job.done:0 job.admitted:1 job.done:1]"
	if fmt.Sprint(order) != wantOrder {
		t.Fatalf("event order %v, want %v — job 1 was admitted while job 0 held the pool", order, wantOrder)
	}
}

// TestJobDeadlineDrainsToResumableCheckpoint: a deadline stops the job as
// StateCancelled with core.ErrDeadline, and the checkpoint directory it
// drained to resumes to the bit-identical network.
func TestJobDeadlineDrainsToResumableCheckpoint(t *testing.T) {
	d, opt, want := fixture(t)
	dir := t.TempDir()
	r := New(Config{MaxJobs: 1})
	j, err := r.Submit(Spec{Ranks: 1, Data: d, Options: opt},
		Budget{Deadline: time.Millisecond, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out, jerr := j.Wait()
	if out != nil || !errors.Is(jerr, core.ErrDeadline) {
		t.Fatalf("got (%v, %v), want (nil, ErrDeadline)", out != nil, jerr)
	}
	if j.State() != StateCancelled {
		t.Fatalf("state %v, want cancelled", j.State())
	}
	resumed := opt
	resumed.CheckpointDir = dir
	got, err := core.LearnParallel(1, d, resumed)
	if err != nil {
		t.Fatalf("resume from the drained checkpoint failed: %v", err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("resumed network differs from the uninterrupted run")
	}
	r.Drain()
}

// TestJobRetryAfterInjectedFault: the runner owns restarts — an injected
// rank crash consumes one of the job's MaxRestarts, the retry resumes from
// the checkpoint directory, and the final network is bit-identical.
func TestJobRetryAfterInjectedFault(t *testing.T) {
	d, opt, want := fixture(t)
	rec := obs.NewRecorder(0)
	reg := obs.NewRegistry()
	r := New(Config{MaxJobs: 1, RetryBase: time.Millisecond, Hooks: obs.NewHooks(rec, reg)})
	injected := opt
	injected.Inject = &core.FaultSpec{Task: core.TaskGaneSH, Rank: 0}
	j, err := r.Submit(Spec{Name: "faulty", Ranks: 2, Data: d, Options: injected},
		Budget{MaxRestarts: 1, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	out, jerr := j.Wait()
	if jerr != nil {
		t.Fatalf("job failed despite its restart budget: %v", jerr)
	}
	if !result.Equal(out.Network, want.Network) {
		t.Fatal("retried job learned a different network")
	}
	if j.Restarts() != 1 {
		t.Fatalf("job consumed %d restarts, want 1", j.Restarts())
	}
	var sawRetry bool
	for _, ev := range rec.Events() {
		if ev.Type == obs.TypeJobRetry {
			sawRetry = true
			if ev.Job.Err == "" {
				t.Error("job.retry event carries no error description")
			}
		}
	}
	if !sawRetry {
		t.Fatal("no job.retry event emitted")
	}
	if got := reg.Counter("jobs_retries_total", "", "runner", "jobs").Value(); got != 1 {
		t.Fatalf("jobs_retries_total = %d, want 1", got)
	}
	r.Drain()
}

// TestJobExhaustsRestartBudget: with MaxRestarts 0, the injected crash is
// the job's terminal error.
func TestJobExhaustsRestartBudget(t *testing.T) {
	d, opt, _ := fixture(t)
	r := New(Config{MaxJobs: 1})
	injected := opt
	injected.Inject = &core.FaultSpec{Task: core.TaskGaneSH, Rank: 0}
	j, err := r.Submit(Spec{Ranks: 2, Data: d, Options: injected}, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, jerr := j.Wait(); !errors.Is(jerr, comm.ErrInjected) {
		t.Fatalf("got %v, want the injected crash", jerr)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v, want failed", j.State())
	}
	r.Drain()
}

// TestDrainUnderFault is the graceful-drain acceptance property: a drain
// racing an injected rank crash (with a restart budget, so the drain can
// land before, during, or after the recovery) must end every job either
// completed — bit-identical network — or cancelled with durable state that
// resumes bit-identically. For p ∈ {1, 2, 4}; queued jobs behind the
// drained one fail with ErrDrained and never run.
func TestDrainUnderFault(t *testing.T) {
	d, opt, want := fixture(t)
	for _, p := range []int{1, 2, 4} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			dir := t.TempDir()
			r := New(Config{MaxJobs: 1, RetryBase: 20 * time.Millisecond})
			injected := opt
			if p == 1 {
				// Single-rank worlds have no comm ops to address; crash at
				// a pipeline failpoint instead.
				injected.Inject = &core.FaultSpec{Task: "module:0", Rank: 0}
			} else {
				injected.Inject = &core.FaultSpec{Comm: []comm.Fault{
					{Rank: p - 1, Op: 2, Kind: comm.FaultCrash},
				}}
			}
			running, err := r.Submit(Spec{Name: "victim", Ranks: p, Data: d, Options: injected},
				Budget{MaxRestarts: 1, CheckpointDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			queued, err := r.Submit(Spec{Name: "starved", Ranks: p, Data: d, Options: opt}, Budget{})
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond) // let the drain race the crash and retry
			reports := r.Drain()

			if _, qerr := queued.Wait(); !errors.Is(qerr, ErrDrained) {
				t.Fatalf("queued job got %v, want ErrDrained", qerr)
			}
			out, jerr := running.Wait()
			switch running.State() {
			case StateDone:
				if !result.Equal(out.Network, want.Network) {
					t.Fatal("drained job completed with a different network")
				}
			case StateCancelled:
				if !errors.Is(jerr, core.ErrCancelled) && !errors.Is(jerr, core.ErrDeadline) {
					t.Fatalf("cancelled job error %v carries no cancellation sentinel", jerr)
				}
				resumed := opt
				resumed.CheckpointDir = dir
				got, err := core.LearnParallel(p, d, resumed)
				if err != nil {
					t.Fatalf("resume of the drained job failed: %v", err)
				}
				if !result.Equal(got.Network, want.Network) {
					t.Fatal("drained job's checkpoint resumed to a different network")
				}
			default:
				t.Fatalf("drained job ended %v (err %v), want done or cancelled", running.State(), jerr)
			}
			if len(reports) != 2 || reports[1].Err == nil {
				t.Fatalf("reports %v do not cover both jobs", reports)
			}
			if _, err := r.Submit(Spec{Ranks: 1, Data: d, Options: opt}, Budget{}); !errors.Is(err, ErrClosed) {
				t.Fatalf("post-drain Submit got %v, want ErrClosed", err)
			}
		})
	}
}

// TestCancelEventMetricAgreement: a cancelled job emits job.cancelled —
// not job.failed — so the event stream agrees with jobs_cancelled_total.
func TestCancelEventMetricAgreement(t *testing.T) {
	d, opt, _ := fixture(t)
	rec := obs.NewRecorder(0)
	reg := obs.NewRegistry()
	r := New(Config{MaxJobs: 1, Hooks: obs.NewHooks(rec, reg)})
	j, err := r.Submit(Spec{Name: "deadline", Ranks: 1, Data: d, Options: opt},
		Budget{Deadline: time.Millisecond, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, jerr := j.Wait(); !errors.Is(jerr, core.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", jerr)
	}
	if j.State() != StateCancelled {
		t.Fatalf("state %v, want cancelled", j.State())
	}
	evs := rec.Events()
	if err := obs.Validate(evs); err != nil {
		t.Fatalf("event stream invalid: %v", err)
	}
	cancelled, failed := 0, 0
	for _, ev := range evs {
		switch ev.Type {
		case obs.TypeJobCancelled:
			cancelled++
		case obs.TypeJobFailed:
			failed++
		}
	}
	if cancelled != 1 || failed != 0 {
		t.Fatalf("saw %d job.cancelled and %d job.failed events, want 1 and 0", cancelled, failed)
	}
	if got := reg.Counter("jobs_cancelled_total", "", "runner", "jobs").Value(); got != int64(cancelled) {
		t.Fatalf("jobs_cancelled_total = %d disagrees with %d job.cancelled events", got, cancelled)
	}
	if got := reg.Counter("jobs_failed_total", "", "runner", "jobs").Value(); got != 0 {
		t.Fatalf("jobs_failed_total = %d, want 0", got)
	}
	r.Drain()
}

// TestMidBackoffCancelWrapsCancelledError: a drain landing while the job
// sits in retry backoff must surface the same *core.CancelledError shape as
// an in-run cancellation — naming the checkpoint directory — so callers
// using errors.As see every cancellation path uniformly.
func TestMidBackoffCancelWrapsCancelledError(t *testing.T) {
	d, opt, want := fixture(t)
	dir := t.TempDir()
	// A long backoff pins the job mid-backoff after its injected crash.
	r := New(Config{MaxJobs: 1, RetryBase: time.Hour})
	injected := opt
	injected.Inject = &core.FaultSpec{Task: core.TaskGaneSH, Rank: 0}
	j, err := r.Submit(Spec{Name: "backoff", Ranks: 2, Data: d, Options: injected},
		Budget{MaxRestarts: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first restart to be charged — the job is then in (or
	// entering) its hour-long backoff sleep.
	deadline := time.Now().Add(30 * time.Second)
	for j.Restarts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never reached its retry backoff")
		}
		time.Sleep(time.Millisecond)
	}
	r.Drain()
	_, jerr := j.Wait()
	var ce *core.CancelledError
	if !errors.As(jerr, &ce) {
		t.Fatalf("mid-backoff cancellation returned %v (%T), want *core.CancelledError", jerr, jerr)
	}
	if ce.CheckpointDir != dir {
		t.Fatalf("CancelledError names checkpoint dir %q, want %q", ce.CheckpointDir, dir)
	}
	if len(ce.Checkpoints) == 0 {
		t.Fatal("CancelledError lists no durable checkpoints, but the GaneSH checkpoint was written before the crash")
	}
	resumed := opt
	resumed.CheckpointDir = dir
	got, err := core.LearnParallel(2, d, resumed)
	if err != nil {
		t.Fatalf("resume from the reported checkpoint failed: %v", err)
	}
	if !result.Equal(got.Network, want.Network) {
		t.Fatal("resumed network differs from the uninterrupted run")
	}
}

// TestSubmitDuringCloseReturnsErrClosed: Close documents that it stops
// admission — a Submit racing the Close wait must get ErrClosed immediately
// instead of being accepted (and potentially starving Close forever).
// Exercised under -race by `make race`.
func TestSubmitDuringCloseReturnsErrClosed(t *testing.T) {
	d, opt, _ := fixture(t)
	r := New(Config{MaxJobs: 1})
	if _, err := r.Submit(Spec{Name: "running", Ranks: 1, Data: d, Options: opt}, Budget{}); err != nil {
		t.Fatal(err)
	}
	closeDone := make(chan []Report, 1)
	go func() { closeDone <- r.Close() }()
	// Wait until Close has closed admission (it may still be waiting on
	// the running job).
	deadline := time.Now().Add(30 * time.Second)
	for {
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Close never closed admission")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Submit(Spec{Ranks: 1, Data: d, Options: opt}, Budget{}); !errors.Is(err, ErrClosed) {
				t.Errorf("Submit during Close got %v, want ErrClosed", err)
			}
		}()
	}
	wg.Wait() // all Submits rejected without waiting for Close to finish
	reports := <-closeDone
	if len(reports) != 1 || reports[0].State != StateDone {
		t.Fatalf("reports %v, want the one pre-Close job done", reports)
	}
}

// TestRunnerEventStreamAndMetrics: the lifecycle stream of a mixed run
// (one success, one drained-away job) validates against the obs schema and
// feeds the metrics registry.
func TestRunnerEventStreamAndMetrics(t *testing.T) {
	d, opt, _ := fixture(t)
	rec := obs.NewRecorder(0)
	reg := obs.NewRegistry()
	r := New(Config{MaxJobs: 1, Hooks: obs.NewHooks(rec, reg)})
	j, err := r.Submit(Spec{Name: "ok", Ranks: 1, Data: d, Options: opt}, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	// Drained before admission: emits job.failed with ErrDrained.
	r.mu.Lock()
	r.queue = append(r.queue, &Job{ID: len(r.jobs), Spec: Spec{Name: "late"}, r: r, done: make(chan struct{})})
	r.jobs = append(r.jobs, r.queue[0])
	r.mu.Unlock()
	r.Drain()

	evs := rec.Events()
	if err := obs.Validate(evs); err != nil {
		t.Fatalf("event stream invalid: %v", err)
	}
	seq := eventTypes(rec)
	wantPrefix := []string{"job.queued:0", "job.admitted:0", "job.running:0", "job.done:0"}
	for i, w := range wantPrefix {
		if i >= len(seq) || seq[i] != w {
			t.Fatalf("event sequence %v, want prefix %v", seq, wantPrefix)
		}
	}
	if seq[len(seq)-1] != "job.failed:1" {
		t.Fatalf("drain did not fail the queued job: %v", seq)
	}
	if got := reg.Counter("jobs_done_total", "", "runner", "jobs").Value(); got != 1 {
		t.Fatalf("jobs_done_total = %d, want 1", got)
	}
	if got := reg.Counter("jobs_failed_total", "", "runner", "jobs").Value(); got != 1 {
		t.Fatalf("jobs_failed_total = %d, want 1", got)
	}
}

// TestRetryBackoffClampsOverflow: the exponential backoff must saturate at
// maxRetryBackoff instead of shifting past the top of int64. Before the
// clamp, high attempt counts produced a negative duration, and
// time.After(negative) fires immediately — restarts busy-looped with no
// sleep between them.
func TestRetryBackoffClampsOverflow(t *testing.T) {
	base := 50 * time.Millisecond
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{0, base},
		{1, 2 * base},
		{3, 8 * base},
		{9, 25600 * time.Millisecond},
		{10, maxRetryBackoff}, // 51.2s uncapped
		{40, maxRetryBackoff}, // ~64 000 years uncapped
		{62, maxRetryBackoff}, // negative uncapped: the overflow the fix targets
		{63, maxRetryBackoff},
		{200, maxRetryBackoff}, // shift count alone is UB-adjacent uncapped
	} {
		got := retryBackoff(base, tc.attempt)
		if got != tc.want {
			t.Errorf("retryBackoff(%v, %d) = %v, want %v", base, tc.attempt, got, tc.want)
		}
		if got <= 0 {
			t.Errorf("retryBackoff(%v, %d) = %v, non-positive", base, tc.attempt, got)
		}
	}
	// The uncapped expression really does go negative at attempt 62 — the
	// premise of the regression.
	if raw := base << 62; raw > 0 {
		t.Fatalf("premise: %v << 62 = %v, expected overflow to negative", base, raw)
	}
	if retryBackoff(time.Hour, 5) != maxRetryBackoff {
		t.Fatal("base above the cap must saturate immediately")
	}
}
