// Binary serialization of the learned network (DESIGN §12). The wire file
// carries the self-describing header (KindNetwork, N) and one payload
// section. Names appear once: module variable names and parent names that
// are derivable from the network-level Names table are encoded as a one-byte
// "derived" marker instead of repeated strings, which is the common case for
// networks learned from a named data set. Scores are fixed 8-byte IEEE-754
// so a decoded network is bit-identical to the encoded one (§5.2.1).

package result

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"parsimone/internal/wire"
)

// secNetwork is the single payload section ID of a KindNetwork file.
const secNetwork = 1

// Name-reference modes: how a name field was encoded.
const (
	nameAbsent   = 0 // no name stored
	nameDerived  = 1 // equal to Names[index]; not repeated on the wire
	nameExplicit = 2 // literal string follows
)

// WriteBinary serializes the network in the versioned binary wire format.
func (n *Network) WriteBinary(w io.Writer) error {
	e := wire.NewEncoder()
	e.Int(n.M)
	e.Uvarint(uint64(len(n.Names)))
	for _, name := range n.Names {
		e.String(name)
	}
	e.Uvarint(uint64(len(n.Modules)))
	for i := range n.Modules {
		n.encodeModule(e, &n.Modules[i])
	}
	h := wire.Header{Kind: wire.KindNetwork, N: n.N}
	data := wire.EncodeFile(h, []wire.Section{{ID: secNetwork, Body: e.Bytes()}})
	_, err := w.Write(data)
	return err
}

func (n *Network) encodeModule(e *wire.Encoder, mod *Module) {
	e.Varint(int64(mod.ID))
	e.SortedInts(mod.Variables)
	// Variable names: usually just Names indexed by Variables — encode the
	// whole list as one derived marker when so.
	switch {
	case len(mod.VariableNames) == 0:
		e.Byte(nameAbsent)
	case n.namesDerived(mod):
		e.Byte(nameDerived)
	default:
		e.Byte(nameExplicit)
		e.Uvarint(uint64(len(mod.VariableNames)))
		for _, name := range mod.VariableNames {
			e.String(name)
		}
	}
	n.encodeParents(e, mod.Parents)
	n.encodeParents(e, mod.ParentsUniform)
}

// namesDerived reports whether mod.VariableNames is exactly Names indexed by
// mod.Variables, and therefore need not be stored.
func (n *Network) namesDerived(mod *Module) bool {
	if len(mod.VariableNames) != len(mod.Variables) {
		return false
	}
	for i, v := range mod.Variables {
		if v < 0 || v >= len(n.Names) || mod.VariableNames[i] != n.Names[v] {
			return false
		}
	}
	return true
}

func (n *Network) encodeParents(e *wire.Encoder, ps []Parent) {
	e.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.Varint(int64(p.Index))
		switch {
		case p.Name == "":
			e.Byte(nameAbsent)
		case p.Index >= 0 && p.Index < len(n.Names) && p.Name == n.Names[p.Index]:
			e.Byte(nameDerived)
		default:
			e.Byte(nameExplicit)
			e.String(p.Name)
		}
		e.Float64(p.Score)
		e.Varint(int64(p.Count))
	}
}

// ReadBinary parses and validates a network written by WriteBinary.
func ReadBinary(r io.Reader) (*Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	h, secs, err := wire.DecodeFile(data)
	if err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}
	if h.Kind != wire.KindNetwork {
		return nil, fmt.Errorf("result: file is a %s, expected a %s", h.Kind, wire.KindNetwork)
	}
	body, ok := wire.FindSection(secs, secNetwork)
	if !ok {
		return nil, fmt.Errorf("result: %s file has no payload section", wire.KindNetwork)
	}
	d := wire.NewDecoder(body)
	n := &Network{N: h.N}
	n.M = d.Int()
	if count := d.Count(1); count > 0 {
		n.Names = make([]string, 0, count)
		for i := 0; i < count && d.Err() == nil; i++ {
			n.Names = append(n.Names, d.String())
		}
	}
	nm := d.Count(1)
	n.Modules = make([]Module, 0, nm)
	for i := 0; i < nm && d.Err() == nil; i++ {
		n.Modules = append(n.Modules, n.decodeModule(d))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}
	if rem := d.Remaining(); rem != 0 {
		return nil, fmt.Errorf("result: network payload has %d trailing bytes", rem)
	}
	if err := checkLoaded(n); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *Network) decodeModule(d *wire.Decoder) Module {
	mod := Module{ID: int(d.Varint())}
	mod.Variables = d.SortedInts()
	switch mode := d.Byte(); mode {
	case nameAbsent:
	case nameDerived:
		mod.VariableNames = make([]string, len(mod.Variables))
		for i, v := range mod.Variables {
			if v < 0 || v >= len(n.Names) {
				d.Failf("derived variable name index %d outside the %d-entry names table", v, len(n.Names))
				return mod
			}
			mod.VariableNames[i] = n.Names[v]
		}
	case nameExplicit:
		count := d.Count(1)
		mod.VariableNames = make([]string, 0, count)
		for i := 0; i < count && d.Err() == nil; i++ {
			mod.VariableNames = append(mod.VariableNames, d.String())
		}
	default:
		d.Failf("unknown name mode %d", mode)
	}
	mod.Parents = n.decodeParents(d)
	mod.ParentsUniform = n.decodeParents(d)
	return mod
}

func (n *Network) decodeParents(d *wire.Decoder) []Parent {
	count := d.Count(11) // index + mode + 8-byte score + count, minimum
	if count == 0 {
		return nil
	}
	ps := make([]Parent, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		p := Parent{Index: int(d.Varint())}
		switch mode := d.Byte(); mode {
		case nameAbsent:
		case nameDerived:
			if p.Index < 0 || p.Index >= len(n.Names) {
				d.Failf("derived parent name index %d outside the %d-entry names table", p.Index, len(n.Names))
				return ps
			}
			p.Name = n.Names[p.Index]
		case nameExplicit:
			p.Name = d.String()
		default:
			d.Failf("unknown name mode %d", mode)
		}
		p.Score = d.Float64()
		p.Count = int(d.Varint())
		ps = append(ps, p)
	}
	return ps
}

// ReadJSON parses and validates a network written by WriteJSON. The decode
// is strict: unknown fields and trailing data are errors, as are NaN or
// infinite parent scores and structurally invalid networks — a reloaded
// result file either round-trips exactly or fails loudly.
func ReadJSON(r io.Reader) (*Network, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var n Network
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("result: trailing data after the JSON document")
	}
	if err := checkLoaded(&n); err != nil {
		return nil, err
	}
	return &n, nil
}

// checkLoaded validates a deserialized network beyond what Validate covers
// for freshly learned ones: shape fields non-negative, uniform-baseline
// parent indices in range, names tables sized consistently, and every score
// finite (NaN and ±Inf serialize in some formats but can never come from
// the scorer, so they mark a corrupt or foreign file).
func checkLoaded(n *Network) error {
	if n.N < 0 || n.M < 0 {
		return fmt.Errorf("result: negative data shape %d×%d", n.N, n.M)
	}
	if len(n.Names) != 0 && len(n.Names) != n.N {
		return fmt.Errorf("result: %d names for %d variables", len(n.Names), n.N)
	}
	if err := n.Validate(); err != nil {
		return err
	}
	for _, mod := range n.Modules {
		if len(mod.VariableNames) != 0 && len(mod.VariableNames) != len(mod.Variables) {
			return fmt.Errorf("result: module %d has %d variable names for %d variables",
				mod.ID, len(mod.VariableNames), len(mod.Variables))
		}
		for _, ps := range [][]Parent{mod.Parents, mod.ParentsUniform} {
			for _, p := range ps {
				if p.Index < 0 || p.Index >= n.N {
					return fmt.Errorf("result: module %d parent %d out of range", mod.ID, p.Index)
				}
				if math.IsNaN(p.Score) || math.IsInf(p.Score, 0) {
					return fmt.Errorf("result: module %d parent %d has non-finite score %v",
						mod.ID, p.Index, p.Score)
				}
			}
		}
	}
	return nil
}
