package result

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Network {
	return &Network{
		N: 6, M: 10,
		Names: []string{"R0", "R1", "G2", "G3", "G4", "G5"},
		Modules: []Module{
			{ID: 0, Variables: []int{2, 3}, Parents: []Parent{{Index: 0, Name: "R0", Score: 0.9, Count: 3}}},
			{ID: 1, Variables: []int{4, 5}, Parents: []Parent{
				{Index: 1, Name: "R1", Score: 0.8, Count: 2},
				{Index: 2, Name: "G2", Score: 0.5, Count: 1},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	n := sample()
	n.Modules[0].Variables = []int{2, 9}
	if n.Validate() == nil {
		t.Fatal("out-of-range variable accepted")
	}
	n = sample()
	n.Modules[1].Variables = []int{2, 5}
	if n.Validate() == nil {
		t.Fatal("duplicated variable accepted")
	}
	n = sample()
	n.Modules[0].Parents[0].Index = -1
	if n.Validate() == nil {
		t.Fatal("bad parent accepted")
	}
}

func TestModuleOf(t *testing.T) {
	got := sample().ModuleOf()
	want := []int{-1, -1, 0, 0, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestModuleGraph(t *testing.T) {
	// Module 1 has parent G2 which belongs to module 0 → edge 0→1.
	// Parents R0, R1 belong to no module → no edges.
	edges := sample().ModuleGraph()
	if len(edges) != 1 || edges[0] != (Edge{From: 0, To: 1, Score: 0.5}) {
		t.Fatalf("edges = %v", edges)
	}
}

func TestModuleGraphNoSelfLoops(t *testing.T) {
	n := sample()
	// G3 (module 0) as a parent of module 0 must not create a self edge.
	n.Modules[0].Parents = append(n.Modules[0].Parents, Parent{Index: 3, Score: 0.7})
	for _, e := range n.ModuleGraph() {
		if e.From == e.To {
			t.Fatal("self loop emitted")
		}
	}
}

func TestEnforceAcyclic(t *testing.T) {
	edges := []Edge{
		{From: 0, To: 1, Score: 0.9},
		{From: 1, To: 2, Score: 0.8},
		{From: 2, To: 0, Score: 0.1}, // weakest edge of the cycle
	}
	kept := EnforceAcyclic(edges, 3)
	if !IsAcyclic(kept, 3) {
		t.Fatal("result still cyclic")
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d edges, want 2", len(kept))
	}
	for _, e := range kept {
		if e.From == 2 && e.To == 0 {
			t.Fatal("weakest cycle edge not the one removed")
		}
	}
}

func TestEnforceAcyclicKeepsDAG(t *testing.T) {
	edges := []Edge{{From: 0, To: 1, Score: 1}, {From: 0, To: 2, Score: 1}, {From: 1, To: 2, Score: 1}}
	kept := EnforceAcyclic(edges, 3)
	if len(kept) != 3 {
		t.Fatalf("DAG edges dropped: %v", kept)
	}
}

func TestEnforceAcyclicProperty(t *testing.T) {
	check := func(raw []uint8) bool {
		const k = 5
		var edges []Edge
		for i := 0; i+2 < len(raw) && i < 30; i += 3 {
			edges = append(edges, Edge{
				From:  int(raw[i]) % k,
				To:    int(raw[i+1]) % k,
				Score: float64(raw[i+2]) / 255,
			})
		}
		var clean []Edge
		for _, e := range edges {
			if e.From != e.To {
				clean = append(clean, e)
			}
		}
		return IsAcyclic(EnforceAcyclic(clean, k), k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIsAcyclic(t *testing.T) {
	if !IsAcyclic([]Edge{{From: 0, To: 1}, {From: 1, To: 2}}, 3) {
		t.Fatal("chain misclassified")
	}
	if IsAcyclic([]Edge{{From: 0, To: 1}, {From: 1, To: 0}}, 2) {
		t.Fatal("2-cycle missed")
	}
	if !IsAcyclic(nil, 4) {
		t.Fatal("empty graph misclassified")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	n := sample()
	var buf bytes.Buffer
	if err := n.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != n.N || got.M != n.M || len(got.Modules) != 2 {
		t.Fatalf("round trip header: %+v", got)
	}
	if !reflect.DeepEqual(got.Modules[1].Variables, []int{4, 5}) {
		t.Fatalf("variables: %v", got.Modules[1].Variables)
	}
	if got.Modules[1].Parents[0] != n.Modules[1].Parents[0] {
		t.Fatalf("parents: %+v", got.Modules[1].Parents)
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"modules"`)) {
		t.Fatal("JSON missing modules key")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	if !Equal(a, b) {
		t.Fatal("identical networks not equal")
	}
	b.Modules[1].Parents[0].Score = 0.81
	if Equal(a, b) {
		t.Fatal("differing parent score not detected")
	}
	b = sample()
	b.Modules[0].Variables = []int{2}
	if Equal(a, b) {
		t.Fatal("differing membership not detected")
	}
	b = sample()
	b.Modules = b.Modules[:1]
	if Equal(a, b) {
		t.Fatal("differing module count not detected")
	}
}

func TestAdjustedRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI of identical partitions = %v", got)
	}
}

func TestAdjustedRandIndexPermutedLabels(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, different labels
	if got := AdjustedRandIndex(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI of relabeled partitions = %v", got)
	}
}

func TestAdjustedRandIndexExcludesUnassigned(t *testing.T) {
	a := []int{0, 0, 1, 1, -1, -1}
	b := []int{3, 3, 4, 4, 0, 1}
	if got := AdjustedRandIndex(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI with exclusions = %v", got)
	}
}

func TestAdjustedRandIndexNearZeroForRandom(t *testing.T) {
	// Orthogonal partitions of 8 items.
	a := []int{0, 0, 0, 0, 1, 1, 1, 1}
	b := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if got := AdjustedRandIndex(a, b); math.Abs(got) > 0.3 {
		t.Fatalf("ARI of orthogonal partitions = %v", got)
	}
}

func TestAdjustedRandIndexBounded(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, r := range raw {
			a[i] = int(r) % 3
			b[i] = int(r>>4) % 3
		}
		ari := AdjustedRandIndex(a, b)
		return ari <= 1.0+1e-12 && !math.IsNaN(ari)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	truth := map[int]bool{1: true, 3: true}
	ranked := []int{1, 2, 3, 4}
	if got := PrecisionAtK(ranked, truth, 2); got != 0.5 {
		t.Fatalf("P@2 = %v", got)
	}
	if got := PrecisionAtK(ranked, truth, 4); got != 0.5 {
		t.Fatalf("P@4 = %v", got)
	}
	if got := PrecisionAtK(ranked, truth, 10); got != 0.5 {
		t.Fatal("k beyond ranking must clamp")
	}
	if got := PrecisionAtK(nil, truth, 3); got != 0 {
		t.Fatal("empty ranking")
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	truth := map[int]bool{1: true, 2: true}
	if got := MeanAveragePrecision([]int{1, 2, 3}, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect ranking MAP = %v", got)
	}
	if got := MeanAveragePrecision([]int{3, 4}, truth); got != 0 {
		t.Fatalf("miss-all MAP = %v", got)
	}
	if got := MeanAveragePrecision([]int{3, 1}, truth); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("partial MAP = %v, want 0.25", got)
	}
	if !math.IsNaN(MeanAveragePrecision([]int{1}, nil)) {
		t.Fatal("empty truth must be NaN")
	}
}

func TestWriteDOT(t *testing.T) {
	n := sample()
	var buf bytes.Buffer
	if err := n.WriteDOT(&buf, n.ModuleGraph()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "M0", "M1", "M0 -> M1", "2 genes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
