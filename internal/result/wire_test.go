package result

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"parsimone/internal/wire"
)

// wireBytes serializes n in the binary format.
func wireBytes(t testing.TB, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// jsonNetBytes serializes n as JSON.
func jsonNetBytes(t testing.TB, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// roundTripCases covers the shapes the codecs must preserve exactly,
// including the degenerate ones: no modules at all, an empty module, a
// single-variable module, weights at the quantization extremes, and names
// both derivable from the network table and deliberately divergent from it.
func roundTripCases() map[string]*Network {
	return map[string]*Network{
		"sample": sample(),
		"empty network": {
			N: 0, M: 0,
		},
		"empty modules": {
			N: 4, M: 7,
			Modules: []Module{{ID: 0}, {ID: 1, Variables: []int{}}},
		},
		"single-variable modules": {
			N: 3, M: 5,
			Modules: []Module{
				{ID: 0, Variables: []int{1}},
				{ID: 1, Variables: []int{2}, Parents: []Parent{{Index: 1, Score: 0.25, Count: 1}}},
			},
		},
		"max-quantized weights": {
			N: 2, M: 2,
			Modules: []Module{{ID: 0, Variables: []int{0, 1}, Parents: []Parent{
				{Index: 0, Score: math.MaxFloat64, Count: math.MaxInt32},
				{Index: 1, Score: -math.MaxFloat64, Count: 0},
			}, ParentsUniform: []Parent{
				{Index: 0, Score: math.SmallestNonzeroFloat64, Count: 1},
				{Index: 1, Score: math.Copysign(0, -1), Count: 1},
			}}},
		},
		"derived names": {
			N: 3, M: 1,
			Names: []string{"a", "b", "c"},
			Modules: []Module{{ID: 0, Variables: []int{0, 2}, VariableNames: []string{"a", "c"},
				Parents: []Parent{{Index: 1, Name: "b", Score: 1, Count: 1}}}},
		},
		"explicit names": {
			N: 3, M: 1,
			Names: []string{"a", "b", "c"},
			Modules: []Module{{ID: 0, Variables: []int{0, 2}, VariableNames: []string{"x", "y"},
				Parents: []Parent{{Index: 1, Name: "renamed", Score: 1, Count: 1}}}},
		},
	}
}

// TestNetworkBinaryRoundTrip: ReadBinary(WriteBinary(n)) preserves the
// network exactly — Equal on the structures, and byte-identical on a second
// serialization, the determinism_test.go standard for "the same network".
func TestNetworkBinaryRoundTrip(t *testing.T) {
	for name, n := range roundTripCases() {
		t.Run(name, func(t *testing.T) {
			first := wireBytes(t, n)
			got, err := ReadBinary(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(got, n) {
				t.Fatalf("decoded network differs:\n got %+v\nwant %+v", got, n)
			}
			if second := wireBytes(t, got); !bytes.Equal(first, second) {
				t.Fatal("re-serializing the decoded network changed the bytes")
			}
		})
	}
}

// TestNetworkJSONRoundTrip: the same exactness holds for the JSON codec.
func TestNetworkJSONRoundTrip(t *testing.T) {
	for name, n := range roundTripCases() {
		t.Run(name, func(t *testing.T) {
			first := jsonNetBytes(t, n)
			got, err := ReadJSON(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(got, n) {
				t.Fatalf("decoded network differs:\n got %+v\nwant %+v", got, n)
			}
			if second := jsonNetBytes(t, got); !bytes.Equal(first, second) {
				t.Fatal("re-serializing the decoded network changed the bytes")
			}
		})
	}
}

// TestNetworkBinaryDerivedNamesCompact: when module and parent names match
// the network table, the binary form stores each name once.
func TestNetworkBinaryDerivedNamesCompact(t *testing.T) {
	derived := roundTripCases()["derived names"]
	explicit := roundTripCases()["explicit names"]
	if dl, el := len(wireBytes(t, derived)), len(wireBytes(t, explicit)); dl >= el {
		t.Fatalf("derived-name encoding (%d bytes) not smaller than explicit (%d bytes)", dl, el)
	}
}

func TestReadJSONRejects(t *testing.T) {
	valid := string(jsonNetBytes(t, sample()))
	cases := map[string]struct {
		data string
		want string
	}{
		"truncated":     {valid[:len(valid)/2], "unexpected EOF"},
		"unknown field": {`{"n":1,"m":1,"bogus":3,"modules":[]}`, `unknown field "bogus"`},
		"trailing":      {valid + "{}", "trailing data"},
		"NaN score": {`{"n":2,"m":1,"modules":[{"id":0,"variables":[0],"parents":[{"index":1,"name":"","score":"NaN","count":1}]}]}`,
			"cannot unmarshal"},
		"negative shape": {`{"n":-1,"m":1,"modules":[]}`, "negative data shape"},
		"parent out of range": {`{"n":1,"m":1,"modules":[{"id":0,"variables":[0],"parents":[{"index":5,"name":"","score":1,"count":1}]}]}`,
			"out of range"},
		"uniform parent out of range": {`{"n":1,"m":1,"modules":[{"id":0,"variables":[0],"parentsUniform":[{"index":5,"name":"","score":1,"count":1}]}]}`,
			"out of range"},
		"names length mismatch": {`{"n":3,"m":1,"names":["a"],"modules":[]}`, "1 names for 3 variables"},
		"variable names length mismatch": {`{"n":3,"m":1,"modules":[{"id":0,"variables":[0,1],"variableNames":["a"]}]}`,
			"1 variable names for 2 variables"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want an error containing %q", err, tc.want)
			}
		})
	}
}

// TestCheckLoadedRejectsNonFinite: NaN and ±Inf scores cannot be expressed
// in JSON but can in the binary format — checkLoaded guards both readers.
func TestCheckLoadedRejectsNonFinite(t *testing.T) {
	for name, score := range map[string]float64{
		"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1),
	} {
		t.Run(name, func(t *testing.T) {
			n := sample()
			n.Modules[1].Parents[0].Score = score
			data := wireBytes(t, n)
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil ||
				!strings.Contains(err.Error(), "non-finite score") {
				t.Fatalf("got %v, want a non-finite-score rejection", err)
			}
		})
	}
}

func TestReadBinaryRejects(t *testing.T) {
	valid := wireBytes(t, sample())
	t.Run("wrong kind", func(t *testing.T) {
		data := wire.EncodeFile(wire.Header{Kind: wire.KindModules}, nil)
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil ||
			!strings.Contains(err.Error(), "expected a network") {
			t.Fatalf("got %v, want a kind rejection", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[4]++ // version varint sits right after the 4-byte magic
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil ||
			!strings.Contains(err.Error(), "this build expects") {
			t.Fatalf("got %v, want a version rejection", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := ReadBinary(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("truncation to %d bytes read without error", cut)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		// A flipped bit must never panic; it may still decode to a valid
		// network (e.g. a changed score bit), so only absence of panics and
		// of non-finite scores is asserted — checkLoaded runs inside.
		for i := range valid {
			data := append([]byte{}, valid...)
			data[i] ^= 0x10
			_, _ = ReadBinary(bytes.NewReader(data))
		}
	})
}

// FuzzWireNetwork feeds arbitrary bytes to ReadBinary and ReadJSON: no
// input may panic, and any network that decodes must pass checkLoaded (the
// readers validate internally, so a non-nil result is a valid network).
func FuzzWireNetwork(f *testing.F) {
	for _, n := range roundTripCases() {
		var bin, js bytes.Buffer
		if err := n.WriteBinary(&bin); err != nil {
			f.Fatal(err)
		}
		if err := n.WriteJSON(&js); err != nil {
			f.Fatal(err)
		}
		f.Add(bin.Bytes())
		f.Add(js.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if n, err := ReadBinary(bytes.NewReader(data)); err == nil {
			if verr := checkLoaded(n); verr != nil {
				t.Fatalf("ReadBinary returned an invalid network: %v", verr)
			}
		}
		if n, err := ReadJSON(bytes.NewReader(data)); err == nil {
			if verr := checkLoaded(n); verr != nil {
				t.Fatalf("ReadJSON returned an invalid network: %v", verr)
			}
		}
	})
}
