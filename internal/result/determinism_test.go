package result

import (
	"bytes"
	"math"
	"testing"
)

// Regression tests for the map-iteration-order sites parsivet's maporder
// analyzer flagged here: values computed from map-backed accumulators must
// be bit-identical across repeated evaluations. Go randomizes the starting
// point of every map range, so a single process exercises many orders —
// before AdjustedRandIndex switched to exact integer accumulation, these
// loops disagreed in the last ULP between calls.

// lcg is a tiny deterministic generator so the test itself cannot depend on
// host PRNG state.
type lcg uint64

func (g *lcg) next(n int) int {
	*g = *g*6364136223846793005 + 1442695040888963407
	return int(uint64(*g)>>33) % n
}

func TestAdjustedRandIndexBitStable(t *testing.T) {
	g := lcg(7)
	a := make([]int, 600)
	b := make([]int, 600)
	for i := range a {
		a[i] = g.next(23)
		b[i] = g.next(19)
		if g.next(10) == 0 {
			b[i] = -1 // exercise the exclusion path too
		}
	}
	ref := AdjustedRandIndex(a, b)
	for run := 0; run < 200; run++ {
		if got := AdjustedRandIndex(a, b); math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("run %d: ARI %x differs from first evaluation %x",
				run, math.Float64bits(got), math.Float64bits(ref))
		}
	}
}

func TestSerializedNetworkStable(t *testing.T) {
	// A network whose module graph is built through a map keyed by edge:
	// many cross-module parents make any iteration-order leak visible.
	g := lcg(11)
	n := &Network{N: 120, M: 40}
	for id := 0; id < 12; id++ {
		mod := Module{ID: id}
		for v := id * 10; v < (id+1)*10; v++ {
			mod.Variables = append(mod.Variables, v)
		}
		for p := 0; p < 9; p++ {
			mod.Parents = append(mod.Parents, Parent{
				Index: g.next(120),
				Score: 1 / float64(1+g.next(97)),
				Count: 1 + g.next(5),
			})
		}
		n.Modules = append(n.Modules, mod)
	}

	render := func() []byte {
		var buf bytes.Buffer
		edges := n.ModuleGraph()
		if err := n.WriteXML(&buf); err != nil {
			t.Fatal(err)
		}
		if err := n.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := n.WriteDOT(&buf, edges); err != nil {
			t.Fatal(err)
		}
		for _, e := range EnforceAcyclic(edges, len(n.Modules)) {
			buf.WriteString("\n")
			buf.WriteString(string(rune('0' + e.From%10)))
		}
		return buf.Bytes()
	}

	ref := render()
	for run := 0; run < 50; run++ {
		if got := render(); !bytes.Equal(got, ref) {
			t.Fatalf("run %d: serialized network differs from first rendering", run)
		}
	}
}
